// Package repro is a from-scratch Go reproduction of
//
//	Sascha Hunold, Henri Casanova, Frédéric Suter.
//	"From Simulation to Experiment: A Case Study on Multiprocessor Task
//	Scheduling", APDCM/IPDPS 2011.
//
// The paper asks whether the analytical simulation models pervasive in the
// scheduling literature support scientifically valid conclusions, using the
// scheduling of mixed-parallel applications (DAGs of moldable data-parallel
// tasks) on a 32-node cluster as a case study. This package is the public
// façade over the full reproduction:
//
//   - a discrete-event simulation kernel with SimGrid's Ptask_L07
//     parallel-task model (internal/simgrid);
//   - the CPA, HCPA and MCPA two-phase scheduling algorithms
//     (internal/sched);
//   - the three simulator variants — analytic, brute-force profile,
//     empirical regression (internal/perfmodel, internal/profiler,
//     internal/regression);
//   - a calibrated ground-truth environment standing in for the paper's
//     Bayreuth cluster + TGrid runtime (internal/cluster), plus a real
//     execution backend with goroutine ranks and message passing
//     (internal/tgrid, internal/mpi, internal/kernels);
//   - the full evaluation pipeline regenerating every table and figure
//     (internal/experiments), also exposed through cmd/mixedsim. Studies
//     decompose into independent (instance × algorithm × model/variant)
//     cells executed on a bounded worker pool with deterministic per-cell
//     noise seeding, so reports are byte-identical for every worker count;
//     Config.Parallelism (and the commands' -parallel flag) bounds the
//     pool;
//   - a scheduling service (internal/service, served by cmd/reprosrv):
//     a registry that fits the measured models once per (environment, seed)
//     and reuses them across concurrent schedule/simulate requests, plus a
//     bounded job queue running whole studies asynchronously;
//   - a campaign engine (internal/campaign, POST /v1/campaigns and
//     mixedsim -campaign): declarative what-if sweeps over hypothetical
//     platforms, workloads, algorithms and models — §IX's "scaled to
//     simulate hypothetical platforms" as a grid the registry's fit-once
//     economics make cheap to explore;
//   - a robustness engine (internal/robust, POST /v1/robustness and
//     mixedsim -robust): Monte Carlo perturbation of fitted models and
//     platform characteristics with winner-stability reports — how wrong
//     can a model be before the §V conclusions flip;
//   - a workload-import and online-arrival layer (internal/dag's DOT/JSON
//     importer, the internal/dag/shapes catalogue, internal/arrival, POST
//     /v1/arrivals and mixedsim -arrival): externally authored or canonical
//     workflows arriving over time on a shared cluster, scheduled online
//     against the fitted models with queueing, utilisation, stretch and
//     fairness reports (docs/WORKLOADS.md).
//
// The quickest entry points:
//
//	lab, _ := repro.NewLab(repro.DefaultConfig())
//	fig1, _ := lab.CompareHCPAMCPA("analytic", 2000)
//	fig1.Write(os.Stdout)
//
// See README.md for the architecture overview, docs/PAPER_MAP.md for the
// paper-section-to-code map, and docs/SERVICE.md for the HTTP API.
package repro

import (
	"context"

	"repro/internal/arrival"
	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/robust"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/simgrid"
	"repro/internal/tgrid"
)

// Core workload types.
type (
	// Graph is a mixed-parallel application DAG of moldable tasks.
	Graph = dag.Graph
	// Task is one moldable task.
	Task = dag.Task
	// GenParams configures the paper's random DAG generator (Table I).
	GenParams = dag.GenParams
	// Cluster describes a homogeneous platform.
	Cluster = platform.Cluster
	// Schedule is a two-phase scheduling result.
	Schedule = sched.Schedule
	// Model is a simulator performance model (analytic, profile, empirical).
	Model = perfmodel.Model
	// Result reports one virtual-time execution of a schedule.
	Result = tgrid.Result
	// Lab is the assembled experimental setup of the paper's evaluation.
	Lab = experiments.Lab
	// Config selects the evaluation's seeds and measurement effort.
	Config = experiments.Config
)

// Service-layer types (internal/service, served over HTTP by cmd/reprosrv).
type (
	// Service is the scheduling-as-a-service layer: registry-cached fitted
	// models, synchronous schedule/simulate calls, async study jobs.
	Service = service.Service
	// ServiceOptions configures a Service.
	ServiceOptions = service.Options
	// ServiceClient is the typed HTTP client for a reprosrv daemon.
	ServiceClient = service.Client
	// ScheduleRequest asks the service to schedule one DAG.
	ScheduleRequest = service.ScheduleRequest
	// StudyRequest submits an evaluation study as an async job.
	StudyRequest = service.StudyRequest
	// JobStatus is the externally visible record of a queued study run.
	JobStatus = service.JobStatus
	// ModelRegistry lazily builds and caches fitted performance models.
	ModelRegistry = service.ModelRegistry
)

// Campaign types (internal/campaign): declarative what-if sweeps.
type (
	// CampaignSpec declares a parameter grid over platforms, workloads,
	// algorithms and models (docs/CAMPAIGNS.md).
	CampaignSpec = campaign.Spec
	// CampaignResult is a completed campaign; Write renders the report.
	CampaignResult = campaign.Result
)

// Robustness types (internal/robust): Monte Carlo winner-stability studies.
type (
	// RobustnessSpec is a campaign spec plus the Monte Carlo perturbation
	// axis (docs/ROBUSTNESS.md).
	RobustnessSpec = robust.Spec
	// RobustnessAxis declares the perturbation effort, noise shape and
	// level sweep of a robustness study.
	RobustnessAxis = robust.Axis
	// RobustnessResult is a completed study; Write renders the base
	// campaign report followed by the winner-stability sections.
	RobustnessResult = robust.Result
)

// Arrival types (internal/arrival): online workflows on a shared cluster.
type (
	// ArrivalSpec declares an online-arrival scenario: a job population
	// (suites, imported traces, canonical shapes), an arrival process and
	// the partition geometry (docs/WORKLOADS.md).
	ArrivalSpec = arrival.Spec
	// ArrivalResult is a completed scenario; Write renders the online
	// scorecard: queueing delay, utilisation, stretch and fairness.
	ArrivalResult = arrival.Result
)

// ImportDAG parses a DOT or JSON export (dag.WriteDOT / dag.WriteJSON)
// back into a Graph; Import(Export(g)) round-trips byte-identically.
func ImportDAG(data []byte) (*Graph, error) { return dag.Import(data) }

// RunCampaign executes a declarative what-if sweep against a fresh
// fit-once model registry. Long-running callers should prefer a Service
// (POST /v1/campaigns), which shares the registry across campaigns and
// schedule requests.
func RunCampaign(ctx context.Context, spec CampaignSpec) (*CampaignResult, error) {
	cfg := experiments.DefaultConfig()
	reg := service.NewModelRegistry(cfg.Profile, cfg.Empirical)
	eng := campaign.Engine{Source: reg, Workers: cfg.Parallelism}
	return eng.Run(ctx, spec)
}

// RunRobustness executes a Monte Carlo winner-stability study against a
// fresh fit-once model registry: the spec's base campaign runs first, then
// every grid cell is re-scheduled and re-simulated under seeded model and
// platform perturbations to measure how much model error the simulated
// winner survives (docs/ROBUSTNESS.md). A spec whose robustness axis has
// trials == 0 reduces exactly to RunCampaign. Long-running callers should
// prefer a Service (POST /v1/robustness), which shares the registry across
// studies, campaigns and schedule requests.
func RunRobustness(ctx context.Context, spec RobustnessSpec) (*RobustnessResult, error) {
	cfg := experiments.DefaultConfig()
	reg := service.NewModelRegistry(cfg.Profile, cfg.Empirical)
	eng := robust.Engine{Source: reg, Workers: cfg.Parallelism}
	return eng.Run(ctx, spec)
}

// RunArrival executes an online-arrival scenario against a fresh fit-once
// model registry: the population's jobs arrive by the spec's process, are
// scheduled online with each axis algorithm and run FCFS on fixed-size
// partitions of the emulated cluster (docs/WORKLOADS.md). Long-running
// callers should prefer a Service (POST /v1/arrivals), which shares the
// registry across scenarios, campaigns and schedule requests.
func RunArrival(ctx context.Context, spec ArrivalSpec) (*ArrivalResult, error) {
	cfg := experiments.DefaultConfig()
	reg := service.NewModelRegistry(cfg.Profile, cfg.Empirical)
	eng := arrival.Engine{Source: reg, Workers: cfg.Parallelism}
	return eng.Run(ctx, spec)
}

// NewService assembles the scheduling service; zero fields of opts fall
// back to DefaultServiceOptions.
func NewService(opts ServiceOptions) *Service { return service.New(opts) }

// DefaultServiceOptions mirrors the paper's evaluation setup.
func DefaultServiceOptions() ServiceOptions { return service.DefaultOptions() }

// NewServiceClient returns a typed client for a reprosrv base URL.
func NewServiceClient(base string) *ServiceClient { return service.NewClient(base) }

// GenerateDAG runs the paper's random-DAG generator.
func GenerateDAG(p GenParams) (*Graph, error) { return dag.Generate(p) }

// GenerateSuite produces the 54-instance Table I workload.
func GenerateSuite(baseSeed int64) ([]dag.SuiteInstance, error) {
	return dag.GenerateSuite(baseSeed)
}

// Bayreuth returns the paper's platform: 32 nodes at an effective
// 250 MFlop/s behind Gigabit Ethernet.
func Bayreuth() Cluster { return platform.Bayreuth() }

// NewAnalyticModel returns the flop-count/latency-bandwidth model of §IV.
func NewAnalyticModel(c Cluster) Model { return perfmodel.NewAnalytic(c) }

// Algorithms returns the schedulers of the case study plus baselines:
// CPA, HCPA, MCPA, SEQ, DATAPAR.
func Algorithms() []sched.Algorithm {
	return []sched.Algorithm{
		sched.CPA{}, sched.HCPA{}, sched.MCPA{}, sched.Sequential{}, sched.DataParallel{},
	}
}

// BuildSchedule runs a two-phase scheduler under a performance model.
func BuildSchedule(algo sched.Algorithm, g *Graph, c Cluster, m Model) (*Schedule, error) {
	return sched.Build(algo, g, c.Nodes, perfmodel.CostFunc(m), perfmodel.CommFunc(m, c))
}

// NewHeterogeneousCluster builds a platform with explicit per-node speeds;
// the fastest node becomes the reference speed CPA-family allocations are
// normalised to (HCPA's original heterogeneous setting).
func NewHeterogeneousCluster(name string, powers []float64, bandwidth, latency float64) Cluster {
	return platform.NewHeterogeneous(name, powers, bandwidth, latency)
}

// BuildHeteroSchedule schedules onto a heterogeneous platform: the
// allocation phase reasons on the reference cluster and the mapping phase
// trades node speed against availability.
func BuildHeteroSchedule(algo sched.Algorithm, g *Graph, c Cluster, m Model) (*Schedule, error) {
	return sched.BuildHetero(algo, g, c, perfmodel.CostFunc(m), perfmodel.CommFunc(m, c))
}

// Simulate replays a schedule under a performance model — one of the
// paper's simulators.
func Simulate(c Cluster, s *Schedule, m Model) (*Result, error) {
	net, err := simgrid.NewNet(c)
	if err != nil {
		return nil, err
	}
	return tgrid.Run(net, s, tgrid.ModelTiming{Model: m})
}

// Experiment executes a schedule on the emulated ground-truth environment
// (the reproduction's stand-in for the paper's real cluster), with the
// given noise seed.
func Experiment(s *Schedule, seed int64) (*Result, error) {
	em, err := cluster.NewEmulator(cluster.Bayreuth(), seed)
	if err != nil {
		return nil, err
	}
	return em.Execute(s)
}

// DefaultConfig mirrors the paper's evaluation setup. Config.Parallelism
// bounds the study-execution worker pool (zero: one worker per CPU);
// reports are byte-identical for every value.
func DefaultConfig() Config { return experiments.DefaultConfig() }

// DefaultParallelism returns the worker count the study engine uses when
// Config.Parallelism is zero: one per logical CPU.
func DefaultParallelism() int { return experiments.DefaultParallelism() }

// NewLab assembles the full evaluation: environment, profiling campaigns,
// models and workload.
func NewLab(cfg Config) (*Lab, error) { return experiments.NewLab(cfg) }
