// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark measures the computation behind its artefact
// and prints the paper-style rows once, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. Paper-vs-measured values are recorded
// in EXPERIMENTS.md.
package repro

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/perfmodel"
	"repro/internal/profiler"
	"repro/internal/sched"
	"repro/internal/tgrid"
)

var (
	labOnce sync.Once
	lab     *experiments.Lab
	labErr  error
)

// sharedLab builds the evaluation setup once for all benchmarks.
func sharedLab(b *testing.B) *experiments.Lab {
	b.Helper()
	labOnce.Do(func() {
		lab, labErr = experiments.NewLab(experiments.DefaultConfig())
	})
	if labErr != nil {
		b.Fatal(labErr)
	}
	return lab
}

var printOnce = map[string]*sync.Once{}
var printMu sync.Mutex

// printArtifact prints a table/figure exactly once across all benchmark
// iterations and runs.
func printArtifact(name string, f func()) {
	printMu.Lock()
	once, ok := printOnce[name]
	if !ok {
		once = &sync.Once{}
		printOnce[name] = once
	}
	printMu.Unlock()
	once.Do(func() {
		fmt.Println()
		f()
		fmt.Println()
	})
}

// BenchmarkTable1DAGGeneration regenerates Table I: the 54-instance random
// DAG suite.
func BenchmarkTable1DAGGeneration(b *testing.B) {
	l := sharedLab(b)
	printArtifact("table1", func() { l.Table1().Write(os.Stdout) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suite, err := dag.GenerateSuite(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(suite) != 54 {
			b.Fatalf("suite has %d instances", len(suite))
		}
	}
}

// benchComparison is the shared body of the Figure 1/5/7 benchmarks: it
// measures the per-DAG pipeline (schedule, simulate, execute) under one
// model and prints the figure.
func benchComparison(b *testing.B, modelName, figure string) {
	l := sharedLab(b)
	for _, n := range []int{2000, 3000} {
		c, err := l.CompareHCPAMCPA(modelName, n)
		if err != nil {
			b.Fatal(err)
		}
		n := n
		printArtifact(fmt.Sprintf("%s-%d", figure, n), func() { c.Write(os.Stdout) })
		b.ReportMetric(float64(c.Mispredicted), fmt.Sprintf("wrong/27@n=%d", n))
	}
	model, err := l.Model(modelName)
	if err != nil {
		b.Fatal(err)
	}
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, l.Cluster())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := l.Suite[i%len(l.Suite)]
		for _, algo := range experiments.ComparedAlgorithms() {
			s, err := sched.Build(algo, inst.Graph, l.Cluster().Nodes, cost, comm)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tgrid.Run(l.Net, s, tgrid.ModelTiming{Model: model}); err != nil {
				b.Fatal(err)
			}
			if _, err := l.Em.Execute(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure1AnalyticVsExperiment regenerates Figure 1: HCPA vs MCPA
// relative makespans under the purely analytic simulator versus the
// experiment.
func BenchmarkFigure1AnalyticVsExperiment(b *testing.B) {
	benchComparison(b, "analytic", "fig1")
}

// BenchmarkFigure5ProfileVsExperiment regenerates Figure 5: the same
// comparison with the brute-force profile simulator.
func BenchmarkFigure5ProfileVsExperiment(b *testing.B) {
	benchComparison(b, "profile", "fig5")
}

// BenchmarkFigure7EmpiricalVsExperiment regenerates Figure 7: the same
// comparison with the empirical (regression) simulator.
func BenchmarkFigure7EmpiricalVsExperiment(b *testing.B) {
	benchComparison(b, "empirical", "fig7")
}

// BenchmarkFigure2AnalyticModelError regenerates Figure 2: the analytic
// task-model's relative error on the Java/Bayreuth and PDGEMM/Cray
// environments.
func BenchmarkFigure2AnalyticModelError(b *testing.B) {
	l := sharedLab(b)
	java, err := l.Figure2Java(3)
	if err != nil {
		b.Fatal(err)
	}
	franklin := experiments.Figure2Franklin()
	printArtifact("fig2", func() {
		experiments.WriteErrorSeries(os.Stdout,
			"Figure 2 (left) — relative error of the analytic model, 1D MM/Java", java)
		fmt.Println()
		experiments.WriteErrorSeries(os.Stdout,
			"Figure 2 (right) — relative error of the analytic model, PDGEMM/Cray XT4", franklin)
	})
	maxErr := 0.0
	for _, s := range java {
		for _, e := range s.Err {
			if e > maxErr {
				maxErr = e
			}
		}
	}
	b.ReportMetric(100*maxErr, "maxerr%")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Figure2Java(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3StartupOverhead regenerates Figure 3: the no-op probe
// measurement of task startup overheads (20 trials per p).
func BenchmarkFigure3StartupOverhead(b *testing.B) {
	l := sharedLab(b)
	s, err := l.Figure3()
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("fig3", func() { s.Write(os.Stdout) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := profiler.Campaign{Em: l.Em}
		_ = c.StartupSeries(l.Cluster().Nodes, 20)
	}
}

// BenchmarkFigure4RedistOverhead regenerates Figure 4: the mostly-empty-
// matrix redistribution probe over the (p(src), p(dst)) grid (3 trials).
func BenchmarkFigure4RedistOverhead(b *testing.B) {
	l := sharedLab(b)
	r, err := l.Figure4()
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("fig4", func() { r.Write(os.Stdout) })
	b.ReportMetric(1000*r.ByDst[32], "ms@dst32")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := profiler.Campaign{Em: l.Em}
		_ = c.RedistSurface(l.Cluster().Nodes, 3)
	}
}

// BenchmarkFigure6RegressionFits regenerates Figure 6: the multiplication
// regression with naive powers-of-two points (p=8/16 outliers) versus the
// final point set.
func BenchmarkFigure6RegressionFits(b *testing.B) {
	l := sharedLab(b)
	for _, n := range []int{2000, 3000} {
		study, err := l.Figure6(n)
		if err != nil {
			b.Fatal(err)
		}
		n := n
		printArtifact(fmt.Sprintf("fig6-%d", n), func() { study.Write(os.Stdout) })
		b.ReportMetric(100*study.FinalMeanErr, fmt.Sprintf("finalerr%%@n=%d", n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Figure6(3000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8ErrorBoxplots regenerates Figure 8: the makespan
// simulation error distributions of the three simulator versions.
func BenchmarkFigure8ErrorBoxplots(b *testing.B) {
	l := sharedLab(b)
	boxes, err := l.Figure8()
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("fig8", func() { experiments.WriteFigure8(os.Stdout, boxes) })
	for _, box := range boxes {
		b.ReportMetric(box.Box.Median, fmt.Sprintf("mederr%%/%s-%s", box.Model, box.Algo))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Figure8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2RegressionModels regenerates Table II: the empirical
// models fitted from sparse measurements.
func BenchmarkTable2RegressionModels(b *testing.B) {
	l := sharedLab(b)
	printArtifact("table2", func() { l.Table2(os.Stdout) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profiler.BuildEmpiricalModel(l.Em, l.Cfg.Empirical); err != nil {
			b.Fatal(err)
		}
	}
}
