package platform

import "testing"

func TestBayreuth(t *testing.T) {
	c := Bayreuth()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Nodes != 32 {
		t.Errorf("Nodes = %d, want 32", c.Nodes)
	}
	if c.NodePower != 250e6 {
		t.Errorf("NodePower = %g, want 2.5e8", c.NodePower)
	}
	if c.LinkLatency != 100e-6 {
		t.Errorf("LinkLatency = %g, want 1e-4", c.LinkLatency)
	}
	// 1 Gb/s = 125 MB/s
	if c.LinkBandwidth != 125e6 {
		t.Errorf("LinkBandwidth = %g, want 1.25e8", c.LinkBandwidth)
	}
}

func TestFranklin(t *testing.T) {
	c := Franklin()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NodePower != 4165.3e6 {
		t.Errorf("NodePower = %g, want 4.1653e9", c.NodePower)
	}
}

func TestValidateRejectsBadClusters(t *testing.T) {
	cases := []Cluster{
		{Name: "no-nodes", Nodes: 0, NodePower: 1, LinkBandwidth: 1},
		{Name: "no-power", Nodes: 1, NodePower: 0, LinkBandwidth: 1},
		{Name: "no-bw", Nodes: 1, NodePower: 1, LinkBandwidth: 0},
		{Name: "neg-lat", Nodes: 1, NodePower: 1, LinkBandwidth: 1, LinkLatency: -1},
		{Name: "neg-backplane", Nodes: 1, NodePower: 1, LinkBandwidth: 1, BackplaneBandwidth: -1},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid cluster accepted", c.Name)
		}
	}
}

func TestScaled(t *testing.T) {
	c := Bayreuth().Scaled(64)
	if c.Nodes != 64 {
		t.Errorf("Nodes = %d, want 64", c.Nodes)
	}
	if c.NodePower != Bayreuth().NodePower {
		t.Error("Scaled changed node power")
	}
	if c.Name == Bayreuth().Name {
		t.Error("Scaled should rename the cluster")
	}
}

func TestHeterogeneousCluster(t *testing.T) {
	c := NewHeterogeneous("mix", []float64{100, 200, 400}, 1e8, 1e-4)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.IsHomogeneous() {
		t.Error("mixed speeds reported homogeneous")
	}
	if c.NodePower != 400 {
		t.Errorf("reference speed = %g, want fastest node 400", c.NodePower)
	}
	if c.PowerOf(0) != 100 || c.PowerOf(2) != 400 {
		t.Error("PowerOf wrong")
	}
	if c.TotalPower() != 700 {
		t.Errorf("TotalPower = %g", c.TotalPower())
	}
	if c.MinPowerOf([]int{1, 2}) != 200 {
		t.Errorf("MinPowerOf = %g", c.MinPowerOf([]int{1, 2}))
	}
}

func TestHomogeneousHelpers(t *testing.T) {
	c := Bayreuth()
	if !c.IsHomogeneous() {
		t.Error("Bayreuth should be homogeneous")
	}
	if c.PowerOf(7) != c.NodePower {
		t.Error("PowerOf should return reference on homogeneous clusters")
	}
	if c.TotalPower() != 32*250e6 {
		t.Errorf("TotalPower = %g", c.TotalPower())
	}
	if c.MinPowerOf(nil) != c.NodePower {
		t.Error("MinPowerOf(nil) should be the reference")
	}
}

func TestValidateHeteroErrors(t *testing.T) {
	c := Bayreuth()
	c.NodePowers = []float64{1, 2} // wrong length
	if err := c.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	c2 := NewHeterogeneous("bad", []float64{100, -1}, 1e8, 1e-4)
	if err := c2.Validate(); err == nil {
		t.Error("negative node power accepted")
	}
}

func TestSeqTime(t *testing.T) {
	c := Bayreuth()
	// 2·2000³ flops at 250 MFlop/s = 64 s — the paper's sequential MM scale.
	got := c.SeqTime(2 * 2000 * 2000 * 2000)
	if got != 64 {
		t.Errorf("SeqTime = %g, want 64", got)
	}
}
