// Package platform describes the execution platforms of the case study: a
// homogeneous cluster of N identical nodes behind a switched interconnect,
// modelled as a star topology (one private full-duplex link per node plus a
// shared switch backplane), exactly the information the paper's SimGrid
// platform file carries (§IV).
package platform

import "fmt"

// Cluster describes a homogeneous cluster.
type Cluster struct {
	// Name labels the platform ("bayreuth").
	Name string
	// Nodes is N, the number of compute nodes.
	Nodes int
	// NodePower is the effective compute speed of one node in flop/s. The
	// paper benchmarks a JVM matrix multiplication and sets 250 MFlop/s.
	NodePower float64
	// LinkBandwidth is the bandwidth of each private node↔switch link, in
	// bytes/s (the paper's 1 Gb/s Ethernet).
	LinkBandwidth float64
	// LinkLatency is the one-hop latency of each private link, in seconds
	// (the paper uses 100 µs).
	LinkLatency float64
	// BackplaneBandwidth bounds the aggregate traffic crossing the switch,
	// in bytes/s. Zero means the backplane is not a bottleneck.
	BackplaneBandwidth float64
	// NodePowers optionally gives per-node speeds in flop/s for
	// heterogeneous platforms (HCPA's original target, [12]); nil means
	// every node runs at NodePower. When set, its length must equal Nodes
	// and NodePower serves as the *reference speed* allocations are
	// normalised to.
	NodePowers []float64
}

// IsHomogeneous reports whether all nodes share the reference speed.
func (c Cluster) IsHomogeneous() bool {
	for _, p := range c.NodePowers {
		if p != c.NodePower {
			return false
		}
	}
	return true
}

// PowerOf returns node h's speed in flop/s.
func (c Cluster) PowerOf(h int) float64 {
	if c.NodePowers == nil {
		return c.NodePower
	}
	return c.NodePowers[h]
}

// TotalPower sums all node speeds.
func (c Cluster) TotalPower() float64 {
	if c.NodePowers == nil {
		return float64(c.Nodes) * c.NodePower
	}
	total := 0.0
	for _, p := range c.NodePowers {
		total += p
	}
	return total
}

// MinPowerOf returns the slowest speed among the given nodes — the pace a
// load-balanced data-parallel kernel runs at.
func (c Cluster) MinPowerOf(hosts []int) float64 {
	if len(hosts) == 0 {
		return c.NodePower
	}
	min := c.PowerOf(hosts[0])
	for _, h := range hosts[1:] {
		if p := c.PowerOf(h); p < min {
			min = p
		}
	}
	return min
}

// NewHeterogeneous builds a heterogeneous cluster from explicit node speeds;
// the reference speed is the fastest node.
func NewHeterogeneous(name string, powers []float64, bandwidth, latency float64) Cluster {
	ref := 0.0
	for _, p := range powers {
		if p > ref {
			ref = p
		}
	}
	return Cluster{
		Name:          name,
		Nodes:         len(powers),
		NodePower:     ref,
		LinkBandwidth: bandwidth,
		LinkLatency:   latency,
		NodePowers:    append([]float64(nil), powers...),
	}
}

// Bayreuth returns the paper's experimental platform: 32 dual-Opteron nodes,
// 250 MFlop/s effective per node (JVM-benchmarked), Gigabit Ethernet.
func Bayreuth() Cluster {
	return Cluster{
		Name:          "bayreuth",
		Nodes:         32,
		NodePower:     250e6,
		LinkBandwidth: 1e9 / 8, // 1 Gb/s
		LinkLatency:   100e-6,
	}
}

// Franklin returns the Cray XT4 used for the PDGEMM side of Figure 2:
// 4165.3 MFlop/s measured per node. Only the node speed matters for the
// figure; the network parameters are representative SeaStar values.
func Franklin() Cluster {
	return Cluster{
		Name:          "franklin",
		Nodes:         32,
		NodePower:     4165.3e6,
		LinkBandwidth: 1.6e9,
		LinkLatency:   12e-6,
	}
}

// Validate reports whether the description is usable.
func (c Cluster) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("platform %q: Nodes must be positive, got %d", c.Name, c.Nodes)
	}
	if c.NodePower <= 0 {
		return fmt.Errorf("platform %q: NodePower must be positive, got %g", c.Name, c.NodePower)
	}
	if c.LinkBandwidth <= 0 {
		return fmt.Errorf("platform %q: LinkBandwidth must be positive, got %g", c.Name, c.LinkBandwidth)
	}
	if c.LinkLatency < 0 {
		return fmt.Errorf("platform %q: LinkLatency must be non-negative, got %g", c.Name, c.LinkLatency)
	}
	if c.BackplaneBandwidth < 0 {
		return fmt.Errorf("platform %q: BackplaneBandwidth must be non-negative, got %g", c.Name, c.BackplaneBandwidth)
	}
	if c.NodePowers != nil {
		if len(c.NodePowers) != c.Nodes {
			return fmt.Errorf("platform %q: %d node powers for %d nodes", c.Name, len(c.NodePowers), c.Nodes)
		}
		for h, p := range c.NodePowers {
			if p <= 0 {
				return fmt.Errorf("platform %q: node %d has power %g", c.Name, h, p)
			}
		}
	}
	return nil
}

// Scaled returns a copy with the node count replaced, for what-if studies
// ("these models could be instantiated for an existing execution environment
// and scaled to simulate an hypothetical execution environment", §IX).
func (c Cluster) Scaled(nodes int) Cluster {
	out := c
	out.Nodes = nodes
	out.Name = fmt.Sprintf("%s-x%d", c.Name, nodes)
	return out
}

// SeqTime returns the time to execute the given number of flops on one node
// at the platform's effective speed — the basic analytic building block.
func (c Cluster) SeqTime(flops float64) float64 { return flops / c.NodePower }
