// Package obs is the reproduction's observability layer: a dependency-free,
// allocation-free metrics core (atomic counters, gauges and fixed-bucket
// histograms preallocated at registration, exposed in the Prometheus text
// format), plus job-progress snapshots shared by the service's job manager
// and the campaign/robustness engines.
//
// The design constraint is the same one the simulation core lives under
// (docs/PERF.md): instrumenting a hot path must not make it allocate.
// Every metric is registered once — typically in a package-level var — and
// observed through plain atomic operations afterwards; registration owns all
// allocation, observation owns none. Exposition walks the registry under a
// lock and may allocate freely; it never runs on a hot path.
//
// Counters within one family (same name, different labels) share HELP/TYPE
// lines in the exposition. Registration is get-or-register: asking twice for
// the same (name, labels) returns the same metric, so multiple Service
// instances in one process share one set of process-wide series.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one fixed key/value pair attached to a metric at registration.
// Labels are bound once; there is no per-observation label lookup, which is
// what keeps observation allocation-free.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. The bucket layout is frozen at
// registration (upper bounds strictly increasing, +Inf implicit), so Observe
// is a bounds walk plus three atomic operations — no allocation, safe for
// concurrent use.
type Histogram struct {
	bounds []float64       // upper bounds, exclusive of +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets is the default latency bucket layout, in seconds.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// FitBuckets suits model-fitting campaigns and job runs: wider, up to
// minutes.
var FitBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600}

// metricType enumerates the exposition TYPE line.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// series is one registered (labels, metric) pair within a family.
type series struct {
	labels []Label
	key    string // canonical label signature, for get-or-register and sorting

	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	series []*series
}

// Registry holds registered metrics and renders them in the Prometheus text
// exposition format. The zero value is not usable; use NewRegistry or the
// package-level Default.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration-independent sorted order, rebuilt lazily
	dirty    bool
}

// Default is the process-wide registry every package-level metric registers
// on; the service's /metrics endpoint exposes it.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey builds the canonical signature of a label set.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "\x00" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

// validName matches the Prometheus metric and label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register returns the series for (name, labels), creating family and series
// as needed. Type or help mismatches against an existing family panic: they
// are programming errors, caught the first time the package loads.
func (r *Registry) register(name, help string, typ metricType, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) || strings.HasPrefix(l.Key, "__") {
			panic(fmt.Sprintf("obs: metric %s has invalid label name %q", name, l.Key))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.dirty = true
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, typ, f.typ))
	}
	key := labelKey(labels)
	for _, s := range f.series {
		if s.key == key {
			return s
		}
	}
	s := &series{labels: append([]Label(nil), labels...), key: key}
	f.series = append(f.series, s)
	sort.Slice(f.series, func(a, b int) bool { return f.series[a].key < f.series[b].key })
	return s
}

// Counter returns the counter for (name, labels), registering it on first
// use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, typeCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge for (name, labels), registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, typeGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time (e.g. runtime.NumGoroutine). Re-registration replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, typeGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.gaugeFn = fn
}

// Histogram returns the histogram for (name, labels), registering it with
// the given bucket upper bounds (strictly increasing; +Inf is implicit) on
// first use. Later calls for the same series ignore buckets and return the
// existing histogram.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %s has no buckets", name))
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic(fmt.Sprintf("obs: histogram %s buckets not strictly increasing at %d", name, i))
		}
	}
	s := r.register(name, help, typeHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.histogram == nil {
		s.histogram = &Histogram{
			bounds: append([]float64(nil), buckets...),
			counts: make([]atomic.Uint64, len(buckets)+1),
		}
	}
	return s.histogram
}
