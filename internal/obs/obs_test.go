package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseExposition is a minimal Prometheus text-format parser used by the
// roundtrip tests: it returns samples by full series line prefix and records
// the HELP/TYPE lines seen before each family's samples.
type exposition struct {
	help    map[string]string
	typ     map[string]string
	samples []sample
}

type sample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseLabels parses `k="v",...` with exposition-format unescaping.
func parseLabels(t *testing.T, s string) map[string]string {
	t.Helper()
	out := map[string]string{}
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			t.Fatalf("malformed label section %q", s)
		}
		key := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			t.Fatalf("label %s not quoted in %q", key, s)
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					t.Fatalf("unknown escape \\%c in %q", s[i], s)
				}
			} else {
				val.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			t.Fatalf("unterminated label value in %q", s)
		}
		i++ // closing quote
		out[key] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
	return out
}

func parseExposition(t *testing.T, text string) *exposition {
	t.Helper()
	e := &exposition{help: map[string]string{}, typ: map[string]string{}}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, _ := strings.Cut(rest, " ")
			e.help[name] = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			e.typ[name] = typ
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		id, valStr := line[:sp], line[sp+1:]
		var value float64
		switch valStr {
		case "+Inf":
			value = math.Inf(1)
		case "-Inf":
			value = math.Inf(-1)
		default:
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			value = v
		}
		name, labels := id, map[string]string{}
		if br := strings.IndexByte(id, '{'); br >= 0 {
			if !strings.HasSuffix(id, "}") {
				t.Fatalf("malformed labels in %q", line)
			}
			name = id[:br]
			labels = parseLabels(t, id[br+1:len(id)-1])
		}
		e.samples = append(e.samples, sample{name: name, labels: labels, value: value})
	}
	return e
}

func (e *exposition) find(name string, match map[string]string) []sample {
	var out []sample
	for _, s := range e.samples {
		if s.name != name {
			continue
		}
		ok := true
		for k, v := range match {
			if s.labels[k] != v {
				ok = false
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	return out
}

// TestExpositionRoundtrip scrapes a registry in-process and checks the
// format contract: HELP/TYPE lines precede samples, label values escape
// correctly, and histogram buckets are cumulative, monotone and le="+Inf"
// agrees with _count.
func TestExpositionRoundtrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "requests served", L("route", "/v1/jobs"), L("code", "2xx"))
	c.Add(7)
	r.Counter("test_requests_total", "requests served", L("route", "/metrics"), L("code", "2xx")).Inc()
	g := r.Gauge("test_in_flight", "in-flight requests")
	g.Set(3)
	r.GaugeFunc("test_goroutines", "goroutines", func() float64 { return 42 })
	weird := r.Counter("test_escapes_total", "path with \"quotes\", back\\slashes and\nnewlines",
		L("path", "a\"b\\c\nd"))
	weird.Add(2)
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.02, 0.05, 0.5, 2, 3} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	e := parseExposition(t, text)

	for name, typ := range map[string]string{
		"test_requests_total":  "counter",
		"test_in_flight":       "gauge",
		"test_goroutines":      "gauge",
		"test_escapes_total":   "counter",
		"test_latency_seconds": "histogram",
	} {
		if e.typ[name] != typ {
			t.Errorf("TYPE %s = %q, want %q", name, e.typ[name], typ)
		}
		if e.help[name] == "" {
			t.Errorf("HELP %s missing", name)
		}
	}
	// HELP/TYPE must precede the family's first sample, exactly once.
	for _, name := range []string{"test_requests_total", "test_latency_seconds"} {
		helpAt := strings.Index(text, "# HELP "+name)
		typeAt := strings.Index(text, "# TYPE "+name)
		sampleAt := strings.Index(text, "\n"+name)
		if helpAt < 0 || typeAt < 0 || sampleAt < 0 || !(helpAt < typeAt && typeAt < sampleAt) {
			t.Errorf("%s: HELP(%d) TYPE(%d) sample(%d) out of order", name, helpAt, typeAt, sampleAt)
		}
		if strings.Count(text, "# TYPE "+name) != 1 {
			t.Errorf("%s: TYPE emitted more than once", name)
		}
	}

	if got := e.find("test_requests_total", map[string]string{"route": "/v1/jobs"}); len(got) != 1 || got[0].value != 7 {
		t.Errorf("counter sample = %+v, want one sample of 7", got)
	}
	if got := e.find("test_escapes_total", map[string]string{"path": "a\"b\\c\nd"}); len(got) != 1 || got[0].value != 2 {
		t.Errorf("escaped label roundtrip failed: %+v", got)
	}
	if got := e.find("test_goroutines", nil); len(got) != 1 || got[0].value != 42 {
		t.Errorf("gauge func sample = %+v, want 42", got)
	}

	// Histogram: cumulative buckets 1, 3, 4, +Inf=6; sum matches; monotone.
	buckets := e.find("test_latency_seconds_bucket", nil)
	if len(buckets) != 4 {
		t.Fatalf("got %d buckets, want 4 (incl. +Inf): %+v", len(buckets), buckets)
	}
	prev := -1.0
	for _, s := range buckets {
		if s.value < prev {
			t.Errorf("bucket le=%s count %g below previous %g — not cumulative", s.labels["le"], s.value, prev)
		}
		prev = s.value
	}
	last := buckets[len(buckets)-1]
	if last.labels["le"] != "+Inf" {
		t.Errorf("last bucket le=%q, want +Inf", last.labels["le"])
	}
	count := e.find("test_latency_seconds_count", nil)
	if len(count) != 1 || count[0].value != 6 || last.value != count[0].value {
		t.Errorf("count %v vs +Inf bucket %v, want both 6", count, last.value)
	}
	sum := e.find("test_latency_seconds_sum", nil)
	if want := 0.005 + 0.02 + 0.05 + 0.5 + 2 + 3; len(sum) != 1 || math.Abs(sum[0].value-want) > 1e-12 {
		t.Errorf("sum %v, want %g", sum, want)
	}
}

// TestGetOrRegister pins the idempotence contract: the same (name, labels)
// returns the same metric, different labels a different one, and a type
// mismatch panics.
func TestGetOrRegister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_idem_total", "h", L("k", "a"))
	b := r.Counter("test_idem_total", "h", L("k", "a"))
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	if c := r.Counter("test_idem_total", "h", L("k", "b")); c == a {
		t.Error("different labels returned the same counter")
	}
	h1 := r.Histogram("test_idem_seconds", "h", []float64{1, 2})
	h2 := r.Histogram("test_idem_seconds", "h", []float64{5, 6, 7})
	if h1 != h2 {
		t.Error("histogram re-registration returned a new histogram")
	}
	defer func() {
		if recover() == nil {
			t.Error("type mismatch did not panic")
		}
	}()
	r.Gauge("test_idem_total", "h")
}

// TestConcurrentHammer hammers one family from 16 goroutines — the -race
// run proves observation is data-race-free, and the final counts prove no
// increment is lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 10_000
	c := r.Counter("test_hammer_total", "h")
	g := r.Gauge("test_hammer_gauge", "h")
	h := r.Histogram("test_hammer_seconds", "h", []float64{0.25, 0.5, 0.75})
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%100) / 100)
				if i%1000 == 0 {
					// Concurrent scrapes must not race with observers.
					var b strings.Builder
					_ = r.WritePrometheus(&b)
				}
				// Concurrent get-or-register of the same series.
				if r.Counter("test_hammer_total", "h") != c {
					t.Error("get-or-register returned a different counter")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter lost increments: %d, want %d", got, goroutines*perG)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count %d, want %d", h.Count(), goroutines*perG)
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total != h.Count() {
		t.Errorf("bucket sum %d != count %d", total, h.Count())
	}
}

// TestProgressSnapshot covers the nil-safety and accumulation contract.
func TestProgressSnapshot(t *testing.T) {
	var nilP *Progress
	nilP.AddCellsDone(5) // must not panic
	if s := nilP.Snapshot(); s != (ProgressSnapshot{}) {
		t.Errorf("nil snapshot = %+v, want zero", s)
	}
	p := &Progress{}
	p.AddCellsTotal(8)
	p.AddCellsDone(3)
	p.AddTrialBudget(100)
	p.AddTrialsUsed(42)
	want := ProgressSnapshot{CellsDone: 3, CellsTotal: 8, TrialsUsed: 42, TrialBudget: 100}
	if s := p.Snapshot(); s != want {
		t.Errorf("snapshot = %+v, want %+v", s, want)
	}
}

// TestValidation pins the registration-time panics.
func TestValidation(t *testing.T) {
	r := NewRegistry()
	for name, fn := range map[string]func(){
		"bad metric name":      func() { r.Counter("1bad", "h") },
		"bad label name":       func() { r.Counter("test_ok_total", "h", L("0k", "v")) },
		"reserved label name":  func() { r.Counter("test_ok2_total", "h", L("__name__", "v")) },
		"empty buckets":        func() { r.Histogram("test_h_seconds", "h", nil) },
		"unsorted buckets":     func() { r.Histogram("test_h2_seconds", "h", []float64{2, 1}) },
		"duplicate bucket val": func() { r.Histogram("test_h3_seconds", "h", []float64{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestHandlerContentType pins the scrape endpoint's content type.
func TestHandlerContentType(t *testing.T) {
	if !strings.Contains(TextContentType, "version=0.0.4") {
		t.Fatalf("content type %q lost the exposition version", TextContentType)
	}
}

// TestManySeriesOrdering checks deterministic output ordering across
// registration orders.
func TestManySeriesOrdering(t *testing.T) {
	render := func(order []int) string {
		r := NewRegistry()
		for _, i := range order {
			r.Counter("test_order_total", "h", L("i", fmt.Sprint(i))).Add(uint64(i))
		}
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if render([]int{3, 1, 2}) != render([]int{2, 3, 1}) {
		t.Error("exposition depends on registration order")
	}
}
