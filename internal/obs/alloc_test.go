package obs

import (
	"testing"

	"repro/internal/testutil"
)

// TestObserveAllocFree pins the package's core claim: once a metric is
// registered, observing it — counter increments, gauge moves, histogram
// observations, progress updates — allocates nothing. This is what licenses
// instrumentation on the simulation hot paths that the sched/tgrid
// AllocsPerRun guards keep allocation-free.
func TestObserveAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	r := NewRegistry()
	c := r.Counter("test_alloc_total", "h", L("pool", "engine"))
	g := r.Gauge("test_alloc_gauge", "h")
	h := r.Histogram("test_alloc_seconds", "h", DefBuckets)
	p := &Progress{}
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Inc()
		g.Dec()
		g.Set(7)
		h.Observe(0.042)
		h.Observe(1e9) // +Inf bucket
		p.AddCellsDone(1)
		p.AddTrialsUsed(8)
	}); allocs != 0 {
		t.Errorf("steady-state observation allocates %.1f times per run, want 0", allocs)
	}
}

// TestSnapshotAllocFree pins Progress.Snapshot: the watch poll loop and the
// CLI ticker snapshot continuously while jobs run.
func TestSnapshotAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	p := &Progress{}
	p.AddCellsTotal(10)
	var sink ProgressSnapshot
	if allocs := testing.AllocsPerRun(100, func() {
		sink = p.Snapshot()
	}); allocs != 0 {
		t.Errorf("snapshot allocates %.1f times per run, want 0", allocs)
	}
	_ = sink
}
