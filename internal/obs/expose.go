package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Prometheus text exposition content type served by
// Handler.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, one HELP and
// TYPE line per family, series sorted by label signature, histograms
// expanded into cumulative _bucket/_sum/_count lines.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	if r.dirty || len(r.names) != len(r.families) {
		r.names = r.names[:0]
		for name := range r.families {
			r.names = append(r.names, name)
		}
		sort.Strings(r.names)
		r.dirty = false
	}
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		// Snapshot the series list under the lock; values are atomics and
		// need no further synchronisation.
		r.mu.Lock()
		ser := append([]*series(nil), f.series...)
		r.mu.Unlock()

		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range ser {
			switch {
			case s.counter != nil:
				writeSample(&b, f.name, s.labels, "", "", formatUint(s.counter.Value()))
			case s.gaugeFn != nil:
				writeSample(&b, f.name, s.labels, "", "", formatFloat(s.gaugeFn()))
			case s.gauge != nil:
				writeSample(&b, f.name, s.labels, "", "", strconv.FormatInt(s.gauge.Value(), 10))
			case s.histogram != nil:
				h := s.histogram
				cum := uint64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					writeSample(&b, f.name+"_bucket", s.labels, "le", formatFloat(bound), formatUint(cum))
				}
				cum += h.counts[len(h.bounds)].Load()
				writeSample(&b, f.name+"_bucket", s.labels, "le", "+Inf", formatUint(cum))
				writeSample(&b, f.name+"_sum", s.labels, "", "", formatFloat(h.Sum()))
				writeSample(&b, f.name+"_count", s.labels, "", "", formatUint(h.Count()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits one exposition line; extraKey/extraValue append one more
// label pair (the histogram "le" bound).
func writeSample(b *strings.Builder, name string, labels []Label, extraKey, extraValue, value string) {
	b.WriteString(name)
	if len(labels) > 0 || extraKey != "" {
		b.WriteByte('{')
		first := true
		for _, l := range labels {
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		if extraKey != "" {
			if !first {
				b.WriteByte(',')
			}
			b.WriteString(extraKey)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(extraValue))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// formatFloat renders a float the way Prometheus expects: the shortest
// round-trippable form (strconv spells infinities "+Inf"/"-Inf" and NaN
// "NaN", which is exactly the exposition grammar).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in the text exposition format — the GET
// /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WritePrometheus(w)
	})
}
