package obs

import "sync/atomic"

// Progress is a live, lock-free progress record shared between a running job
// and its observers: the campaign/robustness engines add to it from worker
// goroutines (plain atomic adds — nothing the engines report feeds back into
// their outputs), and the job manager, the ?watch long-poll and the CLI
// ticker snapshot it concurrently.
//
// All methods are nil-safe, so engines instrument unconditionally and
// callers that don't track progress simply pass nil.
type Progress struct {
	cellsDone   atomic.Int64
	cellsTotal  atomic.Int64
	trialsUsed  atomic.Int64
	trialBudget atomic.Int64
}

// ProgressSnapshot is one consistent-enough read of a Progress, the
// "progress" object of GET /v1/jobs/{id}. Cells count grid cells (base
// campaign plus, for robustness studies, the Monte Carlo stage's cells);
// trials count Monte Carlo perturbation draws against their budget.
type ProgressSnapshot struct {
	CellsDone   int64 `json:"cells_done"`
	CellsTotal  int64 `json:"cells_total"`
	TrialsUsed  int64 `json:"trials_used,omitempty"`
	TrialBudget int64 `json:"trial_budget,omitempty"`
}

// AddCellsTotal grows the expected cell count (each engine stage adds its
// own share up front).
func (p *Progress) AddCellsTotal(n int64) {
	if p != nil {
		p.cellsTotal.Add(n)
	}
}

// AddCellsDone records n completed cells.
func (p *Progress) AddCellsDone(n int64) {
	if p != nil {
		p.cellsDone.Add(n)
	}
}

// AddTrialBudget grows the Monte Carlo trial budget.
func (p *Progress) AddTrialBudget(n int64) {
	if p != nil {
		p.trialBudget.Add(n)
	}
}

// AddTrialsUsed records n executed trials.
func (p *Progress) AddTrialsUsed(n int64) {
	if p != nil {
		p.trialsUsed.Add(n)
	}
}

// Snapshot reads the current state. A nil Progress snapshots to the zero
// value.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	return ProgressSnapshot{
		CellsDone:   p.cellsDone.Load(),
		CellsTotal:  p.cellsTotal.Load(),
		TrialsUsed:  p.trialsUsed.Load(),
		TrialBudget: p.trialBudget.Load(),
	}
}
