package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tgrid"
)

// BreakdownRow decomposes one algorithm's emulated executions into the
// paper's §V-C activity classes, averaged over the suite: kernel work,
// task-startup overhead, redistribution protocol overhead, and transfer
// time (each as a fraction of the summed activity time).
type BreakdownRow struct {
	Algo                                            string
	Kernel, Startup, RedistOverhead, RedistTransfer float64
	// OverheadShareOfMakespan is the mean of (startup+redist overhead)
	// per makespan second across the suite, the portion of real time the
	// analytic simulator cannot see.
	OverheadShareOfMakespan float64
}

// TimeBreakdown schedules the whole suite with the analytic model (the
// schedules whose execution the paper analyses in §V-C), executes them on
// the emulated cluster and reports where the time goes per algorithm.
func (l *Lab) TimeBreakdown() ([]BreakdownRow, error) {
	cost := perfmodel.CostFunc(l.Analytic)
	comm := perfmodel.CommFunc(l.Analytic, l.Cluster())
	var rows []BreakdownRow
	for _, algo := range ComparedAlgorithms() {
		type cellOut struct {
			b     tgrid.Breakdown
			share float64
		}
		cells := make([]cellOut, len(l.Suite))
		err := l.runner().Run("breakdown/"+algo.Name(), len(l.Suite), func(i int, sess *cluster.Session) error {
			s, err := sched.Build(algo, l.Suite[i].Graph, l.Cluster().Nodes, cost, comm)
			if err != nil {
				return err
			}
			res, err := sess.Execute(s)
			if err != nil {
				return err
			}
			b := res.Breakdown()
			cells[i] = cellOut{b: b, share: (b.Startup + b.RedistOverhead) / res.Makespan}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: breakdown %s: %w", algo.Name(), err)
		}
		var total tgrid.Breakdown
		var shares []float64
		for _, c := range cells {
			total.Kernel += c.b.Kernel
			total.Startup += c.b.Startup
			total.RedistOverhead += c.b.RedistOverhead
			total.RedistTransfer += c.b.RedistTransfer
			shares = append(shares, c.share)
		}
		sum := total.Kernel + total.Startup + total.RedistOverhead + total.RedistTransfer
		rows = append(rows, BreakdownRow{
			Algo:                    algo.Name(),
			Kernel:                  total.Kernel / sum,
			Startup:                 total.Startup / sum,
			RedistOverhead:          total.RedistOverhead / sum,
			RedistTransfer:          total.RedistTransfer / sum,
			OverheadShareOfMakespan: stats.Mean(shares),
		})
	}
	return rows, nil
}

// WriteBreakdown prints the activity-time decomposition.
func WriteBreakdown(w io.Writer, rows []BreakdownRow) {
	fmt.Fprintln(w, "Time breakdown — where emulated executions spend activity time (§V-C)")
	fmt.Fprintf(w, "  %-6s %8s %9s %14s %10s %22s\n",
		"algo", "kernel", "startup", "redist ovhd", "transfer", "overheads/makespan")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-6s %7.1f%% %8.1f%% %13.1f%% %9.1f%% %21.1f%%\n",
			r.Algo, 100*r.Kernel, 100*r.Startup, 100*r.RedistOverhead,
			100*r.RedistTransfer, 100*r.OverheadShareOfMakespan)
	}
}

// ShapeRow is one workflow skeleton of the shape study.
type ShapeRow struct {
	Shape        string
	Tasks        int
	Width        int
	BestAlgoSim  string
	BestAlgoExp  string
	ProfileAgree bool
}

// ShapeStudy runs the HCPA/MCPA comparison on structured workflow
// skeletons (chain, fork-join, layered, diamond) instead of the random
// suite, checking whether the paper's conclusion — profile simulation picks
// the experimentally better algorithm — transfers to realistic workflow
// structures (§II notes production workflows are structured).
func (l *Lab) ShapeStudy() ([]ShapeRow, error) {
	shapes := []*dag.Graph{
		dag.Chain(10, 2000, dag.KernelMul, dag.KernelAdd),
		dag.ForkJoin(4, 2, 2000),
		dag.Layered(3, 3, 2000),
		dag.Diamond(2000),
	}
	rows := make([]ShapeRow, len(shapes))
	err := l.runner().Run("shapes", len(shapes), func(i int, sess *cluster.Session) error {
		g := shapes[i]
		row := ShapeRow{Shape: g.Name, Tasks: g.Len(), Width: g.Width()}
		model := l.Profile
		cost := perfmodel.CostFunc(model)
		comm := perfmodel.CommFunc(model, l.Cluster())
		sim := map[string]float64{}
		exp := map[string]float64{}
		for _, algo := range ComparedAlgorithms() {
			s, err := sched.Build(algo, g, l.Cluster().Nodes, cost, comm)
			if err != nil {
				return err
			}
			simRes, err := tgrid.Run(l.Net, s, tgrid.ModelTiming{Model: model})
			if err != nil {
				return err
			}
			measured, err := sess.MeasureMakespan(s, l.Cfg.ExpTrials)
			if err != nil {
				return err
			}
			sim[algo.Name()] = simRes.Makespan
			exp[algo.Name()] = measured
		}
		row.BestAlgoSim, row.BestAlgoExp = "HCPA", "HCPA"
		if sim["MCPA"] < sim["HCPA"] {
			row.BestAlgoSim = "MCPA"
		}
		if exp["MCPA"] < exp["HCPA"] {
			row.BestAlgoExp = "MCPA"
		}
		row.ProfileAgree = row.BestAlgoSim == row.BestAlgoExp
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: shapes: %w", err)
	}
	return rows, nil
}

// WriteShapes prints the shape-study table.
func WriteShapes(w io.Writer, rows []ShapeRow) {
	fmt.Fprintln(w, "Shape study — profile simulation vs experiment on workflow skeletons")
	fmt.Fprintf(w, "  %-22s %6s %6s %10s %10s %7s\n", "shape", "tasks", "width", "sim best", "exp best", "agree")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-22s %6d %6d %10s %10s %7v\n",
			r.Shape, r.Tasks, r.Width, r.BestAlgoSim, r.BestAlgoExp, r.ProfileAgree)
	}
}
