package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// lab is shared across tests; building it runs both profiling campaigns.
var lab *Lab

func TestMain(m *testing.M) {
	var err error
	lab, err = NewLab(DefaultConfig())
	if err != nil {
		panic(err)
	}
	os.Exit(m.Run())
}

func TestTable1MatchesPaper(t *testing.T) {
	tab := lab.Table1()
	if tab.Tasks != 10 || tab.Samples != 3 || tab.Instances != 54 {
		t.Errorf("Table1 = %+v", tab)
	}
	var buf bytes.Buffer
	tab.Write(&buf)
	for _, want := range []string{"number of tasks", "54", "[2 4 8]", "[0.5 0.75 1]", "[2000 3000]"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table1 output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRunSuiteCachedAndComplete(t *testing.T) {
	recs, err := lab.RunSuite("analytic")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 54 {
		t.Fatalf("RunSuite returned %d records", len(recs))
	}
	for _, rec := range recs {
		for _, algo := range []string{"HCPA", "MCPA"} {
			if rec.Sim[algo] <= 0 || rec.Exp[algo] <= 0 {
				t.Fatalf("%s: non-positive makespans %v %v", rec.Instance.Params.Name(), rec.Sim, rec.Exp)
			}
			// Analytic simulation must underestimate the experiment.
			if rec.Sim[algo] >= rec.Exp[algo] {
				t.Errorf("%s/%s: analytic sim %g ≥ experiment %g",
					rec.Instance.Params.Name(), algo, rec.Sim[algo], rec.Exp[algo])
			}
		}
	}
	again, err := lab.RunSuite("analytic")
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &recs[0] {
		t.Error("RunSuite results not cached")
	}
}

func TestRunSuiteUnknownModel(t *testing.T) {
	if _, err := lab.RunSuite("quantum"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestComparisonHeadlines(t *testing.T) {
	total := map[string]int{}
	for _, model := range ModelNames() {
		for _, n := range []int{2000, 3000} {
			c, err := lab.CompareHCPAMCPA(model, n)
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Points) != 27 {
				t.Fatalf("%s n=%d: %d points", model, n, len(c.Points))
			}
			for i := 1; i < len(c.Points); i++ {
				if c.Points[i-1].SimRel > c.Points[i].SimRel {
					t.Errorf("%s n=%d: points not sorted by simulated rel", model, n)
				}
			}
			// HCPA and MCPA schedules always differ in simulation.
			for _, p := range c.Points {
				if p.SimHCPA == p.SimMCPA {
					t.Errorf("%s n=%d %s: identical simulated makespans", model, n, p.Name)
				}
			}
			total[model] += c.Mispredicted
		}
	}
	// The paper's core finding, as shape: the analytic simulator flips the
	// winner on a large fraction of DAGs; the profile-based one on very
	// few; the empirical one in between.
	if total["analytic"] < 8 {
		t.Errorf("analytic mispredictions %d/54, want ≥ 8", total["analytic"])
	}
	if total["profile"] > 5 {
		t.Errorf("profile mispredictions %d/54, want ≤ 5", total["profile"])
	}
	if total["analytic"] <= total["profile"] {
		t.Errorf("analytic (%d) not worse than profile (%d)", total["analytic"], total["profile"])
	}
	if total["empirical"] > total["analytic"] {
		t.Errorf("empirical (%d) worse than analytic (%d)", total["empirical"], total["analytic"])
	}
	if total["empirical"] < total["profile"] {
		t.Logf("note: empirical (%d) below profile (%d); paper has empirical ≥ profile",
			total["empirical"], total["profile"])
	}
}

func TestComparisonWriteFormat(t *testing.T) {
	c, err := lab.CompareHCPAMCPA("analytic", 2000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	c.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "wrong winner") {
		t.Errorf("comparison output malformed:\n%s", out)
	}
}

func TestFigure2JavaErrors(t *testing.T) {
	series, err := lab.Figure2Java(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	maxErr := 0.0
	for _, s := range series {
		if len(s.P) != 32 {
			t.Fatalf("series %s has %d points", s.Label, len(s.P))
		}
		for i, e := range s.Err {
			if e < 0 || e > 0.95 {
				t.Errorf("%s p=%d error %g out of band", s.Label, s.P[i], e)
			}
			if e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr < 0.5 {
		t.Errorf("max Java analytic error %g, want ≥ 0.5 (paper: up to 60%%)", maxErr)
	}
}

func TestFigure2FranklinErrors(t *testing.T) {
	series := Figure2Franklin()
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		for i, e := range s.Err {
			if e > 0.30 {
				t.Errorf("%s p=%d error %g, want ≤ 0.30 (paper: ≤ ~20%%)", s.Label, s.P[i], e)
			}
		}
	}
}

func TestFigure3Startup(t *testing.T) {
	s, err := lab.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.P) != 32 {
		t.Fatalf("%d points", len(s.P))
	}
	monotone := true
	for i := 1; i < len(s.Seconds); i++ {
		if s.Seconds[i] < s.Seconds[i-1] {
			monotone = false
		}
	}
	if monotone {
		t.Error("startup series monotone; Figure 3 is not")
	}
	var buf bytes.Buffer
	s.Write(&buf)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Error("missing header")
	}
}

func TestFigure4Surface(t *testing.T) {
	r, err := lab.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Overhead) != 32 {
		t.Fatalf("surface has %d rows", len(r.Overhead))
	}
	if r.ByDst[32] <= r.ByDst[1] {
		t.Error("overhead not increasing with p(dst)")
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Error("missing header")
	}
}

func TestFigure6FitQuality(t *testing.T) {
	for _, n := range []int{2000, 3000} {
		study, err := lab.Figure6(n)
		if err != nil {
			t.Fatal(err)
		}
		// The final point set must beat the naive one clearly.
		if study.FinalMeanErr >= study.NaiveMeanErr {
			t.Errorf("n=%d: final fit mean error %g not below naive %g",
				n, study.FinalMeanErr, study.NaiveMeanErr)
		}
		// The scan must flag the paper's p=8 and p=16 outliers for
		// n = 3000 (Figure 6's caption names that size).
		if n == 3000 {
			found := map[float64]bool{}
			for _, p := range study.DetectedOutliers {
				found[p] = true
			}
			if !found[8] || !found[16] {
				t.Errorf("n=3000: outliers detected %v, want both 8 and 16", study.DetectedOutliers)
			}
		}
		var buf bytes.Buffer
		study.Write(&buf)
		if !strings.Contains(buf.String(), "Figure 6") {
			t.Error("missing header")
		}
	}
}

func TestFigure8Separation(t *testing.T) {
	boxes, err := lab.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 6 {
		t.Fatalf("%d boxes", len(boxes))
	}
	med := map[string]float64{}
	for _, b := range boxes {
		if len(b.Errors) != 54 {
			t.Errorf("%s/%s: %d errors", b.Model, b.Algo, len(b.Errors))
		}
		if cur, ok := med[b.Model]; !ok || b.Box.Median > cur {
			med[b.Model] = b.Box.Median
		}
	}
	// The paper: analytic errors are larger than the other two versions by
	// orders of magnitude.
	if med["analytic"] < 10*med["profile"] {
		t.Errorf("analytic median %g not ≫ profile median %g", med["analytic"], med["profile"])
	}
	if med["analytic"] < 5*med["empirical"] {
		t.Errorf("analytic median %g not ≫ empirical median %g", med["analytic"], med["empirical"])
	}
	if med["empirical"] < med["profile"] {
		t.Logf("note: empirical median %g below profile %g", med["empirical"], med["profile"])
	}
}

func TestTable2Coefficients(t *testing.T) {
	var buf bytes.Buffer
	lab.Table2(&buf)
	out := buf.String()
	for _, want := range []string{"Table II", "multiplication", "addition", "redistribution", "task startup"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II output missing %q", want)
		}
	}
	// The fitted overhead coefficients must land near the ground truth
	// that generated them (Table II: 0.03·p + 0.65 and 7.88·p + 108.58).
	e := lab.Empirical
	if e.StartupFit.A < 0.005 || e.StartupFit.A > 0.08 {
		t.Errorf("startup slope %g far from 0.03", e.StartupFit.A)
	}
	if e.StartupFit.B < 0.3 || e.StartupFit.B > 1.1 {
		t.Errorf("startup intercept %g far from 0.65", e.StartupFit.B)
	}
	if a := 1000 * e.RedistFit.A; a < 4 || a > 12 {
		t.Errorf("redistribution slope %g ms far from 7.88", a)
	}
	if b := 1000 * e.RedistFit.B; b < 60 || b > 180 {
		t.Errorf("redistribution intercept %g ms far from 108.58", b)
	}
}

func TestModelLookup(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := lab.Model(name)
		if err != nil || m.Name() != name {
			t.Errorf("Model(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := lab.Model("nope"); err == nil {
		t.Error("unknown model accepted")
	}
}
