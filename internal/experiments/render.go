package experiments

import (
	"context"
	"fmt"
	"io"
)

// This file is the single study-dispatch point shared by cmd/mixedsim and
// the service layer: both render a study by name through RenderStudy, so
// their outputs are byte-identical by construction rather than by keeping
// two hand-copied switches in sync.

// StudyNames lists every renderable study, in cmd/mixedsim's "all" order.
func StudyNames() []string {
	return []string{
		"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "table2", "ablation", "scaling", "sensitivity", "breakdown",
		"shapes", "environments", "hetero", "straggler",
	}
}

// LabFunc lazily supplies the lab for lab-based studies, so rendering a
// standalone study (scaling, sensitivity, straggler, hetero, environments —
// they assemble their own environments from cfg) never builds one.
type LabFunc func() (*Lab, error)

// RenderStudy writes one study's report to w, aborting between cells once
// ctx is done. cfg drives the standalone studies; labFn supplies the lab
// for the rest.
func RenderStudy(ctx context.Context, name string, cfg Config, labFn LabFunc, w io.Writer) error {
	switch name {
	case "scaling":
		rows, err := ScalingStudyCtx(ctx, cfg, []int{32, 64, 128})
		if err != nil {
			return err
		}
		WriteScaling(w, rows)
		return nil
	case "sensitivity":
		rows, err := NoiseSensitivityCtx(ctx, cfg, []float64{0, 0.01, 0.03, 0.1, 0.2})
		if err != nil {
			return err
		}
		WriteSensitivity(w, rows)
		return nil
	case "straggler":
		rows, err := StragglerStudyCtx(ctx, cfg)
		if err != nil {
			return err
		}
		WriteStraggler(w, rows)
		return nil
	case "hetero":
		rows, err := HeterogeneityStudyCtx(ctx, cfg)
		if err != nil {
			return err
		}
		WriteHetero(w, rows)
		return nil
	case "environments":
		rows, err := EnvironmentStudyCtx(ctx, cfg)
		if err != nil {
			return err
		}
		WriteEnvironments(w, rows)
		return nil
	}

	lab, err := labFn()
	if err != nil {
		return err
	}
	lab = lab.WithContext(ctx)

	switch name {
	case "table1":
		lab.Table1().Write(w)
	case "fig1", "fig5", "fig7":
		model := map[string]string{"fig1": "analytic", "fig5": "profile", "fig7": "empirical"}[name]
		for _, n := range []int{2000, 3000} {
			c, err := lab.CompareHCPAMCPA(model, n)
			if err != nil {
				return err
			}
			c.Write(w)
			fmt.Fprintln(w)
		}
	case "fig2":
		series, err := lab.Figure2Java(3)
		if err != nil {
			return err
		}
		WriteErrorSeries(w,
			"Figure 2 (left) — relative error of the analytic model, 1D MM/Java",
			series)
		fmt.Fprintln(w)
		WriteErrorSeries(w,
			"Figure 2 (right) — relative error of the analytic model, PDGEMM/Cray XT4",
			Figure2Franklin())
	case "fig3":
		series, err := lab.Figure3()
		if err != nil {
			return err
		}
		series.Write(w)
	case "fig4":
		surface, err := lab.Figure4()
		if err != nil {
			return err
		}
		surface.Write(w)
	case "fig6":
		for _, n := range []int{2000, 3000} {
			study, err := lab.Figure6(n)
			if err != nil {
				return err
			}
			study.Write(w)
			fmt.Fprintln(w)
		}
	case "fig8":
		boxes, err := lab.Figure8()
		if err != nil {
			return err
		}
		WriteFigure8(w, boxes)
	case "table2":
		lab.Table2(w)
	case "ablation":
		rows, err := lab.Ablation()
		if err != nil {
			return err
		}
		WriteAblation(w, rows)
	case "breakdown":
		rows, err := lab.TimeBreakdown()
		if err != nil {
			return err
		}
		WriteBreakdown(w, rows)
	case "shapes":
		rows, err := lab.ShapeStudy()
		if err != nil {
			return err
		}
		WriteShapes(w, rows)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	// The serial lab studies (table1, fig6, table2) ignore ctx mid-run;
	// never report a cancelled render as success.
	return ctx.Err()
}
