// Package experiments orchestrates the paper's evaluation (§V–§VII): it
// assembles the platform, the ground-truth environment, the three simulator
// models and the 54-DAG workload, and regenerates every table and figure.
// Each experiment returns a typed result with a Write method that prints
// the same rows/series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/sched"
	"repro/internal/simgrid"
	"repro/internal/tgrid"
)

// Config selects the workload seeds and measurement effort.
type Config struct {
	// SuiteSeed derives the 54 random DAGs of Table I.
	SuiteSeed int64
	// NoiseSeed seeds the environment's run-to-run noise.
	NoiseSeed int64
	// ExpTrials is the number of emulated cluster runs averaged per
	// measured makespan (the paper executes each schedule once).
	ExpTrials int
	// Parallelism bounds the study-execution worker pool; zero selects one
	// worker per logical CPU. Study reports are byte-identical for every
	// value, including 1.
	Parallelism int
	// Profile configures the brute-force campaign of §VI.
	Profile profiler.ProfileOptions
	// Empirical configures the sparse campaign of §VII.
	Empirical profiler.EmpiricalOptions
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{
		SuiteSeed: 2011,
		NoiseSeed: 42,
		ExpTrials: 1,
		Profile:   profiler.DefaultProfileOptions(),
		Empirical: profiler.DefaultEmpiricalOptions(),
	}
}

// Lab is the assembled experimental setup: platform, environment, workload
// and the three simulator models (the profile-based and empirical models
// are built by actually running the measurement campaigns against the
// environment, never by reading its hidden curves).
type Lab struct {
	Cfg   Config
	Truth *cluster.Hidden
	Em    *cluster.Emulator
	Net   *simgrid.Net
	Suite []dag.SuiteInstance

	Analytic  *perfmodel.Analytic
	Profile   *perfmodel.Profile
	Empirical *perfmodel.Empirical

	// ctx, when non-nil, cancels the lab's studies (see WithContext).
	ctx context.Context
	// cache is shared between a lab and its WithContext copies.
	cache *recordCache
}

// recordCache holds the cached pipeline runs per model name, plus the
// in-flight markers that let concurrent RunSuite callers coalesce on one
// computation instead of racing to duplicate it.
type recordCache struct {
	mu       sync.Mutex
	records  map[string][]Record
	inflight map[string]chan struct{} // closed when the winner finishes
}

// WithContext returns a lab view whose studies abort once ctx is done:
// cells that have not started are skipped and the study returns ctx.Err().
// The view shares the environment, the models and the record cache with the
// receiver, so a long-running service can hand each request its own
// cancellable view of one lab.
func (l *Lab) WithContext(ctx context.Context) *Lab {
	view := *l
	view.ctx = ctx
	return &view
}

// context returns the lab's cancellation context (Background if unset).
func (l *Lab) context() context.Context {
	if l.ctx == nil {
		return context.Background()
	}
	return l.ctx
}

// runner returns the lab's study-execution engine.
func (l *Lab) runner() Runner {
	return Runner{Workers: l.Cfg.Parallelism, Seed: l.Cfg.NoiseSeed, Em: l.Em, Ctx: l.ctx}
}

// NewLab builds the full setup, including both profiling campaigns.
func NewLab(cfg Config) (*Lab, error) {
	truth := cluster.Bayreuth()
	em, err := cluster.NewEmulator(truth, cfg.NoiseSeed)
	if err != nil {
		return nil, err
	}
	prof, err := profiler.BuildProfileModel(em, cfg.Profile)
	if err != nil {
		return nil, fmt.Errorf("experiments: profile campaign: %w", err)
	}
	emp, err := profiler.BuildEmpiricalModel(em, cfg.Empirical)
	if err != nil {
		return nil, fmt.Errorf("experiments: empirical campaign: %w", err)
	}
	return AssembleLab(cfg, truth, em, prof, emp)
}

// AssembleLab builds a lab around an already-measured environment: the
// caller supplies the ground truth, the emulator the campaigns probed and
// the two fitted models (typically from a registry cache that ran the
// campaigns once and reuses the fits across many labs — the paper's
// fit-once/reuse-many economics). Studies on the assembled lab are
// byte-identical to NewLab's for the same Config, provided the models were
// built the way NewLab builds them: profile campaign first, then empirical,
// on a fresh emulator seeded with Config.NoiseSeed.
func AssembleLab(cfg Config, truth *cluster.Hidden, em *cluster.Emulator,
	prof *perfmodel.Profile, emp *perfmodel.Empirical) (*Lab, error) {
	net, err := simgrid.NewNet(truth.Cluster)
	if err != nil {
		return nil, err
	}
	suite, err := dag.GenerateSuite(cfg.SuiteSeed)
	if err != nil {
		return nil, err
	}
	return &Lab{
		Cfg:       cfg,
		Truth:     truth,
		Em:        em,
		Net:       net,
		Suite:     suite,
		Analytic:  perfmodel.NewAnalytic(truth.Cluster),
		Profile:   prof,
		Empirical: emp,
		cache: &recordCache{
			records:  make(map[string][]Record),
			inflight: make(map[string]chan struct{}),
		},
	}, nil
}

// Cluster returns the nominal platform.
func (l *Lab) Cluster() platform.Cluster { return l.Truth.Cluster }

// Model returns the simulator model by name ("analytic", "profile",
// "empirical").
func (l *Lab) Model(name string) (perfmodel.Model, error) {
	switch name {
	case "analytic":
		return l.Analytic, nil
	case "profile":
		return l.Profile, nil
	case "empirical":
		return l.Empirical, nil
	default:
		return nil, fmt.Errorf("experiments: unknown model %q", name)
	}
}

// ModelNames lists the three simulator variants in paper order.
func ModelNames() []string { return []string{"analytic", "profile", "empirical"} }

// Record is one suite instance pushed through the pipeline with one model:
// per-algorithm simulated and experimentally measured makespans.
type Record struct {
	Instance dag.SuiteInstance
	// Sim and Exp map algorithm name to makespan in seconds.
	Sim, Exp map[string]float64
}

// ComparedAlgorithms are the two algorithms of the case study.
func ComparedAlgorithms() []sched.Algorithm {
	return []sched.Algorithm{sched.HCPA{}, sched.MCPA{}}
}

// RunSuite pushes the whole 54-DAG suite through the pipeline with the
// given model: schedule (per algorithm) → simulate → execute on the
// emulated cluster. Instances run as independent cells on the study engine;
// results are cached per model name, and concurrent callers for the same
// model coalesce on a single computation.
func (l *Lab) RunSuite(modelName string) ([]Record, error) {
	ctx := l.context()
	c := l.cache
	for {
		if err := ctx.Err(); err != nil {
			return nil, err // honour WithContext even when the cache could answer
		}
		c.mu.Lock()
		if recs, ok := c.records[modelName]; ok {
			c.mu.Unlock()
			return recs, nil
		}
		wait, running := c.inflight[modelName]
		if !running {
			c.inflight[modelName] = make(chan struct{})
			c.mu.Unlock()
			break // this caller computes
		}
		c.mu.Unlock()
		select {
		case <-wait:
			// The winner finished (or failed — then the next lap retries).
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	recs, err := l.runSuite(modelName)
	c.mu.Lock()
	if err == nil {
		c.records[modelName] = recs
	}
	wait := c.inflight[modelName]
	delete(c.inflight, modelName)
	c.mu.Unlock()
	close(wait)
	return recs, err
}

// runSuite computes the suite records of one model (the cache-miss path).
func (l *Lab) runSuite(modelName string) ([]Record, error) {
	model, err := l.Model(modelName)
	if err != nil {
		return nil, err
	}
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, l.Cluster())
	algos := ComparedAlgorithms()

	recs := make([]Record, len(l.Suite))
	err = l.runner().Run("suite/"+modelName, len(l.Suite), func(i int, sess *cluster.Session) error {
		inst := l.Suite[i]
		rec := Record{
			Instance: inst,
			Sim:      make(map[string]float64, len(algos)),
			Exp:      make(map[string]float64, len(algos)),
		}
		for _, algo := range algos {
			s, err := sched.Build(algo, inst.Graph, l.Cluster().Nodes, cost, comm)
			if err != nil {
				return fmt.Errorf("experiments: %s/%s on %s: %w",
					modelName, algo.Name(), inst.Params.Name(), err)
			}
			s.Model = modelName
			simRes, err := tgrid.Run(l.Net, s, tgrid.ModelTiming{Model: model})
			if err != nil {
				return fmt.Errorf("experiments: simulate %s/%s on %s: %w",
					modelName, algo.Name(), inst.Params.Name(), err)
			}
			exp, err := sess.MeasureMakespan(s, l.Cfg.ExpTrials)
			if err != nil {
				return fmt.Errorf("experiments: execute %s/%s on %s: %w",
					modelName, algo.Name(), inst.Params.Name(), err)
			}
			rec.Sim[algo.Name()] = simRes.Makespan
			rec.Exp[algo.Name()] = exp
		}
		recs[i] = rec
		return nil
	})
	if err != nil {
		return nil, err
	}
	return recs, nil
}
