// Package experiments orchestrates the paper's evaluation (§V–§VII): it
// assembles the platform, the ground-truth environment, the three simulator
// models and the 54-DAG workload, and regenerates every table and figure.
// Each experiment returns a typed result with a Write method that prints
// the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/sched"
	"repro/internal/simgrid"
	"repro/internal/tgrid"
)

// Config selects the workload seeds and measurement effort.
type Config struct {
	// SuiteSeed derives the 54 random DAGs of Table I.
	SuiteSeed int64
	// NoiseSeed seeds the environment's run-to-run noise.
	NoiseSeed int64
	// ExpTrials is the number of emulated cluster runs averaged per
	// measured makespan (the paper executes each schedule once).
	ExpTrials int
	// Parallelism bounds the study-execution worker pool; zero selects one
	// worker per logical CPU. Study reports are byte-identical for every
	// value, including 1.
	Parallelism int
	// Profile configures the brute-force campaign of §VI.
	Profile profiler.ProfileOptions
	// Empirical configures the sparse campaign of §VII.
	Empirical profiler.EmpiricalOptions
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{
		SuiteSeed: 2011,
		NoiseSeed: 42,
		ExpTrials: 1,
		Profile:   profiler.DefaultProfileOptions(),
		Empirical: profiler.DefaultEmpiricalOptions(),
	}
}

// Lab is the assembled experimental setup: platform, environment, workload
// and the three simulator models (the profile-based and empirical models
// are built by actually running the measurement campaigns against the
// environment, never by reading its hidden curves).
type Lab struct {
	Cfg   Config
	Truth *cluster.Hidden
	Em    *cluster.Emulator
	Net   *simgrid.Net
	Suite []dag.SuiteInstance

	Analytic  *perfmodel.Analytic
	Profile   *perfmodel.Profile
	Empirical *perfmodel.Empirical

	mu      sync.Mutex
	records map[string][]Record // cached pipeline runs per model name
}

// runner returns the lab's study-execution engine.
func (l *Lab) runner() Runner {
	return Runner{Workers: l.Cfg.Parallelism, Seed: l.Cfg.NoiseSeed, Em: l.Em}
}

// NewLab builds the full setup, including both profiling campaigns.
func NewLab(cfg Config) (*Lab, error) {
	truth := cluster.Bayreuth()
	em, err := cluster.NewEmulator(truth, cfg.NoiseSeed)
	if err != nil {
		return nil, err
	}
	net, err := simgrid.NewNet(truth.Cluster)
	if err != nil {
		return nil, err
	}
	suite, err := dag.GenerateSuite(cfg.SuiteSeed)
	if err != nil {
		return nil, err
	}
	prof, err := profiler.BuildProfileModel(em, cfg.Profile)
	if err != nil {
		return nil, fmt.Errorf("experiments: profile campaign: %w", err)
	}
	emp, err := profiler.BuildEmpiricalModel(em, cfg.Empirical)
	if err != nil {
		return nil, fmt.Errorf("experiments: empirical campaign: %w", err)
	}
	return &Lab{
		Cfg:       cfg,
		Truth:     truth,
		Em:        em,
		Net:       net,
		Suite:     suite,
		Analytic:  perfmodel.NewAnalytic(truth.Cluster),
		Profile:   prof,
		Empirical: emp,
		records:   make(map[string][]Record),
	}, nil
}

// Cluster returns the nominal platform.
func (l *Lab) Cluster() platform.Cluster { return l.Truth.Cluster }

// Model returns the simulator model by name ("analytic", "profile",
// "empirical").
func (l *Lab) Model(name string) (perfmodel.Model, error) {
	switch name {
	case "analytic":
		return l.Analytic, nil
	case "profile":
		return l.Profile, nil
	case "empirical":
		return l.Empirical, nil
	default:
		return nil, fmt.Errorf("experiments: unknown model %q", name)
	}
}

// ModelNames lists the three simulator variants in paper order.
func ModelNames() []string { return []string{"analytic", "profile", "empirical"} }

// Record is one suite instance pushed through the pipeline with one model:
// per-algorithm simulated and experimentally measured makespans.
type Record struct {
	Instance dag.SuiteInstance
	// Sim and Exp map algorithm name to makespan in seconds.
	Sim, Exp map[string]float64
}

// ComparedAlgorithms are the two algorithms of the case study.
func ComparedAlgorithms() []sched.Algorithm {
	return []sched.Algorithm{sched.HCPA{}, sched.MCPA{}}
}

// RunSuite pushes the whole 54-DAG suite through the pipeline with the
// given model: schedule (per algorithm) → simulate → execute on the
// emulated cluster. Instances run as independent cells on the study engine;
// results are cached per model name.
func (l *Lab) RunSuite(modelName string) ([]Record, error) {
	l.mu.Lock()
	recs, ok := l.records[modelName]
	l.mu.Unlock()
	if ok {
		return recs, nil
	}
	model, err := l.Model(modelName)
	if err != nil {
		return nil, err
	}
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, l.Cluster())
	algos := ComparedAlgorithms()

	recs = make([]Record, len(l.Suite))
	err = l.runner().Run("suite/"+modelName, len(l.Suite), func(i int, sess *cluster.Session) error {
		inst := l.Suite[i]
		rec := Record{
			Instance: inst,
			Sim:      make(map[string]float64, len(algos)),
			Exp:      make(map[string]float64, len(algos)),
		}
		for _, algo := range algos {
			s, err := sched.Build(algo, inst.Graph, l.Cluster().Nodes, cost, comm)
			if err != nil {
				return fmt.Errorf("experiments: %s/%s on %s: %w",
					modelName, algo.Name(), inst.Params.Name(), err)
			}
			s.Model = modelName
			simRes, err := tgrid.Run(l.Net, s, tgrid.ModelTiming{Model: model})
			if err != nil {
				return fmt.Errorf("experiments: simulate %s/%s on %s: %w",
					modelName, algo.Name(), inst.Params.Name(), err)
			}
			exp, err := sess.MeasureMakespan(s, l.Cfg.ExpTrials)
			if err != nil {
				return fmt.Errorf("experiments: execute %s/%s on %s: %w",
					modelName, algo.Name(), inst.Params.Name(), err)
			}
			rec.Sim[algo.Name()] = simRes.Makespan
			rec.Exp[algo.Name()] = exp
		}
		recs[i] = rec
		return nil
	})
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	if cached, ok := l.records[modelName]; ok {
		recs = cached // a concurrent caller won the race; keep one slice
	} else {
		l.records[modelName] = recs
	}
	l.mu.Unlock()
	return recs, nil
}
