package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/profiler"
	"repro/internal/regression"
	"repro/internal/stats"
)

// newFranklin builds the calibrated Cray XT4 environment of Figure 2.
func newFranklin() *cluster.FranklinProfile { return cluster.NewFranklinProfile() }

// ---------------------------------------------------------------- Table I

// Table1 reports the DAG-generator parameter grid and the realised suite.
type Table1 struct {
	Tasks     int
	Widths    []int
	Ratios    []float64
	Sizes     []int
	Samples   int
	Instances int
}

// Table1 regenerates Table I from the lab's suite.
func (l *Lab) Table1() Table1 {
	return Table1{
		Tasks:     dag.SuiteTasks,
		Widths:    dag.SuiteWidths,
		Ratios:    dag.SuiteRatios,
		Sizes:     dag.SuiteSizes,
		Samples:   dag.SuiteSamples,
		Instances: len(l.Suite),
	}
}

// Write prints the table in the paper's layout.
func (t Table1) Write(w io.Writer) {
	fmt.Fprintln(w, "Table I — parameters used for generating random DAGs")
	fmt.Fprintf(w, "  %-42s %v\n", "number of tasks", t.Tasks)
	fmt.Fprintf(w, "  %-42s %v\n", "number of input matrices (DAG width)", t.Widths)
	fmt.Fprintf(w, "  %-42s %v\n", "ratio addition / multiplication tasks", t.Ratios)
	fmt.Fprintf(w, "  %-42s %v\n", "matrix size (# elements per dimension)", t.Sizes)
	fmt.Fprintf(w, "  %-42s %v\n", "number of samples", t.Samples)
	fmt.Fprintf(w, "  %-42s %v\n", "total DAG instances", t.Instances)
}

// --------------------------------------------------- Figures 1, 5 and 7

// PairPoint is one DAG's relative HCPA-vs-MCPA makespan, simulated and
// measured.
type PairPoint struct {
	Name             string
	SimRel, ExpRel   float64
	SimHCPA, SimMCPA float64
	ExpHCPA, ExpMCPA float64
}

// Comparison is the Figure 1/5/7 payload: one bar pair per DAG, sorted by
// simulated relative makespan, plus the headline misprediction count.
type Comparison struct {
	Model        string
	N            int
	Points       []PairPoint
	Mispredicted int
}

// CompareHCPAMCPA regenerates the Figure 1 (analytic), Figure 5 (profile)
// or Figure 7 (empirical) comparison for one matrix size.
func (l *Lab) CompareHCPAMCPA(modelName string, n int) (*Comparison, error) {
	recs, err := l.RunSuite(modelName)
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{Model: modelName, N: n}
	var simRels, expRels []float64
	for _, rec := range recs {
		if rec.Instance.Params.N != n {
			continue
		}
		p := PairPoint{
			Name:    rec.Instance.Params.Name(),
			SimHCPA: rec.Sim["HCPA"],
			SimMCPA: rec.Sim["MCPA"],
			ExpHCPA: rec.Exp["HCPA"],
			ExpMCPA: rec.Exp["MCPA"],
			SimRel:  stats.RelDiff(rec.Sim["HCPA"], rec.Sim["MCPA"]),
			ExpRel:  stats.RelDiff(rec.Exp["HCPA"], rec.Exp["MCPA"]),
		}
		cmp.Points = append(cmp.Points, p)
		simRels = append(simRels, p.SimRel)
		expRels = append(expRels, p.ExpRel)
	}
	sort.Slice(cmp.Points, func(a, b int) bool { return cmp.Points[a].SimRel < cmp.Points[b].SimRel })
	cmp.Mispredicted = stats.CountDisagreements(simRels, expRels, 0)
	return cmp, nil
}

// Write prints the figure's series plus the paper's headline count.
func (c *Comparison) Write(w io.Writer) {
	fig := map[string]string{"analytic": "Figure 1", "profile": "Figure 5", "empirical": "Figure 7"}[c.Model]
	fmt.Fprintf(w, "%s — HCPA makespan relative to MCPA (%s models, n=%d)\n", fig, c.Model, c.N)
	fmt.Fprintf(w, "  %-28s %12s %12s\n", "DAG (sorted by sim rel.)", "simulation", "experiment")
	for _, p := range c.Points {
		fmt.Fprintf(w, "  %-28s %+11.3f%% %+11.3f%%\n", p.Name, 100*p.SimRel, 100*p.ExpRel)
	}
	fmt.Fprintf(w, "  => simulation picks the wrong winner for %d of %d DAGs (%.0f%%)\n",
		c.Mispredicted, len(c.Points), 100*float64(c.Mispredicted)/float64(len(c.Points)))
}

// ----------------------------------------------------------- Figure 2

// ErrorSeries is one curve of Figure 2: the analytic model's relative task
// execution time error versus processor count.
type ErrorSeries struct {
	Label string
	P     []int
	Err   []float64
}

// Figure2Java measures the Java-side series (left plot): the 1-D
// multiplication on the emulated Bayreuth cluster for n = 2000 and 3000.
// Each (n, p) probe is one cell of the study engine. Probes cannot fail;
// the only possible error is a WithContext cancellation.
func (l *Lab) Figure2Java(trials int) ([]ErrorSeries, error) {
	sizes := []int{2000, 3000}
	maxP := l.Cluster().Nodes
	errs := make([]float64, len(sizes)*maxP)
	err := l.runner().Run("fig2java", len(errs), func(i int, sess *cluster.Session) error {
		n, p := sizes[i/maxP], i%maxP+1
		task := &dag.Task{Kernel: dag.KernelMul, N: n}
		pred := task.Flops() / float64(p) / l.Cluster().NodePower
		meas := profiler.Campaign{Em: sess}.MeasureTaskMean(dag.KernelMul, n, p, trials)
		errs[i] = abs(pred-meas) / meas
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []ErrorSeries
	for ni, n := range sizes {
		s := ErrorSeries{Label: fmt.Sprintf("1D MM/Java n=%d", n)}
		for p := 1; p <= maxP; p++ {
			s.P = append(s.P, p)
			s.Err = append(s.Err, errs[ni*maxP+p-1])
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure2Franklin produces the PDGEMM/Cray series (right plot) for
// n ∈ {1024, 2048, 4096} against the calibrated Franklin environment.
func Figure2Franklin() []ErrorSeries {
	f := newFranklin()
	var out []ErrorSeries
	for _, n := range []int{1024, 2048, 4096} {
		s := ErrorSeries{Label: fmt.Sprintf("PDGEMM/C n=%d", n)}
		for p := 1; p <= 32; p++ {
			s.P = append(s.P, p)
			s.Err = append(s.Err, f.ModelError(n, p))
		}
		out = append(out, s)
	}
	return out
}

// WriteErrorSeries prints Figure 2 series as aligned columns.
func WriteErrorSeries(w io.Writer, title string, series []ErrorSeries) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "  %4s", "p")
	for _, s := range series {
		fmt.Fprintf(w, " %18s", s.Label)
	}
	fmt.Fprintln(w)
	if len(series) == 0 {
		return
	}
	for i := range series[0].P {
		fmt.Fprintf(w, "  %4d", series[0].P[i])
		for _, s := range series {
			fmt.Fprintf(w, " %17.1f%%", 100*s.Err[i])
		}
		fmt.Fprintln(w)
	}
}

// ----------------------------------------------------------- Figure 3

// StartupSeries is Figure 3: the measured task startup overhead per
// allocation size.
type StartupSeries struct {
	P       []int
	Seconds []float64
}

// Figure3 measures the startup overheads (20 trials each, as in the paper),
// one processor count per study cell. Probes cannot fail; the only
// possible error is a WithContext cancellation.
func (l *Lab) Figure3() (StartupSeries, error) {
	maxP := l.Cluster().Nodes
	seconds := make([]float64, maxP)
	err := l.runner().Run("fig3", maxP, func(i int, sess *cluster.Session) error {
		seconds[i] = profiler.Campaign{Em: sess}.MeasureStartupMean(i+1, l.Cfg.Profile.StartupTrials)
		return nil
	})
	if err != nil {
		return StartupSeries{}, err
	}
	out := StartupSeries{}
	for p, v := range seconds {
		out.P = append(out.P, p+1)
		out.Seconds = append(out.Seconds, v)
	}
	return out, nil
}

// Write prints the startup curve.
func (s StartupSeries) Write(w io.Writer) {
	fmt.Fprintln(w, "Figure 3 — task startup overhead [s] for p = 1..32")
	for i := range s.P {
		fmt.Fprintf(w, "  p=%-3d %6.3f\n", s.P[i], s.Seconds[i])
	}
}

// ----------------------------------------------------------- Figure 4

// RedistSurface is Figure 4: the redistribution overhead versus source and
// destination processor counts.
type RedistSurface struct {
	// Overhead[src−1][dst−1] in seconds.
	Overhead [][]float64
	// ByDst is the per-destination average over sources (the reduction
	// the profile model uses).
	ByDst map[int]float64
}

// Figure4 probes the full (p(src), p(dst)) surface (3 trials per point),
// one source count — a full row of destinations — per study cell. Probes
// cannot fail; the only possible error is a WithContext cancellation.
func (l *Lab) Figure4() (RedistSurface, error) {
	maxP := l.Cluster().Nodes
	surface := make([][]float64, maxP)
	err := l.runner().Run("fig4", maxP, func(i int, sess *cluster.Session) error {
		c := profiler.Campaign{Em: sess}
		row := make([]float64, maxP)
		for d := 1; d <= maxP; d++ {
			row[d-1] = c.MeasureRedistMean(i+1, d, l.Cfg.Profile.RedistTrials)
		}
		surface[i] = row
		return nil
	})
	if err != nil {
		return RedistSurface{}, err
	}
	return RedistSurface{Overhead: surface, ByDst: profiler.RedistByDst(surface)}, nil
}

// Write prints a condensed view of the surface: the per-destination average
// with min/max across sources.
func (r RedistSurface) Write(w io.Writer) {
	fmt.Fprintln(w, "Figure 4 — data redistribution overhead [ms] vs p(src), p(dst)")
	fmt.Fprintf(w, "  %-8s %10s %10s %10s\n", "p(dst)", "avg(src)", "min(src)", "max(src)")
	for d := 1; d <= len(r.Overhead); d++ {
		min, max := r.Overhead[0][d-1], r.Overhead[0][d-1]
		for s := range r.Overhead {
			v := r.Overhead[s][d-1]
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		fmt.Fprintf(w, "  %-8d %9.1f %9.1f %9.1f\n", d, 1000*r.ByDst[d], 1000*min, 1000*max)
	}
}

// ----------------------------------------------------------- Figure 6

// FitStudy is Figure 6: the multiplication regression fit with the naive
// powers-of-two points (outliers at p = 8, 16) versus the final point set.
type FitStudy struct {
	N int
	// Naive and Final hold measurement points (xs: processor counts).
	NaiveXs, NaiveYs []float64
	FinalXs, FinalYs []float64
	NaiveFit         regression.Piecewise
	FinalFit         regression.Piecewise
	// DetectedOutliers are the processor counts the robust detector flags
	// in the naive low-regime points.
	DetectedOutliers []float64
	// NaiveMaxErr and FinalMaxErr are the maximum relative prediction
	// errors against the full measured profile at p = 1..32.
	NaiveMaxErr, FinalMaxErr float64
	// NaiveMeanErr and FinalMeanErr are the mean relative errors.
	NaiveMeanErr, FinalMeanErr float64
}

// Figure6 fits both point sets for one matrix size and scores them against
// the full measured profile. The whole fit study is one cell: its probes
// interleave with the regression logic, so it runs serially on a private
// session and stays reproducible regardless of what ran before it.
func (l *Lab) Figure6(n int) (*FitStudy, error) {
	c := profiler.Campaign{Em: l.Em.Session(CellSeed(l.Cfg.NoiseSeed, fmt.Sprintf("fig6/%d", n), 0))}
	trials := l.Cfg.Empirical.Trials
	study := &FitStudy{N: n}

	study.NaiveXs, study.NaiveYs = c.MeasureSeries(dag.KernelMul, n, profiler.NaiveMulPoints, trials)
	finalPoints := []int{2, 4, 7, 15, 24, 31}
	study.FinalXs, study.FinalYs = c.MeasureSeries(dag.KernelMul, n, finalPoints, trials)

	lowBasis := regression.Inverse
	if n == 2000 && l.Cfg.Empirical.HalfInverseFor2000 {
		lowBasis = regression.HalfInverse
	}
	split := float64(l.Cfg.Empirical.Split)
	naive, err := regression.FitPiecewise(study.NaiveXs, study.NaiveYs, lowBasis, split, split)
	if err != nil {
		return nil, err
	}
	final, err := regression.FitPiecewise(study.FinalXs, study.FinalYs, lowBasis, split, 15)
	if err != nil {
		return nil, err
	}
	study.NaiveFit = naive
	study.FinalFit = final

	// Outlier identification the way the paper suggests (§VII-A): a few
	// extra measurements around each candidate point. A point is an
	// outlier when its total work p·t(p) sits well above the median work
	// of its ±2 neighbourhood — a 1/p-shaped curve is locally flat on the
	// work scale, so a localized slowdown (memory-hierarchy effects,
	// imbalance) stands out.
	for _, x := range study.NaiveXs {
		p := int(x)
		if p < 3 || float64(p) > split {
			continue
		}
		var window []float64
		var wp float64
		for q := p - 2; q <= p+2; q++ {
			if q < 1 || q > l.Cluster().Nodes {
				continue
			}
			w := float64(q) * c.MeasureTaskMean(dag.KernelMul, n, q, trials)
			if q == p {
				wp = w
			} else {
				window = append(window, w)
			}
		}
		if wp > 1.2*median(window) {
			study.DetectedOutliers = append(study.DetectedOutliers, float64(p))
		}
	}

	// Score against the full profile.
	var nErrs, fErrs []float64
	for p := 1; p <= l.Cluster().Nodes; p++ {
		meas := c.MeasureTaskMean(dag.KernelMul, n, p, trials)
		nErrs = append(nErrs, abs(naive.Predict(float64(p))-meas)/meas)
		fErrs = append(fErrs, abs(final.Predict(float64(p))-meas)/meas)
	}
	study.NaiveMaxErr, study.NaiveMeanErr = maxMean(nErrs)
	study.FinalMaxErr, study.FinalMeanErr = maxMean(fErrs)
	return study, nil
}

// Write prints both fits and their quality.
func (f *FitStudy) Write(w io.Writer) {
	fmt.Fprintf(w, "Figure 6 — regression fits for multiplication, n=%d\n", f.N)
	fmt.Fprintf(w, "  naive points p=%v\n", ints(f.NaiveXs))
	fmt.Fprintf(w, "    low fit:  %v   high fit: %v\n", f.NaiveFit.Low, f.NaiveFit.High)
	fmt.Fprintf(w, "    detected outliers at p=%v\n", ints(f.DetectedOutliers))
	fmt.Fprintf(w, "    error vs full profile: mean %.1f%%, max %.1f%%\n",
		100*f.NaiveMeanErr, 100*f.NaiveMaxErr)
	fmt.Fprintf(w, "  final points p=%v (8, 16 replaced by 7, 15)\n", ints(f.FinalXs))
	fmt.Fprintf(w, "    low fit:  %v   high fit: %v\n", f.FinalFit.Low, f.FinalFit.High)
	fmt.Fprintf(w, "    error vs full profile: mean %.1f%%, max %.1f%%\n",
		100*f.FinalMeanErr, 100*f.FinalMaxErr)
}

// ----------------------------------------------------------- Figure 8

// ErrorBox is one box of Figure 8: makespan simulation error of one model
// for one algorithm over the whole suite.
type ErrorBox struct {
	Model, Algo string
	Errors      []float64 // percent
	Box         stats.FiveNum
}

// Figure8 computes the simulation-error distributions for the three models
// and both algorithms.
func (l *Lab) Figure8() ([]ErrorBox, error) {
	var out []ErrorBox
	for _, modelName := range ModelNames() {
		recs, err := l.RunSuite(modelName)
		if err != nil {
			return nil, err
		}
		for _, algo := range ComparedAlgorithms() {
			box := ErrorBox{Model: modelName, Algo: algo.Name()}
			for _, rec := range recs {
				box.Errors = append(box.Errors,
					stats.SimErrPct(rec.Sim[algo.Name()], rec.Exp[algo.Name()]))
			}
			box.Box = stats.Summarize(box.Errors)
			out = append(out, box)
		}
	}
	return out, nil
}

// WriteFigure8 prints the boxplot summaries.
func WriteFigure8(w io.Writer, boxes []ErrorBox) {
	fmt.Fprintln(w, "Figure 8 — makespan simulation error [%] per model and algorithm")
	for _, b := range boxes {
		fmt.Fprintf(w, "  %-10s %-5s %s\n", b.Model, b.Algo, b.Box)
	}
}

// ----------------------------------------------------------- Table II

// Table2 prints the lab's fitted empirical models in the paper's layout.
func (l *Lab) Table2(w io.Writer) {
	e := l.Empirical
	fmt.Fprintln(w, "Table II — regression models (fitted from sparse measurements)")
	for _, n := range []int{2000, 3000} {
		pw := e.MulFits[n]
		form := "a/p+b"
		if n == 2000 && l.Cfg.Empirical.HalfInverseFor2000 {
			form = "a/(2p)+b"
		}
		fmt.Fprintf(w, "  execution time (multiplication) n=%d: %s then c·p+d  (a,b,c,d)=(%.2f, %.2f, %.2f, %.2f)\n",
			n, form, pw.Low.A, pw.Low.B, pw.High.A, pw.High.B)
	}
	for _, n := range []int{2000, 3000} {
		f := e.AddFits[n]
		fmt.Fprintf(w, "  execution time (addition)       n=%d: a/p+b              (a,b)=(%.2f, %.2f)\n",
			n, f.A, f.B)
	}
	fmt.Fprintf(w, "  redistribution startup [ms]:          a·p(dst)+b          (a,b)=(%.2f, %.2f)\n",
		1000*e.RedistFit.A, 1000*e.RedistFit.B)
	fmt.Fprintf(w, "  task startup time [s]:                a·p+b               (a,b)=(%.3f, %.3f)\n",
		e.StartupFit.A, e.StartupFit.B)
}

// ----------------------------------------------------------- helpers

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func maxMean(xs []float64) (max, mean float64) {
	for _, v := range xs {
		if v > max {
			max = v
		}
		mean += v
	}
	if len(xs) > 0 {
		mean /= float64(len(xs))
	}
	return max, mean
}

func ints(xs []float64) []int {
	out := make([]int, len(xs))
	for i, v := range xs {
		out[i] = int(v)
	}
	return out
}
