package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/sched"
	"repro/internal/simgrid"
	"repro/internal/stats"
	"repro/internal/tgrid"
)

// This file contains the studies that go beyond the paper's figures:
//
//   - the ablation study quantifying §V-C's error attribution (which of the
//     three identified culprits — task times, startup overhead,
//     redistribution overhead — buys how much simulation accuracy);
//   - the platform-scaling study suggested in §IX ("these models could be
//     instantiated for an existing execution environment and scaled to
//     simulate an hypothetical execution environment");
//   - rank-correlation summaries of each simulator's ordering fidelity.
//
// Every study runs on the cell engine of runner.go: one cell per suite
// instance, scheduled onto a bounded worker pool, with per-cell
// deterministic noise sessions and stable-order aggregation.

// scheduleBuilder produces the schedule of one algorithm for one DAG.
type scheduleBuilder func(algo sched.Algorithm, g *dag.Graph) (*sched.Schedule, error)

// buildWith returns the homogeneous-mapping builder of a model on a cluster.
func buildWith(model perfmodel.Model, c platform.Cluster) scheduleBuilder {
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)
	return func(algo sched.Algorithm, g *dag.Graph) (*sched.Schedule, error) {
		return sched.Build(algo, g, c.Nodes, cost, comm)
	}
}

// buildHeteroWith returns the heterogeneous-mapping builder (allocation on
// the reference cluster, speed-vs-availability mapping).
func buildHeteroWith(model perfmodel.Model, c platform.Cluster) scheduleBuilder {
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)
	return func(algo sched.Algorithm, g *dag.Graph) (*sched.Schedule, error) {
		return sched.BuildHetero(algo, g, c, cost, comm)
	}
}

// pairStudy is one (model, environment) scoring pass over a suite: each
// cell schedules both compared algorithms for one DAG instance, simulates
// them under the model and measures them on the cell's private session.
type pairStudy struct {
	run    Runner
	study  string
	suite  []dag.SuiteInstance
	net    *simgrid.Net
	model  perfmodel.Model
	trials int
	build  scheduleBuilder
}

// pairSeries is a pairStudy's aggregated outcome, in suite order (and, per
// instance, compared-algorithm order for errs).
type pairSeries struct {
	simRels, expRels, errs []float64
	maxErr                 float64
}

// execute runs the study's cells on the worker pool and aggregates.
func (ps pairStudy) execute() (pairSeries, error) {
	type cellOut struct {
		simRel, expRel float64
		errs           []float64
	}
	cells := make([]cellOut, len(ps.suite))
	err := ps.run.Run(ps.study, len(ps.suite), func(i int, sess *cluster.Session) error {
		sim := map[string]float64{}
		exp := map[string]float64{}
		var out cellOut
		for _, algo := range ComparedAlgorithms() {
			s, err := ps.build(algo, ps.suite[i].Graph)
			if err != nil {
				return err
			}
			simRes, err := tgrid.Run(ps.net, s, tgrid.ModelTiming{Model: ps.model})
			if err != nil {
				return err
			}
			measured, err := sess.MeasureMakespan(s, ps.trials)
			if err != nil {
				return err
			}
			sim[algo.Name()] = simRes.Makespan
			exp[algo.Name()] = measured
			out.errs = append(out.errs, stats.SimErrPct(simRes.Makespan, measured))
		}
		out.simRel = stats.RelDiff(sim["HCPA"], sim["MCPA"])
		out.expRel = stats.RelDiff(exp["HCPA"], exp["MCPA"])
		cells[i] = out
		return nil
	})
	if err != nil {
		return pairSeries{}, err
	}
	var agg pairSeries
	for _, c := range cells {
		agg.simRels = append(agg.simRels, c.simRel)
		agg.expRels = append(agg.expRels, c.expRel)
		for _, e := range c.errs {
			agg.errs = append(agg.errs, e)
			if e > agg.maxErr {
				agg.maxErr = e
			}
		}
	}
	return agg, nil
}

// AblationRow is one simulator variant of the ablation study.
type AblationRow struct {
	// Model names the variant.
	Model string
	// Mispredicted counts wrong HCPA-vs-MCPA winners over the suite.
	Mispredicted int
	// Total is the number of compared DAGs.
	Total int
	// MedianErrPct is the median makespan simulation error.
	MedianErrPct float64
	// KendallTau is the rank correlation between simulated and measured
	// relative makespans.
	KendallTau float64
}

// Ablation builds simulator variants between "purely analytic" and "full
// profile" by switching each measured component on independently, and
// scores each variant over the whole suite. The deltas attribute the
// analytic simulator's error to the paper's three culprits.
func (l *Lab) Ablation() ([]AblationRow, error) {
	variants := []struct {
		label                 string
		task, startup, redist perfmodel.Model
	}{
		{"analytic", l.Analytic, l.Analytic, l.Analytic},
		{"analytic+startup", l.Analytic, l.Profile, l.Analytic},
		{"analytic+redist", l.Analytic, l.Analytic, l.Profile},
		{"analytic+overheads", l.Analytic, l.Profile, l.Profile},
		{"tasks-only", l.Profile, l.Analytic, l.Analytic},
		{"full-profile", l.Profile, l.Profile, l.Profile},
	}
	rows := make([]AblationRow, 0, len(variants))
	for _, v := range variants {
		model, err := perfmodel.NewOverlay(v.task, v.startup, v.redist, v.label)
		if err != nil {
			return nil, err
		}
		row, err := l.scoreModel(model)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", v.label, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// scoreModel pushes the suite through the pipeline with an arbitrary model
// (bypassing the Lab's named-model cache) and summarises the outcome.
func (l *Lab) scoreModel(model perfmodel.Model) (AblationRow, error) {
	agg, err := pairStudy{
		run:    l.runner(),
		study:  "ablation/" + model.Name(),
		suite:  l.Suite,
		net:    l.Net,
		model:  model,
		trials: l.Cfg.ExpTrials,
		build:  buildWith(model, l.Cluster()),
	}.execute()
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Model:        model.Name(),
		Mispredicted: stats.CountDisagreements(agg.simRels, agg.expRels, 0),
		Total:        len(agg.simRels),
		MedianErrPct: stats.Median(agg.errs),
		KendallTau:   stats.KendallTau(agg.simRels, agg.expRels),
	}, nil
}

// WriteAblation prints the ablation table.
func WriteAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablation — which missing environment effect costs how much accuracy")
	fmt.Fprintf(w, "  %-22s %12s %14s %12s\n", "simulator variant", "wrong winner", "median err [%]", "Kendall tau")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-22s %8d/%-3d %14.1f %12.2f\n",
			r.Model, r.Mispredicted, r.Total, r.MedianErrPct, r.KendallTau)
	}
}

// ScalingRow is one platform size of the scaling study.
type ScalingRow struct {
	Nodes        int
	Mispredicted int
	Total        int
	MedianErrPct float64
}

// ScalingStudy instantiates hypothetical clusters by scaling the Bayreuth
// environment to the given node counts, fits an empirical model on each
// (sparse measurements only, per §VII) and scores it over the suite — the
// §IX scenario of simulating platforms one does not have. The sparse
// campaign runs serially (it models one operator probing one cluster); the
// suite scoring runs on the cell engine.
func ScalingStudy(cfg Config, nodeCounts []int) ([]ScalingRow, error) {
	return ScalingStudyCtx(context.Background(), cfg, nodeCounts)
}

// ScalingStudyCtx is ScalingStudy with cancellation: ctx aborts both the
// per-size sparse campaigns (between sizes) and the suite scoring (between
// cells).
func ScalingStudyCtx(ctx context.Context, cfg Config, nodeCounts []int) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, nodes := range nodeCounts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		truth := cluster.Bayreuth()
		truth.Cluster = truth.Cluster.Scaled(nodes)
		em, err := cluster.NewEmulator(truth, cfg.NoiseSeed)
		if err != nil {
			return nil, err
		}
		net, err := simgrid.NewNet(truth.Cluster)
		if err != nil {
			return nil, err
		}
		suite, err := dag.GenerateSuite(cfg.SuiteSeed)
		if err != nil {
			return nil, err
		}
		// Sparse-measurement points scale with the cluster.
		opts := cfg.Empirical.ScaledTo(nodes, platform.Bayreuth().Nodes)
		model, err := profiler.BuildEmpiricalModel(em, opts)
		if err != nil {
			return nil, err
		}

		agg, err := pairStudy{
			run:    Runner{Workers: cfg.Parallelism, Seed: cfg.NoiseSeed, Em: em, Ctx: ctx},
			study:  fmt.Sprintf("scaling/%d", nodes),
			suite:  suite,
			net:    net,
			model:  model,
			trials: cfg.ExpTrials,
			build:  buildWith(model, truth.Cluster),
		}.execute()
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling %d nodes: %w", nodes, err)
		}
		rows = append(rows, ScalingRow{
			Nodes:        nodes,
			Mispredicted: stats.CountDisagreements(agg.simRels, agg.expRels, 0),
			Total:        len(agg.simRels),
			MedianErrPct: stats.Median(agg.errs),
		})
	}
	return rows, nil
}

// HeteroRow is one simulator model scored on the heterogeneous platform.
type HeteroRow struct {
	Model        string
	Mispredicted int
	Total        int
	MedianErrPct float64
}

// HeterogeneityStudy ports the case study to HCPA's original setting [12]:
// a cluster whose nodes split into two speed classes (half at the reference
// 250 MFlop/s, half at twice that). Allocation phases reason on the
// reference cluster (HCPA's normalisation), the heterogeneous mapping phase
// trades node speed against availability, and the emulated environment
// runs each task at its slowest assigned node's pace. The analytic and
// profile simulators are scored exactly as in Figures 1/5.
func HeterogeneityStudy(cfg Config) ([]HeteroRow, error) {
	return HeterogeneityStudyCtx(context.Background(), cfg)
}

// HeterogeneityStudyCtx is HeterogeneityStudy with cancellation.
func HeterogeneityStudyCtx(ctx context.Context, cfg Config) ([]HeteroRow, error) {
	powers := make([]float64, 32)
	for i := range powers {
		if i < 16 {
			powers[i] = 250e6
		} else {
			powers[i] = 500e6
		}
	}
	hc := platform.NewHeterogeneous("bayreuth-2speed", powers, 125e6, 100e-6)
	truth := cluster.Bayreuth()
	truth.Cluster = hc
	em, err := cluster.NewEmulator(truth, cfg.NoiseSeed)
	if err != nil {
		return nil, err
	}
	net, err := simgrid.NewNet(hc)
	if err != nil {
		return nil, err
	}
	suite, err := dag.GenerateSuite(cfg.SuiteSeed)
	if err != nil {
		return nil, err
	}
	profModel, err := profiler.BuildProfileModel(em, cfg.Profile)
	if err != nil {
		return nil, err
	}
	models := []perfmodel.Model{perfmodel.NewAnalytic(hc), profModel}

	var rows []HeteroRow
	for _, model := range models {
		agg, err := pairStudy{
			run:    Runner{Workers: cfg.Parallelism, Seed: cfg.NoiseSeed, Em: em, Ctx: ctx},
			study:  "hetero/" + model.Name(),
			suite:  suite,
			net:    net,
			model:  model,
			trials: cfg.ExpTrials,
			build:  buildHeteroWith(model, hc),
		}.execute()
		if err != nil {
			return nil, fmt.Errorf("experiments: hetero %s: %w", model.Name(), err)
		}
		rows = append(rows, HeteroRow{
			Model:        model.Name(),
			Mispredicted: stats.CountDisagreements(agg.simRels, agg.expRels, 0),
			Total:        len(agg.simRels),
			MedianErrPct: stats.Median(agg.errs),
		})
	}
	return rows, nil
}

// WriteHetero prints the heterogeneity-study table.
func WriteHetero(w io.Writer, rows []HeteroRow) {
	fmt.Fprintln(w, "Heterogeneity study — two-speed cluster (16× 250 MFlop/s + 16× 500 MFlop/s)")
	fmt.Fprintf(w, "  %-12s %14s %16s\n", "model", "wrong winner", "median err [%]")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %10d/%-3d %16.1f\n", r.Model, r.Mispredicted, r.Total, r.MedianErrPct)
	}
}

// StragglerRow scores the profile simulator on a healthy versus a degraded
// environment.
type StragglerRow struct {
	Environment  string
	Mispredicted int
	Total        int
	MedianErrPct float64
	MaxErrPct    float64
}

// StragglerStudy exposes a limit of the paper's methodology: the §VI
// profiling campaign measures per processor *count*, never per processor
// *identity*, so a single degraded node — common on real clusters — is
// invisible to both the profile and the empirical model. The study scores
// the profile simulator on a healthy environment and on one whose node 13
// runs 3× slower, using the same measurement methodology on each.
func StragglerStudy(cfg Config) ([]StragglerRow, error) {
	return StragglerStudyCtx(context.Background(), cfg)
}

// StragglerStudyCtx is StragglerStudy with cancellation.
func StragglerStudyCtx(ctx context.Context, cfg Config) ([]StragglerRow, error) {
	suite, err := dag.GenerateSuite(cfg.SuiteSeed)
	if err != nil {
		return nil, err
	}
	healthy := cluster.Bayreuth()
	degraded := cluster.Bayreuth()
	degraded.StragglerHost = 13
	degraded.StragglerFactor = 3
	envs := []struct {
		name  string
		truth *cluster.Hidden
	}{{"healthy", healthy}, {"straggler-node-13", degraded}}

	var rows []StragglerRow
	for _, env := range envs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		em, err := cluster.NewEmulator(env.truth, cfg.NoiseSeed)
		if err != nil {
			return nil, err
		}
		net, err := simgrid.NewNet(env.truth.Cluster)
		if err != nil {
			return nil, err
		}
		model, err := profiler.BuildProfileModel(em, cfg.Profile)
		if err != nil {
			return nil, err
		}
		agg, err := pairStudy{
			run:    Runner{Workers: cfg.Parallelism, Seed: cfg.NoiseSeed, Em: em, Ctx: ctx},
			study:  "straggler/" + env.name,
			suite:  suite,
			net:    net,
			model:  model,
			trials: cfg.ExpTrials,
			build:  buildWith(model, env.truth.Cluster),
		}.execute()
		if err != nil {
			return nil, fmt.Errorf("experiments: straggler %s: %w", env.name, err)
		}
		rows = append(rows, StragglerRow{
			Environment:  env.name,
			Mispredicted: stats.CountDisagreements(agg.simRels, agg.expRels, 0),
			Total:        len(agg.simRels),
			MedianErrPct: stats.Median(agg.errs),
			MaxErrPct:    agg.maxErr,
		})
	}
	return rows, nil
}

// WriteStraggler prints the straggler-study table.
func WriteStraggler(w io.Writer, rows []StragglerRow) {
	fmt.Fprintln(w, "Straggler study — profile simulator vs a single degraded node (limits of §VI)")
	fmt.Fprintf(w, "  %-20s %14s %16s %12s\n", "environment", "wrong winner", "median err [%]", "max err [%]")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s %10d/%-3d %16.1f %12.1f\n",
			r.Environment, r.Mispredicted, r.Total, r.MedianErrPct, r.MaxErrPct)
	}
}

// EnvironmentRow compares the analytic simulator's usefulness across
// ground-truth environments.
type EnvironmentRow struct {
	Environment  string
	Mispredicted int
	Total        int
	MedianErrPct float64
	KendallTau   float64
}

// EnvironmentStudy scores the purely analytic simulator against two
// environments: the paper's Bayreuth/TGrid stand-in, and a tuned "modern"
// runtime (native kernels near the calibrated rate, millisecond spawning).
// It quantifies §IX's conjecture that the findings are driven by the
// environment's idiosyncrasies: on the tuned environment the analytic
// simulator becomes nearly sound.
func EnvironmentStudy(cfg Config) ([]EnvironmentRow, error) {
	return EnvironmentStudyCtx(context.Background(), cfg)
}

// EnvironmentStudyCtx is EnvironmentStudy with cancellation.
func EnvironmentStudyCtx(ctx context.Context, cfg Config) ([]EnvironmentRow, error) {
	suite, err := dag.GenerateSuite(cfg.SuiteSeed)
	if err != nil {
		return nil, err
	}
	envs := []struct {
		name  string
		truth *cluster.Hidden
	}{
		{"bayreuth-tgrid", cluster.Bayreuth()},
		{"modern-tuned", cluster.Modern()},
	}
	var rows []EnvironmentRow
	for _, env := range envs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		em, err := cluster.NewEmulator(env.truth, cfg.NoiseSeed)
		if err != nil {
			return nil, err
		}
		net, err := simgrid.NewNet(env.truth.Cluster)
		if err != nil {
			return nil, err
		}
		model := perfmodel.NewAnalytic(env.truth.Cluster)
		agg, err := pairStudy{
			run:    Runner{Workers: cfg.Parallelism, Seed: cfg.NoiseSeed, Em: em, Ctx: ctx},
			study:  "environments/" + env.name,
			suite:  suite,
			net:    net,
			model:  model,
			trials: cfg.ExpTrials,
			build:  buildWith(model, env.truth.Cluster),
		}.execute()
		if err != nil {
			return nil, fmt.Errorf("experiments: environment %s: %w", env.name, err)
		}
		rows = append(rows, EnvironmentRow{
			Environment:  env.name,
			Mispredicted: stats.CountDisagreements(agg.simRels, agg.expRels, 0),
			Total:        len(agg.simRels),
			MedianErrPct: stats.Median(agg.errs),
			KendallTau:   stats.KendallTau(agg.simRels, agg.expRels),
		})
	}
	return rows, nil
}

// WriteEnvironments prints the environment-comparison table.
func WriteEnvironments(w io.Writer, rows []EnvironmentRow) {
	fmt.Fprintln(w, "Environment study — analytic simulator vs two ground truths")
	fmt.Fprintf(w, "  %-16s %14s %16s %12s\n", "environment", "wrong winner", "median err [%]", "Kendall tau")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %10d/%-3d %16.1f %12.2f\n",
			r.Environment, r.Mispredicted, r.Total, r.MedianErrPct, r.KendallTau)
	}
}

// SensitivityRow is one noise level of the sensitivity study.
type SensitivityRow struct {
	NoiseSigma   float64
	Mispredicted int
	Total        int
	KendallTau   float64
}

// NoiseSensitivity re-runs the Figure 1 comparison (analytic simulator vs
// experiment) under environments with different run-to-run noise levels,
// separating the structural part of the analytic simulator's
// winner-mispredictions (missing overheads, wrong task times) from the part
// caused by measurement noise on near-ties. The paper ran each schedule
// once on a real machine, so its counts include both components.
func NoiseSensitivity(cfg Config, sigmas []float64) ([]SensitivityRow, error) {
	return NoiseSensitivityCtx(context.Background(), cfg, sigmas)
}

// NoiseSensitivityCtx is NoiseSensitivity with cancellation.
func NoiseSensitivityCtx(ctx context.Context, cfg Config, sigmas []float64) ([]SensitivityRow, error) {
	suite, err := dag.GenerateSuite(cfg.SuiteSeed)
	if err != nil {
		return nil, err
	}
	var rows []SensitivityRow
	for _, sigma := range sigmas {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		truth := cluster.Bayreuth()
		truth.NoiseSigma = sigma
		em, err := cluster.NewEmulator(truth, cfg.NoiseSeed)
		if err != nil {
			return nil, err
		}
		net, err := simgrid.NewNet(truth.Cluster)
		if err != nil {
			return nil, err
		}
		model := perfmodel.NewAnalytic(truth.Cluster)
		agg, err := pairStudy{
			run:    Runner{Workers: cfg.Parallelism, Seed: cfg.NoiseSeed, Em: em, Ctx: ctx},
			study:  fmt.Sprintf("sensitivity/%g", sigma),
			suite:  suite,
			net:    net,
			model:  model,
			trials: cfg.ExpTrials,
			build:  buildWith(model, truth.Cluster),
		}.execute()
		if err != nil {
			return nil, fmt.Errorf("experiments: sensitivity sigma=%g: %w", sigma, err)
		}
		rows = append(rows, SensitivityRow{
			NoiseSigma:   sigma,
			Mispredicted: stats.CountDisagreements(agg.simRels, agg.expRels, 0),
			Total:        len(agg.simRels),
			KendallTau:   stats.KendallTau(agg.simRels, agg.expRels),
		})
	}
	return rows, nil
}

// WriteSensitivity prints the noise-sensitivity table.
func WriteSensitivity(w io.Writer, rows []SensitivityRow) {
	fmt.Fprintln(w, "Noise sensitivity — analytic simulator vs experiment at varying run-to-run noise")
	fmt.Fprintf(w, "  %-12s %14s %12s\n", "noise sigma", "wrong winner", "Kendall tau")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12g %10d/%-3d %12.2f\n", r.NoiseSigma, r.Mispredicted, r.Total, r.KendallTau)
	}
}

// WriteScaling prints the scaling-study table.
func WriteScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintln(w, "Scaling study — empirical simulator on scaled hypothetical clusters")
	fmt.Fprintf(w, "  %-8s %14s %16s\n", "nodes", "wrong winner", "median err [%]")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8d %10d/%-3d %16.1f\n", r.Nodes, r.Mispredicted, r.Total, r.MedianErrPct)
	}
}
