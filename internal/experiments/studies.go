package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/sched"
	"repro/internal/simgrid"
	"repro/internal/stats"
	"repro/internal/tgrid"
)

// This file contains the studies that go beyond the paper's figures:
//
//   - the ablation study quantifying §V-C's error attribution (which of the
//     three identified culprits — task times, startup overhead,
//     redistribution overhead — buys how much simulation accuracy);
//   - the platform-scaling study suggested in §IX ("these models could be
//     instantiated for an existing execution environment and scaled to
//     simulate an hypothetical execution environment");
//   - rank-correlation summaries of each simulator's ordering fidelity.

// AblationRow is one simulator variant of the ablation study.
type AblationRow struct {
	// Model names the variant.
	Model string
	// Mispredicted counts wrong HCPA-vs-MCPA winners over the suite.
	Mispredicted int
	// Total is the number of compared DAGs.
	Total int
	// MedianErrPct is the median makespan simulation error.
	MedianErrPct float64
	// KendallTau is the rank correlation between simulated and measured
	// relative makespans.
	KendallTau float64
}

// Ablation builds simulator variants between "purely analytic" and "full
// profile" by switching each measured component on independently, and
// scores each variant over the whole suite. The deltas attribute the
// analytic simulator's error to the paper's three culprits.
func (l *Lab) Ablation() ([]AblationRow, error) {
	variants := []struct {
		label                 string
		task, startup, redist perfmodel.Model
	}{
		{"analytic", l.Analytic, l.Analytic, l.Analytic},
		{"analytic+startup", l.Analytic, l.Profile, l.Analytic},
		{"analytic+redist", l.Analytic, l.Analytic, l.Profile},
		{"analytic+overheads", l.Analytic, l.Profile, l.Profile},
		{"tasks-only", l.Profile, l.Analytic, l.Analytic},
		{"full-profile", l.Profile, l.Profile, l.Profile},
	}
	rows := make([]AblationRow, 0, len(variants))
	for _, v := range variants {
		model, err := perfmodel.NewOverlay(v.task, v.startup, v.redist, v.label)
		if err != nil {
			return nil, err
		}
		row, err := l.scoreModel(model)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", v.label, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// scoreModel pushes the suite through the pipeline with an arbitrary model
// (bypassing the Lab's named-model cache) and summarises the outcome.
func (l *Lab) scoreModel(model perfmodel.Model) (AblationRow, error) {
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, l.Cluster())
	algos := ComparedAlgorithms()

	var simRels, expRels, errs []float64
	for _, inst := range l.Suite {
		sim := map[string]float64{}
		exp := map[string]float64{}
		for _, algo := range algos {
			s, err := sched.Build(algo, inst.Graph, l.Cluster().Nodes, cost, comm)
			if err != nil {
				return AblationRow{}, err
			}
			simRes, err := tgrid.Run(l.Net, s, tgrid.ModelTiming{Model: model})
			if err != nil {
				return AblationRow{}, err
			}
			measured, err := l.Em.MeasureMakespan(s, l.Cfg.ExpTrials)
			if err != nil {
				return AblationRow{}, err
			}
			sim[algo.Name()] = simRes.Makespan
			exp[algo.Name()] = measured
			errs = append(errs, stats.SimErrPct(simRes.Makespan, measured))
		}
		simRels = append(simRels, stats.RelDiff(sim["HCPA"], sim["MCPA"]))
		expRels = append(expRels, stats.RelDiff(exp["HCPA"], exp["MCPA"]))
	}
	return AblationRow{
		Model:        model.Name(),
		Mispredicted: stats.CountDisagreements(simRels, expRels, 0),
		Total:        len(simRels),
		MedianErrPct: stats.Median(errs),
		KendallTau:   stats.KendallTau(simRels, expRels),
	}, nil
}

// WriteAblation prints the ablation table.
func WriteAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablation — which missing environment effect costs how much accuracy")
	fmt.Fprintf(w, "  %-22s %12s %14s %12s\n", "simulator variant", "wrong winner", "median err [%]", "Kendall tau")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-22s %8d/%-3d %14.1f %12.2f\n",
			r.Model, r.Mispredicted, r.Total, r.MedianErrPct, r.KendallTau)
	}
}

// ScalingRow is one platform size of the scaling study.
type ScalingRow struct {
	Nodes        int
	Mispredicted int
	Total        int
	MedianErrPct float64
}

// ScalingStudy instantiates hypothetical clusters by scaling the Bayreuth
// environment to the given node counts, fits an empirical model on each
// (sparse measurements only, per §VII) and scores it over the suite — the
// §IX scenario of simulating platforms one does not have.
func ScalingStudy(cfg Config, nodeCounts []int) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, nodes := range nodeCounts {
		truth := cluster.Bayreuth()
		truth.Cluster = truth.Cluster.Scaled(nodes)
		em, err := cluster.NewEmulator(truth, cfg.NoiseSeed)
		if err != nil {
			return nil, err
		}
		net, err := simgrid.NewNet(truth.Cluster)
		if err != nil {
			return nil, err
		}
		suite, err := dag.GenerateSuite(cfg.SuiteSeed)
		if err != nil {
			return nil, err
		}
		// Sparse-measurement points scale with the cluster.
		opts := cfg.Empirical
		opts.MulLowPoints = scalePoints([]int{2, 4, 7, 15}, nodes, 32)
		opts.MulHighPoints = scalePoints([]int{15, 24, 31}, nodes, 32)
		opts.AddPoints = scalePoints([]int{2, 4, 7, 15, 24, 31}, nodes, 32)
		opts.OverheadPoints = scalePoints([]int{1, 16, 32}, nodes, 32)
		opts.Split = 16 * nodes / 32
		model, err := profiler.BuildEmpiricalModel(em, opts)
		if err != nil {
			return nil, err
		}

		cost := perfmodel.CostFunc(model)
		comm := perfmodel.CommFunc(model, truth.Cluster)
		var simRels, expRels, errs []float64
		for _, inst := range suite {
			sim := map[string]float64{}
			exp := map[string]float64{}
			for _, algo := range ComparedAlgorithms() {
				s, err := sched.Build(algo, inst.Graph, nodes, cost, comm)
				if err != nil {
					return nil, err
				}
				simRes, err := tgrid.Run(net, s, tgrid.ModelTiming{Model: model})
				if err != nil {
					return nil, err
				}
				measured, err := em.MeasureMakespan(s, cfg.ExpTrials)
				if err != nil {
					return nil, err
				}
				sim[algo.Name()] = simRes.Makespan
				exp[algo.Name()] = measured
				errs = append(errs, stats.SimErrPct(simRes.Makespan, measured))
			}
			simRels = append(simRels, stats.RelDiff(sim["HCPA"], sim["MCPA"]))
			expRels = append(expRels, stats.RelDiff(exp["HCPA"], exp["MCPA"]))
		}
		rows = append(rows, ScalingRow{
			Nodes:        nodes,
			Mispredicted: stats.CountDisagreements(simRels, expRels, 0),
			Total:        len(simRels),
			MedianErrPct: stats.Median(errs),
		})
	}
	return rows, nil
}

func scalePoints(points []int, nodes, ref int) []int {
	out := make([]int, 0, len(points))
	seen := map[int]bool{}
	for _, p := range points {
		v := p * nodes / ref
		if v < 1 {
			v = 1
		}
		if v > nodes {
			v = nodes
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// HeteroRow is one simulator model scored on the heterogeneous platform.
type HeteroRow struct {
	Model        string
	Mispredicted int
	Total        int
	MedianErrPct float64
}

// HeterogeneityStudy ports the case study to HCPA's original setting [12]:
// a cluster whose nodes split into two speed classes (half at the reference
// 250 MFlop/s, half at twice that). Allocation phases reason on the
// reference cluster (HCPA's normalisation), the heterogeneous mapping phase
// trades node speed against availability, and the emulated environment
// runs each task at its slowest assigned node's pace. The analytic and
// profile simulators are scored exactly as in Figures 1/5.
func HeterogeneityStudy(cfg Config) ([]HeteroRow, error) {
	powers := make([]float64, 32)
	for i := range powers {
		if i < 16 {
			powers[i] = 250e6
		} else {
			powers[i] = 500e6
		}
	}
	hc := platform.NewHeterogeneous("bayreuth-2speed", powers, 125e6, 100e-6)
	truth := cluster.Bayreuth()
	truth.Cluster = hc
	em, err := cluster.NewEmulator(truth, cfg.NoiseSeed)
	if err != nil {
		return nil, err
	}
	net, err := simgrid.NewNet(hc)
	if err != nil {
		return nil, err
	}
	suite, err := dag.GenerateSuite(cfg.SuiteSeed)
	if err != nil {
		return nil, err
	}
	profModel, err := profiler.BuildProfileModel(em, cfg.Profile)
	if err != nil {
		return nil, err
	}
	models := []perfmodel.Model{perfmodel.NewAnalytic(hc), profModel}

	var rows []HeteroRow
	for _, model := range models {
		cost := perfmodel.CostFunc(model)
		comm := perfmodel.CommFunc(model, hc)
		var simRels, expRels, errs []float64
		for _, inst := range suite {
			sim := map[string]float64{}
			exp := map[string]float64{}
			for _, algo := range ComparedAlgorithms() {
				s, err := sched.BuildHetero(algo, inst.Graph, hc, cost, comm)
				if err != nil {
					return nil, err
				}
				simRes, err := tgrid.Run(net, s, tgrid.ModelTiming{Model: model})
				if err != nil {
					return nil, err
				}
				measured, err := em.MeasureMakespan(s, cfg.ExpTrials)
				if err != nil {
					return nil, err
				}
				sim[algo.Name()] = simRes.Makespan
				exp[algo.Name()] = measured
				errs = append(errs, stats.SimErrPct(simRes.Makespan, measured))
			}
			simRels = append(simRels, stats.RelDiff(sim["HCPA"], sim["MCPA"]))
			expRels = append(expRels, stats.RelDiff(exp["HCPA"], exp["MCPA"]))
		}
		rows = append(rows, HeteroRow{
			Model:        model.Name(),
			Mispredicted: stats.CountDisagreements(simRels, expRels, 0),
			Total:        len(simRels),
			MedianErrPct: stats.Median(errs),
		})
	}
	return rows, nil
}

// WriteHetero prints the heterogeneity-study table.
func WriteHetero(w io.Writer, rows []HeteroRow) {
	fmt.Fprintln(w, "Heterogeneity study — two-speed cluster (16× 250 MFlop/s + 16× 500 MFlop/s)")
	fmt.Fprintf(w, "  %-12s %14s %16s\n", "model", "wrong winner", "median err [%]")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %10d/%-3d %16.1f\n", r.Model, r.Mispredicted, r.Total, r.MedianErrPct)
	}
}

// StragglerRow scores the profile simulator on a healthy versus a degraded
// environment.
type StragglerRow struct {
	Environment  string
	Mispredicted int
	Total        int
	MedianErrPct float64
	MaxErrPct    float64
}

// StragglerStudy exposes a limit of the paper's methodology: the §VI
// profiling campaign measures per processor *count*, never per processor
// *identity*, so a single degraded node — common on real clusters — is
// invisible to both the profile and the empirical model. The study scores
// the profile simulator on a healthy environment and on one whose node 13
// runs 3× slower, using the same measurement methodology on each.
func StragglerStudy(cfg Config) ([]StragglerRow, error) {
	suite, err := dag.GenerateSuite(cfg.SuiteSeed)
	if err != nil {
		return nil, err
	}
	healthy := cluster.Bayreuth()
	degraded := cluster.Bayreuth()
	degraded.StragglerHost = 13
	degraded.StragglerFactor = 3
	envs := []struct {
		name  string
		truth *cluster.Hidden
	}{{"healthy", healthy}, {"straggler-node-13", degraded}}

	var rows []StragglerRow
	for _, env := range envs {
		em, err := cluster.NewEmulator(env.truth, cfg.NoiseSeed)
		if err != nil {
			return nil, err
		}
		net, err := simgrid.NewNet(env.truth.Cluster)
		if err != nil {
			return nil, err
		}
		model, err := profiler.BuildProfileModel(em, cfg.Profile)
		if err != nil {
			return nil, err
		}
		cost := perfmodel.CostFunc(model)
		comm := perfmodel.CommFunc(model, env.truth.Cluster)

		var simRels, expRels, errs []float64
		maxErr := 0.0
		for _, inst := range suite {
			sim := map[string]float64{}
			exp := map[string]float64{}
			for _, algo := range ComparedAlgorithms() {
				s, err := sched.Build(algo, inst.Graph, env.truth.Cluster.Nodes, cost, comm)
				if err != nil {
					return nil, err
				}
				simRes, err := tgrid.Run(net, s, tgrid.ModelTiming{Model: model})
				if err != nil {
					return nil, err
				}
				measured, err := em.MeasureMakespan(s, cfg.ExpTrials)
				if err != nil {
					return nil, err
				}
				sim[algo.Name()] = simRes.Makespan
				exp[algo.Name()] = measured
				e := stats.SimErrPct(simRes.Makespan, measured)
				errs = append(errs, e)
				if e > maxErr {
					maxErr = e
				}
			}
			simRels = append(simRels, stats.RelDiff(sim["HCPA"], sim["MCPA"]))
			expRels = append(expRels, stats.RelDiff(exp["HCPA"], exp["MCPA"]))
		}
		rows = append(rows, StragglerRow{
			Environment:  env.name,
			Mispredicted: stats.CountDisagreements(simRels, expRels, 0),
			Total:        len(simRels),
			MedianErrPct: stats.Median(errs),
			MaxErrPct:    maxErr,
		})
	}
	return rows, nil
}

// WriteStraggler prints the straggler-study table.
func WriteStraggler(w io.Writer, rows []StragglerRow) {
	fmt.Fprintln(w, "Straggler study — profile simulator vs a single degraded node (limits of §VI)")
	fmt.Fprintf(w, "  %-20s %14s %16s %12s\n", "environment", "wrong winner", "median err [%]", "max err [%]")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s %10d/%-3d %16.1f %12.1f\n",
			r.Environment, r.Mispredicted, r.Total, r.MedianErrPct, r.MaxErrPct)
	}
}

// EnvironmentRow compares the analytic simulator's usefulness across
// ground-truth environments.
type EnvironmentRow struct {
	Environment  string
	Mispredicted int
	Total        int
	MedianErrPct float64
	KendallTau   float64
}

// EnvironmentStudy scores the purely analytic simulator against two
// environments: the paper's Bayreuth/TGrid stand-in, and a tuned "modern"
// runtime (native kernels near the calibrated rate, millisecond spawning).
// It quantifies §IX's conjecture that the findings are driven by the
// environment's idiosyncrasies: on the tuned environment the analytic
// simulator becomes nearly sound.
func EnvironmentStudy(cfg Config) ([]EnvironmentRow, error) {
	suite, err := dag.GenerateSuite(cfg.SuiteSeed)
	if err != nil {
		return nil, err
	}
	envs := []struct {
		name  string
		truth *cluster.Hidden
	}{
		{"bayreuth-tgrid", cluster.Bayreuth()},
		{"modern-tuned", cluster.Modern()},
	}
	var rows []EnvironmentRow
	for _, env := range envs {
		em, err := cluster.NewEmulator(env.truth, cfg.NoiseSeed)
		if err != nil {
			return nil, err
		}
		net, err := simgrid.NewNet(env.truth.Cluster)
		if err != nil {
			return nil, err
		}
		model := perfmodel.NewAnalytic(env.truth.Cluster)
		cost := perfmodel.CostFunc(model)
		comm := perfmodel.CommFunc(model, env.truth.Cluster)

		var simRels, expRels, errs []float64
		for _, inst := range suite {
			sim := map[string]float64{}
			exp := map[string]float64{}
			for _, algo := range ComparedAlgorithms() {
				s, err := sched.Build(algo, inst.Graph, env.truth.Cluster.Nodes, cost, comm)
				if err != nil {
					return nil, err
				}
				simRes, err := tgrid.Run(net, s, tgrid.ModelTiming{Model: model})
				if err != nil {
					return nil, err
				}
				measured, err := em.MeasureMakespan(s, cfg.ExpTrials)
				if err != nil {
					return nil, err
				}
				sim[algo.Name()] = simRes.Makespan
				exp[algo.Name()] = measured
				errs = append(errs, stats.SimErrPct(simRes.Makespan, measured))
			}
			simRels = append(simRels, stats.RelDiff(sim["HCPA"], sim["MCPA"]))
			expRels = append(expRels, stats.RelDiff(exp["HCPA"], exp["MCPA"]))
		}
		rows = append(rows, EnvironmentRow{
			Environment:  env.name,
			Mispredicted: stats.CountDisagreements(simRels, expRels, 0),
			Total:        len(simRels),
			MedianErrPct: stats.Median(errs),
			KendallTau:   stats.KendallTau(simRels, expRels),
		})
	}
	return rows, nil
}

// WriteEnvironments prints the environment-comparison table.
func WriteEnvironments(w io.Writer, rows []EnvironmentRow) {
	fmt.Fprintln(w, "Environment study — analytic simulator vs two ground truths")
	fmt.Fprintf(w, "  %-16s %14s %16s %12s\n", "environment", "wrong winner", "median err [%]", "Kendall tau")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %10d/%-3d %16.1f %12.2f\n",
			r.Environment, r.Mispredicted, r.Total, r.MedianErrPct, r.KendallTau)
	}
}

// SensitivityRow is one noise level of the sensitivity study.
type SensitivityRow struct {
	NoiseSigma   float64
	Mispredicted int
	Total        int
	KendallTau   float64
}

// NoiseSensitivity re-runs the Figure 1 comparison (analytic simulator vs
// experiment) under environments with different run-to-run noise levels,
// separating the structural part of the analytic simulator's
// winner-mispredictions (missing overheads, wrong task times) from the part
// caused by measurement noise on near-ties. The paper ran each schedule
// once on a real machine, so its counts include both components.
func NoiseSensitivity(cfg Config, sigmas []float64) ([]SensitivityRow, error) {
	suite, err := dag.GenerateSuite(cfg.SuiteSeed)
	if err != nil {
		return nil, err
	}
	var rows []SensitivityRow
	for _, sigma := range sigmas {
		truth := cluster.Bayreuth()
		truth.NoiseSigma = sigma
		em, err := cluster.NewEmulator(truth, cfg.NoiseSeed)
		if err != nil {
			return nil, err
		}
		net, err := simgrid.NewNet(truth.Cluster)
		if err != nil {
			return nil, err
		}
		model := perfmodel.NewAnalytic(truth.Cluster)
		cost := perfmodel.CostFunc(model)
		comm := perfmodel.CommFunc(model, truth.Cluster)

		var simRels, expRels []float64
		for _, inst := range suite {
			sim := map[string]float64{}
			exp := map[string]float64{}
			for _, algo := range ComparedAlgorithms() {
				s, err := sched.Build(algo, inst.Graph, truth.Cluster.Nodes, cost, comm)
				if err != nil {
					return nil, err
				}
				simRes, err := tgrid.Run(net, s, tgrid.ModelTiming{Model: model})
				if err != nil {
					return nil, err
				}
				measured, err := em.MeasureMakespan(s, cfg.ExpTrials)
				if err != nil {
					return nil, err
				}
				sim[algo.Name()] = simRes.Makespan
				exp[algo.Name()] = measured
			}
			simRels = append(simRels, stats.RelDiff(sim["HCPA"], sim["MCPA"]))
			expRels = append(expRels, stats.RelDiff(exp["HCPA"], exp["MCPA"]))
		}
		rows = append(rows, SensitivityRow{
			NoiseSigma:   sigma,
			Mispredicted: stats.CountDisagreements(simRels, expRels, 0),
			Total:        len(simRels),
			KendallTau:   stats.KendallTau(simRels, expRels),
		})
	}
	return rows, nil
}

// WriteSensitivity prints the noise-sensitivity table.
func WriteSensitivity(w io.Writer, rows []SensitivityRow) {
	fmt.Fprintln(w, "Noise sensitivity — analytic simulator vs experiment at varying run-to-run noise")
	fmt.Fprintf(w, "  %-12s %14s %12s\n", "noise sigma", "wrong winner", "Kendall tau")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12g %10d/%-3d %12.2f\n", r.NoiseSigma, r.Mispredicted, r.Total, r.KendallTau)
	}
}

// WriteScaling prints the scaling-study table.
func WriteScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintln(w, "Scaling study — empirical simulator on scaled hypothetical clusters")
	fmt.Fprintf(w, "  %-8s %14s %16s\n", "nodes", "wrong winner", "median err [%]")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8d %10d/%-3d %16.1f\n", r.Nodes, r.Mispredicted, r.Total, r.MedianErrPct)
	}
}
