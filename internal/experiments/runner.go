package experiments

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
)

// This file is the concurrent study-execution engine. Every study in this
// package decomposes into independent cells — one (DAG instance, algorithm
// set, model/variant/environment) unit of work — and runs them on a bounded
// worker pool. Two properties make the parallelism invisible in the output:
//
//   - each cell draws its run-to-run noise from a cluster.Session seeded
//     deterministically from (lab noise seed, study name, cell index), so a
//     cell's measurements never depend on which worker ran it or on what
//     ran before it;
//   - cell results are written into index-addressed slots and aggregated in
//     cell order after the pool drains.
//
// Together these make every study report byte-identical for any worker
// count, including 1.

// DefaultParallelism is the worker count used when Config.Parallelism is
// zero: one worker per logical CPU.
func DefaultParallelism() int { return runtime.NumCPU() }

// CellSeed derives the deterministic noise seed of one study cell from the
// lab-wide noise seed, the study name and the cell index (FNV-1a over the
// three). Distinct studies and distinct cells get decorrelated streams;
// the same triple always gets the same stream.
func CellSeed(noiseSeed int64, study string, cell int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(noiseSeed))
	h.Write(buf[:])
	h.Write([]byte(study))
	binary.LittleEndian.PutUint64(buf[:], uint64(cell))
	h.Write(buf[:])
	return int64(h.Sum64())
}

// ForEachCell runs fn(0) … fn(n-1) on at most workers goroutines
// (DefaultParallelism if workers <= 0) and returns the error of the
// lowest-index failing cell, so error reporting is as deterministic as the
// results. fn must confine its writes to per-index state.
func ForEachCell(workers, n int, fn func(cell int) error) error {
	return ForEachCellCtx(context.Background(), workers, n, fn)
}

// ForEachCellCtx is ForEachCell with cancellation: once ctx is done, cells
// that have not started are skipped (in-flight cells finish — fn is never
// interrupted mid-cell) and ctx.Err() is returned. A cancelled run never
// returns partial results as success; a run whose every cell completed
// returns nil even if ctx was cancelled at the very end, so the outcome
// does not depend on the worker count. A run that is not cancelled is
// byte-for-byte the same as ForEachCell.
func ForEachCellCtx(ctx context.Context, workers, n int, fn func(cell int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = DefaultParallelism()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next, completed int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Once any cell fails (or the context is cancelled), skip
				// cells that have not started: the results will be
				// discarded anyway. In-flight cells finish, keeping the
				// lowest-index error deterministic among the cells that
				// ran.
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				} else {
					atomic.AddInt64(&completed, 1)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if int(atomic.LoadInt64(&completed)) == n {
		return nil // every cell ran: a last-moment cancellation is moot
	}
	return ctx.Err()
}

// Runner executes the cells of named studies against one emulated
// environment: a bounded worker pool plus per-cell deterministic noise
// sessions.
type Runner struct {
	// Workers bounds the pool; <= 0 selects DefaultParallelism.
	Workers int
	// Seed is the lab-wide noise seed cell seeds derive from.
	Seed int64
	// Em is the environment cells measure against.
	Em *cluster.Emulator
	// Ctx, when non-nil, cancels the study: cells that have not started are
	// skipped once it is done and Run returns its error. Results are
	// unaffected for runs that complete.
	Ctx context.Context
}

// Run executes fn for every cell of the named study, handing each cell a
// private measurement session.
func (r Runner) Run(study string, n int, fn func(cell int, sess *cluster.Session) error) error {
	ctx := r.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return ForEachCellCtx(ctx, r.Workers, n, func(i int) error {
		return fn(i, r.Em.Session(CellSeed(r.Seed, study, i)))
	})
}
