package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCellCoversAllCells(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 37
		hit := make([]int32, n)
		if err := ForEachCell(workers, n, func(i int) error {
			atomic.AddInt32(&hit[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachCellBoundsWorkers(t *testing.T) {
	const workers, n = 3, 40
	var cur, peak int32
	var mu sync.Mutex
	err := ForEachCell(workers, n, func(i int) error {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Errorf("observed %d concurrent cells, pool bound is %d", peak, workers)
	}
}

func TestForEachCellReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEachCell(workers, 20, func(i int) error {
			if i == 7 || i == 13 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 7 failed" {
			t.Errorf("workers=%d: err = %v, want cell 7's", workers, err)
		}
	}
	if err := ForEachCell(4, 0, func(int) error { return errors.New("no") }); err != nil {
		t.Errorf("n=0: err = %v", err)
	}
}

func TestCellSeedDeterministicAndDecorrelated(t *testing.T) {
	if CellSeed(42, "suite/analytic", 3) != CellSeed(42, "suite/analytic", 3) {
		t.Error("same triple yields different seeds")
	}
	seen := map[int64]string{}
	for _, study := range []string{"suite/analytic", "suite/profile", "ablation/full-profile"} {
		for cell := 0; cell < 54; cell++ {
			s := CellSeed(42, study, cell)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s/%d vs %s", study, cell, prev)
			}
			seen[s] = fmt.Sprintf("%s/%d", study, cell)
		}
	}
}

func TestForEachCellCtxCancelled(t *testing.T) {
	// An already-cancelled context runs nothing.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForEachCellCtx(ctx, workers, 20, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if workers == 1 && ran.Load() != 0 {
			t.Errorf("workers=1: %d cells ran under a cancelled context", ran.Load())
		}
	}

	// Cancelling mid-run stops scheduling new cells and reports ctx.Err().
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := ForEachCellCtx(ctx, workers, 1000, func(i int) error {
			if ran.Add(1) == 5 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n >= 1000 {
			t.Errorf("workers=%d: all %d cells ran despite cancellation", workers, n)
		}
	}

	// A cell error still wins over the cancellation it caused.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	err := ForEachCellCtx(ctx2, 1, 10, func(i int) error {
		if i == 3 {
			cancel2()
			return fmt.Errorf("cell 3 failed")
		}
		return nil
	})
	if err == nil || err.Error() != "cell 3 failed" {
		t.Errorf("err = %v, want cell 3's", err)
	}
}

// TestRunnerCtxCancelsLabStudies exercises the Lab.WithContext path: a
// cancelled view aborts suite studies with ctx.Err() instead of results.
func TestRunnerCtxCancelsLabStudies(t *testing.T) {
	l, err := NewLab(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.WithContext(ctx).RunSuite("analytic"); !errors.Is(err, context.Canceled) {
		t.Errorf("RunSuite on cancelled lab view: err = %v, want context.Canceled", err)
	}
	// The original lab is unaffected and still works.
	if _, err := l.RunSuite("analytic"); err != nil {
		t.Errorf("RunSuite on original lab: %v", err)
	}
}

// studyTranscript writes a representative batch of studies — suite cells,
// breakdown cells, shape cells and campaign-figure cells — to one buffer.
func studyTranscript(t *testing.T, l *Lab) []byte {
	t.Helper()
	var buf bytes.Buffer
	l.Table1().Write(&buf)
	for _, n := range []int{2000, 3000} {
		c, err := l.CompareHCPAMCPA("analytic", n)
		if err != nil {
			t.Fatal(err)
		}
		c.Write(&buf)
	}
	fig2, err := l.Figure2Java(2)
	if err != nil {
		t.Fatal(err)
	}
	WriteErrorSeries(&buf, "fig2", fig2)
	fig3, err := l.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	fig3.Write(&buf)
	fig4, err := l.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	fig4.Write(&buf)
	breakdown, err := l.TimeBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	WriteBreakdown(&buf, breakdown)
	shapes, err := l.ShapeStudy()
	if err != nil {
		t.Fatal(err)
	}
	WriteShapes(&buf, shapes)
	return buf.Bytes()
}

// TestStudyDeterminismAcrossWorkerCounts is the engine's core contract:
// study reports are byte-identical at workers=1 and workers=8, because
// every cell's noise stream is seeded from (study, cell index), not from
// execution order.
func TestStudyDeterminismAcrossWorkerCounts(t *testing.T) {
	transcripts := make([][]byte, 2)
	for i, workers := range []int{1, 8} {
		cfg := DefaultConfig()
		cfg.Parallelism = workers
		l, err := NewLab(cfg)
		if err != nil {
			t.Fatal(err)
		}
		transcripts[i] = studyTranscript(t, l)
	}
	if !bytes.Equal(transcripts[0], transcripts[1]) {
		t.Errorf("study transcripts differ between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			transcripts[0], transcripts[1])
	}
}

// TestStandaloneStudyDeterminism covers the studies that assemble their own
// environments (and thus their own Runner) rather than going through Lab.
func TestStandaloneStudyDeterminism(t *testing.T) {
	transcripts := make([][]byte, 2)
	for i, workers := range []int{1, 8} {
		cfg := DefaultConfig()
		cfg.Parallelism = workers
		var buf bytes.Buffer
		sens, err := NoiseSensitivity(cfg, []float64{0, 0.03})
		if err != nil {
			t.Fatal(err)
		}
		WriteSensitivity(&buf, sens)
		envs, err := EnvironmentStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		WriteEnvironments(&buf, envs)
		transcripts[i] = buf.Bytes()
	}
	if !bytes.Equal(transcripts[0], transcripts[1]) {
		t.Errorf("standalone study transcripts differ between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			transcripts[0], transcripts[1])
	}
}
