package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCellCoversAllCells(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 37
		hit := make([]int32, n)
		if err := ForEachCell(workers, n, func(i int) error {
			atomic.AddInt32(&hit[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachCellBoundsWorkers(t *testing.T) {
	const workers, n = 3, 40
	var cur, peak int32
	var mu sync.Mutex
	err := ForEachCell(workers, n, func(i int) error {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Errorf("observed %d concurrent cells, pool bound is %d", peak, workers)
	}
}

func TestForEachCellReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEachCell(workers, 20, func(i int) error {
			if i == 7 || i == 13 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 7 failed" {
			t.Errorf("workers=%d: err = %v, want cell 7's", workers, err)
		}
	}
	if err := ForEachCell(4, 0, func(int) error { return errors.New("no") }); err != nil {
		t.Errorf("n=0: err = %v", err)
	}
}

func TestCellSeedDeterministicAndDecorrelated(t *testing.T) {
	if CellSeed(42, "suite/analytic", 3) != CellSeed(42, "suite/analytic", 3) {
		t.Error("same triple yields different seeds")
	}
	seen := map[int64]string{}
	for _, study := range []string{"suite/analytic", "suite/profile", "ablation/full-profile"} {
		for cell := 0; cell < 54; cell++ {
			s := CellSeed(42, study, cell)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s/%d vs %s", study, cell, prev)
			}
			seen[s] = fmt.Sprintf("%s/%d", study, cell)
		}
	}
}

// studyTranscript writes a representative batch of studies — suite cells,
// breakdown cells, shape cells and campaign-figure cells — to one buffer.
func studyTranscript(t *testing.T, l *Lab) []byte {
	t.Helper()
	var buf bytes.Buffer
	l.Table1().Write(&buf)
	for _, n := range []int{2000, 3000} {
		c, err := l.CompareHCPAMCPA("analytic", n)
		if err != nil {
			t.Fatal(err)
		}
		c.Write(&buf)
	}
	WriteErrorSeries(&buf, "fig2", l.Figure2Java(2))
	l.Figure3().Write(&buf)
	l.Figure4().Write(&buf)
	breakdown, err := l.TimeBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	WriteBreakdown(&buf, breakdown)
	shapes, err := l.ShapeStudy()
	if err != nil {
		t.Fatal(err)
	}
	WriteShapes(&buf, shapes)
	return buf.Bytes()
}

// TestStudyDeterminismAcrossWorkerCounts is the engine's core contract:
// study reports are byte-identical at workers=1 and workers=8, because
// every cell's noise stream is seeded from (study, cell index), not from
// execution order.
func TestStudyDeterminismAcrossWorkerCounts(t *testing.T) {
	transcripts := make([][]byte, 2)
	for i, workers := range []int{1, 8} {
		cfg := DefaultConfig()
		cfg.Parallelism = workers
		l, err := NewLab(cfg)
		if err != nil {
			t.Fatal(err)
		}
		transcripts[i] = studyTranscript(t, l)
	}
	if !bytes.Equal(transcripts[0], transcripts[1]) {
		t.Errorf("study transcripts differ between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			transcripts[0], transcripts[1])
	}
}

// TestStandaloneStudyDeterminism covers the studies that assemble their own
// environments (and thus their own Runner) rather than going through Lab.
func TestStandaloneStudyDeterminism(t *testing.T) {
	transcripts := make([][]byte, 2)
	for i, workers := range []int{1, 8} {
		cfg := DefaultConfig()
		cfg.Parallelism = workers
		var buf bytes.Buffer
		sens, err := NoiseSensitivity(cfg, []float64{0, 0.03})
		if err != nil {
			t.Fatal(err)
		}
		WriteSensitivity(&buf, sens)
		envs, err := EnvironmentStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		WriteEnvironments(&buf, envs)
		transcripts[i] = buf.Bytes()
	}
	if !bytes.Equal(transcripts[0], transcripts[1]) {
		t.Errorf("standalone study transcripts differ between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			transcripts[0], transcripts[1])
	}
}
