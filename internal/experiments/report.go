package experiments

import (
	"encoding/json"
	"io"
)

// Report is the machine-readable record of the whole evaluation — the data
// behind EXPERIMENTS.md, exportable as JSON for regression tracking and
// external plotting.
type Report struct {
	// Config echoes the seeds and trial counts.
	Config Config `json:"config"`
	// Comparisons holds the Figure 1/5/7 data per model and matrix size.
	Comparisons []ComparisonReport `json:"comparisons"`
	// ErrorBoxes holds the Figure 8 distributions.
	ErrorBoxes []ErrorBoxReport `json:"error_boxes"`
	// Startup is the Figure 3 series (seconds, index p−1).
	Startup []float64 `json:"startup_seconds"`
	// RedistByDst is the Figure 4 reduction (seconds, index p(dst)−1).
	RedistByDst []float64 `json:"redist_overhead_seconds_by_dst"`
	// TableII holds the fitted empirical coefficients.
	TableII TableIIReport `json:"table2"`
	// Ablation holds the overhead-attribution rows.
	Ablation []AblationRow `json:"ablation"`
}

// ComparisonReport is the JSON shape of one Figure 1/5/7 panel.
type ComparisonReport struct {
	Model        string      `json:"model"`
	N            int         `json:"n"`
	Mispredicted int         `json:"mispredicted"`
	Total        int         `json:"total"`
	Points       []PairPoint `json:"points"`
}

// ErrorBoxReport is the JSON shape of one Figure 8 box.
type ErrorBoxReport struct {
	Model  string  `json:"model"`
	Algo   string  `json:"algo"`
	Min    float64 `json:"min"`
	Q1     float64 `json:"q1"`
	Median float64 `json:"median"`
	Q3     float64 `json:"q3"`
	Max    float64 `json:"max"`
}

// TableIIReport is the JSON shape of the fitted Table II coefficients.
type TableIIReport struct {
	// Mul maps matrix size to (a, b, c, d): low-regime then high-regime.
	Mul map[int][4]float64 `json:"mul"`
	// Add maps matrix size to (a, b).
	Add map[int][2]float64 `json:"add"`
	// StartupA/B are the task-startup fit in seconds.
	StartupA, StartupB float64
	// RedistAms/Bms are the redistribution fit in milliseconds.
	RedistAms, RedistBms float64
}

// BuildReport runs every suite-wide experiment and assembles the record.
func (l *Lab) BuildReport() (*Report, error) {
	r := &Report{Config: l.Cfg}
	for _, model := range ModelNames() {
		for _, n := range []int{2000, 3000} {
			c, err := l.CompareHCPAMCPA(model, n)
			if err != nil {
				return nil, err
			}
			r.Comparisons = append(r.Comparisons, ComparisonReport{
				Model:        model,
				N:            n,
				Mispredicted: c.Mispredicted,
				Total:        len(c.Points),
				Points:       c.Points,
			})
		}
	}
	boxes, err := l.Figure8()
	if err != nil {
		return nil, err
	}
	for _, b := range boxes {
		r.ErrorBoxes = append(r.ErrorBoxes, ErrorBoxReport{
			Model: b.Model, Algo: b.Algo,
			Min: b.Box.Min, Q1: b.Box.Q1, Median: b.Box.Median, Q3: b.Box.Q3, Max: b.Box.Max,
		})
	}
	fig3, err := l.Figure3()
	if err != nil {
		return nil, err
	}
	r.Startup = fig3.Seconds
	fig4, err := l.Figure4()
	if err != nil {
		return nil, err
	}
	for d := 1; d <= len(fig4.Overhead); d++ {
		r.RedistByDst = append(r.RedistByDst, fig4.ByDst[d])
	}
	r.TableII = TableIIReport{
		Mul:       map[int][4]float64{},
		Add:       map[int][2]float64{},
		StartupA:  l.Empirical.StartupFit.A,
		StartupB:  l.Empirical.StartupFit.B,
		RedistAms: 1000 * l.Empirical.RedistFit.A,
		RedistBms: 1000 * l.Empirical.RedistFit.B,
	}
	for n, pw := range l.Empirical.MulFits {
		r.TableII.Mul[n] = [4]float64{pw.Low.A, pw.Low.B, pw.High.A, pw.High.B}
	}
	for n, f := range l.Empirical.AddFits {
		r.TableII.Add[n] = [2]float64{f.A, f.B}
	}
	ablation, err := l.Ablation()
	if err != nil {
		return nil, err
	}
	r.Ablation = ablation
	return r, nil
}

// WriteJSON encodes the report with indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
