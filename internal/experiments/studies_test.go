package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestAblationMonotonicity(t *testing.T) {
	rows, err := lab.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d ablation rows", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Model] = r
		if r.Total != 54 {
			t.Errorf("%s scored over %d DAGs, want 54", r.Model, r.Total)
		}
	}
	// Error attribution: replacing the analytic task times with profiled
	// ones removes most of the error (the kernels run ~2x off the model);
	// adding only overheads helps less.
	analytic := byName["analytic"]
	tasksOnly := byName["tasks-only"]
	overheads := byName["analytic+overheads"]
	full := byName["full-profile"]
	if tasksOnly.MedianErrPct >= analytic.MedianErrPct {
		t.Errorf("profiled task times did not reduce error: %g vs %g",
			tasksOnly.MedianErrPct, analytic.MedianErrPct)
	}
	if overheads.MedianErrPct >= analytic.MedianErrPct {
		t.Errorf("profiled overheads did not reduce error: %g vs %g",
			overheads.MedianErrPct, analytic.MedianErrPct)
	}
	if full.MedianErrPct >= tasksOnly.MedianErrPct {
		t.Errorf("full profile (%g) not better than tasks-only (%g)",
			full.MedianErrPct, tasksOnly.MedianErrPct)
	}
	if full.MedianErrPct > 10 {
		t.Errorf("full-profile median error %g%%, want small", full.MedianErrPct)
	}
	// Ordering fidelity: the full profile ranks the algorithms far better
	// than the purely analytic simulator.
	if full.KendallTau <= analytic.KendallTau {
		t.Errorf("full profile tau %g not above analytic %g", full.KendallTau, analytic.KendallTau)
	}
	var buf bytes.Buffer
	WriteAblation(&buf, rows)
	if !strings.Contains(buf.String(), "Ablation") {
		t.Error("ablation table missing header")
	}
}

func TestStragglerStudyExposesLimit(t *testing.T) {
	rows, err := StragglerStudy(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	healthy, degraded := rows[0], rows[1]
	if healthy.MedianErrPct > 10 {
		t.Errorf("healthy profile error %g%% too large", healthy.MedianErrPct)
	}
	// The per-count profiling methodology cannot see the degraded node:
	// the profile simulator's error must blow up.
	if degraded.MedianErrPct < 5*healthy.MedianErrPct {
		t.Errorf("straggler error %g%% not far above healthy %g%%",
			degraded.MedianErrPct, healthy.MedianErrPct)
	}
	if degraded.Mispredicted <= healthy.Mispredicted {
		t.Errorf("straggler flips (%d) not above healthy (%d)",
			degraded.Mispredicted, healthy.Mispredicted)
	}
	var buf bytes.Buffer
	WriteStraggler(&buf, rows)
	if !strings.Contains(buf.String(), "Straggler study") {
		t.Error("straggler table missing header")
	}
}

func TestHeterogeneityStudy(t *testing.T) {
	rows, err := HeterogeneityStudy(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	analytic, profile := rows[0], rows[1]
	if analytic.Model != "analytic" || profile.Model != "profile" {
		t.Fatalf("unexpected row order: %v", rows)
	}
	// The paper's conclusion must port to the heterogeneous setting:
	// profiled simulation stays usable, analytic stays off by a factor.
	if profile.MedianErrPct > 15 {
		t.Errorf("profile median error %g%% on hetero cluster", profile.MedianErrPct)
	}
	if analytic.MedianErrPct < 5*profile.MedianErrPct {
		t.Errorf("analytic error %g not ≫ profile %g", analytic.MedianErrPct, profile.MedianErrPct)
	}
	if profile.Mispredicted > analytic.Mispredicted {
		t.Errorf("profile flips more winners (%d) than analytic (%d)",
			profile.Mispredicted, analytic.Mispredicted)
	}
	var buf bytes.Buffer
	WriteHetero(&buf, rows)
	if !strings.Contains(buf.String(), "Heterogeneity study") {
		t.Error("hetero table missing header")
	}
}

func TestEnvironmentStudy(t *testing.T) {
	rows, err := EnvironmentStudy(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	bayreuth, modern := rows[0], rows[1]
	if modern.MedianErrPct >= bayreuth.MedianErrPct/3 {
		t.Errorf("modern environment error %g not far below Bayreuth's %g",
			modern.MedianErrPct, bayreuth.MedianErrPct)
	}
	if modern.Mispredicted > bayreuth.Mispredicted {
		t.Errorf("modern environment flips more winners (%d) than Bayreuth (%d)",
			modern.Mispredicted, bayreuth.Mispredicted)
	}
	var buf bytes.Buffer
	WriteEnvironments(&buf, rows)
	if !strings.Contains(buf.String(), "Environment study") {
		t.Error("environment table missing header")
	}
}

func TestNoiseSensitivity(t *testing.T) {
	cfg := DefaultConfig()
	rows, err := NoiseSensitivity(cfg, []float64{0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Even a noise-free environment leaves structural mispredictions —
	// the analytic model's missing overheads, not measurement noise, are
	// the story.
	if rows[0].Mispredicted == 0 {
		t.Error("noise-free environment shows no analytic mispredictions; structure lost")
	}
	// More noise cannot make the ordering more faithful.
	if rows[1].KendallTau > rows[0].KendallTau {
		t.Errorf("tau rose with noise: %g -> %g", rows[0].KendallTau, rows[1].KendallTau)
	}
	var buf bytes.Buffer
	WriteSensitivity(&buf, rows)
	if !strings.Contains(buf.String(), "Noise sensitivity") {
		t.Error("sensitivity table missing header")
	}
}

func TestBuildReportJSON(t *testing.T) {
	report, err := lab.BuildReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Comparisons) != 6 {
		t.Errorf("%d comparisons, want 6", len(report.Comparisons))
	}
	if len(report.ErrorBoxes) != 6 {
		t.Errorf("%d error boxes, want 6", len(report.ErrorBoxes))
	}
	if len(report.Startup) != 32 || len(report.RedistByDst) != 32 {
		t.Errorf("series lengths %d/%d, want 32/32", len(report.Startup), len(report.RedistByDst))
	}
	if len(report.TableII.Mul) != 2 || len(report.TableII.Add) != 2 {
		t.Error("Table II coefficients incomplete")
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.TableII.StartupA != report.TableII.StartupA {
		t.Error("round-trip lost coefficients")
	}
}

func TestTimeBreakdown(t *testing.T) {
	rows, err := lab.TimeBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		sum := r.Kernel + r.Startup + r.RedistOverhead + r.RedistTransfer
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: fractions sum to %g", r.Algo, sum)
		}
		if r.Kernel < 0.5 {
			t.Errorf("%s: kernel fraction %g implausibly low", r.Algo, r.Kernel)
		}
		if r.Startup <= 0 || r.RedistOverhead <= 0 {
			t.Errorf("%s: overheads missing from breakdown", r.Algo)
		}
		if r.OverheadShareOfMakespan <= 0 || r.OverheadShareOfMakespan > 1 {
			t.Errorf("%s: overhead share of makespan %g", r.Algo, r.OverheadShareOfMakespan)
		}
	}
	var buf bytes.Buffer
	WriteBreakdown(&buf, rows)
	if !strings.Contains(buf.String(), "Time breakdown") {
		t.Error("breakdown table missing header")
	}
}

func TestShapeStudy(t *testing.T) {
	rows, err := lab.ShapeStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	agree := 0
	for _, r := range rows {
		if r.ProfileAgree {
			agree++
		}
	}
	// The profile simulator must pick the experimentally better algorithm
	// on at least three of the four skeletons.
	if agree < 3 {
		t.Errorf("profile simulation agrees on only %d/4 skeletons", agree)
	}
	var buf bytes.Buffer
	WriteShapes(&buf, rows)
	if !strings.Contains(buf.String(), "Shape study") {
		t.Error("shape table missing header")
	}
}

func TestScalingStudy(t *testing.T) {
	cfg := DefaultConfig()
	rows, err := ScalingStudy(cfg, []int{32, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d scaling rows", len(rows))
	}
	for _, r := range rows {
		if r.Total != 54 {
			t.Errorf("nodes=%d: %d DAGs", r.Nodes, r.Total)
		}
		// The empirical simulator must stay usable on the scaled platform:
		// median error well below the analytic regime (~200%).
		if r.MedianErrPct > 60 {
			t.Errorf("nodes=%d: median error %g%% too large", r.Nodes, r.MedianErrPct)
		}
	}
	var buf bytes.Buffer
	WriteScaling(&buf, rows)
	if !strings.Contains(buf.String(), "Scaling study") {
		t.Error("scaling table missing header")
	}
}
