package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/sched"
)

func testTrace(t *testing.T) (*Trace, *sched.Schedule) {
	t.Helper()
	truth := cluster.Bayreuth()
	g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 3})
	model := perfmodel.NewAnalytic(truth.Cluster)
	s, err := sched.Build(sched.HCPA{}, g, truth.Cluster.Nodes,
		perfmodel.CostFunc(model), perfmodel.CommFunc(model, truth.Cluster))
	if err != nil {
		t.Fatal(err)
	}
	em, err := cluster.NewEmulator(truth, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	return FromResult(s, res), s
}

func TestFromResultSpans(t *testing.T) {
	tr, s := testTrace(t)
	nTasks, nRedist := 0, 0
	for _, span := range tr.Spans {
		switch span.Kind {
		case "task":
			nTasks++
		case "redist":
			nRedist++
		default:
			t.Errorf("unknown span kind %q", span.Kind)
		}
		if span.Finish < span.Start {
			t.Errorf("span %s ends before it starts", span.Name)
		}
		if span.Finish > tr.Makespan+1e-9 {
			t.Errorf("span %s ends after the makespan", span.Name)
		}
	}
	if nTasks != s.Graph.Len() {
		t.Errorf("%d task spans, want %d", nTasks, s.Graph.Len())
	}
	if nRedist != s.Graph.EdgeCount() {
		t.Errorf("%d redistribution spans, want %d", nRedist, s.Graph.EdgeCount())
	}
	// Sorted by start.
	for i := 1; i < len(tr.Spans); i++ {
		if tr.Spans[i-1].Start > tr.Spans[i].Start {
			t.Fatal("spans not sorted by start time")
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tr, _ := testTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(tr.Spans)+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), len(tr.Spans)+1)
	}
	if !strings.HasPrefix(lines[0], "name,kind,start") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestUtilizationBounds(t *testing.T) {
	tr, _ := testTrace(t)
	u := tr.Utilization()
	if len(u) == 0 {
		t.Fatal("no hosts in utilization")
	}
	for h, v := range u {
		if v < 0 || v > 1+1e-9 {
			t.Errorf("host %d utilization %g outside [0,1]", h, v)
		}
	}
	mean := tr.MeanUtilization()
	if mean <= 0 || mean > 1 {
		t.Errorf("mean utilization %g", mean)
	}
}

func TestGanttRenders(t *testing.T) {
	tr, _ := testTrace(t)
	var buf bytes.Buffer
	tr.Gantt(&buf, 60)
	out := buf.String()
	if !strings.Contains(out, "host  0 |") {
		t.Errorf("gantt missing host rows:\n%s", out)
	}
	if len(strings.Split(out, "\n")) < tr.Hosts {
		t.Error("gantt row count too small")
	}
}

func TestGanttEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	(&Trace{}).Gantt(&buf, 40)
	if !strings.Contains(buf.String(), "empty trace") {
		t.Error("empty trace not handled")
	}
}

func TestWriteEventLog(t *testing.T) {
	tr, _ := testTrace(t)
	var buf bytes.Buffer
	tr.WriteEventLog(&buf)
	if !strings.Contains(buf.String(), "makespan") {
		t.Error("event log missing header")
	}
}
