// Package trace turns execution results into human- and machine-readable
// artefacts: event logs, CSV exports, per-host utilisation statistics and
// ASCII Gantt charts. The paper's simulator "outputs an application
// execution trace" (§IV); this package is that output stage.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sched"
	"repro/internal/tgrid"
)

// Span is one traced activity: a task execution or a data redistribution.
type Span struct {
	// Name labels the activity ("t3/mul", "redist 2->5").
	Name string
	// Kind is "task" or "redist".
	Kind string
	// Hosts lists the processors involved.
	Hosts []int
	// Start and Finish bound the activity in seconds of virtual time.
	Start, Finish float64
}

// Duration returns the span length.
func (s Span) Duration() float64 { return s.Finish - s.Start }

// Trace is a complete execution trace.
type Trace struct {
	// Makespan is the application completion time.
	Makespan float64
	// Hosts is the number of processors of the platform.
	Hosts int
	// Spans holds all activities sorted by start time.
	Spans []Span
}

// FromResult assembles a trace from a schedule and its execution result.
func FromResult(s *sched.Schedule, r *tgrid.Result) *Trace {
	t := &Trace{Makespan: r.Makespan}
	for id := range s.Alloc {
		t.Spans = append(t.Spans, Span{
			Name:   s.Graph.Task(id).Name,
			Kind:   "task",
			Hosts:  append([]int(nil), s.Hosts[id]...),
			Start:  r.TaskStart[id],
			Finish: r.TaskFinish[id],
		})
		for _, h := range s.Hosts[id] {
			if h+1 > t.Hosts {
				t.Hosts = h + 1
			}
		}
	}
	for edge, start := range r.RedistStart {
		hosts := map[int]bool{}
		for _, h := range s.Hosts[edge[0]] {
			hosts[h] = true
		}
		for _, h := range s.Hosts[edge[1]] {
			hosts[h] = true
		}
		var hs []int
		for h := range hosts {
			hs = append(hs, h)
		}
		sort.Ints(hs)
		t.Spans = append(t.Spans, Span{
			Name:   fmt.Sprintf("redist %d->%d", edge[0], edge[1]),
			Kind:   "redist",
			Hosts:  hs,
			Start:  start,
			Finish: r.RedistFinish[edge],
		})
	}
	sort.Slice(t.Spans, func(a, b int) bool {
		if t.Spans[a].Start != t.Spans[b].Start {
			return t.Spans[a].Start < t.Spans[b].Start
		}
		return t.Spans[a].Name < t.Spans[b].Name
	})
	return t
}

// WriteCSV exports the trace as CSV: name, kind, start, finish, hosts.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "name,kind,start,finish,hosts"); err != nil {
		return err
	}
	for _, s := range t.Spans {
		hosts := make([]string, len(s.Hosts))
		for i, h := range s.Hosts {
			hosts[i] = fmt.Sprint(h)
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%.6f,%.6f,%s\n",
			s.Name, s.Kind, s.Start, s.Finish, strings.Join(hosts, " ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteEventLog prints the trace as a readable event log.
func (t *Trace) WriteEventLog(w io.Writer) {
	fmt.Fprintf(w, "trace: %d activities, %d hosts, makespan %.3f s\n",
		len(t.Spans), t.Hosts, t.Makespan)
	for _, s := range t.Spans {
		fmt.Fprintf(w, "  [%8.3f, %8.3f] %-6s %-14s hosts=%v\n",
			s.Start, s.Finish, s.Kind, s.Name, s.Hosts)
	}
}

// Utilization returns, per host, the fraction of the makespan the host
// spends executing tasks (redistributions excluded: the network, not the
// CPU, is busy).
func (t *Trace) Utilization() []float64 {
	busy := make([]float64, t.Hosts)
	for _, s := range t.Spans {
		if s.Kind != "task" {
			continue
		}
		for _, h := range s.Hosts {
			busy[h] += s.Duration()
		}
	}
	if t.Makespan > 0 {
		for i := range busy {
			busy[i] /= t.Makespan
		}
	}
	return busy
}

// MeanUtilization averages Utilization over all hosts.
func (t *Trace) MeanUtilization() float64 {
	u := t.Utilization()
	if len(u) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range u {
		sum += v
	}
	return sum / float64(len(u))
}

// Gantt renders an ASCII Gantt chart with the given width in characters.
// Each row is one host; tasks print as their task index character, and
// redistributions as '.'.
func (t *Trace) Gantt(w io.Writer, width int) {
	if width < 10 {
		width = 10
	}
	if t.Makespan <= 0 || t.Hosts == 0 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	rows := make([][]byte, t.Hosts)
	for h := range rows {
		rows[h] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(x / t.Makespan * float64(width))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	glyphs := "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	taskIdx := 0
	for _, s := range t.Spans {
		var glyph byte
		switch s.Kind {
		case "task":
			glyph = glyphs[taskIdx%len(glyphs)]
			taskIdx++
		default:
			glyph = '.'
		}
		lo, hi := col(s.Start), col(s.Finish)
		for _, h := range s.Hosts {
			for c := lo; c <= hi; c++ {
				if s.Kind == "redist" && rows[h][c] != ' ' {
					continue // tasks win over redistributions visually
				}
				rows[h][c] = glyph
			}
		}
	}
	fmt.Fprintf(w, "gantt (makespan %.3f s, %d hosts, '.' = redistribution)\n", t.Makespan, t.Hosts)
	for h, row := range rows {
		fmt.Fprintf(w, "  host %2d |%s|\n", h, string(row))
	}
}
