package redist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlocksPartitionColumns(t *testing.T) {
	d, err := NewDist(3000, 16)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	prevHi := 0
	for i := 0; i < d.P; i++ {
		lo, hi := d.Block(i)
		if lo != prevHi {
			t.Errorf("block %d starts at %d, want %d", i, lo, prevHi)
		}
		covered += hi - lo
		prevHi = hi
	}
	if covered != 3000 || prevHi != 3000 {
		t.Errorf("blocks cover %d columns ending at %d, want 3000", covered, prevHi)
	}
}

func TestLastBlockGetsRemainder(t *testing.T) {
	d, _ := NewDist(3000, 16) // 3000/16 = 187 rem 12
	if got := d.BlockSize(0); got != 187 {
		t.Errorf("first block = %d, want 187", got)
	}
	if got := d.BlockSize(15); got != 3000-15*187 {
		t.Errorf("last block = %d, want %d", got, 3000-15*187)
	}
	if d.MaxBlockSize() != 195 {
		t.Errorf("MaxBlockSize = %d, want 195", d.MaxBlockSize())
	}
}

func TestImbalanceVanishesWhenDivisible(t *testing.T) {
	d, _ := NewDist(2000, 8)
	if d.Imbalance() != 0 {
		t.Errorf("Imbalance = %g, want 0", d.Imbalance())
	}
	// The paper's p=16, n=3000 outlier: noticeable trailing imbalance.
	d2, _ := NewDist(3000, 16)
	if d2.Imbalance() < 0.03 {
		t.Errorf("Imbalance(3000,16) = %g, want > 0.03", d2.Imbalance())
	}
}

func TestOwnerConsistentWithBlocks(t *testing.T) {
	d, _ := NewDist(100, 7)
	for c := 0; c < d.N; c++ {
		i := d.Owner(c)
		lo, hi := d.Block(i)
		if c < lo || c >= hi {
			t.Fatalf("Owner(%d) = %d but block is [%d,%d)", c, i, lo, hi)
		}
	}
}

func TestNewDistErrors(t *testing.T) {
	cases := []struct{ n, p int }{{0, 1}, {10, 0}, {10, 11}, {-5, 2}}
	for _, c := range cases {
		if _, err := NewDist(c.n, c.p); err == nil {
			t.Errorf("NewDist(%d,%d) accepted", c.n, c.p)
		}
	}
}

func TestCommMatrixIdentityDistribution(t *testing.T) {
	d, _ := NewDist(2000, 4)
	m, err := CommMatrix(d, d)
	if err != nil {
		t.Fatal(err)
	}
	// Same distribution: everything stays on the diagonal.
	for i := range m {
		for j := range m[i] {
			if i == j {
				want := int64(d.BlockSize(i)) * 2000 * 8
				if m[i][j] != want {
					t.Errorf("m[%d][%d] = %d, want %d", i, j, m[i][j], want)
				}
			} else if m[i][j] != 0 {
				t.Errorf("m[%d][%d] = %d, want 0", i, j, m[i][j])
			}
		}
	}
}

func TestCommMatrixConservesMatrix(t *testing.T) {
	src, _ := NewDist(2000, 5)
	dst, _ := NewDist(2000, 13)
	m, err := CommMatrix(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := TotalBytes(m), int64(2000)*2000*8; got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
	// Row i sums to the source block size; column j to the dest block.
	for i := 0; i < src.P; i++ {
		var row int64
		for j := 0; j < dst.P; j++ {
			row += m[i][j]
		}
		if want := int64(src.BlockSize(i)) * 2000 * 8; row != want {
			t.Errorf("row %d sums to %d, want %d", i, row, want)
		}
	}
	for j := 0; j < dst.P; j++ {
		var col int64
		for i := 0; i < src.P; i++ {
			col += m[i][j]
		}
		if want := int64(dst.BlockSize(j)) * 2000 * 8; col != want {
			t.Errorf("col %d sums to %d, want %d", j, col, want)
		}
	}
}

func TestCommMatrixSizeMismatch(t *testing.T) {
	a, _ := NewDist(100, 2)
	b, _ := NewDist(200, 2)
	if _, err := CommMatrix(a, b); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

// Property: for arbitrary (n, pSrc, pDst) the communication matrix conserves
// the whole matrix and rows/columns match block sizes.
func TestCommMatrixConservationQuick(t *testing.T) {
	prop := func(nRaw, psRaw, pdRaw uint16) bool {
		n := 16 + int(nRaw)%512
		ps := 1 + int(psRaw)%32
		pd := 1 + int(pdRaw)%32
		if ps > n || pd > n {
			return true
		}
		src, err1 := NewDist(n, ps)
		dst, err2 := NewDist(n, pd)
		if err1 != nil || err2 != nil {
			return false
		}
		m, err := CommMatrix(src, dst)
		if err != nil {
			return false
		}
		if TotalBytes(m) != int64(n)*int64(n)*8 {
			return false
		}
		for j := 0; j < pd; j++ {
			var col int64
			for i := 0; i < ps; i++ {
				col += m[i][j]
			}
			if col != int64(dst.BlockSize(j))*int64(n)*8 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOffNodeBytes(t *testing.T) {
	src, _ := NewDist(100, 2)
	dst, _ := NewDist(100, 2)
	m, _ := CommMatrix(src, dst)
	// Same hosts: all transfers local.
	if got := OffNodeBytes(m, []int{0, 1}, []int{0, 1}); got != 0 {
		t.Errorf("OffNodeBytes same placement = %d, want 0", got)
	}
	// Swapped hosts: everything crosses the network.
	if got := OffNodeBytes(m, []int{0, 1}, []int{1, 0}); got != TotalBytes(m) {
		t.Errorf("OffNodeBytes swapped = %d, want %d", got, TotalBytes(m))
	}
}

func TestProbeMatrix(t *testing.T) {
	m := ProbeMatrix(3, 5)
	if len(m) != 3 || len(m[0]) != 5 {
		t.Fatalf("probe matrix shape %dx%d, want 3x5", len(m), len(m[0]))
	}
	if TotalBytes(m) != 15 {
		t.Errorf("probe total = %d, want 15 (one byte per pair)", TotalBytes(m))
	}
}

func TestFloat64Matrix(t *testing.T) {
	m := [][]int64{{1, 2}, {3, 4}}
	f := Float64Matrix(m)
	if f[0][0] != 1 || f[1][1] != 4 {
		t.Errorf("conversion wrong: %v", f)
	}
}
