// Package redist computes data-redistribution plans between 1-D block
// column distributions, the distribution scheme of all parallel tasks in the
// case study. Given the source distribution (matrix held by the p(src)
// processors of the producing task) and the destination distribution, the
// overlap of column intervals determines exactly how many bytes each source
// processor must send to each destination processor — the communication
// matrix handed to the Ptask_L07 redistribution action (paper §IV-2).
//
// TGrid performs this redistribution transparently; its subnet-manager
// registration overhead is modelled separately (internal/cluster,
// internal/perfmodel).
package redist

import "fmt"

// Dist is a 1-D block distribution of the n columns of an n×n matrix over p
// processors: processor i owns columns [i·b, (i+1)·b) with b = n/p (integer
// division), and the last processor additionally owns the n mod p remainder
// columns — the paper's "vanilla" implementation whose trailing imbalance
// causes the p=16, n=3000 outlier of Figure 6.
type Dist struct {
	// N is the matrix dimension (number of columns).
	N int
	// P is the number of processors.
	P int
}

// NewDist validates and returns a distribution.
func NewDist(n, p int) (Dist, error) {
	if n <= 0 {
		return Dist{}, fmt.Errorf("redist: matrix size must be positive, got %d", n)
	}
	if p <= 0 || p > n {
		return Dist{}, fmt.Errorf("redist: processor count must be in [1,%d], got %d", n, p)
	}
	return Dist{N: n, P: p}, nil
}

// Block returns the half-open column interval [lo, hi) owned by processor i.
func (d Dist) Block(i int) (lo, hi int) {
	if i < 0 || i >= d.P {
		panic(fmt.Sprintf("redist: rank %d out of range [0,%d)", i, d.P))
	}
	b := d.N / d.P
	lo = i * b
	hi = lo + b
	if i == d.P-1 {
		hi = d.N
	}
	return lo, hi
}

// BlockSize returns the number of columns owned by processor i.
func (d Dist) BlockSize(i int) int {
	lo, hi := d.Block(i)
	return hi - lo
}

// Owner returns the processor owning column c.
func (d Dist) Owner(c int) int {
	if c < 0 || c >= d.N {
		panic(fmt.Sprintf("redist: column %d out of range [0,%d)", c, d.N))
	}
	b := d.N / d.P
	i := c / b
	if i >= d.P {
		i = d.P - 1
	}
	return i
}

// MaxBlockSize returns the largest block, which determines the load of the
// slowest processor in a 1-D kernel.
func (d Dist) MaxBlockSize() int {
	b := d.N / d.P
	last := d.N - (d.P-1)*b
	if last > b {
		return last
	}
	return b
}

// Imbalance returns MaxBlockSize / (N/P) − 1, the fractional extra load of
// the most loaded processor relative to a perfect split.
func (d Dist) Imbalance() float64 {
	ideal := float64(d.N) / float64(d.P)
	return float64(d.MaxBlockSize())/ideal - 1
}

// overlap returns the length of the intersection of [a0,a1) and [b0,b1).
func overlap(a0, a1, b0, b1 int) int {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// CommMatrix returns the redistribution byte matrix from src to dst:
// element [i][j] is the number of bytes processor i of the source
// distribution sends to processor j of the destination distribution, i.e.
// 8·N·(columns of overlap) for float64 elements. Both distributions must
// describe the same matrix size.
func CommMatrix(src, dst Dist) ([][]int64, error) {
	if src.N != dst.N {
		return nil, fmt.Errorf("redist: distribution sizes differ: %d vs %d", src.N, dst.N)
	}
	out := make([][]int64, src.P)
	for i := range out {
		out[i] = make([]int64, dst.P)
		slo, shi := src.Block(i)
		for j := 0; j < dst.P; j++ {
			dlo, dhi := dst.Block(j)
			cols := overlap(slo, shi, dlo, dhi)
			out[i][j] = int64(cols) * int64(src.N) * 8
		}
	}
	return out, nil
}

// TotalBytes sums a communication matrix.
func TotalBytes(m [][]int64) int64 {
	var total int64
	for _, row := range m {
		for _, b := range row {
			total += b
		}
	}
	return total
}

// OffNodeBytes sums the bytes that actually cross the network when source
// processor i runs on host srcHosts[i] and destination processor j on host
// dstHosts[j]: same-host transfers are local copies.
func OffNodeBytes(m [][]int64, srcHosts, dstHosts []int) int64 {
	var total int64
	for i, row := range m {
		for j, b := range row {
			if srcHosts[i] != dstHosts[j] {
				total += b
			}
		}
	}
	return total
}

// Float64Matrix converts a byte matrix to float64 for the simulation kernel.
func Float64Matrix(m [][]int64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = make([]float64, len(row))
		for j, b := range row {
			out[i][j] = float64(b)
		}
	}
	return out
}

// ProbeMatrix returns the communication matrix of the paper's overhead probe
// (§VI-C): a "mostly empty matrix" redistribution in which every source
// processor sends at least one byte to every destination processor, so the
// maximum number of protocol messages flows while the data volume stays
// negligible.
func ProbeMatrix(pSrc, pDst int) [][]int64 {
	out := make([][]int64, pSrc)
	for i := range out {
		out[i] = make([]int64, pDst)
		for j := range out[i] {
			out[i][j] = 1
		}
	}
	return out
}
