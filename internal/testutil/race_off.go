//go:build !race

// Package testutil holds tiny cross-package test helpers. RaceEnabled lets
// allocation-count guards skip themselves under the race detector, whose
// instrumentation allocates.
package testutil

// RaceEnabled reports whether the race detector is active in this build.
const RaceEnabled = false
