package perfmodel

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
)

func TestOverlayComposesSources(t *testing.T) {
	analytic := NewAnalytic(platform.Bayreuth())
	emp := PaperEmpirical()
	o, err := NewOverlay(analytic, emp, emp, "")
	if err != nil {
		t.Fatal(err)
	}
	task := mulTask(2000)
	if got, want := o.TaskTime(task, 4), analytic.TaskTime(task, 4); got != want {
		t.Errorf("task time from wrong source: %g vs %g", got, want)
	}
	if got, want := o.StartupOverhead(8), emp.StartupOverhead(8); got != want {
		t.Errorf("startup from wrong source: %g vs %g", got, want)
	}
	if got, want := o.RedistOverhead(2, 16), emp.RedistOverhead(2, 16); got != want {
		t.Errorf("redist from wrong source: %g vs %g", got, want)
	}
	// Ptask description follows the task source (analytic → non-nil).
	if comp, _ := o.TaskPtask(task, 4); comp == nil {
		t.Error("overlay lost the analytic ptask description")
	}
}

func TestOverlayName(t *testing.T) {
	analytic := NewAnalytic(platform.Bayreuth())
	emp := PaperEmpirical()
	o, _ := NewOverlay(analytic, emp, analytic, "")
	if got := o.Name(); got != "analytic+startup(empirical)" {
		t.Errorf("Name = %q", got)
	}
	labeled, _ := NewOverlay(analytic, emp, emp, "custom")
	if labeled.Name() != "custom" {
		t.Errorf("labeled Name = %q", labeled.Name())
	}
	full, _ := NewOverlay(analytic, analytic, analytic, "")
	if full.Name() != "analytic" {
		t.Errorf("self-overlay Name = %q", full.Name())
	}
}

func TestOverlayRejectsNilSources(t *testing.T) {
	analytic := NewAnalytic(platform.Bayreuth())
	if _, err := NewOverlay(nil, analytic, analytic, ""); err == nil {
		t.Error("nil task source accepted")
	}
	if _, err := NewOverlay(analytic, nil, analytic, ""); err == nil {
		t.Error("nil startup source accepted")
	}
}

func TestOverlayUsableAsCostFunc(t *testing.T) {
	analytic := NewAnalytic(platform.Bayreuth())
	emp := PaperEmpirical()
	o, _ := NewOverlay(analytic, emp, emp, "")
	cost := CostFunc(o)
	task := &dag.Task{Kernel: dag.KernelAdd, N: 2000}
	want := emp.StartupOverhead(4) + analytic.TaskTime(task, 4)
	if got := cost(task, 4); got != want {
		t.Errorf("cost = %g, want %g", got, want)
	}
}
