package perfmodel

import (
	"fmt"
	"sort"

	"repro/internal/dag"
)

// TaskKey identifies a profiled task configuration.
type TaskKey struct {
	Kernel dag.Kernel
	N      int
	P      int
}

// ProfileData holds the measurements the brute-force profiling campaign
// produced (§VI): mean task execution times for every allocation size and
// matrix size, mean task-startup overheads per allocation size, and mean
// redistribution overheads per destination processor count (the paper
// averages over the source count, which the measurements show matters
// little — Figure 4).
type ProfileData struct {
	// TaskTimes maps (kernel, n, p) to the mean measured execution time in
	// seconds (startup excluded).
	TaskTimes map[TaskKey]float64
	// Startup maps p to the mean measured task-startup overhead in seconds.
	Startup map[int]float64
	// RedistByDst maps p(dst) to the mean measured redistribution overhead
	// in seconds.
	RedistByDst map[int]float64
}

// NewProfileData returns an empty, ready-to-fill profile.
func NewProfileData() *ProfileData {
	return &ProfileData{
		TaskTimes:   make(map[TaskKey]float64),
		Startup:     make(map[int]float64),
		RedistByDst: make(map[int]float64),
	}
}

// Validate checks that the profile has at least one entry of each kind.
func (d *ProfileData) Validate() error {
	if len(d.TaskTimes) == 0 {
		return fmt.Errorf("perfmodel: profile has no task times")
	}
	if len(d.Startup) == 0 {
		return fmt.Errorf("perfmodel: profile has no startup overheads")
	}
	if len(d.RedistByDst) == 0 {
		return fmt.Errorf("perfmodel: profile has no redistribution overheads")
	}
	return nil
}

// Profile is the paper's second simulation model (§VI): every quantity comes
// from a lookup into measured profiles. Missing processor counts fall back
// to the nearest profiled count (the brute-force campaign profiles all
// p = 1..32, so fallback only triggers for out-of-range queries).
type Profile struct {
	Data *ProfileData
}

// NewProfile validates the data and returns the model.
func NewProfile(d *ProfileData) (*Profile, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &Profile{Data: d}, nil
}

// Name implements Model.
func (m *Profile) Name() string { return "profile" }

// TaskTime implements Model via table lookup.
func (m *Profile) TaskTime(task *dag.Task, p int) float64 {
	if task.Kernel == dag.KernelNoop {
		return 0
	}
	if t, ok := m.Data.TaskTimes[TaskKey{task.Kernel, task.N, p}]; ok {
		return t
	}
	// Nearest profiled p for this kernel and size.
	bestP, found := 0, false
	for k := range m.Data.TaskTimes {
		if k.Kernel != task.Kernel || k.N != task.N {
			continue
		}
		if !found || abs(k.P-p) < abs(bestP-p) || (abs(k.P-p) == abs(bestP-p) && k.P < bestP) {
			bestP, found = k.P, true
		}
	}
	if !found {
		panic(fmt.Sprintf("perfmodel: no profile for %s n=%d at any p", task.Kernel, task.N))
	}
	return m.Data.TaskTimes[TaskKey{task.Kernel, task.N, bestP}]
}

// StartupOverhead implements Model via table lookup with nearest-p fallback.
func (m *Profile) StartupOverhead(p int) float64 {
	if v, ok := m.Data.Startup[p]; ok {
		return v
	}
	return nearest(m.Data.Startup, p)
}

// RedistOverhead implements Model; only p(dst) matters, per Figure 4.
func (m *Profile) RedistOverhead(pSrc, pDst int) float64 {
	if v, ok := m.Data.RedistByDst[pDst]; ok {
		return v
	}
	return nearest(m.Data.RedistByDst, pDst)
}

// TaskPtask implements Model: profiled tasks are simulated as fixed
// durations, so no parallel-task description is produced.
func (m *Profile) TaskPtask(task *dag.Task, p int) ([]float64, [][]float64) {
	return nil, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// nearest returns the value at the key closest to p (smallest key wins
// ties); it panics on an empty map.
func nearest(m map[int]float64, p int) float64 {
	if len(m) == 0 {
		panic("perfmodel: lookup in empty profile table")
	}
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	best := keys[0]
	for _, k := range keys[1:] {
		if abs(k-p) < abs(best-p) {
			best = k
		}
	}
	return m[best]
}
