package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/dag"
)

// Perturbation is one deterministic draw of model-parameter noise: the
// robustness engine (internal/robust) perturbs a fitted model's predictions
// — task execution times, task-startup overheads and redistribution
// overheads — to ask how wrong the model can be before the scheduling
// conclusions built on it flip (the §V question, quantified). Each component
// pairs a multiplicative factor with an additive offset in seconds; the
// identity draw (all factors 1, all offsets 0) leaves the base model's
// predictions bit-for-bit untouched.
type Perturbation struct {
	// TaskFactor and TaskOffset perturb TaskTime predictions.
	TaskFactor, TaskOffset float64
	// StartupFactor and StartupOffset perturb StartupOverhead predictions.
	StartupFactor, StartupOffset float64
	// RedistFactor and RedistOffset perturb RedistOverhead predictions.
	RedistFactor, RedistOffset float64
	// TaskShape, StartupShape and RedistShape are the sigmas of structured
	// per-configuration error surfaces: every distinct prediction point —
	// (kernel, n, p) for task times, p for startups, (pSrc, pDst) for
	// redistributions — gets its own fixed lognormal factor exp(z·sigma),
	// deterministic in Salt. A factor perturbs every prediction the same
	// way (a systematic bias); a shape perturbs each configuration
	// independently, which is how fitted models are actually wrong
	// (Figure 2's per-(n, p) error fluctuation). 0 disables a surface.
	TaskShape, StartupShape, RedistShape float64
	// Salt seeds the error surfaces; draws with different salts are
	// decorrelated surfaces of the same magnitude.
	Salt uint64
}

// IdentityPerturbation returns the no-op draw.
func IdentityPerturbation() Perturbation {
	return Perturbation{TaskFactor: 1, StartupFactor: 1, RedistFactor: 1}
}

// IsIdentity reports whether the draw leaves every prediction unchanged
// (the salt of disabled surfaces is irrelevant).
func (p Perturbation) IsIdentity() bool {
	p.Salt = 0
	return p == IdentityPerturbation()
}

// Perturbed wraps a fitted Model with a fixed Perturbation. Predictions are
// clamped at zero (a perturbed overhead can shrink to nothing but never
// become a time machine), so any perturbed model is still a valid Model for
// both the scheduling algorithms and the simulator.
type Perturbed struct {
	// Base is the fitted model being perturbed.
	Base Model
	// P is the fixed draw applied to every prediction.
	P Perturbation
}

// NewPerturbed validates the draw and wraps the base model. Factors must be
// non-negative (a negative factor would not model "the fit is off by x%",
// it would invert the prediction's meaning), and so must the shape sigmas.
func NewPerturbed(base Model, p Perturbation) (*Perturbed, error) {
	if base == nil {
		return nil, fmt.Errorf("perfmodel: perturbed base model is nil")
	}
	if p.TaskFactor < 0 || p.StartupFactor < 0 || p.RedistFactor < 0 {
		return nil, fmt.Errorf("perfmodel: perturbation factors must be non-negative, got %+v", p)
	}
	if p.TaskShape < 0 || p.StartupShape < 0 || p.RedistShape < 0 {
		return nil, fmt.Errorf("perfmodel: perturbation shape sigmas must be non-negative, got %+v", p)
	}
	return &Perturbed{Base: base, P: p}, nil
}

// Name implements Model.
func (m *Perturbed) Name() string { return m.Base.Name() + "~perturbed" }

// taskFactor is the full multiplicative factor of one task configuration:
// the global factor times the configuration's error-surface point.
func (m *Perturbed) taskFactor(task *dag.Task, p int) float64 {
	f := m.P.TaskFactor
	if m.P.TaskShape > 0 {
		f *= math.Exp(m.P.TaskShape * surfaceNormal(m.P.Salt, 1, uint64(task.Kernel), uint64(task.N), uint64(p)))
	}
	return f
}

// TaskTime implements Model.
func (m *Perturbed) TaskTime(task *dag.Task, p int) float64 {
	return clampNonNeg(m.Base.TaskTime(task, p)*m.taskFactor(task, p) + m.P.TaskOffset)
}

// StartupOverhead implements Model.
func (m *Perturbed) StartupOverhead(p int) float64 {
	f := m.P.StartupFactor
	if m.P.StartupShape > 0 {
		f *= math.Exp(m.P.StartupShape * surfaceNormal(m.P.Salt, 2, uint64(p)))
	}
	return clampNonNeg(m.Base.StartupOverhead(p)*f + m.P.StartupOffset)
}

// RedistOverhead implements Model.
func (m *Perturbed) RedistOverhead(pSrc, pDst int) float64 {
	f := m.P.RedistFactor
	if m.P.RedistShape > 0 {
		f *= math.Exp(m.P.RedistShape * surfaceNormal(m.P.Salt, 3, uint64(pSrc), uint64(pDst)))
	}
	return clampNonNeg(m.Base.RedistOverhead(pSrc, pDst)*f + m.P.RedistOffset)
}

// TaskPtask implements Model. A multiplicative-only task perturbation keeps
// the base model's parallel-task description, with the per-rank flop counts
// scaled by the configuration's factor — L07 contention semantics survive,
// and the task's compute time scales exactly like TaskTime. An additive
// offset has no per-rank flop representation, so the task falls back to a
// fixed TaskTime duration (the same degradation the measured models use,
// §VI-D).
func (m *Perturbed) TaskPtask(task *dag.Task, p int) ([]float64, [][]float64) {
	comp, bytes := m.Base.TaskPtask(task, p)
	if comp == nil && bytes == nil {
		return nil, nil
	}
	if m.P.TaskOffset != 0 {
		return nil, nil
	}
	f := m.taskFactor(task, p)
	if f == 1 {
		return comp, bytes
	}
	scaled := make([]float64, len(comp))
	for i, c := range comp {
		scaled[i] = c * f
	}
	return scaled, bytes
}

// TaskPtaskScale reports the factor relating this draw's parallel-task
// description to the base model's (see TaskPtask): multiplicative-only task
// noise scales the base per-rank flop counts by the configuration's factor,
// while an additive offset has no per-rank representation, so no factor
// exists and callers must fall back to the fixed TaskTime path. This is the
// tgrid.TimingScaler hook that lets schedule replay re-arm recorded tasks
// without materialising perturbed descriptions.
func (m *Perturbed) TaskPtaskScale(task *dag.Task, p int) (float64, bool) {
	if m.P.TaskOffset != 0 {
		return 0, false
	}
	return m.taskFactor(task, p), true
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// surfaceNormal returns a deterministic standard-normal variate keyed by
// (salt, keys): SplitMix64 finalizers turn the coordinates into two
// uniforms, Box-Muller turns those into a normal. Allocation-free, so the
// scheduling algorithms can evaluate perturbed predictions in their inner
// allocation loops at full speed.
func surfaceNormal(salt uint64, keys ...uint64) float64 {
	x := salt
	for _, k := range keys {
		x = mix64(x + k)
	}
	u1 := (float64(mix64(x)>>11) + 1) / float64(1<<53) // (0, 1]
	u2 := float64(mix64(x+1)>>11) / float64(1<<53)     // [0, 1)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// mix64 is the SplitMix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
