package perfmodel

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/regression"
)

// Empirical is the paper's third simulation model (§VII, Table II):
// regression models built from sparse measurements.
//
//   - multiplication: a two-regime fit — Amdahl-like (a·1/p + b, or the
//     paper's a·1/(2p) + b variant for n = 2000) for p ≤ 16, linear
//     (c·p + d) beyond, because overheads start dominating at p ≥ 16;
//   - addition: a single a·1/p + b fit;
//   - task startup and redistribution overheads: linear fits a·p + b.
type Empirical struct {
	// MulFits maps matrix size n to the piecewise multiplication fit.
	MulFits map[int]regression.Piecewise
	// AddFits maps matrix size n to the addition fit.
	AddFits map[int]regression.Fit
	// StartupFit predicts task-startup overhead (seconds) from p.
	StartupFit regression.Fit
	// RedistFit predicts redistribution overhead (seconds) from p(dst).
	RedistFit regression.Fit
}

// Name implements Model.
func (m *Empirical) Name() string { return "empirical" }

// TaskTime implements Model by evaluating the fitted curves. Negative
// predictions (possible near the regime boundary with the paper's n = 3000
// coefficients) are clamped to zero.
func (m *Empirical) TaskTime(task *dag.Task, p int) float64 {
	var t float64
	switch task.Kernel {
	case dag.KernelMul:
		fit, ok := m.MulFits[task.N]
		if !ok {
			panic(fmt.Sprintf("perfmodel: no multiplication fit for n=%d", task.N))
		}
		t = fit.Predict(float64(p))
	case dag.KernelAdd:
		fit, ok := m.AddFits[task.N]
		if !ok {
			panic(fmt.Sprintf("perfmodel: no addition fit for n=%d", task.N))
		}
		t = fit.Predict(float64(p))
	default:
		return 0
	}
	if t < 0 {
		t = 0
	}
	return t
}

// StartupOverhead implements Model.
func (m *Empirical) StartupOverhead(p int) float64 {
	t := m.StartupFit.Predict(float64(p))
	if t < 0 {
		t = 0
	}
	return t
}

// RedistOverhead implements Model; only p(dst) enters the fit, per §VI-C.
func (m *Empirical) RedistOverhead(pSrc, pDst int) float64 {
	t := m.RedistFit.Predict(float64(pDst))
	if t < 0 {
		t = 0
	}
	return t
}

// TaskPtask implements Model: empirical tasks are simulated as fixed
// durations.
func (m *Empirical) TaskPtask(task *dag.Task, p int) ([]float64, [][]float64) {
	return nil, nil
}

// PaperEmpirical returns the empirical model instantiated with the exact
// coefficients of Table II, for tests and for reproducing the paper's rows
// verbatim (times in seconds; the redistribution fit, published in
// milliseconds, is converted).
func PaperEmpirical() *Empirical {
	return &Empirical{
		MulFits: map[int]regression.Piecewise{
			2000: {
				Low:   fitWith(regression.HalfInverse, 239.44, 3.43),
				High:  fitWith(regression.Linear, 0.08, 1.93),
				Split: 16,
			},
			3000: {
				Low:   fitWith(regression.Inverse, 537.91, -25.55),
				High:  fitWith(regression.Linear, -0.09, 11.47),
				Split: 16,
			},
		},
		AddFits: map[int]regression.Fit{
			2000: fitWith(regression.Inverse, 22.99, 0.03),
			3000: fitWith(regression.Inverse, 73.59, 0.38),
		},
		StartupFit: fitWith(regression.Linear, 0.03, 0.65),
		RedistFit:  fitWith(regression.Linear, 7.88e-3, 108.58e-3),
	}
}

// fitWith builds a Fit with known coefficients (no data behind it).
func fitWith(basis regression.Basis, a, b float64) regression.Fit {
	// Construct via FitBasis on two exact points so the internal basis is
	// set; exact recovery is guaranteed for two distinct points.
	xs := []float64{1, 2}
	ys := []float64{a*basis(1) + b, a*basis(2) + b}
	return regression.MustFit(xs, ys, basis)
}
