package perfmodel

import (
	"repro/internal/dag"
	"repro/internal/platform"
)

// Analytic is the paper's first simulation model (§IV): task execution times
// from asymptotic flop counts at the platform's effective speed, data
// movement from latency/bandwidth, and no environment overheads at all.
//
// For the 1-D parallel matrix multiplication each of the p processors
// executes 2n³/p flops and sends its n²/p-element block around the ring once
// per step (p steps, so 8n² bytes leave each processor in total). The
// boosted matrix addition executes (n/4)·n²/p flops per processor with no
// communication.
type Analytic struct {
	Cluster platform.Cluster
}

// NewAnalytic returns the analytic model for a platform.
func NewAnalytic(c platform.Cluster) *Analytic { return &Analytic{Cluster: c} }

// Name implements Model.
func (a *Analytic) Name() string { return "analytic" }

// TaskTime implements Model: the L07 lone-activity duration of the task's
// parallel-task description — max of the computation time and the per-link
// communication time, plus route latency when communication occurs. The
// evaluation is the closed form of the TaskPtask description (uniform
// per-rank computation; for mul, a ring whose every uplink carries 8n²
// bytes) so the scheduling algorithms' memoised inner loops never touch the
// per-rank slices; the arithmetic matches the reduction of the
// materialised description bit for bit.
func (a *Analytic) TaskTime(task *dag.Task, p int) float64 {
	n := float64(task.N)
	switch task.Kernel {
	case dag.KernelMul:
		t := 2 * n * n * n / float64(p) / a.Cluster.NodePower
		if p > 1 {
			commT := 8 * n * n / a.Cluster.LinkBandwidth
			if commT > t {
				t = commT
			}
			t += 2 * a.Cluster.LinkLatency
		}
		return t
	case dag.KernelAdd:
		return (n / 4) * n * n / float64(p) / a.Cluster.NodePower
	default: // noop
		return 0
	}
}

// StartupOverhead implements Model; the analytic model ignores task startup.
func (a *Analytic) StartupOverhead(p int) float64 { return 0 }

// RedistOverhead implements Model; the analytic model ignores the
// subnet-manager registration overhead.
func (a *Analytic) RedistOverhead(pSrc, pDst int) float64 { return 0 }

// TaskPtask implements Model, producing the Ptask_L07 inputs of §IV-1.
func (a *Analytic) TaskPtask(task *dag.Task, p int) (comp []float64, bytes [][]float64) {
	n := float64(task.N)
	switch task.Kernel {
	case dag.KernelMul:
		comp = uniform(2*n*n*n/float64(p), p)
		if p > 1 {
			// Ring exchange: 8·n² bytes from rank i to rank (i+1) mod p
			// over the whole task (p steps of n²/p elements).
			bytes = make([][]float64, p)
			for i := range bytes {
				bytes[i] = make([]float64, p)
				bytes[i][(i+1)%p] = 8 * n * n
			}
		}
		return comp, bytes
	case dag.KernelAdd:
		return uniform((n/4)*n*n/float64(p), p), nil
	default: // noop
		return nil, nil
	}
}

func uniform(v float64, p int) []float64 {
	out := make([]float64, p)
	for i := range out {
		out[i] = v
	}
	return out
}
