package perfmodel

import (
	"fmt"
	"strings"

	"repro/internal/dag"
)

// Overlay composes a simulation model from separate sources, enabling the
// ablation study behind §V-C's error attribution: starting from the purely
// analytic model, each of the three identified culprits — task execution
// times, task startup overhead, redistribution overhead — can be replaced
// by its measured counterpart independently, to quantify how much of the
// analytic simulator's error each omission is responsible for.
type Overlay struct {
	// TaskSource supplies TaskTime/TaskPtask.
	TaskSource Model
	// StartupSource supplies StartupOverhead.
	StartupSource Model
	// RedistSource supplies RedistOverhead.
	RedistSource Model
	// Label overrides the generated name when non-empty.
	Label string
}

// Name implements Model; the generated name lists the sources, e.g.
// "analytic+startup(profile)".
func (o *Overlay) Name() string {
	if o.Label != "" {
		return o.Label
	}
	parts := []string{o.TaskSource.Name()}
	if o.StartupSource != o.TaskSource {
		parts = append(parts, "startup("+o.StartupSource.Name()+")")
	}
	if o.RedistSource != o.TaskSource {
		parts = append(parts, "redist("+o.RedistSource.Name()+")")
	}
	return strings.Join(parts, "+")
}

// TaskTime implements Model.
func (o *Overlay) TaskTime(task *dag.Task, p int) float64 {
	return o.TaskSource.TaskTime(task, p)
}

// StartupOverhead implements Model.
func (o *Overlay) StartupOverhead(p int) float64 {
	return o.StartupSource.StartupOverhead(p)
}

// RedistOverhead implements Model.
func (o *Overlay) RedistOverhead(pSrc, pDst int) float64 {
	return o.RedistSource.RedistOverhead(pSrc, pDst)
}

// TaskPtask implements Model.
func (o *Overlay) TaskPtask(task *dag.Task, p int) ([]float64, [][]float64) {
	return o.TaskSource.TaskPtask(task, p)
}

// NewOverlay validates the sources and builds the composite.
func NewOverlay(task, startup, redist Model, label string) (*Overlay, error) {
	if task == nil || startup == nil || redist == nil {
		return nil, fmt.Errorf("perfmodel: overlay sources must all be non-nil")
	}
	return &Overlay{TaskSource: task, StartupSource: startup, RedistSource: redist, Label: label}, nil
}
