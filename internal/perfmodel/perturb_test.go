package perfmodel

import (
	"math"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
)

func perturbTask() *dag.Task { return &dag.Task{Kernel: dag.KernelMul, N: 2000} }

// TestPerturbedIdentity pins the reduction guarantee the robustness engine
// leans on: the identity draw leaves every prediction — including the L07
// parallel-task description — bit-for-bit identical to the base model.
func TestPerturbedIdentity(t *testing.T) {
	base := NewAnalytic(platform.Bayreuth())
	m, err := NewPerturbed(base, IdentityPerturbation())
	if err != nil {
		t.Fatal(err)
	}
	if !IdentityPerturbation().IsIdentity() {
		t.Error("IdentityPerturbation is not IsIdentity")
	}
	task := perturbTask()
	for p := 1; p <= 32; p *= 2 {
		if got, want := m.TaskTime(task, p), base.TaskTime(task, p); got != want {
			t.Errorf("TaskTime(p=%d) = %g, want %g", p, got, want)
		}
		if got, want := m.StartupOverhead(p), base.StartupOverhead(p); got != want {
			t.Errorf("StartupOverhead(p=%d) = %g, want %g", p, got, want)
		}
		if got, want := m.RedistOverhead(p, 2*p), base.RedistOverhead(p, 2*p); got != want {
			t.Errorf("RedistOverhead(%d, %d) = %g, want %g", p, 2*p, got, want)
		}
		comp, bytes := m.TaskPtask(task, p)
		baseComp, baseBytes := base.TaskPtask(task, p)
		if len(comp) != len(baseComp) || len(bytes) != len(baseBytes) {
			t.Fatalf("TaskPtask(p=%d) shape changed under identity perturbation", p)
		}
		for i := range comp {
			if comp[i] != baseComp[i] {
				t.Errorf("TaskPtask(p=%d) comp[%d] = %g, want %g", p, i, comp[i], baseComp[i])
			}
		}
	}
}

// TestPerturbedScalesPredictions checks the multiplicative and additive
// arithmetic on every prediction.
func TestPerturbedScalesPredictions(t *testing.T) {
	base := NewAnalytic(platform.Bayreuth())
	m, err := NewPerturbed(base, Perturbation{
		TaskFactor: 1.5, TaskOffset: 0.25,
		StartupFactor: 2, StartupOffset: -0.1,
		RedistFactor: 0.5, RedistOffset: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	task := perturbTask()
	if got, want := m.TaskTime(task, 4), base.TaskTime(task, 4)*1.5+0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("TaskTime = %g, want %g", got, want)
	}
	// The analytic model predicts zero startup; doubling zero and
	// subtracting 0.1 clamps at zero rather than predicting time travel.
	if got := m.StartupOverhead(4); got != 0 {
		t.Errorf("StartupOverhead = %g, want clamp at 0", got)
	}
	if got, want := m.RedistOverhead(2, 4), base.RedistOverhead(2, 4)*0.5+0.01; math.Abs(got-want) > 1e-12 {
		t.Errorf("RedistOverhead = %g, want %g", got, want)
	}
	if m.Name() != base.Name()+"~perturbed" {
		t.Errorf("Name = %q", m.Name())
	}
}

// TestPerturbedPtaskSemantics checks the three TaskPtask regimes: a pure
// factor scales the per-rank flops (preserving L07 contention), an additive
// offset falls back to fixed-duration simulation, and a fixed-duration base
// model stays fixed-duration.
func TestPerturbedPtaskSemantics(t *testing.T) {
	base := NewAnalytic(platform.Bayreuth())
	task := perturbTask()

	scaled, err := NewPerturbed(base, Perturbation{TaskFactor: 2, StartupFactor: 1, RedistFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := scaled.TaskPtask(task, 4)
	baseComp, _ := base.TaskPtask(task, 4)
	if comp == nil {
		t.Fatal("factor-only perturbation dropped the parallel-task description")
	}
	for i := range comp {
		if got, want := comp[i], baseComp[i]*2; math.Abs(got-want) > 1e-9 {
			t.Errorf("comp[%d] = %g, want %g", i, got, want)
		}
	}

	offset, err := NewPerturbed(base, Perturbation{TaskFactor: 1, TaskOffset: 0.5, StartupFactor: 1, RedistFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if comp, bytes := offset.TaskPtask(task, 4); comp != nil || bytes != nil {
		t.Error("additive task offset should fall back to fixed-duration simulation")
	}
	if got, want := offset.TaskTime(task, 4), base.TaskTime(task, 4)+0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("offset TaskTime = %g, want %g", got, want)
	}
}

// TestPerturbedShapeSurface checks the per-configuration error surface:
// deterministic in (salt, configuration), decorrelated across salts and
// configurations, and consistent between TaskTime and the scaled
// parallel-task description.
func TestPerturbedShapeSurface(t *testing.T) {
	base := NewAnalytic(platform.Bayreuth())
	draw := IdentityPerturbation()
	draw.TaskShape, draw.Salt = 0.5, 7
	m, err := NewPerturbed(base, draw)
	if err != nil {
		t.Fatal(err)
	}
	task := perturbTask()

	// Deterministic: the same configuration always sees the same factor.
	if a, b := m.TaskTime(task, 4), m.TaskTime(task, 4); a != b {
		t.Errorf("shape surface not deterministic: %g vs %g", a, b)
	}
	// Structured: different configurations see different factors.
	r4 := m.TaskTime(task, 4) / base.TaskTime(task, 4)
	r8 := m.TaskTime(task, 8) / base.TaskTime(task, 8)
	if r4 == r8 {
		t.Errorf("shape surface is flat across p: factor %g at both p=4 and p=8", r4)
	}
	// Fresh surface per salt.
	draw2 := draw
	draw2.Salt = 8
	m2, err := NewPerturbed(base, draw2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.TaskTime(task, 4)/base.TaskTime(task, 4) == r4 {
		t.Error("different salts produced the same surface point")
	}
	// The L07 description scales by the same factor as TaskTime.
	comp, _ := m.TaskPtask(task, 4)
	baseComp, _ := base.TaskPtask(task, 4)
	if got, want := comp[0]/baseComp[0], r4; math.Abs(got-want) > 1e-12 {
		t.Errorf("ptask flops scaled by %g, TaskTime by %g", got, want)
	}
	// Startup stays untouched when only the task surface is active (the
	// analytic base predicts 0 anyway; use redist, which is non-zero only
	// for the redist surface).
	if got, want := m.RedistOverhead(2, 4), base.RedistOverhead(2, 4); got != want {
		t.Errorf("task-only shape noise moved RedistOverhead: %g vs %g", got, want)
	}
}

// TestPerturbedRejectsBadDraws checks constructor validation.
func TestPerturbedRejectsBadDraws(t *testing.T) {
	base := NewAnalytic(platform.Bayreuth())
	if _, err := NewPerturbed(nil, IdentityPerturbation()); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewPerturbed(base, Perturbation{TaskFactor: -1, StartupFactor: 1, RedistFactor: 1}); err == nil {
		t.Error("negative factor accepted")
	}
	bad := IdentityPerturbation()
	bad.RedistShape = -0.5
	if _, err := NewPerturbed(base, bad); err == nil {
		t.Error("negative shape sigma accepted")
	}
}
