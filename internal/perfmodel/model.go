// Package perfmodel defines the performance models the simulators are
// instantiated with, and implements the paper's three variants:
//
//   - Analytic (§IV): flop counts over peak rates, latency/bandwidth
//     communication, no environment overheads — the model family behind the
//     vast majority of published scheduling results, shown by the paper to
//     be unusable for comparing HCPA and MCPA;
//   - Profile (§VI): task execution times, task-startup overheads and
//     redistribution overheads looked up from brute-force measurements of
//     the target environment;
//   - Empirical (§VII): regression models fit from sparse measurements
//     (Table II), the practical compromise.
//
// A Model serves two distinct consumers with the same numbers, exactly as in
// the paper: the scheduling algorithms' allocation/mapping phases (through
// CostFunc/CommFunc) and the simulator that replays the computed schedule
// (through TaskTime/TaskPtask and the overhead methods).
package perfmodel

import (
	"repro/internal/dag"
	"repro/internal/platform"
)

// Model estimates task execution times and environment overheads.
type Model interface {
	// Name identifies the model variant ("analytic", "profile", "empirical").
	Name() string
	// TaskTime returns the estimated kernel execution time, in seconds, of
	// the task on p processors, excluding startup overhead.
	TaskTime(task *dag.Task, p int) float64
	// StartupOverhead returns the estimated task startup time for an
	// allocation of p processors (JVM spawning via SSH in TGrid). The
	// analytic model returns 0 — that omission is the paper's point.
	StartupOverhead(p int) float64
	// RedistOverhead returns the estimated data-redistribution overhead
	// (TGrid's subnet-manager registration) for a transfer from pSrc to
	// pDst processors, excluding the actual data transfer time.
	RedistOverhead(pSrc, pDst int) float64
	// TaskPtask returns the L07 parallel-task description (per-rank flops
	// and inter-rank bytes) for simulating the task on p processors, or
	// (nil, nil) if the model simulates tasks as fixed TaskTime durations
	// (the profile-based and empirical simulators do; §VI-D).
	TaskPtask(task *dag.Task, p int) (comp []float64, bytes [][]float64)
}

// CostFunc adapts a model to the scheduler-facing cost function: the full
// estimated task duration including startup overhead.
func CostFunc(m Model) dag.CostFunc {
	return func(t *dag.Task, p int) float64 {
		return m.StartupOverhead(p) + m.TaskTime(t, p)
	}
}

// CommFunc adapts a model and platform to the scheduler-facing edge cost:
// redistribution overhead plus an uncontended transfer-time estimate. The
// transfer moves the producer's n×n output matrix; with 1-D blocks the
// bottleneck link carries ≈ 8n²/min(pSrc,pDst) bytes.
func CommFunc(m Model, c platform.Cluster) dag.CommFunc {
	return func(src, dst *dag.Task, pSrc, pDst int) float64 {
		bytes := float64(src.OutputBytes())
		if bytes == 0 {
			return m.RedistOverhead(pSrc, pDst)
		}
		minP := pSrc
		if pDst < minP {
			minP = pDst
		}
		transfer := bytes / float64(minP) / c.LinkBandwidth
		return m.RedistOverhead(pSrc, pDst) + 2*c.LinkLatency + transfer
	}
}
