package perfmodel

import (
	"math"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

func mulTask(n int) *dag.Task { return &dag.Task{Kernel: dag.KernelMul, N: n} }
func addTask(n int) *dag.Task { return &dag.Task{Kernel: dag.KernelAdd, N: n} }

func TestAnalyticSequentialMul(t *testing.T) {
	m := NewAnalytic(platform.Bayreuth())
	// 2·2000³ flops / 250 MFlop/s = 64 s, no communication at p=1.
	almost(t, m.TaskTime(mulTask(2000), 1), 64, 1e-9, "mul p=1")
}

func TestAnalyticParallelMulComputeBound(t *testing.T) {
	m := NewAnalytic(platform.Bayreuth())
	// p=4: comp = 1.6e10/4/250e6 = 16 s; ring comm 32 MB at 125 MB/s =
	// 0.256 s; overlapped → 16 s + 200 µs latency.
	almost(t, m.TaskTime(mulTask(2000), 4), 16+2e-4, 1e-9, "mul p=4")
}

func TestAnalyticAdd(t *testing.T) {
	m := NewAnalytic(platform.Bayreuth())
	// (2000/4)·2000² / 2 / 250e6 = 4 s; additions have no communication.
	almost(t, m.TaskTime(addTask(2000), 2), 4, 1e-9, "add p=2")
}

func TestAnalyticNoOverheads(t *testing.T) {
	m := NewAnalytic(platform.Bayreuth())
	if m.StartupOverhead(32) != 0 || m.RedistOverhead(16, 16) != 0 {
		t.Error("analytic model must ignore environment overheads")
	}
}

func TestAnalyticPtaskShapes(t *testing.T) {
	m := NewAnalytic(platform.Bayreuth())
	comp, bytes := m.TaskPtask(mulTask(2000), 4)
	if len(comp) != 4 {
		t.Fatalf("comp has %d entries, want 4", len(comp))
	}
	almost(t, comp[0], 4e9, 1, "comp per rank")
	if len(bytes) != 4 {
		t.Fatalf("bytes has %d rows, want 4", len(bytes))
	}
	// Ring: rank i sends only to (i+1) mod p.
	for i := range bytes {
		for j := range bytes[i] {
			want := 0.0
			if j == (i+1)%4 {
				want = 8 * 2000 * 2000
			}
			if bytes[i][j] != want {
				t.Errorf("bytes[%d][%d] = %g, want %g", i, j, bytes[i][j], want)
			}
		}
	}
	// Sequential multiplication has no communication matrix.
	if _, b := m.TaskPtask(mulTask(2000), 1); b != nil {
		t.Error("p=1 multiplication should have no communication")
	}
	// Additions never communicate.
	if _, b := m.TaskPtask(addTask(2000), 8); b != nil {
		t.Error("addition should have no communication")
	}
}

func TestAnalyticTaskTimeDecreasesWithP(t *testing.T) {
	m := NewAnalytic(platform.Bayreuth())
	prev := math.Inf(1)
	for p := 1; p <= 32; p++ {
		cur := m.TaskTime(mulTask(3000), p)
		if cur >= prev {
			t.Errorf("analytic mul time not decreasing at p=%d: %g >= %g", p, cur, prev)
		}
		prev = cur
	}
}

func testProfileData() *ProfileData {
	d := NewProfileData()
	for p := 1; p <= 32; p++ {
		d.TaskTimes[TaskKey{dag.KernelMul, 2000, p}] = 64 / float64(p) * 1.2
		d.TaskTimes[TaskKey{dag.KernelAdd, 2000, p}] = 8 / float64(p)
		d.Startup[p] = 0.65 + 0.03*float64(p)
		d.RedistByDst[p] = 0.1 + 0.008*float64(p)
	}
	return d
}

func TestProfileLookup(t *testing.T) {
	m, err := NewProfile(testProfileData())
	if err != nil {
		t.Fatal(err)
	}
	almost(t, m.TaskTime(mulTask(2000), 4), 64.0/4*1.2, 1e-12, "profiled mul p=4")
	almost(t, m.StartupOverhead(10), 0.95, 1e-12, "startup p=10")
	almost(t, m.RedistOverhead(3, 16), 0.228, 1e-12, "redist p(dst)=16")
	if _, b := m.TaskPtask(mulTask(2000), 4); b != nil {
		t.Error("profile model must simulate tasks as fixed durations")
	}
}

func TestProfileNearestFallback(t *testing.T) {
	m, _ := NewProfile(testProfileData())
	// p=40 is beyond the profiled range: nearest is 32.
	almost(t, m.TaskTime(mulTask(2000), 40), 64.0/32*1.2, 1e-12, "fallback p=40")
	almost(t, m.StartupOverhead(100), 0.65+0.03*32, 1e-12, "fallback startup")
}

func TestProfileRejectsEmpty(t *testing.T) {
	if _, err := NewProfile(NewProfileData()); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func TestProfileNoopFree(t *testing.T) {
	m, _ := NewProfile(testProfileData())
	if m.TaskTime(&dag.Task{Kernel: dag.KernelNoop}, 4) != 0 {
		t.Error("noop task should cost nothing")
	}
}

func TestPaperEmpiricalTableII(t *testing.T) {
	m := PaperEmpirical()
	// Multiplication n=2000, low regime: 239.44/(2p) + 3.43.
	almost(t, m.TaskTime(mulTask(2000), 4), 239.44/8+3.43, 1e-9, "mul2000 p=4")
	// High regime: 0.08·p + 1.93.
	almost(t, m.TaskTime(mulTask(2000), 31), 0.08*31+1.93, 1e-9, "mul2000 p=31")
	// Multiplication n=3000, low regime: 537.91/p − 25.55.
	almost(t, m.TaskTime(mulTask(3000), 4), 537.91/4-25.55, 1e-9, "mul3000 p=4")
	// Addition n=3000: 73.59/p + 0.38.
	almost(t, m.TaskTime(addTask(3000), 8), 73.59/8+0.38, 1e-9, "add3000 p=8")
	// Startup: 0.03p + 0.65.
	almost(t, m.StartupOverhead(16), 0.03*16+0.65, 1e-9, "startup p=16")
	// Redistribution: (7.88·p(dst) + 108.58) ms.
	almost(t, m.RedistOverhead(32, 10), (7.88*10+108.58)/1000, 1e-9, "redist p(dst)=10")
}

func TestEmpiricalClampsNegative(t *testing.T) {
	m := PaperEmpirical()
	// n=3000 low regime at p=16 hugs zero: 537.91/16 − 25.55 ≈ 8.07 > 0,
	// but the high regime −0.09·p + 11.47 goes negative for p > 127; our
	// clamp keeps predictions physical.
	if got := m.TaskTime(mulTask(3000), 200); got != 0 {
		t.Errorf("negative prediction not clamped: %g", got)
	}
}

func TestEmpiricalSplitAt16(t *testing.T) {
	m := PaperEmpirical()
	low := m.TaskTime(mulTask(2000), 16)
	high := m.TaskTime(mulTask(2000), 17)
	almost(t, low, 239.44/32+3.43, 1e-9, "p=16 uses low regime")
	almost(t, high, 0.08*17+1.93, 1e-9, "p=17 uses high regime")
}

func TestCostFuncIncludesStartup(t *testing.T) {
	m := PaperEmpirical()
	cost := CostFunc(m)
	task := mulTask(2000)
	want := m.StartupOverhead(4) + m.TaskTime(task, 4)
	almost(t, cost(task, 4), want, 1e-12, "CostFunc")
}

func TestCommFuncEstimates(t *testing.T) {
	c := platform.Bayreuth()
	m := NewAnalytic(c)
	comm := CommFunc(m, c)
	src, dst := mulTask(2000), mulTask(2000)
	// 32 MB over min(2,8)=2 parallel links at 125 MB/s = 0.128 s + latency.
	almost(t, comm(src, dst, 2, 8), 0.128+2e-4, 1e-9, "analytic edge")

	// Empirical model adds the redistribution overhead.
	e := PaperEmpirical()
	commE := CommFunc(e, c)
	want := e.RedistOverhead(2, 8) + 0.128 + 2e-4
	almost(t, commE(src, dst, 2, 8), want, 1e-9, "empirical edge")
}

func TestCommFuncNoopEdge(t *testing.T) {
	c := platform.Bayreuth()
	m := PaperEmpirical()
	comm := CommFunc(m, c)
	noop := &dag.Task{Kernel: dag.KernelNoop}
	almost(t, comm(noop, noop, 2, 4), m.RedistOverhead(2, 4), 1e-12, "noop edge")
}
