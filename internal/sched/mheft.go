package sched

import (
	"sort"

	"repro/internal/dag"
)

// MHEFT is the Mixed-parallel HEFT baseline (M-HEFT), the algorithm HCPA
// was originally evaluated against in [12]. Unlike the CPA family it is a
// one-phase scheduler: tasks are considered in decreasing bottom-level
// order and each task simultaneously picks its allocation size and its
// processor set so as to minimise its earliest finish time. Without a cap
// M-HEFT is known to over-allocate aggressively (any extra processor that
// shaves a microsecond is taken); AllocCap bounds the per-task allocation
// (0 means the whole cluster).
type MHEFT struct {
	// AllocCap bounds each task's allocation; 0 means no bound.
	AllocCap int
}

// Name identifies the algorithm.
func (m MHEFT) Name() string { return "MHEFT" }

// Build runs the one-phase scheduler and returns a validated schedule.
func (m MHEFT) Build(g *dag.Graph, clusterSize int, cost dag.CostFunc, comm dag.CommFunc) (*Schedule, error) {
	n := g.Len()
	s := &Schedule{
		Algorithm: m.Name(),
		Graph:     g,
		Alloc:     make([]int, n),
		Hosts:     make([][]int, n),
		EstStart:  make([]float64, n),
		EstFinish: make([]float64, n),
	}
	cap := m.AllocCap
	if cap <= 0 || cap > clusterSize {
		cap = clusterSize
	}

	// Priorities: bottom levels at unit allocation.
	ones := make([]int, n)
	for i := range ones {
		ones[i] = 1
	}
	bl := g.BottomLevels(ones, cost, comm)

	avail := make([]float64, clusterSize)
	nPredsLeft := make([]int, n)
	for _, t := range g.Tasks {
		nPredsLeft[t.ID] = t.InDegree()
	}
	var ready []int
	ready = append(ready, g.Entries()...)

	for mapped := 0; mapped < n; mapped++ {
		// Highest bottom level first.
		best := -1
		for _, id := range ready {
			if best < 0 || bl[id] > bl[best] || (bl[id] == bl[best] && id < best) {
				best = id
			}
		}
		if best < 0 {
			panic("sched: MHEFT ran out of ready tasks")
		}
		for i, r := range ready {
			if r == best {
				ready = append(ready[:i], ready[i+1:]...)
				break
			}
		}
		task := g.Task(best)

		// Hosts by availability (ties by ID).
		type hostAvail struct {
			host int
			at   float64
		}
		hs := make([]hostAvail, clusterSize)
		for h := range hs {
			hs[h] = hostAvail{host: h, at: avail[h]}
		}
		sort.Slice(hs, func(a, b int) bool {
			if hs[a].at != hs[b].at {
				return hs[a].at < hs[b].at
			}
			return hs[a].host < hs[b].host
		})

		// Try every allocation size on the p earliest-available hosts and
		// keep the earliest finish (ties favour fewer processors, which
		// curbs gratuitous over-allocation).
		bestP, bestStart, bestFinish := 0, 0.0, 0.0
		for p := 1; p <= cap; p++ {
			procReady := hs[p-1].at
			dataReady := 0.0
			for _, pr := range task.Preds() {
				t := s.EstFinish[pr]
				if comm != nil {
					t += comm(g.Task(pr), task, s.Alloc[pr], p)
				}
				if t > dataReady {
					dataReady = t
				}
			}
			start := procReady
			if dataReady > start {
				start = dataReady
			}
			finish := start + cost(task, p)
			if bestP == 0 || finish < bestFinish-1e-12 {
				bestP, bestStart, bestFinish = p, start, finish
			}
		}

		chosen := make([]int, bestP)
		for i := 0; i < bestP; i++ {
			chosen[i] = hs[i].host
		}
		sort.Ints(chosen)
		s.Alloc[best] = bestP
		s.Hosts[best] = chosen
		s.EstStart[best] = bestStart
		s.EstFinish[best] = bestFinish
		for _, h := range chosen {
			avail[h] = bestFinish
		}
		for _, succ := range task.Succs() {
			nPredsLeft[succ]--
			if nPredsLeft[succ] == 0 {
				ready = append(ready, succ)
			}
		}
	}
	if err := s.Validate(clusterSize); err != nil {
		return nil, err
	}
	return s, nil
}
