package sched

import (
	"sort"

	"repro/internal/dag"
)

// MapSchedule is the mapping phase shared by the CPA family: list scheduling
// in decreasing bottom-level order. Ready tasks (all predecessors mapped)
// are mapped one at a time; the chosen task receives the alloc[t] processors
// that become available earliest, and starts once both its processors are
// free and its input data has arrived (predecessor finish plus
// redistribution estimate from the comm model, when provided).
func MapSchedule(g *dag.Graph, alloc []int, clusterSize int, cost dag.CostFunc, comm dag.CommFunc) *Schedule {
	n := g.Len()
	s := &Schedule{
		Graph:     g,
		Alloc:     append([]int(nil), alloc...),
		Hosts:     make([][]int, n),
		EstStart:  make([]float64, n),
		EstFinish: make([]float64, n),
	}
	bl := g.BottomLevels(alloc, cost, comm)

	avail := make([]float64, clusterSize) // per-processor next-free time
	mapped := make([]bool, n)
	nPredsLeft := make([]int, n)
	for _, t := range g.Tasks {
		nPredsLeft[t.ID] = t.InDegree()
	}

	// ready holds mappable tasks, picked by (bottom level desc, ID asc).
	var ready []int
	for _, id := range g.Entries() {
		ready = append(ready, id)
	}
	pickReady := func() int {
		best := -1
		for _, id := range ready {
			if best < 0 || bl[id] > bl[best] || (bl[id] == bl[best] && id < best) {
				best = id
			}
		}
		return best
	}

	type hostAvail struct {
		host int
		at   float64
	}
	for count := 0; count < n; count++ {
		id := pickReady()
		if id < 0 {
			panic("sched: mapping ran out of ready tasks before mapping everything")
		}
		// Remove from ready list.
		for i, r := range ready {
			if r == id {
				ready = append(ready[:i], ready[i+1:]...)
				break
			}
		}
		task := g.Task(id)
		k := alloc[id]

		// Earliest-available processors (ties by host ID for determinism).
		hs := make([]hostAvail, clusterSize)
		for h := range hs {
			hs[h] = hostAvail{host: h, at: avail[h]}
		}
		sort.Slice(hs, func(a, b int) bool {
			if hs[a].at != hs[b].at {
				return hs[a].at < hs[b].at
			}
			return hs[a].host < hs[b].host
		})
		chosen := make([]int, k)
		procReady := 0.0
		for i := 0; i < k; i++ {
			chosen[i] = hs[i].host
			if hs[i].at > procReady {
				procReady = hs[i].at
			}
		}
		sort.Ints(chosen)

		// Data-ready time from predecessors.
		dataReady := 0.0
		for _, p := range task.Preds() {
			t := s.EstFinish[p]
			if comm != nil {
				t += comm(g.Task(p), task, alloc[p], k)
			}
			if t > dataReady {
				dataReady = t
			}
		}

		start := procReady
		if dataReady > start {
			start = dataReady
		}
		finish := start + cost(task, k)
		s.Hosts[id] = chosen
		s.EstStart[id] = start
		s.EstFinish[id] = finish
		for _, h := range chosen {
			avail[h] = finish
		}
		mapped[id] = true

		for _, succ := range task.Succs() {
			nPredsLeft[succ]--
			if nPredsLeft[succ] == 0 {
				ready = append(ready, succ)
			}
		}
	}
	return s
}
