package sched

import "repro/internal/dag"

// CPA is the Critical Path and Area-based scheduling algorithm of Radulescu
// and van Gemund (§II-A, [7]). Its allocation phase starts every task on one
// processor and repeatedly gives one more processor to the critical-path
// task that benefits most, until the critical path T_CP no longer exceeds
// the average area T_A = (1/N)·Σ t(τ,n_τ)·n_τ. CPA is known to over-allocate
// on wide DAGs — the flaw HCPA and MCPA address.
type CPA struct{}

// Name implements Algorithm.
func (CPA) Name() string { return "CPA" }

// Allocate implements Algorithm.
func (CPA) Allocate(g *dag.Graph, clusterSize int, cost dag.CostFunc) []int {
	return cpaLoop(g, clusterSize, cost, nil)
}

// growthConstraint, when non-nil, vetoes growing a task's allocation; it
// receives the task and its current allocation. HCPA and MCPA are CPA with
// different growth constraints.
type growthConstraint func(g *dag.Graph, alloc []int, task *dag.Task) bool

// cpaLoop is the shared CPA-family allocation loop.
func cpaLoop(g *dag.Graph, clusterSize int, cost dag.CostFunc, mayGrow growthConstraint) []int {
	n := g.Len()
	alloc := make([]int, n)
	for i := range alloc {
		alloc[i] = 1
	}
	if n == 0 {
		return alloc
	}
	// Each iteration adds one processor somewhere, so n·N bounds the loop.
	maxIter := n * clusterSize
	for iter := 0; iter < maxIter; iter++ {
		tcp := g.CriticalPathLength(alloc, cost, nil)
		ta := g.AverageArea(alloc, cost, clusterSize)
		if tcp <= ta {
			break
		}
		cp := g.CriticalPath(alloc, cost, nil)

		// Pick the critical-path task whose t(τ,p)/p drops the most when
		// given one more processor (the original CPA benefit criterion).
		best, bestGain := -1, 0.0
		for _, id := range cp {
			a := alloc[id]
			if a >= clusterSize {
				continue
			}
			task := g.Task(id)
			if mayGrow != nil && !mayGrow(g, alloc, task) {
				continue
			}
			gain := cost(task, a)/float64(a) - cost(task, a+1)/float64(a+1)
			if gain > bestGain || (gain == bestGain && best >= 0 && id < best) {
				if gain > 0 {
					best, bestGain = id, gain
				}
			}
		}
		if best < 0 {
			break // no critical-path task can usefully grow
		}
		alloc[best]++
	}
	return alloc
}
