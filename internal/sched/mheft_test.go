package sched

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/platform"
)

func TestMHEFTProducesValidSchedules(t *testing.T) {
	c := platform.Bayreuth()
	model := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)
	for seed := int64(0); seed < 5; seed++ {
		g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 0.5, N: 2000, Seed: seed})
		s, err := MHEFT{}.Build(g, c.Nodes, cost, comm)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if s.Algorithm != "MHEFT" {
			t.Errorf("algorithm label %q", s.Algorithm)
		}
	}
}

func TestMHEFTBeatsSequentialOnChain(t *testing.T) {
	g := chain(4)
	cost := perfect
	s, err := MHEFT{}.Build(g, 16, cost, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Build(Sequential{}, g, 16, cost, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.EstMakespan() >= seq.EstMakespan() {
		t.Errorf("MHEFT makespan %g not below sequential %g", s.EstMakespan(), seq.EstMakespan())
	}
}

func TestMHEFTOverAllocatesWithPerfectSpeedup(t *testing.T) {
	// With ideal speedup every extra processor helps, so uncapped M-HEFT
	// gives chain tasks the whole cluster — its known flaw.
	g := chain(3)
	s, err := MHEFT{}.Build(g, 8, perfect, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range s.Alloc {
		if a != 8 {
			t.Errorf("task %d allocated %d, want 8 (uncapped M-HEFT grabs everything)", i, a)
		}
	}
}

func TestMHEFTAllocCap(t *testing.T) {
	g := chain(3)
	s, err := MHEFT{AllocCap: 4}.Build(g, 16, perfect, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range s.Alloc {
		if a > 4 {
			t.Errorf("task %d allocated %d beyond the cap of 4", i, a)
		}
	}
}

func TestMHEFTPrefersFewerProcessorsOnTies(t *testing.T) {
	// A cost model flat in p: additional processors never help, so M-HEFT
	// must keep every allocation at 1.
	g := fork(4)
	flat := func(task *dag.Task, p int) float64 { return 5 }
	s, err := MHEFT{}.Build(g, 8, flat, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range s.Alloc {
		if a != 1 {
			t.Errorf("task %d allocated %d under a flat cost model", i, a)
		}
	}
}

func TestMHEFTRespectsAmdahlPenalty(t *testing.T) {
	// With the amdahl model, huge allocations eventually slow a task
	// down; M-HEFT must not pick an allocation whose cost exceeds the
	// single-processor cost.
	g := chain(2)
	s, err := MHEFT{}.Build(g, 32, amdahl, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range s.Alloc {
		task := g.Task(i)
		if amdahl(task, a) > amdahl(task, 1) {
			t.Errorf("task %d: chosen allocation %d is worse than sequential", i, a)
		}
	}
}
