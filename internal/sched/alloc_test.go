package sched

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/testutil"
)

// TestScratchBuildAllocFree pins the tentpole's scheduling claim: once a
// scratch has been warmed on a graph, rebinding it (fresh cost function, new
// memo epoch) and rebuilding every CPA-family algorithm plus M-HEFT
// allocates nothing.
func TestScratchBuildAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	c := platform.Bayreuth()
	model := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)
	g := dag.MustGenerate(dag.GenParams{Tasks: 20, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 77})

	algos := []Algorithm{CPA{}, HCPA{}, MCPA{}, Sequential{}, DataParallel{}}
	sc := NewScratch()
	run := func() {
		sc.Bind(g, c.Nodes, cost)
		for _, algo := range algos {
			if _, err := sc.Build(algo, comm); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sc.BuildMHEFT(MHEFT{}, comm); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch's buffers and per-graph caches
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Errorf("warm scratch build allocates %.1f times per run, want 0", allocs)
	}
}
