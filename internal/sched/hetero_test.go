package sched

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
)

// twoSpeedCluster: half the nodes at the reference speed, half at double.
func twoSpeedCluster(nodes int) platform.Cluster {
	powers := make([]float64, nodes)
	for i := range powers {
		if i < nodes/2 {
			powers[i] = 250e6
		} else {
			powers[i] = 500e6
		}
	}
	return platform.NewHeterogeneous("two-speed", powers, 125e6, 100e-6)
}

func TestBuildHeteroValidSchedules(t *testing.T) {
	c := twoSpeedCluster(16)
	for seed := int64(0); seed < 5; seed++ {
		g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: seed})
		for _, algo := range []Algorithm{CPA{}, HCPA{}, MCPA{}} {
			s, err := BuildHetero(algo, g, c, perfect, nil)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, algo.Name(), err)
			}
			if s.EstMakespan() <= 0 {
				t.Errorf("%s: empty makespan", algo.Name())
			}
		}
	}
}

func TestHeteroMappingPrefersFastNodesWhenFree(t *testing.T) {
	// A single task on an idle two-speed cluster must land on fast nodes.
	c := twoSpeedCluster(8)
	g := dag.New("one")
	g.AddTask(dag.KernelMul, 500)
	s := MapScheduleHetero(g, []int{2}, c, perfect, nil)
	for _, h := range s.Hosts[0] {
		if c.PowerOf(h) != 500e6 {
			t.Errorf("task placed on slow host %d while fast hosts idle", h)
		}
	}
}

func TestHeteroMappingSlowsDownOnSlowNodes(t *testing.T) {
	// Force a wide allocation: with more tasks than fast nodes, some run
	// slower; estimated finishes must reflect the slowdown factor.
	c := twoSpeedCluster(4) // 2 slow + 2 fast
	g := dag.New("pair")
	g.AddTask(dag.KernelMul, 500)
	g.AddTask(dag.KernelMul, 500)
	s := MapScheduleHetero(g, []int{2, 2}, c, perfect, nil)
	var fast, slow float64
	for id := 0; id < 2; id++ {
		dur := s.EstFinish[id] - s.EstStart[id]
		if c.MinPowerOf(s.Hosts[id]) == 500e6 {
			fast = dur
		} else {
			slow = dur
		}
	}
	if fast == 0 || slow == 0 {
		t.Fatalf("expected one fast and one slow placement, hosts %v", s.Hosts)
	}
	if slow < fast*1.5 {
		t.Errorf("slow placement (%g) not ≈2× fast (%g)", slow, fast)
	}
}

func TestHeteroReducesToHomogeneous(t *testing.T) {
	// On a homogeneous platform the hetero mapping must produce schedules
	// of the same quality as the standard one.
	c := platform.Bayreuth()
	g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 0.5, N: 2000, Seed: 7})
	alloc := HCPA{}.Allocate(g, c.Nodes, amdahl)
	std := MapSchedule(g, alloc, c.Nodes, amdahl, nil)
	het := MapScheduleHetero(g, alloc, c, amdahl, nil)
	if het.EstMakespan() > std.EstMakespan()*1.01 {
		t.Errorf("hetero mapping on homogeneous cluster worse: %g vs %g",
			het.EstMakespan(), std.EstMakespan())
	}
}

func TestBuildHeteroRejectsBadInputs(t *testing.T) {
	c := twoSpeedCluster(8)
	if _, err := BuildHetero(CPA{}, dag.New("empty"), c, perfect, nil); err == nil {
		t.Error("empty graph accepted")
	}
	bad := c
	bad.NodePowers = bad.NodePowers[:3]
	g := dag.Chain(2, 100)
	if _, err := BuildHetero(CPA{}, g, bad, perfect, nil); err == nil {
		t.Error("invalid cluster accepted")
	}
}
