package sched

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/platform"
)

// sameSchedule asserts exact (bitwise float) equality between two schedules.
func sameSchedule(t *testing.T, ctx string, got, want *Schedule) {
	t.Helper()
	if got.Algorithm != want.Algorithm {
		t.Fatalf("%s: algorithm %q != %q", ctx, got.Algorithm, want.Algorithm)
	}
	n := want.Graph.Len()
	if len(got.Alloc) != n || len(got.Hosts) != n || len(got.EstStart) != n || len(got.EstFinish) != n {
		t.Fatalf("%s: field lengths differ", ctx)
	}
	for i := 0; i < n; i++ {
		if got.Alloc[i] != want.Alloc[i] {
			t.Fatalf("%s: task %d alloc %d != %d", ctx, i, got.Alloc[i], want.Alloc[i])
		}
		if len(got.Hosts[i]) != len(want.Hosts[i]) {
			t.Fatalf("%s: task %d host count differs", ctx, i)
		}
		for j := range got.Hosts[i] {
			if got.Hosts[i][j] != want.Hosts[i][j] {
				t.Fatalf("%s: task %d hosts %v != %v", ctx, i, got.Hosts[i], want.Hosts[i])
			}
		}
		if got.EstStart[i] != want.EstStart[i] || got.EstFinish[i] != want.EstFinish[i] {
			t.Fatalf("%s: task %d window [%g,%g] != [%g,%g]", ctx, i,
				got.EstStart[i], got.EstFinish[i], want.EstStart[i], want.EstFinish[i])
		}
	}
}

// TestScratchBuildMatchesBuild is the differential guard for the scratch
// scheduling path: across a spread of random DAGs, cluster sizes and cost
// models, Scratch.Build must reproduce Build bit-for-bit — same allocations,
// same host sets, same estimated timeline.
func TestScratchBuildMatchesBuild(t *testing.T) {
	c := platform.Bayreuth()
	model := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)

	// A perturbed model exercises the cost memo with non-trivial floats.
	pm := &perfmodel.Perturbed{Base: model, P: perfmodel.Perturbation{
		TaskFactor: 1.07, StartupFactor: 1.2, TaskShape: 0.3, Salt: 42,
	}}
	pcost := perfmodel.CostFunc(pm)
	pcomm := perfmodel.CommFunc(pm, c)

	algos := []Algorithm{CPA{}, HCPA{}, HCPA{MinEfficiency: 0.25}, MCPA{}, Sequential{}, DataParallel{}, Fixed{P: 3}}
	sc := NewScratch()
	rng := rand.New(rand.NewSource(7))
	for seed := int64(0); seed < 6; seed++ {
		g := dag.MustGenerate(dag.GenParams{
			Tasks:         6 + int(seed)*5,
			InputMatrices: 2 + int(seed)%7,
			AddRatio:      float64(seed) / 6,
			N:             2000,
			Seed:          seed,
		})
		for _, size := range []int{1 + rng.Intn(4), 16, c.Nodes} {
			for _, algo := range algos {
				for _, m := range []struct {
					name string
					cost dag.CostFunc
					comm dag.CommFunc
				}{{"analytic", cost, comm}, {"perturbed", pcost, pcomm}} {
					want, errW := Build(algo, g, size, m.cost, m.comm)
					sc.Bind(g, size, m.cost)
					got, errG := sc.Build(algo, m.comm)
					if (errW == nil) != (errG == nil) {
						t.Fatalf("dag %d size %d %s %s: error mismatch: %v vs %v",
							seed, size, algo.Name(), m.name, errW, errG)
					}
					if errW != nil {
						continue
					}
					ctx := g.Name + "/" + algo.Name() + "/" + m.name
					sameSchedule(t, ctx, got, want)
				}
			}
		}
	}
}

// TestScratchBuildMHEFTMatchesMHEFT does the same for the heterogeneous
// list scheduler.
func TestScratchBuildMHEFTMatchesMHEFT(t *testing.T) {
	c := platform.Bayreuth()
	model := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)

	sc := NewScratch()
	for seed := int64(0); seed < 4; seed++ {
		g := dag.MustGenerate(dag.GenParams{
			Tasks: 8 + int(seed)*6, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 100 + seed,
		})
		for _, m := range []MHEFT{{}, {AllocCap: 4}} {
			want, errW := m.Build(g, c.Nodes, cost, comm)
			sc.Bind(g, c.Nodes, cost)
			got, errG := sc.BuildMHEFT(m, comm)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("dag %d cap %d: error mismatch: %v vs %v", seed, m.AllocCap, errW, errG)
			}
			if errW != nil {
				continue
			}
			sameSchedule(t, g.Name, got, want)
		}
	}
}

// TestScratchRebind checks that a scratch rebinding across graphs and cost
// functions does not leak memoized costs or cached graph analysis.
func TestScratchRebind(t *testing.T) {
	c := platform.Bayreuth()
	model := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)
	double := func(task *dag.Task, p int) float64 { return 2 * cost(task, p) }

	g1 := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 1})
	g2 := dag.MustGenerate(dag.GenParams{Tasks: 14, InputMatrices: 2, AddRatio: 1, N: 2000, Seed: 2})

	sc := NewScratch()
	for round := 0; round < 3; round++ {
		for _, g := range []*dag.Graph{g1, g2} {
			for _, cf := range []dag.CostFunc{cost, double} {
				want, err := Build(HCPA{}, g, c.Nodes, cf, comm)
				if err != nil {
					t.Fatal(err)
				}
				sc.Bind(g, c.Nodes, cf)
				got, err := sc.Build(HCPA{}, comm)
				if err != nil {
					t.Fatal(err)
				}
				sameSchedule(t, g.Name, got, want)
			}
		}
	}
}

// TestScheduleClone checks the deep copy detaches from scratch buffers.
func TestScheduleClone(t *testing.T) {
	c := platform.Bayreuth()
	model := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)
	g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 3})

	sc := NewScratch()
	sc.Bind(g, c.Nodes, cost)
	first, err := sc.Build(HCPA{}, comm)
	if err != nil {
		t.Fatal(err)
	}
	clone := first.Clone()
	ref, err := Build(HCPA{}, g, c.Nodes, cost, comm)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the scratch output with a different algorithm's schedule;
	// the clone must be unaffected.
	if _, err := sc.Build(DataParallel{}, comm); err != nil {
		t.Fatal(err)
	}
	sameSchedule(t, "clone", clone, ref)
}
