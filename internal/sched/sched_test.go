package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/platform"
)

// amdahl is an imperfect-speedup cost model: t(τ,p) = W/p + 0.05·W·(p−1)/32,
// so efficiency decays with p and over-allocation is possible.
func amdahl(t *dag.Task, p int) float64 {
	w := t.Flops() / 250e6
	return w/float64(p) + 0.05*w*float64(p-1)/32
}

// perfect is an ideal-speedup cost model.
func perfect(t *dag.Task, p int) float64 {
	return t.Flops() / 250e6 / float64(p)
}

func chain(k int) *dag.Graph {
	g := dag.New("chain")
	prev := -1
	for i := 0; i < k; i++ {
		t := g.AddTask(dag.KernelMul, 500)
		if prev >= 0 {
			g.AddEdge(prev, t.ID)
		}
		prev = t.ID
	}
	return g
}

func fork(k int) *dag.Graph {
	g := dag.New("fork")
	root := g.AddTask(dag.KernelMul, 500)
	sink := g.AddTask(dag.KernelMul, 500)
	for i := 0; i < k; i++ {
		t := g.AddTask(dag.KernelMul, 500)
		g.AddEdge(root.ID, t.ID)
		g.AddEdge(t.ID, sink.ID)
	}
	return g
}

func TestCPAAllocatesChainWide(t *testing.T) {
	// A pure chain is all critical path: CPA grows allocations until
	// T_CP ≤ T_A. With perfect speedup T_A is constant while T_CP shrinks,
	// so tasks end up with substantial allocations.
	g := chain(4)
	alloc := CPA{}.Allocate(g, 32, perfect)
	for i, a := range alloc {
		if a < 2 {
			t.Errorf("chain task %d allocated %d, want ≥ 2", i, a)
		}
	}
}

func TestCPAAllocationBounds(t *testing.T) {
	g := fork(6)
	alloc := CPA{}.Allocate(g, 8, amdahl)
	for i, a := range alloc {
		if a < 1 || a > 8 {
			t.Errorf("task %d allocated %d, outside [1,8]", i, a)
		}
	}
}

func TestCPAStopsAtAreaBalance(t *testing.T) {
	g := fork(6)
	alloc := CPA{}.Allocate(g, 32, amdahl)
	tcp := g.CriticalPathLength(alloc, amdahl, nil)
	ta := g.AverageArea(alloc, amdahl, 32)
	// Either balance was reached or no task could grow further.
	if tcp > ta {
		grew := false
		for _, a := range alloc {
			if a < 32 {
				grew = true
			}
		}
		if grew {
			// With the amdahl model marginal gain can go negative, which
			// also legitimately stops the loop; verify that is the case.
			cp := g.CriticalPath(alloc, amdahl, nil)
			for _, id := range cp {
				task := g.Task(id)
				a := alloc[id]
				gain := amdahl(task, a)/float64(a) - amdahl(task, a+1)/float64(a+1)
				if gain > 0 && a < 32 {
					t.Errorf("CPA stopped early: task %d could still gain %g", id, gain)
				}
			}
		}
	}
}

func TestHCPAEfficiencyFloor(t *testing.T) {
	g := fork(4)
	alloc := HCPA{}.Allocate(g, 32, amdahl)
	for i, a := range alloc {
		if a == 1 {
			continue
		}
		task := g.Task(i)
		eff := amdahl(task, 1) / (float64(a) * amdahl(task, a))
		if eff < 0.5-1e-9 {
			t.Errorf("task %d at p=%d has efficiency %g < 0.5", i, a, eff)
		}
	}
}

func TestHCPAAllocatesNoMoreThanCPA(t *testing.T) {
	g := fork(6)
	cpa := CPA{}.Allocate(g, 32, amdahl)
	hcpa := HCPA{}.Allocate(g, 32, amdahl)
	totalCPA, totalHCPA := 0, 0
	for i := range cpa {
		totalCPA += cpa[i]
		totalHCPA += hcpa[i]
	}
	if totalHCPA > totalCPA {
		t.Errorf("HCPA total allocation %d exceeds CPA's %d", totalHCPA, totalCPA)
	}
}

func TestMCPALevelBound(t *testing.T) {
	g := fork(6)
	alloc := MCPA{}.Allocate(g, 8, perfect)
	levels, nLevels := g.Levels()
	sums := make([]int, nLevels)
	widths := make([]int, nLevels)
	for id, l := range levels {
		sums[l] += alloc[id]
		widths[l]++
	}
	for l, sum := range sums {
		bound := 8
		if widths[l] > bound {
			bound = widths[l] // every task holds ≥ 1 processor
		}
		if sum > bound {
			t.Errorf("level %d total allocation %d exceeds bound %d", l, sum, bound)
		}
	}
}

func TestAlgorithmsDiffer(t *testing.T) {
	// Across wide DAGs with imperfect speedup the three algorithms must
	// not always produce identical allocations.
	differs := false
	for seed := int64(0); seed < 10 && !differs; seed++ {
		g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 0.5, N: 2000, Seed: seed})
		cpa := CPA{}.Allocate(g, 16, amdahl)
		hcpa := HCPA{}.Allocate(g, 16, amdahl)
		mcpa := MCPA{}.Allocate(g, 16, amdahl)
		if !equalInts(cpa, hcpa) || !equalInts(cpa, mcpa) {
			differs = true
		}
	}
	if !differs {
		t.Error("CPA, HCPA and MCPA produced identical allocations on all 10 seeds")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBaselines(t *testing.T) {
	g := fork(3)
	seq := Sequential{}.Allocate(g, 16, perfect)
	for _, a := range seq {
		if a != 1 {
			t.Errorf("SEQ allocated %d, want 1", a)
		}
	}
	dp := DataParallel{}.Allocate(g, 16, perfect)
	for _, a := range dp {
		if a != 16 {
			t.Errorf("DATAPAR allocated %d, want 16", a)
		}
	}
	fx := Fixed{P: 64}.Allocate(g, 16, perfect)
	for _, a := range fx {
		if a != 16 {
			t.Errorf("FIXED{64} allocated %d on a 16-node cluster, want 16", a)
		}
	}
	fx0 := Fixed{P: 0}.Allocate(g, 16, perfect)
	if fx0[0] != 1 {
		t.Errorf("FIXED{0} allocated %d, want 1", fx0[0])
	}
}

func TestMappingChainIsSequential(t *testing.T) {
	g := chain(3)
	alloc := []int{1, 1, 1}
	s := MapSchedule(g, alloc, 4, perfect, nil)
	// Each chain task starts when its predecessor finishes.
	for i := 1; i < 3; i++ {
		if math.Abs(s.EstStart[i]-s.EstFinish[i-1]) > 1e-9 {
			t.Errorf("chain task %d starts at %g, want %g", i, s.EstStart[i], s.EstFinish[i-1])
		}
	}
}

func TestMappingIndependentTasksRunInParallel(t *testing.T) {
	g := dag.New("indep")
	g.AddTask(dag.KernelMul, 500)
	g.AddTask(dag.KernelMul, 500)
	s := MapSchedule(g, []int{1, 1}, 4, perfect, nil)
	if s.EstStart[0] != 0 || s.EstStart[1] != 0 {
		t.Errorf("independent tasks start at %g and %g, want both 0",
			s.EstStart[0], s.EstStart[1])
	}
	if s.Hosts[0][0] == s.Hosts[1][0] {
		t.Error("parallel tasks share a host")
	}
}

func TestMappingSerializesOnScarceProcessors(t *testing.T) {
	g := dag.New("scarce")
	g.AddTask(dag.KernelMul, 500)
	g.AddTask(dag.KernelMul, 500)
	s := MapSchedule(g, []int{2, 2}, 2, perfect, nil)
	// Only 2 processors: tasks must serialize.
	first, second := 0, 1
	if s.EstStart[1] < s.EstStart[0] {
		first, second = 1, 0
	}
	if math.Abs(s.EstStart[second]-s.EstFinish[first]) > 1e-9 {
		t.Errorf("second task starts at %g, want %g", s.EstStart[second], s.EstFinish[first])
	}
}

func TestMappingCommDelaysStart(t *testing.T) {
	g := chain(2)
	comm := func(src, dst *dag.Task, ps, pd int) float64 { return 1.5 }
	s := MapSchedule(g, []int{1, 1}, 4, perfect, comm)
	want := s.EstFinish[0] + 1.5
	if math.Abs(s.EstStart[1]-want) > 1e-9 {
		t.Errorf("successor starts at %g, want %g", s.EstStart[1], want)
	}
}

func TestBuildProducesValidSchedules(t *testing.T) {
	c := platform.Bayreuth()
	model := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)
	g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 11})
	for _, algo := range []Algorithm{CPA{}, HCPA{}, MCPA{}, Sequential{}, DataParallel{}} {
		s, err := Build(algo, g, c.Nodes, cost, comm)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if s.EstMakespan() <= 0 {
			t.Errorf("%s: non-positive makespan", algo.Name())
		}
		if s.Algorithm != algo.Name() {
			t.Errorf("schedule algorithm label = %q", s.Algorithm)
		}
	}
}

func TestBuildRejectsEmptyGraph(t *testing.T) {
	if _, err := Build(CPA{}, dag.New("empty"), 4, perfect, nil); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestOrderSortsByStart(t *testing.T) {
	g := chain(3)
	s := MapSchedule(g, []int{1, 1, 1}, 4, perfect, nil)
	order := s.Order()
	for i := 1; i < len(order); i++ {
		if s.EstStart[order[i-1]] > s.EstStart[order[i]] {
			t.Errorf("Order not sorted by start: %v", order)
		}
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	g := dag.New("x")
	g.AddTask(dag.KernelMul, 100)
	g.AddTask(dag.KernelMul, 100)
	s := &Schedule{
		Algorithm: "bogus",
		Graph:     g,
		Alloc:     []int{1, 1},
		Hosts:     [][]int{{0}, {0}}, // same host, overlapping times
		EstStart:  []float64{0, 0.5},
		EstFinish: []float64{1, 1.5},
	}
	if err := s.Validate(4); err == nil {
		t.Fatal("overlapping host use not detected")
	}
}

func TestValidateCatchesPrecedenceViolation(t *testing.T) {
	g := chain(2)
	s := &Schedule{
		Algorithm: "bogus",
		Graph:     g,
		Alloc:     []int{1, 1},
		Hosts:     [][]int{{0}, {1}},
		EstStart:  []float64{0, 0.2},
		EstFinish: []float64{1, 1.2}, // successor starts before pred ends
	}
	if err := s.Validate(4); err == nil {
		t.Fatal("precedence violation not detected")
	}
}

// Property: every algorithm on every random DAG yields a schedule that
// passes validation under the analytic model.
func TestSchedulesValidQuick(t *testing.T) {
	c := platform.Bayreuth()
	model := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)
	algos := []Algorithm{CPA{}, HCPA{}, MCPA{}}
	prop := func(seed int64, aIdx uint8) bool {
		g := dag.MustGenerate(dag.GenParams{
			Tasks: 10, InputMatrices: 8, AddRatio: 0.5, N: 2000, Seed: seed,
		})
		algo := algos[int(aIdx)%len(algos)]
		s, err := Build(algo, g, c.Nodes, cost, comm)
		if err != nil {
			return false
		}
		return s.Validate(c.Nodes) == nil
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
