// Package sched implements the paper's two-phase scheduling algorithms for
// mixed-parallel applications on homogeneous clusters (§II-A): the CPA
// family — CPA (Radulescu & van Gemund), HCPA (N'takpé, Suter & Casanova)
// and MCPA (Bansal, Kumar & Singh) — plus reference baselines. All
// algorithms first run an allocation phase that decides how many processors
// each moldable task gets, then a mapping phase (list scheduling) that picks
// the concrete processor sets and the execution order.
//
// The allocation and mapping phases consult a performance model through
// dag.CostFunc/dag.CommFunc, so the same algorithm paired with different
// models (analytic, profile, empirical) computes different schedules — the
// paper's experimental design.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/dag"
)

// Schedule is the output of a scheduling algorithm: per-task allocations,
// concrete processor sets, and the estimated timeline the mapping phase
// produced. The estimates come from the scheduler's performance model; the
// simulator and the real execution environment replay the schedule and
// produce their own (generally different) makespans.
type Schedule struct {
	// Algorithm names the algorithm that produced the schedule.
	Algorithm string
	// Model names the performance model used ("analytic", ...).
	Model string
	// Graph is the scheduled application.
	Graph *dag.Graph
	// Alloc[t] is the number of processors allocated to task t.
	Alloc []int
	// Hosts[t] lists the processors assigned to task t (len == Alloc[t]).
	Hosts [][]int
	// EstStart and EstFinish are the mapping phase's estimated times.
	EstStart, EstFinish []float64
}

// EstMakespan returns the mapping phase's estimated makespan.
func (s *Schedule) EstMakespan() float64 {
	best := 0.0
	for _, f := range s.EstFinish {
		if f > best {
			best = f
		}
	}
	return best
}

// Order returns the task IDs sorted by estimated start time (ties by ID),
// the order in which the runtime environment should launch them.
func (s *Schedule) Order() []int {
	order := make([]int, len(s.Alloc))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := s.EstStart[order[a]], s.EstStart[order[b]]
		if ta != tb {
			return ta < tb
		}
		return order[a] < order[b]
	})
	return order
}

// Validate checks the schedule against the cluster size: allocation bounds,
// host-set shapes, precedence feasibility of the estimated timeline, and
// that tasks overlapping in estimated time never share a processor.
func (s *Schedule) Validate(clusterSize int) error {
	return s.validate(clusterSize, nil)
}

// validate is Validate with an optional scratch supplying the duplicate-host
// check's storage (an epoch-stamped array instead of a per-task map), so the
// scratch build path validates without allocating.
func (s *Schedule) validate(clusterSize int, sc *Scratch) error {
	n := s.Graph.Len()
	if len(s.Alloc) != n || len(s.Hosts) != n || len(s.EstStart) != n || len(s.EstFinish) != n {
		return fmt.Errorf("sched %s: field lengths inconsistent with %d tasks", s.Algorithm, n)
	}
	var seen map[int]bool
	if sc != nil {
		if cap(sc.seenHost) < clusterSize {
			sc.seenHost = make([]uint64, clusterSize)
		}
		sc.seenHost = sc.seenHost[:clusterSize]
	}
	for t := 0; t < n; t++ {
		if s.Alloc[t] < 1 || s.Alloc[t] > clusterSize {
			return fmt.Errorf("sched %s: task %d allocated %d processors (cluster has %d)",
				s.Algorithm, t, s.Alloc[t], clusterSize)
		}
		if len(s.Hosts[t]) != s.Alloc[t] {
			return fmt.Errorf("sched %s: task %d has %d hosts but allocation %d",
				s.Algorithm, t, len(s.Hosts[t]), s.Alloc[t])
		}
		if sc != nil {
			sc.seenEpoch++
		} else {
			seen = make(map[int]bool, len(s.Hosts[t]))
		}
		for _, h := range s.Hosts[t] {
			if h < 0 || h >= clusterSize {
				return fmt.Errorf("sched %s: task %d uses host %d out of range", s.Algorithm, t, h)
			}
			if sc != nil {
				if sc.seenHost[h] == sc.seenEpoch {
					return fmt.Errorf("sched %s: task %d uses host %d twice", s.Algorithm, t, h)
				}
				sc.seenHost[h] = sc.seenEpoch
			} else {
				if seen[h] {
					return fmt.Errorf("sched %s: task %d uses host %d twice", s.Algorithm, t, h)
				}
				seen[h] = true
			}
		}
		if s.EstFinish[t] < s.EstStart[t] {
			return fmt.Errorf("sched %s: task %d finishes before it starts", s.Algorithm, t)
		}
		for _, p := range s.Graph.Task(t).Preds() {
			if s.EstStart[t] < s.EstFinish[p]-1e-9 {
				return fmt.Errorf("sched %s: task %d starts at %g before predecessor %d finishes at %g",
					s.Algorithm, t, s.EstStart[t], p, s.EstFinish[p])
			}
		}
	}
	// Processor exclusivity among time-overlapping tasks.
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if s.EstStart[a] >= s.EstFinish[b]-1e-9 || s.EstStart[b] >= s.EstFinish[a]-1e-9 {
				continue // disjoint in time
			}
			for _, ha := range s.Hosts[a] {
				for _, hb := range s.Hosts[b] {
					if ha == hb {
						return fmt.Errorf("sched %s: tasks %d and %d overlap on host %d",
							s.Algorithm, a, b, ha)
					}
				}
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the schedule sharing only the immutable
// Graph. Scratch-built schedules alias their scratch's buffers and are
// invalidated by the next build; Clone detaches one for retention.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{
		Algorithm: s.Algorithm,
		Model:     s.Model,
		Graph:     s.Graph,
		Alloc:     append([]int(nil), s.Alloc...),
		Hosts:     make([][]int, len(s.Hosts)),
		EstStart:  append([]float64(nil), s.EstStart...),
		EstFinish: append([]float64(nil), s.EstFinish...),
	}
	total := 0
	for _, hs := range s.Hosts {
		total += len(hs)
	}
	flat := make([]int, 0, total)
	for i, hs := range s.Hosts {
		off := len(flat)
		flat = append(flat, hs...)
		c.Hosts[i] = flat[off:len(flat):len(flat)]
	}
	return c
}

// Algorithm is the allocation phase of a two-phase scheduler.
type Algorithm interface {
	// Name identifies the algorithm ("CPA", "HCPA", "MCPA", ...).
	Name() string
	// Allocate returns the per-task processor counts for a cluster of
	// clusterSize processors under the given cost model.
	Allocate(g *dag.Graph, clusterSize int, cost dag.CostFunc) []int
}

// Build runs the full two-phase scheduler: the algorithm's allocation phase
// followed by the shared list-scheduling mapping phase.
func Build(algo Algorithm, g *dag.Graph, clusterSize int, cost dag.CostFunc, comm dag.CommFunc) (*Schedule, error) {
	if g.Len() == 0 {
		return nil, fmt.Errorf("sched %s: empty application", algo.Name())
	}
	if clusterSize < 1 {
		return nil, fmt.Errorf("sched %s: cluster size %d", algo.Name(), clusterSize)
	}
	alloc := algo.Allocate(g, clusterSize, cost)
	if len(alloc) != g.Len() {
		return nil, fmt.Errorf("sched %s: allocation has %d entries for %d tasks",
			algo.Name(), len(alloc), g.Len())
	}
	s := MapSchedule(g, alloc, clusterSize, cost, comm)
	s.Algorithm = algo.Name()
	if err := s.Validate(clusterSize); err != nil {
		return nil, err
	}
	return s, nil
}
