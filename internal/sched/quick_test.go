package sched_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/sched"
)

// This file property-tests the scheduler invariants across random DAGs via
// testing/quick: whatever application the generator produces, every
// algorithm must emit a schedule in which no processor is oversubscribed
// (time-overlapping tasks never share a host), precedence is respected
// (no task starts before its predecessors finish), and every allocation
// stays within [1, cluster size]. Schedule.Validate checks exactly these
// invariants plus the structural ones, and the paper's evaluation pipeline
// leans on them for every simulated and emulated execution.

// quickParams maps testing/quick's raw randomness onto the generator's
// parameter space: 1–24 tasks, the Table I widths and ratios plus edge
// values, small-to-paper matrix sizes.
func quickParams(seed int64, rawTasks, rawWidth, rawRatio, rawSize uint8) dag.GenParams {
	widths := []int{2, 3, 4, 8, 16}
	ratios := []float64{0, 0.25, 0.5, 0.75, 1}
	sizes := []int{64, 500, 2000, 3000}
	return dag.GenParams{
		Tasks:         1 + int(rawTasks)%24,
		InputMatrices: widths[int(rawWidth)%len(widths)],
		AddRatio:      ratios[int(rawRatio)%len(ratios)],
		N:             sizes[int(rawSize)%len(sizes)],
		Seed:          seed,
	}
}

// checkInvariants validates one schedule and re-asserts the three headline
// invariants explicitly, so a future weakening of Schedule.Validate cannot
// silently void the property.
func checkInvariants(t *testing.T, s *sched.Schedule, clusterSize int) bool {
	t.Helper()
	if err := s.Validate(clusterSize); err != nil {
		t.Logf("Validate: %v", err)
		return false
	}
	n := s.Graph.Len()
	for id := 0; id < n; id++ {
		if s.Alloc[id] < 1 || s.Alloc[id] > clusterSize {
			t.Logf("task %d allocated %d processors on a %d-node cluster", id, s.Alloc[id], clusterSize)
			return false
		}
		for _, p := range s.Graph.Task(id).Preds() {
			if s.EstStart[id] < s.EstFinish[p]-1e-9 {
				t.Logf("task %d starts before predecessor %d finishes", id, p)
				return false
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if s.EstStart[a] >= s.EstFinish[b]-1e-9 || s.EstStart[b] >= s.EstFinish[a]-1e-9 {
				continue
			}
			used := make(map[int]bool, len(s.Hosts[a]))
			for _, h := range s.Hosts[a] {
				used[h] = true
			}
			for _, h := range s.Hosts[b] {
				if used[h] {
					t.Logf("tasks %d and %d overlap in time on host %d", a, b, h)
					return false
				}
			}
		}
	}
	return true
}

// TestSchedulerInvariantsQuick sweeps random DAGs through the two-phase
// CPA/HCPA/MCPA builders and the one-phase M-HEFT builder under the
// analytic model on the paper's 32-node platform.
func TestSchedulerInvariantsQuick(t *testing.T) {
	c := platform.Bayreuth()
	model := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)

	prop := func(seed int64, rawTasks, rawWidth, rawRatio, rawSize uint8) bool {
		p := quickParams(seed, rawTasks, rawWidth, rawRatio, rawSize)
		g, err := dag.Generate(p)
		if err != nil {
			t.Logf("Generate(%+v): %v", p, err)
			return false
		}
		for _, algo := range []sched.Algorithm{sched.CPA{}, sched.HCPA{}, sched.MCPA{}} {
			s, err := sched.Build(algo, g, c.Nodes, cost, comm)
			if err != nil {
				t.Logf("%s on %s: %v", algo.Name(), p.Name(), err)
				return false
			}
			if !checkInvariants(t, s, c.Nodes) {
				t.Logf("%s violated an invariant on %s", algo.Name(), p.Name())
				return false
			}
		}
		s, err := sched.MHEFT{}.Build(g, c.Nodes, cost, comm)
		if err != nil {
			t.Logf("MHEFT on %s: %v", p.Name(), err)
			return false
		}
		if !checkInvariants(t, s, c.Nodes) {
			t.Logf("MHEFT violated an invariant on %s", p.Name())
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestHeteroSchedulerInvariantsQuick runs the same property on a two-speed
// heterogeneous platform through BuildHetero (M-HEFT excluded: it is a
// homogeneous-platform scheduler).
func TestHeteroSchedulerInvariantsQuick(t *testing.T) {
	base := platform.Bayreuth()
	powers := make([]float64, base.Nodes)
	for i := range powers {
		powers[i] = base.NodePower
		if i >= base.Nodes/2 {
			powers[i] = base.NodePower * 2
		}
	}
	c := platform.NewHeterogeneous("quick-hetero", powers, base.LinkBandwidth, base.LinkLatency)
	model := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)

	prop := func(seed int64, rawTasks, rawWidth, rawRatio, rawSize uint8) bool {
		p := quickParams(seed, rawTasks, rawWidth, rawRatio, rawSize)
		g, err := dag.Generate(p)
		if err != nil {
			t.Logf("Generate(%+v): %v", p, err)
			return false
		}
		for _, algo := range []sched.Algorithm{sched.CPA{}, sched.HCPA{}, sched.MCPA{}} {
			s, err := sched.BuildHetero(algo, g, c, cost, comm)
			if err != nil {
				t.Logf("%s on %s: %v", algo.Name(), p.Name(), err)
				return false
			}
			if !checkInvariants(t, s, c.Nodes) {
				t.Logf("%s violated an invariant on %s", algo.Name(), p.Name())
				return false
			}
			if best := s.EstMakespan(); math.IsNaN(best) || best <= 0 {
				t.Logf("%s on %s: estimated makespan %g", algo.Name(), p.Name(), best)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
