package sched

import (
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/platform"
)

// Heterogeneous scheduling support — the setting HCPA was created for [12].
// The CPA-family allocation phases stay unchanged: they reason on a
// *reference cluster* whose every node runs at the platform's reference
// speed (Cluster.NodePower), which is exactly HCPA's normalisation trick.
// Only the mapping phase needs to know real node speeds: a load-balanced
// 1-D kernel on a mixed processor set runs at its slowest node's pace, so
// the mapping must trade earlier availability against faster nodes.

// MapScheduleHetero is the heterogeneous mapping phase: list scheduling in
// decreasing bottom-level order, where each task evaluates two candidate
// processor sets — the earliest-available nodes and the fastest of the
// soon-available nodes — and keeps the earlier estimated finish. cost gives
// reference-speed execution times; real durations scale by
// reference/min-power of the chosen set.
func MapScheduleHetero(g *dag.Graph, alloc []int, c platform.Cluster, cost dag.CostFunc, comm dag.CommFunc) *Schedule {
	n := g.Len()
	s := &Schedule{
		Graph:     g,
		Alloc:     append([]int(nil), alloc...),
		Hosts:     make([][]int, n),
		EstStart:  make([]float64, n),
		EstFinish: make([]float64, n),
	}
	bl := g.BottomLevels(alloc, cost, comm)
	avail := make([]float64, c.Nodes)
	nPredsLeft := make([]int, n)
	for _, t := range g.Tasks {
		nPredsLeft[t.ID] = t.InDegree()
	}
	var ready []int
	ready = append(ready, g.Entries()...)

	type cand struct {
		hosts  []int
		start  float64
		finish float64
	}
	evaluate := func(task *dag.Task, hosts []int, k int) cand {
		procReady := 0.0
		for _, h := range hosts {
			if avail[h] > procReady {
				procReady = avail[h]
			}
		}
		dataReady := 0.0
		for _, p := range task.Preds() {
			t := s.EstFinish[p]
			if comm != nil {
				t += comm(g.Task(p), task, alloc[p], k)
			}
			if t > dataReady {
				dataReady = t
			}
		}
		start := procReady
		if dataReady > start {
			start = dataReady
		}
		slowdown := c.NodePower / c.MinPowerOf(hosts)
		return cand{hosts: hosts, start: start, finish: start + cost(task, k)*slowdown}
	}

	for count := 0; count < n; count++ {
		best := -1
		for _, id := range ready {
			if best < 0 || bl[id] > bl[best] || (bl[id] == bl[best] && id < best) {
				best = id
			}
		}
		if best < 0 {
			panic("sched: hetero mapping ran out of ready tasks")
		}
		for i, r := range ready {
			if r == best {
				ready = append(ready[:i], ready[i+1:]...)
				break
			}
		}
		task := g.Task(best)
		k := alloc[best]

		// Candidate A: earliest-available nodes (speed as tie-break).
		byAvail := hostOrder(c.Nodes, func(a, b int) bool {
			if avail[a] != avail[b] {
				return avail[a] < avail[b]
			}
			if c.PowerOf(a) != c.PowerOf(b) {
				return c.PowerOf(a) > c.PowerOf(b)
			}
			return a < b
		})
		candA := evaluate(task, sortedCopy(byAvail[:k]), k)

		// Candidate B: fastest nodes (availability as tie-break).
		byPower := hostOrder(c.Nodes, func(a, b int) bool {
			if c.PowerOf(a) != c.PowerOf(b) {
				return c.PowerOf(a) > c.PowerOf(b)
			}
			if avail[a] != avail[b] {
				return avail[a] < avail[b]
			}
			return a < b
		})
		candB := evaluate(task, sortedCopy(byPower[:k]), k)

		chosen := candA
		if candB.finish < candA.finish-1e-12 {
			chosen = candB
		}
		s.Hosts[best] = chosen.hosts
		s.EstStart[best] = chosen.start
		s.EstFinish[best] = chosen.finish
		for _, h := range chosen.hosts {
			avail[h] = chosen.finish
		}
		for _, succ := range task.Succs() {
			nPredsLeft[succ]--
			if nPredsLeft[succ] == 0 {
				ready = append(ready, succ)
			}
		}
	}
	return s
}

func hostOrder(n int, less func(a, b int) bool) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return less(order[a], order[b]) })
	return order
}

func sortedCopy(hosts []int) []int {
	out := append([]int(nil), hosts...)
	sort.Ints(out)
	return out
}

// BuildHetero runs a CPA-family allocation phase against the reference
// cluster and maps the result onto the heterogeneous platform.
func BuildHetero(algo Algorithm, g *dag.Graph, c platform.Cluster, cost dag.CostFunc, comm dag.CommFunc) (*Schedule, error) {
	if g.Len() == 0 {
		return nil, fmt.Errorf("sched %s: empty application", algo.Name())
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	alloc := algo.Allocate(g, c.Nodes, cost)
	if len(alloc) != g.Len() {
		return nil, fmt.Errorf("sched %s: allocation has %d entries for %d tasks",
			algo.Name(), len(alloc), g.Len())
	}
	s := MapScheduleHetero(g, alloc, c, cost, comm)
	s.Algorithm = algo.Name()
	if err := s.Validate(c.Nodes); err != nil {
		return nil, err
	}
	return s, nil
}
