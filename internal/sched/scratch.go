package sched

import (
	"fmt"
	"slices"

	"repro/internal/dag"
)

// Scratch is the allocation-free scheduling path: it owns every buffer the
// CPA-family allocation loops, the M-HEFT one-phase scheduler, the shared
// mapping phase and schedule validation need, so repeated builds — the
// robustness engine's Monte Carlo trials, campaign cells, service requests —
// reuse storage instead of allocating it per schedule (the internal/simgrid
// solver pattern, one layer up).
//
// A Scratch additionally memoizes the bound cost function per (task, p):
// CPA-family allocation loops evaluate the same configurations thousands of
// times per build, and perturbed-model costs (exp/log/cos per call) dominate
// the trial loop's profile. Memoization is transparent because cost models
// are pure functions; every schedule a Scratch builds is bit-identical to
// the one the allocating Build/MHEFT.Build path produces.
//
// Usage: Bind once per (graph, cluster size, cost model) context, then Build
// any number of algorithms against it — the memo persists across builds of
// the same binding. The returned schedule aliases the scratch's buffers and
// is invalidated by the next Build; callers that retain schedules must
// Clone them. A Scratch is not safe for concurrent use; pool one per worker.
type Scratch struct {
	g    *dag.Graph
	p    int // cluster size
	cost dag.CostFunc

	// cost memo, epoch-stamped so rebinding is O(1).
	epoch    uint64
	memoVal  []float64
	memoEp   []uint64
	memoCost dag.CostFunc // bound method value, created once

	// per-graph caches (graphs are immutable once built).
	cachedG *dag.Graph
	topo    []int
	entries []int
	levels  []int
	width   []int

	// allocation phase
	alloc []int
	bl    []float64
	cp    []int

	// mapping phase
	avail      []float64
	nPredsLeft []int
	ready      []int
	hostsAt    []hostAvail
	hostsFlat  []int

	// validation
	seenHost  []uint64
	seenEpoch uint64

	// output schedule, reused across builds
	out Schedule
}

type hostAvail struct {
	host int
	at   float64
}

// NewScratch returns an empty scratch ready for Bind.
func NewScratch() *Scratch {
	sc := &Scratch{}
	sc.memoCost = sc.lookupCost
	return sc
}

// Bind sets the scheduling context. The cost memo is invalidated; per-graph
// analyses (topological order, entries, precedence levels) are recomputed
// only when the graph changes.
func (sc *Scratch) Bind(g *dag.Graph, clusterSize int, cost dag.CostFunc) {
	sc.g, sc.p, sc.cost = g, clusterSize, cost
	sc.epoch++
	need := g.Len() * clusterSize
	if cap(sc.memoVal) < need {
		sc.memoVal = make([]float64, need)
		sc.memoEp = make([]uint64, need)
	}
	sc.memoVal = sc.memoVal[:need]
	sc.memoEp = sc.memoEp[:need]
	if sc.cachedG != g {
		sc.cachedG = g
		topo, err := g.TopoOrder()
		if err != nil {
			panic(err) // same contract as dag's analyses on cyclic graphs
		}
		sc.topo = topo
		sc.entries = g.Entries()
		var nLevels int
		sc.levels, nLevels = g.Levels()
		if cap(sc.width) < nLevels {
			sc.width = make([]int, nLevels)
		}
		sc.width = sc.width[:nLevels]
		for i := range sc.width {
			sc.width[i] = 0
		}
		for _, l := range sc.levels {
			sc.width[l]++
		}
	}
}

// lookupCost is the memoized cost function bound at construction time (a
// method value, so Build paths can pass it around without allocating a
// closure per build).
func (sc *Scratch) lookupCost(t *dag.Task, p int) float64 {
	idx := t.ID*sc.p + p - 1
	if sc.memoEp[idx] == sc.epoch {
		return sc.memoVal[idx]
	}
	v := sc.cost(t, p)
	sc.memoVal[idx] = v
	sc.memoEp[idx] = sc.epoch
	return v
}

// Cost returns the scratch's memoized view of the bound cost function.
func (sc *Scratch) Cost() dag.CostFunc { return sc.memoCost }

// Build runs a CPA-family (or baseline) allocation phase plus the shared
// mapping phase against the bound context, entirely in scratch storage. The
// returned schedule aliases the scratch and is invalidated by the next
// Build/BuildMHEFT; Clone it to retain it.
func (sc *Scratch) Build(algo Algorithm, comm dag.CommFunc) (*Schedule, error) {
	if sc.g == nil {
		return nil, fmt.Errorf("sched: scratch build before Bind")
	}
	if sc.g.Len() == 0 {
		return nil, fmt.Errorf("sched %s: empty application", algo.Name())
	}
	if sc.p < 1 {
		return nil, fmt.Errorf("sched %s: cluster size %d", algo.Name(), sc.p)
	}
	alloc := sc.allocate(algo)
	if len(alloc) != sc.g.Len() {
		return nil, fmt.Errorf("sched %s: allocation has %d entries for %d tasks",
			algo.Name(), len(alloc), sc.g.Len())
	}
	s := sc.mapInto(alloc, comm)
	s.Algorithm = algo.Name()
	if err := s.validate(sc.p, sc); err != nil {
		return nil, err
	}
	return s, nil
}

// allocate dispatches the allocation phase. The CPA family and the baselines
// run scratch-native (no closures, no fresh slices); unknown algorithms fall
// back to their own Allocate with the memoized cost.
func (sc *Scratch) allocate(algo Algorithm) []int {
	n := sc.g.Len()
	if cap(sc.alloc) < n {
		sc.alloc = make([]int, n)
	}
	alloc := sc.alloc[:n]
	switch a := algo.(type) {
	case CPA:
		return sc.cpaLoop(growNone, 0)
	case HCPA:
		floor := a.MinEfficiency
		if floor <= 0 {
			floor = DefaultMinEfficiency
		}
		return sc.cpaLoop(growHCPA, floor)
	case MCPA:
		return sc.cpaLoop(growMCPA, 0)
	case Sequential:
		for i := range alloc {
			alloc[i] = 1
		}
		return alloc
	case DataParallel:
		for i := range alloc {
			alloc[i] = sc.p
		}
		return alloc
	case Fixed:
		p := a.P
		if p < 1 {
			p = 1
		}
		if p > sc.p {
			p = sc.p
		}
		for i := range alloc {
			alloc[i] = p
		}
		return alloc
	default:
		return algo.Allocate(sc.g, sc.p, sc.memoCost)
	}
}

// growMode selects the CPA-family growth constraint without a per-build
// closure.
type growMode int

const (
	growNone growMode = iota
	growHCPA
	growMCPA
)

// cpaLoop is cpaLoop (cpa.go) in scratch storage. Beyond buffer reuse it
// computes the bottom levels once per iteration and derives both the
// critical-path length and the critical path from them — CriticalPathLength
// and CriticalPath recompute the identical vector today, so the results are
// bit-identical.
func (sc *Scratch) cpaLoop(mode growMode, floor float64) []int {
	g, clusterSize, cost := sc.g, sc.p, sc.memoCost
	n := g.Len()
	alloc := sc.alloc[:n]
	for i := range alloc {
		alloc[i] = 1
	}
	if n == 0 {
		return alloc
	}
	maxIter := n * clusterSize
	for iter := 0; iter < maxIter; iter++ {
		bl := sc.bottomLevels(alloc, nil)
		tcp := 0.0
		for _, v := range bl {
			if v > tcp {
				tcp = v
			}
		}
		ta := 0.0
		for _, t := range g.Tasks {
			ta += cost(t, alloc[t.ID]) * float64(alloc[t.ID])
		}
		ta /= float64(clusterSize)
		if tcp <= ta {
			break
		}
		cp := sc.criticalPath(bl)

		best, bestGain := -1, 0.0
		for _, id := range cp {
			a := alloc[id]
			if a >= clusterSize {
				continue
			}
			task := g.Task(id)
			switch mode {
			case growHCPA:
				p := alloc[task.ID] + 1
				t1 := cost(task, 1)
				tp := cost(task, p)
				if tp <= 0 {
					continue
				}
				if t1/(float64(p)*tp) < floor {
					continue
				}
			case growMCPA:
				l := sc.levels[task.ID]
				cap := clusterSize / sc.width[l]
				if cap < 1 {
					cap = 1
				}
				if alloc[task.ID] >= cap {
					continue
				}
				total := 0
				for _, other := range g.Tasks {
					if sc.levels[other.ID] == l {
						total += alloc[other.ID]
					}
				}
				if total >= clusterSize {
					continue
				}
			}
			gain := cost(task, a)/float64(a) - cost(task, a+1)/float64(a+1)
			if gain > bestGain || (gain == bestGain && best >= 0 && id < best) {
				if gain > 0 {
					best, bestGain = id, gain
				}
			}
		}
		if best < 0 {
			break
		}
		alloc[best]++
	}
	return alloc
}

// bottomLevels is dag.BottomLevels over the cached topological order, writing
// into the scratch vector.
func (sc *Scratch) bottomLevels(alloc []int, comm dag.CommFunc) []float64 {
	g, cost := sc.g, sc.memoCost
	n := len(g.Tasks)
	if cap(sc.bl) < n {
		sc.bl = make([]float64, n)
	}
	bl := sc.bl[:n]
	order := sc.topo
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		t := g.Tasks[id]
		best := 0.0
		for _, s := range t.Succs() {
			v := bl[s]
			if comm != nil {
				v += comm(t, g.Tasks[s], alloc[id], alloc[s])
			}
			if v > best {
				best = v
			}
		}
		bl[id] = cost(t, alloc[id]) + best
	}
	return bl
}

// criticalPath follows dag.CriticalPath's walk over an already-computed
// bottom-level vector (comm == nil, the CPA-family case).
func (sc *Scratch) criticalPath(bl []float64) []int {
	g := sc.g
	if len(g.Tasks) == 0 {
		return nil
	}
	start, best := -1, -1.0
	for _, id := range sc.entries {
		if bl[id] > best {
			start, best = id, bl[id]
		}
	}
	path := sc.cp[:0]
	cur := start
	for cur >= 0 {
		path = append(path, cur)
		next, nbest := -1, -1.0
		for _, s := range g.Tasks[cur].Succs() {
			v := bl[s]
			if v > nbest || (v == nbest && next >= 0 && s < next) {
				next, nbest = s, v
			}
		}
		cur = next
	}
	sc.cp = path
	return path
}

// mapInto is MapSchedule (mapping.go) in scratch storage: identical pick
// order, identical comparator totals, identical arithmetic — only the
// allocations differ (there are none).
func (sc *Scratch) mapInto(alloc []int, comm dag.CommFunc) *Schedule {
	g, clusterSize := sc.g, sc.p
	cost := sc.memoCost
	n := g.Len()
	s := sc.prepareOut(n)
	s.Alloc = append(s.Alloc[:0], alloc...)
	alloc = s.Alloc // the scratch alloc buffer stays untouched below

	bl := sc.bottomLevels(alloc, comm)

	avail := sc.resizeAvail(clusterSize)
	nPredsLeft := sc.resizeNPreds(n)
	for _, t := range g.Tasks {
		nPredsLeft[t.ID] = t.InDegree()
	}
	ready := append(sc.ready[:0], sc.entries...)

	total := 0
	for _, k := range alloc {
		total += k
	}
	if cap(sc.hostsFlat) < total {
		sc.hostsFlat = make([]int, total)
	}
	flat := sc.hostsFlat[:total]
	next := 0

	hs := sc.resizeHostsAt(clusterSize)
	for count := 0; count < n; count++ {
		best := -1
		for _, id := range ready {
			if best < 0 || bl[id] > bl[best] || (bl[id] == bl[best] && id < best) {
				best = id
			}
		}
		if best < 0 {
			panic("sched: mapping ran out of ready tasks before mapping everything")
		}
		id := best
		for i, r := range ready {
			if r == id {
				ready = append(ready[:i], ready[i+1:]...)
				break
			}
		}
		task := g.Task(id)
		k := alloc[id]

		for h := range hs {
			hs[h] = hostAvail{host: h, at: avail[h]}
		}
		slices.SortFunc(hs, cmpHostAvail)
		chosen := flat[next : next+k : next+k]
		next += k
		procReady := 0.0
		for i := 0; i < k; i++ {
			chosen[i] = hs[i].host
			if hs[i].at > procReady {
				procReady = hs[i].at
			}
		}
		slices.Sort(chosen)

		dataReady := 0.0
		for _, p := range task.Preds() {
			t := s.EstFinish[p]
			if comm != nil {
				t += comm(g.Task(p), task, alloc[p], k)
			}
			if t > dataReady {
				dataReady = t
			}
		}

		start := procReady
		if dataReady > start {
			start = dataReady
		}
		finish := start + cost(task, k)
		s.Hosts[id] = chosen
		s.EstStart[id] = start
		s.EstFinish[id] = finish
		for _, h := range chosen {
			avail[h] = finish
		}

		for _, succ := range task.Succs() {
			nPredsLeft[succ]--
			if nPredsLeft[succ] == 0 {
				ready = append(ready, succ)
			}
		}
	}
	sc.ready = ready[:0]
	return s
}

// cmpHostAvail is MapSchedule's host comparator: availability, then host ID —
// a strict total order (hosts are distinct), so any correct sort yields the
// identical permutation sort.Slice produced.
func cmpHostAvail(a, b hostAvail) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	return a.host - b.host
}

// BuildMHEFT runs the one-phase M-HEFT scheduler (mheft.go) against the
// bound context in scratch storage. Same aliasing rules as Build.
func (sc *Scratch) BuildMHEFT(m MHEFT, comm dag.CommFunc) (*Schedule, error) {
	if sc.g == nil {
		return nil, fmt.Errorf("sched: scratch build before Bind")
	}
	g, clusterSize := sc.g, sc.p
	cost := sc.memoCost
	n := g.Len()
	if n == 0 {
		return nil, fmt.Errorf("sched %s: empty application", m.Name())
	}
	if clusterSize < 1 {
		return nil, fmt.Errorf("sched %s: cluster size %d", m.Name(), clusterSize)
	}
	s := sc.prepareOut(n)
	s.Algorithm = m.Name()
	if cap(s.Alloc) < n {
		s.Alloc = make([]int, n)
	}
	s.Alloc = s.Alloc[:n]
	for i := range s.Alloc {
		s.Alloc[i] = 0
	}
	allocCap := m.AllocCap
	if allocCap <= 0 || allocCap > clusterSize {
		allocCap = clusterSize
	}

	// Priorities: bottom levels at unit allocation (the scratch alloc buffer
	// serves as the all-ones vector).
	if cap(sc.alloc) < n {
		sc.alloc = make([]int, n)
	}
	ones := sc.alloc[:n]
	for i := range ones {
		ones[i] = 1
	}
	bl := sc.bottomLevels(ones, comm)

	avail := sc.resizeAvail(clusterSize)
	nPredsLeft := sc.resizeNPreds(n)
	for _, t := range g.Tasks {
		nPredsLeft[t.ID] = t.InDegree()
	}
	ready := append(sc.ready[:0], sc.entries...)

	// Host windows: M-HEFT allocations are not known up front, so the flat
	// backing is sized for the worst case once.
	if worst := n * allocCap; cap(sc.hostsFlat) < worst {
		sc.hostsFlat = make([]int, worst)
	}
	flatNext := 0

	hs := sc.resizeHostsAt(clusterSize)
	for mapped := 0; mapped < n; mapped++ {
		best := -1
		for _, id := range ready {
			if best < 0 || bl[id] > bl[best] || (bl[id] == bl[best] && id < best) {
				best = id
			}
		}
		if best < 0 {
			panic("sched: MHEFT ran out of ready tasks")
		}
		for i, r := range ready {
			if r == best {
				ready = append(ready[:i], ready[i+1:]...)
				break
			}
		}
		task := g.Task(best)

		for h := range hs {
			hs[h] = hostAvail{host: h, at: avail[h]}
		}
		slices.SortFunc(hs, cmpHostAvail)

		bestP, bestStart, bestFinish := 0, 0.0, 0.0
		for p := 1; p <= allocCap; p++ {
			procReady := hs[p-1].at
			dataReady := 0.0
			for _, pr := range task.Preds() {
				t := s.EstFinish[pr]
				if comm != nil {
					t += comm(g.Task(pr), task, s.Alloc[pr], p)
				}
				if t > dataReady {
					dataReady = t
				}
			}
			start := procReady
			if dataReady > start {
				start = dataReady
			}
			finish := start + cost(task, p)
			if bestP == 0 || finish < bestFinish-1e-12 {
				bestP, bestStart, bestFinish = p, start, finish
			}
		}

		chosen := sc.hostsFlat[flatNext : flatNext+bestP : flatNext+bestP]
		flatNext += bestP
		for i := 0; i < bestP; i++ {
			chosen[i] = hs[i].host
		}
		slices.Sort(chosen)
		s.Alloc[best] = bestP
		s.Hosts[best] = chosen
		s.EstStart[best] = bestStart
		s.EstFinish[best] = bestFinish
		for _, h := range chosen {
			avail[h] = bestFinish
		}
		for _, succ := range task.Succs() {
			nPredsLeft[succ]--
			if nPredsLeft[succ] == 0 {
				ready = append(ready, succ)
			}
		}
	}
	sc.ready = ready[:0]
	if err := s.validate(clusterSize, sc); err != nil {
		return nil, err
	}
	return s, nil
}

// prepareOut readies the reusable output schedule for n tasks.
func (sc *Scratch) prepareOut(n int) *Schedule {
	s := &sc.out
	s.Algorithm, s.Model = "", ""
	s.Graph = sc.g
	if cap(s.Hosts) < n {
		s.Hosts = make([][]int, n)
	}
	s.Hosts = s.Hosts[:n]
	for i := range s.Hosts {
		s.Hosts[i] = nil
	}
	if cap(s.EstStart) < n {
		s.EstStart = make([]float64, n)
		s.EstFinish = make([]float64, n)
	}
	s.EstStart = s.EstStart[:n]
	s.EstFinish = s.EstFinish[:n]
	for i := 0; i < n; i++ {
		s.EstStart[i] = 0
		s.EstFinish[i] = 0
	}
	return s
}

func (sc *Scratch) resizeAvail(clusterSize int) []float64 {
	if cap(sc.avail) < clusterSize {
		sc.avail = make([]float64, clusterSize)
	}
	avail := sc.avail[:clusterSize]
	for i := range avail {
		avail[i] = 0
	}
	return avail
}

func (sc *Scratch) resizeNPreds(n int) []int {
	if cap(sc.nPredsLeft) < n {
		sc.nPredsLeft = make([]int, n)
	}
	return sc.nPredsLeft[:n]
}

func (sc *Scratch) resizeHostsAt(clusterSize int) []hostAvail {
	if cap(sc.hostsAt) < clusterSize {
		sc.hostsAt = make([]hostAvail, clusterSize)
	}
	return sc.hostsAt[:clusterSize]
}
