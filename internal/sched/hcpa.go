package sched

import "repro/internal/dag"

// HCPA is the Heterogeneous-CPA extension of N'takpé, Suter and Casanova
// (§II-A, [12]). On the homogeneous cluster of the case study its essential
// difference from CPA is the remedy against over-allocation: a task may only
// receive an additional processor while its parallel efficiency
//
//	e(τ, p) = t(τ, 1) / (p · t(τ, p))
//
// stays at or above MinEfficiency. This keeps allocations in the regime
// where extra processors still pay for themselves, which shrinks the large
// allocations plain CPA produces on wide DAGs (and with them, in the real
// environment, the per-processor startup and redistribution overheads the
// analytic model does not see).
type HCPA struct {
	// MinEfficiency is the efficiency floor; 0 means DefaultMinEfficiency.
	MinEfficiency float64
}

// DefaultMinEfficiency is the 50% efficiency floor used when HCPA is
// constructed with its zero value.
const DefaultMinEfficiency = 0.5

// Name implements Algorithm.
func (HCPA) Name() string { return "HCPA" }

// Allocate implements Algorithm.
func (h HCPA) Allocate(g *dag.Graph, clusterSize int, cost dag.CostFunc) []int {
	floor := h.MinEfficiency
	if floor <= 0 {
		floor = DefaultMinEfficiency
	}
	mayGrow := func(g *dag.Graph, alloc []int, task *dag.Task) bool {
		p := alloc[task.ID] + 1
		t1 := cost(task, 1)
		tp := cost(task, p)
		if tp <= 0 {
			return false
		}
		return t1/(float64(p)*tp) >= floor
	}
	return cpaLoop(g, clusterSize, cost, mayGrow)
}
