package sched

import "repro/internal/dag"

// Sequential is a baseline allocation: every task runs on a single
// processor, exploiting only the DAG's task parallelism. Useful as a lower
// bound on allocation-induced overheads and in ablation benches.
type Sequential struct{}

// Name implements Algorithm.
func (Sequential) Name() string { return "SEQ" }

// Allocate implements Algorithm.
func (Sequential) Allocate(g *dag.Graph, clusterSize int, cost dag.CostFunc) []int {
	alloc := make([]int, g.Len())
	for i := range alloc {
		alloc[i] = 1
	}
	return alloc
}

// DataParallel is the opposite baseline: every task gets the whole cluster,
// exploiting only data parallelism (tasks then serialize). This is the
// regime where task startup and redistribution overheads hurt most.
type DataParallel struct{}

// Name implements Algorithm.
func (DataParallel) Name() string { return "DATAPAR" }

// Allocate implements Algorithm.
func (DataParallel) Allocate(g *dag.Graph, clusterSize int, cost dag.CostFunc) []int {
	alloc := make([]int, g.Len())
	for i := range alloc {
		alloc[i] = clusterSize
	}
	return alloc
}

// Fixed is a baseline that allocates the same processor count to every task,
// clamped to the cluster size.
type Fixed struct {
	P int
}

// Name implements Algorithm.
func (f Fixed) Name() string { return "FIXED" }

// Allocate implements Algorithm.
func (f Fixed) Allocate(g *dag.Graph, clusterSize int, cost dag.CostFunc) []int {
	p := f.P
	if p < 1 {
		p = 1
	}
	if p > clusterSize {
		p = clusterSize
	}
	alloc := make([]int, g.Len())
	for i := range alloc {
		alloc[i] = p
	}
	return alloc
}
