package sched

import "repro/internal/dag"

// MCPA is the Modified-CPA algorithm of Bansal, Kumar and Singh (§II-A,
// [5], "An Improved Two-Step Algorithm for Task and Data Parallel
// Scheduling"). Its remedy against CPA's over-allocation is precedence-
// level awareness: the w tasks of one precedence level can run
// concurrently, so they must share the N processors. MCPA therefore caps
// every task's allocation at N divided by its level's width (and refuses
// further growth once the level's total allocation reaches N), which stops
// CPA from giving a task more processors than its level's task parallelism
// can ever exploit simultaneously.
type MCPA struct{}

// Name implements Algorithm.
func (MCPA) Name() string { return "MCPA" }

// Allocate implements Algorithm.
func (MCPA) Allocate(g *dag.Graph, clusterSize int, cost dag.CostFunc) []int {
	levels, nLevels := g.Levels()
	width := make([]int, nLevels)
	for _, l := range levels {
		width[l]++
	}
	mayGrow := func(g *dag.Graph, alloc []int, task *dag.Task) bool {
		l := levels[task.ID]
		cap := clusterSize / width[l]
		if cap < 1 {
			cap = 1
		}
		if alloc[task.ID] >= cap {
			return false
		}
		total := 0
		for _, other := range g.Tasks {
			if levels[other.ID] == l {
				total += alloc[other.ID]
			}
		}
		return total < clusterSize
	}
	return cpaLoop(g, clusterSize, cost, mayGrow)
}
