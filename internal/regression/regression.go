// Package regression provides the least-squares machinery behind the paper's
// empirical simulation models (§VII, Table II): two-parameter fits of the
// forms y = a·φ(x) + b for basis functions φ(x) = x (linear overheads),
// φ(x) = 1/p and φ(x) = 1/(2p) (Amdahl-like task execution times), piecewise
// models split at a processor count (the paper switches from 1/p to linear at
// p = 16 where overheads start dominating), goodness-of-fit statistics, and
// robust outlier detection (the p = 8 and p = 16 outliers of Figure 6).
package regression

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Basis is a one-dimensional basis function for a two-parameter model
// y = a·φ(x) + b.
type Basis func(x float64) float64

// Predefined basis functions used in Table II.
var (
	// Linear is φ(x) = x, for y = a·p + b (large-p task times, startup and
	// redistribution overheads).
	Linear Basis = func(x float64) float64 { return x }
	// Inverse is φ(x) = 1/x, for y = a/p + b (parallel task times).
	Inverse Basis = func(x float64) float64 { return 1 / x }
	// HalfInverse is φ(x) = 1/(2x); Table II fits the n = 2000
	// multiplication with a·1/(2p) + b.
	HalfInverse Basis = func(x float64) float64 { return 1 / (2 * x) }
)

// Fit is a fitted two-parameter model y = A·φ(x) + B.
type Fit struct {
	A, B float64
	// R2 is the coefficient of determination on the fitting data.
	R2    float64
	basis Basis
}

// Predict evaluates the fitted model.
func (f Fit) Predict(x float64) float64 { return f.A*f.basis(x) + f.B }

// String formats the fit compactly.
func (f Fit) String() string { return fmt.Sprintf("a=%.4f b=%.4f (R²=%.4f)", f.A, f.B, f.R2) }

// ErrInsufficientData is returned when fewer than two distinct points are
// available for a two-parameter fit.
var ErrInsufficientData = errors.New("regression: need at least two distinct points")

// FitBasis computes the least-squares fit of y = a·φ(x) + b.
func FitBasis(xs, ys []float64, basis Basis) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("regression: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, ErrInsufficientData
	}
	n := float64(len(xs))
	var su, sy, suu, suy float64
	for i := range xs {
		u := basis(xs[i])
		su += u
		sy += ys[i]
		suu += u * u
		suy += u * ys[i]
	}
	den := n*suu - su*su
	if math.Abs(den) < 1e-300 {
		return Fit{}, ErrInsufficientData
	}
	a := (n*suy - su*sy) / den
	b := (sy - a*su) / n

	// R² on the fitting data.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := a*basis(xs[i]) + b
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{A: a, B: b, R2: r2, basis: basis}, nil
}

// MustFit is FitBasis but panics on error, for statically known-good inputs.
func MustFit(xs, ys []float64, basis Basis) Fit {
	f, err := FitBasis(xs, ys, basis)
	if err != nil {
		panic(err)
	}
	return f
}

// Piecewise is the paper's two-regime task-time model: an Amdahl-like fit
// for p ≤ Split and a linear fit for p > Split (Table II uses Split = 16,
// with low-regime points {2,4,7,15} and high-regime points {15,24,31}).
type Piecewise struct {
	Low   Fit
	High  Fit
	Split float64
}

// Predict evaluates the piecewise model.
func (p Piecewise) Predict(x float64) float64 {
	if x <= p.Split {
		return p.Low.Predict(x)
	}
	return p.High.Predict(x)
}

// FitPiecewise fits the low regime on points with x ≤ split and the high
// regime on points with x ≥ highLo (the regimes may share boundary points,
// as Table II shares p = 15).
func FitPiecewise(xs, ys []float64, lowBasis Basis, split, highLo float64) (Piecewise, error) {
	var lx, ly, hx, hy []float64
	for i := range xs {
		if xs[i] <= split {
			lx = append(lx, xs[i])
			ly = append(ly, ys[i])
		}
		if xs[i] >= highLo {
			hx = append(hx, xs[i])
			hy = append(hy, ys[i])
		}
	}
	low, err := FitBasis(lx, ly, lowBasis)
	if err != nil {
		return Piecewise{}, fmt.Errorf("regression: low regime: %w", err)
	}
	high, err := FitBasis(hx, hy, Linear)
	if err != nil {
		return Piecewise{}, fmt.Errorf("regression: high regime: %w", err)
	}
	return Piecewise{Low: low, High: high, Split: split}, nil
}

// RelativeErrors returns |pred−actual|/actual for each point.
func RelativeErrors(pred, actual []float64) []float64 {
	out := make([]float64, len(actual))
	for i := range actual {
		if actual[i] == 0 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
	}
	return out
}

// MeanAbsPctError returns the mean of RelativeErrors in percent.
func MeanAbsPctError(pred, actual []float64) float64 {
	errs := RelativeErrors(pred, actual)
	sum := 0.0
	for _, e := range errs {
		sum += e
	}
	return 100 * sum / float64(len(errs))
}

// DetectOutliers flags points that do not belong to the y = a·φ(x)+b trend,
// iteratively: fit on the kept points, compute residuals, and if the worst
// absolute residual exceeds k times the median absolute residual of the
// rest, drop that point and refit. Flagged indices are returned in ascending
// order. With fewer than four points nothing is flagged; at most a third of
// the points can be dropped, so the fit always retains a majority.
func DetectOutliers(xs, ys []float64, basis Basis, k float64) []int {
	if len(xs) < 4 {
		return nil
	}
	kept := make([]int, len(xs))
	for i := range kept {
		kept[i] = i
	}
	var dropped []int
	maxDrop := len(xs) / 3
	for len(dropped) < maxDrop {
		kx := make([]float64, len(kept))
		ky := make([]float64, len(kept))
		for i, idx := range kept {
			kx[i] = xs[idx]
			ky[i] = ys[idx]
		}
		fit, err := FitBasis(kx, ky, basis)
		if err != nil {
			break
		}
		worst, worstRes := -1, 0.0
		abs := make([]float64, 0, len(kept))
		for i, idx := range kept {
			r := math.Abs(ys[idx] - fit.Predict(xs[idx]))
			abs = append(abs, r)
			if r > worstRes {
				worst, worstRes = i, r
			}
		}
		if worst < 0 {
			break // all residuals are exactly zero
		}
		// Scale estimate excludes the candidate itself so one huge spike
		// cannot mask itself.
		rest := append([]float64(nil), abs[:worst]...)
		rest = append(rest, abs[worst+1:]...)
		mad := median(rest)
		if mad <= 0 || worstRes <= k*mad {
			break
		}
		dropped = append(dropped, kept[worst])
		kept = append(kept[:worst], kept[worst+1:]...)
	}
	sort.Ints(dropped)
	return dropped
}

// DetectRelativeOutliers is DetectOutliers with residuals measured relative
// to the fitted prediction, (y − ŷ)/ŷ. Multiplicative spikes — a kernel
// suddenly running 35% slower at one processor count, as at the paper's
// p = 8 — stand out on this scale even where the fitted curve is small.
func DetectRelativeOutliers(xs, ys []float64, basis Basis, k float64) []int {
	if len(xs) < 4 {
		return nil
	}
	kept := make([]int, len(xs))
	for i := range kept {
		kept[i] = i
	}
	var dropped []int
	maxDrop := len(xs) / 3
	for len(dropped) < maxDrop {
		kx := make([]float64, len(kept))
		ky := make([]float64, len(kept))
		for i, idx := range kept {
			kx[i] = xs[idx]
			ky[i] = ys[idx]
		}
		fit, err := FitBasis(kx, ky, basis)
		if err != nil {
			break
		}
		worst, worstRes := -1, 0.0
		abs := make([]float64, 0, len(kept))
		for i, idx := range kept {
			pred := fit.Predict(xs[idx])
			if pred == 0 {
				abs = append(abs, 0)
				continue
			}
			r := math.Abs((ys[idx] - pred) / pred)
			abs = append(abs, r)
			if r > worstRes {
				worst, worstRes = i, r
			}
		}
		if worst < 0 {
			break
		}
		rest := append([]float64(nil), abs[:worst]...)
		rest = append(rest, abs[worst+1:]...)
		mad := median(rest)
		if mad <= 0 || worstRes <= k*mad {
			break
		}
		dropped = append(dropped, kept[worst])
		kept = append(kept[:worst], kept[worst+1:]...)
	}
	sort.Ints(dropped)
	return dropped
}

// RemoveIndices returns copies of xs and ys without the given indices.
func RemoveIndices(xs, ys []float64, drop []int) ([]float64, []float64) {
	skip := make(map[int]bool, len(drop))
	for _, i := range drop {
		skip[i] = true
	}
	var ox, oy []float64
	for i := range xs {
		if !skip[i] {
			ox = append(ox, xs[i])
			oy = append(oy, ys[i])
		}
	}
	return ox, oy
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}
