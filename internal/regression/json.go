package regression

import (
	"encoding/json"
	"fmt"
	"reflect"
)

// The wire names of the predefined basis functions. Fits are serialized by
// the durable model cache (internal/store), so a Fit built on one daemon can
// be reloaded by another; only the predefined Table II bases round-trip —
// a Fit over a custom basis fails to marshal rather than silently changing
// shape on reload.
const (
	basisLinear      = "linear"
	basisInverse     = "inverse"
	basisHalfInverse = "half-inverse"
)

// nameOfBasis maps a predefined basis back to its wire name by function
// identity.
func nameOfBasis(b Basis) (string, error) {
	switch reflect.ValueOf(b).Pointer() {
	case reflect.ValueOf(Linear).Pointer():
		return basisLinear, nil
	case reflect.ValueOf(Inverse).Pointer():
		return basisInverse, nil
	case reflect.ValueOf(HalfInverse).Pointer():
		return basisHalfInverse, nil
	}
	return "", fmt.Errorf("regression: fit uses a basis with no wire name")
}

// basisByName resolves a wire name to its predefined basis.
func basisByName(name string) (Basis, error) {
	switch name {
	case basisLinear:
		return Linear, nil
	case basisInverse:
		return Inverse, nil
	case basisHalfInverse:
		return HalfInverse, nil
	}
	return nil, fmt.Errorf("regression: unknown basis %q", name)
}

// fitJSON is the wire form of Fit.
type fitJSON struct {
	A     float64 `json:"a"`
	B     float64 `json:"b"`
	R2    float64 `json:"r2"`
	Basis string  `json:"basis"`
}

// MarshalJSON implements json.Marshaler. Only fits over the predefined
// bases (Linear, Inverse, HalfInverse) can be serialized.
func (f Fit) MarshalJSON() ([]byte, error) {
	if f.basis == nil {
		return nil, fmt.Errorf("regression: cannot marshal a zero Fit")
	}
	name, err := nameOfBasis(f.basis)
	if err != nil {
		return nil, err
	}
	return json.Marshal(fitJSON{A: f.A, B: f.B, R2: f.R2, Basis: name})
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Fit) UnmarshalJSON(data []byte) error {
	var w fitJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	basis, err := basisByName(w.Basis)
	if err != nil {
		return err
	}
	*f = Fit{A: w.A, B: w.B, R2: w.R2, basis: basis}
	return nil
}
