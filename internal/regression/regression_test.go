package regression

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 7.88*x + 108.58 // Table II redistribution startup
	}
	fit, err := FitBasis(xs, ys, Linear)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, fit.A, 7.88, 1e-9, "a")
	almost(t, fit.B, 108.58, 1e-9, "b")
	almost(t, fit.R2, 1, 1e-12, "R²")
}

func TestFitInverseExact(t *testing.T) {
	xs := []float64{2, 4, 7, 15, 24, 31}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 22.99/x + 0.03 // Table II addition n=2000
	}
	fit, err := FitBasis(xs, ys, Inverse)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, fit.A, 22.99, 1e-9, "a")
	almost(t, fit.B, 0.03, 1e-9, "b")
}

func TestFitHalfInverseExact(t *testing.T) {
	xs := []float64{2, 4, 7, 15}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 239.44/(2*x) + 3.43 // Table II multiplication n=2000
	}
	fit, err := FitBasis(xs, ys, HalfInverse)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, fit.A, 239.44, 1e-9, "a")
	almost(t, fit.B, 3.43, 1e-9, "b")
}

func TestFitErrors(t *testing.T) {
	if _, err := FitBasis([]float64{1}, []float64{2}, Linear); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitBasis([]float64{1, 2}, []float64{2}, Linear); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitBasis([]float64{3, 3, 3}, []float64{1, 2, 3}, Linear); err == nil {
		t.Error("degenerate xs accepted")
	}
}

func TestFitNoisyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i + 1)
		ys[i] = 3*xs[i] + 10 + rng.NormFloat64()*0.01
	}
	fit, err := FitBasis(xs, ys, Linear)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, fit.A, 3, 0.01, "a")
	almost(t, fit.B, 10, 0.05, "b")
	if fit.R2 < 0.999 {
		t.Errorf("R² = %g, want > 0.999", fit.R2)
	}
}

func TestPiecewisePredictUsesRegimes(t *testing.T) {
	// Low: 100/p + 1; high: 0.5·p + 2; split at 16.
	xs := []float64{2, 4, 7, 15, 24, 31}
	ys := []float64{51, 26, 100.0/7 + 1, 100.0/15 + 1, 14, 17.5}
	pw, err := FitPiecewise(xs, ys, Inverse, 16, 20)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, pw.Predict(10), 11, 1e-6, "low-regime prediction")
	almost(t, pw.Predict(28), 16, 1e-6, "high-regime prediction")
}

func TestPiecewiseSharedBoundaryPoint(t *testing.T) {
	// Table II multiplication uses p={2,4,7,15} low and p={15,24,31} high:
	// point 15 belongs to both regimes.
	xs := []float64{2, 4, 7, 15, 24, 31}
	ys := []float64{10, 5, 3, 2, 3, 4}
	pw, err := FitPiecewise(xs, ys, Inverse, 15, 15)
	if err != nil {
		t.Fatal(err)
	}
	if pw.Low.A == 0 || pw.High.A == 0 {
		t.Error("regimes not fitted")
	}
}

func TestRelativeErrorsAndMAPE(t *testing.T) {
	pred := []float64{110, 90}
	actual := []float64{100, 100}
	errs := RelativeErrors(pred, actual)
	almost(t, errs[0], 0.1, 1e-12, "err0")
	almost(t, errs[1], 0.1, 1e-12, "err1")
	almost(t, MeanAbsPctError(pred, actual), 10, 1e-9, "MAPE")
}

func TestDetectOutliers(t *testing.T) {
	// A clean 1/p curve with a spike at p=8 and p=16 (the Figure 6 story).
	xs := []float64{1, 2, 4, 8, 12, 16, 24, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 120/x + 2
	}
	ys[3] *= 1.6 // p=8 outlier
	ys[5] *= 1.5 // p=16 outlier
	got := DetectOutliers(xs, ys, Inverse, 3)
	want := map[int]bool{3: true, 5: true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Errorf("outliers = %v, want indices of p=8 and p=16", got)
	}
}

func TestDetectOutliersCleanData(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 50/x + 1
	}
	if got := DetectOutliers(xs, ys, Inverse, 3); len(got) != 0 {
		t.Errorf("clean data flagged: %v", got)
	}
}

func TestDetectRelativeOutliers(t *testing.T) {
	// A multiplicative spike on a 1/p curve: small absolute residual at
	// large p, but a large relative one.
	xs := []float64{1, 2, 4, 8, 12, 16, 24, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 100/x + 1
	}
	ys[6] *= 1.8 // p=24: absolute bump is only ~4.2
	got := DetectRelativeOutliers(xs, ys, Inverse, 3)
	found := false
	for _, idx := range got {
		if idx == 6 {
			found = true
		}
	}
	if !found {
		t.Errorf("relative outliers = %v, want index 6 flagged", got)
	}
	if len(got) > 2 {
		t.Errorf("too many points flagged: %v", got)
	}
}

func TestDetectRelativeOutliersCleanAndShort(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 50/x + 2
	}
	if got := DetectRelativeOutliers(xs, ys, Inverse, 3); len(got) != 0 {
		t.Errorf("clean data flagged: %v", got)
	}
	if got := DetectRelativeOutliers(xs[:3], ys[:3], Inverse, 3); got != nil {
		t.Errorf("short input flagged: %v", got)
	}
}

func TestDetectOutliersShortInput(t *testing.T) {
	if got := DetectOutliers([]float64{1, 2, 3}, []float64{1, 2, 3}, Linear, 3); got != nil {
		t.Errorf("short input flagged: %v", got)
	}
}

func TestDetectOutliersCapsDrops(t *testing.T) {
	// At most a third of the points may be dropped, so the fit keeps a
	// majority even on pathological data.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{1, 100, 2, 200, 3, 300}
	got := DetectOutliers(xs, ys, Linear, 1)
	if len(got) > 2 {
		t.Errorf("dropped %d of 6 points: %v", len(got), got)
	}
}

func TestFitPiecewiseErrors(t *testing.T) {
	xs := []float64{2, 4, 24, 31}
	ys := []float64{10, 5, 3, 4}
	// Low regime has only one point below split=3 → error.
	if _, err := FitPiecewise(xs, ys, Inverse, 3, 20); err == nil {
		t.Error("under-determined low regime accepted")
	}
	// High regime empty → error.
	if _, err := FitPiecewise(xs, ys, Inverse, 31, 100); err == nil {
		t.Error("empty high regime accepted")
	}
}

func TestMustFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFit with bad input did not panic")
		}
	}()
	MustFit([]float64{1}, []float64{1}, Linear)
}

func TestFitString(t *testing.T) {
	fit := MustFit([]float64{1, 2}, []float64{3, 5}, Linear)
	if fit.String() == "" {
		t.Error("empty String()")
	}
}

func TestRemoveIndices(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	ox, oy := RemoveIndices(xs, ys, []int{1, 3})
	if len(ox) != 2 || ox[0] != 1 || ox[1] != 3 || oy[0] != 10 || oy[1] != 30 {
		t.Errorf("RemoveIndices = %v %v", ox, oy)
	}
}

// Property: least squares recovers exact coefficients from noiseless data
// for every basis, for arbitrary (a, b).
func TestFitExactRecoveryQuick(t *testing.T) {
	bases := []Basis{Linear, Inverse, HalfInverse}
	prop := func(aRaw, bRaw int16, which uint8) bool {
		a := float64(aRaw)/100 + 0.5
		b := float64(bRaw) / 100
		basis := bases[int(which)%len(bases)]
		xs := []float64{1, 2, 3, 5, 8, 13, 21}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a*basis(x) + b
		}
		fit, err := FitBasis(xs, ys, basis)
		if err != nil {
			return false
		}
		return math.Abs(fit.A-a) < 1e-6 && math.Abs(fit.B-b) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMedianEvenOdd(t *testing.T) {
	almost(t, median([]float64{3, 1, 2}), 2, 1e-12, "odd median")
	almost(t, median([]float64{4, 1, 2, 3}), 2.5, 1e-12, "even median")
	if !math.IsNaN(median(nil)) {
		t.Error("median(nil) should be NaN")
	}
}
