package regression

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestFitJSONRoundTrip(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for _, basis := range []struct {
		name string
		b    Basis
	}{
		{"linear", Linear},
		{"inverse", Inverse},
		{"half-inverse", HalfInverse},
	} {
		for i, x := range xs {
			ys[i] = 3*basis.b(x) + 0.25
		}
		fit := MustFit(xs, ys, basis.b)
		data, err := json.Marshal(fit)
		if err != nil {
			t.Fatalf("%s: marshal: %v", basis.name, err)
		}
		if !strings.Contains(string(data), `"basis":"`+basis.name+`"`) {
			t.Fatalf("%s: wire form %s lacks basis name", basis.name, data)
		}
		var back Fit
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", basis.name, err)
		}
		if back.A != fit.A || back.B != fit.B || back.R2 != fit.R2 {
			t.Fatalf("%s: coefficients changed: %+v vs %+v", basis.name, back, fit)
		}
		for _, x := range xs {
			if got, want := back.Predict(x), fit.Predict(x); got != want {
				t.Fatalf("%s: Predict(%v) = %v, want %v", basis.name, x, got, want)
			}
		}
	}
}

func TestFitJSONRejectsUnknown(t *testing.T) {
	var f Fit
	if err := json.Unmarshal([]byte(`{"a":1,"b":2,"r2":0.9,"basis":"sqrt"}`), &f); err == nil {
		t.Fatal("unmarshal accepted an unknown basis")
	}
	// A zero Fit (no basis) cannot be serialised — the caller would lose
	// the curve shape silently otherwise.
	if _, err := json.Marshal(Fit{A: 1, B: 2}); err == nil {
		t.Fatal("marshal accepted a Fit with no basis")
	}
}

func TestPiecewiseJSONRoundTrip(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16, 20, 24, 28, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 16 {
			ys[i] = 5/x + 1
		} else {
			ys[i] = 0.1*x + 0.5
		}
	}
	pw, err := FitPiecewise(xs, ys, Inverse, 16, 16)
	if err != nil {
		t.Fatalf("FitPiecewise: %v", err)
	}
	data, err := json.Marshal(pw)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Piecewise
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, x := range []float64{1, 8, 16, 17, 32} {
		if got, want := back.Predict(x), pw.Predict(x); got != want {
			t.Fatalf("Predict(%v) = %v, want %v", x, got, want)
		}
	}
}
