package robust_test

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/campaign"
	"repro/internal/robust"
)

// FuzzCampaignSpecParse feeds arbitrary bytes through the full spec
// pipeline — JSON decode into a robustness spec (a campaign spec plus the
// robustness axis, so both schemas are covered) followed by Plan() — and
// checks the two properties the service layer depends on before any work
// runs: the pipeline never panics, and every plan that validates respects
// the published limits. CI runs this as a fuzz smoke
// (-fuzz=FuzzCampaignSpecParse -fuzztime=10s); the seed corpus lives under
// testdata/fuzz/FuzzCampaignSpecParse.
func FuzzCampaignSpecParse(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"name":"sweep","platforms":{"base":"bayreuth","nodes":[8,16,32],"bandwidth_scale":[0.5,2]},"workloads":{"sizes":[2000]},"algorithms":["HCPA","MCPA"],"models":["analytic","empirical"]}`,
		`{"name":"stability","algorithms":["HCPA","MCPA"],"robustness":{"trials":16,"levels":[0.02,0.05,0.1,0.2],"noise":{"task_time":{"shape_sigma":1},"bandwidth":{"mult_sigma":0.5}}}}`,
		`{"robustness":{"trials":-1}}`,
		`{"robustness":{"trials":64,"levels":[4.0001]}}`,
		`{"platforms":{"nodes":[0,1024,-3]},"models":["brute-force","profile"]}`,
		`{"workloads":{"suite_seeds":[1,2,3],"sizes":[9999]}}`,
		`{"robustness":{"flip_threshold":2,"noise":{"latency":{"add_sigma":1}}}}`,
		`{"name":"seq","algorithms":["HCPA","MCPA"],"robustness":{"trials":16,"sequential":true,"stop_z":1.96,"min_trials":2}}`,
		`{"robustness":{"trials":8,"prediction_only":true,"noise":{"task_time":{"mult_sigma":0.5}}}}`,
		`{"robustness":{"trials":4,"stop_z":-1}}`,
		`{"robustness":{"trials":4,"sequential":true,"min_trials":5}}`,
		`{"robustness":{"trials":4,"stop_z":1e309}}`,
		`{"trials":33}`,
		`not json at all`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec robust.Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return // malformed JSON is rejected upstream
		}
		plan, err := spec.Plan()
		if err != nil {
			return // invalid specs must fail validation, not panic
		}
		cp := plan.Campaign
		if cells := cp.Cells(); cells < 1 || cells > campaign.MaxGridCells {
			t.Fatalf("validated plan has %d cells, limit %d", cells, campaign.MaxGridCells)
		}
		if runs := cp.Runs(); runs < 1 || runs > campaign.MaxRuns {
			t.Fatalf("validated plan has %d runs, limit %d", runs, campaign.MaxRuns)
		}
		for _, pt := range cp.Platforms {
			if pt.Nodes < 0 || pt.Nodes > campaign.MaxNodes {
				t.Fatalf("validated plan has platform with %d nodes, limit %d", pt.Nodes, campaign.MaxNodes)
			}
		}
		if cp.Spec.Trials < 1 || cp.Spec.Trials > campaign.MaxTrials {
			t.Fatalf("validated plan has %d measurement trials, limit %d", cp.Spec.Trials, campaign.MaxTrials)
		}
		a := plan.Spec.Robustness
		if a.Trials < 0 || a.Trials > robust.MaxTrials {
			t.Fatalf("validated plan has %d perturbation trials, limit %d", a.Trials, robust.MaxTrials)
		}
		if a.Trials == 0 {
			return // the axis is normalized away; nothing more to enforce
		}
		if len(a.Levels) == 0 || len(a.Levels) > robust.MaxLevels {
			t.Fatalf("validated plan has %d levels, limit %d", len(a.Levels), robust.MaxLevels)
		}
		for _, l := range a.Levels {
			if !(l > 0) || l > robust.MaxLevel {
				t.Fatalf("validated plan has level %g outside (0, %g]", l, robust.MaxLevel)
			}
		}
		if tr := plan.TrialRuns(); tr < 1 || tr > robust.MaxTrialRuns {
			t.Fatalf("validated plan has %d trial runs, limit %d", tr, robust.MaxTrialRuns)
		}
		if !(a.FlipThreshold > 0) || a.FlipThreshold > 1 {
			t.Fatalf("validated plan has flip threshold %g outside (0, 1]", a.FlipThreshold)
		}
		if math.IsNaN(a.StopZ) || a.StopZ < 0 || a.StopZ > robust.MaxStopZ {
			t.Fatalf("validated plan has stop z %g outside [0, %g]", a.StopZ, robust.MaxStopZ)
		}
		if a.Sequential && (a.MinTrials < 1 || a.MinTrials > a.Trials) {
			t.Fatalf("validated sequential plan has min trials %d outside [1, %d]", a.MinTrials, a.Trials)
		}
	})
}
