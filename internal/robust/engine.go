package robust

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"sync"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simgrid"
	"repro/internal/stats"
	"repro/internal/tgrid"
)

// Robustness telemetry: Monte Carlo cells and trials (split by whether the
// trial replayed the base schedule or rescheduled from scratch), trials the
// sequential stop rule saved against the budget, and runner-pool traffic.
// All updates are batched per (instance, level) outside the trial loop —
// the loop itself stays allocation-free and contention-free — and nothing
// the engine reports feeds back into its results.
var (
	robustCellsCompleted = obs.Default.Counter("repro_robust_cells_completed_total",
		"Monte Carlo stability cells fully aggregated.")
	trialsReplay = obs.Default.Counter("repro_robust_trials_total",
		"Monte Carlo perturbation trials executed, by mode.", obs.L("mode", "replay"))
	trialsResched = obs.Default.Counter("repro_robust_trials_total",
		"Monte Carlo perturbation trials executed, by mode.", obs.L("mode", "resched"))
	trialsSaved = obs.Default.Counter("repro_robust_trials_saved_total",
		"Trials the sequential stop rule saved against the full budget.")
	runnerAcquires = obs.Default.Counter("repro_pool_acquires_total",
		"Pool acquisitions, by pool.", obs.L("pool", "robust_runner"))
	runnerReleases = obs.Default.Counter("repro_pool_releases_total",
		"Pool releases, by pool.", obs.L("pool", "robust_runner"))
	runnerNews = obs.Default.Counter("repro_pool_news_total",
		"Pool misses that built a fresh object, by pool.", obs.L("pool", "robust_runner"))
)

// fragileLimit caps the per-pair "most fragile instances" table.
const fragileLimit = 10

// Engine executes robustness plans: it runs the base campaign first (with
// per-instance makespans and schedules retained), then replays every grid
// cell through the Monte Carlo stage — R seeded perturbation draws per noise
// level, each re-scheduling and re-simulating all axis algorithms under a
// perturbed model and platform — and aggregates winner-stability statistics
// against the base simulated winners.
//
// The trial loop is allocation-free at steady state: schedules are built in
// pooled scratch storage (sched.Scratch), every simulation is a schedule
// replay over recycled engine state (tgrid.Replayer), and when the draws
// provably cannot change any scheduler input — prediction-only specs, or
// noise the bound model is invariant under — the base campaign's schedules
// are replayed without rescheduling at all. Both paths are bit-identical to
// the direct build-and-simulate loop they replaced (oracle_test.go keeps
// that loop alive as a differential witness).
type Engine struct {
	// Source supplies ground truths and registry-cached fitted models; the
	// base campaign and the trials resolve the same fit per cell.
	Source campaign.ModelSource
	// Workers bounds the per-instance worker pool (<= 0: one per CPU).
	// Reports are byte-identical for every value.
	Workers int
	// Progress, when non-nil, receives live cell and trial counts: the base
	// campaign's cells plus one cell per Monte Carlo stabilisation, and the
	// trial budget versus trials actually drawn. It is write-only — the
	// engine never reads it back, so attaching one cannot change any result.
	Progress *obs.Progress
	// runners pools per-worker trial state (scheduling scratches, replayers,
	// makespan buffers) across cells and instances.
	runners sync.Pool

	// cellOnce/cellCamp lazily build the inner campaign engine the sharded
	// per-cell path (RunCellIndex) scores base cells with, so its scratch
	// pool persists across the cells one replica executes.
	cellOnce sync.Once
	cellCamp *campaign.Engine
}

// Result is a completed robustness study: the base campaign result plus one
// stability record per grid cell. Write renders the deterministic report;
// with trials == 0 the result is exactly the base campaign and renders
// byte-identically to it.
type Result struct {
	Plan *Plan
	// Base is the unperturbed campaign.
	Base *campaign.Result
	// Cells holds the Monte Carlo stage's stability records, in the base
	// campaign's cell order; empty when trials == 0.
	Cells []CellStability
}

// CellStability is the Monte Carlo outcome of one grid cell.
type CellStability struct {
	Platform  campaign.PlatformPoint
	Workload  campaign.WorkloadPoint
	Model     string
	Instances int
	Pairs     []PairStability
	// TrialsUsed sums, per level in spec order, the trials actually drawn
	// across the cell's instances under sequential stopping; nil when the
	// spec runs the full budget.
	TrialsUsed []int
	// TrialBudget is the per-level budget (instances × trials) TrialsUsed
	// compares against; 0 when TrialsUsed is nil.
	TrialBudget int
}

// PairStability reports winner stability for one algorithm pair of one grid
// cell: the per-level sweep plus the critical-level summary.
type PairStability struct {
	A, B string
	// Levels holds one entry per noise level, in spec order.
	Levels []LevelStability
	// MedianCritical is the median critical noise level over the instances
	// that flip at some level — the noise magnitude at which the cell's
	// typical flippable instance loses its base winner. NaN when no
	// instance ever flips.
	MedianCritical float64
	// NeverFlipped counts instances whose flip probability stays below the
	// threshold at every level.
	NeverFlipped int
	// Fragile lists the most easily flipped instances (smallest critical
	// level first, at most fragileLimit), for the per-instance detail table.
	Fragile []InstanceStability
}

// LevelStability aggregates one (pair, noise level) over the cell's
// instances.
type LevelStability struct {
	// Level is the noise level.
	Level float64
	// MeanFlipProb and MaxFlipProb summarise the per-instance flip
	// probabilities (the fraction of trials whose simulated winner differs
	// from the base simulated winner).
	MeanFlipProb, MaxFlipProb float64
	// Flipped counts instances whose flip probability reaches the spec's
	// threshold.
	Flipped int
	// MedianRatio is the median, over instances, of the per-instance mean
	// trial makespan ratio B/A; MedianCIHalf is the median 95% confidence
	// half-width of those per-instance means (NaN with fewer than 2
	// trials).
	MedianRatio, MedianCIHalf float64
}

// InstanceStability is one instance's stability record within a pair.
type InstanceStability struct {
	// Name is the suite instance name.
	Name string
	// FlipProb is the instance's flip probability per level, in spec order.
	FlipProb []float64
	// Critical is the smallest level whose flip probability reaches the
	// threshold; NaN when the instance never flips.
	Critical float64
}

// Run expands, validates and executes a robustness study.
func (e *Engine) Run(ctx context.Context, spec Spec) (*Result, error) {
	plan, err := spec.Plan()
	if err != nil {
		return nil, err
	}
	if e.Source == nil {
		return nil, fmt.Errorf("robust: engine has no model source")
	}
	trials := plan.Spec.Robustness.Trials
	ceng := campaign.Engine{Source: e.Source, Workers: e.Workers, KeepRaw: trials > 0, KeepSchedules: trials > 0, Progress: e.Progress}
	base, err := ceng.Run(ctx, plan.Spec.Spec)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: plan, Base: base}
	if trials == 0 {
		return res, nil
	}
	// The Monte Carlo stage revisits every base cell once more.
	e.Progress.AddCellsTotal(int64(len(base.Cells)))

	// Walk the campaign's (possibly canonicalised) plan in the same nested
	// order the campaign engine emitted its cells, so base.Cells[ci] is
	// always the cell being stabilised.
	cp := base.Plan
	ci := 0
	for _, pt := range cp.Platforms {
		truth, err := e.Source.Environment(pt.Env)
		if err != nil {
			return nil, err
		}
		platNet, err := simgrid.NewNet(truth.Cluster)
		if err != nil {
			return nil, fmt.Errorf("robust: platform %s: %w", pt.Env, err)
		}
		for _, wp := range cp.Workloads {
			suite, err := wp.Instances()
			if err != nil {
				return nil, err
			}
			for _, kind := range cp.Models {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				// The base campaign already resolved this fit; the lookup is
				// a cache hit returning the identical model value.
				model, _, err := e.Source.GetModel(pt.Env, kind, cp.Spec.Seed)
				if err != nil {
					return nil, fmt.Errorf("robust: fit %s/%s: %w", pt.Env, kind, err)
				}
				cell, err := e.stabilizeCell(ctx, plan, cp, pt, wp, kind, truth, platNet, suite, model, &base.Cells[ci], e.Progress)
				if err != nil {
					return nil, err
				}
				res.Cells = append(res.Cells, cell)
				robustCellsCompleted.Inc()
				e.Progress.AddCellsDone(1)
				ci++
			}
		}
	}
	return res, nil
}

// trialSetup is one prepared perturbation draw: the perturbed model wrapped
// for scheduling (cost/comm) and simulation, plus the (possibly perturbed)
// platform and its network. Setups are built sequentially from per-trial
// seeds before any parallel work, so trial draws never depend on the worker
// count.
type trialSetup struct {
	cluster platform.Cluster
	cost    dag.CostFunc
	comm    dag.CommFunc
	model   *perfmodel.Perturbed
	net     *simgrid.Net
	// sim is the perturbed model pre-wrapped for replay; building the
	// interface value here keeps the boxing allocation out of the trial loop.
	sim tgrid.TimingScaler
}

// perturbationDraw is one trial's full draw: the model perturbation plus
// the platform bandwidth/latency factors.
type perturbationDraw struct {
	model              perfmodel.Perturbation
	bandwidth, latency float64
}

// drawPerturbation consumes one salt plus one standard-normal variate per
// noise component in a fixed order (task ×/+, startup ×/+, redist ×/+,
// bandwidth ×, latency ×), so a trial's draw depends only on its seed —
// never on which dimensions are active. Shape sigmas scale with the level
// but need no variate here: each trial gets a fresh error surface through
// its salt.
func drawPerturbation(rng *rand.Rand, n Noise, level float64) perturbationDraw {
	var out perturbationDraw
	out.model.Salt = rng.Uint64()
	mult := func(d Dim) float64 {
		z := rng.NormFloat64()
		if d.MultSigma == 0 {
			return 1
		}
		return math.Exp(z * d.MultSigma * level)
	}
	add := func(d Dim) float64 {
		z := rng.NormFloat64()
		if d.AddSigma == 0 {
			return 0
		}
		return z * d.AddSigma * level
	}
	out.model.TaskFactor = mult(n.TaskTime)
	out.model.TaskOffset = add(n.TaskTime)
	out.model.StartupFactor = mult(n.Startup)
	out.model.StartupOffset = add(n.Startup)
	out.model.RedistFactor = mult(n.Redist)
	out.model.RedistOffset = add(n.Redist)
	out.bandwidth = mult(n.Bandwidth)
	out.latency = mult(n.Latency)
	out.model.TaskShape = n.TaskTime.ShapeSigma * level
	out.model.StartupShape = n.Startup.ShapeSigma * level
	out.model.RedistShape = n.Redist.ShapeSigma * level
	return out
}

// stabilizeCell runs the Monte Carlo stage of one grid cell: up to R trials
// per noise level, each re-scheduling (or, when the draws cannot change the
// schedule, replaying) and re-simulating every axis algorithm on every suite
// instance under the trial's perturbed model. Instances run on the
// experiments worker pool with index-addressed results, so reports never
// depend on the worker count; per-worker scratches and replayers come from
// the engine's runner pool, so steady-state trials allocate nothing. With
// sequential stopping enabled, each (instance, level) stops drawing trials
// once every pair's flip probability is decided against the flip threshold
// by its Wilson interval (after MinTrials, within the Trials budget).
// Trial counts flow through prog — the engine's own Progress on the
// monolithic path, a per-cell progress on the sharded one.
func (e *Engine) stabilizeCell(ctx context.Context, plan *Plan, cp *campaign.Plan,
	pt campaign.PlatformPoint, wp campaign.WorkloadPoint, kind string,
	truth *cluster.Hidden, platNet *simgrid.Net, suite []dag.SuiteInstance,
	model perfmodel.Model, baseCell *campaign.CellScore, prog *obs.Progress) (CellStability, error) {

	axis := plan.Spec.Robustness
	algos := cp.Algorithms
	study := "robust/" + pt.Env + "/" + wp.Key() + "/" + kind
	nL, nT := len(axis.Levels), axis.Trials
	prog.AddTrialBudget(int64(len(suite)) * int64(nL) * int64(nT))

	setups := make([][]trialSetup, nL)
	for li, level := range axis.Levels {
		setups[li] = make([]trialSetup, nT)
		for t := 0; t < nT; t++ {
			rng := rand.New(rand.NewSource(experiments.CellSeed(axis.Seed, study+"/level-"+strconv.Itoa(li), t)))
			draw := drawPerturbation(rng, axis.Noise, level)
			pm, err := perfmodel.NewPerturbed(model, draw.model)
			if err != nil {
				return CellStability{}, fmt.Errorf("robust: %s: %w", study, err)
			}
			c := truth.Cluster
			net := platNet
			if axis.Noise.platform() {
				// Platform noise changes the network itself; the scheduler's
				// communication estimates and the simulated transfers both
				// see the perturbed bandwidth and latency.
				c.LinkBandwidth *= draw.bandwidth
				c.BackplaneBandwidth *= draw.bandwidth
				c.LinkLatency *= draw.latency
				if net, err = simgrid.NewNet(c); err != nil {
					return CellStability{}, fmt.Errorf("robust: %s: %w", study, err)
				}
			}
			setups[li][t] = trialSetup{
				cluster: c,
				cost:    perfmodel.CostFunc(pm),
				comm:    perfmodel.CommFunc(pm, c),
				model:   pm,
				net:     net,
				sim:     tgrid.ScaledTiming{Model: pm},
			}
		}
	}

	npairs := len(algos) * (len(algos) - 1) / 2
	outs := make([][][]levelOut, len(suite)) // [instance][pair][level]
	useds := make([][]int, len(suite))       // [instance][level] trials drawn
	raw := baseCell.Raw
	if raw == nil {
		return CellStability{}, fmt.Errorf("robust: %s: base campaign retained no per-instance data", study)
	}
	// A perturbed schedule equals the base schedule whenever the draw leaves
	// every scheduler input untouched — declared (prediction_only) or proven
	// (scheduleInvariant). Then rescheduling is pure waste: replay the base
	// campaign's schedules through the perturbed simulator instead.
	replayAll := axis.PredictionOnly || (raw.Schedules != nil && scheduleInvariant(axis.Noise, model, truth.Cluster.Nodes))
	if replayAll && raw.Schedules == nil {
		return CellStability{}, fmt.Errorf("robust: %s: base campaign retained no schedules", study)
	}
	homogeneous := truth.Cluster.IsHomogeneous()
	baseTiming := tgrid.Timing(tgrid.ModelTiming{Model: model})
	err := experiments.ForEachCellCtx(ctx, e.Workers, len(suite), func(i int) error {
		g := suite[i].Graph
		run := e.acquireRunner(len(algos))
		defer e.releaseRunner(run)
		if replayAll {
			for ai := range algos {
				if err := run.reps[ai].Bind(platNet, raw.Schedules[i][ai], baseTiming); err != nil {
					return fmt.Errorf("robust: %s: bind %s on %s: %w", study, algos[ai], suite[i].Name(), err)
				}
			}
		}
		o := make([][]levelOut, npairs)
		for pi := range o {
			o[pi] = make([]levelOut, nL)
			for li := range o[pi] {
				o[pi][li].ratios = make([]float64, 0, nT)
			}
		}
		used := make([]int, nL)
		for li := range setups {
			for t := range setups[li] {
				setup := &setups[li][t]
				if !replayAll && homogeneous {
					run.sc.Bind(g, setup.cluster.Nodes, setup.cost)
				}
				for ai, name := range algos {
					var ms float64
					if replayAll {
						r, err := run.reps[ai].Replay(setup.net, setup.sim)
						if err != nil {
							return fmt.Errorf("robust: simulate %s: %s on %s: %w", study, name, suite[i].Name(), err)
						}
						ms = r
					} else {
						var sc *sched.Scratch
						if homogeneous {
							sc = run.sc
						}
						s, err := campaign.BuildScheduleScratch(sc, name, g, setup.cluster, setup.cost, setup.comm)
						if err != nil {
							return fmt.Errorf("robust: %s: %s on %s: %w", study, name, suite[i].Name(), err)
						}
						s.Model = kind
						if err := run.rep.Bind(setup.net, s, baseTiming); err != nil {
							return fmt.Errorf("robust: %s: bind %s on %s: %w", study, name, suite[i].Name(), err)
						}
						if ms, err = run.rep.Replay(setup.net, setup.sim); err != nil {
							return fmt.Errorf("robust: simulate %s: %s on %s: %w", study, name, suite[i].Name(), err)
						}
					}
					run.sims[ai] = ms
				}
				pi := 0
				for ai := 0; ai < len(algos); ai++ {
					for bi := ai + 1; bi < len(algos); bi++ {
						baseRel := stats.RelDiff(raw.Sim[i][ai], raw.Sim[i][bi])
						rel := stats.RelDiff(run.sims[ai], run.sims[bi])
						lo := &o[pi][li]
						if !stats.SameSign(baseRel, rel, 0) {
							lo.flips++
						}
						lo.ratios = append(lo.ratios, run.sims[bi]/run.sims[ai])
						pi++
					}
				}
				used[li] = t + 1
				if axis.Sequential && used[li] >= axis.MinTrials && allDecided(o, li, used[li], axis.FlipThreshold, axis.StopZ) {
					break
				}
			}
		}
		outs[i] = o
		useds[i] = used
		// Batched trial accounting, once per instance: the trial loop itself
		// touches no shared counters.
		var drawn int64
		for _, u := range used {
			drawn += int64(u)
		}
		if replayAll {
			trialsReplay.Add(uint64(drawn) * uint64(len(algos)))
		} else {
			trialsResched.Add(uint64(drawn) * uint64(len(algos)))
		}
		prog.AddTrialsUsed(drawn)
		if axis.Sequential {
			trialsSaved.Add(uint64(int64(nL)*int64(nT) - drawn))
		}
		return nil
	})
	if err != nil {
		return CellStability{}, err
	}

	cell := CellStability{Platform: pt, Workload: wp, Model: kind, Instances: len(suite)}
	if axis.Sequential {
		cell.TrialsUsed = make([]int, nL)
		for i := range suite {
			for li := range axis.Levels {
				cell.TrialsUsed[li] += useds[i][li]
			}
		}
		cell.TrialBudget = len(suite) * nT
	}
	pi := 0
	for ai := 0; ai < len(algos); ai++ {
		for bi := ai + 1; bi < len(algos); bi++ {
			ps := PairStability{A: algos[ai], B: algos[bi]}
			flipProb := make([][]float64, nL) // [level][instance]
			for li, level := range axis.Levels {
				probs := make([]float64, len(suite))
				means := make([]float64, len(suite))
				halves := make([]float64, len(suite))
				flipped := 0
				maxProb := 0.0
				for i := range suite {
					lo := outs[i][pi][li]
					p := float64(lo.flips) / float64(useds[i][li])
					probs[i] = p
					if p >= axis.FlipThreshold {
						flipped++
					}
					if p > maxProb {
						maxProb = p
					}
					means[i] = stats.Mean(lo.ratios)
					halves[i] = ci95Half(lo.ratios)
				}
				flipProb[li] = probs
				ps.Levels = append(ps.Levels, LevelStability{
					Level:        level,
					MeanFlipProb: stats.Mean(probs),
					MaxFlipProb:  maxProb,
					Flipped:      flipped,
					MedianRatio:  stats.Median(means),
					MedianCIHalf: stats.Median(halves),
				})
			}

			var criticals []float64
			fragile := make([]InstanceStability, 0, len(suite))
			for i := range suite {
				inst := InstanceStability{
					Name:     suite[i].Name(),
					FlipProb: make([]float64, nL),
					Critical: math.NaN(),
				}
				maxProb := 0.0
				for li := range axis.Levels {
					p := flipProb[li][i]
					inst.FlipProb[li] = p
					if p > maxProb {
						maxProb = p
					}
					if math.IsNaN(inst.Critical) && p >= axis.FlipThreshold {
						inst.Critical = axis.Levels[li]
					}
				}
				if !math.IsNaN(inst.Critical) {
					criticals = append(criticals, inst.Critical)
				}
				if maxProb > 0 {
					fragile = append(fragile, inst)
				}
			}
			ps.NeverFlipped = len(suite) - len(criticals)
			if len(criticals) > 0 {
				ps.MedianCritical = stats.Median(criticals)
			} else {
				ps.MedianCritical = math.NaN()
			}
			// Most fragile first: smallest critical level, then largest flip
			// probability, then suite order — a deterministic total order.
			sort.SliceStable(fragile, func(a, b int) bool {
				ca, cb := fragile[a].Critical, fragile[b].Critical
				if math.IsNaN(ca) != math.IsNaN(cb) {
					return !math.IsNaN(ca)
				}
				if !math.IsNaN(ca) && ca != cb {
					return ca < cb
				}
				ma, mb := maxOf(fragile[a].FlipProb), maxOf(fragile[b].FlipProb)
				if ma != mb {
					return ma > mb
				}
				return false
			})
			if len(fragile) > fragileLimit {
				fragile = fragile[:fragileLimit]
			}
			ps.Fragile = fragile
			cell.Pairs = append(cell.Pairs, ps)
			pi++
		}
	}
	return cell, nil
}

// levelOut accumulates one (instance, pair, level)'s trial outcomes.
type levelOut struct {
	flips  int
	ratios []float64
}

// trialRunner is one worker's reusable trial state: a scheduling scratch and
// a replayer for the reschedule path, one replayer per algorithm for the
// replay-all path, and the per-trial makespan buffer.
type trialRunner struct {
	sc   *sched.Scratch
	rep  *tgrid.Replayer
	reps []*tgrid.Replayer
	sims []float64
}

func (e *Engine) acquireRunner(nAlgos int) *trialRunner {
	runnerAcquires.Inc()
	run, _ := e.runners.Get().(*trialRunner)
	if run == nil {
		runnerNews.Inc()
		run = &trialRunner{sc: sched.NewScratch(), rep: tgrid.NewReplayer()}
	}
	for len(run.reps) < nAlgos {
		run.reps = append(run.reps, tgrid.NewReplayer())
	}
	if cap(run.sims) < nAlgos {
		run.sims = make([]float64, nAlgos)
	}
	run.sims = run.sims[:nAlgos]
	return run
}

func (e *Engine) releaseRunner(run *trialRunner) {
	runnerReleases.Inc()
	e.runners.Put(run)
}

// scheduleInvariant reports whether the noise axis cannot change any input
// the schedulers read from this particular model — task-time costs, startup
// overheads, redistribution overheads, or the platform itself. When it
// holds, a trial's rescheduling would reproduce the base schedule exactly
// (the algorithms are deterministic functions of their inputs), so the
// engine replays the base schedules instead. Multiplicative and shape noise
// on an identically-zero overhead surface is invariant (any factor times 0
// is still 0); additive noise never is, and task-time or platform noise
// always reaches the scheduler. The redistribution probe walks the full
// (pSrc, pDst) grid the schedulers can query, so it is only attempted on
// clusters small enough for the one-time cost to be negligible.
func scheduleInvariant(n Noise, model perfmodel.Model, clusterSize int) bool {
	if n.TaskTime.active() || n.Bandwidth.active() || n.Latency.active() {
		return false
	}
	if n.Startup.active() {
		if n.Startup.AddSigma != 0 {
			return false
		}
		for p := 1; p <= clusterSize; p++ {
			if model.StartupOverhead(p) != 0 {
				return false
			}
		}
	}
	if n.Redist.active() {
		if n.Redist.AddSigma != 0 || clusterSize > 64 {
			return false
		}
		for pSrc := 1; pSrc <= clusterSize; pSrc++ {
			for pDst := 1; pDst <= clusterSize; pDst++ {
				if model.RedistOverhead(pSrc, pDst) != 0 {
					return false
				}
			}
		}
	}
	return true
}

// wilsonCI returns the Wilson score interval for flips successes in n
// Bernoulli trials at z-score z.
func wilsonCI(flips, n int, z float64) (lo, hi float64) {
	ph := float64(flips) / float64(n)
	nf := float64(n)
	z2 := z * z
	den := 1 + z2/nf
	center := ph + z2/(2*nf)
	half := z * math.Sqrt(ph*(1-ph)/nf+z2/(4*nf*nf))
	return (center - half) / den, (center + half) / den
}

// seqDecided reports whether a flip probability is decided against threshold
// thr after n trials: the Wilson interval lies entirely above or entirely
// below it.
func seqDecided(flips, n int, thr, z float64) bool {
	lo, hi := wilsonCI(flips, n, z)
	return lo > thr || hi < thr
}

// allDecided reports whether every pair's flip count at level li is decided
// after n trials.
func allDecided(o [][]levelOut, li, n int, thr, z float64) bool {
	for pi := range o {
		if !seqDecided(o[pi][li].flips, n, thr, z) {
			return false
		}
	}
	return true
}

// ci95Half returns the 95% confidence half-width of the sample mean under
// the normal approximation; NaN with fewer than two samples.
func ci95Half(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	return 1.96 * stats.StdDev(xs) / math.Sqrt(float64(len(xs)))
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
