// Package robust quantifies how wrong a performance model can be before the
// paper's conclusions flip. §V shows that the analytic simulator picks the
// wrong winner between HCPA and MCPA on a large fraction of instances — the
// model is wrong enough to invert the experiment's verdict. This package
// asks the quantitative version of that question: starting from a fitted
// model, perturb its predictions (task times, startup overheads,
// redistribution overheads) and the platform's characteristics (bandwidth,
// latency) with controlled, seeded noise, re-run the winner determination R
// times per noise level, and report per-instance flip probabilities,
// confidence intervals on makespan ratios, and the critical noise level at
// which the simulated winner flips.
//
// A robustness Spec is a campaign Spec (internal/campaign) plus one extra
// JSON key, "robustness", declaring the Monte Carlo axis. A spec whose
// robustness axis has trials == 0 is exactly its base campaign: the engine
// reduces to the campaign engine and the report is byte-identical.
package robust

import (
	"fmt"
	"math"

	"repro/internal/campaign"
)

// Monte Carlo limits: a spec beyond these is rejected at validation time,
// before any fitting or trial runs.
const (
	// MaxTrials bounds the perturbation draws per (cell, level).
	MaxTrials = 64
	// MaxLevels bounds the noise-level list.
	MaxLevels = 8
	// MaxLevel bounds each individual noise level (the sigma multiplier).
	MaxLevel = 4.0
	// MaxSigma bounds a dimension's multiplicative lognormal sigma.
	MaxSigma = 4.0
	// MaxAddSigma bounds a dimension's additive sigma, in seconds.
	MaxAddSigma = 60.0
	// MaxTrialRuns bounds campaign runs × levels × trials — the total
	// schedule-and-simulate work of the Monte Carlo stage.
	MaxTrialRuns = 16384
	// MaxStopZ bounds the sequential stop rule's z-score.
	MaxStopZ = 8.0
)

// DefaultStopZ is the Wilson-interval z-score of the sequential stop rule
// when the spec enables stopping without choosing one (a 95% interval).
const DefaultStopZ = 1.96

// DefaultMinTrials is the sequential stop rule's minimum trial count when
// the spec enables stopping without choosing one.
const DefaultMinTrials = 2

// Dim declares one noise dimension; its three components model three
// distinct ways a fitted model can be wrong. At noise level ℓ:
//
//   - MultSigma draws one lognormal factor exp(z·MultSigma·ℓ) per trial and
//     applies it to every prediction of the dimension — a systematic bias
//     ("the whole fit runs 20% hot");
//   - AddSigma draws one additive offset z'·AddSigma·ℓ seconds per trial —
//     a constant absolute error ("every startup costs half a second more
//     than modelled");
//   - ShapeSigma perturbs every prediction point independently with its own
//     fixed lognormal factor of sigma ShapeSigma·ℓ (a fresh error surface
//     per trial) — per-configuration misfit, the error structure the paper
//     actually observes (Figure 2's per-(n, p) fluctuation).
//
// The level list sweeps the same noise shape through increasing magnitudes.
type Dim struct {
	// MultSigma is the lognormal sigma of the per-trial systematic factor
	// at level 1 (0 disables it).
	MultSigma float64 `json:"mult_sigma,omitempty"`
	// AddSigma is the standard deviation, in seconds, of the per-trial
	// additive offset at level 1 (0 disables it).
	AddSigma float64 `json:"add_sigma,omitempty"`
	// ShapeSigma is the lognormal sigma of the per-configuration error
	// surface at level 1 (0 disables it).
	ShapeSigma float64 `json:"shape_sigma,omitempty"`
}

// active reports whether the dimension perturbs anything.
func (d Dim) active() bool { return d.MultSigma != 0 || d.AddSigma != 0 || d.ShapeSigma != 0 }

// Noise declares which model predictions and platform characteristics the
// trials perturb. The zero value selects the default: per-configuration
// shape noise with sigma 1 on the three model predictions (task time,
// startup, redistribution overhead) and no platform noise — at level ℓ,
// every individual prediction is off by an independent lognormal factor of
// sigma ℓ, so the critical level reads directly as "the per-prediction
// relative model error the winner survives".
type Noise struct {
	// TaskTime perturbs the model's task-execution-time predictions.
	TaskTime Dim `json:"task_time"`
	// Startup perturbs the model's task-startup-overhead predictions.
	Startup Dim `json:"startup"`
	// Redist perturbs the model's redistribution-overhead predictions.
	Redist Dim `json:"redist"`
	// Bandwidth perturbs the platform's link bandwidth (multiplicative
	// only — an additive offset in bytes/s has no platform-independent
	// meaning).
	Bandwidth Dim `json:"bandwidth"`
	// Latency perturbs the platform's link latency (multiplicative only).
	Latency Dim `json:"latency"`
}

// platform reports whether the noise touches platform characteristics (and
// therefore requires per-trial networks instead of the cell's shared one).
func (n Noise) platform() bool { return n.Bandwidth.active() || n.Latency.active() }

// anyActive reports whether any dimension perturbs anything.
func (n Noise) anyActive() bool {
	return n.TaskTime.active() || n.Startup.active() || n.Redist.active() || n.platform()
}

// Axis is the robustness extension of the campaign schema: the Monte Carlo
// effort (trials per level), the noise shape, the level sweep and the flip
// threshold.
type Axis struct {
	// Trials is the number of perturbation draws per (cell, level);
	// 0 disables the Monte Carlo stage entirely (the spec is then exactly
	// its base campaign).
	Trials int `json:"trials,omitempty"`
	// Seed seeds the perturbation draws (default: the campaign seed). Trial
	// streams are decorrelated from the campaign's measurement streams by
	// construction, so sharing the seed is safe.
	Seed int64 `json:"seed,omitempty"`
	// Levels lists the noise levels to sweep, strictly increasing
	// (default {0.05, 0.1, 0.2}).
	Levels []float64 `json:"levels,omitempty"`
	// Noise declares the perturbation shape (default: per-configuration
	// shape noise with sigma 1 on task time, startup and redistribution
	// overhead — see Noise).
	Noise Noise `json:"noise"`
	// FlipThreshold is the per-instance flip probability at or above which
	// an instance counts as flipped at a level (default 0.5 — the majority
	// of trials disagree with the base winner).
	FlipThreshold float64 `json:"flip_threshold,omitempty"`
	// Sequential enables per-(instance, level) sequential stopping: trials
	// stop early once the flip-probability Wilson interval clears
	// FlipThreshold on either side, bounded by the trial budget. Off by
	// default, so existing reports are byte-identical; when on, flip
	// probabilities divide by the trials actually drawn and the report
	// gains a trials-saved section.
	Sequential bool `json:"sequential,omitempty"`
	// StopZ is the z-score of the Wilson interval behind the stop rule;
	// 0 defaults to DefaultStopZ when Sequential is set.
	StopZ float64 `json:"stop_z,omitempty"`
	// MinTrials is the minimum number of trials drawn before the stop rule
	// may fire; 0 defaults to DefaultMinTrials when Sequential is set.
	MinTrials int `json:"min_trials,omitempty"`
	// PredictionOnly declares the draws prediction-only: the scheduler's
	// inputs stay pinned to the base model, so every trial replays the
	// base campaign's schedule through the perturbed simulator instead of
	// rescheduling. This both isolates the "model error changes the
	// forecast, not the decision" question and makes every trial take the
	// allocation-free replay path.
	PredictionOnly bool `json:"prediction_only,omitempty"`
}

// Spec declares one robustness study: a campaign spec (the base grid, JSON
// keys unchanged) plus the robustness axis.
type Spec struct {
	campaign.Spec
	// Robustness is the Monte Carlo axis.
	Robustness Axis `json:"robustness"`
}

// Plan is a validated robustness spec: the expanded campaign grid plus the
// normalized axis.
type Plan struct {
	// Spec is the normalized spec the plan was validated from.
	Spec Spec
	// Campaign is the expanded base grid.
	Campaign *campaign.Plan
}

// TrialRuns is the number of schedule-and-simulate units the Monte Carlo
// stage executes: campaign runs × levels × trials.
func (p *Plan) TrialRuns() int {
	return p.Campaign.Runs() * len(p.Spec.Robustness.Levels) * p.Spec.Robustness.Trials
}

// normalize fills the axis defaults in place (only meaningful for
// trials > 0).
func (a *Axis) normalize(campaignSeed int64) {
	if a.Seed == 0 {
		a.Seed = campaignSeed
	}
	if len(a.Levels) == 0 {
		a.Levels = []float64{0.05, 0.1, 0.2}
	}
	if !a.Noise.anyActive() {
		a.Noise.TaskTime.ShapeSigma = 1
		a.Noise.Startup.ShapeSigma = 1
		a.Noise.Redist.ShapeSigma = 1
	}
	if a.FlipThreshold == 0 {
		a.FlipThreshold = 0.5
	}
	if a.Sequential {
		if a.StopZ == 0 {
			a.StopZ = DefaultStopZ
		}
		if a.MinTrials == 0 {
			a.MinTrials = DefaultMinTrials
		}
	}
}

// Plan validates the spec and expands the base grid. Like the campaign
// planner, every error names the offending field and limit.
func (s Spec) Plan() (*Plan, error) {
	cp, err := s.Spec.Plan()
	if err != nil {
		return nil, err
	}
	s.Spec = cp.Spec // keep the campaign normalization
	if s.Robustness.Trials < 0 || s.Robustness.Trials > MaxTrials {
		return nil, fmt.Errorf("robust: robustness.trials %d outside [0, %d]", s.Robustness.Trials, MaxTrials)
	}
	if s.Robustness.Trials == 0 {
		// The Monte Carlo stage is disabled; the axis is normalized to its
		// zero value so the plan is unambiguous about what will run.
		s.Robustness = Axis{}
		return &Plan{Spec: s, Campaign: cp}, nil
	}
	s.Robustness.normalize(cp.Spec.Seed)
	a := s.Robustness

	if len(a.Levels) > MaxLevels {
		return nil, fmt.Errorf("robust: robustness.levels has %d values, limit %d", len(a.Levels), MaxLevels)
	}
	prev := 0.0
	for _, l := range a.Levels {
		if math.IsNaN(l) || l <= 0 || l > MaxLevel {
			return nil, fmt.Errorf("robust: robustness.levels value %g outside (0, %g]", l, MaxLevel)
		}
		if l <= prev {
			return nil, fmt.Errorf("robust: robustness.levels must be strictly increasing, got %g after %g", l, prev)
		}
		prev = l
	}
	dims := []struct {
		name     string
		dim      Dim
		multOnly bool
	}{
		{"task_time", a.Noise.TaskTime, false},
		{"startup", a.Noise.Startup, false},
		{"redist", a.Noise.Redist, false},
		{"bandwidth", a.Noise.Bandwidth, true},
		{"latency", a.Noise.Latency, true},
	}
	for _, d := range dims {
		if math.IsNaN(d.dim.MultSigma) || d.dim.MultSigma < 0 || d.dim.MultSigma > MaxSigma {
			return nil, fmt.Errorf("robust: robustness.noise.%s.mult_sigma %g outside [0, %g]", d.name, d.dim.MultSigma, MaxSigma)
		}
		if math.IsNaN(d.dim.AddSigma) || d.dim.AddSigma < 0 || d.dim.AddSigma > MaxAddSigma {
			return nil, fmt.Errorf("robust: robustness.noise.%s.add_sigma %g outside [0, %g]", d.name, d.dim.AddSigma, MaxAddSigma)
		}
		if math.IsNaN(d.dim.ShapeSigma) || d.dim.ShapeSigma < 0 || d.dim.ShapeSigma > MaxSigma {
			return nil, fmt.Errorf("robust: robustness.noise.%s.shape_sigma %g outside [0, %g]", d.name, d.dim.ShapeSigma, MaxSigma)
		}
		if d.multOnly && (d.dim.AddSigma != 0 || d.dim.ShapeSigma != 0) {
			return nil, fmt.Errorf("robust: robustness.noise.%s is multiplicative-only; drop add_sigma and shape_sigma", d.name)
		}
	}
	if math.IsNaN(a.FlipThreshold) || a.FlipThreshold <= 0 || a.FlipThreshold > 1 {
		return nil, fmt.Errorf("robust: robustness.flip_threshold %g outside (0, 1]", a.FlipThreshold)
	}
	if math.IsNaN(a.StopZ) || a.StopZ < 0 || a.StopZ > MaxStopZ {
		return nil, fmt.Errorf("robust: robustness.stop_z %g outside [0, %g]", a.StopZ, MaxStopZ)
	}
	if a.MinTrials < 0 || a.MinTrials > MaxTrials {
		return nil, fmt.Errorf("robust: robustness.min_trials %d outside [0, %d]", a.MinTrials, MaxTrials)
	}
	if a.Sequential && a.MinTrials > a.Trials {
		return nil, fmt.Errorf("robust: robustness.min_trials %d exceeds trials %d", a.MinTrials, a.Trials)
	}

	p := &Plan{Spec: s, Campaign: cp}
	if runs := p.TrialRuns(); runs > MaxTrialRuns {
		return nil, fmt.Errorf("robust: %d trial runs (campaign runs × levels × trials), limit %d", runs, MaxTrialRuns)
	}
	return p, nil
}
