package robust

// Sharded execution: the per-cell face of the robustness engine, mirroring
// campaign's. One cell = the base campaign scoring of one grid cell plus its
// Monte Carlo stabilisation — the Raw retention that stabilizeCell needs
// never has to leave the replica that scored the cell, which is what makes
// cell-granular sharding cheap: result frames carry only the aggregated
// scores and stability records.

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/simgrid"
)

// Prepared is a resolved robustness plan ready for per-cell execution.
type Prepared struct {
	Plan *Plan
	Camp *campaign.Prepared
}

// Prepare expands and canonicalises a spec exactly as Run does, without
// executing anything.
func (e *Engine) Prepare(spec Spec) (*Prepared, error) {
	plan, err := spec.Plan()
	if err != nil {
		return nil, err
	}
	if e.Source == nil {
		return nil, fmt.Errorf("robust: engine has no model source")
	}
	camp, err := e.cellEngine().Prepare(plan.Spec.Spec)
	if err != nil {
		return nil, err
	}
	return &Prepared{Plan: plan, Camp: camp}, nil
}

// NumCells is the grid size — the number of shardable work-units.
func (p *Prepared) NumCells() int { return p.Camp.NumCells() }

// cellEngine is the inner campaign engine for per-cell scoring. Raw data and
// schedules are always retained — stabilisation consumes them in-process —
// and stripped before a cell result is encoded.
func (e *Engine) cellEngine() *campaign.Engine {
	e.cellOnce.Do(func() {
		e.cellCamp = &campaign.Engine{Source: e.Source, Workers: e.Workers, KeepRaw: true, KeepSchedules: true}
	})
	return e.cellCamp
}

// CellResult is one sharded cell's complete outcome: the base campaign score
// (Raw stripped) plus, when the spec draws trials, its stability record.
type CellResult struct {
	Score campaign.CellScore
	Stab  CellStability
	// HasStab distinguishes a trials == 0 cell from a zero-value record.
	HasStab bool
}

// RunCellIndex scores and stabilises one grid cell, byte-identically to the
// same cell inside a monolithic Run. Trial counts flow through prog (nil is
// fine), so cross-replica job progress can aggregate per-cell snapshots.
func (e *Engine) RunCellIndex(ctx context.Context, p *Prepared, i int, prog *obs.Progress) (CellResult, error) {
	score, err := e.cellEngine().RunCellIndex(ctx, p.Camp, i)
	if err != nil {
		return CellResult{}, err
	}
	if p.Plan.Spec.Robustness.Trials == 0 {
		score.Raw = nil
		return CellResult{Score: score}, nil
	}
	cp := p.Camp.Plan
	pt, wp, kind := p.Camp.CellPoint(i)
	truth, err := e.Source.Environment(pt.Env)
	if err != nil {
		return CellResult{}, err
	}
	platNet, err := simgrid.NewNet(truth.Cluster)
	if err != nil {
		return CellResult{}, fmt.Errorf("robust: platform %s: %w", pt.Env, err)
	}
	suite, err := wp.Instances()
	if err != nil {
		return CellResult{}, err
	}
	model, _, err := e.Source.GetModel(pt.Env, kind, cp.Spec.Seed)
	if err != nil {
		return CellResult{}, fmt.Errorf("robust: fit %s/%s: %w", pt.Env, kind, err)
	}
	stab, err := e.stabilizeCell(ctx, p.Plan, cp, pt, wp, kind, truth, platNet, suite, model, &score, prog)
	if err != nil {
		return CellResult{}, err
	}
	robustCellsCompleted.Inc()
	score.Raw = nil
	return CellResult{Score: score, Stab: stab, HasStab: true}, nil
}

// Merge assembles per-cell results — in plan-index order — into the Result a
// monolithic Run would have produced.
func Merge(p *Prepared, cells []CellResult) (*Result, error) {
	if len(cells) != p.NumCells() {
		return nil, fmt.Errorf("robust: merge got %d cells, plan has %d", len(cells), p.NumCells())
	}
	res := &Result{Plan: p.Plan, Base: &campaign.Result{Plan: p.Camp.Plan}}
	res.Base.Cells = make([]campaign.CellScore, len(cells))
	for i, c := range cells {
		res.Base.Cells[i] = c.Score
		if c.HasStab {
			res.Cells = append(res.Cells, c.Stab)
		}
	}
	return res, nil
}

// EncodeCell serialises one cell result as a result frame. Stability records
// carry NaN sentinels (never-flipped criticals, sub-2-trial CI halves), so
// frames are gob, not JSON.
func EncodeCell(c CellResult) ([]byte, error) {
	c.Score.Raw = nil
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&c); err != nil {
		return nil, fmt.Errorf("robust: encode cell: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeCell is the inverse of EncodeCell.
func DecodeCell(data []byte) (CellResult, error) {
	var c CellResult
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&c); err != nil {
		return CellResult{}, fmt.Errorf("robust: decode cell: %w", err)
	}
	return c, nil
}
