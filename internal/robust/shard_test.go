package robust_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/robust"
)

// TestShardedRobustnessByteIdentical pins the sharding contract for the
// Monte Carlo path: each cell scored and stabilised on its own engine and
// registry (the way different replicas would), frames gob-encoded across the
// wire, merged in plan order — byte-for-byte the monolithic Run's report.
func TestShardedRobustnessByteIdentical(t *testing.T) {
	mono := newEngine(4)
	res, err := mono.Run(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	res.Write(&want)

	coord := newEngine(1)
	p, err := coord.Prepare(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][]byte, p.NumCells())
	for i := range frames {
		replica := newEngine(1)
		rp, err := replica.Prepare(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		prog := &obs.Progress{}
		cell, err := replica.RunCellIndex(context.Background(), rp, i, prog)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		// Trial-level progress flowed through the per-cell tracker.
		if snap := prog.Snapshot(); snap.TrialsUsed == 0 || snap.TrialBudget == 0 {
			t.Fatalf("cell %d progress = %+v", i, snap)
		}
		// Frames are gob because stability records carry NaN sentinels; the
		// round trip must preserve them.
		if frames[i], err = robust.EncodeCell(cell); err != nil {
			t.Fatalf("encode cell %d: %v", i, err)
		}
	}
	cells := make([]robust.CellResult, len(frames))
	for i, frame := range frames {
		var err error
		if cells[i], err = robust.DecodeCell(frame); err != nil {
			t.Fatalf("decode cell %d: %v", i, err)
		}
		if !cells[i].HasStab {
			t.Fatalf("cell %d lost its stability record in transit", i)
		}
	}
	merged, err := robust.Merge(p, cells)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	merged.Write(&got)
	if got.String() != want.String() {
		t.Errorf("sharded robustness report differs from monolithic run:\n--- monolithic ---\n%s\n--- sharded ---\n%s",
			want.String(), got.String())
	}
}

// TestShardedTrialsZeroSkipsStabilisation: with the robustness axis disabled
// a cell is just its base campaign score, and the merged report reduces to
// the campaign report exactly as a monolithic Run does.
func TestShardedTrialsZeroSkipsStabilisation(t *testing.T) {
	spec := robust.Spec{Spec: baseSpec()}
	mono := newEngine(2)
	res, err := mono.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	res.Write(&want)

	eng := newEngine(1)
	p, err := eng.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	cells := make([]robust.CellResult, p.NumCells())
	for i := range cells {
		if cells[i], err = eng.RunCellIndex(context.Background(), p, i, nil); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if cells[i].HasStab {
			t.Fatalf("cell %d stabilised despite trials=0", i)
		}
	}
	merged, err := robust.Merge(p, cells)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	merged.Write(&got)
	if got.String() != want.String() {
		t.Errorf("trials=0 sharded report differs:\n--- monolithic ---\n%s\n--- sharded ---\n%s",
			want.String(), got.String())
	}
}
