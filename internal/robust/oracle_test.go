package robust

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/simgrid"
	"repro/internal/stats"
	"repro/internal/tgrid"
)

// This file preserves the PR 5 Monte Carlo trial loop verbatim as a
// test-only oracle. The production engine (engine.go) replaced it with the
// allocation-free fast path — scratch scheduling, schedule replay, optional
// sequential stopping — and the differential tests in differential_test.go
// assert the fast path reproduces this oracle's reports byte for byte
// whenever sequential stopping and prediction-only replay are off.
//
// Apart from the oracle* renames (and reading the new useds/TrialsUsed
// outputs as the full budget), the code below is the PR 5 engine code
// unchanged. Do not "improve" it: its value is being the old loop.

// oracleEngine executes robustness plans with the PR 5 trial loop.
type oracleEngine struct {
	Source  campaign.ModelSource
	Workers int
}

// Run mirrors Engine.Run with the oracle cell loop.
func (e *oracleEngine) Run(ctx context.Context, spec Spec) (*Result, error) {
	plan, err := spec.Plan()
	if err != nil {
		return nil, err
	}
	if e.Source == nil {
		return nil, fmt.Errorf("robust: engine has no model source")
	}
	trials := plan.Spec.Robustness.Trials
	ceng := campaign.Engine{Source: e.Source, Workers: e.Workers, KeepRaw: trials > 0}
	base, err := ceng.Run(ctx, plan.Spec.Spec)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: plan, Base: base}
	if trials == 0 {
		return res, nil
	}

	cp := base.Plan
	ci := 0
	for _, pt := range cp.Platforms {
		truth, err := e.Source.Environment(pt.Env)
		if err != nil {
			return nil, err
		}
		platNet, err := simgrid.NewNet(truth.Cluster)
		if err != nil {
			return nil, fmt.Errorf("robust: platform %s: %w", pt.Env, err)
		}
		for _, wp := range cp.Workloads {
			suite, err := dag.GenerateSuite(wp.SuiteSeed)
			if err != nil {
				return nil, err
			}
			suite = campaign.FilterSizes(suite, wp.Sizes)
			for _, kind := range cp.Models {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				model, _, err := e.Source.GetModel(pt.Env, kind, cp.Spec.Seed)
				if err != nil {
					return nil, fmt.Errorf("robust: fit %s/%s: %w", pt.Env, kind, err)
				}
				cell, err := e.stabilizeCell(ctx, plan, cp, pt, wp, kind, truth, platNet, suite, model, &base.Cells[ci])
				if err != nil {
					return nil, err
				}
				res.Cells = append(res.Cells, cell)
				ci++
			}
		}
	}
	return res, nil
}

// oracleTrialSetup is PR 5's trialSetup.
type oracleTrialSetup struct {
	cluster platform.Cluster
	cost    dag.CostFunc
	comm    dag.CommFunc
	model   *perfmodel.Perturbed
	net     *simgrid.Net
}

// stabilizeCell is PR 5's trial loop, verbatim: R trials per noise level,
// each re-scheduling and re-simulating every axis algorithm on every suite
// instance under the trial's perturbed model.
func (e *oracleEngine) stabilizeCell(ctx context.Context, plan *Plan, cp *campaign.Plan,
	pt campaign.PlatformPoint, wp campaign.WorkloadPoint, kind string,
	truth *cluster.Hidden, platNet *simgrid.Net, suite []dag.SuiteInstance,
	model perfmodel.Model, baseCell *campaign.CellScore) (CellStability, error) {

	axis := plan.Spec.Robustness
	algos := cp.Algorithms
	study := "robust/" + pt.Env + "/" + wp.Key() + "/" + kind
	nL, nT := len(axis.Levels), axis.Trials

	setups := make([][]oracleTrialSetup, nL)
	for li, level := range axis.Levels {
		setups[li] = make([]oracleTrialSetup, nT)
		for t := 0; t < nT; t++ {
			rng := rand.New(rand.NewSource(experiments.CellSeed(axis.Seed, study+"/level-"+strconv.Itoa(li), t)))
			draw := drawPerturbation(rng, axis.Noise, level)
			pm, err := perfmodel.NewPerturbed(model, draw.model)
			if err != nil {
				return CellStability{}, fmt.Errorf("robust: %s: %w", study, err)
			}
			c := truth.Cluster
			net := platNet
			if axis.Noise.platform() {
				c.LinkBandwidth *= draw.bandwidth
				c.BackplaneBandwidth *= draw.bandwidth
				c.LinkLatency *= draw.latency
				if net, err = simgrid.NewNet(c); err != nil {
					return CellStability{}, fmt.Errorf("robust: %s: %w", study, err)
				}
			}
			setups[li][t] = oracleTrialSetup{
				cluster: c,
				cost:    perfmodel.CostFunc(pm),
				comm:    perfmodel.CommFunc(pm, c),
				model:   pm,
				net:     net,
			}
		}
	}

	npairs := len(algos) * (len(algos) - 1) / 2
	type levelOut struct {
		flips  int
		ratios []float64
	}
	outs := make([][][]levelOut, len(suite)) // [instance][pair][level]
	raw := baseCell.Raw
	if raw == nil {
		return CellStability{}, fmt.Errorf("robust: %s: base campaign retained no per-instance data", study)
	}
	err := experiments.ForEachCellCtx(ctx, e.Workers, len(suite), func(i int) error {
		g := suite[i].Graph
		o := make([][]levelOut, npairs)
		for pi := range o {
			o[pi] = make([]levelOut, nL)
			for li := range o[pi] {
				o[pi][li].ratios = make([]float64, 0, nT)
			}
		}
		sims := make([]float64, len(algos))
		for li := range setups {
			for t := range setups[li] {
				setup := &setups[li][t]
				for ai, name := range algos {
					s, err := campaign.BuildSchedule(name, g, setup.cluster, setup.cost, setup.comm)
					if err != nil {
						return fmt.Errorf("robust: %s: %s on %s: %w", study, name, suite[i].Params.Name(), err)
					}
					s.Model = kind
					r, err := tgrid.Run(setup.net, s, tgrid.ModelTiming{Model: setup.model})
					if err != nil {
						return fmt.Errorf("robust: simulate %s: %s on %s: %w", study, name, suite[i].Params.Name(), err)
					}
					sims[ai] = r.Makespan
				}
				pi := 0
				for ai := 0; ai < len(algos); ai++ {
					for bi := ai + 1; bi < len(algos); bi++ {
						baseRel := stats.RelDiff(raw.Sim[i][ai], raw.Sim[i][bi])
						rel := stats.RelDiff(sims[ai], sims[bi])
						lo := &o[pi][li]
						if !stats.SameSign(baseRel, rel, 0) {
							lo.flips++
						}
						lo.ratios = append(lo.ratios, sims[bi]/sims[ai])
						pi++
					}
				}
			}
		}
		outs[i] = o
		return nil
	})
	if err != nil {
		return CellStability{}, err
	}

	cell := CellStability{Platform: pt, Workload: wp, Model: kind, Instances: len(suite)}
	pi := 0
	for ai := 0; ai < len(algos); ai++ {
		for bi := ai + 1; bi < len(algos); bi++ {
			ps := PairStability{A: algos[ai], B: algos[bi]}
			flipProb := make([][]float64, nL) // [level][instance]
			for li, level := range axis.Levels {
				probs := make([]float64, len(suite))
				means := make([]float64, len(suite))
				halves := make([]float64, len(suite))
				flipped := 0
				maxProb := 0.0
				for i := range suite {
					lo := outs[i][pi][li]
					p := float64(lo.flips) / float64(nT)
					probs[i] = p
					if p >= axis.FlipThreshold {
						flipped++
					}
					if p > maxProb {
						maxProb = p
					}
					means[i] = stats.Mean(lo.ratios)
					halves[i] = ci95Half(lo.ratios)
				}
				flipProb[li] = probs
				ps.Levels = append(ps.Levels, LevelStability{
					Level:        level,
					MeanFlipProb: stats.Mean(probs),
					MaxFlipProb:  maxProb,
					Flipped:      flipped,
					MedianRatio:  stats.Median(means),
					MedianCIHalf: stats.Median(halves),
				})
			}

			var criticals []float64
			fragile := make([]InstanceStability, 0, len(suite))
			for i := range suite {
				inst := InstanceStability{
					Name:     suite[i].Params.Name(),
					FlipProb: make([]float64, nL),
					Critical: math.NaN(),
				}
				maxProb := 0.0
				for li := range axis.Levels {
					p := flipProb[li][i]
					inst.FlipProb[li] = p
					if p > maxProb {
						maxProb = p
					}
					if math.IsNaN(inst.Critical) && p >= axis.FlipThreshold {
						inst.Critical = axis.Levels[li]
					}
				}
				if !math.IsNaN(inst.Critical) {
					criticals = append(criticals, inst.Critical)
				}
				if maxProb > 0 {
					fragile = append(fragile, inst)
				}
			}
			ps.NeverFlipped = len(suite) - len(criticals)
			if len(criticals) > 0 {
				ps.MedianCritical = stats.Median(criticals)
			} else {
				ps.MedianCritical = math.NaN()
			}
			sort.SliceStable(fragile, func(a, b int) bool {
				ca, cb := fragile[a].Critical, fragile[b].Critical
				if math.IsNaN(ca) != math.IsNaN(cb) {
					return !math.IsNaN(ca)
				}
				if !math.IsNaN(ca) && ca != cb {
					return ca < cb
				}
				ma, mb := maxOf(fragile[a].FlipProb), maxOf(fragile[b].FlipProb)
				if ma != mb {
					return ma > mb
				}
				return false
			})
			if len(fragile) > fragileLimit {
				fragile = fragile[:fragileLimit]
			}
			ps.Fragile = fragile
			cell.Pairs = append(cell.Pairs, ps)
			pi++
		}
	}
	return cell, nil
}
