package robust_test

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/profiler"
	"repro/internal/robust"
	"repro/internal/service"
)

// newEngine pairs a fresh fit-once registry with a robustness engine.
func newEngine(workers int) robust.Engine {
	reg := service.NewModelRegistry(profiler.DefaultProfileOptions(), profiler.DefaultEmpiricalOptions())
	return robust.Engine{Source: reg, Workers: workers}
}

// baseSpec is the small stability grid the tests sweep: one platform, the
// n=2000 half of the suite, the paper's HCPA-vs-MCPA pair under the
// analytic model.
func baseSpec() campaign.Spec {
	return campaign.Spec{
		Name:       "robust-test",
		Workloads:  campaign.WorkloadAxis{Sizes: []int{2000}},
		Algorithms: []string{"HCPA", "MCPA"},
		Models:     []string{"analytic"},
	}
}

func testSpec() robust.Spec {
	return robust.Spec{
		Spec: baseSpec(),
		Robustness: robust.Axis{
			Trials: 6,
			Levels: []float64{0.05, 0.2},
		},
	}
}

// TestTrialsZeroReducesToCampaign pins the acceptance criterion: a spec
// whose robustness axis is disabled renders byte-for-byte the base
// campaign's report.
func TestTrialsZeroReducesToCampaign(t *testing.T) {
	ceng := campaign.Engine{Source: newEngine(0).Source, Workers: 2}
	cres, err := ceng.Run(context.Background(), baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	cres.Write(&want)

	reng := newEngine(2)
	rres, err := reng.Run(context.Background(), robust.Spec{Spec: baseSpec()})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	rres.Write(&got)

	if got.String() != want.String() {
		t.Errorf("trials=0 robustness report differs from the base campaign report:\n--- robustness ---\n%s\n--- campaign ---\n%s",
			got.String(), want.String())
	}
	if len(rres.Cells) != 0 {
		t.Errorf("trials=0 produced %d stability cells, want 0", len(rres.Cells))
	}
	if rres.Base.Cells[0].Raw != nil {
		t.Error("trials=0 retained raw per-instance data; the base campaign should run unmodified")
	}
}

// TestRobustDeterministicAcrossWorkerCounts pins the acceptance criterion:
// the full robustness report is byte-identical at workers=1 and workers=8,
// each on a fresh registry — and attaching a live Progress record (as the
// service's job tracking and the CLI ticker do) changes nothing.
func TestRobustDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int, p *obs.Progress) string {
		eng := newEngine(workers)
		eng.Progress = p
		res, err := eng.Run(context.Background(), testSpec())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.Write(&buf)
		return buf.String()
	}
	serial := run(1, nil)
	parallel := run(8, nil)
	if serial != parallel {
		t.Errorf("robustness report differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}

	prog := &obs.Progress{}
	tracked := run(4, prog)
	if tracked != serial {
		t.Errorf("robustness report changes when a Progress record is attached:\n--- tracked ---\n%s\n--- bare ---\n%s",
			tracked, serial)
	}
	snap := prog.Snapshot()
	if snap.CellsTotal == 0 || snap.CellsDone != snap.CellsTotal {
		t.Errorf("progress finished at %d/%d cells, want all cells done", snap.CellsDone, snap.CellsTotal)
	}
	if snap.TrialBudget == 0 || snap.TrialsUsed == 0 || snap.TrialsUsed > snap.TrialBudget {
		t.Errorf("progress trials = %d of budget %d, want 0 < used <= budget", snap.TrialsUsed, snap.TrialBudget)
	}
}

// TestStabilityInvariants checks the Monte Carlo aggregates are internally
// consistent: probabilities in [0, 1], flipped counts bounded by the
// instance count, positive makespan ratios, fragile tables sorted by
// critical level, and the critical level drawn from the spec's level list.
func TestStabilityInvariants(t *testing.T) {
	eng := newEngine(0)
	spec := testSpec()
	res, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(res.Base.Cells) {
		t.Fatalf("stability cells %d != campaign cells %d", len(res.Cells), len(res.Base.Cells))
	}
	levels := res.Plan.Spec.Robustness.Levels
	for _, c := range res.Cells {
		if c.Instances != 27 {
			t.Errorf("cell %s has %d instances, want 27", c.Platform.Env, c.Instances)
		}
		for _, p := range c.Pairs {
			if len(p.Levels) != len(levels) {
				t.Fatalf("pair %s vs %s has %d level rows, want %d", p.A, p.B, len(p.Levels), len(levels))
			}
			for li, l := range p.Levels {
				if l.Level != levels[li] {
					t.Errorf("level row %d is %g, want %g", li, l.Level, levels[li])
				}
				if l.MeanFlipProb < 0 || l.MeanFlipProb > 1 || l.MaxFlipProb < 0 || l.MaxFlipProb > 1 {
					t.Errorf("flip probabilities out of [0,1]: mean=%g max=%g", l.MeanFlipProb, l.MaxFlipProb)
				}
				if l.MeanFlipProb > l.MaxFlipProb {
					t.Errorf("mean flip probability %g exceeds max %g", l.MeanFlipProb, l.MaxFlipProb)
				}
				if l.Flipped < 0 || l.Flipped > c.Instances {
					t.Errorf("flipped count %d outside [0, %d]", l.Flipped, c.Instances)
				}
				if !(l.MedianRatio > 0) {
					t.Errorf("median makespan ratio %g is not positive", l.MedianRatio)
				}
				if math.IsNaN(l.MedianCIHalf) || l.MedianCIHalf < 0 {
					t.Errorf("median CI half-width %g invalid for %d trials", l.MedianCIHalf, spec.Robustness.Trials)
				}
			}
			if p.NeverFlipped < 0 || p.NeverFlipped > c.Instances {
				t.Errorf("never-flipped %d outside [0, %d]", p.NeverFlipped, c.Instances)
			}
			if p.NeverFlipped < c.Instances {
				found := false
				for _, l := range levels {
					if p.MedianCritical == l {
						found = true
					}
				}
				if !found {
					t.Errorf("median critical %g is not one of the swept levels %v", p.MedianCritical, levels)
				}
			} else if !math.IsNaN(p.MedianCritical) {
				t.Errorf("no instance flipped but median critical is %g", p.MedianCritical)
			}
			for i := 1; i < len(p.Fragile); i++ {
				prev, cur := p.Fragile[i-1].Critical, p.Fragile[i].Critical
				if math.IsNaN(prev) && !math.IsNaN(cur) {
					t.Errorf("fragile table puts never-flipping %q before flipping %q", p.Fragile[i-1].Name, p.Fragile[i].Name)
				}
				if !math.IsNaN(prev) && !math.IsNaN(cur) && prev > cur {
					t.Errorf("fragile table not sorted by critical level: %g before %g", prev, cur)
				}
			}
		}
	}
}

// TestReportSections checks the rendered report carries the base campaign
// followed by every stability section.
func TestReportSections(t *testing.T) {
	eng := newEngine(0)
	res, err := eng.Run(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	out := buf.String()
	for _, want := range []string{
		"Campaign \"robust-test\"",
		"Winner prediction",
		"Robustness — Monte Carlo model perturbation",
		"Winner stability",
		"Critical noise level",
		"Most fragile instances",
		"HCPA vs MCPA",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
	if base := strings.Index(out, "Robustness —"); base <= 0 {
		t.Error("robustness sections should follow the base campaign report")
	}
}

// TestSpecValidation exercises the planner's limit enforcement: every
// rejected spec names the offending field.
func TestSpecValidation(t *testing.T) {
	withAxis := func(a robust.Axis) robust.Spec {
		return robust.Spec{Spec: baseSpec(), Robustness: a}
	}
	cases := []struct {
		name string
		spec robust.Spec
		want string
	}{
		{"negative trials", withAxis(robust.Axis{Trials: -1}), "robustness.trials"},
		{"oversized trials", withAxis(robust.Axis{Trials: robust.MaxTrials + 1}), "robustness.trials"},
		{"too many levels", withAxis(robust.Axis{Trials: 1, Levels: []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09}}), "robustness.levels"},
		{"level zero", withAxis(robust.Axis{Trials: 1, Levels: []float64{0}}), "robustness.levels"},
		{"level too large", withAxis(robust.Axis{Trials: 1, Levels: []float64{robust.MaxLevel + 1}}), "robustness.levels"},
		{"levels not increasing", withAxis(robust.Axis{Trials: 1, Levels: []float64{0.2, 0.1}}), "strictly increasing"},
		{"negative sigma", withAxis(robust.Axis{Trials: 1, Noise: robust.Noise{TaskTime: robust.Dim{MultSigma: -1}}}), "task_time.mult_sigma"},
		{"oversized sigma", withAxis(robust.Axis{Trials: 1, Noise: robust.Noise{Startup: robust.Dim{MultSigma: robust.MaxSigma + 1}}}), "startup.mult_sigma"},
		{"oversized add sigma", withAxis(robust.Axis{Trials: 1, Noise: robust.Noise{Redist: robust.Dim{AddSigma: robust.MaxAddSigma + 1}}}), "redist.add_sigma"},
		{"additive bandwidth", withAxis(robust.Axis{Trials: 1, Noise: robust.Noise{Bandwidth: robust.Dim{AddSigma: 1}}}), "multiplicative-only"},
		{"shaped latency", withAxis(robust.Axis{Trials: 1, Noise: robust.Noise{Latency: robust.Dim{ShapeSigma: 1}}}), "multiplicative-only"},
		{"oversized shape sigma", withAxis(robust.Axis{Trials: 1, Noise: robust.Noise{TaskTime: robust.Dim{ShapeSigma: robust.MaxSigma + 1}}}), "task_time.shape_sigma"},
		{"bad threshold", withAxis(robust.Axis{Trials: 1, FlipThreshold: 1.5}), "flip_threshold"},
		{"NaN threshold", withAxis(robust.Axis{Trials: 1, FlipThreshold: math.NaN()}), "flip_threshold"},
		{"NaN stop z", withAxis(robust.Axis{Trials: 1, StopZ: math.NaN()}), "stop_z"},
		{"negative stop z", withAxis(robust.Axis{Trials: 1, StopZ: -1}), "stop_z"},
		{"oversized stop z", withAxis(robust.Axis{Trials: 1, StopZ: robust.MaxStopZ + 1}), "stop_z"},
		{"negative min trials", withAxis(robust.Axis{Trials: 1, MinTrials: -1}), "min_trials"},
		{"oversized min trials", withAxis(robust.Axis{Trials: 1, MinTrials: robust.MaxTrials + 1}), "min_trials"},
		{"min trials over budget", withAxis(robust.Axis{Trials: 2, Sequential: true, MinTrials: 3}), "min_trials"},
		{"trial-run budget", func() robust.Spec {
			// 17 platform points × 2 algorithms × 8 levels × 64 trials =
			// 17408 trial runs, just over the 16384 budget.
			s := withAxis(robust.Axis{Trials: robust.MaxTrials, Levels: []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08}})
			for n := 4; n < 21; n++ {
				s.Platforms.Nodes = append(s.Platforms.Nodes, n)
			}
			return s
		}(), "trial runs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.Plan(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Plan() error %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestSpecDefaults checks the axis normalization: trials > 0 fills the
// documented defaults; trials == 0 zeroes the axis so the plan is
// unambiguous.
func TestSpecDefaults(t *testing.T) {
	p, err := robust.Spec{Spec: baseSpec(), Robustness: robust.Axis{Trials: 4}}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	a := p.Spec.Robustness
	if a.Seed != p.Campaign.Spec.Seed {
		t.Errorf("default perturbation seed %d, want the campaign seed %d", a.Seed, p.Campaign.Spec.Seed)
	}
	if len(a.Levels) != 3 || a.Levels[0] != 0.05 {
		t.Errorf("default levels %v, want {0.05, 0.1, 0.2}", a.Levels)
	}
	if a.Noise.TaskTime.ShapeSigma != 1 || a.Noise.Startup.ShapeSigma != 1 || a.Noise.Redist.ShapeSigma != 1 {
		t.Errorf("default noise %+v, want sigma-1 shape noise on the three model dimensions", a.Noise)
	}
	if a.Noise.Bandwidth != (robust.Dim{}) || a.Noise.Latency != (robust.Dim{}) {
		t.Errorf("default noise %+v perturbs the platform; it should not", a.Noise)
	}
	if a.FlipThreshold != 0.5 {
		t.Errorf("default flip threshold %g, want 0.5", a.FlipThreshold)
	}
	if a.Sequential || a.StopZ != 0 || a.MinTrials != 0 {
		t.Errorf("sequential defaults %+v leaked into a non-sequential axis", a)
	}
	if p.TrialRuns() != 1*2*3*4 {
		t.Errorf("trial runs %d, want %d", p.TrialRuns(), 1*2*3*4)
	}

	pq, err := robust.Spec{Spec: baseSpec(), Robustness: robust.Axis{Trials: 4, Sequential: true}}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if aq := pq.Spec.Robustness; aq.StopZ != robust.DefaultStopZ || aq.MinTrials != robust.DefaultMinTrials {
		t.Errorf("sequential defaults z=%g min=%d, want z=%g min=%d",
			aq.StopZ, aq.MinTrials, robust.DefaultStopZ, robust.DefaultMinTrials)
	}

	p0, err := robust.Spec{Spec: baseSpec(), Robustness: robust.Axis{Levels: []float64{9999}}}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if a0 := p0.Spec.Robustness; !reflect.DeepEqual(a0, robust.Axis{}) {
		t.Errorf("trials=0 axis %+v, want zero value", a0)
	}
}
