package robust_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/robust"
	"repro/internal/sched"
)

// The differential harness: the production engine's allocation-free trial
// loop (scratch scheduling, schedule replay) against the preserved PR 5
// loop, which built and simulated everything from scratch. With sequential
// stopping off the two must render byte-identical reports — the fast path
// is an optimisation, not a semantics change.

// diffSpecs spans the fast path's regimes: the default reschedule path, the
// per-trial-network path under platform noise, and the replay-all path the
// engine auto-selects when the noise provably cannot move any scheduler
// input (multiplicative/shape noise on the analytic model's identically-zero
// startup and redistribution overheads).
func diffSpecs() []struct {
	name string
	spec robust.Spec
} {
	axis := func(a robust.Axis) robust.Spec { return robust.Spec{Spec: baseSpec(), Robustness: a} }
	return []struct {
		name string
		spec robust.Spec
	}{
		{"resched-default-noise", axis(robust.Axis{Trials: 5, Levels: []float64{0.05, 0.2}})},
		{"resched-platform-noise", axis(robust.Axis{
			Trials: 4,
			Levels: []float64{0.1, 0.3},
			Noise: robust.Noise{
				TaskTime:  robust.Dim{MultSigma: 0.5, ShapeSigma: 0.5},
				Bandwidth: robust.Dim{MultSigma: 0.5},
				Latency:   robust.Dim{MultSigma: 0.5},
			},
		})},
		{"replay-invariant-noise", axis(robust.Axis{
			Trials: 4,
			Levels: []float64{0.1, 0.3},
			Noise: robust.Noise{
				Startup: robust.Dim{MultSigma: 1, ShapeSigma: 1},
				Redist:  robust.Dim{MultSigma: 0.5, ShapeSigma: 1},
			},
		})},
	}
}

// TestFastPathMatchesOracle pins the tentpole's correctness claim: for every
// regime and several worker counts, the fast path's report is byte-identical
// to the PR 5 oracle's.
func TestFastPathMatchesOracle(t *testing.T) {
	for _, tc := range diffSpecs() {
		t.Run(tc.name, func(t *testing.T) {
			oracle := robust.OracleEngine{Source: newEngine(0).Source, Workers: 2}
			ores, err := oracle.Run(context.Background(), tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			ores.Write(&want)

			for _, workers := range []int{1, 2, 8} {
				eng := newEngine(workers)
				res, err := eng.Run(context.Background(), tc.spec)
				if err != nil {
					t.Fatal(err)
				}
				var got bytes.Buffer
				res.Write(&got)
				if got.String() != want.String() {
					t.Errorf("workers=%d: fast path diverged from the PR 5 oracle:\n--- fast ---\n%s\n--- oracle ---\n%s",
						workers, got.String(), want.String())
				}
			}
		})
	}
}

// TestPredictionOnlyDeterministic covers the regime the oracle cannot: a
// prediction-only spec pins every trial to the base schedules (new
// semantics, no PR 5 equivalent), so the guarantee is worker-count
// byte-identity plus a report that actually moves (the perturbed simulator
// sees real task-time noise).
func TestPredictionOnlyDeterministic(t *testing.T) {
	spec := robust.Spec{Spec: baseSpec(), Robustness: robust.Axis{
		Trials:         6,
		Levels:         []float64{0.05, 0.2},
		PredictionOnly: true,
	}}
	run := func(workers int) string {
		eng := newEngine(workers)
		res, err := eng.Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.Write(&buf)
		return buf.String()
	}
	serial := run(1)
	if parallel := run(8); serial != parallel {
		t.Errorf("prediction-only report differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestReplayEligibleScheduleStable pins the replay-all path's premise with
// the schedulers themselves: for draws the eligibility predicate accepts,
// rescheduling under the perturbed model reproduces the base schedule
// node-for-node, so replaying the base schedule loses nothing.
func TestReplayEligibleScheduleStable(t *testing.T) {
	c := platform.Bayreuth()
	base := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(base)
	comm := perfmodel.CommFunc(base, c)

	noise := robust.Noise{
		Startup: robust.Dim{MultSigma: 1, ShapeSigma: 1},
		Redist:  robust.Dim{MultSigma: 0.5, ShapeSigma: 1},
	}
	if !robust.ScheduleInvariant(noise, base, c.Nodes) {
		t.Fatal("startup/redist noise on the analytic model should be schedule-invariant")
	}

	draws := []perfmodel.Perturbation{
		{TaskFactor: 1, StartupFactor: 1.7, RedistFactor: 0.6, Salt: 11},
		{TaskFactor: 1, StartupFactor: 0.4, RedistFactor: 1.9, StartupShape: 0.5, RedistShape: 0.8, Salt: 12},
	}
	for seed := int64(0); seed < 3; seed++ {
		g := dag.MustGenerate(dag.GenParams{Tasks: 9 + int(seed)*6, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 50 + seed})
		for _, algo := range []sched.Algorithm{sched.HCPA{}, sched.MCPA{}} {
			want, err := sched.Build(algo, g, c.Nodes, cost, comm)
			if err != nil {
				t.Fatal(err)
			}
			for di, draw := range draws {
				pm, err := perfmodel.NewPerturbed(base, draw)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sched.Build(algo, g, c.Nodes, perfmodel.CostFunc(pm), perfmodel.CommFunc(pm, c))
				if err != nil {
					t.Fatal(err)
				}
				ctx := g.Name + "/" + algo.Name()
				if got.Algorithm != want.Algorithm || len(got.Alloc) != len(want.Alloc) {
					t.Fatalf("%s draw %d: schedule shape differs", ctx, di)
				}
				for i := range want.Alloc {
					if got.Alloc[i] != want.Alloc[i] {
						t.Fatalf("%s draw %d: task %d alloc %d != %d", ctx, di, i, got.Alloc[i], want.Alloc[i])
					}
					for j := range want.Hosts[i] {
						if got.Hosts[i][j] != want.Hosts[i][j] {
							t.Fatalf("%s draw %d: task %d hosts %v != %v", ctx, di, i, got.Hosts[i], want.Hosts[i])
						}
					}
					if got.EstStart[i] != want.EstStart[i] || got.EstFinish[i] != want.EstFinish[i] {
						t.Fatalf("%s draw %d: task %d window [%g,%g] != [%g,%g]", ctx, di, i,
							got.EstStart[i], got.EstFinish[i], want.EstStart[i], want.EstFinish[i])
					}
				}
			}
		}
	}
}
