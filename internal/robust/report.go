package robust

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// This file renders a robustness Result into the deterministic text report:
// the base campaign report first (byte-identical to running the campaign
// alone), then — only when the Monte Carlo stage ran — the winner-stability
// sections. Cells, pairs and levels are emitted in plan order and every
// number has fixed precision, so the report is byte-identical across runs
// and worker counts.

// Write renders the robustness report.
func (r *Result) Write(w io.Writer) {
	r.Base.Write(w)
	axis := r.Plan.Spec.Robustness
	if axis.Trials == 0 {
		return
	}

	fmt.Fprintf(w, "\nRobustness — Monte Carlo model perturbation (§V stress test)\n")
	fmt.Fprintf(w, "  trials=%d per level, perturbation seed=%d, flip threshold=%.2f\n",
		axis.Trials, axis.Seed, axis.FlipThreshold)
	fmt.Fprintf(w, "  noise: %s   levels: %s\n", noiseLine(axis.Noise), levelsLine(axis.Levels))

	platW, wlW := r.columnWidths()

	fmt.Fprintf(w, "\nWinner stability — does the simulated winner survive model error?\n")
	fmt.Fprintf(w, "  %-*s %-*s %-10s %-14s %6s %11s %8s %8s %14s %9s\n",
		platW, "platform", wlW, "workload", "model", "pair",
		"level", "p(flip)", "max", "flipped", "med ratio B/A", "95% CI")
	for _, c := range r.Cells {
		for _, p := range c.Pairs {
			for _, l := range p.Levels {
				fmt.Fprintf(w, "  %-*s %-*s %-10s %-14s %6.2f %11.3f %8.3f %5d/%-3d %14.3f %9s\n",
					platW, c.Platform.Env, wlW, c.Workload.Key(), c.Model,
					p.A+" vs "+p.B, l.Level, l.MeanFlipProb, l.MaxFlipProb,
					l.Flipped, c.Instances, l.MedianRatio, ciString(l.MedianCIHalf))
			}
		}
	}

	if axis.Sequential {
		fmt.Fprintf(w, "\nSequential stopping — Wilson z=%.2f, min trials=%d\n", axis.StopZ, axis.MinTrials)
		fmt.Fprintf(w, "  %-*s %-*s %-10s %6s %15s %7s\n",
			platW, "platform", wlW, "workload", "model",
			"level", "trials used", "saved")
		for _, c := range r.Cells {
			for li, l := range axis.Levels {
				used, budget := c.TrialsUsed[li], c.TrialBudget
				saved := 0.0
				if budget > 0 {
					saved = 100 * float64(budget-used) / float64(budget)
				}
				fmt.Fprintf(w, "  %-*s %-*s %-10s %6.2f %9d/%-5d %6.1f%%\n",
					platW, c.Platform.Env, wlW, c.Workload.Key(), c.Model,
					l, used, budget, saved)
			}
		}
	}

	fmt.Fprintf(w, "\nCritical noise level — smallest level whose flip probability reaches %.2f\n", axis.FlipThreshold)
	fmt.Fprintf(w, "  %-*s %-*s %-10s %-14s %15s %14s\n",
		platW, "platform", wlW, "workload", "model", "pair",
		"median critical", "never flipped")
	for _, c := range r.Cells {
		for _, p := range c.Pairs {
			crit := "-"
			if !math.IsNaN(p.MedianCritical) {
				crit = fmt.Sprintf("%.2f", p.MedianCritical)
			}
			fmt.Fprintf(w, "  %-*s %-*s %-10s %-14s %15s %10d/%-3d\n",
				platW, c.Platform.Env, wlW, c.Workload.Key(), c.Model,
				p.A+" vs "+p.B, crit, p.NeverFlipped, c.Instances)
		}
	}

	for _, c := range r.Cells {
		for _, p := range c.Pairs {
			fmt.Fprintf(w, "\nMost fragile instances — %s %s %s %s vs %s (top %d by critical level)\n",
				c.Platform.Env, c.Workload.Key(), c.Model, p.A, p.B, fragileLimit)
			if len(p.Fragile) == 0 {
				fmt.Fprintf(w, "  every instance keeps its base winner in all %d trials at every level\n", axis.Trials)
				continue
			}
			header := fmt.Sprintf("  %-44s", "instance")
			for _, l := range axis.Levels {
				header += fmt.Sprintf(" %9s", fmt.Sprintf("p@%.2f", l))
			}
			header += fmt.Sprintf(" %9s", "critical")
			fmt.Fprintln(w, header)
			for _, inst := range p.Fragile {
				row := fmt.Sprintf("  %-44s", inst.Name)
				for _, fp := range inst.FlipProb {
					row += fmt.Sprintf(" %9.3f", fp)
				}
				crit := "-"
				if !math.IsNaN(inst.Critical) {
					crit = fmt.Sprintf("%.2f", inst.Critical)
				}
				row += fmt.Sprintf(" %9s", crit)
				fmt.Fprintln(w, row)
			}
		}
	}
}

// noiseLine renders the active noise dimensions compactly, in schema order.
func noiseLine(n Noise) string {
	var parts []string
	dim := func(name string, d Dim) {
		if !d.active() {
			return
		}
		var comps []string
		if d.MultSigma != 0 {
			comps = append(comps, fmt.Sprintf("×σ=%g", d.MultSigma))
		}
		if d.AddSigma != 0 {
			comps = append(comps, fmt.Sprintf("+σ=%gs", d.AddSigma))
		}
		if d.ShapeSigma != 0 {
			comps = append(comps, fmt.Sprintf("shape σ=%g", d.ShapeSigma))
		}
		parts = append(parts, name+"("+strings.Join(comps, " ")+")")
	}
	dim("task_time", n.TaskTime)
	dim("startup", n.Startup)
	dim("redist", n.Redist)
	dim("bandwidth", n.Bandwidth)
	dim("latency", n.Latency)
	return strings.Join(parts, " ")
}

// levelsLine renders the level sweep.
func levelsLine(levels []float64) string {
	parts := make([]string, len(levels))
	for i, l := range levels {
		parts[i] = fmt.Sprintf("%g", l)
	}
	return strings.Join(parts, " ")
}

// ciString renders a 95% confidence half-width; "-" with fewer than two
// trials (no spread to estimate).
func ciString(half float64) string {
	if math.IsNaN(half) {
		return "-"
	}
	return fmt.Sprintf("±%.3f", half)
}

// columnWidths sizes the platform and workload columns like the campaign
// report does, so the stability tables line up with the base report above
// them.
func (r *Result) columnWidths() (int, int) {
	platW, wlW := len("platform"), len("workload")
	for _, c := range r.Cells {
		if len(c.Platform.Env) > platW {
			platW = len(c.Platform.Env)
		}
		if len(c.Workload.Key()) > wlW {
			wlW = len(c.Workload.Key())
		}
	}
	return platW, wlW
}
