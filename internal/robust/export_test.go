package robust

// Test-only exports: the external test package (robust_test) drives the
// preserved PR 5 oracle loop (oracle_test.go) and the fast path's
// replay-eligibility and stopping primitives directly.

// OracleEngine is the preserved PR 5 trial loop.
type OracleEngine = oracleEngine

var (
	ScheduleInvariant = scheduleInvariant
	WilsonCI          = wilsonCI
	SeqDecided        = seqDecided
)
