package robust_test

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/robust"
)

func sequentialSpec() robust.Spec {
	return robust.Spec{Spec: baseSpec(), Robustness: robust.Axis{
		Trials:     16,
		Levels:     []float64{0.05, 0.2},
		Sequential: true,
	}}
}

// TestSequentialStoppingAgreement pins the stop rule's statistical claim on
// synthetic cells with known flip probabilities: across seeded Bernoulli
// trial streams, the decision taken at the Wilson stopping time (flip
// fraction vs threshold) agrees with the full-budget decision in at least
// 99% of runs — early stopping trades trials, not conclusions.
func TestSequentialStoppingAgreement(t *testing.T) {
	const (
		budget    = 64
		minTrials = robust.DefaultMinTrials
		z         = robust.DefaultStopZ
		thr       = 0.5
		runs      = 2000
	)
	rng := rand.New(rand.NewSource(424242))
	for _, trueP := range []float64{0.02, 0.1, 0.3, 0.7, 0.9, 0.98} {
		agree, savedTotal := 0, 0
		for r := 0; r < runs; r++ {
			flips, used, stopFlips := 0, budget, -1
			for n := 1; n <= budget; n++ {
				if rng.Float64() < trueP {
					flips++
				}
				if stopFlips < 0 && n >= minTrials && robust.SeqDecided(flips, n, thr, z) {
					used, stopFlips = n, flips
				}
			}
			if stopFlips < 0 {
				stopFlips = flips // never decided: sequential uses the full budget
			}
			seqFlip := float64(stopFlips)/float64(used) >= thr
			fullFlip := float64(flips)/float64(budget) >= thr
			if seqFlip == fullFlip {
				agree++
			}
			savedTotal += budget - used
		}
		if frac := float64(agree) / runs; frac < 0.99 {
			t.Errorf("p=%g: sequential decision agrees with full budget in %.1f%% of runs, want >= 99%%",
				trueP, 100*frac)
		}
		if trueP <= 0.1 || trueP >= 0.9 {
			if savedTotal == 0 {
				t.Errorf("p=%g: stopping never saved a trial; the rule is inert", trueP)
			}
		}
	}
}

// TestSequentialEngineInvariants runs a sequential spec end to end and
// checks the bookkeeping: per-level trial sums within [instances·min,
// budget], determinism across worker counts, and the trials-saved report
// section.
func TestSequentialEngineInvariants(t *testing.T) {
	run := func(workers int) (*robust.Result, string) {
		eng := newEngine(workers)
		res, err := eng.Run(context.Background(), sequentialSpec())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.Write(&buf)
		return res, buf.String()
	}
	res, serial := run(1)
	if _, parallel := run(8); serial != parallel {
		t.Errorf("sequential report differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	if !strings.Contains(serial, "Sequential stopping — Wilson z=1.96, min trials=2") {
		t.Errorf("sequential report lacks the stopping section:\n%s", serial)
	}

	axis := res.Plan.Spec.Robustness
	for _, c := range res.Cells {
		if len(c.TrialsUsed) != len(axis.Levels) {
			t.Fatalf("cell %s: TrialsUsed has %d levels, want %d", c.Platform.Env, len(c.TrialsUsed), len(axis.Levels))
		}
		if c.TrialBudget != c.Instances*axis.Trials {
			t.Errorf("cell %s: budget %d, want %d", c.Platform.Env, c.TrialBudget, c.Instances*axis.Trials)
		}
		saved := false
		for li, used := range c.TrialsUsed {
			if used < c.Instances*axis.MinTrials || used > c.TrialBudget {
				t.Errorf("cell %s level %d: %d trials used outside [%d, %d]",
					c.Platform.Env, li, used, c.Instances*axis.MinTrials, c.TrialBudget)
			}
			if used < c.TrialBudget {
				saved = true
			}
		}
		if !saved {
			t.Errorf("cell %s: sequential stopping saved no trials at any level", c.Platform.Env)
		}
	}
}

// TestSequentialOffIsByteIdentical pins the compatibility claim: the same
// spec with sequential stopping off reproduces the PR 5 semantics (flip
// probabilities over the full budget, no TrialsUsed, no report section).
func TestSequentialOffIsByteIdentical(t *testing.T) {
	spec := sequentialSpec()
	spec.Robustness.Sequential = false

	oracle := robust.OracleEngine{Source: newEngine(0).Source, Workers: 2}
	ores, err := oracle.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	ores.Write(&want)

	eng := newEngine(2)
	res, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	res.Write(&got)
	if got.String() != want.String() {
		t.Errorf("sequential=false diverged from the PR 5 oracle:\n--- fast ---\n%s\n--- oracle ---\n%s",
			got.String(), want.String())
	}
	for _, c := range res.Cells {
		if c.TrialsUsed != nil || c.TrialBudget != 0 {
			t.Errorf("sequential=false cell carries stopping bookkeeping: used=%v budget=%d", c.TrialsUsed, c.TrialBudget)
		}
	}
	if strings.Contains(got.String(), "Sequential stopping") {
		t.Error("sequential=false report renders the stopping section")
	}
}
