package robust_test

import (
	"testing"
	"testing/quick"

	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/robust"
)

// overheadModel wraps a model with nonzero startup and redistribution
// overheads, so the invariance probe sees surfaces noise can actually move.
type overheadModel struct{ perfmodel.Model }

func (m overheadModel) StartupOverhead(p int) float64         { return 0.001 * float64(p) }
func (m overheadModel) RedistOverhead(pSrc, pDst int) float64 { return 0.0001 * float64(pSrc*pDst) }

// TestScheduleInvariantProperties drives the replay-eligibility predicate
// with randomized noise shapes: it must never accept noise that can reach a
// scheduler input. Soundness is the safety property (a wrong accept would
// silently replay stale schedules); the completeness direction is pinned for
// the analytic model, whose overhead surfaces are identically zero.
func TestScheduleInvariantProperties(t *testing.T) {
	c := platform.Bayreuth()
	analytic := perfmodel.NewAnalytic(c)
	withOverheads := overheadModel{analytic}

	sigma := func(b byte) float64 { return float64(b%4) * 0.5 } // {0, 0.5, 1, 1.5}
	mkNoise := func(raw [13]byte) robust.Noise {
		return robust.Noise{
			TaskTime:  robust.Dim{MultSigma: sigma(raw[0]), AddSigma: sigma(raw[1]), ShapeSigma: sigma(raw[2])},
			Startup:   robust.Dim{MultSigma: sigma(raw[3]), AddSigma: sigma(raw[4]), ShapeSigma: sigma(raw[5])},
			Redist:    robust.Dim{MultSigma: sigma(raw[6]), AddSigma: sigma(raw[7]), ShapeSigma: sigma(raw[8])},
			Bandwidth: robust.Dim{MultSigma: sigma(raw[9]), AddSigma: sigma(raw[10])},
			Latency:   robust.Dim{MultSigma: sigma(raw[11]), AddSigma: sigma(raw[12])},
		}
	}

	sound := func(raw [13]byte) bool {
		n := mkNoise(raw)
		inv := robust.ScheduleInvariant(n, analytic, c.Nodes)
		// Any dimension with a schedule-affecting component forces a reschedule.
		if n.TaskTime.MultSigma != 0 || n.TaskTime.AddSigma != 0 || n.TaskTime.ShapeSigma != 0 {
			return !inv
		}
		if n.Bandwidth.MultSigma != 0 || n.Bandwidth.AddSigma != 0 ||
			n.Latency.MultSigma != 0 || n.Latency.AddSigma != 0 {
			return !inv
		}
		if n.Startup.AddSigma != 0 || n.Redist.AddSigma != 0 {
			return !inv
		}
		// What remains is multiplicative/shape noise on the analytic model's
		// identically-zero overheads: provably inert, so replay is allowed.
		return inv
	}
	if err := quick.Check(sound, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}

	// With real overhead surfaces, multiplicative startup/redist noise moves
	// the scheduler's comm estimates — the predicate must refuse.
	strict := func(raw [13]byte) bool {
		n := mkNoise(raw)
		if n.Startup == (robust.Dim{}) && n.Redist == (robust.Dim{}) {
			return true // nothing to probe
		}
		return !robust.ScheduleInvariant(n, withOverheads, c.Nodes)
	}
	if err := quick.Check(strict, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
