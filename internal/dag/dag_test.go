package dag

import (
	"strings"
	"testing"
)

func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	a := g.AddTask(KernelMul, 100)
	b := g.AddTask(KernelAdd, 100)
	c := g.AddTask(KernelMul, 100)
	d := g.AddTask(KernelAdd, 100)
	g.AddEdge(a.ID, b.ID)
	g.AddEdge(a.ID, c.ID)
	g.AddEdge(b.ID, d.ID)
	g.AddEdge(c.ID, d.ID)
	if err := g.Validate(); err != nil {
		t.Fatalf("diamond invalid: %v", err)
	}
	return g
}

func TestAddTaskAssignsDenseIDs(t *testing.T) {
	g := New("x")
	for i := 0; i < 5; i++ {
		task := g.AddTask(KernelMul, 10)
		if task.ID != i {
			t.Fatalf("task %d got ID %d", i, task.ID)
		}
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
}

func TestAddEdgeSymmetricAndDeduped(t *testing.T) {
	g := New("x")
	a := g.AddTask(KernelMul, 10)
	b := g.AddTask(KernelMul, 10)
	g.AddEdge(a.ID, b.ID)
	g.AddEdge(a.ID, b.ID) // duplicate ignored
	if got := a.OutDegree(); got != 1 {
		t.Errorf("src out-degree = %d, want 1", got)
	}
	if got := b.InDegree(); got != 1 {
		t.Errorf("dst in-degree = %d, want 1", got)
	}
	if g.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d, want 1", g.EdgeCount())
	}
}

func TestAddEdgeSelfLoopPanics(t *testing.T) {
	g := New("x")
	a := g.AddTask(KernelMul, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("self edge did not panic")
		}
	}()
	g.AddEdge(a.ID, a.ID)
}

func TestEntriesAndExits(t *testing.T) {
	g := diamond(t)
	if e := g.Entries(); len(e) != 1 || e[0] != 0 {
		t.Errorf("Entries = %v, want [0]", e)
	}
	if x := g.Exits(); len(x) != 1 || x[0] != 3 {
		t.Errorf("Exits = %v, want [3]", x)
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, task := range g.Tasks {
		for _, s := range task.Succs() {
			if pos[task.ID] >= pos[s] {
				t.Errorf("edge %d->%d violates topo order %v", task.ID, s, order)
			}
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New("cycle")
	a := g.AddTask(KernelMul, 10)
	b := g.AddTask(KernelMul, 10)
	c := g.AddTask(KernelMul, 10)
	g.AddEdge(a.ID, b.ID)
	g.AddEdge(b.ID, c.ID)
	g.AddEdge(c.ID, a.ID)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Validate error = %v, want cycle error", err)
	}
}

func TestLevels(t *testing.T) {
	g := diamond(t)
	level, n := g.Levels()
	want := []int{0, 1, 1, 2}
	if n != 3 {
		t.Fatalf("levels = %d, want 3", n)
	}
	for i, l := range level {
		if l != want[i] {
			t.Errorf("level[%d] = %d, want %d", i, l, want[i])
		}
	}
}

func TestWidth(t *testing.T) {
	g := diamond(t)
	if w := g.Width(); w != 2 {
		t.Errorf("Width = %d, want 2", w)
	}
}

func TestFlops(t *testing.T) {
	mul := &Task{Kernel: KernelMul, N: 100}
	if got, want := mul.Flops(), 2e6; got != want {
		t.Errorf("mul flops = %g, want %g", got, want)
	}
	add := &Task{Kernel: KernelAdd, N: 100}
	// boosted addition: (n/4)·n² = 25·10000
	if got, want := add.Flops(), 25.0*10000; got != want {
		t.Errorf("add flops = %g, want %g", got, want)
	}
	noop := &Task{Kernel: KernelNoop}
	if noop.Flops() != 0 {
		t.Errorf("noop flops = %g, want 0", noop.Flops())
	}
}

func TestMatrixBytes(t *testing.T) {
	// The paper: n=2000 → ~30 MB, n=3000 → ~68 MB.
	if got := MatrixBytes(2000); got != 32_000_000 {
		t.Errorf("MatrixBytes(2000) = %d, want 32000000", got)
	}
	if got := MatrixBytes(3000); got != 72_000_000 {
		t.Errorf("MatrixBytes(3000) = %d, want 72000000", got)
	}
}

func TestClone(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.AddEdge(0, 3)
	if g.EdgeCount() == c.EdgeCount() {
		t.Error("clone shares edge storage with original")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("original damaged by clone mutation: %v", err)
	}
}

func TestCountKernel(t *testing.T) {
	g := diamond(t)
	if got := g.CountKernel(KernelAdd); got != 2 {
		t.Errorf("CountKernel(add) = %d, want 2", got)
	}
	if got := g.CountKernel(KernelMul); got != 2 {
		t.Errorf("CountKernel(mul) = %d, want 2", got)
	}
}

func TestBottomLevelsDiamond(t *testing.T) {
	g := diamond(t)
	alloc := []int{1, 1, 1, 1}
	unit := func(task *Task, p int) float64 { return 1 }
	bl := g.BottomLevels(alloc, unit, nil)
	want := []float64{3, 2, 2, 1}
	for i := range bl {
		if bl[i] != want[i] {
			t.Errorf("bl[%d] = %g, want %g", i, bl[i], want[i])
		}
	}
}

func TestTopLevelsDiamond(t *testing.T) {
	g := diamond(t)
	alloc := []int{1, 1, 1, 1}
	unit := func(task *Task, p int) float64 { return 1 }
	tl := g.TopLevels(alloc, unit, nil)
	want := []float64{0, 1, 1, 2}
	for i := range tl {
		if tl[i] != want[i] {
			t.Errorf("tl[%d] = %g, want %g", i, tl[i], want[i])
		}
	}
}

func TestCriticalPathLengthWithComm(t *testing.T) {
	g := diamond(t)
	alloc := []int{1, 1, 1, 1}
	unit := func(task *Task, p int) float64 { return 1 }
	comm := func(src, dst *Task, ps, pd int) float64 { return 0.5 }
	// path: 1 + 0.5 + 1 + 0.5 + 1 = 4
	if got := g.CriticalPathLength(alloc, unit, comm); got != 4 {
		t.Errorf("T_CP = %g, want 4", got)
	}
}

func TestCriticalPathIsPath(t *testing.T) {
	g := diamond(t)
	alloc := []int{1, 1, 1, 1}
	cost := func(task *Task, p int) float64 { return float64(task.ID + 1) }
	path := g.CriticalPath(alloc, cost, nil)
	if len(path) < 2 {
		t.Fatalf("path too short: %v", path)
	}
	if path[0] != 0 || path[len(path)-1] != 3 {
		t.Errorf("path %v should go entry 0 → exit 3", path)
	}
	for i := 0; i+1 < len(path); i++ {
		found := false
		for _, s := range g.Task(path[i]).Succs() {
			if s == path[i+1] {
				found = true
			}
		}
		if !found {
			t.Errorf("path step %d->%d is not an edge", path[i], path[i+1])
		}
	}
}

func TestAverageArea(t *testing.T) {
	g := diamond(t)
	alloc := []int{2, 1, 1, 4}
	cost := func(task *Task, p int) float64 { return 10 }
	// Σ t·p = 10·2 + 10 + 10 + 10·4 = 80; /N=8 → 10
	if got := g.AverageArea(alloc, cost, 8); got != 10 {
		t.Errorf("T_A = %g, want 10", got)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := New("empty")
	if err := g.Validate(); err != nil {
		t.Errorf("empty graph invalid: %v", err)
	}
	order, err := g.TopoOrder()
	if err != nil || len(order) != 0 {
		t.Errorf("TopoOrder = %v, %v", order, err)
	}
	if g.Width() != 0 {
		t.Errorf("Width = %d, want 0", g.Width())
	}
}
