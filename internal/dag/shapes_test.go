package dag

import (
	"bytes"
	"strings"
	"testing"
)

func TestChainShape(t *testing.T) {
	g := Chain(5, 100, KernelMul, KernelAdd)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 || g.EdgeCount() != 4 || g.Width() != 1 {
		t.Errorf("chain shape wrong: %d tasks %d edges width %d", g.Len(), g.EdgeCount(), g.Width())
	}
	if g.Task(0).Kernel != KernelMul || g.Task(1).Kernel != KernelAdd {
		t.Error("kernel alternation wrong")
	}
}

func TestForkJoinShape(t *testing.T) {
	g := ForkJoin(4, 2, 100)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1+4*2+1 {
		t.Errorf("fork-join has %d tasks, want 10", g.Len())
	}
	if len(g.Entries()) != 1 || len(g.Exits()) != 1 {
		t.Error("fork-join must have a single source and sink")
	}
	if g.Width() != 4 {
		t.Errorf("width = %d, want 4", g.Width())
	}
}

func TestLayeredShape(t *testing.T) {
	g := Layered(3, 4, 100)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 12 || g.EdgeCount() != 2*4*4 {
		t.Errorf("layered shape wrong: %d tasks %d edges", g.Len(), g.EdgeCount())
	}
	_, levels := g.Levels()
	if levels != 3 {
		t.Errorf("levels = %d, want 3", levels)
	}
}

func TestDiamondShape(t *testing.T) {
	g := Diamond(100)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 || g.Width() != 2 {
		t.Error("diamond shape wrong")
	}
}

func TestShapePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"chain":    func() { Chain(0, 10) },
		"forkjoin": func() { ForkJoin(0, 1, 10) },
		"layered":  func() { Layered(1, 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with zero size did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestWriteDOT(t *testing.T) {
	g := Diamond(100)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "t0 -> t1", "t2 -> t3", "ellipse", "box"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestTotalsAndCCR(t *testing.T) {
	g := Diamond(1000)
	wantFlops := 2*(2e9) + 2*(250*1e6) // two muls + two boosted adds
	if got := g.TotalFlops(); got != wantFlops {
		t.Errorf("TotalFlops = %g, want %g", got, wantFlops)
	}
	// Edges: a→b, a→c, b→d, c→d; each moves 8 MB.
	if got := g.TotalEdgeBytes(); got != 4*8_000_000 {
		t.Errorf("TotalEdgeBytes = %d", got)
	}
	ccr := g.CCR(250e6, 125e6)
	if ccr <= 0 {
		t.Errorf("CCR = %g, want positive", ccr)
	}
	// No communication → 0.
	single := New("one")
	single.AddTask(KernelMul, 100)
	if single.CCR(1, 1) != 0 {
		t.Error("CCR of edgeless graph should be 0")
	}
}
