package dag

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g := MustGenerate(GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 0.75, N: 3000, Seed: 5})
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != g.Name || back.Len() != g.Len() || back.EdgeCount() != g.EdgeCount() {
		t.Fatalf("round trip changed shape: %q %d/%d vs %q %d/%d",
			back.Name, back.Len(), back.EdgeCount(), g.Name, g.Len(), g.EdgeCount())
	}
	for i := range g.Tasks {
		if g.Tasks[i].Kernel != back.Tasks[i].Kernel || g.Tasks[i].N != back.Tasks[i].N {
			t.Errorf("task %d changed in round trip", i)
		}
	}
}

func TestJSONRejectsBadKernel(t *testing.T) {
	in := `{"name":"x","tasks":[{"id":0,"kernel":"fft","n":10}],"edges":[]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestJSONRejectsSparseIDs(t *testing.T) {
	in := `{"name":"x","tasks":[{"id":1,"kernel":"mul","n":10}],"edges":[]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Fatal("sparse task IDs accepted")
	}
}

func TestJSONRejectsBadEdge(t *testing.T) {
	in := `{"name":"x","tasks":[{"id":0,"kernel":"mul","n":10}],"edges":[[0,5]]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestJSONRejectsCycle(t *testing.T) {
	in := `{"name":"x","tasks":[{"id":0,"kernel":"mul","n":10},{"id":1,"kernel":"mul","n":10}],"edges":[[0,1],[1,0]]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}
