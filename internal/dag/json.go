package dag

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the on-disk representation used by cmd/daggen and the
// examples: an explicit node and edge list, stable and diff-friendly.
type jsonGraph struct {
	Name  string     `json:"name"`
	Tasks []jsonTask `json:"tasks"`
	Edges [][2]int   `json:"edges"`
}

type jsonTask struct {
	ID     int    `json:"id"`
	Name   string `json:"name"`
	Kernel string `json:"kernel"`
	N      int    `json:"n"`
}

// MarshalJSON encodes the graph as a node/edge list.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.Name}
	for _, t := range g.Tasks {
		jg.Tasks = append(jg.Tasks, jsonTask{ID: t.ID, Name: t.Name, Kernel: t.Kernel.String(), N: t.N})
		for _, s := range t.succs {
			jg.Edges = append(jg.Edges, [2]int{t.ID, s})
		}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a node/edge list and validates the result.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	out := New(jg.Name)
	for i, jt := range jg.Tasks {
		if jt.ID != i {
			return fmt.Errorf("dag: json task IDs must be dense and ordered, got %d at index %d", jt.ID, i)
		}
		k, err := parseKernel(jt.Kernel)
		if err != nil {
			return err
		}
		t := out.AddTask(k, jt.N)
		if jt.Name != "" {
			t.Name = jt.Name
		}
	}
	for _, e := range jg.Edges {
		if e[0] < 0 || e[0] >= out.Len() || e[1] < 0 || e[1] >= out.Len() {
			return fmt.Errorf("dag: json edge %v out of range", e)
		}
		out.AddEdge(e[0], e[1])
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*g = *out
	return nil
}

func parseKernel(s string) (Kernel, error) {
	switch s {
	case "add":
		return KernelAdd, nil
	case "mul":
		return KernelMul, nil
	case "noop":
		return KernelNoop, nil
	default:
		return 0, fmt.Errorf("dag: unknown kernel %q", s)
	}
}

// WriteJSON writes the graph as indented JSON.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ReadJSON parses a graph from JSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	return &g, nil
}
