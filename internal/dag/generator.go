package dag

import (
	"fmt"
	"math"
	"math/rand"
)

// GenParams configures the paper's random-DAG generator (§II-B, Table I).
type GenParams struct {
	// Tasks is the total number of tasks to generate (the paper uses 10).
	Tasks int
	// InputMatrices is v, the number of initial input matrices, which
	// controls the DAG width (the paper uses 2, 4 and 8).
	InputMatrices int
	// AddRatio is the ratio of addition tasks: with 10 tasks a ratio of 0.2
	// yields 2 additions and 8 multiplications (paper example). The paper
	// uses 0.5, 0.75 and 1.0.
	AddRatio float64
	// N is the matrix dimension (the paper uses 2000 and 3000, for 30 MB
	// and 68 MB per matrix).
	N int
	// Seed makes generation deterministic.
	Seed int64
}

// Validate reports whether the parameters are usable.
func (p GenParams) Validate() error {
	if p.Tasks <= 0 {
		return fmt.Errorf("dag: GenParams.Tasks must be positive, got %d", p.Tasks)
	}
	if p.InputMatrices < 2 {
		return fmt.Errorf("dag: GenParams.InputMatrices must be at least 2, got %d", p.InputMatrices)
	}
	if !(p.AddRatio >= 0 && p.AddRatio <= 1) { // the negated form also rejects NaN
		return fmt.Errorf("dag: GenParams.AddRatio must be in [0,1], got %g", p.AddRatio)
	}
	if p.N <= 0 {
		return fmt.Errorf("dag: GenParams.N must be positive, got %d", p.N)
	}
	return nil
}

// Name returns the canonical instance name for the parameters.
func (p GenParams) Name() string {
	return fmt.Sprintf("dag-w%d-r%g-n%d-s%d", p.InputMatrices, p.AddRatio, p.N, p.Seed)
}

// matrixOrigin records who produced a matrix in the generator's pool:
// a negative value marks an initial input matrix, otherwise it is the ID of
// the producing task.
type matrixOrigin int

const inputMatrix matrixOrigin = -1

// Generate builds a random mixed-parallel application following the paper's
// procedure:
//
//  1. pick the number of entry tasks uniformly in [1, log2(v)];
//  2. each task consumes two matrices chosen from the pool of matrices
//     available so far (the v inputs plus the outputs of earlier levels) and
//     produces one new matrix;
//  3. the number of tasks in each subsequent level is picked uniformly in
//     [1, log2(#matrices so far)];
//  4. generation stops when Tasks tasks exist;
//  5. round(AddRatio·Tasks) tasks, chosen uniformly, are matrix additions and
//     the rest are multiplications.
//
// Edges link a task to the producers of its operand matrices; operands that
// are initial input matrices induce no edge, so a task may be an entry task.
func Generate(p GenParams) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := New(p.Name())

	// Decide which task indices are additions.
	numAdd := int(math.Round(p.AddRatio * float64(p.Tasks)))
	kinds := make([]Kernel, p.Tasks)
	for i := range kinds {
		if i < numAdd {
			kinds[i] = KernelAdd
		} else {
			kinds[i] = KernelMul
		}
	}
	rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })

	// Pool of available matrices; the first v entries are the inputs.
	pool := make([]matrixOrigin, 0, p.InputMatrices+p.Tasks)
	for i := 0; i < p.InputMatrices; i++ {
		pool = append(pool, inputMatrix)
	}

	remaining := p.Tasks
	levelWidth := func(matrices int) int {
		max := int(math.Log2(float64(matrices)))
		if max < 1 {
			max = 1
		}
		w := 1 + rng.Intn(max)
		if w > remaining {
			w = remaining
		}
		return w
	}

	for remaining > 0 {
		width := levelWidth(len(pool))
		// Tasks of one level choose operands from the pool as it stood
		// before the level, so they are mutually independent.
		avail := len(pool)
		produced := make([]matrixOrigin, 0, width)
		for i := 0; i < width; i++ {
			t := g.AddTask(kinds[g.Len()], p.N)
			a := rng.Intn(avail)
			b := rng.Intn(avail)
			for avail > 1 && b == a {
				b = rng.Intn(avail)
			}
			for _, m := range []int{a, b} {
				if origin := pool[m]; origin != inputMatrix {
					g.AddEdge(int(origin), t.ID)
				}
			}
			produced = append(produced, matrixOrigin(t.ID))
			remaining--
			if remaining == 0 {
				break
			}
		}
		pool = append(pool, produced...)
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dag: generator produced invalid graph: %w", err)
	}
	return g, nil
}

// MustGenerate is Generate but panics on error; intended for tests, examples
// and suite construction where parameters are known valid.
func MustGenerate(p GenParams) *Graph {
	g, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return g
}
