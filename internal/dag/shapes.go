package dag

import "fmt"

// This file provides deterministic structured DAG shapes complementing the
// paper's random generator: chains, fork-joins and layered grids. They are
// used by examples, ablation benches and tests, and let downstream users
// evaluate the schedulers on workflow skeletons (the paper's §II notes most
// production workflows are structured).

// Chain returns a linear pipeline of k tasks alternating the given kernels.
func Chain(k, n int, kernels ...Kernel) *Graph {
	if k < 1 {
		panic(fmt.Sprintf("dag: chain of %d tasks", k))
	}
	if len(kernels) == 0 {
		kernels = []Kernel{KernelMul}
	}
	g := New(fmt.Sprintf("chain-%d-n%d", k, n))
	prev := -1
	for i := 0; i < k; i++ {
		t := g.AddTask(kernels[i%len(kernels)], n)
		if prev >= 0 {
			g.AddEdge(prev, t.ID)
		}
		prev = t.ID
	}
	return g
}

// ForkJoin returns a source task fanning out to `width` parallel branches
// of `depth` tasks each, joined by a sink — the classic map/reduce
// skeleton.
func ForkJoin(width, depth, n int) *Graph {
	if width < 1 || depth < 1 {
		panic(fmt.Sprintf("dag: fork-join %dx%d", width, depth))
	}
	g := New(fmt.Sprintf("forkjoin-w%d-d%d-n%d", width, depth, n))
	src := g.AddTask(KernelMul, n)
	sink := -1
	var lastOfBranch []int
	for b := 0; b < width; b++ {
		prev := src.ID
		for d := 0; d < depth; d++ {
			kernel := KernelMul
			if d%2 == 1 {
				kernel = KernelAdd
			}
			t := g.AddTask(kernel, n)
			g.AddEdge(prev, t.ID)
			prev = t.ID
		}
		lastOfBranch = append(lastOfBranch, prev)
	}
	s := g.AddTask(KernelAdd, n)
	sink = s.ID
	for _, id := range lastOfBranch {
		g.AddEdge(id, sink)
	}
	return g
}

// Layered returns a dense layered DAG: `layers` levels of `width` tasks,
// every task depending on all tasks of the previous level — the worst case
// for redistribution overheads.
func Layered(layers, width, n int) *Graph {
	if layers < 1 || width < 1 {
		panic(fmt.Sprintf("dag: layered %dx%d", layers, width))
	}
	g := New(fmt.Sprintf("layered-l%d-w%d-n%d", layers, width, n))
	var prev []int
	for l := 0; l < layers; l++ {
		var cur []int
		for i := 0; i < width; i++ {
			kernel := KernelMul
			if (l+i)%3 == 2 {
				kernel = KernelAdd
			}
			t := g.AddTask(kernel, n)
			for _, p := range prev {
				g.AddEdge(p, t.ID)
			}
			cur = append(cur, t.ID)
		}
		prev = cur
	}
	return g
}

// Diamond returns the four-task diamond used throughout the tests.
func Diamond(n int) *Graph {
	g := New(fmt.Sprintf("diamond-n%d", n))
	a := g.AddTask(KernelMul, n)
	b := g.AddTask(KernelAdd, n)
	c := g.AddTask(KernelMul, n)
	d := g.AddTask(KernelAdd, n)
	g.AddEdge(a.ID, b.ID)
	g.AddEdge(a.ID, c.ID)
	g.AddEdge(b.ID, d.ID)
	g.AddEdge(c.ID, d.ID)
	return g
}
