package dag

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateBasicProperties(t *testing.T) {
	p := GenParams{Tasks: 10, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 7}
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 10 {
		t.Errorf("Len = %d, want 10", g.Len())
	}
	if got := g.CountKernel(KernelAdd); got != 5 {
		t.Errorf("additions = %d, want 5", got)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("generated graph invalid: %v", err)
	}
	if len(g.Entries()) == 0 {
		t.Error("no entry tasks")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 0.75, N: 3000, Seed: 42}
	a := MustGenerate(p)
	b := MustGenerate(p)
	if a.Len() != b.Len() || a.EdgeCount() != b.EdgeCount() {
		t.Fatalf("same seed produced different shapes: %d/%d edges %d/%d",
			a.Len(), b.Len(), a.EdgeCount(), b.EdgeCount())
	}
	for i := range a.Tasks {
		if a.Tasks[i].Kernel != b.Tasks[i].Kernel {
			t.Errorf("task %d kernel differs", i)
		}
		as, bs := a.Tasks[i].Succs(), b.Tasks[i].Succs()
		if len(as) != len(bs) {
			t.Errorf("task %d succ count differs", i)
			continue
		}
		for j := range as {
			if as[j] != bs[j] {
				t.Errorf("task %d successor %d differs", i, j)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	base := GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 0.5, N: 2000}
	same := 0
	const trials = 20
	for s := int64(0); s < trials; s++ {
		p1, p2 := base, base
		p1.Seed, p2.Seed = s, s+trials
		a, b := MustGenerate(p1), MustGenerate(p2)
		if a.EdgeCount() == b.EdgeCount() {
			same++
		}
	}
	if same == trials {
		t.Error("all seed pairs produced identical edge counts; generator ignores seed?")
	}
}

func TestGenerateAddRatioExamples(t *testing.T) {
	// The paper's example: ratio 0.2 with 10 tasks → 2 additions, 8 muls.
	cases := []struct {
		ratio   float64
		wantAdd int
	}{
		{0.2, 2}, {0.5, 5}, {0.75, 8}, {1.0, 10}, {0.0, 0},
	}
	for _, c := range cases {
		g := MustGenerate(GenParams{Tasks: 10, InputMatrices: 4, AddRatio: c.ratio, N: 2000, Seed: 1})
		if got := g.CountKernel(KernelAdd); got != c.wantAdd {
			t.Errorf("ratio %g: additions = %d, want %d", c.ratio, got, c.wantAdd)
		}
		if got := g.CountKernel(KernelMul); got != 10-c.wantAdd {
			t.Errorf("ratio %g: multiplications = %d, want %d", c.ratio, got, 10-c.wantAdd)
		}
	}
}

func TestGenerateEntryTaskBound(t *testing.T) {
	// Entry *level* width is bounded by log2(v). (Later levels can still
	// add tasks with no predecessors, when both operands are inputs.)
	for _, v := range []int{2, 4, 8} {
		maxEntry := int(math.Log2(float64(v)))
		for seed := int64(0); seed < 30; seed++ {
			g := MustGenerate(GenParams{Tasks: 10, InputMatrices: v, AddRatio: 0.5, N: 2000, Seed: seed})
			// Tasks are created level by level in ID order; count how many
			// of the first tasks form level 0 of generation: conservative
			// check via Levels is not possible (input matrices hide level
			// structure), so check the generator's own promise indirectly:
			// at least 1 entry task exists and the first level had width
			// in [1, log2(v)]: the first maxEntry+1-th task can only exist
			// in level 0 if maxEntry allows.
			levels, _ := g.Levels()
			firstLevelWidth := 0
			for id := 0; id < g.Len() && levels[id] == 0; id++ {
				if g.Task(id).InDegree() == 0 {
					firstLevelWidth++
				} else {
					break
				}
			}
			if firstLevelWidth < 1 {
				t.Fatalf("v=%d seed=%d: no entry tasks at level 0", v, seed)
			}
			_ = maxEntry
		}
	}
}

func TestGenerateValidateErrors(t *testing.T) {
	cases := []GenParams{
		{Tasks: 0, InputMatrices: 4, AddRatio: 0.5, N: 2000},
		{Tasks: 10, InputMatrices: 1, AddRatio: 0.5, N: 2000},
		{Tasks: 10, InputMatrices: 4, AddRatio: -0.1, N: 2000},
		{Tasks: 10, InputMatrices: 4, AddRatio: 1.5, N: 2000},
		{Tasks: 10, InputMatrices: 4, AddRatio: 0.5, N: 0},
	}
	for i, p := range cases {
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: invalid params %+v accepted", i, p)
		}
	}
}

// Property test: for arbitrary seeds and parameter grid points the generator
// always produces a valid acyclic graph with the exact task count and
// addition count.
func TestGeneratePropertyQuick(t *testing.T) {
	prop := func(seed int64, wIdx, rIdx, nIdx uint8) bool {
		p := GenParams{
			Tasks:         SuiteTasks,
			InputMatrices: SuiteWidths[int(wIdx)%len(SuiteWidths)],
			AddRatio:      SuiteRatios[int(rIdx)%len(SuiteRatios)],
			N:             SuiteSizes[int(nIdx)%len(SuiteSizes)],
			Seed:          seed,
		}
		g, err := Generate(p)
		if err != nil {
			return false
		}
		if g.Len() != p.Tasks {
			return false
		}
		wantAdd := int(math.Round(p.AddRatio * float64(p.Tasks)))
		if g.CountKernel(KernelAdd) != wantAdd {
			return false
		}
		return g.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: all tasks in one generation level are mutually independent
// (no edges within a level).
func TestGenerateLevelIndependenceQuick(t *testing.T) {
	prop := func(seed int64) bool {
		g := MustGenerate(GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 0.5, N: 2000, Seed: seed})
		levels, _ := g.Levels()
		for _, task := range g.Tasks {
			for _, s := range task.Succs() {
				if levels[task.ID] >= levels[s] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSuiteHas54Instances(t *testing.T) {
	suite, err := GenerateSuite(2011)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 54 {
		t.Fatalf("suite has %d instances, want 54", len(suite))
	}
	perSize := map[int]int{}
	for _, in := range suite {
		perSize[in.Params.N]++
		if in.Graph.Len() != 10 {
			t.Errorf("%s has %d tasks, want 10", in.Params.Name(), in.Graph.Len())
		}
	}
	if perSize[2000] != 27 || perSize[3000] != 27 {
		t.Errorf("per-size counts = %v, want 27/27", perSize)
	}
}

func TestSuiteSeedsDistinct(t *testing.T) {
	params := SuiteParams(2011)
	seen := map[int64]bool{}
	for _, p := range params {
		if seen[p.Seed] {
			t.Fatalf("duplicate suite seed %d", p.Seed)
		}
		seen[p.Seed] = true
	}
}

func TestFilterBySize(t *testing.T) {
	suite, err := GenerateSuite(1)
	if err != nil {
		t.Fatal(err)
	}
	small := FilterBySize(suite, 2000)
	if len(small) != 27 {
		t.Fatalf("FilterBySize(2000) = %d instances, want 27", len(small))
	}
	for _, in := range small {
		if in.Params.N != 2000 {
			t.Errorf("instance %s leaked into n=2000 filter", in.Params.Name())
		}
	}
}
