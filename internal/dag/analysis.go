package dag

// CostFunc estimates the execution time, in seconds, of a task when allocated
// p processors. Scheduling-phase analyses (b-level, t-level, critical path)
// are parameterised by a CostFunc so they can be driven by any of the three
// performance models (analytic, profile-based, empirical).
type CostFunc func(t *Task, p int) float64

// CommFunc estimates the data-redistribution time, in seconds, of the edge
// src→dst given the processor counts of the producing and consuming tasks.
// Analyses that ignore communication may pass nil.
type CommFunc func(src, dst *Task, pSrc, pDst int) float64

// BottomLevels computes, for every task, its bottom level: the length of the
// longest path from the task (inclusive) to any exit task, under the given
// per-task allocation and cost model. Communication costs along edges are
// included when comm is non-nil.
func (g *Graph) BottomLevels(alloc []int, cost CostFunc, comm CommFunc) []float64 {
	order := g.mustTopo()
	bl := make([]float64, len(g.Tasks))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		t := g.Tasks[id]
		best := 0.0
		for _, s := range t.succs {
			v := bl[s]
			if comm != nil {
				v += comm(t, g.Tasks[s], alloc[id], alloc[s])
			}
			if v > best {
				best = v
			}
		}
		bl[id] = cost(t, alloc[id]) + best
	}
	return bl
}

// TopLevels computes, for every task, its top level: the length of the
// longest path from any entry task to the task (exclusive of the task's own
// execution time).
func (g *Graph) TopLevels(alloc []int, cost CostFunc, comm CommFunc) []float64 {
	order := g.mustTopo()
	tl := make([]float64, len(g.Tasks))
	for _, id := range order {
		t := g.Tasks[id]
		best := 0.0
		for _, p := range t.preds {
			v := tl[p] + cost(g.Tasks[p], alloc[p])
			if comm != nil {
				v += comm(g.Tasks[p], t, alloc[p], alloc[id])
			}
			if v > best {
				best = v
			}
		}
		tl[id] = best
	}
	return tl
}

// CriticalPathLength returns T_CP, the length of the longest path through the
// DAG under the given allocation: max over tasks of bottom level of entries.
func (g *Graph) CriticalPathLength(alloc []int, cost CostFunc, comm CommFunc) float64 {
	bl := g.BottomLevels(alloc, cost, comm)
	best := 0.0
	for _, v := range bl {
		if v > best {
			best = v
		}
	}
	return best
}

// CriticalPath returns one longest entry→exit path (a list of task IDs) under
// the given allocation and cost model, following at each step the successor
// with the greatest bottom level. Ties break toward the smallest task ID so
// the result is deterministic.
func (g *Graph) CriticalPath(alloc []int, cost CostFunc, comm CommFunc) []int {
	if len(g.Tasks) == 0 {
		return nil
	}
	bl := g.BottomLevels(alloc, cost, comm)
	// Start at the entry task with the largest bottom level.
	start, best := -1, -1.0
	for _, id := range g.Entries() {
		if bl[id] > best {
			start, best = id, bl[id]
		}
	}
	var path []int
	cur := start
	for cur >= 0 {
		path = append(path, cur)
		next, nbest := -1, -1.0
		for _, s := range g.Tasks[cur].succs {
			v := bl[s]
			if comm != nil {
				v += comm(g.Tasks[cur], g.Tasks[s], alloc[cur], alloc[s])
			}
			if v > nbest || (v == nbest && next >= 0 && s < next) {
				next, nbest = s, v
			}
		}
		cur = next
	}
	return path
}

// AverageArea returns T_A, the average area metric used by CPA-family
// allocation phases: (1/N) · Σ_τ t(τ, alloc(τ)) · alloc(τ), where N is the
// number of processors in the cluster.
func (g *Graph) AverageArea(alloc []int, cost CostFunc, clusterSize int) float64 {
	sum := 0.0
	for _, t := range g.Tasks {
		sum += cost(t, alloc[t.ID]) * float64(alloc[t.ID])
	}
	return sum / float64(clusterSize)
}

// Width returns the maximum number of tasks sharing a precedence level — the
// DAG's potential task parallelism.
func (g *Graph) Width() int {
	level, n := g.Levels()
	if n == 0 {
		return 0
	}
	counts := make([]int, n)
	for _, l := range level {
		counts[l]++
	}
	w := 0
	for _, c := range counts {
		if c > w {
			w = c
		}
	}
	return w
}

func (g *Graph) mustTopo() []int {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	return order
}
