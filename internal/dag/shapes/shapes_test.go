package shapes

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/dag"
)

// TestCatalogue checks the registry is well-formed: every entry named,
// described, buildable, valid and deterministic.
func TestCatalogue(t *testing.T) {
	if len(Names()) != len(registry) {
		t.Fatalf("Names() returned %d entries, registry has %d", len(Names()), len(registry))
	}
	seen := map[string]bool{}
	for _, name := range Names() {
		if seen[name] {
			t.Fatalf("duplicate shape name %q", name)
		}
		seen[name] = true
		s, ok := Lookup(name)
		if !ok || s.Description == "" {
			t.Fatalf("shape %q missing from lookup or undescribed", name)
		}
		g, err := Build(name, 2000)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Len() < 2 {
			t.Errorf("%s: only %d tasks; shapes should be non-trivial", name, g.Len())
		}
		g2, err := Build(name, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(exportBytes(t, g), exportBytes(t, g2)) {
			t.Errorf("%s: Build is not deterministic", name)
		}
	}
}

// TestBuildErrors locks in error behaviour for unknown names and bad sizes.
func TestBuildErrors(t *testing.T) {
	if _, err := Build("frobnicate", 2000); err == nil {
		t.Error("Build accepted an unknown shape")
	}
	if _, err := Build("strassen", 0); err == nil {
		t.Error("Build accepted matrix size 0")
	}
}

// TestStrassenStructure pins the classic dependency structure: 10 additions
// feed 7 multiplications feed 4 combines.
func TestStrassenStructure(t *testing.T) {
	g := Strassen(2000)
	if g.Len() != 21 {
		t.Fatalf("strassen has %d tasks, want 21", g.Len())
	}
	if got := g.CountKernel(dag.KernelMul); got != 7 {
		t.Errorf("strassen has %d multiplications, want 7", got)
	}
	if got := g.CountKernel(dag.KernelAdd); got != 14 {
		t.Errorf("strassen has %d additions, want 14", got)
	}
	if got := len(g.Entries()); got != 10 {
		t.Errorf("strassen has %d entries, want the 10 S tasks", got)
	}
	if got := len(g.Exits()); got != 4 {
		t.Errorf("strassen has %d exits, want the 4 C quadrants", got)
	}
	if _, levels := g.Levels(); levels != 3 {
		t.Errorf("strassen has %d levels, want 3", levels)
	}
}

// TestReductionStructure pins the tree arithmetic: w leaves, w-1 folds,
// one root.
func TestReductionStructure(t *testing.T) {
	g := Reduction(16, 3000)
	if g.Len() != 31 {
		t.Fatalf("reduction has %d tasks, want 31", g.Len())
	}
	if got := len(g.Entries()); got != 16 {
		t.Errorf("reduction has %d entries, want 16", got)
	}
	if got := len(g.Exits()); got != 1 {
		t.Errorf("reduction has %d exits, want 1 root", got)
	}
	if _, levels := g.Levels(); levels != 5 {
		t.Errorf("reduction has %d levels, want 5", levels)
	}
}

// TestShapesRoundTrip proves every catalogue shape survives the DOT and
// JSON round trip byte-identically — the shapes half of the Import(Export)
// acceptance criterion.
func TestShapesRoundTrip(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g, err := Build(name, 2000)
			if err != nil {
				t.Fatal(err)
			}
			first := exportBytes(t, g)
			imported, err := dag.Import(first)
			if err != nil {
				t.Fatalf("import: %v", err)
			}
			if !bytes.Equal(first, exportBytes(t, imported)) {
				t.Fatalf("%s: DOT export drifted across the round trip", name)
			}
			var js bytes.Buffer
			if err := g.WriteJSON(&js); err != nil {
				t.Fatal(err)
			}
			fromJSON, err := dag.Import(js.Bytes())
			if err != nil {
				t.Fatalf("import JSON: %v", err)
			}
			if !bytes.Equal(first, exportBytes(t, fromJSON)) {
				t.Fatalf("%s: JSON round trip lost structure", name)
			}
		})
	}
}

func exportBytes(t *testing.T, g *dag.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
