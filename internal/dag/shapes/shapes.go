// Package shapes is a small named library of canonical real-workflow
// skeletons — fork-join pipelines, Strassen-style recursion, wide reduction
// trees and friends — built on the dag package's moldable-task model.
//
// The paper's case study (conf_ipps_HunoldCS11 §II) argues that most
// production mixed-parallel workflows are structured rather than random;
// this package gives campaigns, robustness studies and online-arrival
// scenarios a workload axis of such structures, registered by name so specs
// can reference them as plain strings ("strassen", "reduction", ...).
package shapes

import (
	"fmt"
	"sort"

	"repro/internal/dag"
)

// Shape is one registered workflow skeleton. Build is deterministic: the
// same (name, n) always yields the same graph, so shape-derived workloads
// replay byte-identically across replicas and worker counts.
type Shape struct {
	// Name is the registry key specs reference.
	Name string
	// Description is a one-line catalogue entry for docs and errors.
	Description string
	// Build materialises the skeleton over n×n matrices.
	Build func(n int) *dag.Graph
}

// registry holds the catalogue in registration (display) order.
var registry = []Shape{
	{
		Name:        "chain",
		Description: "linear 6-stage pipeline alternating mul/add kernels",
		Build:       func(n int) *dag.Graph { return dag.Chain(6, n, dag.KernelMul, dag.KernelAdd) },
	},
	{
		Name:        "diamond",
		Description: "four-task diamond: one producer, two parallel branches, one join",
		Build:       dag.Diamond,
	},
	{
		Name:        "forkjoin",
		Description: "fork-join pipeline: source fans to 4 branches of depth 2, joined by a sink",
		Build:       func(n int) *dag.Graph { return dag.ForkJoin(4, 2, n) },
	},
	{
		Name:        "layered",
		Description: "dense 3x4 layered grid, every task depending on the whole previous layer",
		Build:       func(n int) *dag.Graph { return dag.Layered(3, 4, n) },
	},
	{
		Name:        "strassen",
		Description: "one level of Strassen matrix multiplication: 10 additions feeding 7 multiplications feeding 4 combines",
		Build:       Strassen,
	},
	{
		Name:        "reduction",
		Description: "wide reduction tree: 16 leaf multiplications folded pairwise by 15 additions",
		Build:       func(n int) *dag.Graph { return Reduction(16, n) },
	},
}

var byName = func() map[string]Shape {
	m := make(map[string]Shape, len(registry))
	for _, s := range registry {
		m[s.Name] = s
	}
	return m
}()

// Names returns the registered shape names in catalogue order.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	return out
}

// Catalogue returns the full registry in catalogue order.
func Catalogue() []Shape {
	return append([]Shape(nil), registry...)
}

// Lookup returns the shape registered under name.
func Lookup(name string) (Shape, bool) {
	s, ok := byName[name]
	return s, ok
}

// Build materialises the named shape over n×n matrices, or lists the
// catalogue when the name is unknown.
func Build(name string, n int) (*dag.Graph, error) {
	s, ok := byName[name]
	if !ok {
		known := Names()
		sort.Strings(known)
		return nil, fmt.Errorf("shapes: unknown shape %q (known: %v)", name, known)
	}
	if n < 1 {
		return nil, fmt.Errorf("shapes: %s: matrix size %d out of range", name, n)
	}
	return s.Build(n), nil
}

// Strassen returns one recursion level of Strassen's matrix multiplication
// as a task graph: the 10 submatrix additions S1..S10, the 7 products
// M1..M7, and the 4 quadrant combines C11..C22, wired with the classic
// dependencies. n is the submatrix dimension.
func Strassen(n int) *dag.Graph {
	g := dag.New(fmt.Sprintf("strassen-n%d", n))
	sums := make([]int, 0, 10)
	for i := 1; i <= 10; i++ {
		t := g.AddTask(dag.KernelAdd, n)
		t.Name = fmt.Sprintf("S%d/add", i)
		sums = append(sums, t.ID)
	}
	feeds := [7][]int{
		{0, 1}, // M1 = (A11+A22)(B11+B22)
		{2},    // M2 = (A21+A22) B11
		{3},    // M3 = A11 (B12-B22)
		{4},    // M4 = A22 (B21-B11)
		{5},    // M5 = (A11+A12) B22
		{6, 7}, // M6 = (A21-A11)(B11+B12)
		{8, 9}, // M7 = (A12-A22)(B21+B22)
	}
	prods := make([]int, 0, 7)
	for i, f := range feeds {
		t := g.AddTask(dag.KernelMul, n)
		t.Name = fmt.Sprintf("M%d/mul", i+1)
		for _, s := range f {
			g.AddEdge(sums[s], t.ID)
		}
		prods = append(prods, t.ID)
	}
	combines := [4]struct {
		name string
		deps []int
	}{
		{"C11", []int{0, 3, 4, 6}}, // C11 = M1+M4-M5+M7
		{"C12", []int{2, 4}},       // C12 = M3+M5
		{"C21", []int{1, 3}},       // C21 = M2+M4
		{"C22", []int{0, 1, 2, 5}}, // C22 = M1-M2+M3+M6
	}
	for _, c := range combines {
		t := g.AddTask(dag.KernelAdd, n)
		t.Name = c.name + "/add"
		for _, m := range c.deps {
			g.AddEdge(prods[m], t.ID)
		}
	}
	return g
}

// Reduction returns a wide reduction tree: `leaves` independent
// multiplications folded pairwise by additions down to a single root.
// leaves must be a power of two.
func Reduction(leaves, n int) *dag.Graph {
	if leaves < 2 || leaves&(leaves-1) != 0 {
		panic(fmt.Sprintf("shapes: reduction over %d leaves (want a power of two >= 2)", leaves))
	}
	g := dag.New(fmt.Sprintf("reduction-w%d-n%d", leaves, n))
	level := make([]int, 0, leaves)
	for i := 0; i < leaves; i++ {
		t := g.AddTask(dag.KernelMul, n)
		t.Name = fmt.Sprintf("leaf%d/mul", i)
		level = append(level, t.ID)
	}
	for depth := 0; len(level) > 1; depth++ {
		next := make([]int, 0, len(level)/2)
		for i := 0; i+1 < len(level); i += 2 {
			t := g.AddTask(dag.KernelAdd, n)
			t.Name = fmt.Sprintf("fold%d.%d/add", depth, i/2)
			g.AddEdge(level[i], t.ID)
			g.AddEdge(level[i+1], t.ID)
			next = append(next, t.ID)
		}
		level = next
	}
	return g
}
