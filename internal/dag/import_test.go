package dag

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// graphsEqual asserts structural equality: name, tasks (name, kernel, size)
// and the exact edge lists.
func graphsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.Name != got.Name {
		t.Fatalf("graph name = %q, want %q", got.Name, want.Name)
	}
	if want.Len() != got.Len() {
		t.Fatalf("graph has %d tasks, want %d", got.Len(), want.Len())
	}
	for i := range want.Tasks {
		w, g := want.Tasks[i], got.Tasks[i]
		if w.Name != g.Name || w.Kernel != g.Kernel || w.N != g.N {
			t.Fatalf("task %d = {%q %v n=%d}, want {%q %v n=%d}",
				i, g.Name, g.Kernel, g.N, w.Name, w.Kernel, w.N)
		}
		// Succ lists survive exactly (exports are src-major); pred lists come
		// back in ascending source order, so compare them as sets.
		if !reflect.DeepEqual(w.Succs(), g.Succs()) || !reflect.DeepEqual(sortedInts(w.Preds()), sortedInts(g.Preds())) {
			t.Fatalf("task %d edges = (preds %v, succs %v), want (preds %v, succs %v)",
				i, g.Preds(), g.Succs(), w.Preds(), w.Succs())
		}
	}
}

func sortedInts(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

// roundTrip pushes g through both export formats and back, checking
// structural equality and byte-identical re-export.
func roundTrip(t *testing.T, g *Graph) {
	t.Helper()
	var dot bytes.Buffer
	if err := g.WriteDOT(&dot); err != nil {
		t.Fatal(err)
	}
	fromDOT, err := Import(dot.Bytes())
	if err != nil {
		t.Fatalf("import DOT: %v\n%s", err, dot.String())
	}
	graphsEqual(t, g, fromDOT)
	var dot2 bytes.Buffer
	if err := fromDOT.WriteDOT(&dot2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dot.Bytes(), dot2.Bytes()) {
		t.Fatalf("DOT re-export differs from original export:\n--- first\n%s\n--- second\n%s", dot.String(), dot2.String())
	}

	var js bytes.Buffer
	if err := g.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Import(js.Bytes())
	if err != nil {
		t.Fatalf("import JSON: %v", err)
	}
	graphsEqual(t, g, fromJSON)
	var js2 bytes.Buffer
	if err := fromJSON.WriteJSON(&js2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js.Bytes(), js2.Bytes()) {
		t.Fatalf("JSON re-export differs from original export")
	}
}

// TestRoundTripSuite proves Import(Export(g)) == g for every instance of
// the paper's Table I suite, in both formats.
func TestRoundTripSuite(t *testing.T) {
	suite, err := GenerateSuite(2011)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range suite {
		in := in
		t.Run(in.Params.Name(), func(t *testing.T) {
			roundTrip(t, in.Graph)
		})
	}
}

// TestRoundTripStructured covers the in-package structured shapes.
func TestRoundTripStructured(t *testing.T) {
	for _, g := range []*Graph{
		Chain(5, 2000),
		ForkJoin(4, 2, 2000),
		Layered(3, 4, 3000),
		Diamond(2000),
	} {
		t.Run(g.Name, func(t *testing.T) { roundTrip(t, g) })
	}
}

// TestRoundTripHostileNames is the regression test for the WriteDOT
// escaping bug: names containing quotes, backslashes and newlines must
// survive the DOT round trip and produce output free of unescaped quotes.
func TestRoundTripHostileNames(t *testing.T) {
	g := New(`hostile "graph" \ name`)
	a := g.AddTask(KernelMul, 2000)
	a.Name = `stage "one" \ done`
	b := g.AddTask(KernelAdd, 2000)
	b.Name = "line one\nline two"
	c := g.AddTask(KernelAdd, 2000)
	c.Name = `trailing backslash \`
	d := g.AddTask(KernelNoop, 0)
	d.Name = "name\nn=7" // tail collides with the label's size suffix
	g.AddEdge(a.ID, b.ID)
	g.AddEdge(a.ID, c.ID)
	g.AddEdge(b.ID, d.ID)
	g.AddEdge(c.ID, d.ID)

	var dot bytes.Buffer
	if err := g.WriteDOT(&dot); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(dot.String(), "\n") {
		if n := strings.Count(line, `"`) - strings.Count(line, `\"`); n != 0 && n != 2 {
			t.Errorf("DOT line has %d unescaped quotes (want 0 or 2): %q", n, line)
		}
	}
	roundTrip(t, g)
}

// TestCCRZeroEdges is the regression test for the zero-communication
// guard: edge-less and noop-only graphs must yield exactly 0, never NaN or
// an infinity.
func TestCCRZeroEdges(t *testing.T) {
	flopRate, bandwidth := 5.2e9, 117e6
	edgeless := New("edgeless")
	edgeless.AddTask(KernelMul, 2000)
	edgeless.AddTask(KernelAdd, 2000)
	noops := Chain(3, 0, KernelNoop) // edges exist but carry zero bytes
	for _, g := range []*Graph{New("empty"), edgeless, noops} {
		got := g.CCR(flopRate, bandwidth)
		if got != 0 || math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: CCR = %v, want exactly 0", g.Name, got)
		}
	}
	// Sanity: a communicating graph still yields a finite positive ratio.
	if ccr := Diamond(2000).CCR(flopRate, bandwidth); ccr <= 0 || math.IsInf(ccr, 0) || math.IsNaN(ccr) {
		t.Errorf("diamond CCR = %v, want finite positive", ccr)
	}
}

// TestImportRejectsMalformed locks in error (not panic) behaviour for a
// gallery of malformed inputs.
func TestImportRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"no header":        "t0 [label=\"a\\nn=5\"];\n}\n",
		"no close":         "digraph \"g\" {\n",
		"sparse ids":       "digraph \"g\" {\n  t1 [label=\"a\\nn=5\" kernel=mul];\n}\n",
		"dup node":         "digraph \"g\" {\n  t0 [label=\"a\\nn=5\" kernel=mul];\n  t0 [label=\"b\\nn=5\" kernel=mul];\n}\n",
		"bad kernel":       "digraph \"g\" {\n  t0 [label=\"a\\nn=5\" kernel=frobnicate];\n}\n",
		"no size":          "digraph \"g\" {\n  t0 [label=\"a\" kernel=mul];\n}\n",
		"edge to nowhere":  "digraph \"g\" {\n  t0 [label=\"a\\nn=5\" kernel=mul];\n  t0 -> t7;\n}\n",
		"self edge":        "digraph \"g\" {\n  t0 [label=\"a\\nn=5\" kernel=mul];\n  t0 -> t0;\n}\n",
		"cycle":            "digraph \"g\" {\n  t0 [label=\"a\\nn=5\" kernel=mul];\n  t1 [label=\"b\\nn=5\" kernel=mul];\n  t0 -> t1;\n  t1 -> t0;\n}\n",
		"unclosed quote":   "digraph \"g {\n}\n",
		"trailing content": "digraph \"g\" {\n}\nextra\n",
		"json bad ids":     `{"name":"g","tasks":[{"id":3,"name":"a","kernel":"mul","n":5}],"edges":[]}`,
		"json bad edge":    `{"name":"g","tasks":[{"id":0,"name":"a","kernel":"mul","n":5}],"edges":[[0,9]]}`,
		"json cycle":       `{"name":"g","tasks":[{"id":0,"name":"a","kernel":"mul","n":5},{"id":1,"name":"b","kernel":"mul","n":5}],"edges":[[0,1],[1,0]]}`,
	}
	for name, in := range cases {
		if _, err := Import([]byte(in)); err == nil {
			t.Errorf("%s: Import accepted malformed input %q", name, in)
		}
	}
}

// TestImportTolerantDOT exercises the forgiving side of the parser:
// comments, directives, attribute order, multi-hop edges and kernel
// inference from name suffix or shape.
func TestImportTolerantDOT(t *testing.T) {
	in := `digraph "hand written" {
  // a comment
  rankdir=LR;
  node [fontname="mono"];
  t0 [shape=ellipse label="first\nn=100"];
  t1 [label="t1/add\nn=100"];
  t2 [label="third\nn=100" shape=box];
  t0 -> t1 -> t2;
}
`
	g, err := Import([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "hand written" || g.Len() != 3 || g.EdgeCount() != 2 {
		t.Fatalf("got graph %q with %d tasks, %d edges", g.Name, g.Len(), g.EdgeCount())
	}
	wantKernels := []Kernel{KernelMul, KernelAdd, KernelAdd}
	for i, w := range wantKernels {
		if g.Tasks[i].Kernel != w {
			t.Errorf("task %d kernel = %v, want %v", i, g.Tasks[i].Kernel, w)
		}
	}
}

// FuzzDAGImport asserts the importer never panics: arbitrary bytes either
// parse into a graph that validates and re-exports cleanly, or error out.
func FuzzDAGImport(f *testing.F) {
	var dot, js bytes.Buffer
	if err := Diamond(2000).WriteDOT(&dot); err != nil {
		f.Fatal(err)
	}
	if err := ForkJoin(3, 2, 3000).WriteJSON(&js); err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		dot.String(),
		js.String(),
		"digraph \"g\" {\n  t0 [label=\"a\\nn=5\" kernel=mul];\n}\n",
		"digraph \"\\\"\\\\\" {\n  t0 [label=\"\\\"x\\\\\\nn=5\" shape=box kernel=add];\n}\n",
		"digraph {\n}\n",
		`{"name":"g","tasks":[],"edges":[]}`,
		"digraph \"g\" {\n  t0 -> t1 -> t0;\n}\n",
		"t0 [label=",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Import(data)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Import returned invalid graph: %v", err)
		}
		var out bytes.Buffer
		if err := g.WriteDOT(&out); err != nil {
			t.Fatalf("re-export: %v", err)
		}
		if _, err := Import(out.Bytes()); err != nil {
			t.Fatalf("re-import of exported graph failed: %v\n%s", err, out.String())
		}
	})
}

// TestImportFile covers the file-path convenience wrapper.
func TestImportFile(t *testing.T) {
	g := Diamond(2000)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "diamond.dot")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ImportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, got)
	if _, err := ImportFile(path + ".missing"); err == nil {
		t.Fatal("ImportFile accepted a missing path")
	}
}
