// Package dag models mixed-parallel applications as directed acyclic graphs
// of moldable tasks, and provides the random-DAG generator used throughout
// the paper's case study (Table I).
//
// Each task is a data-parallel computation — in the case study a matrix
// addition or a matrix multiplication over n×n matrices of float64 — that can
// run on an arbitrary number of processors ("moldable"). Edges carry data
// dependencies: the output matrix of a task is an input of its successors and
// must be redistributed between the (possibly different) processor sets.
package dag

import (
	"fmt"
	"sort"
)

// Kernel identifies the computational kernel a task executes.
type Kernel int

const (
	// KernelAdd is the parallel matrix addition C = A + B (1-D column
	// distribution, no inter-processor communication). To keep addition
	// tasks from vanishing relative to multiplications, the case study
	// repeats each addition n/4 times (paper §IV-1).
	KernelAdd Kernel = iota
	// KernelMul is the parallel matrix multiplication C = A × B with a 1-D
	// column distribution: each of the p processors owns n/p columns,
	// executes 2n³/p flops, and exchanges n²/p elements per step.
	KernelMul
	// KernelNoop is a task with no computation, used by the profiler to
	// measure bare task-startup overhead (paper §VI-B).
	KernelNoop
)

// String returns the conventional short name of the kernel.
func (k Kernel) String() string {
	switch k {
	case KernelAdd:
		return "add"
	case KernelMul:
		return "mul"
	case KernelNoop:
		return "noop"
	default:
		return fmt.Sprintf("kernel(%d)", int(k))
	}
}

// MatrixBytes returns the size in bytes of one n×n matrix of float64
// elements, the unit of data carried by every DAG edge in the case study.
func MatrixBytes(n int) int64 { return int64(n) * int64(n) * 8 }

// Task is one moldable node of a mixed-parallel application.
type Task struct {
	// ID is the task's index in its Graph; Graph methods keep it dense.
	ID int
	// Name is a human-readable label ("t3/mul").
	Name string
	// Kernel selects the computation.
	Kernel Kernel
	// N is the matrix dimension the task operates on.
	N int

	preds []int
	succs []int
}

// Preds returns the IDs of the task's direct predecessors.
// The returned slice must not be modified.
func (t *Task) Preds() []int { return t.preds }

// Succs returns the IDs of the task's direct successors.
// The returned slice must not be modified.
func (t *Task) Succs() []int { return t.succs }

// InDegree returns the number of direct predecessors.
func (t *Task) InDegree() int { return len(t.preds) }

// OutDegree returns the number of direct successors.
func (t *Task) OutDegree() int { return len(t.succs) }

// Flops returns the number of floating point operations the task performs in
// total (across all processors), per the paper's analytical task model:
// 2n³ for a multiplication and (n/4)·n² for the boosted addition.
func (t *Task) Flops() float64 {
	n := float64(t.N)
	switch t.Kernel {
	case KernelMul:
		return 2 * n * n * n
	case KernelAdd:
		return (n / 4) * n * n
	default:
		return 0
	}
}

// OutputBytes returns the size of the task's output matrix.
func (t *Task) OutputBytes() int64 {
	if t.Kernel == KernelNoop {
		return 0
	}
	return MatrixBytes(t.N)
}

// Graph is a mixed-parallel application: a DAG of moldable tasks.
//
// The zero value is an empty application ready for use.
type Graph struct {
	// Name labels the application (e.g. "dag-w4-r0.75-n2000-s1").
	Name string
	// Tasks holds the nodes indexed by Task.ID.
	Tasks []*Task
}

// New returns an empty graph with the given name.
func New(name string) *Graph { return &Graph{Name: name} }

// AddTask appends a task with the given kernel and matrix size and returns it.
func (g *Graph) AddTask(kernel Kernel, n int) *Task {
	t := &Task{
		ID:     len(g.Tasks),
		Name:   fmt.Sprintf("t%d/%s", len(g.Tasks), kernel),
		Kernel: kernel,
		N:      n,
	}
	g.Tasks = append(g.Tasks, t)
	return t
}

// AddEdge records a data dependency from task src to task dst.
// Duplicate edges are ignored. AddEdge panics if either ID is out of range or
// if src == dst.
func (g *Graph) AddEdge(src, dst int) {
	if src == dst {
		panic(fmt.Sprintf("dag: self edge on task %d", src))
	}
	s, d := g.Task(src), g.Task(dst)
	for _, x := range s.succs {
		if x == dst {
			return
		}
	}
	s.succs = append(s.succs, dst)
	d.preds = append(d.preds, src)
}

// Task returns the task with the given ID, panicking if out of range.
func (g *Graph) Task(id int) *Task {
	if id < 0 || id >= len(g.Tasks) {
		panic(fmt.Sprintf("dag: task id %d out of range [0,%d)", id, len(g.Tasks)))
	}
	return g.Tasks[id]
}

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.Tasks) }

// Entries returns the IDs of tasks with no predecessors, in ID order.
func (g *Graph) Entries() []int {
	var out []int
	for _, t := range g.Tasks {
		if len(t.preds) == 0 {
			out = append(out, t.ID)
		}
	}
	return out
}

// Exits returns the IDs of tasks with no successors, in ID order.
func (g *Graph) Exits() []int {
	var out []int
	for _, t := range g.Tasks {
		if len(t.succs) == 0 {
			out = append(out, t.ID)
		}
	}
	return out
}

// EdgeCount returns the total number of edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, t := range g.Tasks {
		n += len(t.succs)
	}
	return n
}

// Validate checks structural invariants: dense IDs, edge symmetry, positive
// matrix sizes, and acyclicity. It returns the first violation found.
func (g *Graph) Validate() error {
	for i, t := range g.Tasks {
		if t == nil {
			return fmt.Errorf("dag %q: nil task at index %d", g.Name, i)
		}
		if t.ID != i {
			return fmt.Errorf("dag %q: task at index %d has ID %d", g.Name, i, t.ID)
		}
		if t.N < 0 || (t.Kernel != KernelNoop && t.N == 0) {
			return fmt.Errorf("dag %q: task %d has invalid matrix size %d", g.Name, i, t.N)
		}
		for _, p := range t.preds {
			if p < 0 || p >= len(g.Tasks) {
				return fmt.Errorf("dag %q: task %d has out-of-range predecessor %d", g.Name, i, p)
			}
			if !contains(g.Tasks[p].succs, i) {
				return fmt.Errorf("dag %q: edge %d->%d recorded on dst only", g.Name, p, i)
			}
		}
		for _, s := range t.succs {
			if s < 0 || s >= len(g.Tasks) {
				return fmt.Errorf("dag %q: task %d has out-of-range successor %d", g.Name, i, s)
			}
			if !contains(g.Tasks[s].preds, i) {
				return fmt.Errorf("dag %q: edge %d->%d recorded on src only", g.Name, i, s)
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TopoOrder returns the task IDs in a deterministic topological order
// (Kahn's algorithm with smallest-ID-first tie-breaking), or an error if the
// graph has a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	indeg := make([]int, len(g.Tasks))
	for _, t := range g.Tasks {
		indeg[t.ID] = len(t.preds)
	}
	var ready []int
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Ints(ready)
	order := make([]int, 0, len(g.Tasks))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		newly := make([]int, 0, len(g.Tasks[id].succs))
		for _, s := range g.Tasks[id].succs {
			indeg[s]--
			if indeg[s] == 0 {
				newly = append(newly, s)
			}
		}
		sort.Ints(newly)
		ready = merge(ready, newly)
	}
	if len(order) != len(g.Tasks) {
		return nil, fmt.Errorf("dag %q: cycle detected (%d of %d tasks ordered)",
			g.Name, len(order), len(g.Tasks))
	}
	return order, nil
}

// merge merges two sorted int slices into a sorted slice.
func merge(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Levels returns, for each task, its precedence level: entry tasks are level
// 0 and every other task is 1 + max(level of predecessors). MCPA constrains
// allocations per level. The second return value is the number of levels.
func (g *Graph) Levels() ([]int, int) {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err) // callers validate first; a cycle here is a programming error
	}
	level := make([]int, len(g.Tasks))
	maxLevel := 0
	for _, id := range order {
		l := 0
		for _, p := range g.Tasks[id].preds {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[id] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	if len(g.Tasks) == 0 {
		return level, 0
	}
	return level, maxLevel + 1
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := &Graph{Name: g.Name, Tasks: make([]*Task, len(g.Tasks))}
	for i, t := range g.Tasks {
		ct := *t
		ct.preds = append([]int(nil), t.preds...)
		ct.succs = append([]int(nil), t.succs...)
		out.Tasks[i] = &ct
	}
	return out
}

// CountKernel returns the number of tasks with the given kernel.
func (g *Graph) CountKernel(k Kernel) int {
	n := 0
	for _, t := range g.Tasks {
		if t.Kernel == k {
			n++
		}
	}
	return n
}
