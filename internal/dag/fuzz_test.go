package dag

import (
	"math"
	"testing"
)

// FuzzDAGGenerator drives the paper's random-DAG generator with arbitrary
// parameters and checks the structural contract every consumer (schedulers,
// simulators, suite construction) relies on: whenever the parameters
// validate, generation succeeds and yields exactly Tasks tasks in a valid —
// dense, edge-symmetric, acyclic — graph with the requested add/mul split.
// CI runs this as a fuzz smoke (-fuzz=FuzzDAGGenerator -fuzztime=10s); the
// seed corpus lives under testdata/fuzz/FuzzDAGGenerator.
func FuzzDAGGenerator(f *testing.F) {
	f.Add(int64(2011), 10, 4, 0.75, 2000)
	f.Add(int64(1), 1, 2, 0.0, 1)
	f.Add(int64(-7), 50, 2, 1.0, 3000)
	f.Add(int64(0), 13, 100, 0.5, 64)
	f.Add(int64(1<<62), 3, 3, 0.33, 2000)
	f.Fuzz(func(t *testing.T, seed int64, tasks, width int, ratio float64, n int) {
		p := GenParams{Tasks: tasks, InputMatrices: width, AddRatio: ratio, N: n, Seed: seed}
		if err := p.Validate(); err != nil {
			return // invalid parameters are the caller's problem
		}
		// Bound the work per input so the fuzzer explores shapes, not
		// allocation stamina; the generator is linear in both parameters.
		if tasks > 512 || width > 4096 {
			t.Skip("parameters valid but oversized for a fuzz iteration")
		}
		g, err := Generate(p)
		if err != nil {
			t.Fatalf("Generate(%+v) failed on validated parameters: %v", p, err)
		}
		if g.Len() != tasks {
			t.Fatalf("Generate(%+v) produced %d tasks, want %d", p, g.Len(), tasks)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Generate(%+v) produced an invalid graph: %v", p, err)
		}
		if _, err := g.TopoOrder(); err != nil {
			t.Fatalf("Generate(%+v) produced a cyclic graph: %v", p, err)
		}
		adds := 0
		for _, task := range g.Tasks {
			switch task.Kernel {
			case KernelAdd:
				adds++
			case KernelMul:
			default:
				t.Fatalf("Generate(%+v) produced unexpected kernel %v", p, task.Kernel)
			}
			if task.N != n {
				t.Fatalf("Generate(%+v) produced task with matrix size %d", p, task.N)
			}
			if len(task.Preds()) > 2 {
				t.Fatalf("Generate(%+v) produced task %d with %d operands", p, task.ID, len(task.Preds()))
			}
		}
		if wantAdds := int(math.Round(ratio * float64(tasks))); adds != wantAdds {
			t.Fatalf("Generate(%+v) produced %d additions, want %d", p, adds, wantAdds)
		}
	})
}
