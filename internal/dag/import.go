package dag

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// This file completes the serialization round trip: graphs exported with
// WriteDOT or WriteJSON can be read back into a *Graph. The importers are
// strict about structure (dense IDs, valid edges, acyclicity — everything
// Validate checks) but never panic on malformed input: hostile bytes get an
// error, which is what lets imported workflow traces flow through the same
// engines as generated suites.
//
// Both exports list edges grouped by source task in ascending ID order, so
// an imported graph's predecessor lists are normalized to that order; task
// order, successor order, and therefore re-exported bytes are preserved
// exactly.

// Import parses a serialized graph, sniffing the format: input whose first
// non-space byte is '{' is treated as the WriteJSON node/edge list,
// everything else as the WriteDOT dialect.
func Import(data []byte) (*Graph, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		return ReadJSON(bytes.NewReader(trimmed))
	}
	return ReadDOT(bytes.NewReader(data))
}

// ImportFile reads and parses a serialized graph from path.
func ImportFile(path string) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g, err := Import(data)
	if err != nil {
		return nil, fmt.Errorf("dag: import %s: %w", path, err)
	}
	return g, nil
}

// dotNode is one parsed node statement, attributes still in escaped form.
type dotNode struct {
	id     int
	label  string
	kernel string
	shape  string
	hasLbl bool
}

// ReadDOT parses the DOT dialect emitted by WriteDOT back into a graph. It
// is line-oriented and tolerant of attribute order, extra attributes,
// comment lines and multi-hop edge statements, but requires the node labels
// WriteDOT produces ("<name>\nn=<size>") and dense task IDs t0..tN-1.
func ReadDOT(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var (
		name      string
		sawHeader bool
		sawClose  bool
		nodes     = map[int]dotNode{}
		edges     [][2]int
	)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "#"):
			continue
		case !sawHeader:
			n, err := parseDOTHeader(line)
			if err != nil {
				return nil, err
			}
			name, sawHeader = n, true
		case line == "}":
			sawClose = true
		case sawClose:
			return nil, fmt.Errorf("dag: dot: content after closing brace: %q", line)
		case isDOTDirective(line):
			continue
		case strings.Contains(line, "->"):
			hops, err := parseDOTEdge(line)
			if err != nil {
				return nil, err
			}
			for i := 0; i+1 < len(hops); i++ {
				edges = append(edges, [2]int{hops[i], hops[i+1]})
			}
		default:
			nd, err := parseDOTNode(line)
			if err != nil {
				return nil, err
			}
			if _, dup := nodes[nd.id]; dup {
				return nil, fmt.Errorf("dag: dot: duplicate node t%d", nd.id)
			}
			nodes[nd.id] = nd
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dag: dot: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("dag: dot: missing digraph header")
	}
	if !sawClose {
		return nil, fmt.Errorf("dag: dot: missing closing brace")
	}
	return buildFromDOT(name, nodes, edges)
}

// buildFromDOT assembles and validates the graph from parsed statements.
func buildFromDOT(name string, nodes map[int]dotNode, edges [][2]int) (*Graph, error) {
	ids := make([]int, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for i, id := range ids {
		if id != i {
			return nil, fmt.Errorf("dag: dot: task IDs must be dense 0..%d, got t%d", len(ids)-1, id)
		}
	}
	g := New(name)
	for _, id := range ids {
		nd := nodes[id]
		taskName, n, err := splitDOTLabel(nd)
		if err != nil {
			return nil, err
		}
		k, err := dotKernel(nd, taskName)
		if err != nil {
			return nil, err
		}
		t := g.AddTask(k, n)
		if taskName != "" {
			t.Name = taskName
		}
	}
	for _, e := range edges {
		if e[0] < 0 || e[0] >= g.Len() || e[1] < 0 || e[1] >= g.Len() {
			return nil, fmt.Errorf("dag: dot: edge t%d -> t%d references undefined task", e[0], e[1])
		}
		if e[0] == e[1] {
			return nil, fmt.Errorf("dag: dot: self edge on t%d", e[0])
		}
		g.AddEdge(e[0], e[1])
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// splitDOTLabel recovers the task name and matrix size from a node label.
// The label is still escaped; the split happens at the last \n escape, which
// is always the WriteDOT separator because the "n=<size>" suffix contains no
// backslashes. The name half alone is then unescaped.
func splitDOTLabel(nd dotNode) (string, int, error) {
	if !nd.hasLbl {
		return "", 0, fmt.Errorf("dag: dot: node t%d has no label", nd.id)
	}
	i := strings.LastIndex(nd.label, `\n`)
	if i < 0 || !strings.HasPrefix(nd.label[i+2:], "n=") {
		return "", 0, fmt.Errorf("dag: dot: node t%d label %q lacks the \\nn=<size> suffix", nd.id, nd.label)
	}
	n, err := strconv.Atoi(nd.label[i+4:])
	if err != nil || n < 0 {
		return "", 0, fmt.Errorf("dag: dot: node t%d has invalid size %q", nd.id, nd.label[i+4:])
	}
	return dotUnescape(nd.label[:i]), n, nil
}

// dotKernel resolves a node's kernel: the explicit kernel attribute wins,
// then a "/add"-style task-name suffix, then the node shape (ellipse is a
// multiplication, box alone is ambiguous between add and noop and defaults
// to add).
func dotKernel(nd dotNode, taskName string) (Kernel, error) {
	if nd.kernel != "" {
		return parseKernel(nd.kernel)
	}
	for _, k := range []Kernel{KernelAdd, KernelMul, KernelNoop} {
		if strings.HasSuffix(taskName, "/"+k.String()) {
			return k, nil
		}
	}
	if nd.shape == "ellipse" {
		return KernelMul, nil
	}
	return KernelAdd, nil
}

// parseDOTHeader parses `digraph "name" {` (quoted or bare name, both
// optional) and returns the unescaped graph name.
func parseDOTHeader(line string) (string, error) {
	rest, ok := strings.CutPrefix(line, "digraph")
	if !ok {
		return "", fmt.Errorf("dag: dot: expected digraph header, got %q", line)
	}
	rest = strings.TrimSpace(rest)
	name := ""
	if strings.HasPrefix(rest, `"`) {
		esc, tail, err := scanDOTQuoted(rest)
		if err != nil {
			return "", fmt.Errorf("dag: dot: header: %w", err)
		}
		name, rest = dotUnescape(esc), strings.TrimSpace(tail)
	} else if i := strings.IndexByte(rest, '{'); i > 0 {
		name, rest = strings.TrimSpace(rest[:i]), rest[i:]
	}
	if !strings.HasPrefix(rest, "{") {
		return "", fmt.Errorf("dag: dot: header %q lacks opening brace", line)
	}
	return name, nil
}

// isDOTDirective reports whether the line is a graph-level attribute or
// default-attribute statement the importer can skip.
func isDOTDirective(line string) bool {
	for _, p := range []string{"rankdir", "graph ", "graph[", "node ", "node[", "edge ", "edge[", "label=", "labelloc", "fontname", "fontsize"} {
		if strings.HasPrefix(line, p) {
			return true
		}
	}
	return false
}

// parseDOTEdge parses `tA -> tB [-> tC ...];` into the hop list.
func parseDOTEdge(line string) ([]int, error) {
	line = strings.TrimSuffix(strings.TrimSpace(line), ";")
	// Drop a trailing attribute block; edge attributes carry no structure.
	if i := strings.IndexByte(line, '['); i >= 0 {
		if !strings.HasSuffix(strings.TrimSpace(line), "]") {
			return nil, fmt.Errorf("dag: dot: unterminated edge attributes: %q", line)
		}
		line = strings.TrimSpace(line[:i])
	}
	parts := strings.Split(line, "->")
	if len(parts) < 2 {
		return nil, fmt.Errorf("dag: dot: malformed edge %q", line)
	}
	hops := make([]int, len(parts))
	for i, p := range parts {
		id, err := parseDOTNodeID(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		hops[i] = id
	}
	return hops, nil
}

// parseDOTNode parses `tID [k=v ...];` into a dotNode.
func parseDOTNode(line string) (dotNode, error) {
	line = strings.TrimSuffix(strings.TrimSpace(line), ";")
	idTok := line
	attrs := ""
	if i := strings.IndexByte(line, '['); i >= 0 {
		if !strings.HasSuffix(line, "]") {
			return dotNode{}, fmt.Errorf("dag: dot: unterminated node attributes: %q", line)
		}
		idTok, attrs = strings.TrimSpace(line[:i]), line[i+1:len(line)-1]
	}
	id, err := parseDOTNodeID(idTok)
	if err != nil {
		return dotNode{}, err
	}
	nd := dotNode{id: id}
	for attrs = strings.TrimSpace(attrs); attrs != ""; attrs = strings.TrimSpace(attrs) {
		attrs = strings.TrimPrefix(attrs, ",")
		eq := strings.IndexByte(attrs, '=')
		if eq <= 0 {
			return dotNode{}, fmt.Errorf("dag: dot: node t%d: malformed attribute near %q", id, attrs)
		}
		key := strings.TrimSpace(attrs[:eq])
		rest := strings.TrimSpace(attrs[eq+1:])
		var val string
		if strings.HasPrefix(rest, `"`) {
			esc, tail, err := scanDOTQuoted(rest)
			if err != nil {
				return dotNode{}, fmt.Errorf("dag: dot: node t%d: %w", id, err)
			}
			val, attrs = esc, tail
		} else {
			end := strings.IndexAny(rest, " \t,")
			if end < 0 {
				end = len(rest)
			}
			val, attrs = rest[:end], rest[end:]
		}
		switch key {
		case "label":
			nd.label, nd.hasLbl = val, true
		case "kernel":
			nd.kernel = dotUnescape(val)
		case "shape":
			nd.shape = dotUnescape(val)
		}
	}
	return nd, nil
}

// parseDOTNodeID parses a `t<digits>` node identifier.
func parseDOTNodeID(tok string) (int, error) {
	digits, ok := strings.CutPrefix(tok, "t")
	if !ok || digits == "" {
		return 0, fmt.Errorf("dag: dot: node identifier %q is not of the form t<id>", tok)
	}
	id, err := strconv.Atoi(digits)
	if err != nil || id < 0 {
		return 0, fmt.Errorf("dag: dot: node identifier %q is not of the form t<id>", tok)
	}
	return id, nil
}

// scanDOTQuoted scans a double-quoted DOT string starting at s[0] == '"'.
// It returns the contents still in escaped form plus the remainder after
// the closing quote.
func scanDOTQuoted(s string) (esc, rest string, err error) {
	if !strings.HasPrefix(s, `"`) {
		return "", "", fmt.Errorf("expected quoted string at %q", s)
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip the escaped byte
		case '"':
			return s[1:i], s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string %q", s)
}

// dotUnescape inverts dotEscape: \\ and \" drop the backslash, \n becomes a
// raw newline, and any other escape keeps the escaped byte.
func dotUnescape(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			if s[i] == 'n' {
				b.WriteByte('\n')
			} else {
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
