package dag

// This file defines the paper's evaluation workload: the 54-instance random
// DAG suite of Table I (3 widths × 3 add ratios × 2 matrix sizes × 3 samples,
// 10 tasks each).

// Table I parameter values.
var (
	// SuiteTasks is the task count per DAG.
	SuiteTasks = 10
	// SuiteWidths is the "number of input matrices (DAG width)" row.
	SuiteWidths = []int{2, 4, 8}
	// SuiteRatios is the "ratio addition / multiplication tasks" row.
	SuiteRatios = []float64{0.5, 0.75, 1.0}
	// SuiteSizes is the "matrix size (# elements per dimension)" row.
	SuiteSizes = []int{2000, 3000}
	// SuiteSamples is the "number of samples" row.
	SuiteSamples = 3
)

// SuiteInstance pairs a generated graph with its generator parameters.
type SuiteInstance struct {
	Params GenParams
	Graph  *Graph
}

// SuiteParams enumerates the 54 parameter combinations of Table I in a fixed
// deterministic order (size-major, then width, then ratio, then sample) with
// seeds derived from the base seed so the whole suite is reproducible.
func SuiteParams(baseSeed int64) []GenParams {
	var out []GenParams
	for _, n := range SuiteSizes {
		for _, w := range SuiteWidths {
			for _, r := range SuiteRatios {
				for s := 0; s < SuiteSamples; s++ {
					out = append(out, GenParams{
						Tasks:         SuiteTasks,
						InputMatrices: w,
						AddRatio:      r,
						N:             n,
						Seed:          suiteSeed(baseSeed, n, w, r, s),
					})
				}
			}
		}
	}
	return out
}

// suiteSeed mixes the instance coordinates into a per-instance seed using a
// splitmix64 round per component, which avoids collisions across the grid.
func suiteSeed(base int64, n, w int, r float64, sample int) int64 {
	h := uint64(base)
	for _, v := range []uint64{uint64(n), uint64(w), uint64(r * 1000), uint64(sample)} {
		h += v + 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return int64(h >> 1) // keep it non-negative
}

// GenerateSuite produces the full 54-DAG evaluation suite.
func GenerateSuite(baseSeed int64) ([]SuiteInstance, error) {
	params := SuiteParams(baseSeed)
	out := make([]SuiteInstance, 0, len(params))
	for _, p := range params {
		g, err := Generate(p)
		if err != nil {
			return nil, err
		}
		out = append(out, SuiteInstance{Params: p, Graph: g})
	}
	return out, nil
}

// Name returns the instance's display name: the graph's own name when it
// has one (always true for generated instances, whose graph is named after
// the parameters, and for imported traces and built shapes), else the
// generator parameters.
func (in SuiteInstance) Name() string {
	if in.Graph != nil && in.Graph.Name != "" {
		return in.Graph.Name
	}
	return in.Params.Name()
}

// FilterBySize returns the suite instances with the given matrix size; the
// paper plots n=2000 and n=3000 separately (27 DAGs each).
func FilterBySize(suite []SuiteInstance, n int) []SuiteInstance {
	var out []SuiteInstance
	for _, in := range suite {
		if in.Params.N == n {
			out = append(out, in)
		}
	}
	return out
}
