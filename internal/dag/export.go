package dag

import (
	"fmt"
	"io"
	"strings"
)

// dotEscape renders a name for use inside a double-quoted DOT string:
// backslash and double quote get a backslash, and a raw newline becomes the
// two-character sequence \n (which Graphviz renders as a line break). The
// escaped form never contains a raw newline or an unpaired backslash, so
// dotUnescape inverts it exactly.
func dotEscape(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// WriteDOT renders the graph in Graphviz DOT format, one node per task
// labelled with kernel and matrix size — handy for inspecting generated
// instances. The emitted dialect round-trips through ReadDOT: names are
// escaped, and each node carries an explicit kernel attribute so the kernel
// survives even when the task name does not encode it.
func (g *Graph) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "digraph \"%s\" {\n  rankdir=TB;\n", dotEscape(g.Name)); err != nil {
		return err
	}
	for _, t := range g.Tasks {
		shape := "box"
		if t.Kernel == KernelMul {
			shape = "ellipse"
		}
		// The \n between name and size is a literal two-character escape for
		// Graphviz's line break; ReadDOT splits the label at its last
		// occurrence, which is unambiguous because the size suffix holds no
		// backslashes.
		if _, err := fmt.Fprintf(w, "  t%d [label=\"%s\\nn=%d\" shape=%s kernel=%s];\n",
			t.ID, dotEscape(t.Name), t.N, shape, t.Kernel); err != nil {
			return err
		}
	}
	for _, t := range g.Tasks {
		for _, s := range t.succs {
			if _, err := fmt.Fprintf(w, "  t%d -> t%d;\n", t.ID, s); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// TotalFlops sums the computational work of all tasks.
func (g *Graph) TotalFlops() float64 {
	total := 0.0
	for _, t := range g.Tasks {
		total += t.Flops()
	}
	return total
}

// TotalEdgeBytes sums the data volumes carried by all edges (each edge
// moves the producing task's output matrix).
func (g *Graph) TotalEdgeBytes() int64 {
	var total int64
	for _, t := range g.Tasks {
		total += int64(t.OutDegree()) * t.OutputBytes()
	}
	return total
}

// CCR returns the graph's computation-to-communication ratio under a
// platform with the given flop rate (flop/s) and bandwidth (bytes/s):
// compute time over transfer time if everything ran sequentially. The DAG
// generator controls this ratio through the addition/multiplication mix
// (§II-B). A graph that moves no data — no edges, or only noop outputs —
// has no communication time to divide by, so CCR returns 0 for it rather
// than NaN or ±Inf.
func (g *Graph) CCR(flopRate, bandwidth float64) float64 {
	bytes := g.TotalEdgeBytes()
	if bytes == 0 {
		return 0
	}
	compute := g.TotalFlops() / flopRate
	transfer := float64(bytes) / bandwidth
	return compute / transfer
}
