package dag

import (
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format, one node per task
// labelled with kernel and matrix size — handy for inspecting generated
// instances.
func (g *Graph) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n", g.Name); err != nil {
		return err
	}
	for _, t := range g.Tasks {
		shape := "box"
		if t.Kernel == KernelMul {
			shape = "ellipse"
		}
		// The label wants a literal \n escape for Graphviz's line break.
		if _, err := fmt.Fprintf(w, "  t%d [label=\"%s\\nn=%d\" shape=%s];\n",
			t.ID, t.Name, t.N, shape); err != nil {
			return err
		}
	}
	for _, t := range g.Tasks {
		for _, s := range t.succs {
			if _, err := fmt.Fprintf(w, "  t%d -> t%d;\n", t.ID, s); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// TotalFlops sums the computational work of all tasks.
func (g *Graph) TotalFlops() float64 {
	total := 0.0
	for _, t := range g.Tasks {
		total += t.Flops()
	}
	return total
}

// TotalEdgeBytes sums the data volumes carried by all edges (each edge
// moves the producing task's output matrix).
func (g *Graph) TotalEdgeBytes() int64 {
	var total int64
	for _, t := range g.Tasks {
		total += int64(t.OutDegree()) * t.OutputBytes()
	}
	return total
}

// CCR returns the graph's computation-to-communication ratio under a
// platform with the given flop rate (flop/s) and bandwidth (bytes/s):
// compute time over transfer time if everything ran sequentially. The DAG
// generator controls this ratio through the addition/multiplication mix
// (§II-B). Graphs without edges return +Inf-free 0 denominator guard: the
// function returns 0 when there is no communication.
func (g *Graph) CCR(flopRate, bandwidth float64) float64 {
	bytes := g.TotalEdgeBytes()
	if bytes == 0 {
		return 0
	}
	compute := g.TotalFlops() / flopRate
	transfer := float64(bytes) / bandwidth
	return compute / transfer
}
