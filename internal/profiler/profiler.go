// Package profiler implements the measurement campaigns of §VI and §VII:
// brute-force task profiles (every kernel, matrix size and processor count),
// no-op startup probes, and mostly-empty-matrix redistribution probes. The
// campaigns only observe the emulated environment through the same probes
// the authors used on their cluster; the hidden ground-truth curves are
// never read directly, so the resulting models inherit genuine measurement
// error.
package profiler

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/regression"
)

// Env is the measurable surface of an emulated environment: the probes the
// paper's campaigns issue (§VI). Both *cluster.Emulator (shared noise
// stream, order-dependent like a real cluster) and *cluster.Session
// (private deterministic stream, used by the concurrent study engine)
// satisfy it.
type Env interface {
	MeasureTask(kernel dag.Kernel, n, p int) float64
	MeasureStartup(p int) float64
	MeasureRedistOverhead(pSrc, pDst int) float64
}

// Campaign runs measurements against an emulated environment.
type Campaign struct {
	// Em is the environment under measurement.
	Em Env
}

// TaskProfile measures the mean execution time of every (kernel, size,
// processor-count) combination over the given number of trials — the
// brute-force approach of §VI-A.
func (c Campaign) TaskProfile(kernels []dag.Kernel, sizes []int, maxP, trials int) map[perfmodel.TaskKey]float64 {
	out := make(map[perfmodel.TaskKey]float64)
	for _, k := range kernels {
		for _, n := range sizes {
			for p := 1; p <= maxP; p++ {
				out[perfmodel.TaskKey{Kernel: k, N: n, P: p}] = c.MeasureTaskMean(k, n, p, trials)
			}
		}
	}
	return out
}

// mean averages trials draws of one probe (at least one).
func mean(trials int, probe func() float64) float64 {
	if trials < 1 {
		trials = 1
	}
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += probe()
	}
	return sum / float64(trials)
}

// MeasureTaskMean measures one task configuration over trials.
func (c Campaign) MeasureTaskMean(kernel dag.Kernel, n, p, trials int) float64 {
	return mean(trials, func() float64 { return c.Em.MeasureTask(kernel, n, p) })
}

// MeasureStartupMean measures one allocation size's startup overhead over
// trials.
func (c Campaign) MeasureStartupMean(p, trials int) float64 {
	return mean(trials, func() float64 { return c.Em.MeasureStartup(p) })
}

// MeasureRedistMean measures one (p(src), p(dst)) pair's redistribution
// overhead over trials.
func (c Campaign) MeasureRedistMean(src, dst, trials int) float64 {
	return mean(trials, func() float64 { return c.Em.MeasureRedistOverhead(src, dst) })
}

// StartupSeries launches no-op applications on p = 1..maxP processors,
// trials times each, and returns the mean startup overhead per p (index
// p−1) — the Figure 3 measurement (the paper averages 20 trials).
func (c Campaign) StartupSeries(maxP, trials int) []float64 {
	out := make([]float64, maxP)
	for p := 1; p <= maxP; p++ {
		out[p-1] = c.MeasureStartupMean(p, trials)
	}
	return out
}

// RedistSurface probes the redistribution overhead for every
// (p(src), p(dst)) pair in [1, maxP]², trials times each (the paper uses
// 3), and returns the mean surface indexed [src−1][dst−1] — Figure 4.
func (c Campaign) RedistSurface(maxP, trials int) [][]float64 {
	out := make([][]float64, maxP)
	for s := 1; s <= maxP; s++ {
		out[s-1] = make([]float64, maxP)
		for d := 1; d <= maxP; d++ {
			out[s-1][d-1] = c.MeasureRedistMean(s, d, trials)
		}
	}
	return out
}

// RedistByDst collapses a surface to the per-destination average over all
// source counts, the reduction §VI-C applies after observing that the
// overhead depends mostly on p(dst).
func RedistByDst(surface [][]float64) map[int]float64 {
	out := make(map[int]float64, len(surface))
	if len(surface) == 0 {
		return out
	}
	for d := range surface[0] {
		sum := 0.0
		for s := range surface {
			sum += surface[s][d]
		}
		out[d+1] = sum / float64(len(surface))
	}
	return out
}

// ProfileOptions configures the brute-force campaign.
type ProfileOptions struct {
	// Sizes are the matrix dimensions to profile (paper: 2000, 3000).
	Sizes []int
	// TaskTrials is the number of measurements per task configuration.
	TaskTrials int
	// StartupTrials is the number of no-op probes per p (paper: 20).
	StartupTrials int
	// RedistTrials is the number of probes per (src, dst) pair (paper: 3).
	RedistTrials int
}

// DefaultProfileOptions mirrors the paper's campaign.
func DefaultProfileOptions() ProfileOptions {
	return ProfileOptions{
		Sizes:         []int{2000, 3000},
		TaskTrials:    3,
		StartupTrials: 20,
		RedistTrials:  3,
	}
}

// BuildProfileModel runs the full brute-force campaign and assembles the
// paper's second simulator model (§VI-D).
func BuildProfileModel(em *cluster.Emulator, opts ProfileOptions) (*perfmodel.Profile, error) {
	c := Campaign{Em: em}
	maxP := em.Hidden.Cluster.Nodes
	data := perfmodel.NewProfileData()
	data.TaskTimes = c.TaskProfile([]dag.Kernel{dag.KernelMul, dag.KernelAdd}, opts.Sizes, maxP, opts.TaskTrials)
	for p, v := range c.StartupSeries(maxP, opts.StartupTrials) {
		data.Startup[p+1] = v
	}
	data.RedistByDst = RedistByDst(c.RedistSurface(maxP, opts.RedistTrials))
	return perfmodel.NewProfile(data)
}

// EmpiricalOptions configures the sparse campaign of §VII.
type EmpiricalOptions struct {
	// Sizes are the matrix dimensions to fit (paper: 2000, 3000).
	Sizes []int
	// MulLowPoints are the processor counts fitted with the Amdahl-like
	// low regime (Table II: {2, 4, 7, 15} after outlier avoidance).
	MulLowPoints []int
	// MulHighPoints are the processor counts fitted with the linear high
	// regime (Table II: {15, 24, 31}).
	MulHighPoints []int
	// AddPoints are the addition measurement points (Table II:
	// {2, 4, 7, 15, 24, 31}).
	AddPoints []int
	// OverheadPoints are the startup/redistribution measurement points
	// (Table II: {1, 16, 32}).
	OverheadPoints []int
	// Split is the regime boundary (Table II: 16).
	Split int
	// Trials is the number of measurements averaged per point.
	Trials int
	// HalfInverseFor2000 selects the a·1/(2p)+b low-regime basis for
	// n = 2000 as in Table II (other sizes use a·1/p+b).
	HalfInverseFor2000 bool
}

// DefaultEmpiricalOptions mirrors Table II.
func DefaultEmpiricalOptions() EmpiricalOptions {
	return EmpiricalOptions{
		Sizes:              []int{2000, 3000},
		MulLowPoints:       []int{2, 4, 7, 15},
		MulHighPoints:      []int{15, 24, 31},
		AddPoints:          []int{2, 4, 7, 15, 24, 31},
		OverheadPoints:     []int{1, 16, 32},
		Split:              16,
		Trials:             3,
		HalfInverseFor2000: true,
	}
}

// NaiveMulPoints is the initial powers-of-two measurement set whose p = 8
// and p = 16 outliers wreck the fit (Figure 6, left).
var NaiveMulPoints = []int{1, 2, 4, 8, 16, 32}

// ScaledTo returns a copy of the options with every processor-count point
// rescaled from a ref-node platform to a nodes-node one — the §IX scenario
// of instantiating the sparse campaign on a hypothetical cluster. Points are
// scaled proportionally, clamped to [1, nodes] and deduplicated in order;
// the regime boundary scales the same way. nodes == ref (or ref <= 0) is the
// identity, so fits on the reference platform are unaffected.
func (o EmpiricalOptions) ScaledTo(nodes, ref int) EmpiricalOptions {
	if nodes == ref || ref <= 0 || nodes <= 0 {
		return o
	}
	out := o
	out.MulLowPoints = scalePoints(o.MulLowPoints, nodes, ref)
	out.MulHighPoints = scalePoints(o.MulHighPoints, nodes, ref)
	out.AddPoints = scalePoints(o.AddPoints, nodes, ref)
	out.OverheadPoints = scalePoints(o.OverheadPoints, nodes, ref)
	out.Split = o.Split * nodes / ref
	if out.Split < 1 {
		out.Split = 1
	}
	return out
}

// scalePoints rescales one measurement-point set to a new cluster size,
// clamping to [1, nodes] and dropping duplicates while preserving order.
func scalePoints(points []int, nodes, ref int) []int {
	out := make([]int, 0, len(points))
	seen := map[int]bool{}
	for _, p := range points {
		v := p * nodes / ref
		if v < 1 {
			v = 1
		}
		if v > nodes {
			v = nodes
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// MeasureSeries measures the mean task time at each processor count.
func (c Campaign) MeasureSeries(kernel dag.Kernel, n int, points []int, trials int) (xs, ys []float64) {
	xs = make([]float64, len(points))
	ys = make([]float64, len(points))
	for i, p := range points {
		xs[i] = float64(p)
		ys[i] = c.MeasureTaskMean(kernel, n, p, trials)
	}
	return xs, ys
}

// BuildEmpiricalModel runs the sparse campaign and assembles the paper's
// third simulator model (§VII-A): piecewise regression for multiplications,
// a single Amdahl-like fit for additions, and linear fits for the two
// overheads.
func BuildEmpiricalModel(em *cluster.Emulator, opts EmpiricalOptions) (*perfmodel.Empirical, error) {
	c := Campaign{Em: em}
	model := &perfmodel.Empirical{
		MulFits: make(map[int]regression.Piecewise),
		AddFits: make(map[int]regression.Fit),
	}
	for _, n := range opts.Sizes {
		lowBasis := regression.Inverse
		if n == 2000 && opts.HalfInverseFor2000 {
			lowBasis = regression.HalfInverse
		}
		points := unionInts(opts.MulLowPoints, opts.MulHighPoints)
		xs, ys := c.MeasureSeries(dag.KernelMul, n, points, opts.Trials)
		highLo := float64(minInt(opts.MulHighPoints))
		pw, err := regression.FitPiecewise(xs, ys, lowBasis, float64(opts.Split), highLo)
		if err != nil {
			return nil, fmt.Errorf("profiler: multiplication fit n=%d: %w", n, err)
		}
		model.MulFits[n] = pw

		ax, ay := c.MeasureSeries(dag.KernelAdd, n, opts.AddPoints, opts.Trials)
		fit, err := regression.FitBasis(ax, ay, regression.Inverse)
		if err != nil {
			return nil, fmt.Errorf("profiler: addition fit n=%d: %w", n, err)
		}
		model.AddFits[n] = fit
	}

	// Startup overhead: linear fit over the sparse points.
	var sx, sy []float64
	for _, p := range opts.OverheadPoints {
		sx = append(sx, float64(p))
		sum := 0.0
		for i := 0; i < opts.Trials; i++ {
			sum += em.MeasureStartup(p)
		}
		sy = append(sy, sum/float64(opts.Trials))
	}
	fit, err := regression.FitBasis(sx, sy, regression.Linear)
	if err != nil {
		return nil, fmt.Errorf("profiler: startup fit: %w", err)
	}
	model.StartupFit = fit

	// Redistribution overhead vs p(dst), averaged over a few source sizes.
	var rx, ry []float64
	for _, d := range opts.OverheadPoints {
		rx = append(rx, float64(d))
		sum, count := 0.0, 0
		for _, s := range opts.OverheadPoints {
			for i := 0; i < opts.Trials; i++ {
				sum += em.MeasureRedistOverhead(s, d)
				count++
			}
		}
		ry = append(ry, sum/float64(count))
	}
	rfit, err := regression.FitBasis(rx, ry, regression.Linear)
	if err != nil {
		return nil, fmt.Errorf("profiler: redistribution fit: %w", err)
	}
	model.RedistFit = rfit
	return model, nil
}

func unionInts(a, b []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, v := range append(append([]int(nil), a...), b...) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func minInt(xs []int) int {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
