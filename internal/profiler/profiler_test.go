package profiler

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/perfmodel"
)

func newEm(t *testing.T, seed int64) *cluster.Emulator {
	t.Helper()
	em, err := cluster.NewEmulator(cluster.Bayreuth(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return em
}

func TestTaskProfileCoversGrid(t *testing.T) {
	em := newEm(t, 1)
	c := Campaign{Em: em}
	prof := c.TaskProfile([]dag.Kernel{dag.KernelMul, dag.KernelAdd}, []int{2000}, 8, 2)
	if len(prof) != 2*8 {
		t.Fatalf("profile has %d entries, want 16", len(prof))
	}
	for k, v := range prof {
		if v <= 0 {
			t.Errorf("profile entry %+v is %g", k, v)
		}
	}
}

func TestTaskProfileMeanApproachesTruth(t *testing.T) {
	em := newEm(t, 2)
	c := Campaign{Em: em}
	truth := em.Hidden.KernelTime(&dag.Task{Kernel: dag.KernelMul, N: 2000}, 4)
	mean := c.MeasureTaskMean(dag.KernelMul, 2000, 4, 200)
	if math.Abs(mean-truth)/truth > 0.02 {
		t.Errorf("200-trial mean %g deviates from truth %g by more than 2%%", mean, truth)
	}
}

func TestStartupSeriesShape(t *testing.T) {
	em := newEm(t, 3)
	c := Campaign{Em: em}
	series := c.StartupSeries(32, 20)
	if len(series) != 32 {
		t.Fatalf("series has %d points", len(series))
	}
	for p, v := range series {
		if v <= 0 {
			t.Errorf("startup at p=%d is %g", p+1, v)
		}
	}
	// The measured series must preserve the ground truth's
	// non-monotonicity (Figure 3's surprise).
	monotone := true
	for p := 1; p < len(series); p++ {
		if series[p] < series[p-1] {
			monotone = false
		}
	}
	if monotone {
		t.Error("measured startup series is monotone")
	}
}

func TestRedistSurfaceDstDominates(t *testing.T) {
	em := newEm(t, 4)
	c := Campaign{Em: em}
	surface := c.RedistSurface(32, 3)
	byDst := RedistByDst(surface)
	if len(byDst) != 32 {
		t.Fatalf("byDst has %d entries", len(byDst))
	}
	if byDst[32] <= byDst[1] {
		t.Errorf("overhead at p(dst)=32 (%g) not above p(dst)=1 (%g)", byDst[32], byDst[1])
	}
	// Averaging over src must smooth the surface: byDst spread dominates
	// src spread at fixed dst.
	srcSpread := math.Abs(surface[31][15] - surface[0][15])
	dstSpread := byDst[32] - byDst[1]
	if dstSpread < srcSpread {
		t.Errorf("dst spread %g below src spread %g", dstSpread, srcSpread)
	}
}

func TestRedistByDstEmpty(t *testing.T) {
	if got := RedistByDst(nil); len(got) != 0 {
		t.Errorf("RedistByDst(nil) = %v", got)
	}
}

func TestBuildProfileModel(t *testing.T) {
	em := newEm(t, 5)
	opts := DefaultProfileOptions()
	opts.StartupTrials = 5
	model, err := BuildProfileModel(em, opts)
	if err != nil {
		t.Fatal(err)
	}
	if model.Name() != "profile" {
		t.Errorf("Name = %q", model.Name())
	}
	// The profiled time tracks the hidden truth within noise.
	task := &dag.Task{Kernel: dag.KernelMul, N: 3000}
	for _, p := range []int{1, 8, 16, 32} {
		truth := em.Hidden.KernelTime(task, p)
		got := model.TaskTime(task, p)
		if math.Abs(got-truth)/truth > 0.10 {
			t.Errorf("profiled mul n=3000 p=%d: %g vs truth %g", p, got, truth)
		}
	}
	if model.StartupOverhead(16) <= 0 || model.RedistOverhead(4, 16) <= 0 {
		t.Error("profiled overheads missing")
	}
}

func TestBuildEmpiricalModel(t *testing.T) {
	em := newEm(t, 6)
	model, err := BuildEmpiricalModel(em, DefaultEmpiricalOptions())
	if err != nil {
		t.Fatal(err)
	}
	if model.Name() != "empirical" {
		t.Errorf("Name = %q", model.Name())
	}
	// Predictions should be within ~35% of truth at non-outlier points
	// (regression from 6 noisy points is approximate by design).
	task := &dag.Task{Kernel: dag.KernelMul, N: 2000}
	for _, p := range []int{2, 4, 7, 12, 24, 31} {
		truth := em.Hidden.KernelTime(task, p)
		got := model.TaskTime(task, p)
		if math.Abs(got-truth)/truth > 0.35 {
			t.Errorf("empirical mul n=2000 p=%d: %g vs truth %g", p, got, truth)
		}
	}
	// Overhead fits have the right scale.
	if s := model.StartupOverhead(16); s < 0.4 || s > 2.5 {
		t.Errorf("empirical startup(16) = %g", s)
	}
	if r := model.RedistOverhead(8, 32); r < 0.1 || r > 1 {
		t.Errorf("empirical redist(·,32) = %g", r)
	}
}

func TestEmpiricalStartupFitTrendsUpward(t *testing.T) {
	em := newEm(t, 7)
	model, err := BuildEmpiricalModel(em, DefaultEmpiricalOptions())
	if err != nil {
		t.Fatal(err)
	}
	if model.StartupFit.A <= 0 {
		t.Errorf("startup slope = %g, want positive (Table II: 0.03)", model.StartupFit.A)
	}
	if model.RedistFit.A <= 0 {
		t.Errorf("redistribution slope = %g, want positive (Table II: 7.88 ms)", model.RedistFit.A)
	}
}

func TestNaivePointsExhibitOutliers(t *testing.T) {
	// Measuring at the naive powers-of-two points must reveal the p=8
	// outlier: its time is far above the 1/p interpolation of p=4 and 16.
	em := newEm(t, 8)
	c := Campaign{Em: em}
	xs, ys := c.MeasureSeries(dag.KernelMul, 3000, NaiveMulPoints, 3)
	var y4, y8, y16 float64
	for i, x := range xs {
		switch x {
		case 4:
			y4 = ys[i]
		case 8:
			y8 = ys[i]
		case 16:
			y16 = ys[i]
		}
	}
	// Under ideal 1/p scaling the p·t product is constant; both outliers
	// (p=8 memory effects, p=16 imbalance at n=3000) must lift it well
	// above the clean p=4 point.
	w4, w8, w16 := 4*y4, 8*y8, 16*y16
	if w8 < w4*1.15 {
		t.Errorf("p=8 outlier not visible: p·t = %g vs %g at p=4", w8, w4)
	}
	if w16 < w4*1.25 {
		t.Errorf("p=16 outlier not visible: p·t = %g vs %g at p=4", w16, w4)
	}
}

func TestProfileModelUsableBySchedulers(t *testing.T) {
	em := newEm(t, 9)
	opts := DefaultProfileOptions()
	opts.StartupTrials = 3
	model, err := BuildProfileModel(em, opts)
	if err != nil {
		t.Fatal(err)
	}
	cost := perfmodel.CostFunc(model)
	task := &dag.Task{Kernel: dag.KernelAdd, N: 2000}
	if cost(task, 4) <= model.TaskTime(task, 4) {
		t.Error("cost must include startup overhead")
	}
}
