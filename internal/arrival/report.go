package arrival

import (
	"fmt"
	"io"
	"strings"
)

// This file renders an arrival Result into the deterministic text report:
// the scenario header, the job population, per-algorithm online scorecards
// and a per-job timeline for the first algorithm. Everything is emitted in
// plan order with fixed precision, so the report is byte-identical across
// runs, worker counts and sharded execution.

// Write renders the online-arrival report.
func (r *Result) Write(w io.Writer) {
	p := r.Prepared
	plan := p.Plan
	name := plan.Spec.Name
	if name == "" {
		name = "unnamed"
	}
	fmt.Fprintf(w, "Online arrivals %q — %d jobs on %s, partition %d of %d nodes (%d slots)\n",
		name, len(plan.Times), plan.Spec.Environment, p.Partition, p.Nodes, p.Slots)
	fmt.Fprintf(w, "  process=%s model=%s seed=%d trials=%d algorithms=%s\n",
		processLine(plan.Spec), plan.Model, plan.Spec.Seed, plan.Spec.Trials,
		strings.Join(plan.Algorithms, ","))

	fmt.Fprintf(w, "\nJob population — job j runs class j mod %d\n", len(plan.Classes))
	clsW := 5
	for _, c := range plan.Classes {
		if len(c.Name) > clsW {
			clsW = len(c.Name)
		}
	}
	for i, c := range plan.Classes {
		fmt.Fprintf(w, "  [%3d] %-*s %6d tasks  from %s\n", i, clsW, c.Name, c.Graph.Len(), c.Workload)
	}

	fmt.Fprintf(w, "\nOnline scorecard per algorithm\n")
	fmt.Fprintf(w, "  %-8s %12s %10s %10s %10s %8s %8s %8s %7s %6s %9s\n",
		"algo", "horizon [s]", "wait p50", "wait p90", "wait max",
		"str p50", "str p90", "str max", "util%", "fair", "jobs/h")
	for _, a := range r.Algos {
		fmt.Fprintf(w, "  %-8s %12.1f %10.1f %10.1f %10.1f %8.2f %8.2f %8.2f %7.1f %6.3f %9.2f\n",
			a.Algorithm, a.Horizon, a.WaitP50, a.WaitP90, a.WaitMax,
			a.StretchP50, a.StretchP90, a.StretchMax, a.Utilisation, a.Fairness, a.Throughput)
	}

	fmt.Fprintf(w, "\nService-time prediction — fitted %s model vs emulated partition\n", plan.Model)
	fmt.Fprintf(w, "  %-8s %14s %13s\n", "algo", "med err [%]", "p90 err [%]")
	for _, a := range r.Algos {
		fmt.Fprintf(w, "  %-8s %14.1f %13.1f\n", a.Algorithm, a.MedianErrPct, a.P90ErrPct)
	}

	if len(r.Cells) > 0 {
		cell := r.Cells[0]
		starts := simulateQueue(plan.Times, cell.Service, p.Slots)
		fmt.Fprintf(w, "\nTimeline under %s — arrival, queueing and service per job\n", cell.Algorithm)
		fmt.Fprintf(w, "  %-5s %-*s %12s %12s %12s %10s\n",
			"job", clsW, "class", "arrive [s]", "start [s]", "service [s]", "stretch")
		for j := range plan.Times {
			class := plan.Classes[j%len(plan.Classes)]
			stretch := (starts[j] + cell.Service[j] - plan.Times[j]) / cell.Service[j]
			fmt.Fprintf(w, "  %-5d %-*s %12.1f %12.1f %12.1f %10.2f\n",
				j, clsW, class.Name, plan.Times[j], starts[j], cell.Service[j], stretch)
		}
	}
}

// processLine compresses the arrival process and its parameters for the
// header: the rate and seed for Poisson, the job count for traces.
func processLine(s Spec) string {
	if s.Process == "poisson" {
		return fmt.Sprintf("poisson(rate=%g/s,seed=%d)", s.Rate, s.ArrivalSeed)
	}
	return fmt.Sprintf("trace(%d times)", len(s.Times))
}
