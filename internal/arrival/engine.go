package arrival

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/simgrid"
	"repro/internal/stats"
	"repro/internal/tgrid"
)

// Arrival telemetry: scenario cells completed (one cell = one algorithm's
// full arrival sequence). Write-only, like every other counter.
var cellsCompleted = obs.Default.Counter("repro_arrival_cells_completed_total",
	"Online-arrival scenario cells (one algorithm each) fully measured.")

// Engine executes online-arrival scenarios against the fit-once model
// registry. Each algorithm is one cell: the whole arrival sequence is
// scheduled and measured under that algorithm on the experiments worker
// pool, then the FCFS queueing simulation and the report derive from the
// per-job service times alone — so the monolithic Run and the cell-sharded
// path produce byte-identical reports by construction.
type Engine struct {
	// Source supplies ground truths and registry-cached fitted models.
	Source campaign.ModelSource
	// Workers bounds the per-cell worker pool (<= 0: one per CPU).
	// Reports are byte-identical for every value.
	Workers int
	// Progress, when non-nil, receives live cell counts. Write-only.
	Progress *obs.Progress
}

// Prepared is a resolved scenario plan ready for per-cell execution: the
// expanded plan plus the environment-dependent partition geometry.
type Prepared struct {
	Plan *Plan
	// Partition is the resolved nodes-per-job (the spec value, or half the
	// cluster), Nodes the cluster size, Slots = Nodes/Partition the
	// concurrent-job capacity.
	Partition, Nodes, Slots int
}

// NumCells returns the scenario's cell count: one per algorithm.
func (p *Prepared) NumCells() int { return len(p.Plan.Algorithms) }

// CellJobs is one cell's outcome: the per-job predicted (simulated) and
// measured service times for one algorithm, in arrival order. It is the
// unit that travels between replicas in sharded execution.
type CellJobs struct {
	Algorithm string
	// Pred[j] is job j's model-predicted makespan; Service[j] the makespan
	// measured on the emulated partition.
	Pred, Service []float64
}

// Prepare expands, validates and resolves a scenario against the engine's
// model source. Deterministic: every replica preparing the same spec gets
// an identical Prepared.
func (e *Engine) Prepare(spec Spec) (*Prepared, error) {
	if e.Source == nil {
		return nil, fmt.Errorf("arrival: engine has no model source")
	}
	plan, err := spec.Plan()
	if err != nil {
		return nil, err
	}
	truth, err := e.Source.Environment(plan.Spec.Environment)
	if err != nil {
		return nil, err
	}
	nodes := truth.Cluster.Nodes
	part := plan.Spec.Partition
	if part == 0 {
		part = nodes / 2
		if part < 1 {
			part = 1
		}
	}
	if part > nodes {
		return nil, fmt.Errorf("arrival: partition %d exceeds the %d-node cluster", part, nodes)
	}
	return &Prepared{Plan: plan, Partition: part, Nodes: nodes, Slots: nodes / part}, nil
}

// RunCellIndex executes one cell: every job of the arrival sequence is
// scheduled with the cell's algorithm on a partition-sized cluster, its
// makespan simulated under the fitted model and measured on a private
// deterministic noise session of the emulated partition.
func (e *Engine) RunCellIndex(ctx context.Context, p *Prepared, index int) (CellJobs, error) {
	if index < 0 || index >= p.NumCells() {
		return CellJobs{}, fmt.Errorf("arrival: cell index %d outside [0, %d)", index, p.NumCells())
	}
	plan := p.Plan
	algo := plan.Algorithms[index]
	env := plan.Spec.Environment
	truth, err := e.Source.Environment(env)
	if err != nil {
		return CellJobs{}, err
	}
	// Jobs run on a partition of the cluster: same nodes, same hidden
	// curves, fewer of them. The model stays the full environment's fit —
	// allocations never exceed the partition, so it is evaluated strictly
	// inside its fitted range.
	part := truth
	if p.Partition != truth.Cluster.Nodes {
		h := *truth
		h.Cluster = truth.Cluster.Scaled(p.Partition)
		part = &h
	}
	em, err := cluster.NewEmulator(part, plan.Spec.Seed)
	if err != nil {
		return CellJobs{}, fmt.Errorf("arrival: partition of %s: %w", env, err)
	}
	net, err := simgrid.NewNet(part.Cluster)
	if err != nil {
		return CellJobs{}, fmt.Errorf("arrival: partition of %s: %w", env, err)
	}
	model, _, err := e.Source.GetModel(env, plan.Model, plan.Spec.Seed)
	if err != nil {
		return CellJobs{}, fmt.Errorf("arrival: fit %s/%s: %w", env, plan.Model, err)
	}
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, part.Cluster)

	cell := CellJobs{
		Algorithm: algo,
		Pred:      make([]float64, len(plan.Times)),
		Service:   make([]float64, len(plan.Times)),
	}
	study := "arrival/" + env + "/" + algo
	runner := experiments.Runner{Workers: e.Workers, Seed: plan.Spec.Seed, Em: em, Ctx: ctx}
	err = runner.Run(study, len(plan.Times), func(j int, sess *cluster.Session) error {
		class := plan.Classes[j%len(plan.Classes)]
		s, err := campaign.BuildSchedule(algo, class.Graph, part.Cluster, cost, comm)
		if err != nil {
			return fmt.Errorf("arrival: %s: %s on %s: %w", study, algo, class.Name, err)
		}
		s.Model = plan.Model
		simRes, err := tgrid.Run(net, s, tgrid.ModelTiming{Model: model})
		if err != nil {
			return fmt.Errorf("arrival: simulate %s: %s on %s: %w", study, algo, class.Name, err)
		}
		exp, err := sess.MeasureMakespan(s, plan.Spec.Trials)
		if err != nil {
			return fmt.Errorf("arrival: execute %s: %s on %s: %w", study, algo, class.Name, err)
		}
		cell.Pred[j], cell.Service[j] = simRes.Makespan, exp
		return nil
	})
	if err != nil {
		return CellJobs{}, err
	}
	cellsCompleted.Inc()
	return cell, nil
}

// Run prepares and executes the whole scenario: all cells in plan order,
// then Merge. The sharded path (RunCellIndex per replica + Merge) produces
// the identical result.
func (e *Engine) Run(ctx context.Context, spec Spec) (*Result, error) {
	p, err := e.Prepare(spec)
	if err != nil {
		return nil, err
	}
	e.Progress.AddCellsTotal(int64(p.NumCells()))
	cells := make([]CellJobs, p.NumCells())
	for i := range cells {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cells[i], err = e.RunCellIndex(ctx, p, i); err != nil {
			return nil, err
		}
		e.Progress.AddCellsDone(1)
	}
	return Merge(p, cells)
}

// Merge folds per-cell outcomes — in plan-index order — into the final
// Result: the FCFS queueing simulation replays every algorithm's measured
// service times over the shared arrival sequence and derives the online
// metrics. Pure computation over (plan, cells): no measurement, no
// randomness, no replica-dependent state.
func Merge(p *Prepared, cells []CellJobs) (*Result, error) {
	if len(cells) != p.NumCells() {
		return nil, fmt.Errorf("arrival: merge got %d cells, plan has %d", len(cells), p.NumCells())
	}
	res := &Result{Prepared: p, Cells: cells}
	for i, cell := range cells {
		if cell.Algorithm != p.Plan.Algorithms[i] {
			return nil, fmt.Errorf("arrival: cell %d is %q, plan wants %q", i, cell.Algorithm, p.Plan.Algorithms[i])
		}
		if len(cell.Service) != len(p.Plan.Times) || len(cell.Pred) != len(p.Plan.Times) {
			return nil, fmt.Errorf("arrival: cell %d has %d jobs, plan has %d", i, len(cell.Service), len(p.Plan.Times))
		}
		m, err := scoreCell(p, cell)
		if err != nil {
			return nil, err
		}
		res.Algos = append(res.Algos, m)
	}
	return res, nil
}

// AlgoMetrics is one algorithm's online scorecard over the scenario.
type AlgoMetrics struct {
	Algorithm string
	// Horizon is when the last job finishes (seconds from scenario start).
	Horizon float64
	// WaitP50/P90/Max summarise queueing delay (start − arrival) in
	// seconds; WaitMean is its average.
	WaitMean, WaitP50, WaitP90, WaitMax float64
	// StretchP50/P90/Max summarise makespan stretch: (finish − arrival) /
	// service, 1 = ran immediately with no queueing.
	StretchP50, StretchP90, StretchMax float64
	// Utilisation is the busy fraction of the whole cluster over the
	// horizon, in percent.
	Utilisation float64
	// Throughput is completed jobs per hour of horizon.
	Throughput float64
	// Fairness is Jain's index over per-job stretches (1 = perfectly even).
	Fairness float64
	// MedianErrPct and P90ErrPct summarise the model's service-time
	// prediction error |measured − predicted|/predicted, in percent.
	MedianErrPct, P90ErrPct float64
}

// scoreCell replays one algorithm's service times through the FCFS queue
// and computes its metrics.
func scoreCell(p *Prepared, cell CellJobs) (AlgoMetrics, error) {
	for j, sv := range cell.Service {
		if sv <= 0 || math.IsInf(sv, 0) || math.IsNaN(sv) {
			return AlgoMetrics{}, fmt.Errorf("arrival: %s job %d has invalid service time %v", cell.Algorithm, j, sv)
		}
	}
	starts := simulateQueue(p.Plan.Times, cell.Service, p.Slots)
	n := len(starts)
	waits := make([]float64, n)
	stretches := make([]float64, n)
	errs := make([]float64, n)
	horizon, busy, waitSum := 0.0, 0.0, 0.0
	for j := range starts {
		fin := starts[j] + cell.Service[j]
		if fin > horizon {
			horizon = fin
		}
		waits[j] = starts[j] - p.Plan.Times[j]
		waitSum += waits[j]
		stretches[j] = (fin - p.Plan.Times[j]) / cell.Service[j]
		errs[j] = stats.SimErrPct(cell.Pred[j], cell.Service[j])
		busy += cell.Service[j]
	}
	m := AlgoMetrics{
		Algorithm:    cell.Algorithm,
		Horizon:      horizon,
		WaitMean:     waitSum / float64(n),
		WaitP50:      stats.Median(waits),
		WaitP90:      stats.Quantile(waits, 0.90),
		WaitMax:      stats.Quantile(waits, 1),
		StretchP50:   stats.Median(stretches),
		StretchP90:   stats.Quantile(stretches, 0.90),
		StretchMax:   stats.Quantile(stretches, 1),
		Throughput:   float64(n) / horizon * 3600,
		Fairness:     jain(stretches),
		MedianErrPct: stats.Median(errs),
		P90ErrPct:    stats.Quantile(errs, 0.90),
	}
	// Busy node-seconds over available node-seconds: jobs hold Partition
	// nodes for their service time; Slots*Partition nodes serve (the
	// remainder nodes, if Partition does not divide the cluster, never
	// host jobs and count as idle capacity).
	m.Utilisation = 100 * busy * float64(p.Partition) / (float64(p.Nodes) * horizon)
	return m, nil
}

// simulateQueue replays the FCFS space-shared queue: jobs start in arrival
// order on the earliest-free of the partition slots, never before their
// arrival. Ties pick the lowest slot index, so the replay is fully
// deterministic.
func simulateQueue(times, service []float64, slots int) []float64 {
	free := make([]float64, slots)
	starts := make([]float64, len(times))
	for j := range times {
		k := 0
		for i := 1; i < slots; i++ {
			if free[i] < free[k] {
				k = i
			}
		}
		start := times[j]
		if free[k] > start {
			start = free[k]
		}
		starts[j] = start
		free[k] = start + service[j]
	}
	return starts
}

// jain returns Jain's fairness index (Σx)²/(n·Σx²) over positive values:
// 1 when all are equal, approaching 1/n as one value dominates.
func jain(xs []float64) float64 {
	sum, sq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Result is a completed scenario: the prepared plan, every cell's raw
// per-job outcomes, and the derived per-algorithm metrics. Write renders
// the deterministic report.
type Result struct {
	Prepared *Prepared
	Cells    []CellJobs
	Algos    []AlgoMetrics
}

// EncodeCell serializes one cell's outcome for transport between replicas.
func EncodeCell(c CellJobs) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, fmt.Errorf("arrival: encode cell: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeCell reverses EncodeCell.
func DecodeCell(data []byte) (CellJobs, error) {
	var c CellJobs
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&c); err != nil {
		return CellJobs{}, fmt.Errorf("arrival: decode cell: %w", err)
	}
	return c, nil
}
