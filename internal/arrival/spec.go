// Package arrival adds the online dimension the paper's offline case study
// stops short of: workflows arriving over time on a shared cluster. Jobs —
// drawn round-robin from a workload population of Table I suites, imported
// traces and canonical shapes (campaign.WorkloadAxis) — arrive by a Poisson
// process or an explicit trace of arrival times, are each scheduled on a
// fixed-size node partition with the axis algorithms against the fitted
// §VI/§VII models, and execute FCFS on the partition slots of the emulated
// cluster. The report covers the online quantities the offline studies
// cannot: queueing delay, cluster utilisation, makespan stretch, fairness
// across jobs, and how well the fitted models predict service times — all
// deterministic at any worker count and under cell-sharded execution, like
// every other engine in the repository.
package arrival

import (
	"fmt"
	"math"

	"repro/internal/campaign"
	"repro/internal/dag"
	"repro/internal/experiments"
)

// Limits: a spec beyond these is rejected at validation time.
const (
	// MaxJobs bounds the arrival sequence length.
	MaxJobs = 256
	// MaxAlgorithms bounds the algorithm axis (= the scenario's cells).
	MaxAlgorithms = 8
	// DefaultRate is the default Poisson arrival rate in jobs per second.
	DefaultRate = 0.02
	// DefaultArrivalSeed seeds the default Poisson draw.
	DefaultArrivalSeed = 7
)

// Spec declares one online-arrival scenario. The zero value of every field
// means "use the default": the paper's base environment and seed, the
// HCPA/MCPA pair under the analytic model, the Table I suite as the job
// population, a Poisson process, and half-cluster partitions.
type Spec struct {
	// Name labels the scenario in job listings and the report header.
	Name string `json:"name,omitempty"`
	// Environment is the ground-truth environment jobs run on:
	// "bayreuth" (default) or "modern".
	Environment string `json:"environment,omitempty"`
	// Model picks the fitted model jobs are scheduled against: analytic
	// (default), profile (alias brute-force), empirical.
	Model string `json:"model,omitempty"`
	// Algorithms lists the online schedulers to compare (campaign axis
	// vocabulary). Each algorithm is one cell. Default {HCPA, MCPA}.
	Algorithms []string `json:"algorithms,omitempty"`
	// Workloads is the job population: every expanded workload instance
	// becomes one job class, and job j runs class j mod len(classes).
	// Default: the Table I 2011 suite.
	Workloads campaign.WorkloadAxis `json:"workloads"`
	// Process selects the arrival process: "poisson" (default) or "trace".
	Process string `json:"process,omitempty"`
	// Rate is the Poisson arrival rate in jobs per second (default 0.02).
	Rate float64 `json:"rate,omitempty"`
	// Jobs is the Poisson job count (default 2× the population size,
	// capped at MaxJobs).
	Jobs int `json:"jobs,omitempty"`
	// ArrivalSeed seeds the Poisson interarrival draw (default 7). It is
	// independent of Seed so the arrival pattern can vary while the
	// environment noise stays fixed, and vice versa.
	ArrivalSeed int64 `json:"arrival_seed,omitempty"`
	// Times lists explicit arrival times in seconds for the trace process
	// (non-negative, non-decreasing; one job each).
	Times []float64 `json:"times,omitempty"`
	// Partition is the number of nodes dedicated to each job (default:
	// half the cluster). The cluster runs floor(nodes/partition) jobs
	// concurrently; arrivals beyond that queue FCFS.
	Partition int `json:"partition,omitempty"`
	// Seed is the environment noise / measurement seed (default 42).
	Seed int64 `json:"seed,omitempty"`
	// Trials is the emulated runs averaged per measured service time
	// (default 1).
	Trials int `json:"trials,omitempty"`
}

// JobClass is one expanded population entry: the workload point it came
// from plus the materialised graph.
type JobClass struct {
	// Workload is the owning workload point's key.
	Workload string
	// Name is the instance's display name.
	Name string
	// Graph is the job's task graph.
	Graph *dag.Graph
}

// Plan is a validated, fully expanded scenario: the normalized spec, the
// canonical axes, the job population and the complete arrival sequence.
// Everything here derives deterministically from the spec (plus the
// referenced trace files), so every replica resolving the same spec builds
// the identical plan.
type Plan struct {
	// Spec is the normalized spec the plan was expanded from.
	Spec Spec
	// Algorithms and Model are the canonicalised axes.
	Algorithms []string
	Model      string
	// Workloads are the expanded workload points, in campaign plan order.
	Workloads []campaign.WorkloadPoint
	// Classes is the job population: the points' instances, concatenated
	// in plan order. Job j runs Classes[j mod len(Classes)].
	Classes []JobClass
	// Times is the full arrival sequence in seconds, one entry per job,
	// non-decreasing.
	Times []float64
}

// normalize fills the spec's defaults in place (population-independent
// ones; the Poisson job-count default needs the expanded population and is
// resolved in Plan).
func (s *Spec) normalize() {
	if s.Environment == "" {
		s.Environment = "bayreuth"
	}
	if s.Model == "" {
		s.Model = "analytic"
	}
	if len(s.Algorithms) == 0 {
		s.Algorithms = []string{"HCPA", "MCPA"}
	}
	if s.Process == "" {
		s.Process = "poisson"
	}
	if s.Process == "poisson" {
		if s.Rate == 0 {
			s.Rate = DefaultRate
		}
		if s.ArrivalSeed == 0 {
			s.ArrivalSeed = DefaultArrivalSeed
		}
	}
	if s.Seed == 0 {
		s.Seed = experiments.DefaultConfig().NoiseSeed
	}
	if s.Trials == 0 {
		s.Trials = 1
	}
}

// Plan normalizes and validates the spec and expands the population and
// arrival sequence. Every error names the offending field.
func (s Spec) Plan() (*Plan, error) {
	s.normalize()
	p := &Plan{Spec: s}

	if len(s.Algorithms) > MaxAlgorithms {
		return nil, fmt.Errorf("arrival: %d algorithms, limit %d", len(s.Algorithms), MaxAlgorithms)
	}
	seenAlgo := map[string]bool{}
	for _, a := range s.Algorithms {
		name, ok := campaign.CanonicalAlgorithm(a)
		if !ok {
			return nil, fmt.Errorf("arrival: unknown algorithm %q (want one of %v)", a, campaign.AlgorithmNames())
		}
		if seenAlgo[name] {
			return nil, fmt.Errorf("arrival: duplicate algorithm %q", name)
		}
		seenAlgo[name] = true
		p.Algorithms = append(p.Algorithms, name)
	}
	kind, ok := campaign.CanonicalModel(s.Model)
	if !ok {
		return nil, fmt.Errorf("arrival: unknown model %q (want one of %v, or brute-force for profile)", s.Model, campaign.ModelNames())
	}
	p.Model = kind

	// The workload axis reuses campaign planning wholesale: the same
	// defaulting, trace imports, shape lookups, limits and key-uniqueness
	// guarantees apply to the job population.
	cp, err := campaign.Spec{Workloads: s.Workloads}.Plan()
	if err != nil {
		return nil, err
	}
	p.Workloads = cp.Workloads
	for _, wp := range p.Workloads {
		instances, err := wp.Instances()
		if err != nil {
			return nil, err
		}
		if len(instances) == 0 {
			return nil, fmt.Errorf("arrival: workload %s selects no instances", wp.Key())
		}
		for _, in := range instances {
			p.Classes = append(p.Classes, JobClass{Workload: wp.Key(), Name: in.Name(), Graph: in.Graph})
		}
	}

	if s.Partition < 0 {
		return nil, fmt.Errorf("arrival: partition %d is negative", s.Partition)
	}
	if s.Trials < 0 || s.Trials > campaign.MaxTrials {
		return nil, fmt.Errorf("arrival: trials %d outside [1, %d]", s.Trials, campaign.MaxTrials)
	}

	switch s.Process {
	case "poisson":
		if len(s.Times) > 0 {
			return nil, fmt.Errorf("arrival: times is only for process \"trace\"")
		}
		if s.Rate <= 0 || math.IsInf(s.Rate, 0) || math.IsNaN(s.Rate) {
			return nil, fmt.Errorf("arrival: rate %v must be a positive arrival rate (jobs/s)", s.Rate)
		}
		jobs := s.Jobs
		if jobs == 0 {
			jobs = 2 * len(p.Classes)
			if jobs > MaxJobs {
				jobs = MaxJobs
			}
		}
		if jobs < 1 || jobs > MaxJobs {
			return nil, fmt.Errorf("arrival: jobs %d outside [1, %d]", jobs, MaxJobs)
		}
		p.Spec.Jobs = jobs
		p.Times = poissonTimes(s.ArrivalSeed, s.Rate, jobs)
	case "trace":
		if len(s.Times) == 0 {
			return nil, fmt.Errorf("arrival: process \"trace\" needs times")
		}
		if len(s.Times) > MaxJobs {
			return nil, fmt.Errorf("arrival: %d arrival times, limit %d", len(s.Times), MaxJobs)
		}
		prev := 0.0
		for i, at := range s.Times {
			if at < 0 || math.IsInf(at, 0) || math.IsNaN(at) {
				return nil, fmt.Errorf("arrival: times[%d] = %v must be a non-negative time", i, at)
			}
			if at < prev {
				return nil, fmt.Errorf("arrival: times[%d] = %v goes back in time (previous %v)", i, at, prev)
			}
			prev = at
		}
		p.Times = append([]float64(nil), s.Times...)
		p.Spec.Jobs = len(p.Times)
	default:
		return nil, fmt.Errorf("arrival: unknown process %q (want poisson or trace)", s.Process)
	}

	return p, nil
}

// poissonTimes draws the deterministic arrival sequence: exponential
// interarrivals at the given rate from a splitmix64 stream. The same
// (seed, rate, jobs) triple yields the same sequence on every replica.
func poissonTimes(seed int64, rate float64, jobs int) []float64 {
	times := make([]float64, jobs)
	state := uint64(seed)
	t := 0.0
	for j := range times {
		state += 0x9e3779b97f4a7c15
		x := state
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
		// u is uniform in (0, 1): the 53-bit mantissa draw offset by half a
		// step, so the log below never sees 0.
		u := (float64(x>>11) + 0.5) / (1 << 53)
		t += -math.Log(u) / rate
		times[j] = t
	}
	return times
}
