package arrival

import (
	"math"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// TestPoissonTimesDeterministic pins the arrival draw: the same (seed,
// rate, jobs) triple yields the identical strictly increasing sequence on
// every call, and either knob changes it.
func TestPoissonTimesDeterministic(t *testing.T) {
	a := poissonTimes(7, 0.02, 16)
	b := poissonTimes(7, 0.02, 16)
	if len(a) != 16 {
		t.Fatalf("drew %d times, want 16", len(a))
	}
	prev := 0.0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("times[%d] differs between identical draws: %v vs %v", i, a[i], b[i])
		}
		if a[i] <= prev || math.IsInf(a[i], 0) || math.IsNaN(a[i]) {
			t.Fatalf("times[%d] = %v not strictly after %v", i, a[i], prev)
		}
		prev = a[i]
	}
	if c := poissonTimes(8, 0.02, 16); c[0] == a[0] {
		t.Error("different seeds drew the same first arrival")
	}
	if d := poissonTimes(7, 0.04, 16); math.Abs(d[15]-a[15]/2) > 1e-9*a[15] {
		t.Errorf("doubling the rate should halve every time: %v vs %v", d[15], a[15])
	}
}

// TestSimulateQueueInvariants checks the FCFS replay: no job starts before
// its arrival, at most `slots` jobs overlap at any instant, and with one
// slot the jobs run strictly back to back in arrival order.
func TestSimulateQueueInvariants(t *testing.T) {
	times := []float64{0, 1, 2, 2, 3, 50}
	service := []float64{10, 10, 10, 10, 10, 1}
	for slots := 1; slots <= 4; slots++ {
		starts := simulateQueue(times, service, slots)
		for j, st := range starts {
			if st < times[j] {
				t.Errorf("slots=%d: job %d starts %v before arrival %v", slots, j, st, times[j])
			}
			overlap := 0
			for k := range starts {
				if starts[k] <= st && st < starts[k]+service[k] {
					overlap++
				}
			}
			if overlap > slots {
				t.Errorf("slots=%d: %d jobs running at t=%v", slots, overlap, st)
			}
		}
	}
	serial := simulateQueue(times, service, 1)
	want := []float64{0, 10, 20, 30, 40, 50}
	for j := range serial {
		if serial[j] != want[j] {
			t.Errorf("1-slot starts[%d] = %v, want %v", j, serial[j], want[j])
		}
	}
}

// TestSpecPlan covers normalization and the expanded sequence.
func TestSpecPlan(t *testing.T) {
	p, err := Spec{Workloads: campaign.WorkloadAxis{Shapes: []string{"diamond"}}}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Spec; got.Environment != "bayreuth" || got.Process != "poisson" ||
		got.Rate != DefaultRate || got.ArrivalSeed != DefaultArrivalSeed ||
		got.Seed != 42 || got.Trials != 1 {
		t.Errorf("defaults not applied: %+v", got)
	}
	if len(p.Algorithms) != 2 || p.Algorithms[0] != "HCPA" || p.Algorithms[1] != "MCPA" {
		t.Errorf("default algorithms = %v", p.Algorithms)
	}
	if len(p.Classes) != 1 || p.Classes[0].Workload != "shape-diamond-n2000" {
		t.Errorf("population = %+v, want the lone diamond class", p.Classes)
	}
	// Poisson default: 2× the population, and Times matches the draw.
	if p.Spec.Jobs != 2 || len(p.Times) != 2 {
		t.Errorf("jobs = %d, %d times; want 2 each", p.Spec.Jobs, len(p.Times))
	}
	want := poissonTimes(DefaultArrivalSeed, DefaultRate, 2)
	for i := range want {
		if p.Times[i] != want[i] {
			t.Errorf("times[%d] = %v, want the seed-%d draw %v", i, p.Times[i], DefaultArrivalSeed, want[i])
		}
	}

	tr, err := Spec{
		Workloads: campaign.WorkloadAxis{Shapes: []string{"diamond"}},
		Process:   "trace",
		Times:     []float64{0, 0, 3.5},
	}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Spec.Jobs != 3 || len(tr.Times) != 3 || tr.Times[2] != 3.5 {
		t.Errorf("trace plan = jobs %d times %v", tr.Spec.Jobs, tr.Times)
	}
}

// TestSpecPlanRejections walks the validation gallery.
func TestSpecPlanRejections(t *testing.T) {
	shape := campaign.WorkloadAxis{Shapes: []string{"diamond"}}
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown algorithm", Spec{Algorithms: []string{"LPT"}, Workloads: shape}, "unknown algorithm"},
		{"duplicate algorithm", Spec{Algorithms: []string{"HCPA", "HCPA"}, Workloads: shape}, "duplicate algorithm"},
		{"unknown model", Spec{Model: "oracle", Workloads: shape}, "unknown model"},
		{"unknown shape", Spec{Workloads: campaign.WorkloadAxis{Shapes: []string{"nope"}}}, "unknown shape"},
		{"unknown process", Spec{Process: "mmpp", Workloads: shape}, "unknown process"},
		{"times under poisson", Spec{Times: []float64{1}, Workloads: shape}, "only for process"},
		{"negative rate", Spec{Rate: -1, Workloads: shape}, "positive arrival rate"},
		{"oversized jobs", Spec{Jobs: MaxJobs + 1, Workloads: shape}, "jobs"},
		{"empty trace", Spec{Process: "trace", Workloads: shape}, "needs times"},
		{"negative time", Spec{Process: "trace", Times: []float64{-1}, Workloads: shape}, "non-negative"},
		{"decreasing times", Spec{Process: "trace", Times: []float64{5, 4}, Workloads: shape}, "back in time"},
		{"negative partition", Spec{Partition: -1, Workloads: shape}, "negative"},
		{"oversized trials", Spec{Trials: campaign.MaxTrials + 1, Workloads: shape}, "trials"},
	}
	for _, tc := range cases {
		_, err := tc.spec.Plan()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestJain pins the fairness index's endpoints.
func TestJain(t *testing.T) {
	if got := jain([]float64{3, 3, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("jain(equal) = %v, want 1", got)
	}
	if got := jain([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("jain(one dominates) = %v, want 0.25", got)
	}
}
