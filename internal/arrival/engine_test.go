package arrival_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/arrival"
	"repro/internal/campaign"
	"repro/internal/profiler"
	"repro/internal/service"
)

// newEngine pairs a fresh fit-once registry with an arrival engine, the way
// a replica would start cold.
func newEngine(workers int) arrival.Engine {
	reg := service.NewModelRegistry(profiler.DefaultProfileOptions(), profiler.DefaultEmpiricalOptions())
	return arrival.Engine{Source: reg, Workers: workers}
}

// testSpec is a small but non-trivial scenario: a three-class population
// (two shapes plus the diamond), arrivals fast enough to queue on the four
// 8-node partitions.
func testSpec() arrival.Spec {
	return arrival.Spec{
		Name:      "engine-test",
		Workloads: campaign.WorkloadAxis{Shapes: []string{"diamond", "strassen", "reduction"}},
		Rate:      0.05,
		Jobs:      8,
		Partition: 8,
	}
}

// TestArrivalDeterministicAcrossWorkerCounts pins the acceptance criterion:
// the rendered report is byte-identical at workers=1 and workers=8, each on
// a fresh registry.
func TestArrivalDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) string {
		eng := newEngine(workers)
		res, err := eng.Run(context.Background(), testSpec())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.Write(&buf)
		return buf.String()
	}
	serial := run(1)
	parallel := run(8)
	if serial != parallel {
		t.Errorf("arrival report differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	for _, want := range []string{"Online arrivals \"engine-test\"", "partition 8 of 32 nodes (4 slots)",
		"HCPA", "MCPA", "strassen-n2000", "Timeline under HCPA"} {
		if !strings.Contains(serial, want) {
			t.Errorf("report lacks %q:\n%s", want, serial)
		}
	}
}

// TestShardedArrivalByteIdentical pins the sharding contract: each
// algorithm cell run on its own cold replica, shipped as a gob frame and
// merged in plan order renders byte-for-byte the monolithic report.
func TestShardedArrivalByteIdentical(t *testing.T) {
	mono := newEngine(4)
	res, err := mono.Run(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	res.Write(&want)

	coord := newEngine(1)
	p, err := coord.Prepare(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCells() != 2 {
		t.Fatalf("NumCells = %d, want one per algorithm", p.NumCells())
	}
	frames := make([][]byte, p.NumCells())
	for i := range frames {
		replica := newEngine(2)
		rp, err := replica.Prepare(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		cell, err := replica.RunCellIndex(context.Background(), rp, i)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if frames[i], err = arrival.EncodeCell(cell); err != nil {
			t.Fatalf("encode cell %d: %v", i, err)
		}
	}
	cells := make([]arrival.CellJobs, len(frames))
	for i, frame := range frames {
		var err error
		if cells[i], err = arrival.DecodeCell(frame); err != nil {
			t.Fatalf("decode cell %d: %v", i, err)
		}
	}
	merged, err := arrival.Merge(p, cells)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	merged.Write(&got)
	if got.String() != want.String() {
		t.Errorf("sharded report differs from monolithic run:\n--- monolithic ---\n%s\n--- sharded ---\n%s",
			want.String(), got.String())
	}
}

// TestArrivalMetricsSane runs the scenario once and checks the scorecard
// obeys the definitional invariants the formatter cannot hide.
func TestArrivalMetricsSane(t *testing.T) {
	eng := newEngine(4)
	res, err := eng.Run(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Algos) != 2 {
		t.Fatalf("scored %d algorithms, want 2", len(res.Algos))
	}
	for _, a := range res.Algos {
		if a.WaitP50 < 0 || a.WaitP90 < a.WaitP50 || a.WaitMax < a.WaitP90 {
			t.Errorf("%s: wait quantiles out of order: %+v", a.Algorithm, a)
		}
		if a.StretchP50 < 1 || a.StretchP90 < a.StretchP50 || a.StretchMax < a.StretchP90 {
			t.Errorf("%s: stretch must be >= 1 and ordered: %+v", a.Algorithm, a)
		}
		if a.Utilisation <= 0 || a.Utilisation > 100 {
			t.Errorf("%s: utilisation %v outside (0, 100]", a.Algorithm, a.Utilisation)
		}
		if a.Fairness <= 0 || a.Fairness > 1+1e-12 {
			t.Errorf("%s: fairness %v outside (0, 1]", a.Algorithm, a.Fairness)
		}
		if a.Horizon <= 0 || a.Throughput <= 0 {
			t.Errorf("%s: horizon %v, throughput %v must be positive", a.Algorithm, a.Horizon, a.Throughput)
		}
		if a.MedianErrPct < 0 || a.P90ErrPct < a.MedianErrPct {
			t.Errorf("%s: prediction errors out of order: %+v", a.Algorithm, a)
		}
	}
}

// TestPrepareRejections covers the environment-dependent validation Prepare
// adds on top of Plan.
func TestPrepareRejections(t *testing.T) {
	eng := newEngine(1)
	spec := testSpec()
	spec.Partition = 33
	if _, err := eng.Prepare(spec); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized partition accepted: %v", err)
	}
	spec = testSpec()
	spec.Environment = "atlantis"
	if _, err := eng.Prepare(spec); err == nil {
		t.Error("unknown environment accepted")
	}
	if _, err := (&arrival.Engine{}).Prepare(testSpec()); err == nil {
		t.Error("engine without a model source accepted")
	}
}
