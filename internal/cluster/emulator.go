package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simgrid"
	"repro/internal/tgrid"
)

// Emulator is the "experiment" side of the case study: it executes
// schedules under the hidden ground-truth profile, with seeded run-to-run
// noise, playing the role of the Bayreuth cluster plus TGrid.
//
// An Emulator is safe for concurrent use; each Execute call draws from the
// shared noise stream under a lock.
type Emulator struct {
	Hidden *Hidden
	net    *simgrid.Net

	mu  sync.Mutex
	rng *rand.Rand
}

// NewEmulator builds the environment with a noise seed.
func NewEmulator(h *Hidden, seed int64) (*Emulator, error) {
	net, err := simgrid.NewNet(h.Cluster)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return &Emulator{Hidden: h, net: net, rng: rand.New(rand.NewSource(seed))}, nil
}

// Net exposes the emulator's network, for tests.
func (e *Emulator) Net() *simgrid.Net { return e.net }

// noise draws one multiplicative lognormal noise factor.
func (e *Emulator) noise() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.Hidden.NoiseSigma <= 0 {
		return 1
	}
	return math.Exp(e.rng.NormFloat64() * e.Hidden.NoiseSigma)
}

// noiseSource yields multiplicative run-to-run noise factors.
type noiseSource interface{ noise() float64 }

// The probe formulas of §VI, shared by the Emulator (shared stream) and
// Sessions (private streams) so the two paths can never diverge.

func measureTask(h *Hidden, src noiseSource, kernel dag.Kernel, n, p int) float64 {
	task := &dag.Task{Kernel: kernel, N: n}
	return h.KernelTime(task, p) * src.noise()
}

func measureStartup(h *Hidden, src noiseSource, p int) float64 {
	return h.StartupTime(p) * src.noise()
}

func measureRedistOverhead(h *Hidden, src noiseSource, pSrc, pDst int) float64 {
	return h.RedistOverheadTime(pSrc, pDst) * src.noise()
}

func execute(net *simgrid.Net, h *Hidden, src noiseSource, s *sched.Schedule) (*tgrid.Result, error) {
	return tgrid.Run(net, s, truthTiming{h: h, src: src})
}

func measureMakespan(net *simgrid.Net, h *Hidden, src noiseSource, s *sched.Schedule, trials int) (float64, error) {
	if trials < 1 {
		trials = 1
	}
	sum := 0.0
	for i := 0; i < trials; i++ {
		res, err := execute(net, h, src, s)
		if err != nil {
			return 0, err
		}
		sum += res.Makespan
	}
	return sum / float64(trials), nil
}

// Session is a deterministic measurement stream over the same emulated
// environment: it shares the emulator's ground truth and network but draws
// noise from a private RNG. Measurements made through a session depend only
// on the session's seed — never on what other sessions or the emulator's
// shared stream consumed before — which is what makes concurrent study
// cells reproducible regardless of execution order.
//
// A Session is NOT safe for concurrent use; give each worker its own.
type Session struct {
	em  *Emulator
	rng *rand.Rand
}

// Session derives a private measurement stream with its own noise seed.
func (e *Emulator) Session(seed int64) *Session {
	return &Session{em: e, rng: rand.New(rand.NewSource(seed))}
}

// noise draws from the session's private stream.
func (s *Session) noise() float64 {
	if s.em.Hidden.NoiseSigma <= 0 {
		return 1
	}
	return math.Exp(s.rng.NormFloat64() * s.em.Hidden.NoiseSigma)
}

// Execute runs the schedule on the emulated cluster under the session's
// noise stream.
func (s *Session) Execute(sc *sched.Schedule) (*tgrid.Result, error) {
	return execute(s.em.net, s.em.Hidden, s, sc)
}

// MeasureMakespan executes the schedule trials times and returns the mean
// measured makespan.
func (s *Session) MeasureMakespan(sc *sched.Schedule, trials int) (float64, error) {
	return measureMakespan(s.em.net, s.em.Hidden, s, sc, trials)
}

// MeasureTask is the session-stream version of Emulator.MeasureTask.
func (s *Session) MeasureTask(kernel dag.Kernel, n, p int) float64 {
	return measureTask(s.em.Hidden, s, kernel, n, p)
}

// MeasureStartup is the session-stream version of Emulator.MeasureStartup.
func (s *Session) MeasureStartup(p int) float64 {
	return measureStartup(s.em.Hidden, s, p)
}

// MeasureRedistOverhead is the session-stream version of
// Emulator.MeasureRedistOverhead.
func (s *Session) MeasureRedistOverhead(pSrc, pDst int) float64 {
	return measureRedistOverhead(s.em.Hidden, s, pSrc, pDst)
}

// truthTiming implements tgrid.Timing with the hidden profile plus noise
// drawn from the given source (the emulator's shared stream or a session's
// private one).
type truthTiming struct {
	h   *Hidden
	src noiseSource
}

func (t truthTiming) TaskStartup(task *dag.Task, p int) float64 {
	return t.h.StartupTime(p) * t.src.noise()
}

func (t truthTiming) TaskWork(task *dag.Task, hosts []int) (float64, []float64, [][]float64) {
	h := t.h
	kernel := h.KernelTime(task, len(hosts))
	// On heterogeneous platforms the load-balanced 1-D kernel runs at the
	// slowest assigned node's pace; KernelTime is calibrated against the
	// reference speed.
	if !h.Cluster.IsHomogeneous() {
		kernel *= h.Cluster.NodePower / h.Cluster.MinPowerOf(hosts)
	}
	// A degraded node drags every task that touches it.
	if h.StragglerHost >= 0 && h.StragglerFactor > 1 {
		for _, host := range hosts {
			if host == h.StragglerHost {
				kernel *= h.StragglerFactor
				break
			}
		}
	}
	return kernel * t.src.noise(), nil, nil
}

func (t truthTiming) RedistOverhead(pSrc, pDst int) float64 {
	return t.h.RedistOverheadTime(pSrc, pDst) * t.src.noise()
}

// Execute runs the schedule on the emulated cluster and returns the
// measured result. Consecutive calls differ by run-to-run noise, exactly
// like repeated runs on real hardware.
func (e *Emulator) Execute(s *sched.Schedule) (*tgrid.Result, error) {
	return execute(e.net, e.Hidden, e, s)
}

// MeasureMakespan executes the schedule trials times and returns the mean
// measured makespan.
func (e *Emulator) MeasureMakespan(s *sched.Schedule, trials int) (float64, error) {
	return measureMakespan(e.net, e.Hidden, e, s, trials)
}

// MeasureTask runs a single task in isolation on processors [0, p) and
// returns the measured kernel time, excluding startup overhead — the probe
// the brute-force profiling campaign uses (§VI-A).
func (e *Emulator) MeasureTask(kernel dag.Kernel, n, p int) float64 {
	return measureTask(e.Hidden, e, kernel, n, p)
}

// MeasureStartup launches a no-op application on p processors and returns
// the measured startup overhead (§VI-B).
func (e *Emulator) MeasureStartup(p int) float64 {
	return measureStartup(e.Hidden, e, p)
}

// MeasureRedistOverhead performs the mostly-empty-matrix redistribution
// probe from pSrc to pDst processors and returns the measured overhead
// (§VI-C). The one-byte-per-pair payload transfers in negligible time, as
// designed; the protocol overhead dominates.
func (e *Emulator) MeasureRedistOverhead(pSrc, pDst int) float64 {
	return measureRedistOverhead(e.Hidden, e, pSrc, pDst)
}

// FranklinProfile models the Cray XT4 side of Figure 2: PDGEMM at the
// measured 4165.3 MFlop/s with a mild, size-dependent model error
// oscillating around 10% and bounded by ~20%.
type FranklinProfile struct {
	Hidden *Hidden
}

// NewFranklinProfile returns the calibrated Cray environment.
func NewFranklinProfile() *FranklinProfile {
	h := &Hidden{
		Cluster:             platform.Franklin(),
		MulInefficiencyRamp: 0.10,
		MulWiggleAmp:        0.10,
		AddInefficiencyRamp: 0.05,
		AddWiggleAmp:        0.03,
		OutlierP8:           1,
		OutlierP16N3000:     1,
		StartupBase:         0.05,
		StartupSlope:        0.001,
		StartupWiggleAmp:    0.01,
		RedistBase:          5e-3,
		RedistDstSlope:      0.2e-3,
		RedistSrcSlope:      0.05e-3,
		RedistWiggleAmp:     1e-3,
		StragglerHost:       -1,
		NoiseSigma:          0.01,
		Salt:                0xf4a7c15,
	}
	return &FranklinProfile{Hidden: h}
}

// ModelError returns the relative error of the analytic PDGEMM model
// 2n³/(p·FLOPS) against the Cray ground truth — Figure 2's right-hand
// series, for n ∈ {1024, 2048, 4096}.
func (f *FranklinProfile) ModelError(n, p int) float64 {
	task := &dag.Task{Kernel: dag.KernelMul, N: n}
	return f.Hidden.AnalyticModelError(task, p)
}
