package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simgrid"
	"repro/internal/tgrid"
)

// Emulator is the "experiment" side of the case study: it executes
// schedules under the hidden ground-truth profile, with seeded run-to-run
// noise, playing the role of the Bayreuth cluster plus TGrid.
//
// An Emulator is safe for concurrent use; each Execute call draws from the
// shared noise stream under a lock.
type Emulator struct {
	Hidden *Hidden
	net    *simgrid.Net

	mu  sync.Mutex
	rng *rand.Rand
}

// NewEmulator builds the environment with a noise seed.
func NewEmulator(h *Hidden, seed int64) (*Emulator, error) {
	net, err := simgrid.NewNet(h.Cluster)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return &Emulator{Hidden: h, net: net, rng: rand.New(rand.NewSource(seed))}, nil
}

// Net exposes the emulator's network, for tests.
func (e *Emulator) Net() *simgrid.Net { return e.net }

// noise draws one multiplicative lognormal noise factor.
func (e *Emulator) noise() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.Hidden.NoiseSigma <= 0 {
		return 1
	}
	return math.Exp(e.rng.NormFloat64() * e.Hidden.NoiseSigma)
}

// truthTiming implements tgrid.Timing with the hidden profile plus noise.
type truthTiming struct{ em *Emulator }

func (t truthTiming) TaskStartup(task *dag.Task, p int) float64 {
	return t.em.Hidden.StartupTime(p) * t.em.noise()
}

func (t truthTiming) TaskWork(task *dag.Task, hosts []int) (float64, []float64, [][]float64) {
	h := t.em.Hidden
	kernel := h.KernelTime(task, len(hosts))
	// On heterogeneous platforms the load-balanced 1-D kernel runs at the
	// slowest assigned node's pace; KernelTime is calibrated against the
	// reference speed.
	if !h.Cluster.IsHomogeneous() {
		kernel *= h.Cluster.NodePower / h.Cluster.MinPowerOf(hosts)
	}
	// A degraded node drags every task that touches it.
	if h.StragglerHost >= 0 && h.StragglerFactor > 1 {
		for _, host := range hosts {
			if host == h.StragglerHost {
				kernel *= h.StragglerFactor
				break
			}
		}
	}
	return kernel * t.em.noise(), nil, nil
}

func (t truthTiming) RedistOverhead(pSrc, pDst int) float64 {
	return t.em.Hidden.RedistOverheadTime(pSrc, pDst) * t.em.noise()
}

// Execute runs the schedule on the emulated cluster and returns the
// measured result. Consecutive calls differ by run-to-run noise, exactly
// like repeated runs on real hardware.
func (e *Emulator) Execute(s *sched.Schedule) (*tgrid.Result, error) {
	return tgrid.Run(e.net, s, truthTiming{em: e})
}

// MeasureMakespan executes the schedule trials times and returns the mean
// measured makespan.
func (e *Emulator) MeasureMakespan(s *sched.Schedule, trials int) (float64, error) {
	if trials < 1 {
		trials = 1
	}
	sum := 0.0
	for i := 0; i < trials; i++ {
		res, err := e.Execute(s)
		if err != nil {
			return 0, err
		}
		sum += res.Makespan
	}
	return sum / float64(trials), nil
}

// MeasureTask runs a single task in isolation on processors [0, p) and
// returns the measured kernel time, excluding startup overhead — the probe
// the brute-force profiling campaign uses (§VI-A).
func (e *Emulator) MeasureTask(kernel dag.Kernel, n, p int) float64 {
	task := &dag.Task{Kernel: kernel, N: n}
	return e.Hidden.KernelTime(task, p) * e.noise()
}

// MeasureStartup launches a no-op application on p processors and returns
// the measured startup overhead (§VI-B).
func (e *Emulator) MeasureStartup(p int) float64 {
	return e.Hidden.StartupTime(p) * e.noise()
}

// MeasureRedistOverhead performs the mostly-empty-matrix redistribution
// probe from pSrc to pDst processors and returns the measured overhead
// (§VI-C). The one-byte-per-pair payload transfers in negligible time, as
// designed; the protocol overhead dominates.
func (e *Emulator) MeasureRedistOverhead(pSrc, pDst int) float64 {
	return e.Hidden.RedistOverheadTime(pSrc, pDst) * e.noise()
}

// FranklinProfile models the Cray XT4 side of Figure 2: PDGEMM at the
// measured 4165.3 MFlop/s with a mild, size-dependent model error
// oscillating around 10% and bounded by ~20%.
type FranklinProfile struct {
	Hidden *Hidden
}

// NewFranklinProfile returns the calibrated Cray environment.
func NewFranklinProfile() *FranklinProfile {
	h := &Hidden{
		Cluster:             platform.Franklin(),
		MulInefficiencyRamp: 0.10,
		MulWiggleAmp:        0.10,
		AddInefficiencyRamp: 0.05,
		AddWiggleAmp:        0.03,
		OutlierP8:           1,
		OutlierP16N3000:     1,
		StartupBase:         0.05,
		StartupSlope:        0.001,
		StartupWiggleAmp:    0.01,
		RedistBase:          5e-3,
		RedistDstSlope:      0.2e-3,
		RedistSrcSlope:      0.05e-3,
		RedistWiggleAmp:     1e-3,
		StragglerHost:       -1,
		NoiseSigma:          0.01,
		Salt:                0xf4a7c15,
	}
	return &FranklinProfile{Hidden: h}
}

// ModelError returns the relative error of the analytic PDGEMM model
// 2n³/(p·FLOPS) against the Cray ground truth — Figure 2's right-hand
// series, for n ∈ {1024, 2048, 4096}.
func (f *FranklinProfile) ModelError(n, p int) float64 {
	task := &dag.Task{Kernel: dag.KernelMul, N: n}
	return f.Hidden.AnalyticModelError(task, p)
}
