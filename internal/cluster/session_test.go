package cluster

import (
	"sync"
	"testing"

	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/sched"
)

func TestSessionSameSeedSameMeasurements(t *testing.T) {
	em, err := NewEmulator(Bayreuth(), 42)
	if err != nil {
		t.Fatal(err)
	}
	a, b := em.Session(7), em.Session(7)
	for i := 0; i < 10; i++ {
		if va, vb := a.MeasureTask(dag.KernelMul, 2000, 8), b.MeasureTask(dag.KernelMul, 2000, 8); va != vb {
			t.Fatalf("draw %d: %g != %g", i, va, vb)
		}
	}
	if em.Session(7).MeasureStartup(4) == em.Session(8).MeasureStartup(4) {
		t.Error("different seeds drew identical noise")
	}
}

func TestSessionsIndependentOfSharedStreamAndEachOther(t *testing.T) {
	em, err := NewEmulator(Bayreuth(), 42)
	if err != nil {
		t.Fatal(err)
	}
	// Reference draws from fresh sessions, before any other consumption.
	want := make([]float64, 8)
	for i := range want {
		want[i] = em.Session(int64(i)).MeasureTask(dag.KernelMul, 2000, 8)
	}
	// Interleave shared-stream consumption and run the same sessions
	// concurrently: every draw must be unchanged.
	for i := 0; i < 100; i++ {
		em.MeasureStartup(4)
	}
	got := make([]float64, len(want))
	var wg sync.WaitGroup
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = em.Session(int64(i)).MeasureTask(dag.KernelMul, 2000, 8)
		}(i)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("session %d perturbed: %g != %g", i, got[i], want[i])
		}
	}
}

func TestSessionExecuteMatchesEmulatorSemantics(t *testing.T) {
	em, err := NewEmulator(Bayreuth(), 42)
	if err != nil {
		t.Fatal(err)
	}
	g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 2})
	model := perfmodel.NewAnalytic(Bayreuth().Cluster)
	s, err := sched.Build(sched.HCPA{}, g, 32, perfmodel.CostFunc(model), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Session(3).Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("non-positive makespan %g", res.Makespan)
	}
	again, err := em.Session(3).Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != again.Makespan {
		t.Errorf("same-seed sessions disagree: %g vs %g", res.Makespan, again.Makespan)
	}
}
