package cluster

import (
	"math"
	"testing"

	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/sched"
)

func mulTask(n int) *dag.Task { return &dag.Task{Kernel: dag.KernelMul, N: n} }

func TestInefficiencyAtLeastOne(t *testing.T) {
	h := Bayreuth()
	for _, n := range []int{2000, 3000} {
		for p := 1; p <= 32; p++ {
			for _, k := range []dag.Kernel{dag.KernelMul, dag.KernelAdd} {
				if eta := h.Inefficiency(k, n, p); eta < 1 {
					t.Errorf("Inefficiency(%v,%d,%d) = %g < 1", k, n, p, eta)
				}
			}
		}
	}
}

func TestSequentialInefficiencyMatchesTableII(t *testing.T) {
	h := Bayreuth()
	// Table II implies the Java multiplication ran ≈ 1.9× below the
	// calibrated 250 MFlop/s even sequentially (fit at p=1 gives ≈ 123 s
	// vs the analytic 64 s for n=2000), and the addition ≈ 2.9× (22.99/p
	// vs the analytic 8/p).
	if eta := h.Inefficiency(dag.KernelMul, 2000, 1); eta < 1.6 || eta > 2.2 {
		t.Errorf("sequential mul inefficiency = %g, want ≈ 1.9", eta)
	}
	if eta := h.Inefficiency(dag.KernelAdd, 2000, 1); eta < 2.3 || eta > 3.2 {
		t.Errorf("sequential add inefficiency = %g, want ≈ 2.9", eta)
	}
}

func TestOutliersPresent(t *testing.T) {
	h := Bayreuth()
	// p = 8 memory-hierarchy outlier (both sizes): the slowdown factor
	// jumps well above its neighbours.
	eta7 := h.Inefficiency(dag.KernelMul, 2000, 7)
	eta8 := h.Inefficiency(dag.KernelMul, 2000, 8)
	if eta8 < 1.2*eta7 {
		t.Errorf("p=8 outlier too weak: eta(8)=%g vs eta(7)=%g", eta8, eta7)
	}
	// p = 16 imbalance outlier only for n = 3000.
	eta16big := h.Inefficiency(dag.KernelMul, 3000, 16)
	eta15big := h.Inefficiency(dag.KernelMul, 3000, 15)
	if eta16big < 1.15*eta15big {
		t.Errorf("p=16 n=3000 outlier too weak: eta(16)=%g vs eta(15)=%g", eta16big, eta15big)
	}
	// ... and the deliberate p=16 factor applies only to n = 3000.
	plain := *h
	plain.OutlierP16N3000 = 1
	ratioBig := h.Inefficiency(dag.KernelMul, 3000, 16) / plain.Inefficiency(dag.KernelMul, 3000, 16)
	if math.Abs(ratioBig-h.OutlierP16N3000) > 1e-9 {
		t.Errorf("p=16 n=3000 factor = %g, want %g", ratioBig, h.OutlierP16N3000)
	}
	ratioSmall := h.Inefficiency(dag.KernelMul, 2000, 16) / plain.Inefficiency(dag.KernelMul, 2000, 16)
	if math.Abs(ratioSmall-1) > 1e-9 {
		t.Errorf("p=16 outlier leaked into n=2000: factor %g", ratioSmall)
	}
}

func TestAnalyticErrorMagnitudesMatchFigure2(t *testing.T) {
	h := Bayreuth()
	// Figure 2 (left): errors fluctuate without clear pattern up to ~60%.
	maxErr := 0.0
	for _, n := range []int{2000, 3000} {
		for p := 2; p <= 32; p++ {
			e := h.AnalyticModelError(mulTask(n), p)
			if e > maxErr {
				maxErr = e
			}
			if e > 0.9 {
				t.Errorf("error at n=%d p=%d is %g, implausibly large", n, p, e)
			}
		}
	}
	if maxErr < 0.5 {
		t.Errorf("max analytic error = %g, want ≥ 0.5 (paper: up to 60%%)", maxErr)
	}
}

func TestStartupCurveShape(t *testing.T) {
	h := Bayreuth()
	monotone := true
	for p := 1; p <= 32; p++ {
		v := h.StartupTime(p)
		if v < 0.3 || v > 2.2 {
			t.Errorf("StartupTime(%d) = %g outside the plausible [0.3, 2.2] s band", p, v)
		}
		if p > 1 && v < h.StartupTime(p-1) {
			monotone = false
		}
	}
	if monotone {
		t.Error("startup curve is monotone; Figure 3 is distinctly non-monotonic")
	}
	// Trend: p = 32 should sit clearly above p = 1.
	if h.StartupTime(32) <= h.StartupTime(1) {
		t.Error("startup at p=32 not above p=1; trend lost")
	}
}

func TestRedistOverheadDominatedByDst(t *testing.T) {
	h := Bayreuth()
	// Sweeping p(dst) moves the overhead far more than sweeping p(src).
	dstSpread := h.RedistOverheadTime(16, 32) - h.RedistOverheadTime(16, 1)
	srcSpread := h.RedistOverheadTime(32, 16) - h.RedistOverheadTime(1, 16)
	if dstSpread < 4*math.Abs(srcSpread) {
		t.Errorf("dst spread %g not dominant over src spread %g", dstSpread, srcSpread)
	}
	// Magnitude: Table II's fit gives ~360 ms at p(dst) = 32.
	v := h.RedistOverheadTime(16, 32)
	if v < 0.2 || v > 0.6 {
		t.Errorf("RedistOverheadTime(16,32) = %g s, want within [0.2, 0.6]", v)
	}
}

func TestKernelTimeIncludesImbalance(t *testing.T) {
	h := Bayreuth()
	// n=3000, p=16: the largest block is 195 columns vs 187.5 ideal.
	with := h.KernelTime(mulTask(3000), 16)
	analytic := mulTask(3000).Flops() / 16 / h.Cluster.NodePower
	if with <= analytic {
		t.Error("ground truth not slower than analytic at the imbalanced point")
	}
}

func TestEmulatorDeterministicPerSeed(t *testing.T) {
	g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 2})
	model := perfmodel.NewAnalytic(Bayreuth().Cluster)
	s, err := sched.Build(sched.HCPA{}, g, 32, perfmodel.CostFunc(model), nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) float64 {
		em, err := NewEmulator(Bayreuth(), seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := em.Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if run(7) != run(7) {
		t.Error("same seed produced different makespans")
	}
	if run(7) == run(8) {
		t.Error("different seeds produced identical makespans; noise missing")
	}
}

func TestEmulatorNoiseIsModest(t *testing.T) {
	em, err := NewEmulator(Bayreuth(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Repeated single-task measurements vary by a few percent.
	var min, max float64 = math.Inf(1), 0
	for i := 0; i < 50; i++ {
		v := em.MeasureTask(dag.KernelMul, 2000, 4)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max/min > 1.5 {
		t.Errorf("noise spread %g too large", max/min)
	}
	if max == min {
		t.Error("no run-to-run variation")
	}
}

func TestEmulatorMakespanExceedsAnalyticPrediction(t *testing.T) {
	// The whole point of the paper: the real environment is slower than
	// the analytic simulation because of overheads.
	g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 0.5, N: 2000, Seed: 5})
	model := perfmodel.NewAnalytic(Bayreuth().Cluster)
	cost := perfmodel.CostFunc(model)
	s, err := sched.Build(sched.HCPA{}, g, 32, cost, perfmodel.CommFunc(model, Bayreuth().Cluster))
	if err != nil {
		t.Fatal(err)
	}
	em, err := NewEmulator(Bayreuth(), 1)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := em.MeasureMakespan(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if measured <= s.EstMakespan() {
		t.Errorf("measured %g not above analytic estimate %g", measured, s.EstMakespan())
	}
}

func TestFranklinErrorsModest(t *testing.T) {
	f := NewFranklinProfile()
	// Figure 2 (right): PDGEMM errors oscillate around 10%, up to ~20%.
	maxErr, sum, count := 0.0, 0.0, 0
	for _, n := range []int{1024, 2048, 4096} {
		for p := 1; p <= 32; p++ {
			e := f.ModelError(n, p)
			if e > maxErr {
				maxErr = e
			}
			sum += e
			count++
		}
	}
	mean := sum / float64(count)
	if maxErr > 0.30 {
		t.Errorf("Franklin max error %g, want ≤ 0.30", maxErr)
	}
	if mean > 0.15 || mean < 0.01 {
		t.Errorf("Franklin mean error %g, want around 0.1", mean)
	}
}

func TestModernEnvironmentClosesTheGap(t *testing.T) {
	// On the tuned-environment preset the analytic model's error shrinks
	// to a small fraction of the Bayreuth gap — the environment, not
	// analytic modelling per se, drives the paper's findings.
	old := Bayreuth()
	modern := Modern()
	for _, n := range []int{2000, 3000} {
		for p := 1; p <= 32; p++ {
			eOld := old.AnalyticModelError(mulTask(n), p)
			eNew := modern.AnalyticModelError(mulTask(n), p)
			if eNew > 0.30 {
				t.Errorf("modern error at n=%d p=%d is %g, want ≤ 0.30", n, p, eNew)
			}
			if eNew > eOld {
				t.Errorf("modern error %g above Bayreuth %g at n=%d p=%d", eNew, eOld, n, p)
			}
		}
	}
	if modern.StartupTime(32) > 0.2 {
		t.Errorf("modern startup at p=32 is %g s, want fast", modern.StartupTime(32))
	}
}

func TestModernEnvironmentExecutable(t *testing.T) {
	g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 4})
	model := perfmodel.NewAnalytic(Modern().Cluster)
	s, err := sched.Build(sched.HCPA{}, g, 32, perfmodel.CostFunc(model), nil)
	if err != nil {
		t.Fatal(err)
	}
	em, err := NewEmulator(Modern(), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	// The analytic estimate should now be close to the measurement.
	est := s.EstMakespan()
	if res.Makespan > est*1.5 {
		t.Errorf("modern measured %g vs analytic estimate %g; gap too large", res.Makespan, est)
	}
}

func TestMeasureProbesPositive(t *testing.T) {
	em, err := NewEmulator(Bayreuth(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if v := em.MeasureStartup(16); v <= 0 {
		t.Errorf("MeasureStartup = %g", v)
	}
	if v := em.MeasureRedistOverhead(8, 24); v <= 0 {
		t.Errorf("MeasureRedistOverhead = %g", v)
	}
	if v := em.MeasureTask(dag.KernelAdd, 3000, 32); v <= 0 {
		t.Errorf("MeasureTask = %g", v)
	}
}
