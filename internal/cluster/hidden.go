// Package cluster is the reproduction's stand-in for the paper's real
// experimental environment: the 32-node Bayreuth cluster running TGrid with
// Java/MPIJava task implementations (§III). Since that hardware and software
// stack cannot be re-created, the package implements a *ground-truth
// emulator*: a hidden performance profile exhibiting every effect the paper
// identifies as the cause of analytic-simulation error (§V-C), executed in
// virtual time by the tgrid runtime.
//
// The hidden profile is calibrated to the paper's published magnitudes:
//
//   - Java kernels run below the platform's nominal 250 MFlop/s with a
//     processor- and size-dependent inefficiency that makes the analytic
//     model's relative error fluctuate up to ~60% (Figure 2, left);
//   - a memory-hierarchy outlier at p = 8 and a 1-D-distribution load
//     imbalance outlier at p = 16 for n = 3000 (Figure 6);
//   - a non-monotonic task-startup overhead between ~0.7 s and ~1.6 s whose
//     trend matches Table II's 0.03·p + 0.65 fit (Figure 3);
//   - a data-redistribution overhead dominated by the number of destination
//     processors, trending as Table II's 7.88·p(dst) + 108.58 ms fit
//     (Figure 4);
//   - seeded run-to-run noise.
//
// Experiments must observe the environment only through measurements (the
// internal/profiler probes), exactly as the authors measured their cluster;
// the hidden curves are exported only to tests and documentation tooling.
package cluster

import (
	"math"

	"repro/internal/dag"
	"repro/internal/platform"
)

// Hidden is the ground-truth performance profile of the emulated
// environment. All times are in seconds.
type Hidden struct {
	// Cluster is the nominal platform description (the one handed to the
	// simulators).
	Cluster platform.Cluster

	// MulInefficiencyBase is the multiplication kernel's slowdown factor
	// relative to the analytic model at p = 1. Table II implies ≈ 1.9: the
	// 250 MFlop/s platform speed was calibrated from a cache-friendly JVM
	// benchmark, while the n = 2000/3000 working sets run well below that
	// rate (the paper: "our Java code is often far from peak performance").
	MulInefficiencyBase float64
	// MulInefficiencyRamp adds a further slowdown growing linearly in p
	// (synchronisation and communication inefficiency of the vanilla
	// implementation).
	MulInefficiencyRamp float64
	// MulWiggleAmp is the amplitude of the deterministic per-(n, p)
	// fluctuation — the "fluctuates without clear patterns" texture of
	// Figure 2.
	MulWiggleAmp float64
	// AddInefficiencyBase, AddInefficiencyRamp and AddWiggleAmp play the
	// same roles for the addition kernel. Table II's 22.99/p + 0.03 fit
	// against the analytic 8/p implies a base near 2.9.
	AddInefficiencyBase float64
	AddInefficiencyRamp float64
	AddWiggleAmp        float64
	// OutlierP8 multiplies multiplication times at p = 8 (memory
	// hierarchy effects; both matrix sizes).
	OutlierP8 float64
	// OutlierP16N3000 multiplies multiplication times at p = 16 for
	// n = 3000 (1-D distribution load imbalance).
	OutlierP16N3000 float64

	// StartupBase and StartupSlope define the startup trend
	// base + slope·p; StartupWiggleAmp adds the non-monotonic bumps.
	StartupBase, StartupSlope, StartupWiggleAmp float64

	// RedistBase and RedistDstSlope define the redistribution-overhead
	// trend base + slope·p(dst); RedistSrcSlope adds the weak source-side
	// effect; RedistWiggleAmp adds deterministic texture.
	RedistBase, RedistDstSlope, RedistSrcSlope, RedistWiggleAmp float64

	// Vanilla1D marks environments whose kernels use the naive 1-D block
	// distribution with the remainder on the last processor (the paper's
	// Java implementation); the trailing-block imbalance then slows the
	// whole task. Tuned libraries (PDGEMM's block-cyclic layout) balance
	// load and leave this false.
	Vanilla1D bool

	// StragglerHost, when ≥ 0, marks one degraded node (failing fan,
	// throttled CPU — a common real-cluster pathology): any task placed on
	// it runs StragglerFactor times slower. Per-processor-count profiling
	// (§VI) is structurally blind to host identity, so stragglers expose a
	// limit of the paper's methodology.
	StragglerHost int
	// StragglerFactor multiplies kernel times of tasks touching the
	// straggler; values ≤ 1 disable the effect.
	StragglerFactor float64

	// NoiseSigma is the relative standard deviation of the multiplicative
	// lognormal run-to-run noise.
	NoiseSigma float64

	// Salt decorrelates the deterministic wiggle curves between
	// environment instances.
	Salt uint64
}

// Bayreuth returns the calibrated ground truth used by all experiments.
func Bayreuth() *Hidden {
	return &Hidden{
		Cluster:             platform.Bayreuth(),
		MulInefficiencyBase: 1.80,
		MulInefficiencyRamp: 0.45,
		MulWiggleAmp:        0.85,
		AddInefficiencyBase: 2.45,
		AddInefficiencyRamp: 0.45,
		AddWiggleAmp:        0.75,
		OutlierP8:           1.35,
		OutlierP16N3000:     1.30,
		StartupBase:         0.65,
		StartupSlope:        0.03,
		StartupWiggleAmp:    0.22,
		RedistBase:          108.58e-3,
		RedistDstSlope:      7.88e-3,
		RedistSrcSlope:      0.9e-3,
		RedistWiggleAmp:     18e-3,
		Vanilla1D:           true,
		StragglerHost:       -1,
		NoiseSigma:          0.03,
		Salt:                0xb0a71e57,
	}
}

// Modern returns a contrasting environment preset: tuned native kernels
// close to the calibrated rate, millisecond-scale process spawning and
// cheap redistribution setup — the kind of runtime §IX hopes for ("our
// results could be improved with better implementations"). Experiments on
// it show how much of the simulation-to-experiment gap is environment
// idiosyncrasy rather than inherent to analytic modelling.
func Modern() *Hidden {
	return &Hidden{
		Cluster:             platform.Bayreuth(),
		MulInefficiencyBase: 1.05,
		MulInefficiencyRamp: 0.10,
		MulWiggleAmp:        0.08,
		AddInefficiencyBase: 1.10,
		AddInefficiencyRamp: 0.08,
		AddWiggleAmp:        0.05,
		OutlierP8:           1,
		OutlierP16N3000:     1,
		StartupBase:         0.05,
		StartupSlope:        0.002,
		StartupWiggleAmp:    0.01,
		RedistBase:          5e-3,
		RedistDstSlope:      0.3e-3,
		RedistSrcSlope:      0.05e-3,
		RedistWiggleAmp:     0.5e-3,
		Vanilla1D:           false,
		StragglerHost:       -1,
		NoiseSigma:          0.01,
		Salt:                0x51badcafe,
	}
}

// wiggle returns a deterministic pseudo-random value in [-1, 1) keyed by the
// given coordinates; it is the environment's fixed "texture" (cache effects,
// topology quirks) as opposed to run-to-run noise.
func (h *Hidden) wiggle(keys ...uint64) float64 {
	x := h.Salt
	for _, k := range keys {
		x += k + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return 2*float64(x>>11)/float64(1<<53) - 1
}

// Inefficiency returns the hidden slowdown factor (≥ 1) of a kernel at the
// given matrix size and processor count, relative to the analytic model:
// a large base (the Java kernels run far from the calibrated peak), a mild
// linear ramp in p, a deterministic per-(n, p) fluctuation, and the two
// calibrated outliers.
func (h *Hidden) Inefficiency(kernel dag.Kernel, n, p int) float64 {
	base, ramp, amp, kind := h.MulInefficiencyBase, h.MulInefficiencyRamp, h.MulWiggleAmp, uint64(1)
	if kernel == dag.KernelAdd {
		base, ramp, amp, kind = h.AddInefficiencyBase, h.AddInefficiencyRamp, h.AddWiggleAmp, uint64(2)
	}
	if base < 1 {
		base = 1
	}
	frac := float64(p-1) / 31
	eta := base + ramp*frac + amp*(0.5+0.5*h.wiggle(kind, uint64(n), uint64(p)))*minF(1, frac*4+0.1)
	if kernel == dag.KernelMul {
		if p == 8 {
			eta *= h.OutlierP8
		}
		if p == 16 && n == 3000 {
			eta *= h.OutlierP16N3000
		}
	}
	if eta < 1 {
		eta = 1
	}
	return eta
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// KernelTime returns the noiseless ground-truth execution time of a task's
// kernel on p processors: the analytic time scaled by the hidden
// inefficiency, with the trailing-block imbalance of the vanilla 1-D
// distribution applied (the slowest processor holds the largest block).
func (h *Hidden) KernelTime(task *dag.Task, p int) float64 {
	if task.Kernel == dag.KernelNoop {
		return 0
	}
	n := task.N
	analytic := task.Flops() / float64(p) / h.Cluster.NodePower
	t := analytic * h.Inefficiency(task.Kernel, n, p)
	if h.Vanilla1D {
		// Imbalance: the largest block against a perfect n/p split slows
		// the whole task to the pace of its most loaded processor.
		t *= float64(maxBlock(n, p)) * float64(p) / float64(n)
	}
	return t
}

func maxBlock(n, p int) int {
	b := n / p
	last := n - (p-1)*b
	if last > b {
		return last
	}
	return b
}

// StartupTime returns the noiseless ground-truth task-startup overhead for
// an allocation of p processors: the linear trend plus the non-monotonic
// texture of Figure 3.
func (h *Hidden) StartupTime(p int) float64 {
	t := h.StartupBase + h.StartupSlope*float64(p) + h.StartupWiggleAmp*h.wiggle(3, uint64(p))
	if t < 0.1 {
		t = 0.1
	}
	return t
}

// RedistOverheadTime returns the noiseless ground-truth subnet-manager
// overhead for a redistribution from pSrc to pDst processors.
func (h *Hidden) RedistOverheadTime(pSrc, pDst int) float64 {
	t := h.RedistBase + h.RedistDstSlope*float64(pDst) + h.RedistSrcSlope*float64(pSrc) +
		h.RedistWiggleAmp*h.wiggle(4, uint64(pSrc), uint64(pDst))
	if t < 1e-3 {
		t = 1e-3
	}
	return t
}

// AnalyticModelError returns the relative error of the pure analytic model
// against the noiseless ground truth for one task configuration — the
// quantity plotted in Figure 2 (left).
func (h *Hidden) AnalyticModelError(task *dag.Task, p int) float64 {
	truth := h.KernelTime(task, p)
	analytic := task.Flops() / float64(p) / h.Cluster.NodePower
	return math.Abs(analytic-truth) / truth
}
