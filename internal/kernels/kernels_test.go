package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
	"repro/internal/redist"
)

func TestSeqMatMulKnown(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	b := NewMatrix(2, 2)
	b.Set(0, 0, 5)
	b.Set(0, 1, 6)
	b.Set(1, 0, 7)
	b.Set(1, 1, 8)
	c := SeqMatMul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("C[%d][%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestSeqMatAdd(t *testing.T) {
	a := RandomMatrix(8, 1)
	b := RandomMatrix(8, 2)
	c := SeqMatAdd(a, b)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if c.At(i, j) != a.At(i, j)+b.At(i, j) {
				t.Fatalf("C[%d][%d] wrong", i, j)
			}
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	m := RandomMatrix(33, 7)
	d, _ := redist.NewDist(33, 5)
	blocks := Scatter(m, d)
	back := Gather(blocks, d)
	if !m.Equal(back, 0) {
		t.Fatal("scatter/gather round trip changed the matrix")
	}
}

func TestParMatMulMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7} {
		n := 24
		a := RandomMatrix(n, 10)
		b := RandomMatrix(n, 11)
		want := SeqMatMul(a, b)
		d, _ := redist.NewDist(n, p)
		ablocks := Scatter(a, d)
		bblocks := Scatter(b, d)
		out := make([]*Matrix, p)
		mpi.Run(p, func(c *mpi.Comm) {
			out[c.Rank()] = ParMatMul(c, ablocks[c.Rank()], bblocks[c.Rank()], d)
		})
		got := Gather(out, d)
		if !want.Equal(got, 1e-9) {
			t.Errorf("p=%d: parallel multiplication differs from sequential", p)
		}
	}
}

func TestParMatMulUnevenBlocks(t *testing.T) {
	// n=25, p=4: blocks 6,6,6,7 — the vanilla trailing-remainder layout.
	n, p := 25, 4
	a := RandomMatrix(n, 20)
	b := RandomMatrix(n, 21)
	want := SeqMatMul(a, b)
	d, _ := redist.NewDist(n, p)
	ab, bb := Scatter(a, d), Scatter(b, d)
	out := make([]*Matrix, p)
	mpi.Run(p, func(c *mpi.Comm) {
		out[c.Rank()] = ParMatMul(c, ab[c.Rank()], bb[c.Rank()], d)
	})
	if !want.Equal(Gather(out, d), 1e-9) {
		t.Error("uneven-block multiplication differs from sequential")
	}
}

func TestParMatAddMatchesSequentialAndRepeats(t *testing.T) {
	n, p := 16, 3
	a := RandomMatrix(n, 30)
	b := RandomMatrix(n, 31)
	want := SeqMatAdd(a, b)
	d, _ := redist.NewDist(n, p)
	ab, bb := Scatter(a, d), Scatter(b, d)
	out := make([]*Matrix, p)
	mpi.Run(p, func(c *mpi.Comm) {
		out[c.Rank()] = ParMatAdd(ab[c.Rank()], bb[c.Rank()], 5)
	})
	if !want.Equal(Gather(out, d), 0) {
		t.Error("repeated addition changed the result")
	}
}

func TestReblockPreservesMatrix(t *testing.T) {
	m := RandomMatrix(40, 40)
	src, _ := redist.NewDist(40, 3)
	dst, _ := redist.NewDist(40, 8)
	blocks := Scatter(m, src)
	moved := Reblock(blocks, src, dst)
	if !m.Equal(Gather(moved, dst), 0) {
		t.Fatal("reblock lost data")
	}
}

func TestParReblockMatchesReblock(t *testing.T) {
	cases := []struct{ ps, pd int }{{1, 4}, {4, 1}, {3, 5}, {5, 3}, {4, 4}}
	for _, cse := range cases {
		m := RandomMatrix(22, 50)
		src, _ := redist.NewDist(22, cse.ps)
		dst, _ := redist.NewDist(22, cse.pd)
		blocks := Scatter(m, src)
		p := cse.ps
		if cse.pd > p {
			p = cse.pd
		}
		out := make([]*Matrix, cse.pd)
		mpi.Run(p, func(c *mpi.Comm) {
			var local *Matrix
			if c.Rank() < cse.ps {
				local = blocks[c.Rank()]
			}
			res := ParReblock(c, local, src, dst)
			if c.Rank() < cse.pd {
				out[c.Rank()] = res
			}
		})
		if !m.Equal(Gather(out, dst), 0) {
			t.Errorf("ParReblock %d→%d lost data", cse.ps, cse.pd)
		}
	}
}

// Property: parallel multiplication equals sequential for random sizes and
// processor counts.
func TestParMatMulEquivalenceQuick(t *testing.T) {
	prop := func(nRaw, pRaw uint8, seed int64) bool {
		n := 4 + int(nRaw)%28
		p := 1 + int(pRaw)%6
		if p > n {
			p = n
		}
		a := RandomMatrix(n, seed)
		b := RandomMatrix(n, seed+1)
		want := SeqMatMul(a, b)
		d, err := redist.NewDist(n, p)
		if err != nil {
			return false
		}
		ab, bb := Scatter(a, d), Scatter(b, d)
		out := make([]*Matrix, p)
		mpi.Run(p, func(c *mpi.Comm) {
			out[c.Rank()] = ParMatMul(c, ab[c.Rank()], bb[c.Rank()], d)
		})
		return want.Equal(Gather(out, d), 1e-9)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixHelpers(t *testing.T) {
	m := RandomMatrix(10, 3)
	if m.FrobeniusNorm() <= 0 {
		t.Error("norm of random matrix should be positive")
	}
	c := m.Clone()
	c.Set(0, 0, 999)
	if m.At(0, 0) == 999 {
		t.Error("Clone aliases the original")
	}
	col := m.Col(2)
	if len(col) != 10 {
		t.Errorf("Col length %d", len(col))
	}
	blk := m.ColBlock(2, 5)
	if blk.Cols != 3 || blk.At(0, 0) != m.At(0, 2) {
		t.Error("ColBlock wrong")
	}
}
