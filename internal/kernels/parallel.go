package kernels

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/redist"
)

// Scatter splits an n×n matrix into the column blocks of a 1-D
// distribution, indexed by rank.
func Scatter(m *Matrix, d redist.Dist) []*Matrix {
	if m.Cols != d.N {
		panic(fmt.Sprintf("kernels: scatter %d columns under distribution of %d", m.Cols, d.N))
	}
	out := make([]*Matrix, d.P)
	for r := 0; r < d.P; r++ {
		lo, hi := d.Block(r)
		out[r] = m.ColBlock(lo, hi)
	}
	return out
}

// Gather reassembles column blocks into the full matrix.
func Gather(blocks []*Matrix, d redist.Dist) *Matrix {
	if len(blocks) != d.P {
		panic(fmt.Sprintf("kernels: gather %d blocks under distribution of %d ranks", len(blocks), d.P))
	}
	rows := blocks[0].Rows
	out := NewMatrix(rows, d.N)
	for r := 0; r < d.P; r++ {
		lo, hi := d.Block(r)
		if blocks[r].Cols != hi-lo || blocks[r].Rows != rows {
			panic(fmt.Sprintf("kernels: block %d has shape %dx%d, want %dx%d",
				r, blocks[r].Rows, blocks[r].Cols, rows, hi-lo))
		}
		out.SetColBlock(lo, blocks[r])
	}
	return out
}

// ParMatMul computes this rank's column block of C = A·B with the vanilla
// 1-D ring algorithm: the local A block rotates around the ring for p−1
// steps; at each step the rank accumulates the contribution of the A
// columns it currently holds into its C block. Each step moves n·(n/p)
// elements per rank — the n²/p figure of §IV-1.
//
// aBlock and bBlock are the rank's column blocks of A and B under dist;
// the returned matrix is the rank's block of C.
func ParMatMul(c *mpi.Comm, aBlock, bBlock *Matrix, dist redist.Dist) *Matrix {
	if c.Size() != dist.P {
		panic(fmt.Sprintf("kernels: world size %d but distribution has %d ranks", c.Size(), dist.P))
	}
	n := dist.N
	rank := c.Rank()
	lo, hi := dist.Block(rank)
	if aBlock.Rows != n || bBlock.Rows != n || aBlock.Cols != hi-lo || bBlock.Cols != hi-lo {
		panic("kernels: operand blocks do not match the distribution")
	}
	out := NewMatrix(n, hi-lo)

	cur := aBlock.Clone()
	curOwner := rank
	for step := 0; step < dist.P; step++ {
		alo, ahi := dist.Block(curOwner)
		// C[:, j] += Σ_{k ∈ [alo, ahi)} A[:, k] · B[k, j] for local j.
		for j := 0; j < out.Cols; j++ {
			bj := bBlock.Col(j)
			cj := out.Col(j)
			for k := alo; k < ahi; k++ {
				f := bj[k]
				if f == 0 {
					continue
				}
				ak := cur.Col(k - alo)
				for i := 0; i < n; i++ {
					cj[i] += ak[i] * f
				}
			}
		}
		if step < dist.P-1 {
			// Rotate: blocks flow to the next rank; uneven trailing block
			// sizes make the payload size vary, exactly like the vanilla
			// implementation.
			data := c.RingShift(1000+step, cur.Data)
			curOwner = (curOwner - 1 + dist.P) % dist.P
			nlo, nhi := dist.Block(curOwner)
			cur = &Matrix{Rows: n, Cols: nhi - nlo, Data: data}
		}
	}
	return out
}

// ParMatAdd computes this rank's column block of C = A + B; the 1-D
// distribution makes it purely local (§IV-1: no communication). repeats
// re-executes the addition, implementing the paper's artificial n/4
// boosting of addition complexity; pass 1 for the plain kernel.
func ParMatAdd(aBlock, bBlock *Matrix, repeats int) *Matrix {
	if repeats < 1 {
		repeats = 1
	}
	var out *Matrix
	for i := 0; i < repeats; i++ {
		out = SeqMatAdd(aBlock, bBlock)
	}
	return out
}

// Reblock converts column blocks from one 1-D distribution to another —
// the data-redistribution component's actual data movement, driven by the
// same overlap plan the virtual backend simulates.
func Reblock(blocks []*Matrix, src, dst redist.Dist) []*Matrix {
	if src.N != dst.N {
		panic(fmt.Sprintf("kernels: reblock between sizes %d and %d", src.N, dst.N))
	}
	if len(blocks) != src.P {
		panic(fmt.Sprintf("kernels: reblock of %d blocks under %d-rank distribution", len(blocks), src.P))
	}
	rows := blocks[0].Rows
	out := make([]*Matrix, dst.P)
	for r := 0; r < dst.P; r++ {
		lo, hi := dst.Block(r)
		out[r] = NewMatrix(rows, hi-lo)
	}
	for sr := 0; sr < src.P; sr++ {
		slo, shi := src.Block(sr)
		for col := slo; col < shi; col++ {
			dr := dst.Owner(col)
			dlo, _ := dst.Block(dr)
			copy(out[dr].Col(col-dlo), blocks[sr].Col(col-slo))
		}
	}
	return out
}

// ParReblock performs the redistribution with real message passing: each of
// the max(src.P, dst.P) ranks of the combined world sends its overlapping
// column ranges via Alltoallv. Ranks beyond a distribution's size
// participate with empty payloads. blocks is indexed by source rank and the
// result by destination rank; only rank 0's return value is meaningful to
// callers of mpi.Run (all ranks compute identical shapes).
func ParReblock(c *mpi.Comm, localBlock *Matrix, src, dst redist.Dist) *Matrix {
	p := c.Size()
	rank := c.Rank()
	rows := src.N

	send := make([][]float64, p)
	if rank < src.P {
		slo, shi := src.Block(rank)
		for dr := 0; dr < dst.P && dr < p; dr++ {
			dlo, dhi := dst.Block(dr)
			olo, ohi := slo, shi
			if dlo > olo {
				olo = dlo
			}
			if dhi < ohi {
				ohi = dhi
			}
			if ohi <= olo {
				continue
			}
			buf := make([]float64, 0, (ohi-olo)*rows)
			for col := olo; col < ohi; col++ {
				buf = append(buf, localBlock.Col(col-slo)...)
			}
			send[dr] = buf
		}
	}
	recv := c.Alltoallv(2000, send)

	if rank >= dst.P {
		return nil
	}
	dlo, dhi := dst.Block(rank)
	out := NewMatrix(rows, dhi-dlo)
	for sr := 0; sr < src.P && sr < p; sr++ {
		payload := recv[sr]
		if len(payload) == 0 {
			continue
		}
		slo, shi := src.Block(sr)
		olo, ohi := slo, shi
		if dlo > olo {
			olo = dlo
		}
		if dhi < ohi {
			ohi = dhi
		}
		if ohi <= olo || len(payload) != (ohi-olo)*rows {
			panic(fmt.Sprintf("kernels: rank %d received %d elements from %d, want %d",
				rank, len(payload), sr, (ohi-olo)*rows))
		}
		for i, col := 0, olo; col < ohi; i, col = i+1, col+1 {
			copy(out.Col(col-dlo), payload[i*rows:(i+1)*rows])
		}
	}
	return out
}
