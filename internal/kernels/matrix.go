// Package kernels implements the case study's computational kernels — dense
// matrix addition and multiplication with 1-D column-block distributions —
// both sequentially and in parallel over the internal/mpi substrate, the
// role the Java/MPIJava implementations play in the paper (§II-B). The
// parallel multiplication is the "vanilla" 1-D algorithm the paper uses:
// each of the p ranks owns n/p columns (remainder on the last rank) and the
// B blocks rotate around a ring for p steps.
package kernels

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense column-major matrix: element (i, j) lives at
// Data[j*Rows+i], so a column block is a contiguous slice — the layout the
// 1-D distribution and the redistribution component move around.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("kernels: matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// RandomMatrix fills an n×n matrix with deterministic pseudo-random values.
func RandomMatrix(n int, seed int64) *Matrix {
	m := NewMatrix(n, n)
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[j*m.Rows+i] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[j*m.Rows+i] = v }

// Col returns column j as a contiguous slice (aliasing the matrix).
func (m *Matrix) Col(j int) []float64 { return m.Data[j*m.Rows : (j+1)*m.Rows] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// ColBlock returns a copy of columns [lo, hi) as a Rows×(hi−lo) matrix.
func (m *Matrix) ColBlock(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("kernels: column block [%d,%d) of %d columns", lo, hi, m.Cols))
	}
	out := NewMatrix(m.Rows, hi-lo)
	copy(out.Data, m.Data[lo*m.Rows:hi*m.Rows])
	return out
}

// SetColBlock copies src into columns [lo, lo+src.Cols).
func (m *Matrix) SetColBlock(lo int, src *Matrix) {
	if src.Rows != m.Rows || lo+src.Cols > m.Cols {
		panic("kernels: column block does not fit")
	}
	copy(m.Data[lo*m.Rows:(lo+src.Cols)*m.Rows], src.Data)
}

// Equal reports element-wise equality within tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// FrobeniusNorm returns the Frobenius norm, a cheap integrity checksum.
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// SeqMatMul computes C = A·B sequentially (reference implementation).
func SeqMatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("kernels: matmul shape %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		bj := b.Col(j)
		cj := c.Col(j)
		for k := 0; k < a.Cols; k++ {
			ak := a.Col(k)
			f := bj[k]
			if f == 0 {
				continue
			}
			for i := 0; i < a.Rows; i++ {
				cj[i] += ak[i] * f
			}
		}
	}
	return c
}

// SeqMatAdd computes C = A + B sequentially.
func SeqMatAdd(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("kernels: matadd shape %dx%d + %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, a.Cols)
	for i := range c.Data {
		c.Data[i] = a.Data[i] + b.Data[i]
	}
	return c
}
