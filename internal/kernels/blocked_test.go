package kernels

import "testing"

func TestSeqMatMulBlockedMatchesNaive(t *testing.T) {
	for _, tile := range []int{1, 7, 16, 200} {
		a := RandomMatrix(45, 5)
		b := RandomMatrix(45, 6)
		want := SeqMatMul(a, b)
		got := SeqMatMulBlocked(a, b, tile)
		if !want.Equal(got, 1e-9) {
			t.Errorf("tile=%d: blocked result differs", tile)
		}
	}
}

func TestSeqMatMulBlockedDefaultTile(t *testing.T) {
	a := RandomMatrix(20, 7)
	b := RandomMatrix(20, 8)
	if !SeqMatMul(a, b).Equal(SeqMatMulBlocked(a, b, 0), 1e-9) {
		t.Error("default tile size result differs")
	}
}

func TestIdentityMultiplication(t *testing.T) {
	a := RandomMatrix(16, 9)
	if !SeqMatMul(a, Identity(16)).Equal(a, 1e-12) {
		t.Error("A·I != A")
	}
	if !SeqMatMul(Identity(16), a).Equal(a, 1e-12) {
		t.Error("I·A != A")
	}
}

func TestTranspose(t *testing.T) {
	m := RandomMatrix(10, 11)
	tt := m.Transpose().Transpose()
	if !m.Equal(tt, 0) {
		t.Error("double transpose changed the matrix")
	}
	single := m.Transpose()
	if single.At(3, 7) != m.At(7, 3) {
		t.Error("transpose element mismatch")
	}
}
