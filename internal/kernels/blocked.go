package kernels

// SeqMatMulBlocked computes C = A·B with cache-oblivious loop tiling. The
// paper attributes its p = 8 outlier to "memory hierarchy effects, which
// are notoriously difficult to model" — this kernel is the classic
// counter-measure, and the BenchmarkSeqMatMulBlocked/BenchmarkSeqMatMul
// pair in the root bench harness shows the effect tiling is fighting.
func SeqMatMulBlocked(a, b *Matrix, tile int) *Matrix {
	if a.Cols != b.Rows {
		panic("kernels: blocked matmul shape mismatch")
	}
	if tile < 1 {
		tile = 64
	}
	c := NewMatrix(a.Rows, b.Cols)
	n, m, k := a.Rows, b.Cols, a.Cols
	for jj := 0; jj < m; jj += tile {
		jmax := min(jj+tile, m)
		for kk := 0; kk < k; kk += tile {
			kmax := min(kk+tile, k)
			for ii := 0; ii < n; ii += tile {
				imax := min(ii+tile, n)
				for j := jj; j < jmax; j++ {
					bj := b.Col(j)
					cj := c.Col(j)
					for kx := kk; kx < kmax; kx++ {
						f := bj[kx]
						if f == 0 {
							continue
						}
						ak := a.Col(kx)
						for i := ii; i < imax; i++ {
							cj[i] += ak[i] * f
						}
					}
				}
			}
		}
	}
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Transpose returns the matrix transpose.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := 0; i < m.Rows; i++ {
			out.Set(j, i, col[i])
		}
	}
	return out
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}
