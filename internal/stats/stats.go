// Package stats provides the summary statistics the paper's evaluation
// reports: means, quantiles, box-and-whisker five-number summaries
// (Figure 8), relative errors and winner-sign agreement counts (Figures 1,
// 5, 7).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation; NaN for fewer than two
// points.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation;
// NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// FiveNum is a box-and-whisker summary: minimum, lower quartile, median,
// upper quartile, maximum.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
}

// Summarize computes the five-number summary.
func Summarize(xs []float64) FiveNum {
	return FiveNum{
		Min:    Quantile(xs, 0),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
	}
}

// String renders the summary as a compact boxplot row.
func (f FiveNum) String() string {
	return fmt.Sprintf("min=%.1f q1=%.1f med=%.1f q3=%.1f max=%.1f",
		f.Min, f.Q1, f.Median, f.Q3, f.Max)
}

// RelErrPct returns |sim − exp| / exp in percent.
func RelErrPct(sim, exp float64) float64 {
	if exp == 0 {
		return math.Inf(1)
	}
	return 100 * math.Abs(sim-exp) / math.Abs(exp)
}

// SimErrPct returns |exp − sim| / sim in percent — the makespan simulation
// error normalised by the *simulated* makespan, Figure 8's metric (a
// simulation predicting 4 s for an 60 s run is 1400% off, which is how the
// paper's analytic boxes reach error magnitudes in the hundreds).
func SimErrPct(sim, exp float64) float64 {
	if sim == 0 {
		return math.Inf(1)
	}
	return 100 * math.Abs(exp-sim) / math.Abs(sim)
}

// RelDiff returns (a − b) / b, the paper's "relative makespan of HCPA"
// metric (negative means a is shorter than b).
func RelDiff(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return (a - b) / b
}

// SameSign reports whether two relative differences point to the same
// winner; differences within eps of zero count as ties compatible with
// either sign.
func SameSign(a, b, eps float64) bool {
	if math.Abs(a) <= eps || math.Abs(b) <= eps {
		return true
	}
	return (a > 0) == (b > 0)
}

// CountDisagreements returns how many paired relative differences point to
// opposite winners — the paper's "simulation outcome is erroneous in k out
// of n cases" metric.
func CountDisagreements(sim, exp []float64, eps float64) int {
	n := len(sim)
	if len(exp) < n {
		n = len(exp)
	}
	count := 0
	for i := 0; i < n; i++ {
		if !SameSign(sim[i], exp[i], eps) {
			count++
		}
	}
	return count
}
