package stats

import "math"

// Rank-agreement statistics: the paper's headline metric is a sign
// comparison per DAG, but across a whole suite the Kendall rank correlation
// between simulated and measured relative makespans summarises how much of
// the simulator's ordering information survives contact with reality.

// KendallTau returns Kendall's τ-a rank correlation between two paired
// samples: (concordant − discordant) / total pairs. Ties count as neither.
// It returns 0 for fewer than two points.
func KendallTau(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n < 2 {
		return 0
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			switch {
			case dx*dy > 0:
				concordant++
			case dx*dy < 0:
				discordant++
			}
		}
	}
	total := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(total)
}

// PearsonR returns the Pearson correlation coefficient of two paired
// samples; 0 for degenerate input.
func PearsonR(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs[:n]), Mean(ys[:n])
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / (sqrt(sxx) * sqrt(syy))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
