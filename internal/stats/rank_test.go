package stats

import (
	"math"
	"testing"
)

func TestKendallTauPerfectAgreement(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 20, 30, 40, 50}
	almost(t, KendallTau(xs, ys), 1, 1e-12, "tau")
}

func TestKendallTauPerfectDisagreement(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{4, 3, 2, 1}
	almost(t, KendallTau(xs, ys), -1, 1e-12, "tau")
}

func TestKendallTauPartial(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{1, 3, 2}
	// pairs: (1,2)c (1,3)c (2,3)d → (2-1)/3
	almost(t, KendallTau(xs, ys), 1.0/3, 1e-12, "tau")
}

func TestKendallTauTiesAndDegenerate(t *testing.T) {
	if KendallTau([]float64{1}, []float64{2}) != 0 {
		t.Error("single point should give 0")
	}
	xs := []float64{1, 1, 2}
	ys := []float64{5, 6, 7}
	// tie on xs pair (0,1): neither; others concordant → 2/3
	almost(t, KendallTau(xs, ys), 2.0/3, 1e-12, "tau with ties")
}

func TestPearsonR(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	almost(t, PearsonR(xs, xs), 1, 1e-12, "self correlation")
	neg := []float64{4, 3, 2, 1}
	almost(t, PearsonR(xs, neg), -1, 1e-12, "anti correlation")
	flat := []float64{5, 5, 5, 5}
	if PearsonR(xs, flat) != 0 {
		t.Error("degenerate series should give 0")
	}
	if !math.Signbit(PearsonR([]float64{1, 2, 3}, []float64{1, 0, -4})) {
		t.Error("descending pairing should be negative")
	}
}
