package stats

import (
	"math"
	"testing"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g", what, got, want)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	almost(t, Mean(xs), 5, 1e-12, "mean")
	almost(t, StdDev(xs), math.Sqrt(32.0/7), 1e-12, "stddev")
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev([]float64{1})) {
		t.Error("degenerate inputs should yield NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	almost(t, Quantile(xs, 0), 1, 1e-12, "min")
	almost(t, Quantile(xs, 1), 4, 1e-12, "max")
	almost(t, Quantile(xs, 0.5), 2.5, 1e-12, "median")
	almost(t, Median([]float64{3, 1, 2}), 2, 1e-12, "odd median")
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, 2)) {
		t.Error("invalid quantile inputs should yield NaN")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	f := Summarize(xs)
	if f.Min != 1 || f.Max != 100 || f.Median != 3 {
		t.Errorf("FiveNum = %+v", f)
	}
	if f.String() == "" {
		t.Error("empty String()")
	}
}

func TestRelErrPct(t *testing.T) {
	almost(t, RelErrPct(110, 100), 10, 1e-12, "+10%")
	almost(t, RelErrPct(90, 100), 10, 1e-12, "-10%")
	if !math.IsInf(RelErrPct(1, 0), 1) {
		t.Error("division by zero should be +Inf")
	}
}

func TestRelDiff(t *testing.T) {
	almost(t, RelDiff(90, 100), -0.1, 1e-12, "HCPA 10% shorter")
	almost(t, RelDiff(120, 100), 0.2, 1e-12, "HCPA 20% longer")
}

func TestSameSign(t *testing.T) {
	if !SameSign(-0.2, -0.1, 0) {
		t.Error("both negative should agree")
	}
	if SameSign(-0.2, 0.1, 0) {
		t.Error("opposite signs should disagree")
	}
	if !SameSign(0.001, -0.3, 0.01) {
		t.Error("near-zero within eps should count as agreement")
	}
}

func TestCountDisagreements(t *testing.T) {
	sim := []float64{-0.3, 0.2, -0.1, 0.4}
	exp := []float64{-0.1, -0.2, 0.3, 0.5}
	if got := CountDisagreements(sim, exp, 0); got != 2 {
		t.Errorf("disagreements = %d, want 2", got)
	}
	if got := CountDisagreements(sim, exp[:2], 0); got != 1 {
		t.Errorf("short-input disagreements = %d, want 1", got)
	}
}
