package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is a manually advanced clock shared by the Stores of a test.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func openTestStore(t *testing.T, dir string, clock *fakeClock) *Store {
	t.Helper()
	s, err := Open(dir, Options{Now: clock.Now})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestJobLifecycle(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	s := openTestStore(t, dir, clock)

	rec, err := s.SubmitJob("table1", []byte(`{"study":"table1"}`))
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if rec.State != StateQueued || rec.ID == "" {
		t.Fatalf("submitted record = %+v", rec)
	}

	got, ok, err := s.Claim("r1", time.Second)
	if err != nil || !ok {
		t.Fatalf("Claim: ok=%v err=%v", ok, err)
	}
	if got.ID != rec.ID {
		t.Fatalf("claimed %s, want %s", got.ID, rec.ID)
	}

	snap := &obs.ProgressSnapshot{CellsDone: 3, CellsTotal: 10}
	if err := s.Renew(rec.ID, "r1", time.Second, snap); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if err := s.Complete(rec.ID, "r1", "report text", snap); err != nil {
		t.Fatalf("Complete: %v", err)
	}

	// A second handle on the same directory replays to the same view.
	s2 := openTestStore(t, dir, clock)
	j, ok, err := s2.Job(rec.ID)
	if err != nil || !ok {
		t.Fatalf("second handle Job: ok=%v err=%v", ok, err)
	}
	if j.State != StateDone || j.Output != "report text" || j.Holder != "r1" {
		t.Fatalf("second handle sees %+v", j)
	}
	if j.Progress == nil || j.Progress.CellsDone != 3 {
		t.Fatalf("progress not persisted: %+v", j.Progress)
	}
	if j.Started == nil || j.Ended == nil {
		t.Fatalf("timestamps missing: %+v", j)
	}
}

func TestExpiredLeaseReclaimAndFencing(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	s := openTestStore(t, dir, clock)

	rec, err := s.SubmitJob("fig1", nil)
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if _, ok, err := s.Claim("r1", time.Second); err != nil || !ok {
		t.Fatalf("first claim: ok=%v err=%v", ok, err)
	}

	// While the lease is live, nobody else can claim.
	if _, ok, _ := s.Claim("r2", time.Second); ok {
		t.Fatal("r2 claimed a job with a live lease")
	}

	clock.Advance(2 * time.Second) // lease expires

	got, ok, err := s.Claim("r2", time.Second)
	if err != nil || !ok {
		t.Fatalf("reclaim: ok=%v err=%v", ok, err)
	}
	if got.ID != rec.ID {
		t.Fatalf("reclaimed %s, want %s", got.ID, rec.ID)
	}

	// The old holder's writes are fenced off.
	if err := s.Renew(rec.ID, "r1", time.Second, nil); err != ErrLeaseLost {
		t.Fatalf("stale Renew err = %v, want ErrLeaseLost", err)
	}
	if err := s.Complete(rec.ID, "r1", "stale result", nil); err != ErrLeaseLost {
		t.Fatalf("stale Complete err = %v, want ErrLeaseLost", err)
	}

	// The new holder finishes; the takeover is visible as a restart.
	if err := s.Complete(rec.ID, "r2", "fresh result", nil); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	j, _, _ := s.Job(rec.ID)
	if j.Output != "fresh result" || j.Holder != "r2" || j.Restarts != 1 {
		t.Fatalf("after takeover: %+v", j)
	}
}

// Sticky reassignment: a returning holder gets its own expired jobs before
// anything else, and a different replica prefers never-held work.
func TestStickyClaimOrdering(t *testing.T) {
	clock := newFakeClock()
	s := openTestStore(t, t.TempDir(), clock)

	first, _ := s.SubmitJob("a", nil)
	second, _ := s.SubmitJob("b", nil)

	// r1 claims the oldest job, then its lease expires.
	got, ok, _ := s.Claim("r1", time.Second)
	if !ok || got.ID != first.ID {
		t.Fatalf("r1 claimed %v, want %s", got.ID, first.ID)
	}
	clock.Advance(2 * time.Second)

	// Both jobs are claimable now. r1 must take back its own job even
	// though the untouched one exists; submission order alone would also
	// pick first, so check the reverse too: r2 prefers the never-held job
	// only through expiry ordering — the zero expiry of the never-leased
	// job sorts before r1's expired lease.
	got, ok, _ = s.Claim("r1", time.Second)
	if !ok || got.ID != first.ID {
		t.Fatalf("sticky claim got %v, want %s", got.ID, first.ID)
	}
	got, ok, _ = s.Claim("r2", time.Second)
	if !ok || got.ID != second.ID {
		t.Fatalf("r2 claimed %v, want %s", got.ID, second.ID)
	}
}

func TestReleaseRequeuesImmediately(t *testing.T) {
	clock := newFakeClock()
	s := openTestStore(t, t.TempDir(), clock)

	rec, _ := s.SubmitJob("a", nil)
	if _, ok, _ := s.Claim("r1", time.Hour); !ok {
		t.Fatal("claim failed")
	}
	if err := s.Release(rec.ID, "r1"); err != nil {
		t.Fatalf("Release: %v", err)
	}
	j, _, _ := s.Job(rec.ID)
	if j.State != StateQueued || j.Started != nil {
		t.Fatalf("after release: %+v", j)
	}
	// No clock advance needed: a released job is immediately claimable.
	got, ok, _ := s.Claim("r2", time.Second)
	if !ok || got.ID != rec.ID {
		t.Fatalf("claim after release: ok=%v id=%v", ok, got.ID)
	}
	// The release keeps the old holder on record (for sticky preference),
	// so a different replica picking the job up counts as a restart.
	if got.Restarts != 1 || got.Holder != "r2" {
		t.Fatalf("claim after release: restarts=%d holder=%s, want 1/r2", got.Restarts, got.Holder)
	}
}

func TestHeartbeatAndReplicas(t *testing.T) {
	clock := newFakeClock()
	s := openTestStore(t, t.TempDir(), clock)

	if err := s.Heartbeat("r1", time.Second); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	if err := s.Heartbeat("r2", 10*time.Second); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	clock.Advance(2 * time.Second)
	reps, err := s.Replicas()
	if err != nil {
		t.Fatalf("Replicas: %v", err)
	}
	if len(reps) != 2 || reps[0].Name != "r1" || reps[1].Name != "r2" {
		t.Fatalf("replicas = %+v", reps)
	}
	if reps[0].Live || !reps[1].Live {
		t.Fatalf("liveness = %v/%v, want false/true", reps[0].Live, reps[1].Live)
	}
}

// Replay equivalence under compaction: the view of the store after Compact
// matches the pre-compaction view for every surviving job, from a fresh
// handle that never saw the original WAL.
func TestCompactionReplayEquivalence(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	s := openTestStore(t, dir, clock)

	// A mix of states: finished jobs beyond retention, a running job, a
	// queued job.
	for i := 0; i < 6; i++ {
		rec, err := s.SubmitJob("k", []byte(`{"n":1}`))
		if err != nil {
			t.Fatalf("SubmitJob: %v", err)
		}
		if i < 4 {
			if _, ok, _ := s.Claim("r1", time.Second); !ok {
				t.Fatal("claim failed")
			}
			if err := s.Complete(rec.ID, "r1", "out", nil); err != nil {
				t.Fatalf("Complete: %v", err)
			}
		}
	}
	if _, ok, _ := s.Claim("r1", time.Hour); !ok { // 5th job now running
		t.Fatal("claim failed")
	}

	before, err := s.Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}

	if err := s.Compact(2); err != nil {
		t.Fatalf("Compact: %v", err)
	}

	// Retention: 4 finished, keep the newest 2, plus running + queued.
	after, err := s.Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	if len(after) != 4 {
		t.Fatalf("after compaction: %d jobs, want 4", len(after))
	}
	surviving := make(map[string]JobRecord)
	for _, j := range after {
		surviving[j.ID] = j
	}
	for _, b := range before[2:] { // oldest two finished jobs were pruned
		got, ok := surviving[b.ID]
		if !ok {
			t.Fatalf("job %s lost in compaction", b.ID)
		}
		if !reflect.DeepEqual(jsonRound(t, got), jsonRound(t, b)) {
			t.Fatalf("job %s changed across compaction:\n got %+v\nwant %+v", b.ID, got, b)
		}
	}

	// The WAL restarted empty and the old generation's files are gone.
	if size, _ := s.WALSize(); size != 0 {
		t.Fatalf("post-compaction WAL size = %d, want 0", size)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-0.log")); !os.IsNotExist(err) {
		t.Fatalf("old WAL still present: %v", err)
	}

	// A fresh handle — replaying only snapshot + empty WAL — sees the same
	// surviving jobs, and the pool still works (ongoing sequence numbers
	// never collide with pruned IDs).
	s2 := openTestStore(t, dir, clock)
	fresh, err := s2.Jobs()
	if err != nil {
		t.Fatalf("fresh Jobs: %v", err)
	}
	if !reflect.DeepEqual(jsonRound(t, fresh), jsonRound(t, after)) {
		t.Fatalf("fresh handle replay differs:\n got %+v\nwant %+v", fresh, after)
	}
	rec, err := s2.SubmitJob("k2", nil)
	if err != nil {
		t.Fatalf("post-compaction submit: %v", err)
	}
	for _, j := range fresh {
		if j.ID == rec.ID {
			t.Fatalf("new job ID %s collides with a survivor", rec.ID)
		}
	}
}

// jsonRound normalises a value through JSON so time.Time monotonic-clock
// readings and map iteration cannot produce spurious diffs.
func jsonRound(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(data)
}

// A torn tail on disk — garbage after the last synced frame — must not
// poison the log: a new handle replays up to the tear, and the next append
// heals it by truncation.
func TestTornTailHealing(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	s := openTestStore(t, dir, clock)
	if _, err := s.SubmitJob("a", nil); err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	s.Close()

	wal := filepath.Join(dir, "wal-0.log")
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	if _, err := f.Write([]byte("\x42garbage-from-a-crashed-writer")); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	f.Close()

	s2 := openTestStore(t, dir, clock)
	jobs, err := s2.Jobs()
	if err != nil {
		t.Fatalf("Jobs over torn tail: %v", err)
	}
	if len(jobs) != 1 {
		t.Fatalf("replayed %d jobs, want 1", len(jobs))
	}
	if _, err := s2.SubmitJob("b", nil); err != nil {
		t.Fatalf("append over torn tail: %v", err)
	}

	// After the healing append, a third handle sees both jobs — the
	// garbage is gone from the file, not just skipped.
	s3 := openTestStore(t, dir, clock)
	jobs, err = s3.Jobs()
	if err != nil {
		t.Fatalf("Jobs after heal: %v", err)
	}
	if len(jobs) != 2 {
		t.Fatalf("after heal: %d jobs, want 2", len(jobs))
	}
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	if strings.Contains(string(data), "garbage-from-a-crashed-writer") {
		t.Fatal("torn tail still present in the WAL after append")
	}
}

// Cross-handle visibility without reopening: two live handles interleave
// writes, each seeing the other's through the shared log.
func TestTwoHandlesInterleave(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	a := openTestStore(t, dir, clock)
	b := openTestStore(t, dir, clock)

	rec, err := a.SubmitJob("k", nil)
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	got, ok, err := b.Claim("rb", time.Second)
	if err != nil || !ok || got.ID != rec.ID {
		t.Fatalf("b.Claim: ok=%v err=%v id=%v", ok, err, got.ID)
	}
	if err := b.Complete(rec.ID, "rb", "done by b", nil); err != nil {
		t.Fatalf("b.Complete: %v", err)
	}
	j, ok, err := a.Job(rec.ID)
	if err != nil || !ok {
		t.Fatalf("a.Job: ok=%v err=%v", ok, err)
	}
	if j.State != StateDone || j.Output != "done by b" {
		t.Fatalf("a sees %+v", j)
	}

	// And across a compaction by one handle, the other follows the
	// generation flip.
	if err := b.Compact(1); err != nil {
		t.Fatalf("b.Compact: %v", err)
	}
	rec2, err := a.SubmitJob("k2", nil)
	if err != nil {
		t.Fatalf("a.SubmitJob after b's compaction: %v", err)
	}
	j2, ok, err := b.Job(rec2.ID)
	if err != nil || !ok {
		t.Fatalf("b.Job after gen flip: ok=%v err=%v", ok, err)
	}
	if j2.State != StateQueued {
		t.Fatalf("b sees %+v", j2)
	}
}
