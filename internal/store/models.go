package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/dag"
	"repro/internal/perfmodel"
)

// The model-cache facet: one JSON file per fitted (environment, seed)
// campaign under <dir>/models/, written atomically via rename. Files are
// self-describing and deterministic for a given fit, so concurrent saves by
// racing replicas are idempotent and need no locking; a corrupt or
// unreadable file is treated as a miss and simply refitted.

// taskPoint is one profiled (kernel, n, p) measurement on the wire.
// map[perfmodel.TaskKey]float64 cannot round-trip through encoding/json
// (struct keys), so the profile ships as a sorted array.
type taskPoint struct {
	Kernel int     `json:"kernel"`
	N      int     `json:"n"`
	P      int     `json:"p"`
	T      float64 `json:"t"`
}

// profileWire is the wire form of perfmodel.ProfileData.
type profileWire struct {
	TaskTimes   []taskPoint     `json:"task_times"`
	Startup     map[int]float64 `json:"startup"`
	RedistByDst map[int]float64 `json:"redist_by_dst"`
}

// modelFile is one durable model-cache entry.
type modelFile struct {
	Environment string               `json:"environment"`
	Seed        int64                `json:"seed"`
	BuildMillis float64              `json:"build_millis"`
	SavedAt     time.Time            `json:"saved_at"`
	Profile     *profileWire         `json:"profile"`
	Empirical   *perfmodel.Empirical `json:"empirical"`
}

// ModelKeyInfo names one cached fit.
type ModelKeyInfo struct {
	Environment string
	Seed        int64
}

// modelFileName encodes (env, seed) into a stable, filesystem-safe name.
// Environment names are operator- or campaign-derived strings; any byte
// outside [A-Za-z0-9._-] is %XX-escaped.
func modelFileName(env string, seed int64) string {
	var b strings.Builder
	for i := 0; i < len(env); i++ {
		c := env[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return fmt.Sprintf("%s@%d.json", b.String(), seed)
}

func (s *Store) modelPath(env string, seed int64) string {
	return filepath.Join(s.dir, "models", modelFileName(env, seed))
}

// SaveModels persists a fitted campaign's profile and empirical models.
func (s *Store) SaveModels(env string, seed int64, prof *perfmodel.Profile, emp *perfmodel.Empirical, buildMillis float64) error {
	wire := &profileWire{
		Startup:     prof.Data.Startup,
		RedistByDst: prof.Data.RedistByDst,
	}
	for k, t := range prof.Data.TaskTimes {
		wire.TaskTimes = append(wire.TaskTimes, taskPoint{Kernel: int(k.Kernel), N: k.N, P: k.P, T: t})
	}
	sort.Slice(wire.TaskTimes, func(a, b int) bool {
		ta, tb := wire.TaskTimes[a], wire.TaskTimes[b]
		if ta.Kernel != tb.Kernel {
			return ta.Kernel < tb.Kernel
		}
		if ta.N != tb.N {
			return ta.N < tb.N
		}
		return ta.P < tb.P
	})
	data, err := json.MarshalIndent(modelFile{
		Environment: env, Seed: seed, BuildMillis: buildMillis,
		SavedAt: s.now().UTC(), Profile: wire, Empirical: emp,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("store: models: %w", err)
	}
	if err := writeFileAtomic(s.modelPath(env, seed), data); err != nil {
		return fmt.Errorf("store: models: %w", err)
	}
	return nil
}

// LoadModels loads a cached fit. A missing, corrupt or mismatched file is a
// cache miss (ok=false), never an error: the caller refits and overwrites.
func (s *Store) LoadModels(env string, seed int64) (*perfmodel.Profile, *perfmodel.Empirical, bool) {
	data, err := os.ReadFile(s.modelPath(env, seed))
	if err != nil {
		return nil, nil, false
	}
	var mf modelFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return nil, nil, false
	}
	if mf.Environment != env || mf.Seed != seed || mf.Profile == nil || mf.Empirical == nil {
		return nil, nil, false
	}
	pd := perfmodel.NewProfileData()
	for _, tp := range mf.Profile.TaskTimes {
		pd.TaskTimes[perfmodel.TaskKey{Kernel: dag.Kernel(tp.Kernel), N: tp.N, P: tp.P}] = tp.T
	}
	for p, v := range mf.Profile.Startup {
		pd.Startup[p] = v
	}
	for p, v := range mf.Profile.RedistByDst {
		pd.RedistByDst[p] = v
	}
	prof, err := perfmodel.NewProfile(pd)
	if err != nil {
		return nil, nil, false
	}
	return prof, mf.Empirical, true
}

// ModelKeys lists every cached fit, sorted by environment then seed.
func (s *Store) ModelKeys() []ModelKeyInfo {
	entries, err := os.ReadDir(filepath.Join(s.dir, "models"))
	if err != nil {
		return nil
	}
	var out []ModelKeyInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		// Decode "<escaped-env>@<seed>.json"; files that do not parse are
		// someone else's and are skipped.
		base := strings.TrimSuffix(name, ".json")
		at := strings.LastIndex(base, "@")
		if at < 0 {
			continue
		}
		seed, err := strconv.ParseInt(base[at+1:], 10, 64)
		if err != nil {
			continue
		}
		env, ok := unescapeModelName(base[:at])
		if !ok {
			continue
		}
		out = append(out, ModelKeyInfo{Environment: env, Seed: seed})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Environment != out[b].Environment {
			return out[a].Environment < out[b].Environment
		}
		return out[a].Seed < out[b].Seed
	})
	return out
}

// unescapeModelName reverses modelFileName's %XX escaping.
func unescapeModelName(s string) (string, bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			b.WriteByte(s[i])
			continue
		}
		if i+2 >= len(s) {
			return "", false
		}
		v, err := strconv.ParseUint(s[i+1:i+3], 16, 8)
		if err != nil {
			return "", false
		}
		b.WriteByte(byte(v))
		i += 2
	}
	return b.String(), true
}
