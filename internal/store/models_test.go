package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/regression"
)

// testProfile builds a small but valid measured profile.
func testProfile(t *testing.T) *perfmodel.Profile {
	t.Helper()
	pd := perfmodel.NewProfileData()
	for p := 1; p <= 4; p++ {
		pd.TaskTimes[perfmodel.TaskKey{Kernel: dag.KernelMul, N: 2000, P: p}] = 10.0 / float64(p)
		pd.TaskTimes[perfmodel.TaskKey{Kernel: dag.KernelAdd, N: 2000, P: p}] = 1.0 / float64(p)
		pd.Startup[p] = 0.1 * float64(p)
		pd.RedistByDst[p] = 0.2 * float64(p)
	}
	prof, err := perfmodel.NewProfile(pd)
	if err != nil {
		t.Fatalf("NewProfile: %v", err)
	}
	return prof
}

// testEmpirical builds a small empirical model from real fits.
func testEmpirical(t *testing.T) *perfmodel.Empirical {
	t.Helper()
	xs := []float64{1, 2, 4, 8, 16, 24, 32}
	inv := make([]float64, len(xs))
	lin := make([]float64, len(xs))
	for i, x := range xs {
		inv[i] = 12.0/x + 0.5
		lin[i] = 0.03*x + 0.2
	}
	pw, err := regression.FitPiecewise(xs, inv, regression.Inverse, 16, 16)
	if err != nil {
		t.Fatalf("FitPiecewise: %v", err)
	}
	return &perfmodel.Empirical{
		MulFits:    map[int]regression.Piecewise{2000: pw},
		AddFits:    map[int]regression.Fit{2000: regression.MustFit(xs, inv, regression.Inverse)},
		StartupFit: regression.MustFit(xs, lin, regression.Linear),
		RedistFit:  regression.MustFit(xs, lin, regression.Linear),
	}
}

func TestModelsRoundTrip(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	s := openTestStore(t, dir, clock)

	prof := testProfile(t)
	emp := testEmpirical(t)
	if err := s.SaveModels("bayreuth", 42, prof, emp, 123.4); err != nil {
		t.Fatalf("SaveModels: %v", err)
	}

	// A different handle loads the same models; compare through JSON (Fit
	// holds an unexported basis func, which DeepEqual cannot compare).
	s2 := openTestStore(t, dir, clock)
	gotProf, gotEmp, ok := s2.LoadModels("bayreuth", 42)
	if !ok {
		t.Fatal("LoadModels: miss, want hit")
	}
	if !reflect.DeepEqual(gotProf.Data, prof.Data) {
		t.Fatalf("profile data changed across save/load:\n got %+v\nwant %+v", gotProf.Data, prof.Data)
	}
	wantEmp, _ := json.Marshal(emp)
	haveEmp, _ := json.Marshal(gotEmp)
	if string(wantEmp) != string(haveEmp) {
		t.Fatalf("empirical changed across save/load:\n got %s\nwant %s", haveEmp, wantEmp)
	}
	// The loaded model predicts: its fits carry live basis functions.
	task := &dag.Task{Kernel: dag.KernelMul, N: 2000}
	if got, want := gotEmp.TaskTime(task, 4), emp.TaskTime(task, 4); got != want {
		t.Fatalf("loaded empirical predicts %v, want %v", got, want)
	}

	keys := s2.ModelKeys()
	want := []ModelKeyInfo{{Environment: "bayreuth", Seed: 42}}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("ModelKeys = %+v, want %+v", keys, want)
	}
}

// Corruption of any cached file is a miss, never an error.
func TestModelsCorruptionIsMiss(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	s := openTestStore(t, dir, clock)
	if err := s.SaveModels("bayreuth", 7, testProfile(t), testEmpirical(t), 1); err != nil {
		t.Fatalf("SaveModels: %v", err)
	}
	path := filepath.Join(dir, "models", modelFileName("bayreuth", 7))
	if err := os.WriteFile(path, []byte(`{"environment":"bayreuth","seed":`), 0o644); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	if _, _, ok := s.LoadModels("bayreuth", 7); ok {
		t.Fatal("LoadModels returned a hit on a truncated file")
	}
	if _, _, ok := s.LoadModels("bayreuth", 8); ok {
		t.Fatal("LoadModels returned a hit for a never-saved seed")
	}
}

// Environment names with hostile bytes survive the filename escaping.
func TestModelFileNameEscaping(t *testing.T) {
	clock := newFakeClock()
	s := openTestStore(t, t.TempDir(), clock)
	env := "scaled/64 nodes@2x"
	if err := s.SaveModels(env, -3, testProfile(t), testEmpirical(t), 1); err != nil {
		t.Fatalf("SaveModels: %v", err)
	}
	if _, _, ok := s.LoadModels(env, -3); !ok {
		t.Fatal("LoadModels miss for escaped environment name")
	}
	keys := s.ModelKeys()
	if len(keys) != 1 || keys[0].Environment != env || keys[0].Seed != -3 {
		t.Fatalf("ModelKeys = %+v", keys)
	}
}
