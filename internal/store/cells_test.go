package store

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
)

// planShardedJob submits a job, claims it as coordinator, and plans n cells.
func planShardedJob(t *testing.T, s *Store, coordinator string, n int) JobRecord {
	t.Helper()
	rec, err := s.SubmitJob("campaign", []byte(`{"grid":true}`))
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	claimed, ok, err := s.Claim(coordinator, time.Minute)
	if err != nil || !ok || claimed.ID != rec.ID {
		t.Fatalf("Claim = %+v, %v, %v", claimed, ok, err)
	}
	if err := s.PlanCells(rec.ID, n); err != nil {
		t.Fatalf("PlanCells: %v", err)
	}
	return claimed
}

func TestCellLifecycle(t *testing.T) {
	clock := newFakeClock()
	s := openTestStore(t, t.TempDir(), clock)
	job := planShardedJob(t, s, "alpha", 3)

	cells, ok, err := s.Cells(job.ID)
	if err != nil || !ok || len(cells) != 3 {
		t.Fatalf("Cells = %v, %v, %v", cells, ok, err)
	}
	for i, c := range cells {
		if c.State != StateQueued || c.Index != i || c.Job != job.ID {
			t.Fatalf("cell %d = %+v", i, c)
		}
	}

	// Claim → renew with progress → complete, chaining to the next cell so
	// all three drain through a single claim plus two batched follow-ups.
	cell, ok, err := s.ClaimCell("alpha", time.Minute, "")
	if err != nil || !ok || cell.Index != 0 {
		t.Fatalf("ClaimCell = %+v, %v, %v", cell, ok, err)
	}
	snap := &obs.ProgressSnapshot{TrialsUsed: 7, TrialBudget: 10}
	if err := s.RenewCell(job.ID, 0, "alpha", time.Minute, snap); err != nil {
		t.Fatalf("RenewCell: %v", err)
	}
	sum, ok, err := s.CellSummary(job.ID)
	if err != nil || !ok || sum.Total != 3 || sum.Done != 0 || sum.TrialsUsed != 7 || sum.TrialBudget != 10 {
		t.Fatalf("CellSummary = %+v, %v, %v", sum, ok, err)
	}
	for i := 0; i < 3; i++ {
		frame := []byte(fmt.Sprintf("frame-%d", i))
		next, more, err := s.CompleteCellAndClaim(job.ID, i, "alpha", frame, "", nil, true, "", time.Minute)
		if err != nil {
			t.Fatalf("CompleteCellAndClaim(%d): %v", i, err)
		}
		if i < 2 && (!more || next.Index != i+1) {
			t.Fatalf("chained claim after %d = %+v, %v", i, next, more)
		}
		if i == 2 && more {
			t.Fatalf("claimed a cell past the end of the plan: %+v", next)
		}
	}
	results, err := s.CellResults(job.ID)
	if err != nil || len(results) != 3 {
		t.Fatalf("CellResults = %v, %v", results, err)
	}
	for i, frame := range results {
		if want := fmt.Sprintf("frame-%d", i); string(frame) != want {
			t.Fatalf("result %d = %q, want %q", i, frame, want)
		}
	}
}

func TestPlanCellsIdempotentAndFenced(t *testing.T) {
	clock := newFakeClock()
	s := openTestStore(t, t.TempDir(), clock)
	job := planShardedJob(t, s, "alpha", 4)

	// Replanning with the same n (a restarted coordinator) is a no-op.
	if err := s.PlanCells(job.ID, 4); err != nil {
		t.Fatalf("idempotent replan: %v", err)
	}
	// A different n means two coordinators disagree on the grid: reject.
	if err := s.PlanCells(job.ID, 5); err == nil {
		t.Fatal("replan with a different cell count succeeded")
	}
	// Planning a terminal job is rejected.
	if err := s.Fail(job.ID, "alpha", "boom"); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	if err := s.PlanCells(job.ID, 4); err == nil {
		t.Fatal("planned cells for a failed job")
	}
}

func TestCellReclaimAfterExpiry(t *testing.T) {
	clock := newFakeClock()
	s := openTestStore(t, t.TempDir(), clock)
	job := planShardedJob(t, s, "alpha", 1)

	cell, ok, err := s.ClaimCell("alpha", time.Minute, "")
	if err != nil || !ok {
		t.Fatalf("ClaimCell = %v, %v", ok, err)
	}
	if err := s.RenewCell(job.ID, 0, "alpha", time.Minute, &obs.ProgressSnapshot{TrialsUsed: 3}); err != nil {
		t.Fatalf("RenewCell: %v", err)
	}
	// While the lease is live, no other replica can take the cell.
	if _, ok, _ := s.ClaimCell("beta", time.Minute, ""); ok {
		t.Fatal("claimed a cell under a live lease")
	}
	clock.Advance(2 * time.Minute)
	taken, ok, err := s.ClaimCell("beta", time.Minute, "")
	if err != nil || !ok || taken.Index != cell.Index {
		t.Fatalf("reclaim = %+v, %v, %v", taken, ok, err)
	}
	cells, _, _ := s.Cells(job.ID)
	if cells[0].Holder != "beta" || cells[0].Restarts != 1 {
		t.Fatalf("reclaimed cell = %+v", cells[0])
	}
	// The takeover restarts the cell: the loser's partial progress is gone.
	if cells[0].Progress != nil {
		t.Fatalf("progress survived reclaim: %+v", cells[0].Progress)
	}
	// The loser's renewal is fenced off.
	if err := s.RenewCell(job.ID, 0, "alpha", time.Minute, nil); err != ErrLeaseLost {
		t.Fatalf("stale renew = %v, want ErrLeaseLost", err)
	}
}

func TestCellResultFirstWriteWins(t *testing.T) {
	clock := newFakeClock()
	s := openTestStore(t, t.TempDir(), clock)
	job := planShardedJob(t, s, "alpha", 1)

	if _, ok, _ := s.ClaimCell("alpha", time.Minute, ""); !ok {
		t.Fatal("claim failed")
	}
	clock.Advance(2 * time.Minute)
	if _, ok, _ := s.ClaimCell("beta", time.Minute, ""); !ok {
		t.Fatal("reclaim failed")
	}
	// The reclaimed (revived) original holder finishes first: deterministic
	// execution makes its frame correct, so the store accepts it even though
	// beta holds the lease now.
	if _, _, err := s.CompleteCellAndClaim(job.ID, 0, "alpha", []byte("frame"), "", nil, false, "", 0); err != nil {
		t.Fatalf("revived holder's completion: %v", err)
	}
	// Beta's duplicate (byte-identical in real runs) is silently ignored.
	if _, _, err := s.CompleteCellAndClaim(job.ID, 0, "beta", []byte("frame"), "", nil, false, "", 0); err != nil {
		t.Fatalf("duplicate completion: %v", err)
	}
	cells, _, _ := s.Cells(job.ID)
	if cells[0].State != StateDone || cells[0].Holder != "alpha" || !bytes.Equal(cells[0].Result, []byte("frame")) {
		t.Fatalf("cell after duplicate completions = %+v", cells[0])
	}
}

func TestCellReleaseRequeuesImmediately(t *testing.T) {
	clock := newFakeClock()
	s := openTestStore(t, t.TempDir(), clock)
	job := planShardedJob(t, s, "alpha", 1)

	if _, ok, _ := s.ClaimCell("alpha", time.Hour, ""); !ok {
		t.Fatal("claim failed")
	}
	if err := s.ReleaseCell(job.ID, 0, "alpha"); err != nil {
		t.Fatalf("ReleaseCell: %v", err)
	}
	// No expiry wait: the released cell is claimable right now.
	cell, ok, err := s.ClaimCell("beta", time.Minute, "")
	if err != nil || !ok || cell.Index != 0 {
		t.Fatalf("claim after release = %+v, %v, %v", cell, ok, err)
	}
}

func TestTerminalJobDropsCells(t *testing.T) {
	clock := newFakeClock()
	s := openTestStore(t, t.TempDir(), clock)
	job := planShardedJob(t, s, "alpha", 2)

	if _, ok, _ := s.ClaimCell("beta", time.Minute, ""); !ok {
		t.Fatal("claim failed")
	}
	if err := s.Complete(job.ID, "alpha", "report", nil); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if _, ok, _ := s.Cells(job.ID); ok {
		t.Fatal("terminal job still has a cell plan")
	}
	// A worker still executing one of the dropped cells is fenced off at its
	// next renewal, which is how it learns the job is over.
	if err := s.RenewCell(job.ID, 0, "beta", time.Minute, nil); err != ErrLeaseLost {
		t.Fatalf("renew after job completion = %v, want ErrLeaseLost", err)
	}
}

func TestCellsSurviveCrashReplayAndCompaction(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	s := openTestStore(t, dir, clock)
	job := planShardedJob(t, s, "alpha", 2)
	if _, ok, _ := s.ClaimCell("alpha", time.Minute, ""); !ok {
		t.Fatal("claim failed")
	}
	if _, _, err := s.CompleteCellAndClaim(job.ID, 0, "alpha", []byte("frame-0"), "", nil, false, "", 0); err != nil {
		t.Fatalf("complete: %v", err)
	}

	// A second handle on the same directory — another replica, or this one
	// after a crash — replays the WAL to the same cell state.
	s2 := openTestStore(t, dir, clock)
	cells, ok, err := s2.Cells(job.ID)
	if err != nil || !ok || len(cells) != 2 {
		t.Fatalf("replayed Cells = %v, %v, %v", cells, ok, err)
	}
	if cells[0].State != StateDone || string(cells[0].Result) != "frame-0" || cells[1].State != StateQueued {
		t.Fatalf("replayed cells = %+v", cells)
	}

	// Compaction carries a live job's cells into the snapshot generation.
	if err := s.Compact(8); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	s3 := openTestStore(t, dir, clock)
	cells, ok, err = s3.Cells(job.ID)
	if err != nil || !ok || len(cells) != 2 || string(cells[0].Result) != "frame-0" {
		t.Fatalf("compacted Cells = %v, %v, %v", cells, ok, err)
	}
}

func TestChangeStampMovesOnAppend(t *testing.T) {
	clock := newFakeClock()
	s := openTestStore(t, t.TempDir(), clock)

	before, err := s.ChangeStamp()
	if err != nil {
		t.Fatalf("ChangeStamp: %v", err)
	}
	if _, err := s.SubmitJob("campaign", nil); err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	after, err := s.ChangeStamp()
	if err != nil {
		t.Fatalf("ChangeStamp: %v", err)
	}
	if after == before {
		t.Fatalf("stamp did not move across an append: %+v", after)
	}
	// Compaction bumps the generation even though the fresh WAL is empty.
	if err := s.Compact(8); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	compacted, err := s.ChangeStamp()
	if err != nil {
		t.Fatalf("ChangeStamp: %v", err)
	}
	if compacted.Gen <= after.Gen {
		t.Fatalf("generation did not advance: %+v -> %+v", after, compacted)
	}
}
