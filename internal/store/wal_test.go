package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
)

func collectFrames(t *testing.T, data []byte) ([][]byte, int) {
	t.Helper()
	var out [][]byte
	n, err := replayFrames(data, func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replayFrames: %v", err)
	}
	return out, n
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("a"),
		[]byte(""),
		[]byte(`{"seq":1,"type":"submit"}`),
		bytes.Repeat([]byte{0xff, 0x00}, 500),
	}
	var log []byte
	for _, p := range payloads {
		log = appendFrame(log, p)
	}
	got, n := collectFrames(t, log)
	if n != len(log) {
		t.Fatalf("consumed %d of %d bytes", n, len(log))
	}
	if len(got) != len(payloads) {
		t.Fatalf("replayed %d frames, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("frame %d: got %q want %q", i, got[i], payloads[i])
		}
	}
}

// A truncated log replays exactly the frames whose bytes survived intact,
// whatever the cut point.
func TestTornTailEveryCut(t *testing.T) {
	var log []byte
	var ends []int // byte offset at which frame i ends
	for i := 0; i < 4; i++ {
		log = appendFrame(log, []byte(fmt.Sprintf("payload-%d", i)))
		ends = append(ends, len(log))
	}
	for cut := 0; cut <= len(log); cut++ {
		whole := 0
		for _, e := range ends {
			if e <= cut {
				whole++
			}
		}
		got, n := collectFrames(t, log[:cut])
		if len(got) != whole {
			t.Fatalf("cut %d: replayed %d frames, want %d", cut, len(got), whole)
		}
		if whole > 0 && n != ends[whole-1] {
			t.Fatalf("cut %d: consumed %d bytes, want %d", cut, n, ends[whole-1])
		}
	}
}

// A corrupted byte anywhere in a frame stops replay at the previous frame
// boundary; earlier frames stay trusted.
func TestCorruptFrameStopsReplay(t *testing.T) {
	var log []byte
	log = appendFrame(log, []byte("first"))
	boundary := len(log)
	log = appendFrame(log, []byte("second"))
	log = appendFrame(log, []byte("third"))
	for off := boundary; off < len(log); off++ {
		mutated := append([]byte(nil), log...)
		mutated[off] ^= 0x01
		got, n := collectFrames(t, mutated)
		if len(got) < 1 || !bytes.Equal(got[0], []byte("first")) {
			t.Fatalf("offset %d: first frame lost", off)
		}
		// The corruption can never surface a phantom record, only shorten
		// the replay.
		for _, p := range got {
			switch string(p) {
			case "first", "second", "third":
			default:
				t.Fatalf("offset %d: phantom record %q", off, p)
			}
		}
		if n > len(mutated) {
			t.Fatalf("offset %d: consumed %d > len %d", off, n, len(mutated))
		}
	}
}

// An absurd length field must not make replay over-consume.
func TestHugeLengthField(t *testing.T) {
	var log []byte
	log = appendFrame(log, []byte("ok"))
	hdr := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(hdr[0:4], maxFramePayload+1)
	log = append(log, hdr...)
	got, _ := collectFrames(t, log)
	if len(got) != 1 {
		t.Fatalf("replayed %d frames, want 1", len(got))
	}
}

func TestReplayPropagatesFnError(t *testing.T) {
	var log []byte
	log = appendFrame(log, []byte("a"))
	boundary := len(log)
	log = appendFrame(log, []byte("b"))
	calls := 0
	n, err := replayFrames(log, func(p []byte) error {
		calls++
		if string(p) == "b" {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("fn called %d times, want 2", calls)
	}
	if n != boundary {
		t.Fatalf("consumed %d bytes, want %d (up to the failing record)", n, boundary)
	}
}
