package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
)

// Job states, shared with the service layer (which aliases them into its
// JobState type).
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// terminal reports whether a job can no longer change.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// JobRecord is the durable view of one job in the shared pool.
type JobRecord struct {
	ID      string          `json:"id"`
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload,omitempty"`
	State   string          `json:"state"`
	Created time.Time       `json:"created"`
	Started *time.Time      `json:"started,omitempty"`
	Ended   *time.Time      `json:"ended,omitempty"`
	Output  string          `json:"output,omitempty"`
	Error   string          `json:"error,omitempty"`
	// Progress is the last snapshot the holder renewed with.
	Progress *obs.ProgressSnapshot `json:"progress,omitempty"`
	// Holder is the replica holding (or, once finished, the one that held)
	// the job's lease; LeaseExpiry is when that lease lapses. A running job
	// whose lease expired is claimable by any replica — sticky claim
	// ordering prefers Holder itself when it comes back.
	Holder      string    `json:"holder,omitempty"`
	LeaseExpiry time.Time `json:"lease_expiry,omitempty"`
	// Restarts counts lease takeovers: how many times the job was reclaimed
	// from an expired holder and restarted elsewhere.
	Restarts int `json:"restarts,omitempty"`
}

// record is one WAL entry.
type record struct {
	Seq  uint64 `json:"seq"`
	T    int64  `json:"t"`
	Type string `json:"type"`

	Job     string                `json:"job,omitempty"`
	Kind    string                `json:"kind,omitempty"`
	Payload json.RawMessage       `json:"payload,omitempty"`
	State   string                `json:"state,omitempty"`
	Holder  string                `json:"holder,omitempty"`
	Expiry  int64                 `json:"expiry,omitempty"`
	Output  string                `json:"output,omitempty"`
	Error   string                `json:"error,omitempty"`
	Prog    *obs.ProgressSnapshot `json:"progress,omitempty"`

	// Cell-sharding fields: the cell index a record addresses, the plan's
	// cell count (recCellPlan), and an opaque serialized cell result
	// (recCellDone; JSON encodes it as base64 inside the frame).
	Cell  int    `json:"cell,omitempty"`
	CellN int    `json:"cells,omitempty"`
	Data  []byte `json:"data,omitempty"`
}

// Record types.
const (
	recSubmit  = "submit"  // new job enters the pool, queued
	recClaim   = "claim"   // lease written: (job, holder, expiry), job runs
	recRenew   = "renew"   // lease extended, progress snapshot piggybacked
	recState   = "state"   // terminal transition: done / failed / cancelled
	recRelease = "release" // graceful give-back: job returns to queued
	recReplica = "replica" // replica registration heartbeat

	// Cell-sharding record types; state machine in cells.go.
	recCellPlan    = "cellplan"    // coordinator materialises N queued cells
	recCellClaim   = "cellclaim"   // cell lease written: (job, cell, holder, expiry)
	recCellRenew   = "cellrenew"   // cell lease extended, progress piggybacked
	recCellDone    = "celldone"    // cell result frame (first write wins)
	recCellRelease = "cellrelease" // graceful give-back: cell returns to queued
)

// applyLocked folds one record into the in-memory state. Records written by
// any replica flow through here — both at append time and at replay — so
// the state machine is defined in exactly one place.
func (s *Store) applyLocked(rec *record) {
	// Replay must restore the sequence counter, or a handle that only ever
	// replayed (never appended) would mint duplicate sequence numbers — and
	// with them duplicate job IDs that dedup against existing jobs, silently
	// swallowing submissions.
	if rec.Seq > s.st.seq {
		s.st.seq = rec.Seq
	}
	switch rec.Type {
	case recSubmit:
		if _, ok := s.st.jobs[rec.Job]; ok {
			return
		}
		s.st.jobs[rec.Job] = &JobRecord{
			ID:      rec.Job,
			Kind:    rec.Kind,
			Payload: rec.Payload,
			State:   StateQueued,
			Created: time.Unix(0, rec.T),
		}
		s.st.order = append(s.st.order, rec.Job)
	case recClaim:
		j, ok := s.st.jobs[rec.Job]
		if !ok || terminal(j.State) {
			return
		}
		if j.Holder != "" && j.Holder != rec.Holder {
			j.Restarts++
		}
		j.Holder = rec.Holder
		j.LeaseExpiry = time.Unix(0, rec.Expiry)
		j.State = StateRunning
		t := time.Unix(0, rec.T)
		j.Started = &t
	case recRenew:
		j, ok := s.st.jobs[rec.Job]
		if !ok || j.State != StateRunning || j.Holder != rec.Holder {
			return
		}
		j.LeaseExpiry = time.Unix(0, rec.Expiry)
		if rec.Prog != nil {
			p := *rec.Prog
			j.Progress = &p
		}
	case recState:
		j, ok := s.st.jobs[rec.Job]
		if !ok || terminal(j.State) {
			return
		}
		if j.State == StateRunning && rec.Holder != j.Holder {
			return // stale write from a holder whose lease was taken over
		}
		j.State = rec.State
		t := time.Unix(0, rec.T)
		j.Ended = &t
		j.Output = rec.Output
		j.Error = rec.Error
		if rec.Prog != nil {
			p := *rec.Prog
			j.Progress = &p
		}
		// A terminal job's cells are dead weight: the coordinator gathered
		// every result before writing this record, so drop them here — on
		// the writer and on every replayer alike.
		delete(s.st.cells, rec.Job)
	case recRelease:
		j, ok := s.st.jobs[rec.Job]
		if !ok || j.State != StateRunning || j.Holder != rec.Holder {
			return
		}
		// Back to the queue with an already-expired lease: immediately
		// claimable by anyone, sticky to the departing holder if it returns
		// first.
		j.State = StateQueued
		j.LeaseExpiry = time.Unix(0, rec.T)
		j.Started = nil
	case recReplica:
		s.st.replicas[rec.Holder] = rec.Expiry
	case recCellPlan, recCellClaim, recCellRenew, recCellDone, recCellRelease:
		s.applyCellLocked(rec)
	}
}

// ErrLeaseLost is returned by Renew, Complete and Fail when the caller no
// longer holds the job's lease — another replica reclaimed it after expiry.
// The caller must abandon the job: its result would be a duplicate of (or a
// conflict with) the new holder's.
var ErrLeaseLost = errors.New("store: lease lost")

// SubmitJob appends a new job to the shared pool and returns its record.
func (s *Store) SubmitJob(kind string, payload []byte) (JobRecord, error) {
	var out JobRecord
	err := s.withLock(func() error {
		id := fmt.Sprintf("job-%d", s.st.seq+1)
		if err := s.appendLocked(&record{Type: recSubmit, Job: id, Kind: kind, Payload: payload}); err != nil {
			return err
		}
		out = *s.st.jobs[id]
		return nil
	})
	return out, err
}

// claimable reports whether a job is up for grabs at time now: queued with
// no live lease, or running with an expired lease (a crashed or wedged
// holder).
func claimable(j *JobRecord, now time.Time) bool {
	switch j.State {
	case StateQueued:
		return j.Holder == "" || !j.LeaseExpiry.After(now)
	case StateRunning:
		return !j.LeaseExpiry.After(now)
	}
	return false
}

// Claim hands the caller at most one claimable job, writing a lease
// (holder, now+ttl) for it. The claim order translates the IP-pool
// allocator's ORDER BY: jobs previously held by this holder first (sticky
// reassignment), then oldest lease expiry, then submission order. The bool
// reports whether a job was claimed.
func (s *Store) Claim(holder string, ttl time.Duration) (JobRecord, bool, error) {
	var out JobRecord
	claimed := false
	err := s.withLock(func() error {
		now := s.now()
		var best *JobRecord
		for _, id := range s.st.order {
			j := s.st.jobs[id]
			if !claimable(j, now) {
				continue
			}
			if best == nil || claimLess(j, best, holder) {
				best = j
			}
		}
		if best == nil {
			return nil
		}
		reclaim := best.Holder != "" && best.Holder != holder
		if err := s.appendLocked(&record{
			Type: recClaim, Job: best.ID, Holder: holder,
			Expiry: now.Add(ttl).UnixNano(),
		}); err != nil {
			return err
		}
		leaseClaims.Inc()
		if reclaim {
			leaseReclaims.Inc()
		}
		out = *best
		claimed = true
		return nil
	})
	return out, claimed, err
}

// claimLess orders claimable jobs for a holder: its own previous jobs
// first, then earlier lease expiry, then submission order. Jobs never
// leased sort by submission order within the "foreign" class (their zero
// expiry precedes any real one, matching "longest since anyone touched it").
func claimLess(a, b *JobRecord, holder string) bool {
	am, bm := a.Holder == holder, b.Holder == holder
	if am != bm {
		return am
	}
	if !a.LeaseExpiry.Equal(b.LeaseExpiry) {
		return a.LeaseExpiry.Before(b.LeaseExpiry)
	}
	return a.Created.Before(b.Created)
}

// Renew extends the caller's lease by ttl from now and records the job's
// latest progress snapshot (nil to leave it unchanged). It fails with
// ErrLeaseLost if another replica holds the lease.
func (s *Store) Renew(id, holder string, ttl time.Duration, prog *obs.ProgressSnapshot) error {
	return s.withLock(func() error {
		j, ok := s.st.jobs[id]
		if !ok {
			return fmt.Errorf("store: no such job %s", id)
		}
		if j.State != StateRunning || j.Holder != holder {
			return ErrLeaseLost
		}
		if err := s.appendLocked(&record{
			Type: recRenew, Job: id, Holder: holder,
			Expiry: s.now().Add(ttl).UnixNano(), Prog: prog,
		}); err != nil {
			return err
		}
		leaseRenewals.Inc()
		return nil
	})
}

// finishJob writes a terminal transition on behalf of holder.
func (s *Store) finishJob(id, holder, state, output, errMsg string, prog *obs.ProgressSnapshot) error {
	return s.withLock(func() error {
		j, ok := s.st.jobs[id]
		if !ok {
			return fmt.Errorf("store: no such job %s", id)
		}
		if terminal(j.State) || j.Holder != holder {
			return ErrLeaseLost
		}
		return s.appendLocked(&record{
			Type: recState, Job: id, Holder: holder, State: state,
			Output: output, Error: errMsg, Prog: prog,
		})
	})
}

// Complete marks a job done with its output.
func (s *Store) Complete(id, holder, output string, prog *obs.ProgressSnapshot) error {
	return s.finishJob(id, holder, StateDone, output, "", prog)
}

// Fail marks a job failed.
func (s *Store) Fail(id, holder, errMsg string) error {
	return s.finishJob(id, holder, StateFailed, "", errMsg, nil)
}

// Release gives a running job back to the queue — the graceful-shutdown
// path, so a draining replica's in-flight jobs restart promptly elsewhere
// instead of waiting out the lease.
func (s *Store) Release(id, holder string) error {
	return s.withLock(func() error {
		j, ok := s.st.jobs[id]
		if !ok {
			return fmt.Errorf("store: no such job %s", id)
		}
		if j.State != StateRunning || j.Holder != holder {
			return ErrLeaseLost
		}
		return s.appendLocked(&record{Type: recRelease, Job: id, Holder: holder})
	})
}

// Heartbeat registers the replica as live until now+ttl. Liveness is
// advisory — it feeds Replicas() and the cluster walkthrough, not the claim
// path (a claimant is live by virtue of claiming).
func (s *Store) Heartbeat(holder string, ttl time.Duration) error {
	return s.withLock(func() error {
		return s.appendLocked(&record{
			Type: recReplica, Holder: holder, Expiry: s.now().Add(ttl).UnixNano(),
		})
	})
}

// Job returns one job by ID, refreshed against the shared log.
func (s *Store) Job(id string) (JobRecord, bool, error) {
	var out JobRecord
	found := false
	err := s.withLock(func() error {
		if j, ok := s.st.jobs[id]; ok {
			out = *j
			found = true
		}
		return nil
	})
	return out, found, err
}

// Jobs returns every retained job in submission order.
func (s *Store) Jobs() ([]JobRecord, error) {
	var out []JobRecord
	err := s.withLock(func() error {
		out = make([]JobRecord, 0, len(s.st.order))
		for _, id := range s.st.order {
			out = append(out, *s.st.jobs[id])
		}
		return nil
	})
	return out, err
}

// Replicas lists registered replicas and whether their registration is
// still live, sorted by name.
func (s *Store) Replicas() ([]ReplicaInfo, error) {
	var out []ReplicaInfo
	err := s.withLock(func() error {
		now := s.now()
		for h, exp := range s.st.replicas {
			out = append(out, ReplicaInfo{
				Name: h, Live: time.Unix(0, exp).After(now), Expiry: time.Unix(0, exp),
			})
		}
		sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
		return nil
	})
	return out, err
}

// ReplicaInfo describes one registered replica.
type ReplicaInfo struct {
	Name   string    `json:"name"`
	Live   bool      `json:"live"`
	Expiry time.Time `json:"expiry"`
}

// Compact prunes finished jobs beyond retain (oldest first) and rewrites
// the store as a fresh snapshot generation with an empty WAL. Replay of the
// compacted store is equivalent to replay of the full log for every
// surviving job.
func (s *Store) Compact(retain int) error {
	return s.withLock(func() error { return s.compactLocked(retain) })
}

// WALSize reports the current generation's log size in bytes — the number
// compaction resets.
func (s *Store) WALSize() (int64, error) {
	var size int64
	err := s.withLock(func() error {
		fi, err := s.wal.Stat()
		if err != nil {
			return err
		}
		size = fi.Size()
		return nil
	})
	return size, err
}
