package store

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzWALReplay feeds arbitrary byte strings to the WAL replay path and
// checks the recovery contract on each: replay never panics, consumes only
// whole checksummed frames, is deterministic on its own prefix, and the
// healing append (truncate to the consumed prefix, add a frame) always
// yields a log that replays every prior record plus the new one. This is
// the property the crash-recovery harness relies on: whatever a dying
// writer leaves behind, the survivors parse the trusted prefix and write
// over the rest.
func FuzzWALReplay(f *testing.F) {
	// Seed the corpus with the interesting shapes: empty, a valid log, a
	// torn tail, a corrupted checksum, and a length field pointing past the
	// end. testdata/fuzz/FuzzWALReplay holds committed regression inputs.
	f.Add([]byte{})
	valid := appendFrame(appendFrame(nil, []byte(`{"seq":1,"type":"submit","job":"job-1"}`)), []byte(`{"seq":2,"type":"claim","job":"job-1","holder":"r1"}`))
	f.Add(valid)
	f.Add(valid[:len(valid)-7]) // torn mid-frame
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)
	overlong := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(overlong[0:4], 1<<30)
	f.Add(append(appendFrame(nil, []byte("x")), overlong...))

	f.Fuzz(func(t *testing.T, data []byte) {
		var payloads [][]byte
		consumed, err := replayFrames(data, func(p []byte) error {
			payloads = append(payloads, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("replay with non-failing fn returned error: %v", err)
		}
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}

		// Replay of the consumed prefix reproduces exactly the same records
		// — the prefix is self-delimiting, so recovery to the last
		// checksummed record is well defined.
		var again [][]byte
		consumed2, err := replayFrames(data[:consumed], func(p []byte) error {
			again = append(again, append([]byte(nil), p...))
			return nil
		})
		if err != nil || consumed2 != consumed || len(again) != len(payloads) {
			t.Fatalf("prefix replay diverged: consumed %d vs %d, %d vs %d records, err %v",
				consumed2, consumed, len(again), len(payloads), err)
		}
		for i := range payloads {
			if !bytes.Equal(again[i], payloads[i]) {
				t.Fatalf("prefix replay record %d differs", i)
			}
		}

		// Healing: truncating the tail and appending a new frame yields a
		// fully valid log — every prior record plus the appended one.
		healed := appendFrame(append([]byte(nil), data[:consumed]...), []byte("appended-after-heal"))
		var healedPayloads [][]byte
		consumed3, err := replayFrames(healed, func(p []byte) error {
			healedPayloads = append(healedPayloads, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("healed replay: %v", err)
		}
		if consumed3 != len(healed) {
			t.Fatalf("healed log not fully consumed: %d of %d", consumed3, len(healed))
		}
		if len(healedPayloads) != len(payloads)+1 {
			t.Fatalf("healed replay has %d records, want %d", len(healedPayloads), len(payloads)+1)
		}
		if !bytes.Equal(healedPayloads[len(healedPayloads)-1], []byte("appended-after-heal")) {
			t.Fatal("appended frame lost after healing")
		}
	})
}
