package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// Property tests over the lease state machine, driven by testing/quick
// against a simulated clock: random scripts of submit / claim / renew /
// complete / release / clock-advance operations, with the IP-pool lease
// invariants checked after every step.
//
// Invariants:
//
//  1. No double live leases — a successful claim only ever displaces a
//     holder whose lease had expired at claim time, so at no instant do two
//     replicas both believe they hold an unexpired lease on one job.
//  2. Sticky preference — when a claiming replica has an expired lease of
//     its own up for grabs, the claim returns one of its own jobs.
//  3. Expired leases are eventually reclaimed — once submissions stop and
//     the clock passes every expiry, repeated claims drain the pool: every
//     non-terminal job ends up running under a live lease.

// leaseScript is a randomly generated operation script. Implementing
// quick.Generator keeps the op encoding in one place.
type leaseScript struct {
	ops []byte
}

func (leaseScript) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(60) + 20
	ops := make([]byte, n)
	r.Read(ops)
	return reflect.ValueOf(leaseScript{ops: ops})
}

var quickHolders = []string{"r1", "r2", "r3"}

func TestLeaseStateMachineProperties(t *testing.T) {
	run := func(script leaseScript) bool {
		clock := newFakeClock()
		dir := t.TempDir()
		s, err := Open(dir, Options{Now: clock.Now})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer s.Close()

		const ttl = 10 * time.Second
		running := make(map[string]string) // job -> holder, this script's belief
		for i, op := range script.ops {
			holder := quickHolders[int(op>>4)%len(quickHolders)]
			switch op % 5 {
			case 0: // submit
				if _, err := s.SubmitJob(fmt.Sprintf("kind-%d", i), nil); err != nil {
					t.Fatalf("op %d: SubmitJob: %v", i, err)
				}
			case 1: // claim
				prev := snapshotJobs(t, s)
				rec, ok, err := s.Claim(holder, ttl)
				if err != nil {
					t.Fatalf("op %d: Claim: %v", i, err)
				}
				if !ok {
					break
				}
				now := clock.Now()
				before := prev[rec.ID]
				// Invariant 1: displacing a different holder requires that
				// holder's lease to have expired.
				if before.Holder != "" && before.Holder != holder && before.LeaseExpiry.After(now) {
					t.Fatalf("op %d: %s stole %s from %s with a live lease (expiry %v, now %v)",
						i, holder, rec.ID, before.Holder, before.LeaseExpiry, now)
				}
				// Invariant 2: sticky preference for the claimant's own
				// expired jobs.
				for id, j := range prev {
					if j.Holder == holder && claimable(&j, now) && before.Holder != holder {
						t.Fatalf("op %d: %s claimed %s while its own job %s was claimable",
							i, holder, rec.ID, id)
					}
				}
				running[rec.ID] = holder
			case 2: // renew by the believed holder
				for id, h := range running {
					if h != holder {
						continue
					}
					err := s.Renew(id, holder, ttl, nil)
					if err == ErrLeaseLost {
						delete(running, id) // someone reclaimed it; belief corrected
					} else if err != nil {
						t.Fatalf("op %d: Renew: %v", i, err)
					}
					break
				}
			case 3: // complete or release by the believed holder
				for id, h := range running {
					if h != holder {
						continue
					}
					var err error
					if op&0x08 != 0 {
						err = s.Release(id, holder)
					} else {
						err = s.Complete(id, holder, "out", nil)
					}
					if err != nil && err != ErrLeaseLost {
						t.Fatalf("op %d: finish: %v", i, err)
					}
					delete(running, id)
					break
				}
			case 4: // advance the clock, sometimes past the TTL
				step := time.Duration(op) * time.Second / 8
				clock.Advance(step)
			}
		}

		// Invariant 3: quiesce — push every lease past expiry, then let one
		// replica drain the pool. Every non-terminal job must be claimable
		// and get claimed.
		clock.Advance(ttl + time.Second)
		for {
			_, ok, err := s.Claim("r1", ttl)
			if err != nil {
				t.Fatalf("drain Claim: %v", err)
			}
			if !ok {
				break
			}
		}
		now := clock.Now()
		for id, j := range snapshotJobs(t, s) {
			if terminal(j.State) {
				continue
			}
			if j.State != StateRunning || j.Holder != "r1" || !j.LeaseExpiry.After(now) {
				t.Fatalf("after drain, job %s not reclaimed: %+v", id, j)
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func snapshotJobs(t *testing.T, s *Store) map[string]JobRecord {
	t.Helper()
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	out := make(map[string]JobRecord, len(jobs))
	for _, j := range jobs {
		out[j.ID] = j
	}
	return out
}
