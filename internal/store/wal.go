package store

import (
	"encoding/binary"
	"hash/crc32"
)

// WAL framing: every record is appended as
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | payload
//
// Replay walks frames from the front and stops at the first frame that does
// not check out — a short header, an implausible length, a truncated body or
// a checksum mismatch. Everything before that point is trusted (it was
// written under the store lock and synced before the lock was released);
// everything after is a torn tail from a crashed writer and is healed by
// truncation before the next append.

// frameHeader is the fixed per-record overhead in bytes.
const frameHeader = 8

// maxFramePayload bounds a single record, so a corrupted length field cannot
// make replay attempt a multi-gigabyte read. Job outputs are study reports
// (tens of KB); 64 MiB is far beyond any legitimate record.
const maxFramePayload = 64 << 20

// appendFrame encodes one payload as a frame into buf and returns the
// extended buffer.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// replayFrames walks the frames of data, calling fn on each checksummed
// payload, and returns the number of bytes consumed by complete, valid
// frames. It never fails on a malformed tail — it stops — but it propagates
// fn's error (with the bytes consumed before the failing record).
func replayFrames(data []byte, fn func(payload []byte) error) (int, error) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) < frameHeader {
			return off, nil
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxFramePayload || int(n) > len(rest)-frameHeader {
			return off, nil
		}
		payload := rest[frameHeader : frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return off, nil
		}
		if err := fn(payload); err != nil {
			return off, err
		}
		off += frameHeader + int(n)
	}
}
