package store

// Cell-sharded execution: the durable work-units that let N replicas
// cooperate on one campaign/robustness job. The replica that claims the job
// (the coordinator) plans one cell per grid cell with PlanCells; every
// replica — coordinator included — then claims cells by lease with
// expiry-and-reclaim, exactly like jobs, and appends a serialized result
// frame per cell. The coordinator gathers CellResults in plan-index order,
// so the merged report is byte-identical no matter which replica ran which
// cell, or when.
//
// Fencing rules mirror the job pool with one deliberate exception: a cell
// result (recCellDone) is accepted from ANY holder, first write wins. Cell
// execution is deterministic, so a reclaimed-then-revived holder racing the
// reclaimer produces a byte-identical frame; accepting the first keeps the
// state machine simple and makes the duplicate a no-op instead of a
// conflict.

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// CellRecord is the durable view of one cell work-unit of a sharded job.
type CellRecord struct {
	Job    string `json:"job"`
	Index  int    `json:"index"`
	State  string `json:"state"`
	Holder string `json:"holder,omitempty"`
	// LeaseExpiry is when the holder's cell lease lapses; an expired running
	// cell is claimable by any replica.
	LeaseExpiry time.Time `json:"lease_expiry,omitempty"`
	// Result is the serialized cell-result frame (opaque to the store).
	Result []byte `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
	// Progress is the holder's last renewed snapshot while running, and the
	// final snapshot once done; it feeds cross-replica job progress.
	Progress *obs.ProgressSnapshot `json:"progress,omitempty"`
	// Restarts counts lease takeovers of this cell.
	Restarts int `json:"restarts,omitempty"`
}

// applyCellLocked folds one cell record into the in-memory state; the cell
// half of applyLocked's state machine.
func (s *Store) applyCellLocked(rec *record) {
	if rec.Type == recCellPlan {
		j, ok := s.st.jobs[rec.Job]
		if !ok || terminal(j.State) {
			return
		}
		if _, ok := s.st.cells[rec.Job]; ok {
			return // replanning after a coordinator restart is a no-op
		}
		cells := make([]*CellRecord, rec.CellN)
		for i := range cells {
			cells[i] = &CellRecord{Job: rec.Job, Index: i, State: StateQueued}
		}
		s.st.cells[rec.Job] = cells
		return
	}
	cells := s.st.cells[rec.Job]
	if rec.Cell < 0 || rec.Cell >= len(cells) {
		return // plan gone (job finished) or a corrupt index: ignore
	}
	c := cells[rec.Cell]
	switch rec.Type {
	case recCellClaim:
		if terminal(c.State) {
			return
		}
		if c.Holder != "" && c.Holder != rec.Holder {
			c.Restarts++
			c.Progress = nil // the takeover restarts the cell from scratch
		}
		c.Holder = rec.Holder
		c.LeaseExpiry = time.Unix(0, rec.Expiry)
		c.State = StateRunning
	case recCellRenew:
		if c.State != StateRunning || c.Holder != rec.Holder {
			return
		}
		c.LeaseExpiry = time.Unix(0, rec.Expiry)
		if rec.Prog != nil {
			p := *rec.Prog
			c.Progress = &p
		}
	case recCellDone:
		if terminal(c.State) {
			return // first write wins; duplicates are byte-identical
		}
		if rec.Error != "" {
			c.State = StateFailed
		} else {
			c.State = StateDone
		}
		c.Holder = rec.Holder
		c.Result = rec.Data
		c.Error = rec.Error
		if rec.Prog != nil {
			p := *rec.Prog
			c.Progress = &p
		}
	case recCellRelease:
		if c.State != StateRunning || c.Holder != rec.Holder {
			return
		}
		// Back to the queue with an already-expired lease, immediately
		// claimable; partial progress is abandoned with the lease.
		c.State = StateQueued
		c.LeaseExpiry = time.Unix(0, rec.T)
		c.Progress = nil
	}
}

// PlanCells materialises n queued cell work-units for a live job. It is
// idempotent for a fixed n — the coordinator may restart and replan — and
// rejects a different n, which would mean two coordinators resolved the same
// payload to different grids.
func (s *Store) PlanCells(job string, n int) error {
	if n <= 0 {
		return fmt.Errorf("store: cell plan for %s must be positive, got %d", job, n)
	}
	return s.withLock(func() error {
		j, ok := s.st.jobs[job]
		if !ok {
			return fmt.Errorf("store: no such job %s", job)
		}
		if terminal(j.State) {
			return fmt.Errorf("store: job %s already %s", job, j.State)
		}
		if cells, ok := s.st.cells[job]; ok {
			if len(cells) != n {
				return fmt.Errorf("store: job %s planned with %d cells, replan wants %d", job, len(cells), n)
			}
			return nil
		}
		return s.appendLocked(&record{Type: recCellPlan, Job: job, CellN: n})
	})
}

// claimableCell mirrors claimable for cells.
func claimableCell(c *CellRecord, now time.Time) bool {
	switch c.State {
	case StateQueued:
		return c.Holder == "" || !c.LeaseExpiry.After(now)
	case StateRunning:
		return !c.LeaseExpiry.After(now)
	}
	return false
}

// cellCandidateLocked scans for the best claimable cell: sticky to the
// holder's own previous cells first, then job submission order and cell
// index (the deterministic plan order). onlyJob restricts the scan to one
// job's cells; (exJob, exCell) excludes a cell mid-completion.
func (s *Store) cellCandidateLocked(holder, onlyJob string, now time.Time, exJob string, exCell int) *CellRecord {
	var best *CellRecord
	for _, id := range s.st.order {
		if onlyJob != "" && id != onlyJob {
			continue
		}
		cells, ok := s.st.cells[id]
		if !ok {
			continue
		}
		if j, ok := s.st.jobs[id]; !ok || terminal(j.State) {
			continue
		}
		for _, c := range cells {
			if c.Job == exJob && c.Index == exCell {
				continue
			}
			if !claimableCell(c, now) {
				continue
			}
			if best == nil || (c.Holder == holder && best.Holder != holder) {
				best = c
			}
		}
	}
	return best
}

// ClaimCell hands the caller at most one claimable cell under a fresh lease
// (holder, now+ttl). onlyJob != "" restricts the claim to that job's cells —
// the coordinator's gather loop uses it to drain its own job.
func (s *Store) ClaimCell(holder string, ttl time.Duration, onlyJob string) (CellRecord, bool, error) {
	var out CellRecord
	claimed := false
	err := s.withLock(func() error {
		now := s.now()
		best := s.cellCandidateLocked(holder, onlyJob, now, "", -1)
		if best == nil {
			return nil
		}
		reclaim := best.Holder != "" && best.Holder != holder
		if err := s.appendLocked(&record{
			Type: recCellClaim, Job: best.Job, Cell: best.Index,
			Holder: holder, Expiry: now.Add(ttl).UnixNano(),
		}); err != nil {
			return err
		}
		cellClaims.Inc()
		if reclaim {
			cellReclaims.Inc()
		}
		out = *best
		claimed = true
		return nil
	})
	return out, claimed, err
}

// RenewCell extends the caller's cell lease by ttl and records the cell's
// latest progress snapshot (nil to leave it unchanged). ErrLeaseLost means
// another replica took the cell over — or the job finished and the plan was
// dropped — and the caller must abandon the cell.
func (s *Store) RenewCell(job string, cell int, holder string, ttl time.Duration, prog *obs.ProgressSnapshot) error {
	return s.withLock(func() error {
		cells := s.st.cells[job]
		if cell < 0 || cell >= len(cells) {
			return ErrLeaseLost
		}
		c := cells[cell]
		if c.State != StateRunning || c.Holder != holder {
			return ErrLeaseLost
		}
		if err := s.appendLocked(&record{
			Type: recCellRenew, Job: job, Cell: cell, Holder: holder,
			Expiry: s.now().Add(ttl).UnixNano(), Prog: prog,
		}); err != nil {
			return err
		}
		leaseRenewals.Inc()
		return nil
	})
}

// CompleteCellAndClaim finishes one cell (done when errMsg is empty, failed
// otherwise) and, when claimNext is set, claims the holder's next cell in
// the same batched append — one WriteAt, one fsync — so a replica chewing
// through a grid pays one sync per cell, not two. The completion is written
// even if the caller's lease was taken over (first write wins; see the
// package comment), but skipped if the cell already has a result.
func (s *Store) CompleteCellAndClaim(job string, cell int, holder string, data []byte, errMsg string,
	prog *obs.ProgressSnapshot, claimNext bool, onlyJob string, ttl time.Duration) (CellRecord, bool, error) {
	var next CellRecord
	claimed := false
	err := s.withLock(func() error {
		now := s.now()
		cells := s.st.cells[job]
		if cell < 0 || cell >= len(cells) {
			// The job finished and its plan was dropped while we raced to
			// complete; the caller abandons the (already merged) result.
			return fmt.Errorf("store: job %s has no cell %d", job, cell)
		}
		var recs []*record
		if !terminal(cells[cell].State) {
			recs = append(recs, &record{
				Type: recCellDone, Job: job, Cell: cell, Holder: holder,
				Data: data, Error: errMsg, Prog: prog,
			})
		}
		var best *CellRecord
		reclaim := false
		if claimNext {
			best = s.cellCandidateLocked(holder, onlyJob, now, job, cell)
			if best != nil {
				reclaim = best.Holder != "" && best.Holder != holder
				recs = append(recs, &record{
					Type: recCellClaim, Job: best.Job, Cell: best.Index,
					Holder: holder, Expiry: now.Add(ttl).UnixNano(),
				})
			}
		}
		if err := s.appendBatchLocked(recs); err != nil {
			return err
		}
		if best != nil {
			cellClaims.Inc()
			if reclaim {
				cellReclaims.Inc()
			}
			next = *best
			claimed = true
		}
		return nil
	})
	return next, claimed, err
}

// ReleaseCell gives a running cell back to the queue — the graceful-shutdown
// path, mirroring Release for jobs.
func (s *Store) ReleaseCell(job string, cell int, holder string) error {
	return s.withLock(func() error {
		cells := s.st.cells[job]
		if cell < 0 || cell >= len(cells) {
			return ErrLeaseLost
		}
		c := cells[cell]
		if c.State != StateRunning || c.Holder != holder {
			return ErrLeaseLost
		}
		return s.appendLocked(&record{Type: recCellRelease, Job: job, Cell: cell, Holder: holder})
	})
}

// Cells returns the cell plan of a job in index order; ok is false when the
// job has no (live) plan.
func (s *Store) Cells(job string) ([]CellRecord, bool, error) {
	var out []CellRecord
	found := false
	err := s.withLock(func() error {
		cells, ok := s.st.cells[job]
		if !ok {
			return nil
		}
		found = true
		out = make([]CellRecord, len(cells))
		for i, c := range cells {
			out[i] = *c
		}
		return nil
	})
	return out, found, err
}

// CellSummary aggregates a sharded job's cross-replica progress: counts by
// state plus the summed progress snapshots of running and finished cells.
// The sums can decrease between calls — a reclaimed cell restarts from
// scratch — so consumers fold signed deltas, not absolutes.
type CellSummary struct {
	Total  int
	Done   int
	Failed int
	// FailedCell is the lowest failed index (-1 when Failed == 0) and Err
	// its error — the deterministic representative the coordinator reports.
	FailedCell  int
	Err         string
	TrialsUsed  int64
	TrialBudget int64
}

// CellSummary summarises the cell plan of a job; ok is false without one.
func (s *Store) CellSummary(job string) (CellSummary, bool, error) {
	sum := CellSummary{FailedCell: -1}
	found := false
	err := s.withLock(func() error {
		cells, ok := s.st.cells[job]
		if !ok {
			return nil
		}
		found = true
		sum.Total = len(cells)
		for _, c := range cells {
			switch c.State {
			case StateDone:
				sum.Done++
			case StateFailed:
				sum.Failed++
				if sum.FailedCell < 0 {
					sum.FailedCell = c.Index
					sum.Err = c.Error
				}
			}
			if c.Progress != nil {
				sum.TrialsUsed += c.Progress.TrialsUsed
				sum.TrialBudget += c.Progress.TrialBudget
			}
		}
		return nil
	})
	return sum, found, err
}

// CellResults returns every cell's serialized result frame in plan-index
// order — the deterministic merge order. It fails unless every cell is done.
func (s *Store) CellResults(job string) ([][]byte, error) {
	var out [][]byte
	err := s.withLock(func() error {
		cells, ok := s.st.cells[job]
		if !ok {
			return fmt.Errorf("store: job %s has no cell plan", job)
		}
		out = make([][]byte, len(cells))
		for i, c := range cells {
			if c.State != StateDone {
				return fmt.Errorf("store: job %s cell %d is %s, not done", job, i, c.State)
			}
			out[i] = append([]byte(nil), c.Result...)
		}
		return nil
	})
	return out, err
}
