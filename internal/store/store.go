// Package store gives the service a durable, multi-process backbone: a
// file-backed store that N reprosrv replicas sharing one directory use to
// persist fitted performance models (the registry's fit-once economics made
// restart-proof) and to coordinate a shared job pool through a checksummed
// write-ahead log with lease-based claiming.
//
// Layout of a store directory:
//
//	LOCK                 flock target serialising every read-modify-write
//	MANIFEST             {"gen":N} — the live snapshot/WAL generation
//	snapshot-<gen>.json  full job-pool state at the generation boundary
//	wal-<gen>.log        checksummed frames appended since the snapshot
//	models/<env>@<seed>.json  one durable model-cache entry per fit
//
// Every job-pool operation runs under an exclusive flock: the caller first
// replays any WAL records other replicas appended since its last look, then
// appends its own records and syncs before unlocking. Compaction bumps the
// generation: the surviving jobs are written to a fresh snapshot, the WAL
// restarts empty, and other replicas detect the generation change through
// MANIFEST and reload.
//
// The lease discipline over the job pool translates the classic SQL IP-pool
// allocator (SELECT ... FOR UPDATE SKIP LOCKED with an expiry_time and
// sticky reassignment to the previous holder) into Go: replicas claim
// queued jobs by writing a lease record (holder, expiry), renew it while
// running, and any replica may reclaim a job whose lease expired — with
// claim ordering that hands a replica its own previous jobs first.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
)

// Store telemetry: lease traffic, WAL growth and compactions, shared by
// every Store instance in the process.
var (
	leaseClaims = obs.Default.Counter("repro_store_lease_claims_total",
		"Jobs claimed from the shared pool by this process.")
	leaseRenewals = obs.Default.Counter("repro_store_lease_renewals_total",
		"Lease renewals written by this process.")
	leaseReclaims = obs.Default.Counter("repro_store_lease_reclaims_total",
		"Claims that took over another holder's expired lease.")
	walBytes = obs.Default.Counter("repro_store_wal_bytes_total",
		"Bytes appended to the job-pool WAL by this process.")
	compactions = obs.Default.Counter("repro_store_compactions_total",
		"Snapshot compactions run by this process.")
	cellClaims = obs.Default.Counter("repro_store_cell_claims_total",
		"Cell work-units claimed from sharded jobs by this process.")
	cellReclaims = obs.Default.Counter("repro_store_cell_reclaims_total",
		"Cell claims that took over another holder's expired lease.")
	fsyncSeconds = obs.Default.Histogram("repro_store_fsync_seconds",
		"WAL fsync latency per batched append.", obs.DefBuckets)
)

// framesTotal counts WAL frames appended by this process, by record kind.
// The set of kinds is closed, so the label variants are registered once.
var framesTotal = func() map[string]*obs.Counter {
	kinds := []string{
		recSubmit, recClaim, recRenew, recState, recRelease, recReplica,
		recCellPlan, recCellClaim, recCellRenew, recCellDone, recCellRelease,
	}
	m := make(map[string]*obs.Counter, len(kinds))
	for _, k := range kinds {
		m[k] = obs.Default.Counter("repro_store_frames_total",
			"WAL frames appended by this process, by record kind.", obs.L("kind", k))
	}
	return m
}()

// Options configures a Store.
type Options struct {
	// Now is the store's clock; time.Now when nil. Tests inject simulated
	// clocks to drive lease expiry deterministically.
	Now func() time.Time
}

// Store is one process's handle on a shared store directory. It is safe for
// concurrent use within the process, and any number of processes (or
// handles) may share the directory: cross-handle mutual exclusion is by
// flock on the LOCK file.
type Store struct {
	dir string
	now func() time.Time

	mu     sync.Mutex
	lockf  *os.File
	wal    *os.File
	walOff int64
	gen    uint64
	st     state
}

// state is the replayed in-memory view of the job pool.
type state struct {
	seq      uint64
	jobs     map[string]*JobRecord
	order    []string
	replicas map[string]int64 // holder -> registration expiry, unix nanos
	cells    map[string][]*CellRecord
}

func newState() state {
	return state{
		jobs:     make(map[string]*JobRecord),
		replicas: make(map[string]int64),
		cells:    make(map[string][]*CellRecord),
	}
}

// Open opens (creating if needed) a store directory.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "models"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lockf, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	s := &Store{dir: dir, now: now, lockf: lockf, st: newState()}
	if err := s.withLock(func() error { return nil }); err != nil {
		lockf.Close()
		return nil, err
	}
	return s, nil
}

// Close releases the handle. It does not compact or otherwise mutate the
// shared state.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
	if s.lockf != nil {
		s.lockf.Close()
		s.lockf = nil
	}
	return nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// withLock runs fn holding both the in-process mutex and the cross-process
// flock, with the in-memory state refreshed to the latest shared records.
func (s *Store) withLock(fn func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lockf == nil {
		return fmt.Errorf("store: closed")
	}
	if err := syscall.Flock(int(s.lockf.Fd()), syscall.LOCK_EX); err != nil {
		return fmt.Errorf("store: lock: %w", err)
	}
	defer syscall.Flock(int(s.lockf.Fd()), syscall.LOCK_UN)
	if err := s.refreshLocked(); err != nil {
		return err
	}
	return fn()
}

// manifest is the tiny generation pointer other replicas poll.
type manifest struct {
	Gen uint64 `json:"gen"`
}

func (s *Store) manifestPath() string { return filepath.Join(s.dir, "MANIFEST") }
func (s *Store) walPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%d.log", gen))
}
func (s *Store) snapshotPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snapshot-%d.json", gen))
}

// readManifest returns the live generation (0 with no manifest yet).
func (s *Store) readManifest() (uint64, error) {
	data, err := os.ReadFile(s.manifestPath())
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, fmt.Errorf("store: manifest: %w", err)
	}
	return m.Gen, nil
}

// snapshotFile is the compacted state written at a generation boundary.
type snapshotFile struct {
	Gen      uint64                   `json:"gen"`
	Seq      uint64                   `json:"seq"`
	Jobs     []*JobRecord             `json:"jobs"`
	Replicas map[string]int64         `json:"replicas,omitempty"`
	Cells    map[string][]*CellRecord `json:"cells,omitempty"`
}

// refreshLocked brings the in-memory state up to date with the shared
// files. Callers hold the flock.
func (s *Store) refreshLocked() error {
	gen, err := s.readManifest()
	if err != nil {
		return err
	}
	if s.wal == nil || gen != s.gen {
		if err := s.loadGenerationLocked(gen); err != nil {
			return err
		}
	}
	return s.replayTailLocked()
}

// loadGenerationLocked (re)loads the snapshot of gen and opens its WAL.
func (s *Store) loadGenerationLocked(gen uint64) error {
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
	s.st = newState()
	s.walOff = 0
	s.gen = gen
	if data, err := os.ReadFile(s.snapshotPath(gen)); err == nil {
		var snap snapshotFile
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("store: snapshot-%d: %w", gen, err)
		}
		s.st.seq = snap.Seq
		for _, j := range snap.Jobs {
			jc := *j
			s.st.jobs[j.ID] = &jc
			s.st.order = append(s.st.order, j.ID)
		}
		for h, exp := range snap.Replicas {
			s.st.replicas[h] = exp
		}
		for job, cells := range snap.Cells {
			cp := make([]*CellRecord, len(cells))
			for i, c := range cells {
				cc := *c
				cp[i] = &cc
			}
			s.st.cells[job] = cp
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	wal, err := os.OpenFile(s.walPath(gen), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.wal = wal
	return nil
}

// replayTailLocked applies WAL records appended since the last look.
func (s *Store) replayTailLocked() error {
	fi, err := s.wal.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if fi.Size() <= s.walOff {
		return nil
	}
	buf := make([]byte, fi.Size()-s.walOff)
	if _, err := s.wal.ReadAt(buf, s.walOff); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	consumed, err := replayFrames(buf, func(payload []byte) error {
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// A checksummed but undecodable record: replay stops here, as
			// after a torn tail; the next append heals by truncation.
			return errStopReplay
		}
		s.applyLocked(&rec)
		return nil
	})
	if err != nil && err != errStopReplay {
		return err
	}
	s.walOff += int64(consumed)
	return nil
}

// errStopReplay aborts frame replay without failing the refresh.
var errStopReplay = fmt.Errorf("store: stop replay")

// appendLocked appends a single record; see appendBatchLocked.
func (s *Store) appendLocked(rec *record) error {
	return s.appendBatchLocked([]*record{rec})
}

// appendBatchLocked assigns sequence numbers to recs, appends them to the
// WAL as one contiguous write (healing any torn tail first), syncs once, and
// applies them in order. Batching is what keeps sharded execution off the
// fsync floor: completing one cell and claiming the next is a single sync,
// not two. Callers hold the flock with a refreshed state.
func (s *Store) appendBatchLocked(recs []*record) error {
	if len(recs) == 0 {
		return nil
	}
	// Any bytes past walOff failed replay — a torn tail from a crashed
	// writer. Truncate before appending so the log stays parseable.
	if fi, err := s.wal.Stat(); err == nil && fi.Size() > s.walOff {
		if err := s.wal.Truncate(s.walOff); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	var buf []byte
	for _, rec := range recs {
		s.st.seq++
		rec.Seq = s.st.seq
		rec.T = s.now().UnixNano()
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		buf = appendFrame(buf, payload)
	}
	if _, err := s.wal.WriteAt(buf, s.walOff); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	start := time.Now()
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fsyncSeconds.Observe(time.Since(start).Seconds())
	s.walOff += int64(len(buf))
	walBytes.Add(uint64(len(buf)))
	for _, rec := range recs {
		if c, ok := framesTotal[rec.Type]; ok {
			c.Inc()
		}
		s.applyLocked(rec)
	}
	return nil
}

// ChangeStamp identifies a point in the shared log: the live generation and
// the WAL length within it. Two equal stamps mean no record was appended (or
// compacted) in between, so idle replicas can poll it instead of taking the
// flock — a manifest read plus a stat, no lock traffic.
type ChangeStamp struct {
	Gen uint64
	WAL int64
}

// ChangeStamp reads the current stamp without taking the store lock. It may
// race appends — that is fine; a racing append only makes the stamp differ
// sooner, never report stale equality.
func (s *Store) ChangeStamp() (ChangeStamp, error) {
	gen, err := s.readManifest()
	if err != nil {
		return ChangeStamp{}, err
	}
	st := ChangeStamp{Gen: gen}
	if fi, err := os.Stat(s.walPath(gen)); err == nil {
		st.WAL = fi.Size()
	}
	return st, nil
}

// writeFileAtomic writes data to path via a temp file and rename.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// compactLocked writes the current state (with done jobs beyond retain
// pruned) as the next generation's snapshot and restarts the WAL. Callers
// hold the flock with a refreshed state.
func (s *Store) compactLocked(retain int) error {
	if retain < 1 {
		retain = 1
	}
	// Prune finished jobs beyond the retention window, oldest first —
	// mirroring the in-memory manager's retention, but against the store so
	// the WAL and snapshots cannot grow without bound.
	finished := 0
	for _, id := range s.st.order {
		if terminal(s.st.jobs[id].State) {
			finished++
		}
	}
	keep := s.st.order[:0]
	for _, id := range s.st.order {
		j := s.st.jobs[id]
		if terminal(j.State) && finished > retain {
			finished--
			delete(s.st.jobs, id)
			continue
		}
		keep = append(keep, id)
	}
	s.st.order = keep

	// Cell work-units live only as long as their job is in flight; drop the
	// plans of pruned or finished jobs so snapshots don't accrete results.
	for job := range s.st.cells {
		if j, ok := s.st.jobs[job]; !ok || terminal(j.State) {
			delete(s.st.cells, job)
		}
	}

	gen := s.gen + 1
	snap := snapshotFile{Gen: gen, Seq: s.st.seq, Replicas: s.st.replicas}
	if len(s.st.cells) > 0 {
		snap.Cells = s.st.cells
	}
	for _, id := range s.st.order {
		snap.Jobs = append(snap.Jobs, s.st.jobs[id])
	}
	data, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := writeFileAtomic(s.snapshotPath(gen), data); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// A fresh, empty WAL for the new generation; created before the
	// manifest flips so no reader ever sees a generation without its log.
	wal, err := os.OpenFile(s.walPath(gen), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	mdata, err := json.Marshal(manifest{Gen: gen})
	if err != nil {
		wal.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := writeFileAtomic(s.manifestPath(), mdata); err != nil {
		wal.Close()
		return fmt.Errorf("store: %w", err)
	}
	oldGen := s.gen
	if s.wal != nil {
		s.wal.Close()
	}
	s.wal = wal
	s.walOff = 0
	s.gen = gen
	os.Remove(s.walPath(oldGen))
	os.Remove(s.snapshotPath(oldGen))
	compactions.Inc()
	return nil
}
