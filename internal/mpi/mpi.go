// Package mpi is a small in-process message-passing substrate playing the
// role MPIJava/mpich2 play in the paper's execution framework (§II-B, §III):
// it gives the parallel matrix kernels ranks, point-to-point messages and
// the handful of collectives they need, implemented over Go channels with
// one goroutine per rank.
package mpi

import (
	"fmt"
	"sync"
)

// message is one point-to-point payload with a tag.
type message struct {
	tag  int
	data []float64
}

// World is a fixed-size communication universe: size ranks with buffered
// pairwise channels and a reusable barrier.
type World struct {
	size  int
	chans [][]chan message // chans[src][dst]

	barrierMu    sync.Mutex
	barrierCond  *sync.Cond
	barrierCount int
	barrierGen   int
}

// NewWorld creates a world of p ranks.
func NewWorld(p int) *World {
	if p < 1 {
		panic(fmt.Sprintf("mpi: world size %d", p))
	}
	w := &World{size: p}
	w.chans = make([][]chan message, p)
	for i := range w.chans {
		w.chans[i] = make([]chan message, p)
		for j := range w.chans[i] {
			// Buffer a few messages per pair so simple exchange patterns
			// (ring shifts, pairwise swaps) cannot deadlock.
			w.chans[i][j] = make(chan message, 4)
		}
	}
	w.barrierCond = sync.NewCond(&w.barrierMu)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns rank r's communicator handle.
func (w *World) Comm(r int) *Comm {
	if r < 0 || r >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", r, w.size))
	}
	return &Comm{world: w, rank: r}
}

// Run spawns one goroutine per rank, calls body with each rank's
// communicator, and waits for all of them to return.
func Run(p int, body func(c *Comm)) {
	w := NewWorld(p)
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(rank int) {
			defer wg.Done()
			body(w.Comm(rank))
		}(r)
	}
	wg.Wait()
}

// Comm is one rank's endpoint into a World.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send delivers a copy of data to dst with the given tag. It blocks only
// when the pairwise buffer is full (rendezvous with a slow receiver).
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: send to rank %d out of range", dst))
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	c.world.chans[c.rank][dst] <- message{tag: tag, data: cp}
}

// Recv blocks until a message with the given tag arrives from src.
// Messages from one sender arrive in order; a tag mismatch is a protocol
// error and panics (this substrate has no out-of-order matching).
func (c *Comm) Recv(src, tag int) []float64 {
	if src < 0 || src >= c.world.size {
		panic(fmt.Sprintf("mpi: recv from rank %d out of range", src))
	}
	m := <-c.world.chans[src][c.rank]
	if m.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", c.rank, tag, src, m.tag))
	}
	return m.data
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	w := c.world
	w.barrierMu.Lock()
	gen := w.barrierGen
	w.barrierCount++
	if w.barrierCount == w.size {
		w.barrierCount = 0
		w.barrierGen++
		w.barrierCond.Broadcast()
	} else {
		for gen == w.barrierGen {
			w.barrierCond.Wait()
		}
	}
	w.barrierMu.Unlock()
}

// Bcast distributes root's data to every rank and returns each rank's copy.
func (c *Comm) Bcast(root, tag int, data []float64) []float64 {
	if c.rank == root {
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.Send(r, tag, data)
			}
		}
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	return c.Recv(root, tag)
}

// RingShift sends data to (rank+1) mod size and receives from
// (rank−1+size) mod size — the building block of the 1-D multiplication's
// systolic exchange. With size 1 it returns a copy of data.
func (c *Comm) RingShift(tag int, data []float64) []float64 {
	p := c.world.size
	if p == 1 {
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p
	c.Send(next, tag, data)
	return c.Recv(prev, tag)
}

// Allgather collects every rank's local slice; the result is indexed by
// rank. Implemented as a ring rotation with p−1 steps, so each rank sends
// (p−1)·len(local) elements — the communication volume of the paper's 1-D
// kernels.
func (c *Comm) Allgather(tag int, local []float64) [][]float64 {
	p := c.world.size
	out := make([][]float64, p)
	cp := make([]float64, len(local))
	copy(cp, local)
	out[c.rank] = cp

	cur := local
	curOwner := c.rank
	for step := 0; step < p-1; step++ {
		cur = c.RingShift(tag+step, cur)
		curOwner = (curOwner - 1 + p) % p
		out[curOwner] = cur
	}
	return out
}

// Alltoallv sends send[j] to rank j and returns the slices received from
// every rank (indexed by source). Entries may be empty; nil entries are
// treated as empty. Used by the data-redistribution component.
func (c *Comm) Alltoallv(tag int, send [][]float64) [][]float64 {
	p := c.world.size
	if len(send) != p {
		panic(fmt.Sprintf("mpi: alltoallv send has %d entries, want %d", len(send), p))
	}
	recv := make([][]float64, p)
	// Self-delivery is a local copy.
	self := make([]float64, len(send[c.rank]))
	copy(self, send[c.rank])
	recv[c.rank] = self
	// Exchange with every peer; pairwise buffered channels plus a
	// distance-ordered schedule avoid deadlock.
	for d := 1; d < p; d++ {
		dst := (c.rank + d) % p
		src := (c.rank - d + p) % p
		c.Send(dst, tag+d, send[dst])
		recv[src] = c.Recv(src, tag+d)
	}
	return recv
}
