package mpi

import (
	"sync"
	"testing"
)

func TestSendRecv(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := c.Recv(0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("Recv = %v", got)
			}
		}
	})
}

func TestSendCopiesData(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			data := []float64{42}
			c.Send(1, 0, data)
			data[0] = -1 // must not affect the message
		} else {
			if got := c.Recv(0, 0); got[0] != 42 {
				t.Errorf("Recv = %v, want [42]", got)
			}
		}
	})
}

func TestMessagesOrdered(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 2, []float64{2})
			c.Send(1, 3, []float64{3})
		} else {
			for want := 1; want <= 3; want++ {
				got := c.Recv(0, want)
				if got[0] != float64(want) {
					t.Errorf("message %d = %v", want, got)
				}
			}
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	const p = 8
	var mu sync.Mutex
	phase := make(map[int]int)
	Run(p, func(c *Comm) {
		for round := 0; round < 5; round++ {
			mu.Lock()
			phase[c.Rank()] = round
			// Everyone must be in the same round at each barrier.
			for r, ph := range phase {
				if ph < round-1 || ph > round {
					t.Errorf("rank %d at phase %d while rank %d at %d", c.Rank(), round, r, ph)
				}
			}
			mu.Unlock()
			c.Barrier()
		}
	})
}

func TestBcast(t *testing.T) {
	Run(5, func(c *Comm) {
		var data []float64
		if c.Rank() == 2 {
			data = []float64{3.14, 2.71}
		}
		got := c.Bcast(2, 9, data)
		if len(got) != 2 || got[0] != 3.14 || got[1] != 2.71 {
			t.Errorf("rank %d Bcast = %v", c.Rank(), got)
		}
	})
}

func TestRingShift(t *testing.T) {
	const p = 4
	Run(p, func(c *Comm) {
		got := c.RingShift(0, []float64{float64(c.Rank())})
		want := float64((c.Rank() - 1 + p) % p)
		if got[0] != want {
			t.Errorf("rank %d received %v, want %v", c.Rank(), got[0], want)
		}
	})
}

func TestRingShiftSingleRank(t *testing.T) {
	Run(1, func(c *Comm) {
		got := c.RingShift(0, []float64{5})
		if len(got) != 1 || got[0] != 5 {
			t.Errorf("RingShift p=1 = %v", got)
		}
	})
}

func TestAllgather(t *testing.T) {
	const p = 6
	Run(p, func(c *Comm) {
		got := c.Allgather(100, []float64{float64(c.Rank() * 10)})
		if len(got) != p {
			t.Fatalf("Allgather returned %d slices", len(got))
		}
		for r := 0; r < p; r++ {
			if len(got[r]) != 1 || got[r][0] != float64(r*10) {
				t.Errorf("rank %d slot %d = %v", c.Rank(), r, got[r])
			}
		}
	})
}

func TestAlltoallv(t *testing.T) {
	const p = 4
	Run(p, func(c *Comm) {
		send := make([][]float64, p)
		for dst := 0; dst < p; dst++ {
			// rank r sends r*10+dst to dst; empty payload to rank 0.
			if dst == 0 {
				send[dst] = nil
				continue
			}
			send[dst] = []float64{float64(c.Rank()*10 + dst)}
		}
		recv := c.Alltoallv(500, send)
		for src := 0; src < p; src++ {
			if c.Rank() == 0 {
				if len(recv[src]) != 0 {
					t.Errorf("rank 0 received %v from %d, want empty", recv[src], src)
				}
				continue
			}
			want := float64(src*10 + c.Rank())
			if len(recv[src]) != 1 || recv[src][0] != want {
				t.Errorf("rank %d from %d = %v, want [%g]", c.Rank(), src, recv[src], want)
			}
		}
	})
}

func TestWorldPanics(t *testing.T) {
	w := NewWorld(2)
	assertPanics(t, "bad rank", func() { w.Comm(2) })
	assertPanics(t, "bad size", func() { NewWorld(0) })
	c := w.Comm(0)
	assertPanics(t, "bad dst", func() { c.Send(5, 0, nil) })
	assertPanics(t, "bad src", func() { c.Recv(-1, 0) })
}

func assertPanics(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

func TestTagMismatchPanics(t *testing.T) {
	w := NewWorld(2)
	w.Comm(0).Send(1, 1, []float64{1})
	assertPanics(t, "tag mismatch", func() { w.Comm(1).Recv(0, 2) })
}
