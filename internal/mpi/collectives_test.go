package mpi

import "testing"

func TestReduceSum(t *testing.T) {
	const p = 5
	Run(p, func(c *Comm) {
		local := []float64{float64(c.Rank()), 1}
		res := c.Reduce(2, 40, local, Sum)
		if c.Rank() != 2 {
			if res != nil {
				t.Errorf("non-root rank %d received %v", c.Rank(), res)
			}
			return
		}
		// Σ ranks = 10, Σ ones = 5.
		if res[0] != 10 || res[1] != 5 {
			t.Errorf("Reduce = %v, want [10 5]", res)
		}
	})
}

func TestReduceMax(t *testing.T) {
	Run(4, func(c *Comm) {
		res := c.Reduce(0, 41, []float64{float64(c.Rank() * c.Rank())}, Max)
		if c.Rank() == 0 && res[0] != 9 {
			t.Errorf("Reduce max = %v, want [9]", res)
		}
	})
}

func TestAllreduce(t *testing.T) {
	const p = 6
	Run(p, func(c *Comm) {
		res := c.Allreduce(50, []float64{1}, Sum)
		if len(res) != 1 || res[0] != p {
			t.Errorf("rank %d Allreduce = %v, want [%d]", c.Rank(), res, p)
		}
	})
}

func TestGatherv(t *testing.T) {
	const p = 4
	Run(p, func(c *Comm) {
		local := make([]float64, c.Rank()+1) // variable lengths
		for i := range local {
			local[i] = float64(c.Rank())
		}
		out := c.Gatherv(1, 60, local)
		if c.Rank() != 1 {
			if out != nil {
				t.Errorf("non-root got %v", out)
			}
			return
		}
		for r := 0; r < p; r++ {
			if len(out[r]) != r+1 {
				t.Errorf("slot %d has length %d, want %d", r, len(out[r]), r+1)
			}
			for _, v := range out[r] {
				if v != float64(r) {
					t.Errorf("slot %d contains %v", r, v)
				}
			}
		}
	})
}

func TestScatterv(t *testing.T) {
	const p = 3
	Run(p, func(c *Comm) {
		var parts [][]float64
		if c.Rank() == 0 {
			parts = [][]float64{{0}, {1, 1}, {2, 2, 2}}
		}
		got := c.Scatterv(0, 70, parts)
		if len(got) != c.Rank()+1 {
			t.Errorf("rank %d got length %d", c.Rank(), len(got))
		}
		for _, v := range got {
			if v != float64(c.Rank()) {
				t.Errorf("rank %d got value %v", c.Rank(), v)
			}
		}
	})
}

func TestReduceLengthMismatchPanics(t *testing.T) {
	w := NewWorld(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Comm(1).Send(0, 80, []float64{1, 2, 3})
	}()
	defer func() {
		<-done
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	w.Comm(0).Reduce(0, 80, []float64{1}, Sum)
}
