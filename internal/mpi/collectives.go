package mpi

import "fmt"

// Additional collectives beyond the core set, rounding the substrate out to
// what mixed-parallel kernels typically need.

// ReduceOp combines two values element-wise.
type ReduceOp func(a, b float64) float64

// Sum is the element-wise addition reduction.
var Sum ReduceOp = func(a, b float64) float64 { return a + b }

// Max is the element-wise maximum reduction.
var Max ReduceOp = func(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Reduce combines every rank's local slice on the root with op; only the
// root's return value is non-nil. All slices must share a length.
func (c *Comm) Reduce(root, tag int, local []float64, op ReduceOp) []float64 {
	if c.rank != root {
		c.Send(root, tag, local)
		return nil
	}
	acc := make([]float64, len(local))
	copy(acc, local)
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		part := c.Recv(r, tag)
		if len(part) != len(acc) {
			panic(fmt.Sprintf("mpi: reduce length mismatch: %d vs %d from rank %d",
				len(part), len(acc), r))
		}
		for i := range acc {
			acc[i] = op(acc[i], part[i])
		}
	}
	return acc
}

// Allreduce is Reduce followed by Bcast: every rank receives the combined
// value.
func (c *Comm) Allreduce(tag int, local []float64, op ReduceOp) []float64 {
	res := c.Reduce(0, tag, local, op)
	return c.Bcast(0, tag+1, res)
}

// Gatherv collects variable-length slices on the root, indexed by rank;
// only the root's return value is non-nil.
func (c *Comm) Gatherv(root, tag int, local []float64) [][]float64 {
	if c.rank != root {
		c.Send(root, tag, local)
		return nil
	}
	out := make([][]float64, c.world.size)
	cp := make([]float64, len(local))
	copy(cp, local)
	out[root] = cp
	for r := 0; r < c.world.size; r++ {
		if r != root {
			out[r] = c.Recv(r, tag)
		}
	}
	return out
}

// Scatterv distributes per-rank slices from the root; every rank returns
// its share. parts is only read on the root and must have one entry per
// rank.
func (c *Comm) Scatterv(root, tag int, parts [][]float64) []float64 {
	if c.rank == root {
		if len(parts) != c.world.size {
			panic(fmt.Sprintf("mpi: scatterv with %d parts for %d ranks", len(parts), c.world.size))
		}
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.Send(r, tag, parts[r])
			}
		}
		cp := make([]float64, len(parts[root]))
		copy(cp, parts[root])
		return cp
	}
	return c.Recv(root, tag)
}
