package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"log/slog"

	"repro/internal/obs"
)

// HTTP telemetry: the in-flight gauge is process-wide; per-route request
// counts (by status class) and latency histograms are registered once per
// route pattern when Handler() assembles the mux. Registration is idempotent,
// so multiple Service instances share one set of series.
var httpInflight = obs.Default.Gauge("repro_http_inflight_requests",
	"HTTP requests currently being served.")

// reqSeq numbers requests that arrive without an X-Request-ID of their own.
var reqSeq atomic.Uint64

// routeInstruments is one route's pre-registered series: request totals by
// status class and the latency histogram. The observe path is lock-free.
type routeInstruments struct {
	byClass [4]*obs.Counter // 2xx, 3xx, 4xx, 5xx
	latency *obs.Histogram
}

func instrumentsFor(route string) *routeInstruments {
	ri := &routeInstruments{
		latency: obs.Default.Histogram("repro_http_request_seconds",
			"HTTP request latency, by route.", obs.DefBuckets, obs.L("route", route)),
	}
	for i, class := range [...]string{"2xx", "3xx", "4xx", "5xx"} {
		ri.byClass[i] = obs.Default.Counter("repro_http_requests_total",
			"HTTP requests served, by route and status class.",
			obs.L("route", route), obs.L("code", class))
	}
	return ri
}

func (ri *routeInstruments) observe(status int, seconds float64) {
	idx := status/100 - 2
	if idx < 0 {
		idx = 0
	}
	if idx > 3 {
		idx = 3
	}
	ri.byClass[idx].Inc()
	ri.latency.Observe(seconds)
}

// obsResponse wraps a ResponseWriter to record the status and byte count for
// metrics and logging, and to intercept non-JSON error responses: any >= 400
// response whose handler did not set an application/json content type (the
// mux's own plain-text 404/405, stray http.Error calls) has its body
// captured and re-emitted as the API's standard {"error": ...} envelope, so
// clients can rely on one error shape for every route.
type obsResponse struct {
	http.ResponseWriter
	route       string
	status      int
	bytes       int64
	wroteHeader bool
	intercept   bool
	buf         bytes.Buffer
}

func (w *obsResponse) WriteHeader(code int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	w.status = code
	if code >= 400 && !strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		w.intercept = true
		w.Header().Set("Content-Type", "application/json")
		w.Header().Del("Content-Length")
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *obsResponse) Write(b []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if w.intercept {
		w.buf.Write(b)
		return len(b), nil
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// finish flushes an intercepted error body as the JSON envelope.
func (w *obsResponse) finish() {
	if !w.intercept {
		return
	}
	msg := strings.TrimSpace(w.buf.String())
	if msg == "" {
		msg = http.StatusText(w.status)
	}
	b, err := json.Marshal(apiError{Error: msg})
	if err != nil {
		return
	}
	n, _ := w.ResponseWriter.Write(append(b, '\n'))
	w.bytes += int64(n)
}

// named tags the response with the route pattern that matched, so the outer
// middleware can attribute metrics and logs without re-deriving the route
// from the raw path (which would explode label cardinality on /v1/jobs/{id}).
func named(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ow, ok := w.(*obsResponse); ok {
			ow.route = route
		}
		h.ServeHTTP(w, r)
	})
}

// withObs is the outermost middleware: request IDs, the in-flight gauge,
// per-route metrics, the error-envelope guarantee, and one structured log
// line per request.
func (s *Service) withObs(routes map[string]*routeInstruments, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = "req-" + strconv.FormatUint(reqSeq.Add(1), 10)
		}
		w.Header().Set("X-Request-ID", id)
		httpInflight.Inc()
		defer httpInflight.Dec()

		ow := &obsResponse{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(ow, r)
		ow.finish()
		dur := time.Since(start)

		ri := routes[ow.route]
		if ri == nil {
			ri = routes[""]
		}
		ri.observe(ow.status, dur.Seconds())

		level := slog.LevelInfo
		if ow.status >= 500 {
			level = slog.LevelError
		} else if ow.status >= 400 {
			level = slog.LevelWarn
		}
		route := ow.route
		if route == "" {
			route = "unmatched"
		}
		s.logger.LogAttrs(r.Context(), level, "request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", ow.status),
			slog.Int64("bytes", ow.bytes),
			slog.Duration("dur", dur),
			slog.String("remote", r.RemoteAddr),
		)
	})
}
