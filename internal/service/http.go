package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/campaign"
	"repro/internal/dag"
	"repro/internal/robust"
)

// apiError is the JSON error payload every handler returns on failure.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// writeServiceError distinguishes request faults (400) from server-side
// failures (500).
func writeServiceError(w http.ResponseWriter, err error) {
	if IsBadRequest(err) {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

// Handler returns the service's HTTP API:
//
//	GET  /healthz            liveness
//	POST /v1/schedule        schedule a DAG, get schedule + predicted makespan
//	POST /v1/simulate        schedule a DAG, get the simulated timeline; a
//	                         body with "dags" (an array) instead of "dag" is
//	                         served as one batch under a single model
//	                         resolution
//	POST /v1/jobs            submit an async study run
//	GET  /v1/jobs            list retained jobs
//	GET  /v1/jobs/{id}       poll one job
//	POST /v1/campaigns       submit a declarative what-if sweep
//	GET  /v1/campaigns       list retained campaigns
//	GET  /v1/campaigns/{id}  poll one campaign
//	POST /v1/robustness      submit a Monte Carlo winner-stability study
//	GET  /v1/robustness      list retained robustness studies
//	GET  /v1/robustness/{id} poll one robustness study
//	GET  /v1/models          fitted-model registry contents and build cost
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmitCampaign)
	mux.HandleFunc("GET /v1/campaigns", s.handleListCampaigns)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleGetCampaign)
	mux.HandleFunc("POST /v1/robustness", s.handleSubmitRobustness)
	mux.HandleFunc("GET /v1/robustness", s.handleListRobustness)
	mux.HandleFunc("GET /v1/robustness/{id}", s.handleGetRobustness)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	return mux
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status string `json:"status"`
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

func (s *Service) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if !decode(w, r, &req) {
		return
	}
	resp, err := s.Schedule(r.Context(), req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleSimulate(w http.ResponseWriter, r *http.Request) {
	// One endpoint, two shapes: "dag" simulates a single application,
	// "dags" serves the whole array as a batch that shares one registry
	// resolution and the environment's engine pool. DAGs is a pointer so a
	// present-but-empty "dags" key still selects the batch shape (and is
	// rejected as an empty batch) instead of silently degrading to the
	// single path.
	var wire struct {
		ScheduleRequest
		DAGs *[]*dag.Graph `json:"dags"`
	}
	if !decode(w, r, &wire) {
		return
	}
	if wire.DAGs != nil {
		if wire.DAG != nil {
			writeError(w, http.StatusBadRequest,
				errors.New(`service: request has both "dag" and "dags"; send one`))
			return
		}
		resp, err := s.SimulateBatch(r.Context(), SimulateBatchRequest{
			DAGs: *wire.DAGs, Algorithm: wire.Algorithm, Model: wire.Model,
			Environment: wire.Environment, Seed: wire.Seed,
		})
		if err != nil {
			writeServiceError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp, err := s.Simulate(r.Context(), wire.ScheduleRequest)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req StudyRequest
	if !decode(w, r, &req) {
		return
	}
	status, err := s.SubmitStudy(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeServiceError(w, err)
	default:
		writeJSON(w, http.StatusAccepted, status)
	}
}

func (s *Service) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List())
}

func (s *Service) handleGetJob(w http.ResponseWriter, r *http.Request) {
	status, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Service) handleSubmitCampaign(w http.ResponseWriter, r *http.Request) {
	var spec campaign.Spec
	if !decode(w, r, &spec) {
		return
	}
	status, err := s.SubmitCampaign(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeServiceError(w, err)
	default:
		writeJSON(w, http.StatusAccepted, status)
	}
}

// listJobsByKind writes the retained jobs whose kind satisfies pred — the
// shared body of the campaign and robustness listing endpoints.
func (s *Service) listJobsByKind(w http.ResponseWriter, pred func(string) bool) {
	all := s.jobs.List()
	out := make([]JobStatus, 0, len(all))
	for _, j := range all {
		if pred(j.Kind) {
			out = append(out, j)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleListCampaigns(w http.ResponseWriter, r *http.Request) {
	s.listJobsByKind(w, isCampaignKind)
}

func (s *Service) handleGetCampaign(w http.ResponseWriter, r *http.Request) {
	status, ok := s.jobs.Get(r.PathValue("id"))
	if !ok || !isCampaignKind(status.Kind) {
		writeError(w, http.StatusNotFound, errors.New("service: no such campaign"))
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Service) handleSubmitRobustness(w http.ResponseWriter, r *http.Request) {
	var spec robust.Spec
	if !decode(w, r, &spec) {
		return
	}
	status, err := s.SubmitRobustness(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeServiceError(w, err)
	default:
		writeJSON(w, http.StatusAccepted, status)
	}
}

func (s *Service) handleListRobustness(w http.ResponseWriter, r *http.Request) {
	s.listJobsByKind(w, isRobustKind)
}

func (s *Service) handleGetRobustness(w http.ResponseWriter, r *http.Request) {
	status, ok := s.jobs.Get(r.PathValue("id"))
	if !ok || !isRobustKind(status.Kind) {
		writeError(w, http.StatusNotFound, errors.New("service: no such robustness study"))
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Service) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.registry.Models())
}
