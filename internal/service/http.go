package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/arrival"
	"repro/internal/campaign"
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/robust"
)

// apiError is the JSON error payload every handler returns on failure.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// writeServiceError distinguishes request faults (400) from server-side
// failures (500).
func writeServiceError(w http.ResponseWriter, err error) {
	if IsBadRequest(err) {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

// Handler returns the service's HTTP API:
//
//	GET  /healthz            liveness
//	POST /v1/schedule        schedule a DAG, get schedule + predicted makespan
//	POST /v1/simulate        schedule a DAG, get the simulated timeline; a
//	                         body with "dags" (an array) instead of "dag" is
//	                         served as one batch under a single model
//	                         resolution
//	POST /v1/jobs            submit an async study run
//	GET  /v1/jobs            list retained jobs
//	GET  /v1/jobs/{id}       poll one job
//	POST /v1/campaigns       submit a declarative what-if sweep
//	GET  /v1/campaigns       list retained campaigns
//	GET  /v1/campaigns/{id}  poll one campaign
//	POST /v1/robustness      submit a Monte Carlo winner-stability study
//	GET  /v1/robustness      list retained robustness studies
//	GET  /v1/robustness/{id} poll one robustness study
//	POST /v1/arrivals        submit an online-arrival scenario
//	GET  /v1/arrivals        list retained arrival scenarios
//	GET  /v1/arrivals/{id}   poll one arrival scenario
//	GET  /v1/models          fitted-model registry contents and build cost
//	GET  /metrics            Prometheus text exposition
//	     /debug/pprof/*      runtime profiles (only with Options.EnablePprof)
//
// The job, campaign and robustness poll endpoints accept ?watch=<duration>
// to long-poll: the response is deferred until the job's state or progress
// changes, or the duration elapses.
//
// Every route is wrapped in the observability middleware: per-route request
// metrics, structured request logs with request IDs, and the guarantee that
// any error response — including the mux's own 404/405 — carries the JSON
// {"error": ...} envelope.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := map[string]*routeInstruments{"": instrumentsFor("unmatched")}
	handle := func(pattern string, h http.Handler) {
		routes[pattern] = instrumentsFor(pattern)
		mux.Handle(pattern, named(pattern, h))
	}
	handleFunc := func(pattern string, h http.HandlerFunc) { handle(pattern, h) }
	handleFunc("GET /healthz", s.handleHealth)
	handleFunc("POST /v1/schedule", s.handleSchedule)
	handleFunc("POST /v1/simulate", s.handleSimulate)
	handleFunc("POST /v1/jobs", s.handleSubmitJob)
	handleFunc("GET /v1/jobs", s.handleListJobs)
	handleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	handleFunc("POST /v1/campaigns", s.handleSubmitCampaign)
	handleFunc("GET /v1/campaigns", s.handleListCampaigns)
	handleFunc("GET /v1/campaigns/{id}", s.handleGetCampaign)
	handleFunc("POST /v1/robustness", s.handleSubmitRobustness)
	handleFunc("GET /v1/robustness", s.handleListRobustness)
	handleFunc("GET /v1/robustness/{id}", s.handleGetRobustness)
	handleFunc("POST /v1/arrivals", s.handleSubmitArrival)
	handleFunc("GET /v1/arrivals", s.handleListArrivals)
	handleFunc("GET /v1/arrivals/{id}", s.handleGetArrival)
	handleFunc("GET /v1/models", s.handleModels)
	handle("GET /metrics", obs.Default.Handler())
	if s.opts.EnablePprof {
		handleFunc("/debug/pprof/", pprof.Index)
		handleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		handleFunc("/debug/pprof/profile", pprof.Profile)
		handleFunc("/debug/pprof/symbol", pprof.Symbol)
		handleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.withObs(routes, mux)
}

// HealthResponse is the /healthz payload: liveness plus basic process
// vitals, cheap enough to scrape aggressively.
type HealthResponse struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	GoVersion     string  `json:"go_version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Goroutines    int     `json:"goroutines"`
}

// buildVersion resolves the module version stamped into the binary; "(devel)"
// for plain `go build`, "unknown" when no build info is embedded (e.g. some
// test binaries).
var buildVersion = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
})

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Version:       buildVersion(),
		GoVersion:     runtime.Version(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
	})
}

func (s *Service) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if !decode(w, r, &req) {
		return
	}
	resp, err := s.Schedule(r.Context(), req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleSimulate(w http.ResponseWriter, r *http.Request) {
	// One endpoint, two shapes: "dag" simulates a single application,
	// "dags" serves the whole array as a batch that shares one registry
	// resolution and the environment's engine pool. DAGs is a pointer so a
	// present-but-empty "dags" key still selects the batch shape (and is
	// rejected as an empty batch) instead of silently degrading to the
	// single path.
	var wire struct {
		ScheduleRequest
		DAGs *[]*dag.Graph `json:"dags"`
	}
	if !decode(w, r, &wire) {
		return
	}
	if wire.DAGs != nil {
		if wire.DAG != nil {
			writeError(w, http.StatusBadRequest,
				errors.New(`service: request has both "dag" and "dags"; send one`))
			return
		}
		resp, err := s.SimulateBatch(r.Context(), SimulateBatchRequest{
			DAGs: *wire.DAGs, Algorithm: wire.Algorithm, Model: wire.Model,
			Environment: wire.Environment, Seed: wire.Seed,
		})
		if err != nil {
			writeServiceError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp, err := s.Simulate(r.Context(), wire.ScheduleRequest)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req StudyRequest
	if !decode(w, r, &req) {
		return
	}
	status, err := s.SubmitStudy(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeServiceError(w, err)
	default:
		writeJSON(w, http.StatusAccepted, status)
	}
}

func (s *Service) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List())
}

// watchParam parses the optional ?watch long-poll parameter: absent means a
// plain poll; a bare "watch" selects the default window; otherwise the value
// is a Go duration, capped so a stuck client cannot pin a connection.
func watchParam(r *http.Request) (time.Duration, bool, error) {
	const (
		defaultWatch = 30 * time.Second
		maxWatch     = 60 * time.Second
	)
	if !r.URL.Query().Has("watch") {
		return 0, false, nil
	}
	raw := r.URL.Query().Get("watch")
	if raw == "" {
		return defaultWatch, true, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, false, fmt.Errorf("service: bad watch duration %q: %w", raw, err)
	}
	if d <= 0 {
		return 0, false, fmt.Errorf("service: watch duration %q must be positive", raw)
	}
	if d > maxWatch {
		d = maxWatch
	}
	return d, true, nil
}

// getJob serves the job poll endpoints: a plain status read, or — with
// ?watch — a long-poll that responds as soon as the job's state or progress
// moves. pred filters the job kinds the endpoint exposes.
func (s *Service) getJob(w http.ResponseWriter, r *http.Request, pred func(string) bool, notFound string) {
	d, watch, err := watchParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := r.PathValue("id")
	status, ok := s.jobs.Get(id)
	if !ok || !pred(status.Kind) {
		writeError(w, http.StatusNotFound, errors.New(notFound))
		return
	}
	if watch {
		if status, ok = s.jobs.Watch(r.Context(), id, d); !ok {
			writeError(w, http.StatusNotFound, errors.New(notFound))
			return
		}
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Service) handleGetJob(w http.ResponseWriter, r *http.Request) {
	s.getJob(w, r, func(string) bool { return true }, "service: no such job")
}

func (s *Service) handleSubmitCampaign(w http.ResponseWriter, r *http.Request) {
	var spec campaign.Spec
	if !decode(w, r, &spec) {
		return
	}
	status, err := s.SubmitCampaign(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeServiceError(w, err)
	default:
		writeJSON(w, http.StatusAccepted, status)
	}
}

// listJobsByKind writes the retained jobs whose kind satisfies pred — the
// shared body of the campaign and robustness listing endpoints.
func (s *Service) listJobsByKind(w http.ResponseWriter, pred func(string) bool) {
	all := s.jobs.List()
	out := make([]JobStatus, 0, len(all))
	for _, j := range all {
		if pred(j.Kind) {
			out = append(out, j)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleListCampaigns(w http.ResponseWriter, r *http.Request) {
	s.listJobsByKind(w, isCampaignKind)
}

func (s *Service) handleGetCampaign(w http.ResponseWriter, r *http.Request) {
	s.getJob(w, r, isCampaignKind, "service: no such campaign")
}

func (s *Service) handleSubmitRobustness(w http.ResponseWriter, r *http.Request) {
	var spec robust.Spec
	if !decode(w, r, &spec) {
		return
	}
	status, err := s.SubmitRobustness(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeServiceError(w, err)
	default:
		writeJSON(w, http.StatusAccepted, status)
	}
}

func (s *Service) handleListRobustness(w http.ResponseWriter, r *http.Request) {
	s.listJobsByKind(w, isRobustKind)
}

func (s *Service) handleGetRobustness(w http.ResponseWriter, r *http.Request) {
	s.getJob(w, r, isRobustKind, "service: no such robustness study")
}

func (s *Service) handleSubmitArrival(w http.ResponseWriter, r *http.Request) {
	var spec arrival.Spec
	if !decode(w, r, &spec) {
		return
	}
	status, err := s.SubmitArrival(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeServiceError(w, err)
	default:
		writeJSON(w, http.StatusAccepted, status)
	}
}

func (s *Service) handleListArrivals(w http.ResponseWriter, r *http.Request) {
	s.listJobsByKind(w, isArrivalKind)
}

func (s *Service) handleGetArrival(w http.ResponseWriter, r *http.Request) {
	s.getJob(w, r, isArrivalKind, "service: no such arrival scenario")
}

func (s *Service) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.registry.Models())
}
