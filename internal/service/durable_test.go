package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// fastDurable shrinks the claim cadence for tests.
func fastDurable(t *testing.T) {
	t.Helper()
	oldPoll, oldCompact := claimPoll, walCompactBytes
	claimPoll = 5 * time.Millisecond
	walCompactBytes = oldCompact
	t.Cleanup(func() { claimPoll, walCompactBytes = oldPoll, oldCompact })
}

func openServiceStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func waitJobState(t *testing.T, m *JobManager, id string, want ...JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		status, ok := m.Get(id)
		if ok {
			for _, s := range want {
				if status.State == s {
					return status
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	status, _ := m.Get(id)
	t.Fatalf("job %s stuck in %q, want one of %v", id, status.State, want)
	return JobStatus{}
}

func TestDurableManagerRunsPayload(t *testing.T) {
	fastDurable(t)
	dir := t.TempDir()
	st := openServiceStore(t, dir)

	runner := func(ctx context.Context, kind string, payload []byte, prog *obs.Progress) (string, error) {
		prog.AddCellsTotal(2)
		prog.AddCellsDone(2)
		return "ran " + kind + " with " + string(payload), nil
	}
	m := NewDurableJobManager(2, 8, st, "alpha", time.Second, runner, nil)
	defer m.Shutdown(context.Background())

	if !m.Durable() || m.Replica() != "alpha" {
		t.Fatalf("Durable()=%v Replica()=%q", m.Durable(), m.Replica())
	}
	status, err := m.SubmitPayload("kind-x", json.RawMessage(`{"n":1}`))
	if err != nil {
		t.Fatalf("SubmitPayload: %v", err)
	}
	if status.State != JobQueued {
		t.Fatalf("submitted state = %q", status.State)
	}

	final := waitJobState(t, m, status.ID, JobDone)
	if final.Output != `ran kind-x with {"n":1}` {
		t.Fatalf("output = %q", final.Output)
	}
	if final.Replica != "alpha" || final.Restarts != 0 {
		t.Fatalf("replica/restarts = %q/%d", final.Replica, final.Restarts)
	}
	if final.Progress == nil || final.Progress.CellsDone != 2 {
		t.Fatalf("final progress = %+v", final.Progress)
	}
	if len(m.List()) != 1 {
		t.Fatalf("List() = %+v", m.List())
	}

	// The closure-submit API is the in-memory manager's; durable managers
	// reject it rather than silently losing durability.
	if _, err := m.Submit("k", func(ctx context.Context) (string, error) { return "", nil }); err == nil {
		t.Fatal("closure Submit succeeded on a durable manager")
	}
}

func TestDurableManagerFailedJob(t *testing.T) {
	fastDurable(t)
	st := openServiceStore(t, t.TempDir())
	runner := func(ctx context.Context, kind string, payload []byte, prog *obs.Progress) (string, error) {
		return "", errors.New("deliberate failure")
	}
	m := NewDurableJobManager(1, 8, st, "alpha", time.Second, runner, nil)
	defer m.Shutdown(context.Background())

	status, err := m.SubmitPayload("bad", nil)
	if err != nil {
		t.Fatalf("SubmitPayload: %v", err)
	}
	final := waitJobState(t, m, status.ID, JobFailed)
	if final.Error != "deliberate failure" {
		t.Fatalf("error = %q", final.Error)
	}
}

// Two replicas drain a shared pool; every job completes exactly once and
// both see identical terminal states.
func TestDurableManagerTwoReplicasShareThePool(t *testing.T) {
	fastDurable(t)
	dir := t.TempDir()
	stA := openServiceStore(t, dir)
	stB := openServiceStore(t, dir)

	runner := func(ctx context.Context, kind string, payload []byte, prog *obs.Progress) (string, error) {
		time.Sleep(10 * time.Millisecond) // let the pool interleave
		return "out:" + kind, nil
	}
	a := NewDurableJobManager(2, 32, stA, "alpha", time.Second, runner, nil)
	defer a.Shutdown(context.Background())
	b := NewDurableJobManager(2, 32, stB, "beta", time.Second, runner, nil)
	defer b.Shutdown(context.Background())

	const jobs = 12
	ids := make([]string, jobs)
	for i := range ids {
		status, err := a.SubmitPayload(fmt.Sprintf("job%02d", i), nil)
		if err != nil {
			t.Fatalf("SubmitPayload: %v", err)
		}
		ids[i] = status.ID
	}
	ranOn := make(map[string]int)
	for i, id := range ids {
		final := waitJobState(t, a, id, JobDone)
		if final.Output != fmt.Sprintf("out:job%02d", i) {
			t.Fatalf("job %s output = %q", id, final.Output)
		}
		ranOn[final.Replica]++
		// The other replica serves the same terminal status.
		other, ok := b.Get(id)
		if !ok || other.State != JobDone || other.Output != final.Output {
			t.Fatalf("replica beta sees %+v for %s", other, id)
		}
	}
	for r := range ranOn {
		if r != "alpha" && r != "beta" {
			t.Fatalf("job ran on unknown replica %q (distribution %v)", r, ranOn)
		}
	}
}

// A replica that vanishes mid-run (simulated by a bare store-level claim
// that is never renewed) loses the job to a live manager after the TTL.
func TestDurableManagerReclaimsExpiredLease(t *testing.T) {
	fastDurable(t)
	dir := t.TempDir()
	stDead := openServiceStore(t, dir)

	rec, err := stDead.SubmitJob("reclaim-me", nil)
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	// The "dead" replica claims with a tiny TTL and never renews — the
	// store-level equivalent of a SIGKILL'd process.
	if _, ok, err := stDead.Claim("dead", 30*time.Millisecond); err != nil || !ok {
		t.Fatalf("dead claim: ok=%v err=%v", ok, err)
	}

	stLive := openServiceStore(t, dir)
	m := NewDurableJobManager(1, 8, stLive, "live", time.Second,
		func(ctx context.Context, kind string, payload []byte, prog *obs.Progress) (string, error) {
			return "rescued", nil
		}, nil)
	defer m.Shutdown(context.Background())

	final := waitJobState(t, m, rec.ID, JobDone)
	if final.Output != "rescued" || final.Replica != "live" {
		t.Fatalf("final = %+v", final)
	}
	if final.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (one takeover)", final.Restarts)
	}
}

// Graceful shutdown releases running jobs back to the queue instead of
// completing, cancelling, or leaking them; a second manager picks them up.
func TestDurableShutdownReleasesRunningJobs(t *testing.T) {
	fastDurable(t)
	dir := t.TempDir()
	stA := openServiceStore(t, dir)

	started := make(chan struct{}, 1)
	blockingRunner := func(ctx context.Context, kind string, payload []byte, prog *obs.Progress) (string, error) {
		started <- struct{}{}
		<-ctx.Done() // runs until shutdown cancels it
		return "should not complete", ctx.Err()
	}
	a := NewDurableJobManager(1, 8, stA, "alpha", time.Second, blockingRunner, nil)

	status, err := a.SubmitPayload("long", nil)
	if err != nil {
		t.Fatalf("SubmitPayload: %v", err)
	}
	<-started
	if err := a.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The job went back to queued durably — not cancelled, not failed.
	rec, ok, err := stA.Job(status.ID)
	if err != nil || !ok {
		t.Fatalf("Job: ok=%v err=%v", ok, err)
	}
	if rec.State != store.StateQueued {
		t.Fatalf("after shutdown, state = %q, want queued", rec.State)
	}

	stB := openServiceStore(t, dir)
	b := NewDurableJobManager(1, 8, stB, "beta", time.Second,
		func(ctx context.Context, kind string, payload []byte, prog *obs.Progress) (string, error) {
			return "finished elsewhere", nil
		}, nil)
	defer b.Shutdown(context.Background())
	final := waitJobState(t, b, status.ID, JobDone)
	if final.Output != "finished elsewhere" || final.Replica != "beta" {
		t.Fatalf("final = %+v", final)
	}
}

// Terminal transitions compact the store once the WAL passes the threshold,
// and retention prunes finished jobs beyond the window — the durable fix
// for unbounded WAL growth.
func TestDurableRetentionCompactsStore(t *testing.T) {
	fastDurable(t)
	oldCompact := walCompactBytes
	walCompactBytes = 1 // every terminal transition compacts
	t.Cleanup(func() { walCompactBytes = oldCompact })

	dir := t.TempDir()
	st := openServiceStore(t, dir)
	m := NewDurableJobManager(1, 2, st, "alpha", time.Second,
		func(ctx context.Context, kind string, payload []byte, prog *obs.Progress) (string, error) {
			return "ok", nil
		}, nil)
	defer m.Shutdown(context.Background())

	var last JobStatus
	for i := 0; i < 6; i++ {
		status, err := m.SubmitPayload(fmt.Sprintf("k%d", i), nil)
		if err != nil {
			t.Fatalf("SubmitPayload: %v", err)
		}
		last = waitJobState(t, m, status.ID, JobDone)
	}
	list := m.List()
	if len(list) > 3 { // retain=2 finished + possibly one in flight
		t.Fatalf("retention kept %d jobs: %+v", len(list), list)
	}
	// The WAL was reset by compaction (nothing ran since the last terminal
	// transition's compact).
	size, err := st.WALSize()
	if err != nil {
		t.Fatalf("WALSize: %v", err)
	}
	if size != 0 {
		t.Fatalf("WAL size after compacting retention = %d, want 0", size)
	}
	// Replay equivalence: a fresh handle sees the same retained jobs.
	st2 := openServiceStore(t, dir)
	rec, ok, err := st2.Job(last.ID)
	if err != nil || !ok {
		t.Fatalf("fresh handle lost job %s: ok=%v err=%v", last.ID, ok, err)
	}
	if rec.Output != "ok" {
		t.Fatalf("fresh handle output = %q", rec.Output)
	}
}

// The service wires a Store into a durable job manager and registers the
// environment payload dispatcher: a study submitted through the normal API
// runs from its durable payload and matches the synchronous result.
func TestServiceDurableStudyMatchesSynchronous(t *testing.T) {
	fastDurable(t)
	dir := t.TempDir()
	st := openServiceStore(t, dir)

	opts := DefaultOptions()
	opts.Store = st
	opts.ReplicaID = "svc-test"
	opts.LeaseTTL = 2 * time.Second
	svc := New(opts)
	defer svc.Close(context.Background())

	req := StudyRequest{Study: "table1", Environment: "bayreuth"}
	status, err := svc.SubmitStudy(req)
	if err != nil {
		t.Fatalf("SubmitStudy: %v", err)
	}
	final := waitJobState(t, svc.Jobs(), status.ID, JobDone, JobFailed)
	if final.State != JobDone {
		t.Fatalf("study failed: %s", final.Error)
	}
	if final.Replica != "svc-test" {
		t.Fatalf("replica = %q", final.Replica)
	}

	want, err := svc.RunStudy(context.Background(), req)
	if err != nil {
		t.Fatalf("RunStudy: %v", err)
	}
	if final.Output != want {
		t.Fatalf("durable study output differs from synchronous run:\n--- durable\n%s\n--- sync\n%s", final.Output, want)
	}
}

// Fitted models persist: a second service on the same store directory lists
// the models measured by the first and serves them as cache hits without
// re-fitting.
func TestRegistryModelCachePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	key := ModelKey{Environment: "bayreuth", Kind: "empirical", Seed: 42}

	st1 := openServiceStore(t, dir)
	r1 := NewModelRegistry(opts.Profile, opts.Empirical)
	r1.SetStore(st1)
	r1.Warm()
	if _, hit, err := r1.Get(key); err != nil || hit {
		t.Fatalf("first Get: hit=%v err=%v", hit, err)
	}

	// "Restart": a fresh registry over a fresh handle on the same dir.
	st2 := openServiceStore(t, dir)
	r2 := NewModelRegistry(opts.Profile, opts.Empirical)
	r2.SetStore(st2)
	if n := r2.Warm(); n != 2 {
		t.Fatalf("Warm() = %d entries, want 2 (profile + empirical)", n)
	}
	infos := r2.Models()
	if len(infos) != 2 {
		t.Fatalf("restarted registry lists %d models, want 2: %+v", len(infos), infos)
	}

	model, hit, err := r2.Get(key)
	if err != nil {
		t.Fatalf("restarted Get: %v", err)
	}
	if !hit {
		t.Fatal("first lookup after restart was not a cache hit")
	}
	if model == nil {
		t.Fatal("restarted Get returned no model")
	}
	// The fit was loaded, not re-measured.
	c, ran, err := r2.campaignFor("bayreuth", 42)
	if err != nil {
		t.Fatalf("campaignFor: %v", err)
	}
	if ran && !c.fromDisk {
		t.Fatal("restarted registry re-ran the fitting campaign instead of loading the cache")
	}

	// And the loaded models predict identically to the originals: compare
	// through the study pipeline's cheapest probe — the model's own values.
	m1, _, _ := r1.Get(key)
	g := testDAG(t)
	for _, task := range []int{0, 1, 2} {
		tk := g.Task(task)
		for _, p := range []int{1, 2, 8, 32} {
			if got, want := model.TaskTime(tk, p), m1.TaskTime(tk, p); got != want {
				t.Fatalf("task %d p %d: loaded model predicts %v, fitted %v", task, p, got, want)
			}
		}
	}
}
