package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitState polls until the job reaches one of the wanted states.
func waitState(t *testing.T, m *JobManager, id string, want ...JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		status, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		for _, s := range want {
			if status.State == s {
				return status
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	status, _ := m.Get(id)
	t.Fatalf("job %s stuck in %s, want one of %v", id, status.State, want)
	return JobStatus{}
}

func TestJobLifecycle(t *testing.T) {
	m := NewJobManager(2, 4, 8)
	defer m.Shutdown(context.Background())

	status, err := m.Submit("greet", func(ctx context.Context) (string, error) {
		return "hello", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if status.State != JobQueued {
		t.Fatalf("initial state = %s, want queued", status.State)
	}
	done := waitState(t, m, status.ID, JobDone)
	if done.Output != "hello" {
		t.Errorf("output = %q, want hello", done.Output)
	}
	if done.Error != "" {
		t.Errorf("unexpected error %q", done.Error)
	}

	status, err = m.Submit("fail", func(ctx context.Context) (string, error) {
		return "", errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, m, status.ID, JobFailed)
	if failed.Error != "boom" {
		t.Errorf("error = %q, want boom", failed.Error)
	}
}

func TestJobQueueBounded(t *testing.T) {
	m := NewJobManager(1, 2, 8)
	defer m.Shutdown(context.Background())

	block := make(chan struct{})
	release := func(ctx context.Context) (string, error) {
		select {
		case <-block:
			return "ok", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	// One running + two queued fill the pool and the queue.
	var ids []string
	for i := 0; i < 3; i++ {
		status, err := m.Submit("block", release)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, status.ID)
		if i == 0 {
			waitState(t, m, status.ID, JobRunning)
		}
	}
	if _, err := m.Submit("overflow", release); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	close(block)
	for _, id := range ids {
		waitState(t, m, id, JobDone)
	}
}

func TestShutdownCancelsQueuedAndRunningJobs(t *testing.T) {
	m := NewJobManager(1, 4, 8)

	running, err := m.Submit("running", func(ctx context.Context) (string, error) {
		<-ctx.Done() // honours cancellation, like the studies do
		return "", ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, JobRunning)

	var queued []string
	for i := 0; i < 3; i++ {
		status, err := m.Submit("queued", func(ctx context.Context) (string, error) {
			return "should not run", ctx.Err()
		})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, status.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := waitState(t, m, running.ID, JobCancelled); got.Error == "" {
		t.Errorf("running job cancelled without error message")
	}
	for _, id := range queued {
		status, ok := m.Get(id)
		if !ok {
			t.Fatalf("queued job %s evicted", id)
		}
		if status.State != JobCancelled {
			t.Errorf("queued job %s state = %s, want cancelled", id, status.State)
		}
		if status.Output != "" {
			t.Errorf("queued job %s ran: output %q", id, status.Output)
		}
	}

	if _, err := m.Submit("late", func(ctx context.Context) (string, error) { return "", nil }); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("submit after shutdown: err = %v, want ErrShuttingDown", err)
	}
}

func TestJobRetentionEvictsOldest(t *testing.T) {
	m := NewJobManager(1, 8, 2)
	defer m.Shutdown(context.Background())

	var ids []string
	for i := 0; i < 5; i++ {
		status, err := m.Submit("quick", func(ctx context.Context) (string, error) { return "ok", nil })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, status.ID)
		waitState(t, m, status.ID, JobDone) // serialise so eviction order is stable
	}
	list := m.List()
	if len(list) != 2 {
		t.Fatalf("retained %d jobs, want 2: %+v", len(list), list)
	}
	if list[0].ID != ids[3] || list[1].ID != ids[4] {
		t.Errorf("retained %s, %s; want the two most recent %s, %s",
			list[0].ID, list[1].ID, ids[3], ids[4])
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Errorf("oldest job %s still retrievable", ids[0])
	}
}
