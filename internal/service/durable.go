package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Durable job-pool mode: when a JobManager is backed by a store.Store, jobs
// are not queued in process memory — submissions append (kind, payload)
// records to the shared WAL, and every replica's workers claim queued jobs
// by lease, renew while running, and write the terminal transition back.
// Any replica sharing the store directory serves status reads for any job,
// and a job whose holder dies mid-run is reclaimed after lease expiry and
// restarted from its payload on a surviving replica (deterministic work
// makes the rerun's output identical to an uninterrupted one).

// PayloadRunner materialises a durable job from its submission record. The
// service installs a runner that dispatches on kind: campaign and
// robustness kinds decode their specs, everything else is a study request.
type PayloadRunner func(ctx context.Context, kind string, payload []byte, prog *obs.Progress) (string, error)

// ErrNotDurable is returned by SubmitPayload on a manager without a store.
var ErrNotDurable = errors.New("service: job manager has no store")

// durable holds the store-backed state of a JobManager.
type durable struct {
	st      *store.Store
	replica string
	ttl     time.Duration
	runner  PayloadRunner

	// local tracks jobs running on this replica, so status reads overlay
	// their live progress over the (renew-cadence) snapshots in the store.
	mu    sync.Mutex
	local map[string]*obs.Progress

	lastHeartbeat atomic.Int64 // unix nanos of the last replica record
}

// claimPoll is the idle claim-loop cadence; a variable so tests tighten it.
var claimPoll = 100 * time.Millisecond

// walCompactBytes is the WAL size past which a terminal transition triggers
// snapshot compaction; a variable so tests can force compaction on every
// completion.
var walCompactBytes = int64(256 << 10)

// NewDurableJobManager starts a store-backed manager: workers claim-loop
// goroutines over the shared pool, retaining the last retain finished jobs
// in the store across all replicas. The replica name is this process's
// lease holder identity; ttl is the lease duration (renewed at ttl/3 while
// a job runs).
func NewDurableJobManager(workers, retain int, st *store.Store, replica string, ttl time.Duration, runner PayloadRunner) *JobManager {
	if workers < 1 {
		workers = 1
	}
	if retain < 1 {
		retain = 1
	}
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &JobManager{
		ctx:    ctx,
		cancel: cancel,
		retain: retain,
		jobs:   make(map[string]*job),
		dur: &durable{
			st: st, replica: replica, ttl: ttl, runner: runner,
			local: make(map[string]*obs.Progress),
		},
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.claimLoop()
	}
	return m
}

// Durable reports whether the manager is backed by a shared store.
func (m *JobManager) Durable() bool { return m.dur != nil }

// Replica returns the manager's lease-holder identity ("" when not durable).
func (m *JobManager) Replica() string {
	if m.dur == nil {
		return ""
	}
	return m.dur.replica
}

// SubmitPayload appends a job to the shared pool. Durable managers only.
func (m *JobManager) SubmitPayload(kind string, payload json.RawMessage) (JobStatus, error) {
	if m.dur == nil {
		return JobStatus{}, ErrNotDurable
	}
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return JobStatus{}, ErrShuttingDown
	}
	rec, err := m.dur.st.SubmitJob(kind, payload)
	if err != nil {
		return JobStatus{}, err
	}
	jobsSubmitted.Inc()
	return m.statusFromRecord(rec), nil
}

// statusFromRecord maps a store record to the external status shape,
// overlaying live local progress for jobs running on this replica.
func (m *JobManager) statusFromRecord(rec store.JobRecord) JobStatus {
	status := JobStatus{
		ID:       rec.ID,
		Kind:     rec.Kind,
		State:    JobState(rec.State),
		Created:  rec.Created,
		Started:  rec.Started,
		Ended:    rec.Ended,
		Output:   rec.Output,
		Error:    rec.Error,
		Progress: rec.Progress,
		Replica:  rec.Holder,
		Restarts: rec.Restarts,
	}
	m.dur.mu.Lock()
	prog, local := m.dur.local[rec.ID]
	m.dur.mu.Unlock()
	if local && rec.State == store.StateRunning {
		snap := prog.Snapshot()
		if snap != (obs.ProgressSnapshot{}) {
			status.Progress = &snap
		}
	}
	return status
}

// claimLoop is one worker's life: claim a job when one is available, run
// it, otherwise heartbeat and idle.
func (m *JobManager) claimLoop() {
	defer m.wg.Done()
	for {
		if m.ctx.Err() != nil {
			return
		}
		rec, ok, err := m.dur.st.Claim(m.dur.replica, m.dur.ttl)
		if err == nil && ok {
			m.runDurable(rec)
			continue
		}
		m.heartbeat()
		select {
		case <-m.ctx.Done():
			return
		case <-time.After(claimPoll):
		}
	}
}

// heartbeat registers the replica as live, at most every ttl/2.
func (m *JobManager) heartbeat() {
	now := time.Now().UnixNano()
	last := m.dur.lastHeartbeat.Load()
	if now-last < int64(m.dur.ttl/2) || !m.dur.lastHeartbeat.CompareAndSwap(last, now) {
		return
	}
	_ = m.dur.st.Heartbeat(m.dur.replica, 2*m.dur.ttl)
}

// renewEvery is the lease-renewal cadence for a held job.
func (m *JobManager) renewEvery() time.Duration {
	d := m.dur.ttl / 3
	if d < 20*time.Millisecond {
		d = 20 * time.Millisecond
	}
	return d
}

// runDurable executes one claimed job: a renewal goroutine keeps the lease
// (and the stored progress snapshot) fresh while the runner works; losing
// the lease cancels the run. Terminal transitions are fenced by holder in
// the store, so a takeover can never be overwritten by the loser.
func (m *JobManager) runDurable(rec store.JobRecord) {
	prog := &obs.Progress{}
	m.dur.mu.Lock()
	m.dur.local[rec.ID] = prog
	m.dur.mu.Unlock()
	defer func() {
		m.dur.mu.Lock()
		delete(m.dur.local, rec.ID)
		m.dur.mu.Unlock()
	}()

	ctx, cancel := context.WithCancel(m.ctx)
	defer cancel()
	var leaseLost atomic.Bool
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		tick := time.NewTicker(m.renewEvery())
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				snap := prog.Snapshot()
				err := m.dur.st.Renew(rec.ID, m.dur.replica, m.dur.ttl, snapPtr(snap))
				if errors.Is(err, store.ErrLeaseLost) {
					leaseLost.Store(true)
					cancel()
					return
				}
			}
		}
	}()

	jobsRunning.Inc()
	started := time.Now()
	out, err := m.dur.runner(ctx, rec.Kind, rec.Payload, prog)
	jobsRunning.Dec()
	cancel()
	<-renewDone
	jobDuration(rec.Kind).Observe(time.Since(started).Seconds())

	snap := prog.Snapshot()
	switch {
	case leaseLost.Load():
		// Another replica owns the job now; any store write would be
		// rejected as a stale holder's.
	case err == nil:
		if werr := m.dur.st.Complete(rec.ID, m.dur.replica, out, snapPtr(snap)); werr == nil {
			jobsDone.Inc()
		}
	case m.ctx.Err() != nil:
		// Graceful shutdown: hand the job back so another replica restarts
		// it promptly instead of waiting out the lease.
		_ = m.dur.st.Release(rec.ID, m.dur.replica)
	default:
		if werr := m.dur.st.Fail(rec.ID, m.dur.replica, err.Error()); werr == nil {
			jobsFailed.Inc()
		}
	}
	m.maybeCompact()
}

// snapPtr boxes a non-zero snapshot, so untracked jobs keep a bare status.
func snapPtr(snap obs.ProgressSnapshot) *obs.ProgressSnapshot {
	if snap == (obs.ProgressSnapshot{}) {
		return nil
	}
	return &snap
}

// maybeCompact compacts the store once the WAL outgrows the threshold,
// pruning finished jobs beyond the retention window — the durable analogue
// of the in-memory manager's eviction, and the reason the WAL cannot grow
// without bound.
func (m *JobManager) maybeCompact() {
	size, err := m.dur.st.WALSize()
	if err != nil || size < walCompactBytes {
		return
	}
	_ = m.dur.st.Compact(m.retain)
}

// durableGet reads one job's status through the store.
func (m *JobManager) durableGet(id string) (JobStatus, bool) {
	rec, ok, err := m.dur.st.Job(id)
	if err != nil || !ok {
		return JobStatus{}, false
	}
	return m.statusFromRecord(rec), true
}

// durableList reads every retained job through the store.
func (m *JobManager) durableList() []JobStatus {
	recs, err := m.dur.st.Jobs()
	if err != nil {
		return nil
	}
	out := make([]JobStatus, 0, len(recs))
	for _, rec := range recs {
		out = append(out, m.statusFromRecord(rec))
	}
	sortJobs(out)
	return out
}

// durableShutdown stops the claim loops and waits for running jobs to
// release their leases. Queued jobs stay queued — they are durable state
// other replicas (or the next start) will claim, not this process's to
// cancel.
func (m *JobManager) durableShutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// defaultReplicaID derives a stable-enough holder identity for a process.
func defaultReplicaID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "replica"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}
