package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Durable job-pool mode: when a JobManager is backed by a store.Store, jobs
// are not queued in process memory — submissions append (kind, payload)
// records to the shared WAL, and every replica's workers claim queued jobs
// by lease, renew while running, and write the terminal transition back.
// Any replica sharing the store directory serves status reads for any job,
// and a job whose holder dies mid-run is reclaimed after lease expiry and
// restarted from its payload on a surviving replica (deterministic work
// makes the rerun's output identical to an uninterrupted one).

// PayloadRunner materialises a durable job from its submission record. The
// service installs a runner that dispatches on kind: campaign and
// robustness kinds decode their specs, everything else is a study request.
type PayloadRunner func(ctx context.Context, kind string, payload []byte, prog *obs.Progress) (string, error)

// ErrNotDurable is returned by SubmitPayload on a manager without a store.
var ErrNotDurable = errors.New("service: job manager has no store")

// durable holds the store-backed state of a JobManager.
type durable struct {
	st      *store.Store
	replica string
	ttl     time.Duration
	runner  PayloadRunner
	// cells, when non-nil, shards eligible jobs at cell granularity: the
	// claiming replica becomes the coordinator and every replica's claim
	// loops execute cells. Nil runs every job as a monolith.
	cells CellRunner

	// local tracks jobs running on this replica, so status reads overlay
	// their live progress over the (renew-cadence) snapshots in the store.
	mu    sync.Mutex
	local map[string]*obs.Progress

	lastHeartbeat atomic.Int64 // unix nanos of the last replica record
}

// cellsDone counts sharded cells this replica executed to completion — the
// per-replica share of a cluster's cooperative jobs.
var cellsDone = obs.Default.Counter("repro_jobs_cells_done_total",
	"Sharded job cells executed to completion by this replica.")

// claimPoll is the idle claim loop's fallback poll cadence; a variable so
// tests tighten it. Between polls the loop watches the store's ChangeStamp
// at claimWake cadence, so new work is usually picked up in ~claimWake.
var claimPoll = 100 * time.Millisecond

// claimWake is how often an idle claim loop stats the store for changes — a
// manifest read plus a WAL stat, no lock traffic, so ~10 ms pickup costs
// nothing measurable even with many replicas.
var claimWake = 10 * time.Millisecond

// walCompactBytes is the WAL size past which a terminal transition triggers
// snapshot compaction; a variable so tests can force compaction on every
// completion.
var walCompactBytes = int64(256 << 10)

// NewDurableJobManager starts a store-backed manager: workers claim-loop
// goroutines over the shared pool, retaining the last retain finished jobs
// in the store across all replicas. The replica name is this process's
// lease holder identity; ttl is the lease duration (renewed at ttl/3 while
// a job runs).
// When cells is non-nil, kinds it reports Shardable are planned into durable
// cell work-units that every replica's claim loops cooperate on; nil keeps
// every job monolithic.
func NewDurableJobManager(workers, retain int, st *store.Store, replica string, ttl time.Duration, runner PayloadRunner, cells CellRunner) *JobManager {
	if workers < 1 {
		workers = 1
	}
	if retain < 1 {
		retain = 1
	}
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &JobManager{
		ctx:    ctx,
		cancel: cancel,
		retain: retain,
		jobs:   make(map[string]*job),
		dur: &durable{
			st: st, replica: replica, ttl: ttl, runner: runner, cells: cells,
			local: make(map[string]*obs.Progress),
		},
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.claimLoop()
	}
	return m
}

// Durable reports whether the manager is backed by a shared store.
func (m *JobManager) Durable() bool { return m.dur != nil }

// Replica returns the manager's lease-holder identity ("" when not durable).
func (m *JobManager) Replica() string {
	if m.dur == nil {
		return ""
	}
	return m.dur.replica
}

// SubmitPayload appends a job to the shared pool. Durable managers only.
func (m *JobManager) SubmitPayload(kind string, payload json.RawMessage) (JobStatus, error) {
	if m.dur == nil {
		return JobStatus{}, ErrNotDurable
	}
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return JobStatus{}, ErrShuttingDown
	}
	rec, err := m.dur.st.SubmitJob(kind, payload)
	if err != nil {
		return JobStatus{}, err
	}
	jobsSubmitted.Inc()
	return m.statusFromRecord(rec), nil
}

// statusFromRecord maps a store record to the external status shape,
// overlaying live local progress for jobs running on this replica.
func (m *JobManager) statusFromRecord(rec store.JobRecord) JobStatus {
	status := JobStatus{
		ID:       rec.ID,
		Kind:     rec.Kind,
		State:    JobState(rec.State),
		Created:  rec.Created,
		Started:  rec.Started,
		Ended:    rec.Ended,
		Output:   rec.Output,
		Error:    rec.Error,
		Progress: rec.Progress,
		Replica:  rec.Holder,
		Restarts: rec.Restarts,
	}
	m.dur.mu.Lock()
	prog, local := m.dur.local[rec.ID]
	m.dur.mu.Unlock()
	if local && rec.State == store.StateRunning {
		snap := prog.Snapshot()
		if snap != (obs.ProgressSnapshot{}) {
			status.Progress = &snap
		}
	}
	return status
}

// claimLoop is one worker's life: claim a job when one is available, run
// it; failing that, claim cells of other replicas' sharded jobs; failing
// that, heartbeat and watch the store for changes.
func (m *JobManager) claimLoop() {
	defer m.wg.Done()
	var stamp store.ChangeStamp
	for {
		if m.ctx.Err() != nil {
			return
		}
		rec, ok, err := m.dur.st.Claim(m.dur.replica, m.dur.ttl)
		if err == nil && ok {
			m.runDurable(rec)
			continue
		}
		if m.dur.cells != nil && m.runCells(m.ctx, "") {
			continue
		}
		m.heartbeat()
		stamp = m.idleWait(m.ctx, stamp)
	}
}

// idleWait sleeps until the store changes (a new submission, claim, or cell
// transition moves its ChangeStamp) or the claimPoll fallback deadline
// passes, whichever is first. Stamp reads are lock-free — a manifest read
// plus a WAL stat — so many idle replicas watching one store cost nothing.
func (m *JobManager) idleWait(ctx context.Context, last store.ChangeStamp) store.ChangeStamp {
	wake := claimWake
	if wake > claimPoll {
		wake = claimPoll
	}
	deadline := time.Now().Add(claimPoll)
	for {
		select {
		case <-ctx.Done():
			return last
		case <-time.After(wake):
		}
		cur, err := m.dur.st.ChangeStamp()
		if err != nil {
			return last
		}
		if cur != last || !time.Now().Before(deadline) {
			return cur
		}
	}
}

// heartbeat registers the replica as live, at most every ttl/2.
func (m *JobManager) heartbeat() {
	now := time.Now().UnixNano()
	last := m.dur.lastHeartbeat.Load()
	if now-last < int64(m.dur.ttl/2) || !m.dur.lastHeartbeat.CompareAndSwap(last, now) {
		return
	}
	_ = m.dur.st.Heartbeat(m.dur.replica, 2*m.dur.ttl)
}

// renewEvery is the lease-renewal cadence for a held job.
func (m *JobManager) renewEvery() time.Duration {
	d := m.dur.ttl / 3
	if d < 20*time.Millisecond {
		d = 20 * time.Millisecond
	}
	return d
}

// runDurable executes one claimed job: a renewal goroutine keeps the lease
// (and the stored progress snapshot) fresh while the runner works; losing
// the lease cancels the run. Terminal transitions are fenced by holder in
// the store, so a takeover can never be overwritten by the loser.
func (m *JobManager) runDurable(rec store.JobRecord) {
	prog := &obs.Progress{}
	m.dur.mu.Lock()
	m.dur.local[rec.ID] = prog
	m.dur.mu.Unlock()
	defer func() {
		m.dur.mu.Lock()
		delete(m.dur.local, rec.ID)
		m.dur.mu.Unlock()
	}()

	ctx, cancel := context.WithCancel(m.ctx)
	defer cancel()
	var leaseLost atomic.Bool
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		tick := time.NewTicker(m.renewEvery())
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				snap := prog.Snapshot()
				err := m.dur.st.Renew(rec.ID, m.dur.replica, m.dur.ttl, snapPtr(snap))
				if errors.Is(err, store.ErrLeaseLost) {
					leaseLost.Store(true)
					cancel()
					return
				}
			}
		}
	}()

	jobsRunning.Inc()
	started := time.Now()
	var out string
	var err error
	if m.dur.cells != nil && m.dur.cells.Shardable(rec.Kind) {
		out, err = m.runSharded(ctx, rec, prog)
	} else {
		out, err = m.dur.runner(ctx, rec.Kind, rec.Payload, prog)
	}
	jobsRunning.Dec()
	cancel()
	<-renewDone
	jobDuration(rec.Kind).Observe(time.Since(started).Seconds())

	snap := prog.Snapshot()
	switch {
	case leaseLost.Load():
		// Another replica owns the job now; any store write would be
		// rejected as a stale holder's.
	case err == nil:
		if werr := m.dur.st.Complete(rec.ID, m.dur.replica, out, snapPtr(snap)); werr == nil {
			jobsDone.Inc()
		}
	case m.ctx.Err() != nil:
		// Graceful shutdown: hand the job back so another replica restarts
		// it promptly instead of waiting out the lease.
		_ = m.dur.st.Release(rec.ID, m.dur.replica)
	default:
		if werr := m.dur.st.Fail(rec.ID, m.dur.replica, err.Error()); werr == nil {
			jobsFailed.Inc()
		}
	}
	m.maybeCompact()
}

// runSharded coordinates one sharded job: plan its cells durably, join the
// workers executing them (every replica's claim loops pick cells up, this
// one included), and once all cells are terminal gather the result frames
// and merge them in plan order. Deterministic cells make the merged report
// byte-identical to a monolithic run, regardless of which replicas executed
// which cells or how many times a cell was reclaimed.
func (m *JobManager) runSharded(ctx context.Context, rec store.JobRecord, prog *obs.Progress) (string, error) {
	n, err := m.dur.cells.CellCount(ctx, rec.Kind, rec.Payload)
	if err != nil {
		return "", err
	}
	if err := m.dur.st.PlanCells(rec.ID, n); err != nil {
		return "", err
	}
	prog.AddCellsTotal(int64(n))

	// The coordinator's job progress is the fold of every cell's stored
	// snapshot. A background goroutine keeps it fresh at renew cadence even
	// while this loop is itself deep inside a cell, so cross-replica trial
	// counts surface mid-run; the fold applies signed deltas because a
	// reclaimed cell's restart resets its snapshot backwards.
	var progMu sync.Mutex
	var prev store.CellSummary
	fold := func() store.CellSummary {
		sum, ok, err := m.dur.st.CellSummary(rec.ID)
		if err != nil || !ok {
			progMu.Lock()
			sum = prev
			progMu.Unlock()
			return sum
		}
		progMu.Lock()
		prog.AddCellsDone(int64(sum.Done - prev.Done))
		prog.AddTrialsUsed(sum.TrialsUsed - prev.TrialsUsed)
		prog.AddTrialBudget(sum.TrialBudget - prev.TrialBudget)
		prev = sum
		progMu.Unlock()
		return sum
	}
	fctx, fcancel := context.WithCancel(ctx)
	foldDone := make(chan struct{})
	go func() {
		defer close(foldDone)
		tick := time.NewTicker(m.renewEvery())
		defer tick.Stop()
		for {
			select {
			case <-fctx.Done():
				return
			case <-tick.C:
				fold()
			}
		}
	}()
	defer func() { fcancel(); <-foldDone }()

	var stamp store.ChangeStamp
	for {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		ran := m.runCells(ctx, rec.ID)
		sum := fold()
		if sum.Total > 0 {
			if sum.Failed > 0 {
				return "", fmt.Errorf("cell %d: %s", sum.FailedCell, sum.Err)
			}
			if sum.Done == sum.Total {
				results, err := m.dur.st.CellResults(rec.ID)
				if err != nil {
					return "", err
				}
				return m.dur.cells.MergeCells(ctx, rec.Kind, rec.Payload, results)
			}
		}
		if !ran {
			// All remaining cells are leased to other replicas; wait for
			// their transitions (or an expiry to reclaim) to move the store.
			stamp = m.idleWait(ctx, stamp)
		}
	}
}

// runCells claims and executes cell work-units — of one job when onlyJob is
// set (the coordinator joining its own workers), of any sharded job
// otherwise (an idle claim loop helping out). Completing a cell claims the
// next in the same store write, so a replica streams through a grid with
// one fsync per cell. Reports whether any cell was claimed.
func (m *JobManager) runCells(ctx context.Context, onlyJob string) bool {
	cell, ok, err := m.dur.st.ClaimCell(m.dur.replica, m.dur.ttl, onlyJob)
	if err != nil || !ok {
		return false
	}
	for {
		next, more := m.runClaimedCell(ctx, cell, onlyJob)
		if !more {
			return true
		}
		cell = next
	}
}

// runClaimedCell executes one claimed cell under lease renewal and writes
// its terminal record, chaining to a follow-up claim when one is batched in.
// Cell completion is first-write-wins in the store: if this holder was
// reclaimed mid-run and both finish, the duplicate (byte-identical) result
// is simply ignored.
func (m *JobManager) runClaimedCell(ctx context.Context, cell store.CellRecord, onlyJob string) (store.CellRecord, bool) {
	job, ok, err := m.dur.st.Job(cell.Job)
	if err != nil || !ok {
		_ = m.dur.st.ReleaseCell(cell.Job, cell.Index, m.dur.replica)
		return store.CellRecord{}, false
	}
	prog := &obs.Progress{}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var leaseLost atomic.Bool
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		tick := time.NewTicker(m.renewEvery())
		defer tick.Stop()
		for {
			select {
			case <-cctx.Done():
				return
			case <-tick.C:
				snap := prog.Snapshot()
				err := m.dur.st.RenewCell(cell.Job, cell.Index, m.dur.replica, m.dur.ttl, snapPtr(snap))
				if errors.Is(err, store.ErrLeaseLost) {
					leaseLost.Store(true)
					cancel()
					return
				}
			}
		}
	}()

	data, err := m.dur.cells.RunCell(cctx, job.Kind, job.Payload, cell.Index, prog)
	cancel()
	<-renewDone
	snap := prog.Snapshot()
	switch {
	case leaseLost.Load():
		// Another replica reclaimed the cell (or the job finished without
		// us); the store would fence any write, so just walk away.
	case err == nil:
		next, ok, werr := m.dur.st.CompleteCellAndClaim(
			cell.Job, cell.Index, m.dur.replica, data, "", snapPtr(snap), true, onlyJob, m.dur.ttl)
		if werr != nil {
			return store.CellRecord{}, false
		}
		cellsDone.Inc()
		return next, ok
	case ctx.Err() != nil:
		// Graceful shutdown: hand the cell back for prompt pickup.
		_ = m.dur.st.ReleaseCell(cell.Job, cell.Index, m.dur.replica)
	default:
		// A deterministic cell failure: record it so the coordinator fails
		// the job; don't chain into more doomed cells of the same grid.
		_, _, _ = m.dur.st.CompleteCellAndClaim(
			cell.Job, cell.Index, m.dur.replica, nil, err.Error(), snapPtr(snap), false, onlyJob, 0)
	}
	return store.CellRecord{}, false
}

// snapPtr boxes a non-zero snapshot, so untracked jobs keep a bare status.
func snapPtr(snap obs.ProgressSnapshot) *obs.ProgressSnapshot {
	if snap == (obs.ProgressSnapshot{}) {
		return nil
	}
	return &snap
}

// maybeCompact compacts the store once the WAL outgrows the threshold,
// pruning finished jobs beyond the retention window — the durable analogue
// of the in-memory manager's eviction, and the reason the WAL cannot grow
// without bound.
func (m *JobManager) maybeCompact() {
	size, err := m.dur.st.WALSize()
	if err != nil || size < walCompactBytes {
		return
	}
	_ = m.dur.st.Compact(m.retain)
}

// durableGet reads one job's status through the store.
func (m *JobManager) durableGet(id string) (JobStatus, bool) {
	rec, ok, err := m.dur.st.Job(id)
	if err != nil || !ok {
		return JobStatus{}, false
	}
	return m.statusFromRecord(rec), true
}

// durableList reads every retained job through the store.
func (m *JobManager) durableList() []JobStatus {
	recs, err := m.dur.st.Jobs()
	if err != nil {
		return nil
	}
	out := make([]JobStatus, 0, len(recs))
	for _, rec := range recs {
		out = append(out, m.statusFromRecord(rec))
	}
	sortJobs(out)
	return out
}

// durableShutdown stops the claim loops and waits for running jobs to
// release their leases. Queued jobs stay queued — they are durable state
// other replicas (or the next start) will claim, not this process's to
// cancel.
func (m *JobManager) durableShutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// defaultReplicaID derives a stable-enough holder identity for a process.
func defaultReplicaID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "replica"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}
