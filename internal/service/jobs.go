package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// JobState is the lifecycle of a queued study run.
type JobState string

const (
	// JobQueued means the job is waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning means a worker is executing the job.
	JobRunning JobState = "running"
	// JobDone means the job finished and its output is retained.
	JobDone JobState = "done"
	// JobFailed means the job returned an error.
	JobFailed JobState = "failed"
	// JobCancelled means the job was aborted by shutdown before or while
	// running.
	JobCancelled JobState = "cancelled"
)

// JobStatus is the externally visible record of a job. Started and Ended
// are pointers so omitempty elides them while unset (encoding/json never
// considers a plain time.Time empty); once set they are never mutated.
type JobStatus struct {
	ID      string     `json:"id"`
	Kind    string     `json:"kind"`
	State   JobState   `json:"state"`
	Created time.Time  `json:"created"`
	Started *time.Time `json:"started,omitempty"`
	Ended   *time.Time `json:"ended,omitempty"`
	// Output is the job's result (a rendered study report) once done.
	Output string `json:"output,omitempty"`
	// Error is the failure message for failed/cancelled jobs.
	Error string `json:"error,omitempty"`
}

// JobFunc is the work a job performs; it must honour ctx promptly.
type JobFunc func(ctx context.Context) (string, error)

type job struct {
	status JobStatus
	fn     JobFunc
}

// ErrQueueFull is returned by Submit when the bounded queue is at capacity.
var ErrQueueFull = errors.New("service: job queue full")

// ErrShuttingDown is returned by Submit after Shutdown started.
var ErrShuttingDown = errors.New("service: shutting down")

// JobManager runs submitted jobs on a fixed worker pool over a bounded
// queue, tracks their states, and retains the results of the most recent
// finished jobs.
type JobManager struct {
	ctx    context.Context
	cancel context.CancelFunc
	queue  chan *job
	wg     sync.WaitGroup
	retain int

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // finished job IDs, oldest first, for retention
	nextID   int
	closed   bool
}

// NewJobManager starts workers goroutines over a queue of queueCap pending
// jobs, retaining the last retain finished jobs (all values are clamped to
// at least 1).
func NewJobManager(workers, queueCap, retain int) *JobManager {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	if retain < 1 {
		retain = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &JobManager{
		ctx:    ctx,
		cancel: cancel,
		queue:  make(chan *job, queueCap),
		retain: retain,
		jobs:   make(map[string]*job),
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

func (m *JobManager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case j, ok := <-m.queue:
			if !ok {
				return
			}
			m.run(j)
		}
	}
}

func (m *JobManager) run(j *job) {
	m.mu.Lock()
	if j.status.State != JobQueued { // cancelled while queued
		m.mu.Unlock()
		return
	}
	j.status.State = JobRunning
	started := time.Now()
	j.status.Started = &started
	m.mu.Unlock()

	out, err := j.fn(m.ctx)

	m.mu.Lock()
	defer m.mu.Unlock()
	ended := time.Now()
	j.status.Ended = &ended
	switch {
	case err == nil:
		j.status.State = JobDone
		j.status.Output = out
	case errors.Is(err, context.Canceled) || m.ctx.Err() != nil:
		j.status.State = JobCancelled
		j.status.Error = err.Error()
	default:
		j.status.State = JobFailed
		j.status.Error = err.Error()
	}
	m.finish(j.status.ID)
}

// finish records a finished job and evicts beyond the retention window.
// Callers hold m.mu.
func (m *JobManager) finish(id string) {
	m.finished = append(m.finished, id)
	for len(m.finished) > m.retain {
		evict := m.finished[0]
		m.finished = m.finished[1:]
		delete(m.jobs, evict)
	}
}

// Submit enqueues a job and returns its initial status. It never blocks:
// a full queue returns ErrQueueFull.
func (m *JobManager) Submit(kind string, fn JobFunc) (JobStatus, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobStatus{}, ErrShuttingDown
	}
	m.nextID++
	j := &job{
		status: JobStatus{
			ID:      fmt.Sprintf("job-%d", m.nextID),
			Kind:    kind,
			State:   JobQueued,
			Created: time.Now(),
		},
		fn: fn,
	}
	m.jobs[j.status.ID] = j
	// Copy before enqueueing: a worker may start mutating j.status the
	// moment it leaves the queue.
	status := j.status
	m.mu.Unlock()

	select {
	case m.queue <- j:
		return status, nil
	default:
		m.mu.Lock()
		delete(m.jobs, status.ID)
		m.mu.Unlock()
		return JobStatus{}, ErrQueueFull
	}
}

// Get returns a job's status by ID.
func (m *JobManager) Get(id string) (JobStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.status, true
}

// List returns all retained jobs, oldest submission first.
func (m *JobManager) List() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.status)
	}
	sortJobs(out)
	return out
}

// Shutdown cancels the shared context (aborting running jobs at their next
// cancellation point), marks still-queued jobs cancelled, and waits for the
// workers to drain or ctx to expire.
func (m *JobManager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()

	m.cancel()
	// Drain jobs still sitting in the queue; run() skips any it raced with.
	for {
		select {
		case j := <-m.queue:
			m.mu.Lock()
			if j.status.State == JobQueued {
				j.status.State = JobCancelled
				ended := time.Now()
				j.status.Ended = &ended
				j.status.Error = context.Canceled.Error()
				m.finish(j.status.ID)
			}
			m.mu.Unlock()
			continue
		default:
		}
		break
	}

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		// Workers raced the drain loop for queued jobs; whatever they
		// pulled after cancellation was marked cancelled in run(). Mark any
		// survivors (enqueued between drain and worker exit).
		m.mu.Lock()
		for _, j := range m.jobs {
			if j.status.State == JobQueued {
				j.status.State = JobCancelled
				ended := time.Now()
				j.status.Ended = &ended
				j.status.Error = context.Canceled.Error()
				m.finish(j.status.ID)
			}
		}
		m.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sortJobs orders by submission (IDs are "job-<n>").
func sortJobs(jobs []JobStatus) {
	num := func(id string) int {
		n, _ := strconv.Atoi(strings.TrimPrefix(id, "job-"))
		return n
	}
	sort.Slice(jobs, func(a, b int) bool { return num(jobs[a].ID) < num(jobs[b].ID) })
}
