package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Job-queue telemetry: submission and completion counters (by terminal
// state), live queue-depth and running gauges, and duration histograms by
// job family. All process-wide; multiple managers share the series.
var (
	jobsSubmitted = obs.Default.Counter("repro_jobs_submitted_total",
		"Jobs accepted into the queue.")
	jobsDone = obs.Default.Counter("repro_jobs_completed_total",
		"Jobs that reached a terminal state, by state.", obs.L("state", "done"))
	jobsFailed = obs.Default.Counter("repro_jobs_completed_total",
		"Jobs that reached a terminal state, by state.", obs.L("state", "failed"))
	jobsCancelled = obs.Default.Counter("repro_jobs_completed_total",
		"Jobs that reached a terminal state, by state.", obs.L("state", "cancelled"))
	jobsQueueDepth = obs.Default.Gauge("repro_jobs_queue_depth",
		"Jobs waiting in the queue.")
	jobsRunning = obs.Default.Gauge("repro_jobs_running",
		"Jobs currently executing.")
	jobDurStudy = obs.Default.Histogram("repro_job_duration_seconds",
		"Job wall-clock duration, by job family.", obs.FitBuckets, obs.L("kind", "study"))
	jobDurCampaign = obs.Default.Histogram("repro_job_duration_seconds",
		"Job wall-clock duration, by job family.", obs.FitBuckets, obs.L("kind", "campaign"))
	jobDurRobust = obs.Default.Histogram("repro_job_duration_seconds",
		"Job wall-clock duration, by job family.", obs.FitBuckets, obs.L("kind", "robust"))
)

// jobDuration maps a job kind to its family's duration histogram; the family
// set is closed, so label cardinality cannot grow with user-chosen names.
func jobDuration(kind string) *obs.Histogram {
	switch {
	case isCampaignKind(kind):
		return jobDurCampaign
	case isRobustKind(kind):
		return jobDurRobust
	default:
		return jobDurStudy
	}
}

// JobState is the lifecycle of a queued study run.
type JobState string

const (
	// JobQueued means the job is waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning means a worker is executing the job.
	JobRunning JobState = "running"
	// JobDone means the job finished and its output is retained.
	JobDone JobState = "done"
	// JobFailed means the job returned an error.
	JobFailed JobState = "failed"
	// JobCancelled means the job was aborted by shutdown before or while
	// running.
	JobCancelled JobState = "cancelled"
)

// JobStatus is the externally visible record of a job. Started and Ended
// are pointers so omitempty elides them while unset (encoding/json never
// considers a plain time.Time empty); once set they are never mutated.
type JobStatus struct {
	ID      string     `json:"id"`
	Kind    string     `json:"kind"`
	State   JobState   `json:"state"`
	Created time.Time  `json:"created"`
	Started *time.Time `json:"started,omitempty"`
	Ended   *time.Time `json:"ended,omitempty"`
	// Output is the job's result (a rendered study report) once done.
	Output string `json:"output,omitempty"`
	// Error is the failure message for failed/cancelled jobs.
	Error string `json:"error,omitempty"`
	// Progress is the live (or, once finished, final) progress snapshot of
	// jobs submitted with SubmitTracked: cells completed and — for Monte
	// Carlo studies — trials drawn against the budget.
	Progress *obs.ProgressSnapshot `json:"progress,omitempty"`
	// Replica is the lease holder running (or, once finished, the one that
	// ran) the job; set only on store-backed clusters.
	Replica string `json:"replica,omitempty"`
	// Restarts counts lease takeovers: how many times the job was reclaimed
	// from a dead or wedged replica and restarted on another.
	Restarts int `json:"restarts,omitempty"`
}

// JobFunc is the work a job performs; it must honour ctx promptly.
type JobFunc func(ctx context.Context) (string, error)

// TrackedJobFunc is a JobFunc that reports live progress: the manager owns
// the record and snapshots it into every status read while the job runs.
type TrackedJobFunc func(ctx context.Context, prog *obs.Progress) (string, error)

type job struct {
	status   JobStatus
	fn       JobFunc
	progress *obs.Progress
}

// ErrQueueFull is returned by Submit when the bounded queue is at capacity.
var ErrQueueFull = errors.New("service: job queue full")

// ErrShuttingDown is returned by Submit after Shutdown started.
var ErrShuttingDown = errors.New("service: shutting down")

// JobManager runs submitted jobs on a fixed worker pool, tracks their
// states, and retains the results of the most recent finished jobs. It has
// two backends: in-memory (NewJobManager — a bounded queue, everything dies
// with the process) and durable (NewDurableJobManager — a shared store.Store
// where N replicas claim jobs by lease; see durable.go).
type JobManager struct {
	ctx    context.Context
	cancel context.CancelFunc
	queue  chan *job
	wg     sync.WaitGroup
	retain int

	// dur is non-nil for store-backed managers.
	dur *durable

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // finished job IDs, oldest first, for retention
	nextID   int
	closed   bool
}

// NewJobManager starts workers goroutines over a queue of queueCap pending
// jobs, retaining the last retain finished jobs (all values are clamped to
// at least 1).
func NewJobManager(workers, queueCap, retain int) *JobManager {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	if retain < 1 {
		retain = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &JobManager{
		ctx:    ctx,
		cancel: cancel,
		queue:  make(chan *job, queueCap),
		retain: retain,
		jobs:   make(map[string]*job),
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

func (m *JobManager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case j, ok := <-m.queue:
			if !ok {
				return
			}
			m.run(j)
		}
	}
}

func (m *JobManager) run(j *job) {
	jobsQueueDepth.Dec()
	m.mu.Lock()
	if j.status.State != JobQueued { // cancelled while queued
		m.mu.Unlock()
		return
	}
	j.status.State = JobRunning
	started := time.Now()
	j.status.Started = &started
	m.mu.Unlock()

	jobsRunning.Inc()
	out, err := j.fn(m.ctx)
	jobsRunning.Dec()

	m.mu.Lock()
	defer m.mu.Unlock()
	ended := time.Now()
	j.status.Ended = &ended
	jobDuration(j.status.Kind).Observe(ended.Sub(started).Seconds())
	switch {
	case err == nil:
		j.status.State = JobDone
		j.status.Output = out
		jobsDone.Inc()
	case errors.Is(err, context.Canceled) || m.ctx.Err() != nil:
		j.status.State = JobCancelled
		j.status.Error = err.Error()
		jobsCancelled.Inc()
	default:
		j.status.State = JobFailed
		j.status.Error = err.Error()
		jobsFailed.Inc()
	}
	m.finish(j.status.ID)
}

// finish records a finished job and evicts beyond the retention window.
// Callers hold m.mu.
func (m *JobManager) finish(id string) {
	m.finished = append(m.finished, id)
	for len(m.finished) > m.retain {
		evict := m.finished[0]
		m.finished = m.finished[1:]
		delete(m.jobs, evict)
	}
}

// Submit enqueues a job and returns its initial status. It never blocks:
// a full queue returns ErrQueueFull.
func (m *JobManager) Submit(kind string, fn JobFunc) (JobStatus, error) {
	return m.submit(kind, fn, nil)
}

// SubmitTracked enqueues a job that reports live progress: fn receives a
// progress record owned by the manager, and every status read while (and
// after) the job runs carries its latest snapshot — the data behind the
// ?watch long-poll and the CLI progress ticker. The record is write-only
// for fn; nothing the job computes may depend on it.
func (m *JobManager) SubmitTracked(kind string, fn TrackedJobFunc) (JobStatus, error) {
	prog := &obs.Progress{}
	return m.submit(kind, func(ctx context.Context) (string, error) { return fn(ctx, prog) }, prog)
}

func (m *JobManager) submit(kind string, fn JobFunc, prog *obs.Progress) (JobStatus, error) {
	if m.dur != nil {
		return JobStatus{}, errors.New("service: closure submits need the in-memory manager; durable jobs go through SubmitPayload")
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobStatus{}, ErrShuttingDown
	}
	m.nextID++
	j := &job{
		status: JobStatus{
			ID:      fmt.Sprintf("job-%d", m.nextID),
			Kind:    kind,
			State:   JobQueued,
			Created: time.Now(),
		},
		fn:       fn,
		progress: prog,
	}
	m.jobs[j.status.ID] = j
	// Copy before enqueueing: a worker may start mutating j.status the
	// moment it leaves the queue.
	status := j.status
	m.mu.Unlock()

	select {
	case m.queue <- j:
		jobsSubmitted.Inc()
		jobsQueueDepth.Inc()
		return status, nil
	default:
		m.mu.Lock()
		delete(m.jobs, status.ID)
		m.mu.Unlock()
		return JobStatus{}, ErrQueueFull
	}
}

// statusLocked copies a job's status, stamping tracked jobs with their
// current progress snapshot. Callers hold m.mu.
func (m *JobManager) statusLocked(j *job) JobStatus {
	status := j.status
	if j.progress != nil {
		snap := j.progress.Snapshot()
		status.Progress = &snap
	}
	return status
}

// Get returns a job's status by ID.
func (m *JobManager) Get(id string) (JobStatus, bool) {
	if m.dur != nil {
		return m.durableGet(id)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return m.statusLocked(j), true
}

// List returns all retained jobs, oldest submission first.
func (m *JobManager) List() []JobStatus {
	if m.dur != nil {
		return m.durableList()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.statusLocked(j))
	}
	sortJobs(out)
	return out
}

// watchPoll is the internal cadence of Watch; a variable so tests can
// tighten it.
var watchPoll = 150 * time.Millisecond

// terminalState reports whether a job can no longer change.
func terminalState(s JobState) bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// statusChanged reports whether a job's externally visible status moved
// between two reads: a state transition or any progress movement.
func statusChanged(a, b JobStatus) bool {
	if a.State != b.State {
		return true
	}
	if (a.Progress == nil) != (b.Progress == nil) {
		return true
	}
	return a.Progress != nil && *a.Progress != *b.Progress
}

// Watch long-polls one job: it blocks until the job's state or progress
// changes from what the caller would see right now, then returns the new
// status. It returns the current status unchanged once d elapses or ctx is
// cancelled, and false only if the job does not exist (or was evicted from
// retention mid-watch). Jobs already in a terminal state return immediately.
func (m *JobManager) Watch(ctx context.Context, id string, d time.Duration) (JobStatus, bool) {
	base, ok := m.Get(id)
	if !ok {
		return JobStatus{}, false
	}
	if terminalState(base.State) {
		return base, true
	}
	deadline := time.NewTimer(d)
	defer deadline.Stop()
	tick := time.NewTicker(watchPoll)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return m.Get(id)
		case <-deadline.C:
			return m.Get(id)
		case <-tick.C:
			cur, ok := m.Get(id)
			if !ok {
				return JobStatus{}, false
			}
			if statusChanged(base, cur) {
				return cur, true
			}
		}
	}
}

// Shutdown cancels the shared context (aborting running jobs at their next
// cancellation point), marks still-queued jobs cancelled, and waits for the
// workers to drain or ctx to expire. Durable managers instead release their
// running jobs' leases and leave queued jobs for other replicas.
func (m *JobManager) Shutdown(ctx context.Context) error {
	if m.dur != nil {
		return m.durableShutdown(ctx)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()

	m.cancel()
	// Drain jobs still sitting in the queue; run() skips any it raced with.
	for {
		select {
		case j := <-m.queue:
			jobsQueueDepth.Dec()
			m.mu.Lock()
			if j.status.State == JobQueued {
				j.status.State = JobCancelled
				ended := time.Now()
				j.status.Ended = &ended
				j.status.Error = context.Canceled.Error()
				jobsCancelled.Inc()
				m.finish(j.status.ID)
			}
			m.mu.Unlock()
			continue
		default:
		}
		break
	}

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		// Workers raced the drain loop for queued jobs; whatever they
		// pulled after cancellation was marked cancelled in run(). Mark any
		// survivors (enqueued between drain and worker exit).
		m.mu.Lock()
		for _, j := range m.jobs {
			if j.status.State == JobQueued {
				j.status.State = JobCancelled
				ended := time.Now()
				j.status.Ended = &ended
				j.status.Error = context.Canceled.Error()
				jobsQueueDepth.Dec()
				jobsCancelled.Inc()
				m.finish(j.status.ID)
			}
		}
		m.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sortJobs orders by submission (IDs are "job-<n>").
func sortJobs(jobs []JobStatus) {
	num := func(id string) int {
		n, _ := strconv.Atoi(strings.TrimPrefix(id, "job-"))
		return n
	}
	sort.Slice(jobs, func(a, b int) bool { return num(jobs[a].ID) < num(jobs[b].ID) })
}
