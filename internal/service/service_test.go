package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/experiments"
)

func testDAG(t *testing.T) *dag.Graph {
	t.Helper()
	g, err := dag.Generate(dag.GenParams{
		Tasks: 8, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRegistryFitsEachModelOnce(t *testing.T) {
	opts := DefaultOptions()
	r := NewModelRegistry(opts.Profile, opts.Empirical)
	key := ModelKey{Environment: "bayreuth", Kind: "empirical", Seed: 42}

	first, hit, err := r.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first Get reported a cache hit")
	}
	second, hit, err := r.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second Get was not a cache hit")
	}
	if first != second {
		t.Error("second Get returned a different model instance: the fit was rebuilt")
	}

	// The profile model shares the campaign: requesting it must not re-run
	// anything, and it must be the same instance on repeat requests.
	p1, _, err := r.Get(ModelKey{Environment: "bayreuth", Kind: "profile", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	p2, hit, err := r.Get(ModelKey{Environment: "bayreuth", Kind: "profile", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !hit || p1 != p2 {
		t.Error("profile model was rebuilt on repeat request")
	}

	infos := r.Models()
	if len(infos) != 2 {
		t.Fatalf("registry lists %d entries, want 2: %+v", len(infos), infos)
	}
	for _, info := range infos {
		if info.Hits != 1 {
			t.Errorf("%s: hits = %d, want 1", info.Kind, info.Hits)
		}
	}
}

func TestRegistryConcurrentFirstRequestsBuildOnce(t *testing.T) {
	opts := DefaultOptions()
	r := NewModelRegistry(opts.Profile, opts.Empirical)
	key := ModelKey{Environment: "bayreuth", Kind: "empirical", Seed: 7}

	const callers = 8
	models := make([]any, callers)
	hits := make([]bool, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, hit, err := r.Get(key)
			if err != nil {
				t.Error(err)
				return
			}
			models[i] = m
			hits[i] = hit
		}(i)
	}
	wg.Wait()

	misses := 0
	for i := 1; i < callers; i++ {
		if models[i] != models[0] {
			t.Fatalf("caller %d got a different model instance", i)
		}
	}
	for _, h := range hits {
		if !h {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d cache misses across %d concurrent first requests, want exactly 1", misses, callers)
	}
}

func TestServiceScheduleMatchesDirectPipeline(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	g := testDAG(t)

	resp, err := svc.Schedule(context.Background(), ScheduleRequest{DAG: g, Algorithm: "MCPA", Model: "analytic"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.SimMakespan <= 0 || resp.EstMakespan <= 0 {
		t.Fatalf("non-positive makespans: %+v", resp)
	}
	if len(resp.Tasks) != g.Len() {
		t.Fatalf("schedule has %d tasks, want %d", len(resp.Tasks), g.Len())
	}

	sim, err := svc.Simulate(context.Background(), ScheduleRequest{DAG: g, Algorithm: "MCPA", Model: "analytic"})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Makespan != resp.SimMakespan {
		t.Errorf("simulate makespan %g != schedule's predicted %g", sim.Makespan, resp.SimMakespan)
	}
}

// TestStudyJobMatchesNewLab pins the registry's fit-once path to the
// reference pipeline: a study run through the service must be byte-identical
// to the same study on a NewLab-built lab (which runs its own campaigns).
func TestStudyJobMatchesNewLab(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())

	got, err := svc.RunStudy(context.Background(), StudyRequest{Study: "fig3", Environment: "bayreuth"})
	if err != nil {
		t.Fatal(err)
	}

	lab, err := experiments.NewLab(experiments.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fig3, err := lab.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	fig3.Write(&want)

	if got != want.String() {
		t.Errorf("service study output differs from NewLab's:\n--- service ---\n%s\n--- NewLab ---\n%s", got, want.String())
	}
}

func TestHTTPScheduleRoundTripAndCacheHit(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)
	ctx := context.Background()

	if err := client.Health(ctx); err != nil {
		t.Fatal(err)
	}

	req := ScheduleRequest{DAG: testDAG(t), Algorithm: "HCPA", Model: "empirical"}
	first, err := client.Schedule(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first request reported a cache hit")
	}
	second, err := client.Schedule(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("second identical request missed the registry cache")
	}
	if first.SimMakespan != second.SimMakespan {
		t.Errorf("cached model predicts %g, first prediction was %g", second.SimMakespan, first.SimMakespan)
	}

	models, err := client.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range models {
		if m.Kind == "empirical" && m.Environment == "bayreuth" {
			found = true
			if m.Hits < 1 {
				t.Errorf("empirical model hits = %d, want >= 1", m.Hits)
			}
		}
	}
	if !found {
		t.Errorf("empirical/bayreuth missing from /v1/models: %+v", models)
	}
}

// TestSimulateBatchMatchesSingleRequests pins the batched path's semantics:
// one batch over N DAGs returns, item for item, exactly what N single
// simulate requests return, shares a single model resolution, and is
// deterministic for any worker-pool size.
func TestSimulateBatchMatchesSingleRequests(t *testing.T) {
	dags := make([]*dag.Graph, 3)
	for i := range dags {
		g, err := dag.Generate(dag.GenParams{
			Tasks: 6 + i, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: int64(11 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		dags[i] = g
	}
	ctx := context.Background()

	runBatch := func(parallelism int) *SimulateBatchResponse {
		opts := DefaultOptions()
		opts.Parallelism = parallelism
		svc := New(opts)
		defer svc.Close(ctx)
		resp, err := svc.SimulateBatch(ctx, SimulateBatchRequest{DAGs: dags, Model: "empirical"})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	batch := runBatch(1)
	if batch.CacheHit {
		t.Error("cold batch reported a cache hit")
	}
	if len(batch.Results) != len(dags) {
		t.Fatalf("batch returned %d results, want %d", len(batch.Results), len(dags))
	}

	// Single requests on a fresh service agree item for item.
	svc := New(DefaultOptions())
	defer svc.Close(ctx)
	for i, g := range dags {
		single, err := svc.Simulate(ctx, ScheduleRequest{DAG: g, Model: "empirical"})
		if err != nil {
			t.Fatal(err)
		}
		if single.Makespan != batch.Results[i].Makespan {
			t.Errorf("dag %d: batch makespan %g != single makespan %g", i, batch.Results[i].Makespan, single.Makespan)
		}
		if len(single.Tasks) != len(batch.Results[i].Tasks) {
			t.Fatalf("dag %d: batch has %d tasks, single has %d", i, len(batch.Results[i].Tasks), len(single.Tasks))
		}
		for j, task := range single.Tasks {
			if !reflect.DeepEqual(task, batch.Results[i].Tasks[j]) {
				t.Errorf("dag %d task %d: batch %+v != single %+v", i, j, batch.Results[i].Tasks[j], task)
			}
		}
	}

	// The batch is byte-stable across worker counts.
	parallel := runBatch(8)
	for i := range batch.Results {
		if batch.Results[i].Makespan != parallel.Results[i].Makespan {
			t.Errorf("dag %d: makespan differs between parallelism 1 (%g) and 8 (%g)",
				i, batch.Results[i].Makespan, parallel.Results[i].Makespan)
		}
	}

	// A second batch on a warm service is one registry hit for all DAGs.
	resp, err := svc.SimulateBatch(ctx, SimulateBatchRequest{DAGs: dags, Model: "empirical"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Error("warm batch missed the registry cache")
	}
}

// TestHTTPSimulateBatch drives the batched shape of POST /v1/simulate over
// the wire, including its request validation.
func TestHTTPSimulateBatch(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)
	ctx := context.Background()

	g := testDAG(t)
	resp, err := client.SimulateBatch(ctx, SimulateBatchRequest{DAGs: []*dag.Graph{g, g}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != "HCPA" || resp.Model != "analytic" || resp.Environment != "bayreuth" {
		t.Errorf("batch defaults = %s/%s/%s, want HCPA/analytic/bayreuth", resp.Algorithm, resp.Model, resp.Environment)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("batch returned %d results, want 2", len(resp.Results))
	}
	if resp.Results[0].Makespan != resp.Results[1].Makespan {
		t.Errorf("identical DAGs simulated to different makespans: %g vs %g",
			resp.Results[0].Makespan, resp.Results[1].Makespan)
	}
	single, err := client.Simulate(ctx, ScheduleRequest{DAG: g})
	if err != nil {
		t.Fatal(err)
	}
	if single.Makespan != resp.Results[0].Makespan {
		t.Errorf("single simulate makespan %g != batch item %g", single.Makespan, resp.Results[0].Makespan)
	}

	// An empty batch and a both-shapes request are rejected up front; the
	// typed client fails an empty batch before it reaches the wire.
	if _, err := client.SimulateBatch(ctx, SimulateBatchRequest{}); err == nil || !strings.Contains(err.Error(), "batch has no dags") {
		t.Errorf("empty batch: err = %v, want the batch contract's error", err)
	}
	for name, body := range map[string]string{
		"both dag and dags":          `{"dag": {}, "dags": [{}]}`,
		"present-but-empty dags key": `{"dags": []}`,
	} {
		httpResp, err := srv.Client().Post(srv.URL+"/v1/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		httpResp.Body.Close()
		if httpResp.StatusCode != 400 {
			t.Errorf("%s: HTTP %d, want 400", name, httpResp.StatusCode)
		}
	}
}

func TestHTTPConcurrentScheduleRequests(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)
	g := testDAG(t)

	const callers = 8
	makespans := make([]float64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Schedule(context.Background(),
				ScheduleRequest{DAG: g, Algorithm: "HCPA", Model: "empirical"})
			if err != nil {
				t.Error(err)
				return
			}
			makespans[i] = resp.SimMakespan
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if makespans[i] != makespans[0] {
			t.Fatalf("caller %d predicted %g, caller 0 predicted %g: model not shared",
				i, makespans[i], makespans[0])
		}
	}
}

func TestHTTPJobLifecycle(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	job, err := client.SubmitStudy(ctx, StudyRequest{Study: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobQueued {
		t.Errorf("submitted state = %s, want queued", job.State)
	}
	done, err := client.WaitJob(ctx, job.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != JobDone {
		t.Fatalf("job ended %s (%s), want done", done.State, done.Error)
	}
	if !strings.Contains(done.Output, "Table I") {
		t.Errorf("job output missing Table I header:\n%s", done.Output)
	}

	list, err := client.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != job.ID {
		t.Errorf("job list = %+v, want just %s", list, job.ID)
	}

	if _, err := client.Job(ctx, "job-999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("missing job: err = %v, want HTTP 404", err)
	}
	if _, err := client.SubmitStudy(ctx, StudyRequest{Study: "figure-nine"}); err == nil {
		t.Error("unknown study accepted")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)
	ctx := context.Background()
	g := testDAG(t)

	cases := []ScheduleRequest{
		{},                                  // no DAG
		{DAG: g, Algorithm: "SJF"},          // unknown algorithm
		{DAG: g, Model: "oracular"},         // unknown model
		{DAG: g, Environment: "perlmutter"}, // unknown environment
	}
	for i, req := range cases {
		if _, err := client.Schedule(ctx, req); err == nil {
			t.Errorf("case %d: bad request accepted", i)
		}
	}
}

func TestServiceShutdownCancelsInFlightStudy(t *testing.T) {
	opts := DefaultOptions()
	opts.JobWorkers = 1
	opts.QueueCap = 4
	svc := New(opts)

	// A slow suite-wide study plus queued followers.
	running, err := svc.SubmitStudy(StudyRequest{Study: "fig8"})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := svc.SubmitStudy(StudyRequest{Study: "fig1"})
	if err != nil {
		t.Fatal(err)
	}

	// Give the worker a moment to pick the first job up, then shut down.
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, _ := svc.Jobs().Get(running.ID)
		if status.State == JobRunning || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}

	for _, id := range []string{running.ID, queued.ID} {
		status, ok := svc.Jobs().Get(id)
		if !ok {
			t.Fatalf("job %s evicted during shutdown", id)
		}
		if status.State != JobCancelled && status.State != JobDone {
			t.Errorf("job %s ended %s, want cancelled (or done if it won the race)", id, status.State)
		}
		if status.State == JobCancelled && status.Output != "" {
			t.Errorf("cancelled job %s retained output", id)
		}
	}
}
