package service

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/dag"
)

// acceptanceSpec is the 3-axis acceptance grid: 4 platform scales × 2
// algorithms × 2 models over the n=2000 half of the Table I suite.
func acceptanceSpec() campaign.Spec {
	return campaign.Spec{
		Name:       "acceptance",
		Platforms:  campaign.PlatformAxis{Base: "bayreuth", Nodes: []int{6, 8, 12, 16}},
		Workloads:  campaign.WorkloadAxis{Sizes: []int{2000}},
		Algorithms: []string{"HCPA", "MCPA"},
		Models:     []string{"analytic", "empirical"},
	}
}

// TestHTTPCampaignEndToEnd drives the acceptance criterion over the wire: a
// 3-axis campaign submitted through POST /v1/campaigns completes, reuses
// registry-cached fits (the hit counters at GET /v1/models increase), and
// renders the per-axis report.
func TestHTTPCampaignEndToEnd(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	job, err := client.SubmitCampaign(ctx, acceptanceSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(job.Kind, "campaign") {
		t.Errorf("campaign job kind = %q", job.Kind)
	}
	done, err := client.WaitCampaign(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != JobDone {
		t.Fatalf("campaign ended %s (%s), want done", done.State, done.Error)
	}
	for _, want := range []string{
		`Campaign "acceptance"`,
		"8 cells (4 platforms × 1 workloads × 2 models) × 2 algorithms",
		"bayreuth-x6", "bayreuth-x16",
		"Winner prediction",
		"Axis summary — platform",
		"Axis summary — model",
	} {
		if !strings.Contains(done.Output, want) {
			t.Errorf("campaign report missing %q:\n%s", want, done.Output)
		}
	}

	// The grid resolved one model per cell and amortized it over the cell's
	// algorithm runs; the 8 distinct (platform, kind) fits are registered.
	models, err := client.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	envs := map[string]bool{}
	for _, m := range models {
		envs[m.Environment] = true
	}
	for _, env := range []string{"bayreuth-x6", "bayreuth-x8", "bayreuth-x12", "bayreuth-x16"} {
		if !envs[env] {
			t.Errorf("derived platform %s missing from /v1/models: %+v", env, models)
		}
	}

	// A plain schedule request against one of the campaign's derived
	// platforms reuses its fit: the request is a cache hit and the registry
	// counters move — the fit-once/reuse-many economics across entry points.
	g := dag.MustGenerate(dag.GenParams{Tasks: 6, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 3})
	resp, err := client.Schedule(ctx, ScheduleRequest{DAG: g, Model: "empirical", Environment: "bayreuth-x8"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Error("schedule request against a campaign-fitted platform missed the registry cache")
	}
	var hits int64
	models, err = client.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range models {
		hits += m.Hits
	}
	if hits == 0 {
		t.Errorf("no registry cache hits after reusing a campaign fit: %+v", models)
	}

	// The campaign listing shows it; the study-job listing does too (one
	// shared queue), and campaign IDs resolve only on the campaign path.
	campaigns, err := client.Campaigns(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(campaigns) != 1 || campaigns[0].ID != job.ID {
		t.Errorf("campaign list = %+v, want just %s", campaigns, job.ID)
	}
}

func TestHTTPCampaignBadSpecs(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)
	ctx := context.Background()

	cases := []campaign.Spec{
		{Platforms: campaign.PlatformAxis{Base: "perlmutter"}},            // unknown base
		{Algorithms: []string{"SJF"}},                                     // unknown algorithm
		{Models: []string{"oracular"}},                                    // unknown model
		{Platforms: campaign.PlatformAxis{Nodes: seqInts(33)}},            // axis too long
		{Workloads: campaign.WorkloadAxis{Sizes: []int{1234}}},            // bad size filter
		{Platforms: campaign.PlatformAxis{BandwidthScale: []float64{-1}}}, // bad scale
	}
	for i, spec := range cases {
		if _, err := client.SubmitCampaign(ctx, spec); err == nil {
			t.Errorf("case %d: bad campaign spec accepted", i)
		} else if !strings.Contains(err.Error(), "400") {
			t.Errorf("case %d: err = %v, want HTTP 400", i, err)
		}
	}

	// A study job is not addressable as a campaign.
	study, err := svc.SubmitStudy(StudyRequest{Study: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Campaign(ctx, study.ID); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("study job served on the campaign path: err = %v, want 404", err)
	}
}

// seqInts returns {1, 2, ..., n}.
func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}
