package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"log/slog"

	"repro/internal/arrival"
	"repro/internal/campaign"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/robust"
	"repro/internal/sched"
	"repro/internal/simgrid"
	"repro/internal/store"
	"repro/internal/tgrid"
)

// Options configures a Service.
type Options struct {
	// Seed is the default measurement-campaign noise seed (DefaultConfig's
	// when zero).
	Seed int64
	// SuiteSeed is the default Table I suite seed for study jobs.
	SuiteSeed int64
	// Parallelism bounds each study's cell-engine worker pool (0 = one
	// worker per CPU).
	Parallelism int
	// JobWorkers is the number of concurrent study jobs (default 2).
	JobWorkers int
	// QueueCap bounds the pending-job queue (default 16).
	QueueCap int
	// Retain is how many finished jobs keep their results (default 64).
	Retain int
	// Profile and Empirical configure the fitting campaigns the registry
	// runs (defaults mirror the paper).
	Profile   profiler.ProfileOptions
	Empirical profiler.EmpiricalOptions
	// Logger receives one structured line per HTTP request; nil disables
	// request logging (metrics are always on).
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on Handler().
	// Off by default: profiles expose internals and cost CPU to capture.
	EnablePprof bool
	// Store, when non-nil, makes the service a replica of a durable cluster:
	// jobs live in the shared WAL'd pool (claimed by lease, reclaimed on
	// crash) and fitted models persist under the store directory, so both
	// survive restarts and are shared by every replica on the directory.
	Store *store.Store
	// ReplicaID is this process's lease-holder identity (hostname-pid when
	// empty). Only meaningful with a Store.
	ReplicaID string
	// LeaseTTL is how long a claimed job's lease lasts between renewals
	// (default 10s). A replica that misses renewals for a full TTL loses its
	// jobs to the reclaimer. Only meaningful with a Store.
	LeaseTTL time.Duration
	// NoShard disables cell-sharded execution of campaign and robustness
	// jobs: the claiming replica runs the whole job as a monolith, as before
	// PR 9. Sharding is on by default; reports are byte-identical either
	// way. Only meaningful with a Store.
	NoShard bool
}

// DefaultOptions mirrors the paper's evaluation setup.
func DefaultOptions() Options {
	cfg := experiments.DefaultConfig()
	return Options{
		Seed:       cfg.NoiseSeed,
		SuiteSeed:  cfg.SuiteSeed,
		JobWorkers: 2,
		QueueCap:   16,
		Retain:     64,
		Profile:    cfg.Profile,
		Empirical:  cfg.Empirical,
	}
}

// Service is the scheduling-as-a-service layer: it serves schedule and
// simulate requests synchronously over registry-cached models, and study
// runs asynchronously on the job queue. Safe for concurrent use.
type Service struct {
	opts     Options
	registry *ModelRegistry
	jobs     *JobManager
	logger   *slog.Logger
	start    time.Time

	labMu sync.Mutex
	labs  map[labKey]*labEntry

	// nets caches one simgrid.Net per environment so every schedule,
	// simulate and batch request draws engines from that net's shared pool
	// instead of building a network (and fresh engines) per request.
	netMu sync.Mutex
	nets  map[string]*simgrid.Net

	// scratch pools reusable scheduling state for the synchronous schedule,
	// simulate and batch paths, so homogeneous builds reuse buffers across
	// requests instead of allocating per call. Schedules built through the
	// pool are Cloned before the scratch is returned.
	scratch sync.Pool

	// Sharded-execution state: long-lived per-cell engines (their scratch
	// and runner pools persist across the cells this replica executes) and
	// the prepared-plan cache behind preparedShard.
	shardCamp  *campaign.Engine
	shardRob   *robust.Engine
	shardArr   *arrival.Engine
	shardMu    sync.Mutex
	shards     map[string]*preparedShard
	shardOrder []string
}

// labKey identifies one assembled lab (one workload × one environment).
type labKey struct {
	env       string
	seed      int64
	suiteSeed int64
	trials    int
}

type labEntry struct {
	once sync.Once
	lab  *experiments.Lab
	err  error
}

// New assembles a service; fields of opts left zero fall back to defaults.
func New(opts Options) *Service {
	def := DefaultOptions()
	if opts.Seed == 0 {
		opts.Seed = def.Seed
	}
	if opts.SuiteSeed == 0 {
		opts.SuiteSeed = def.SuiteSeed
	}
	if opts.JobWorkers == 0 {
		opts.JobWorkers = def.JobWorkers
	}
	if opts.QueueCap == 0 {
		opts.QueueCap = def.QueueCap
	}
	if opts.Retain == 0 {
		opts.Retain = def.Retain
	}
	if opts.Profile.Sizes == nil {
		opts.Profile = def.Profile
	}
	if opts.Empirical.Sizes == nil {
		opts.Empirical = def.Empirical
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opts.ReplicaID == "" {
		opts.ReplicaID = defaultReplicaID()
	}
	s := &Service{
		opts:     opts,
		registry: NewModelRegistry(opts.Profile, opts.Empirical),
		logger:   logger,
		start:    time.Now(),
		labs:     make(map[labKey]*labEntry),
		nets:     make(map[string]*simgrid.Net),
		shards:   make(map[string]*preparedShard),
	}
	s.shardCamp = &campaign.Engine{Source: s.registry, Workers: opts.Parallelism}
	s.shardRob = &robust.Engine{Source: s.registry, Workers: opts.Parallelism}
	s.shardArr = &arrival.Engine{Source: s.registry, Workers: opts.Parallelism}
	if opts.Store != nil {
		s.registry.SetStore(opts.Store)
		s.registry.Warm()
		var cells CellRunner
		if !opts.NoShard {
			cells = shardRunner{s}
		}
		s.jobs = NewDurableJobManager(opts.JobWorkers, opts.Retain,
			opts.Store, opts.ReplicaID, opts.LeaseTTL, s.runPayload, cells)
	} else {
		s.jobs = NewJobManager(opts.JobWorkers, opts.QueueCap, opts.Retain)
	}
	return s
}

// runPayload is the durable pool's dispatcher: it rematerialises a claimed
// job from its submission record. Campaign and robustness kinds carry their
// spec as the payload; every other kind is a study request. Because the
// specs are normalized at submission, a replayed run resolves the same
// seeds — and so the same reports — as the submitting replica would have.
func (s *Service) runPayload(ctx context.Context, kind string, payload []byte, prog *obs.Progress) (string, error) {
	switch {
	case isCampaignKind(kind):
		var spec campaign.Spec
		if err := json.Unmarshal(payload, &spec); err != nil {
			return "", fmt.Errorf("service: campaign payload: %w", err)
		}
		return s.runCampaign(ctx, spec, prog)
	case isRobustKind(kind):
		var spec robust.Spec
		if err := json.Unmarshal(payload, &spec); err != nil {
			return "", fmt.Errorf("service: robustness payload: %w", err)
		}
		return s.runRobustness(ctx, spec, prog)
	case isArrivalKind(kind):
		var spec arrival.Spec
		if err := json.Unmarshal(payload, &spec); err != nil {
			return "", fmt.Errorf("service: arrival payload: %w", err)
		}
		return s.runArrival(ctx, spec, prog)
	default:
		var req StudyRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return "", fmt.Errorf("service: study payload: %w", err)
		}
		return s.RunStudy(ctx, req)
	}
}

// submitDurable marshals a validated submission into the shared pool.
func (s *Service) submitDurable(kind string, v any) (JobStatus, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return JobStatus{}, err
	}
	return s.jobs.SubmitPayload(kind, payload)
}

// net returns the cached network of an environment, building it on first
// use. The net owns the engine pool all requests against that environment
// share.
func (s *Service) net(env string, c platform.Cluster) (*simgrid.Net, error) {
	s.netMu.Lock()
	defer s.netMu.Unlock()
	if n, ok := s.nets[env]; ok {
		return n, nil
	}
	n, err := simgrid.NewNet(c)
	if err != nil {
		return nil, err
	}
	s.nets[env] = n
	return n, nil
}

// Scratch-pool telemetry for the synchronous request paths.
var (
	svcScratchAcquires = obs.Default.Counter("repro_pool_acquires_total",
		"Pool acquisitions, by pool.", obs.L("pool", "service_scratch"))
	svcScratchReleases = obs.Default.Counter("repro_pool_releases_total",
		"Pool releases, by pool.", obs.L("pool", "service_scratch"))
	svcScratchNews = obs.Default.Counter("repro_pool_news_total",
		"Pool misses that built a fresh object, by pool.", obs.L("pool", "service_scratch"))
)

// acquireScratch draws a scheduling scratch from the pool.
func (s *Service) acquireScratch() *sched.Scratch {
	svcScratchAcquires.Inc()
	if sc, ok := s.scratch.Get().(*sched.Scratch); ok {
		return sc
	}
	svcScratchNews.Inc()
	return sched.NewScratch()
}

// releaseScratch returns a scratch to the pool.
func (s *Service) releaseScratch(sc *sched.Scratch) {
	svcScratchReleases.Inc()
	s.scratch.Put(sc)
}

// Registry exposes the fitted-model registry.
func (s *Service) Registry() *ModelRegistry { return s.registry }

// Jobs exposes the job manager.
func (s *Service) Jobs() *JobManager { return s.jobs }

// Close shuts the job queue down, cancelling queued and running jobs.
func (s *Service) Close(ctx context.Context) error { return s.jobs.Shutdown(ctx) }

// ---------------------------------------------------------------- schedule

// ScheduleRequest asks for a schedule of one DAG.
type ScheduleRequest struct {
	// DAG is the application, in the cmd/daggen node/edge-list format.
	DAG *dag.Graph `json:"dag"`
	// Algorithm selects the scheduler (default "HCPA"); one of CPA, HCPA,
	// MCPA, SEQ, DATAPAR.
	Algorithm string `json:"algorithm,omitempty"`
	// Model selects the performance model (default "analytic").
	Model string `json:"model,omitempty"`
	// Environment selects the modelled environment (default "bayreuth").
	Environment string `json:"environment,omitempty"`
	// Seed selects the measurement campaign (0 = the service default).
	Seed int64 `json:"seed,omitempty"`
}

// ScheduledTask is one task of a computed schedule.
type ScheduledTask struct {
	ID        int     `json:"id"`
	Name      string  `json:"name"`
	P         int     `json:"p"`
	Hosts     []int   `json:"hosts"`
	EstStart  float64 `json:"est_start"`
	EstFinish float64 `json:"est_finish"`
}

// ScheduleResponse is the computed schedule plus the simulated (predicted)
// makespan under the requested model.
type ScheduleResponse struct {
	Algorithm   string `json:"algorithm"`
	Model       string `json:"model"`
	Environment string `json:"environment"`
	Seed        int64  `json:"seed"`
	// CacheHit reports whether the model came from the registry cache.
	CacheHit bool `json:"cache_hit"`
	// EstMakespan is the mapping phase's own estimate; SimMakespan is the
	// simulator's replay of the schedule under the same model.
	EstMakespan float64         `json:"est_makespan"`
	SimMakespan float64         `json:"sim_makespan"`
	Tasks       []ScheduledTask `json:"tasks"`
}

// badRequest marks an error as caused by the request itself (unknown
// names, missing DAG) rather than a server-side failure; the HTTP layer
// maps it to 400 and everything else to 500.
type badRequest struct{ err error }

func (b badRequest) Error() string { return b.err.Error() }
func (b badRequest) Unwrap() error { return b.err }

// IsBadRequest reports whether err was caused by the request itself.
func IsBadRequest(err error) bool {
	var b badRequest
	return errors.As(err, &b)
}

// normalize fills request defaults and validates the request-supplied
// names, so every error past this point is a server-side failure.
func (s *Service) normalize(req *ScheduleRequest) error {
	if req.DAG == nil || req.DAG.Len() == 0 {
		return badRequest{fmt.Errorf("service: request has no dag")}
	}
	return s.normalizeNames(&req.Algorithm, &req.Model, &req.Environment, &req.Seed)
}

// normalizeNames fills the (algorithm, model, environment, seed) defaults
// and validates the model kind — the part of request normalization shared by
// single and batched requests.
func (s *Service) normalizeNames(algorithm, model, environment *string, seed *int64) error {
	if *algorithm == "" {
		*algorithm = "HCPA"
	}
	if *model == "" {
		*model = "analytic"
	}
	validKind := false
	for _, k := range ModelKinds() {
		if *model == k {
			validKind = true
		}
	}
	if !validKind {
		return badRequest{fmt.Errorf("service: unknown model kind %q (want one of %v)", *model, ModelKinds())}
	}
	if *environment == "" {
		*environment = "bayreuth"
	}
	if *seed == 0 {
		*seed = s.opts.Seed
	}
	return nil
}

// algorithmByName resolves a scheduler name.
func algorithmByName(name string) (sched.Algorithm, error) {
	for _, algo := range []sched.Algorithm{
		sched.CPA{}, sched.HCPA{}, sched.MCPA{}, sched.Sequential{}, sched.DataParallel{},
	} {
		if algo.Name() == name {
			return algo, nil
		}
	}
	return nil, fmt.Errorf("service: unknown algorithm %q", name)
}

// build resolves a request into a schedule, the model it used and the
// environment's cluster, pulling the fitted model from the registry.
func (s *Service) build(req *ScheduleRequest) (*sched.Schedule, perfmodel.Model, *simgrid.Net, bool, error) {
	if err := s.normalize(req); err != nil {
		return nil, nil, nil, false, err
	}
	algo, err := algorithmByName(req.Algorithm)
	if err != nil {
		return nil, nil, nil, false, badRequest{err}
	}
	truth, err := s.registry.Environment(req.Environment)
	if err != nil {
		return nil, nil, nil, false, badRequest{err}
	}
	model, hit, err := s.registry.Get(ModelKey{Environment: req.Environment, Kind: req.Model, Seed: req.Seed})
	if err != nil {
		return nil, nil, nil, false, err
	}
	c := truth.Cluster
	schedule, err := s.buildSchedule(algo, req.DAG, c, model, req.Model)
	if err != nil {
		return nil, nil, nil, false, err
	}
	net, err := s.net(req.Environment, c)
	if err != nil {
		return nil, nil, nil, false, err
	}
	return schedule, model, net, hit, nil
}

// buildSchedule runs one scheduling pass — homogeneous or heterogeneous,
// per the cluster — under the given model. Shared by the single and batched
// paths so their schedules agree by construction. Homogeneous builds go
// through a pooled scheduling scratch (bit-identical to sched.Build) and are
// detached with Clone before the scratch returns to the pool, so concurrent
// requests reuse buffers without aliasing each other's responses.
func (s *Service) buildSchedule(algo sched.Algorithm, g *dag.Graph, c platform.Cluster, model perfmodel.Model, kind string) (*sched.Schedule, error) {
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)
	var schedule *sched.Schedule
	var err error
	if c.IsHomogeneous() {
		sc := s.acquireScratch()
		sc.Bind(g, c.Nodes, cost)
		schedule, err = sc.Build(algo, comm)
		if err == nil {
			schedule = schedule.Clone()
		}
		s.releaseScratch(sc)
	} else {
		schedule, err = sched.BuildHetero(algo, g, c, cost, comm)
	}
	if err != nil {
		return nil, err
	}
	schedule.Model = kind
	return schedule, nil
}

// Schedule computes a schedule and its simulated makespan.
func (s *Service) Schedule(ctx context.Context, req ScheduleRequest) (*ScheduleResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	schedule, model, net, hit, err := s.build(&req)
	if err != nil {
		return nil, err
	}
	sim, err := tgrid.Run(net, schedule, tgrid.ModelTiming{Model: model})
	if err != nil {
		return nil, err
	}
	resp := &ScheduleResponse{
		Algorithm:   req.Algorithm,
		Model:       req.Model,
		Environment: req.Environment,
		Seed:        req.Seed,
		CacheHit:    hit,
		EstMakespan: schedule.EstMakespan(),
		SimMakespan: sim.Makespan,
	}
	for _, id := range schedule.Order() {
		resp.Tasks = append(resp.Tasks, ScheduledTask{
			ID:        id,
			Name:      req.DAG.Task(id).Name,
			P:         schedule.Alloc[id],
			Hosts:     schedule.Hosts[id],
			EstStart:  schedule.EstStart[id],
			EstFinish: schedule.EstFinish[id],
		})
	}
	return resp, nil
}

// ---------------------------------------------------------------- simulate

// SimulatedTask is one task of a simulated execution timeline.
type SimulatedTask struct {
	ID      int     `json:"id"`
	Name    string  `json:"name"`
	P       int     `json:"p"`
	Hosts   []int   `json:"hosts"`
	Start   float64 `json:"start"`
	Finish  float64 `json:"finish"`
	Startup float64 `json:"startup"`
}

// SimulateResponse is the simulated timeline of a schedule.
type SimulateResponse struct {
	Algorithm   string          `json:"algorithm"`
	Model       string          `json:"model"`
	Environment string          `json:"environment"`
	Seed        int64           `json:"seed"`
	CacheHit    bool            `json:"cache_hit"`
	Makespan    float64         `json:"makespan"`
	Tasks       []SimulatedTask `json:"tasks"`
}

// simulateTimeline replays one schedule on the environment's pooled engines
// and assembles the per-task timeline. Both the single and batched simulate
// paths go through it, so a batch item is identical to the corresponding
// single response by construction.
func simulateTimeline(g *dag.Graph, schedule *sched.Schedule, model perfmodel.Model, net *simgrid.Net) (float64, []SimulatedTask, error) {
	sim, err := tgrid.Run(net, schedule, tgrid.ModelTiming{Model: model})
	if err != nil {
		return 0, nil, err
	}
	tasks := make([]SimulatedTask, 0, g.Len())
	for _, id := range schedule.Order() {
		tasks = append(tasks, SimulatedTask{
			ID:      id,
			Name:    g.Task(id).Name,
			P:       schedule.Alloc[id],
			Hosts:   schedule.Hosts[id],
			Start:   sim.TaskStart[id],
			Finish:  sim.TaskFinish[id],
			Startup: sim.TaskStartupDur[id],
		})
	}
	return sim.Makespan, tasks, nil
}

// Simulate computes a schedule and returns the simulator's full per-task
// timeline — one of the paper's simulators as a service call.
func (s *Service) Simulate(ctx context.Context, req ScheduleRequest) (*SimulateResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	schedule, model, net, hit, err := s.build(&req)
	if err != nil {
		return nil, err
	}
	makespan, tasks, err := simulateTimeline(req.DAG, schedule, model, net)
	if err != nil {
		return nil, err
	}
	return &SimulateResponse{
		Algorithm:   req.Algorithm,
		Model:       req.Model,
		Environment: req.Environment,
		Seed:        req.Seed,
		CacheHit:    hit,
		Makespan:    makespan,
		Tasks:       tasks,
	}, nil
}

// SimulateBatchRequest asks for the simulated timelines of many DAGs that
// share one (algorithm, model, environment, seed) tuple. The expensive parts
// of request handling — model-registry resolution (which may trigger a
// fitting campaign on a cold cache) and network construction — are paid once
// and amortized over the whole batch, and the per-DAG replays draw engines
// from the environment's shared pool.
type SimulateBatchRequest struct {
	// DAGs are the applications, in the cmd/daggen node/edge-list format.
	DAGs []*dag.Graph `json:"dags"`
	// Algorithm selects the scheduler for every DAG (default "HCPA").
	Algorithm string `json:"algorithm,omitempty"`
	// Model selects the performance model (default "analytic").
	Model string `json:"model,omitempty"`
	// Environment selects the modelled environment (default "bayreuth").
	Environment string `json:"environment,omitempty"`
	// Seed selects the measurement campaign (0 = the service default).
	Seed int64 `json:"seed,omitempty"`
}

// SimulateBatchItem is one DAG's simulated execution within a batch.
type SimulateBatchItem struct {
	Makespan float64         `json:"makespan"`
	Tasks    []SimulatedTask `json:"tasks"`
}

// SimulateBatchResponse reports a batched simulation: the shared resolution
// once, then one item per input DAG, in input order.
type SimulateBatchResponse struct {
	Algorithm   string `json:"algorithm"`
	Model       string `json:"model"`
	Environment string `json:"environment"`
	Seed        int64  `json:"seed"`
	// CacheHit reports whether the batch's single model lookup hit the
	// registry cache.
	CacheHit bool                `json:"cache_hit"`
	Results  []SimulateBatchItem `json:"results"`
}

// SimulateBatch schedules and simulates every DAG of the batch under one
// model resolution. Per-DAG work runs on the service's worker pool with
// index-addressed results, so responses are deterministic for any
// parallelism; the first failing DAG (by input order) aborts the batch.
func (s *Service) SimulateBatch(ctx context.Context, req SimulateBatchRequest) (*SimulateBatchResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(req.DAGs) == 0 {
		return nil, badRequest{fmt.Errorf("service: batch has no dags")}
	}
	for i, g := range req.DAGs {
		if g == nil || g.Len() == 0 {
			return nil, badRequest{fmt.Errorf("service: batch dag %d is empty", i)}
		}
	}
	if err := s.normalizeNames(&req.Algorithm, &req.Model, &req.Environment, &req.Seed); err != nil {
		return nil, err
	}
	algo, err := algorithmByName(req.Algorithm)
	if err != nil {
		return nil, badRequest{err}
	}
	truth, err := s.registry.Environment(req.Environment)
	if err != nil {
		return nil, badRequest{err}
	}
	// One registry resolution for the whole batch.
	model, hit, err := s.registry.Get(ModelKey{Environment: req.Environment, Kind: req.Model, Seed: req.Seed})
	if err != nil {
		return nil, err
	}
	c := truth.Cluster
	net, err := s.net(req.Environment, c)
	if err != nil {
		return nil, err
	}

	resp := &SimulateBatchResponse{
		Algorithm:   req.Algorithm,
		Model:       req.Model,
		Environment: req.Environment,
		Seed:        req.Seed,
		CacheHit:    hit,
		Results:     make([]SimulateBatchItem, len(req.DAGs)),
	}
	err = experiments.ForEachCellCtx(ctx, s.opts.Parallelism, len(req.DAGs), func(i int) error {
		g := req.DAGs[i]
		schedule, err := s.buildSchedule(algo, g, c, model, req.Model)
		if err != nil {
			return fmt.Errorf("service: batch dag %d: %w", i, err)
		}
		makespan, tasks, err := simulateTimeline(g, schedule, model, net)
		if err != nil {
			return fmt.Errorf("service: batch dag %d: %w", i, err)
		}
		resp.Results[i] = SimulateBatchItem{Makespan: makespan, Tasks: tasks}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// ------------------------------------------------------------- study jobs

// StudyRequest submits one of the evaluation's studies as an async job.
type StudyRequest struct {
	// Study names the artifact, as in cmd/mixedsim: table1, fig1..fig8,
	// table2, ablation, breakdown, shapes, scaling, sensitivity, straggler,
	// hetero, environments.
	Study string `json:"study"`
	// Environment selects the lab's ground truth for lab-based studies
	// (default "bayreuth"). Standalone studies (scaling, sensitivity,
	// straggler, hetero, environments) assemble their own environments and
	// ignore it.
	Environment string `json:"environment,omitempty"`
	// Seed overrides the noise seed (0 = service default).
	Seed int64 `json:"seed,omitempty"`
	// SuiteSeed overrides the Table I suite seed (0 = service default).
	SuiteSeed int64 `json:"suite_seed,omitempty"`
	// Trials overrides the emulated runs per measured makespan (0 = 1).
	Trials int `json:"trials,omitempty"`
}

// StudyNames lists the studies SubmitStudy accepts.
func StudyNames() []string { return experiments.StudyNames() }

func validStudy(name string) bool {
	for _, s := range StudyNames() {
		if s == name {
			return true
		}
	}
	return false
}

// config materialises the experiments.Config of a study request.
func (s *Service) config(req StudyRequest) experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.NoiseSeed = req.Seed
	if cfg.NoiseSeed == 0 {
		cfg.NoiseSeed = s.opts.Seed
	}
	cfg.SuiteSeed = req.SuiteSeed
	if cfg.SuiteSeed == 0 {
		cfg.SuiteSeed = s.opts.SuiteSeed
	}
	if req.Trials > 0 {
		cfg.ExpTrials = req.Trials
	}
	cfg.Parallelism = s.opts.Parallelism
	cfg.Profile = s.opts.Profile
	cfg.Empirical = s.opts.Empirical
	return cfg
}

// lab returns the lazily assembled lab for a study request, reusing the
// registry's fitted models: the campaigns run once per (environment, seed)
// no matter how many labs and requests share them.
func (s *Service) lab(env string, cfg experiments.Config) (*experiments.Lab, error) {
	key := labKey{env: env, seed: cfg.NoiseSeed, suiteSeed: cfg.SuiteSeed, trials: cfg.ExpTrials}
	s.labMu.Lock()
	e, ok := s.labs[key]
	if !ok {
		e = &labEntry{}
		s.labs[key] = e
	}
	s.labMu.Unlock()
	e.once.Do(func() {
		truth, em, prof, emp, err := s.registry.Campaign(env, cfg.NoiseSeed)
		if err != nil {
			e.err = err
			return
		}
		e.lab, e.err = experiments.AssembleLab(cfg, truth, em, prof, emp)
	})
	return e.lab, e.err
}

// SubmitStudy queues a study run and returns its job status.
func (s *Service) SubmitStudy(req StudyRequest) (JobStatus, error) {
	if !validStudy(req.Study) {
		return JobStatus{}, badRequest{fmt.Errorf("service: unknown study %q (want one of %v)", req.Study, StudyNames())}
	}
	if req.Environment == "" {
		req.Environment = "bayreuth"
	}
	if _, err := s.registry.Environment(req.Environment); err != nil {
		return JobStatus{}, badRequest{err}
	}
	if s.jobs.Durable() {
		return s.submitDurable(req.Study, req)
	}
	return s.jobs.Submit(req.Study, func(ctx context.Context) (string, error) {
		return s.RunStudy(ctx, req)
	})
}

// RunStudy executes one study synchronously and returns the rendered
// report, byte-identical to cmd/mixedsim's output for the same seeds (both
// render through experiments.RenderStudy; only the lab's provenance
// differs — the service assembles its labs from registry-cached fits).
func (s *Service) RunStudy(ctx context.Context, req StudyRequest) (string, error) {
	cfg := s.config(req)
	labFn := func() (*experiments.Lab, error) { return s.lab(req.Environment, cfg) }
	var buf bytes.Buffer
	if err := experiments.RenderStudy(ctx, req.Study, cfg, labFn, &buf); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// -------------------------------------------------------------- campaigns

// campaignKindPrefix marks campaign jobs in the shared job store.
const campaignKindPrefix = "campaign"

// isCampaignKind reports whether a job kind belongs to a campaign.
func isCampaignKind(kind string) bool { return strings.HasPrefix(kind, campaignKindPrefix) }

// normalizeCampaign fills a campaign spec's seed defaults from the service
// options, so campaigns, schedule requests and study jobs all share the
// same fitted models by default. An axis that already names workloads —
// suite seeds, traces or shapes — is left alone: the suite default only
// applies to a fully empty axis.
func (s *Service) normalizeCampaign(spec campaign.Spec) campaign.Spec {
	if spec.Seed == 0 {
		spec.Seed = s.opts.Seed
	}
	if spec.Workloads.IsEmpty() {
		spec.Workloads.SuiteSeeds = []int64{s.opts.SuiteSeed}
	}
	return spec
}

// SubmitCampaign validates a declarative what-if sweep and queues it as an
// async job (kind "campaign" or "campaign:<name>"). Invalid specs —
// unknown axis values, empty grids, grids beyond the campaign limits — are
// rejected up front as bad requests, before any fitting campaign runs.
func (s *Service) SubmitCampaign(spec campaign.Spec) (JobStatus, error) {
	spec = s.normalizeCampaign(spec)
	plan, err := spec.Plan()
	if err != nil {
		return JobStatus{}, badRequest{err}
	}
	if _, err := s.registry.Environment(plan.Spec.Platforms.Base); err != nil {
		return JobStatus{}, badRequest{err}
	}
	kind := campaignKindPrefix
	if spec.Name != "" {
		kind += ":" + spec.Name
	}
	if s.jobs.Durable() {
		return s.submitDurable(kind, spec)
	}
	return s.jobs.SubmitTracked(kind, func(ctx context.Context, prog *obs.Progress) (string, error) {
		return s.runCampaign(ctx, spec, prog)
	})
}

// RunCampaign executes a campaign synchronously against the service's
// fit-once registry and returns the rendered report. Derived platforms are
// registered under deterministic names, so repeated campaigns (and plain
// schedule requests against the same derived platforms) reuse the fits.
func (s *Service) RunCampaign(ctx context.Context, spec campaign.Spec) (string, error) {
	return s.runCampaign(ctx, spec, nil)
}

// runCampaign is RunCampaign with an optional live progress record (attached
// by the job manager for queued campaigns). Progress is write-only in the
// engine, so the report is byte-identical with or without it.
func (s *Service) runCampaign(ctx context.Context, spec campaign.Spec, prog *obs.Progress) (string, error) {
	spec = s.normalizeCampaign(spec)
	eng := campaign.Engine{Source: s.registry, Workers: s.opts.Parallelism, Progress: prog}
	res, err := eng.Run(ctx, spec)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	res.Write(&buf)
	return buf.String(), nil
}

// ------------------------------------------------------------- robustness

// robustKindPrefix marks robustness jobs in the shared job store.
const robustKindPrefix = "robust"

// isRobustKind reports whether a job kind belongs to a robustness study.
func isRobustKind(kind string) bool { return strings.HasPrefix(kind, robustKindPrefix) }

// normalizeRobustness fills a robustness spec's seed defaults from the
// service options — the embedded campaign normalizes exactly like a plain
// campaign submission, so a robustness study's base grid shares its fitted
// models with every other consumer of the registry.
func (s *Service) normalizeRobustness(spec robust.Spec) robust.Spec {
	spec.Spec = s.normalizeCampaign(spec.Spec)
	return spec
}

// SubmitRobustness validates a Monte Carlo robustness study and queues it
// as an async job (kind "robust" or "robust:<name>"). Invalid specs — bad
// campaign axes, bad noise dimensions, trial budgets beyond the limits —
// are rejected up front as bad requests, before any fitting or trials run.
func (s *Service) SubmitRobustness(spec robust.Spec) (JobStatus, error) {
	spec = s.normalizeRobustness(spec)
	plan, err := spec.Plan()
	if err != nil {
		return JobStatus{}, badRequest{err}
	}
	if _, err := s.registry.Environment(plan.Campaign.Spec.Platforms.Base); err != nil {
		return JobStatus{}, badRequest{err}
	}
	kind := robustKindPrefix
	if spec.Name != "" {
		kind += ":" + spec.Name
	}
	if s.jobs.Durable() {
		return s.submitDurable(kind, spec)
	}
	return s.jobs.SubmitTracked(kind, func(ctx context.Context, prog *obs.Progress) (string, error) {
		return s.runRobustness(ctx, spec, prog)
	})
}

// RunRobustness executes a robustness study synchronously against the
// service's fit-once registry and returns the rendered report: the base
// campaign (byte-identical to submitting it as a plain campaign) followed
// by the winner-stability sections.
func (s *Service) RunRobustness(ctx context.Context, spec robust.Spec) (string, error) {
	return s.runRobustness(ctx, spec, nil)
}

// runRobustness is RunRobustness with an optional live progress record; as
// with campaigns, attaching one cannot change a byte of the report.
func (s *Service) runRobustness(ctx context.Context, spec robust.Spec, prog *obs.Progress) (string, error) {
	spec = s.normalizeRobustness(spec)
	eng := robust.Engine{Source: s.registry, Workers: s.opts.Parallelism, Progress: prog}
	res, err := eng.Run(ctx, spec)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	res.Write(&buf)
	return buf.String(), nil
}

// --------------------------------------------------------------- arrivals

// arrivalKindPrefix marks online-arrival jobs in the shared job store.
const arrivalKindPrefix = "arrival"

// isArrivalKind reports whether a job kind belongs to an arrival scenario.
func isArrivalKind(kind string) bool { return strings.HasPrefix(kind, arrivalKindPrefix) }

// normalizeArrival fills an arrival spec's seed defaults from the service
// options: the noise seed and — only for a fully empty workload axis — the
// service's Table I suite seed, exactly as for campaigns.
func (s *Service) normalizeArrival(spec arrival.Spec) arrival.Spec {
	if spec.Seed == 0 {
		spec.Seed = s.opts.Seed
	}
	if spec.Workloads.IsEmpty() {
		spec.Workloads.SuiteSeeds = []int64{s.opts.SuiteSeed}
	}
	return spec
}

// SubmitArrival validates an online-arrival scenario and queues it as an
// async job (kind "arrival" or "arrival:<name>"). Invalid specs — unknown
// axes, bad processes, unloadable traces — are rejected up front as bad
// requests, before any fitting campaign runs.
func (s *Service) SubmitArrival(spec arrival.Spec) (JobStatus, error) {
	spec = s.normalizeArrival(spec)
	// Prepare expands the plan, resolves the environment and checks the
	// partition geometry — the whole rejection surface — without fitting
	// anything, so invalid scenarios 400 at submit time.
	if _, err := s.shardArr.Prepare(spec); err != nil {
		return JobStatus{}, badRequest{err}
	}
	kind := arrivalKindPrefix
	if spec.Name != "" {
		kind += ":" + spec.Name
	}
	if s.jobs.Durable() {
		return s.submitDurable(kind, spec)
	}
	return s.jobs.SubmitTracked(kind, func(ctx context.Context, prog *obs.Progress) (string, error) {
		return s.runArrival(ctx, spec, prog)
	})
}

// RunArrival executes an online-arrival scenario synchronously against the
// service's fit-once registry and returns the rendered report.
func (s *Service) RunArrival(ctx context.Context, spec arrival.Spec) (string, error) {
	return s.runArrival(ctx, spec, nil)
}

// runArrival is RunArrival with an optional live progress record; as with
// campaigns, attaching one cannot change a byte of the report.
func (s *Service) runArrival(ctx context.Context, spec arrival.Spec, prog *obs.Progress) (string, error) {
	spec = s.normalizeArrival(spec)
	eng := arrival.Engine{Source: s.registry, Workers: s.opts.Parallelism, Progress: prog}
	res, err := eng.Run(ctx, spec)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	res.Write(&buf)
	return buf.String(), nil
}
