package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/arrival"
	"repro/internal/campaign"
	"repro/internal/robust"
)

// Client is a typed HTTP client for a reprosrv daemon.
type Client struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(base string) *Client { return &Client{Base: base} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var apiErr apiError
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("service: %s %s: %s (HTTP %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("service: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	var h HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("service: health status %q", h.Status)
	}
	return nil
}

// Schedule submits a DAG for scheduling.
func (c *Client) Schedule(ctx context.Context, req ScheduleRequest) (*ScheduleResponse, error) {
	var resp ScheduleResponse
	if err := c.do(ctx, http.MethodPost, "/v1/schedule", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Simulate submits a DAG for scheduling plus simulated replay.
func (c *Client) Simulate(ctx context.Context, req ScheduleRequest) (*SimulateResponse, error) {
	var resp SimulateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/simulate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SimulateBatch submits many DAGs for scheduling plus simulated replay under
// one shared (algorithm, model, environment, seed) resolution.
func (c *Client) SimulateBatch(ctx context.Context, req SimulateBatchRequest) (*SimulateBatchResponse, error) {
	if len(req.DAGs) == 0 {
		// A nil slice would serialize as "dags": null, which the server
		// routes down the single-DAG path; fail with the batch contract's
		// own error instead.
		return nil, fmt.Errorf("service: batch has no dags")
	}
	var resp SimulateBatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/simulate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitStudy queues an async study run.
func (c *Client) SubmitStudy(ctx context.Context, req StudyRequest) (*JobStatus, error) {
	var status JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &status); err != nil {
		return nil, err
	}
	return &status, nil
}

// Job polls one job by ID.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var status JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &status); err != nil {
		return nil, err
	}
	return &status, nil
}

// Jobs lists retained jobs.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Models lists the fitted-model registry contents.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	var out []ModelInfo
	if err := c.do(ctx, http.MethodGet, "/v1/models", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// SubmitCampaign submits a declarative what-if sweep.
func (c *Client) SubmitCampaign(ctx context.Context, spec campaign.Spec) (*JobStatus, error) {
	var status JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/campaigns", spec, &status); err != nil {
		return nil, err
	}
	return &status, nil
}

// Campaign polls one campaign by ID.
func (c *Client) Campaign(ctx context.Context, id string) (*JobStatus, error) {
	var status JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id, nil, &status); err != nil {
		return nil, err
	}
	return &status, nil
}

// Campaigns lists retained campaigns.
func (c *Client) Campaigns(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/campaigns", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// SubmitRobustness submits a Monte Carlo winner-stability study.
func (c *Client) SubmitRobustness(ctx context.Context, spec robust.Spec) (*JobStatus, error) {
	var status JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/robustness", spec, &status); err != nil {
		return nil, err
	}
	return &status, nil
}

// Robustness polls one robustness study by ID.
func (c *Client) Robustness(ctx context.Context, id string) (*JobStatus, error) {
	var status JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/robustness/"+id, nil, &status); err != nil {
		return nil, err
	}
	return &status, nil
}

// RobustnessJobs lists retained robustness studies.
func (c *Client) RobustnessJobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/robustness", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// SubmitArrival submits an online-arrival scenario.
func (c *Client) SubmitArrival(ctx context.Context, spec arrival.Spec) (*JobStatus, error) {
	var status JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/arrivals", spec, &status); err != nil {
		return nil, err
	}
	return &status, nil
}

// Arrival polls one arrival scenario by ID.
func (c *Client) Arrival(ctx context.Context, id string) (*JobStatus, error) {
	var status JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/arrivals/"+id, nil, &status); err != nil {
		return nil, err
	}
	return &status, nil
}

// ArrivalJobs lists retained arrival scenarios.
func (c *Client) ArrivalJobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/arrivals", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// WaitJob polls a job until it leaves the queued/running states, ctx
// expires, or the server becomes unreachable. The job must stay within the
// server's retention window (-retain) while being waited on: if enough
// other jobs finish to evict it between polls, WaitJob reports a 404 even
// though the job completed.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	return c.wait(ctx, poll, func() (*JobStatus, error) { return c.Job(ctx, id) })
}

// WaitCampaign is WaitJob over /v1/campaigns/{id}.
func (c *Client) WaitCampaign(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	return c.wait(ctx, poll, func() (*JobStatus, error) { return c.Campaign(ctx, id) })
}

// WaitRobustness is WaitJob over /v1/robustness/{id}.
func (c *Client) WaitRobustness(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	return c.wait(ctx, poll, func() (*JobStatus, error) { return c.Robustness(ctx, id) })
}

// WaitArrival is WaitJob over /v1/arrivals/{id}.
func (c *Client) WaitArrival(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	return c.wait(ctx, poll, func() (*JobStatus, error) { return c.Arrival(ctx, id) })
}

// wait polls fetch until the status leaves the queued/running states.
func (c *Client) wait(ctx context.Context, poll time.Duration, fetch func() (*JobStatus, error)) (*JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		status, err := fetch()
		if err != nil {
			return nil, err
		}
		if status.State != JobQueued && status.State != JobRunning {
			return status, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
		}
	}
}
