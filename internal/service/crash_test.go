package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/robust"
	"repro/internal/store"
)

// Crash-recovery harness: the test binary re-executes itself as worker
// replicas (the standard helper-process pattern), the parent drives the
// shared store directly. A worker that dies by SIGKILL mid-job cannot
// release anything — recovery happens purely through lease expiry, WAL
// replay of whatever the dead writer managed to sync, and the reclaimer on
// a surviving replica.

// crashWorkerEnv, when set, turns a test-binary invocation into a worker
// replica on the given store directory instead of a test run.
const crashWorkerEnv = "REPRO_CRASH_WORKER_DIR"
const crashWorkerIDEnv = "REPRO_CRASH_WORKER_ID"

func TestMain(m *testing.M) {
	if dir := os.Getenv(crashWorkerEnv); dir != "" {
		runCrashWorker(dir, os.Getenv(crashWorkerIDEnv))
		return
	}
	os.Exit(m.Run())
}

// runCrashWorker is the worker-replica main: a headless service over the
// shared store whose claim loops pick jobs from the durable pool. It blocks
// until killed.
func runCrashWorker(dir, id string) {
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash worker: %v\n", err)
		os.Exit(1)
	}
	opts := DefaultOptions()
	opts.Store = st
	opts.ReplicaID = id
	opts.LeaseTTL = 300 * time.Millisecond
	opts.JobWorkers = 1
	_ = New(opts)
	fmt.Println("worker ready") // parent waits for this line
	select {}
}

// startCrashWorker launches one worker replica and waits for it to come up.
func startCrashWorker(t *testing.T, dir, id string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), crashWorkerEnv+"="+dir, crashWorkerIDEnv+"="+id)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("worker %s: %v", id, err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("worker %s: %v", id, err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	buf := make([]byte, 64)
	if _, err := stdout.Read(buf); err != nil {
		t.Fatalf("worker %s never became ready: %v", id, err)
	}
	return cmd
}

// crashSpec is a robustness study sized to run for a few seconds — long
// enough to SIGKILL the first worker mid-run with margin on slow machines.
// Every seed is explicit, so normalization is the identity and any replica
// resolves the exact same work.
func crashSpec() robust.Spec {
	return robust.Spec{
		Spec: campaign.Spec{
			Name:       "crash",
			Seed:       42,
			Workloads:  campaign.WorkloadAxis{Sizes: []int{2000, 3000}, SuiteSeeds: []int64{2011}},
			Algorithms: []string{"CPA", "HCPA", "MCPA"},
			Models:     []string{"analytic"},
		},
		Robustness: robust.Axis{
			Trials: 64,
			Levels: []float64{0.02, 0.05, 0.1, 0.2, 0.3, 0.5},
		},
	}
}

// TestCrashRecoveryByteIdentity is the durability pin: a job whose first
// replica is SIGKILL'd mid-run is reclaimed by a second replica after lease
// expiry and completes with output byte-identical to an uninterrupted
// in-process run of the same spec.
func TestCrashRecoveryByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash test in -short mode")
	}
	spec := crashSpec()

	// The uninterrupted reference, computed in-process with no store.
	ref := New(DefaultOptions())
	defer ref.Close(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	want, err := ref.RunRobustness(ctx, spec)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Submit the same spec into a durable pool, exactly as the service's
	// durable submit path would.
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	defer st.Close()
	payload, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.SubmitJob("robust:crash", payload)
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}

	// Worker 1 claims the job; wait for proof it is genuinely mid-run
	// (progress flows through lease renewals), then SIGKILL it.
	w1 := startCrashWorker(t, dir, "w1")
	deadline := time.Now().Add(time.Minute)
	for {
		if time.Now().After(deadline) {
			j, _, _ := st.Job(rec.ID)
			t.Fatalf("worker 1 never got mid-run: %+v", j)
		}
		j, ok, err := st.Job(rec.ID)
		if err != nil || !ok {
			t.Fatalf("Job: ok=%v err=%v", ok, err)
		}
		if j.State == store.StateDone {
			t.Fatal("job finished before the crash could be injected; grow crashSpec")
		}
		if j.State == store.StateRunning && j.Progress != nil && j.Progress.TrialsUsed > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := w1.Process.Kill(); err != nil { // SIGKILL: no release, no cleanup
		t.Fatalf("kill worker 1: %v", err)
	}
	w1.Wait()

	// Worker 2 on the same directory reclaims after the lease expires and
	// finishes the job.
	startCrashWorker(t, dir, "w2")
	for {
		j, ok, err := st.Job(rec.ID)
		if err != nil || !ok {
			t.Fatalf("Job: ok=%v err=%v", ok, err)
		}
		if j.State == store.StateDone || j.State == store.StateFailed {
			if j.State != store.StateDone {
				t.Fatalf("job failed after reclaim: %s", j.Error)
			}
			if j.Holder != "w2" {
				t.Fatalf("finished by %q, want the surviving replica w2", j.Holder)
			}
			if j.Restarts < 1 {
				t.Fatalf("restarts = %d, want ≥ 1 (the reclaim)", j.Restarts)
			}
			if j.Output != want {
				t.Fatalf("post-crash output differs from uninterrupted run (%d vs %d bytes)",
					len(j.Output), len(want))
			}
			return
		}
		select {
		case <-ctx.Done():
			t.Fatalf("job never finished after reclaim: %+v", j)
		case <-time.After(50 * time.Millisecond):
		}
	}
}
