package service

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/robust"
)

// stabilitySpec is a small Monte Carlo study: the paper's HCPA-vs-MCPA pair
// on the base platform under the analytic model, 4 trials at two levels.
func stabilitySpec() robust.Spec {
	return robust.Spec{
		Spec: campaign.Spec{
			Name:       "stability",
			Workloads:  campaign.WorkloadAxis{Sizes: []int{2000}},
			Algorithms: []string{"HCPA", "MCPA"},
			Models:     []string{"analytic"},
		},
		Robustness: robust.Axis{
			Trials: 4,
			Levels: []float64{0.05, 0.2},
		},
	}
}

// TestHTTPRobustnessEndToEnd drives a robustness study over the wire: a
// spec submitted through POST /v1/robustness completes, renders the base
// campaign followed by the stability sections, and is listed under
// GET /v1/robustness but not under GET /v1/campaigns.
func TestHTTPRobustnessEndToEnd(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	job, err := client.SubmitRobustness(ctx, stabilitySpec())
	if err != nil {
		t.Fatal(err)
	}
	if job.Kind != "robust:stability" {
		t.Errorf("robustness job kind = %q, want robust:stability", job.Kind)
	}
	done, err := client.WaitRobustness(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != JobDone {
		t.Fatalf("robustness study ended %s (%s), want done", done.State, done.Error)
	}
	for _, want := range []string{
		`Campaign "stability"`,
		"Winner prediction",
		"Robustness — Monte Carlo model perturbation",
		"trials=4 per level",
		"Winner stability",
		"Critical noise level",
		"HCPA vs MCPA",
	} {
		if !strings.Contains(done.Output, want) {
			t.Errorf("robustness report missing %q:\n%s", want, done.Output)
		}
	}

	studies, err := client.RobustnessJobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(studies) != 1 || studies[0].ID != job.ID {
		t.Errorf("GET /v1/robustness = %+v, want the submitted study", studies)
	}
	campaigns, err := client.Campaigns(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(campaigns) != 0 {
		t.Errorf("robustness study leaked into GET /v1/campaigns: %+v", campaigns)
	}
	if _, err := client.Campaign(ctx, job.ID); err == nil {
		t.Error("GET /v1/campaigns/{robustness-id} should 404")
	}
}

// TestRobustnessTrialsZeroMatchesCampaign pins the reduction guarantee at
// the service layer: a robustness run with trials=0 returns byte-for-byte
// the same report as the equivalent campaign run against the same registry.
func TestRobustnessTrialsZeroMatchesCampaign(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	ctx := context.Background()

	spec := stabilitySpec()
	spec.Robustness = robust.Axis{}
	robustOut, err := svc.RunRobustness(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	campaignOut, err := svc.RunCampaign(ctx, spec.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if robustOut != campaignOut {
		t.Errorf("trials=0 robustness output differs from the campaign output:\n--- robustness ---\n%s\n--- campaign ---\n%s",
			robustOut, campaignOut)
	}
}

// TestSubmitRobustnessRejectsBadSpecs checks up-front validation maps to
// bad requests.
func TestSubmitRobustnessRejectsBadSpecs(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())

	bad := stabilitySpec()
	bad.Robustness.Trials = robust.MaxTrials + 1
	if _, err := svc.SubmitRobustness(bad); err == nil || !IsBadRequest(err) {
		t.Errorf("oversized trials: err = %v, want bad request", err)
	}

	unknown := stabilitySpec()
	unknown.Platforms.Base = "atlantis"
	if _, err := svc.SubmitRobustness(unknown); err == nil || !IsBadRequest(err) {
		t.Errorf("unknown base environment: err = %v, want bad request", err)
	}
}
