package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/arrival"
	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/robust"
)

// Cell-sharded execution, service side: the durable job manager drives a
// CellRunner to split eligible jobs into per-cell work-units and to merge
// the gathered result frames back into the rendered report. The service
// implements it over the campaign/robust per-cell engine APIs, with a small
// prepared-plan cache so one replica resolves each job's plan once, not once
// per cell.

// CellRunner is how the durable manager shards a job at cell granularity.
// Implementations must be deterministic: every replica resolving the same
// (kind, payload) must see the same cell count, RunCell(i) must depend only
// on (payload, i), and MergeCells must reassemble frames in index order.
type CellRunner interface {
	// Shardable reports whether jobs of this kind split into cells.
	Shardable(kind string) bool
	// CellCount resolves the payload's plan and returns its grid size.
	CellCount(ctx context.Context, kind string, payload []byte) (int, error)
	// RunCell executes one cell and returns its serialized result frame.
	// Trial-level progress flows through prog for cross-replica aggregation.
	RunCell(ctx context.Context, kind string, payload []byte, index int, prog *obs.Progress) ([]byte, error)
	// MergeCells folds every cell's frame — in plan-index order — into the
	// job's final output.
	MergeCells(ctx context.Context, kind string, payload []byte, results [][]byte) (string, error)
}

// shardRunner adapts the Service to CellRunner.
type shardRunner struct{ s *Service }

func (r shardRunner) Shardable(kind string) bool {
	return isCampaignKind(kind) || isRobustKind(kind) || isArrivalKind(kind)
}

func (r shardRunner) CellCount(ctx context.Context, kind string, payload []byte) (int, error) {
	p, err := r.s.preparedShard(kind, payload)
	if err != nil {
		return 0, err
	}
	switch {
	case p.camp != nil:
		return p.camp.NumCells(), nil
	case p.arr != nil:
		return p.arr.NumCells(), nil
	}
	return p.rob.NumCells(), nil
}

func (r shardRunner) RunCell(ctx context.Context, kind string, payload []byte, index int, prog *obs.Progress) ([]byte, error) {
	p, err := r.s.preparedShard(kind, payload)
	if err != nil {
		return nil, err
	}
	switch {
	case p.camp != nil:
		score, err := r.s.shardCamp.RunCellIndex(ctx, p.camp, index)
		if err != nil {
			return nil, err
		}
		return campaign.EncodeCell(score)
	case p.arr != nil:
		cell, err := r.s.shardArr.RunCellIndex(ctx, p.arr, index)
		if err != nil {
			return nil, err
		}
		return arrival.EncodeCell(cell)
	}
	res, err := r.s.shardRob.RunCellIndex(ctx, p.rob, index, prog)
	if err != nil {
		return nil, err
	}
	return robust.EncodeCell(res)
}

func (r shardRunner) MergeCells(ctx context.Context, kind string, payload []byte, results [][]byte) (string, error) {
	p, err := r.s.preparedShard(kind, payload)
	if err != nil {
		return "", err
	}
	switch {
	case p.camp != nil:
		cells := make([]campaign.CellScore, len(results))
		for i, data := range results {
			if cells[i], err = campaign.DecodeCell(data); err != nil {
				return "", fmt.Errorf("service: cell %d: %w", i, err)
			}
		}
		res, err := campaign.Merge(p.camp, cells)
		if err != nil {
			return "", err
		}
		var buf bytes.Buffer
		res.Write(&buf)
		return buf.String(), nil
	case p.arr != nil:
		cells := make([]arrival.CellJobs, len(results))
		for i, data := range results {
			if cells[i], err = arrival.DecodeCell(data); err != nil {
				return "", fmt.Errorf("service: cell %d: %w", i, err)
			}
		}
		res, err := arrival.Merge(p.arr, cells)
		if err != nil {
			return "", err
		}
		var buf bytes.Buffer
		res.Write(&buf)
		return buf.String(), nil
	}
	cells := make([]robust.CellResult, len(results))
	for i, data := range results {
		if cells[i], err = robust.DecodeCell(data); err != nil {
			return "", fmt.Errorf("service: cell %d: %w", i, err)
		}
	}
	res, err := robust.Merge(p.rob, cells)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	res.Write(&buf)
	return buf.String(), nil
}

// preparedShard is one cached plan resolution: exactly one of camp/rob/arr
// is non-nil on success.
type preparedShard struct {
	once sync.Once
	camp *campaign.Prepared
	rob  *robust.Prepared
	arr  *arrival.Prepared
	err  error
}

// shardCacheCap bounds the prepared-plan cache; entries beyond it are
// evicted oldest-first. Replicas rarely interleave more than a few sharded
// jobs, and a miss only costs re-resolving a plan.
const shardCacheCap = 8

// preparedShard resolves (kind, payload) to a prepared plan, caching the
// resolution: a replica executing many cells of one job plans it once.
func (s *Service) preparedShard(kind string, payload []byte) (*preparedShard, error) {
	key := kind + "\x00" + string(payload)
	s.shardMu.Lock()
	e, ok := s.shards[key]
	if !ok {
		e = &preparedShard{}
		s.shards[key] = e
		s.shardOrder = append(s.shardOrder, key)
		for len(s.shardOrder) > shardCacheCap {
			delete(s.shards, s.shardOrder[0])
			s.shardOrder = s.shardOrder[1:]
		}
	}
	s.shardMu.Unlock()
	e.once.Do(func() {
		switch {
		case isCampaignKind(kind):
			var spec campaign.Spec
			if e.err = json.Unmarshal(payload, &spec); e.err != nil {
				e.err = fmt.Errorf("service: campaign payload: %w", e.err)
				return
			}
			e.camp, e.err = s.shardCamp.Prepare(s.normalizeCampaign(spec))
		case isRobustKind(kind):
			var spec robust.Spec
			if e.err = json.Unmarshal(payload, &spec); e.err != nil {
				e.err = fmt.Errorf("service: robustness payload: %w", e.err)
				return
			}
			e.rob, e.err = s.shardRob.Prepare(s.normalizeRobustness(spec))
		case isArrivalKind(kind):
			var spec arrival.Spec
			if e.err = json.Unmarshal(payload, &spec); e.err != nil {
				e.err = fmt.Errorf("service: arrival payload: %w", e.err)
				return
			}
			e.arr, e.err = s.shardArr.Prepare(s.normalizeArrival(spec))
		default:
			e.err = fmt.Errorf("service: kind %q is not shardable", kind)
		}
	})
	return e, e.err
}
