package service

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/arrival"
	"repro/internal/campaign"
)

// onlineSpec is a small arrival scenario: eight Poisson jobs over two
// canonical shapes, HCPA vs MCPA on 8-node partitions.
func onlineSpec() arrival.Spec {
	return arrival.Spec{
		Name: "online",
		Workloads: campaign.WorkloadAxis{
			Shapes: []string{"diamond", "reduction"},
			Sizes:  []int{2000},
		},
		Algorithms:  []string{"HCPA", "MCPA"},
		Rate:        0.05,
		Jobs:        8,
		ArrivalSeed: 7,
		Partition:   8,
	}
}

// TestHTTPArrivalEndToEnd drives an arrival scenario over the wire: a spec
// submitted through POST /v1/arrivals completes, renders the online
// scorecard, and is listed under GET /v1/arrivals but not under
// GET /v1/campaigns.
func TestHTTPArrivalEndToEnd(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	job, err := client.SubmitArrival(ctx, onlineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if job.Kind != "arrival:online" {
		t.Errorf("arrival job kind = %q, want arrival:online", job.Kind)
	}
	done, err := client.WaitArrival(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != JobDone {
		t.Fatalf("arrival scenario ended %s (%s), want done", done.State, done.Error)
	}
	for _, want := range []string{
		`Online arrivals "online"`,
		"8 jobs on bayreuth, partition 8 of 32 nodes (4 slots)",
		"poisson(rate=0.05/s,seed=7)",
		"Online scorecard",
		"Service-time prediction — fitted analytic model",
		"HCPA",
		"MCPA",
	} {
		if !strings.Contains(done.Output, want) {
			t.Errorf("arrival report missing %q:\n%s", want, done.Output)
		}
	}

	scenarios, err := client.ArrivalJobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 1 || scenarios[0].ID != job.ID {
		t.Errorf("GET /v1/arrivals = %+v, want the submitted scenario", scenarios)
	}
	campaigns, err := client.Campaigns(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(campaigns) != 0 {
		t.Errorf("arrival scenario leaked into GET /v1/campaigns: %+v", campaigns)
	}
	if _, err := client.Campaign(ctx, job.ID); err == nil {
		t.Error("GET /v1/campaigns/{arrival-id} should 404")
	}
}

// TestSubmitArrivalRejectsBadSpecs checks the whole rejection surface maps
// to bad requests at submit time — including the partition geometry, which
// needs the resolved environment's node count.
func TestSubmitArrivalRejectsBadSpecs(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())

	oversized := onlineSpec()
	oversized.Partition = 64
	if _, err := svc.SubmitArrival(oversized); err == nil || !IsBadRequest(err) {
		t.Errorf("partition 64 on a 32-node cluster: err = %v, want bad request", err)
	}

	unknown := onlineSpec()
	unknown.Environment = "atlantis"
	if _, err := svc.SubmitArrival(unknown); err == nil || !IsBadRequest(err) {
		t.Errorf("unknown environment: err = %v, want bad request", err)
	}

	badAlgo := onlineSpec()
	badAlgo.Algorithms = []string{"NOPE"}
	if _, err := svc.SubmitArrival(badAlgo); err == nil || !IsBadRequest(err) {
		t.Errorf("unknown algorithm: err = %v, want bad request", err)
	}
}
