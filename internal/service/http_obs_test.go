package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// TestErrorEnvelopeEverywhere pins the error contract: every failure a
// client can provoke — handler rejections, but also the mux's own 404 and
// 405, which ServeMux writes as plain text — arrives as the JSON
// {"error": ...} envelope with an application/json content type.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"mux 404", http.MethodGet, "/nope", "", http.StatusNotFound},
		{"mux 405", http.MethodDelete, "/healthz", "", http.StatusMethodNotAllowed},
		{"schedule bad json", http.MethodPost, "/v1/schedule", "{", http.StatusBadRequest},
		{"schedule no dag", http.MethodPost, "/v1/schedule", "{}", http.StatusBadRequest},
		{"simulate both shapes", http.MethodPost, "/v1/simulate",
			`{"dag": {"tasks": [{"id": 0, "name": "t"}]}, "dags": []}`, http.StatusBadRequest},
		{"job unknown study", http.MethodPost, "/v1/jobs", `{"study": "nope"}`, http.StatusBadRequest},
		{"job not found", http.MethodGet, "/v1/jobs/job-999", "", http.StatusNotFound},
		{"campaign not found", http.MethodGet, "/v1/campaigns/job-999", "", http.StatusNotFound},
		{"robustness not found", http.MethodGet, "/v1/robustness/job-999", "", http.StatusNotFound},
		{"campaign empty spec", http.MethodPost, "/v1/campaigns", `{"algorithms": ["NOPE"]}`, http.StatusBadRequest},
		{"bad watch duration", http.MethodGet, "/v1/jobs/job-1?watch=bogus", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			if id := resp.Header.Get("X-Request-ID"); id == "" {
				t.Error("response has no X-Request-ID header")
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			var envelope apiError
			if err := json.Unmarshal(body, &envelope); err != nil {
				t.Fatalf("body is not the JSON error envelope: %v\n%s", err, body)
			}
			if envelope.Error == "" {
				t.Errorf("envelope has empty error message: %s", body)
			}
		})
	}
}

// TestHealthzVitals pins the /healthz payload shape: liveness plus process
// vitals, with the "ok" status the CI smoke test greps for.
func TestHealthzVitals(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("status = %q, want ok", health.Status)
	}
	if health.Version == "" {
		t.Error("version is empty")
	}
	if !strings.HasPrefix(health.GoVersion, "go") {
		t.Errorf("go_version = %q", health.GoVersion)
	}
	if health.UptimeSeconds < 0 {
		t.Errorf("uptime_seconds = %g, want >= 0", health.UptimeSeconds)
	}
	if health.Goroutines <= 0 {
		t.Errorf("goroutines = %d, want > 0", health.Goroutines)
	}
}

// TestMetricsRoute scrapes GET /metrics through the service's own handler
// and checks the per-route HTTP series advanced for the /healthz hit that
// preceded the scrape.
func TestMetricsRoute(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	if _, err := http.Get(srv.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.TextContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE repro_http_requests_total counter",
		`repro_http_requests_total{route="GET /healthz",code="2xx"}`,
		"# TYPE repro_http_request_seconds histogram",
		"repro_http_inflight_requests 1", // the scrape itself is in flight
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition is missing %q", want)
		}
	}
}

// TestPprofGating pins that /debug/pprof/ is absent by default and mounted
// with Options.EnablePprof.
func TestPprofGating(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without EnablePprof: status %d, want 404", resp.StatusCode)
	}

	opts := DefaultOptions()
	opts.EnablePprof = true
	svc2 := New(opts)
	defer svc2.Close(context.Background())
	srv2 := httptest.NewServer(svc2.Handler())
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof with EnablePprof: status %d, want 200", resp2.StatusCode)
	}
}

// TestWatchLongPoll exercises the long-poll directly on the JobManager: a
// watch returns early on a progress move, again on the state transition,
// and immediately for terminal jobs; a missing ID reports false.
func TestWatchLongPoll(t *testing.T) {
	old := watchPoll
	watchPoll = 5 * time.Millisecond
	defer func() { watchPoll = old }()

	m := NewJobManager(1, 4, 4)
	defer m.Shutdown(context.Background())

	release := make(chan struct{})
	var prog *obs.Progress
	var mu sync.Mutex
	started := make(chan struct{})
	status, err := m.SubmitTracked("study", func(ctx context.Context, p *obs.Progress) (string, error) {
		mu.Lock()
		prog = p
		mu.Unlock()
		close(started)
		<-release
		return "out", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// A progress move alone must wake the watcher.
	go func() {
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		prog.AddCellsTotal(10)
		prog.AddCellsDone(3)
		mu.Unlock()
	}()
	got, ok := m.Watch(context.Background(), status.ID, 5*time.Second)
	if !ok {
		t.Fatal("watch lost the job")
	}
	if got.State != JobRunning || got.Progress == nil || got.Progress.CellsDone != 3 {
		t.Fatalf("watch after progress move = %+v, want running with cells_done 3", got)
	}

	// The terminal transition must wake the next watcher.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	got, ok = m.Watch(context.Background(), status.ID, 5*time.Second)
	if !ok || got.State != JobDone {
		t.Fatalf("watch after completion = %+v (ok=%v), want done", got, ok)
	}

	// Terminal jobs return immediately, well inside the watch window.
	begin := time.Now()
	got, ok = m.Watch(context.Background(), status.ID, 5*time.Second)
	if !ok || got.State != JobDone {
		t.Fatalf("watch on finished job = %+v (ok=%v)", got, ok)
	}
	if elapsed := time.Since(begin); elapsed > time.Second {
		t.Errorf("watch on terminal job blocked %s", elapsed)
	}

	if _, ok := m.Watch(context.Background(), "job-999", time.Millisecond); ok {
		t.Error("watch on unknown job reported ok")
	}
}

// TestHTTPCampaignWatchProgress drives ?watch over the wire: a queued
// campaign's poll endpoint reports monotonically non-decreasing progress and
// ends with every cell done.
func TestHTTPCampaignWatchProgress(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	spec := campaign.Spec{
		Name:       "watch-test",
		Workloads:  campaign.WorkloadAxis{Sizes: []int{2000}},
		Algorithms: []string{"HCPA", "MCPA"},
		Models:     []string{"analytic"},
	}
	status, err := svc.SubmitCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}

	var lastDone int64 = -1
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("campaign did not finish in time")
		}
		resp, err := http.Get(srv.URL + "/v1/campaigns/" + status.ID + "?watch=2s")
		if err != nil {
			t.Fatal(err)
		}
		var cur JobStatus
		err = json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if cur.Progress == nil {
			t.Fatal("campaign job status has no progress record")
		}
		if cur.Progress.CellsDone < lastDone {
			t.Fatalf("progress went backwards: %d after %d", cur.Progress.CellsDone, lastDone)
		}
		lastDone = cur.Progress.CellsDone
		if cur.State == JobDone {
			if cur.Progress.CellsTotal == 0 || cur.Progress.CellsDone != cur.Progress.CellsTotal {
				t.Fatalf("finished campaign progress = %d/%d, want all cells done",
					cur.Progress.CellsDone, cur.Progress.CellsTotal)
			}
			return
		}
		if cur.State == JobFailed || cur.State == JobCancelled {
			t.Fatalf("campaign ended %s: %s", cur.State, cur.Error)
		}
	}
}
