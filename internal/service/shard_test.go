package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/arrival"
	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/robust"
	"repro/internal/store"
)

// shardSpec is a small real robustness grid: 2 platforms × 1 workload × 1
// model = 2 cells, each with Monte Carlo trials. All seeds explicit, so
// every replica resolves identical work.
func shardSpec() robust.Spec {
	return robust.Spec{
		Spec: campaign.Spec{
			Name:       "shard",
			Seed:       42,
			Platforms:  campaign.PlatformAxis{Nodes: []int{6, 8}},
			Workloads:  campaign.WorkloadAxis{Sizes: []int{2000}, SuiteSeeds: []int64{2011}},
			Algorithms: []string{"HCPA", "MCPA"},
			Models:     []string{"analytic"},
		},
		Robustness: robust.Axis{Trials: 6, Levels: []float64{0.05, 0.2}},
	}
}

// durableService builds a store-backed service on dir with a tight lease.
func durableService(t *testing.T, dir, replica string, noShard bool) *Service {
	t.Helper()
	st := openServiceStore(t, dir)
	opts := DefaultOptions()
	opts.Store = st
	opts.ReplicaID = replica
	opts.LeaseTTL = 500 * time.Millisecond
	opts.JobWorkers = 1
	opts.NoShard = noShard
	svc := New(opts)
	t.Cleanup(func() { svc.Close(context.Background()) })
	return svc
}

func waitServiceJob(t *testing.T, svc *Service, id string) JobStatus {
	t.Helper()
	return waitJobState(t, svc.Jobs(), id, JobDone, JobFailed)
}

// TestShardedServiceByteIdentity is the tentpole pin at service level: the
// same robustness spec run (a) in process with no store, (b) durably with
// sharding disabled, and (c) durably sharded must render byte-identical
// reports.
func TestShardedServiceByteIdentity(t *testing.T) {
	fastDurable(t)
	spec := shardSpec()

	ref := New(DefaultOptions())
	defer ref.Close(context.Background())
	want, err := ref.RunRobustness(context.Background(), spec)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	for _, tc := range []struct {
		name    string
		noShard bool
	}{
		{"monolithic-durable", true},
		{"sharded-durable", false},
	} {
		svc := durableService(t, t.TempDir(), "solo", tc.noShard)
		status, err := svc.SubmitRobustness(spec)
		if err != nil {
			t.Fatalf("%s: SubmitRobustness: %v", tc.name, err)
		}
		final := waitServiceJob(t, svc, status.ID)
		if final.State != JobDone {
			t.Fatalf("%s: job = %+v", tc.name, final)
		}
		if final.Output != want {
			t.Errorf("%s output differs from in-process run:\n--- in-process ---\n%s\n--- durable ---\n%s",
				tc.name, want, final.Output)
		}
		if !tc.noShard && (final.Progress == nil || final.Progress.CellsDone != 2 || final.Progress.CellsTotal != 2) {
			t.Errorf("%s: final progress = %+v, want 2/2 cells", tc.name, final.Progress)
		}
	}
}

// arrivalShardSpec is a small online-arrival scenario: two algorithm cells
// over a three-class shape population, Poisson arrivals on 8-node
// partitions. All seeds explicit, so every replica resolves identical work.
func arrivalShardSpec() arrival.Spec {
	return arrival.Spec{
		Name:      "arrival-shard",
		Seed:      42,
		Workloads: campaign.WorkloadAxis{Shapes: []string{"diamond", "strassen", "reduction"}},
		Rate:      0.05,
		Jobs:      8,
		Partition: 8,
	}
}

// TestShardedArrivalByteIdentity extends the service-level byte-identity
// pin to online arrivals: the same scenario run in process, durably
// monolithic and durably sharded must render byte-identical reports, and
// the sharded run reports one cell per algorithm.
func TestShardedArrivalByteIdentity(t *testing.T) {
	fastDurable(t)
	spec := arrivalShardSpec()

	ref := New(DefaultOptions())
	defer ref.Close(context.Background())
	want, err := ref.RunArrival(context.Background(), spec)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	for _, tc := range []struct {
		name    string
		noShard bool
	}{
		{"monolithic-durable", true},
		{"sharded-durable", false},
	} {
		svc := durableService(t, t.TempDir(), "solo", tc.noShard)
		status, err := svc.SubmitArrival(spec)
		if err != nil {
			t.Fatalf("%s: SubmitArrival: %v", tc.name, err)
		}
		final := waitServiceJob(t, svc, status.ID)
		if final.State != JobDone {
			t.Fatalf("%s: job = %+v", tc.name, final)
		}
		if final.Output != want {
			t.Errorf("%s output differs from in-process run:\n--- in-process ---\n%s\n--- durable ---\n%s",
				tc.name, want, final.Output)
		}
		if !tc.noShard && (final.Progress == nil || final.Progress.CellsDone != 2 || final.Progress.CellsTotal != 2) {
			t.Errorf("%s: final progress = %+v, want 2/2 cells", tc.name, final.Progress)
		}
	}
}

// countingCells wraps a fake CellRunner whose cells block until released,
// recording which runner (replica) executed each cell.
type countingCells struct {
	mu    sync.Mutex
	ran   map[string][]int // replica -> cell indices
	gate  chan struct{}    // closed to release all cells
	cells int
}

type taggedCells struct {
	c       *countingCells
	replica string
}

func (r taggedCells) Shardable(kind string) bool { return kind == "grid" }

func (r taggedCells) CellCount(ctx context.Context, kind string, payload []byte) (int, error) {
	return r.c.cells, nil
}

func (r taggedCells) RunCell(ctx context.Context, kind string, payload []byte, index int, prog *obs.Progress) ([]byte, error) {
	select {
	case <-r.c.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	r.c.mu.Lock()
	r.c.ran[r.replica] = append(r.c.ran[r.replica], index)
	r.c.mu.Unlock()
	return []byte(fmt.Sprintf("cell-%d", index)), nil
}

func (r taggedCells) MergeCells(ctx context.Context, kind string, payload []byte, results [][]byte) (string, error) {
	out := ""
	for _, frame := range results {
		out += string(frame) + "\n"
	}
	return out, nil
}

// TestShardedJobSpansReplicas proves cooperation: with every cell gated
// until both replicas are claim-looping, a sharded job's cells execute on
// BOTH managers, and the coordinator merges frames in plan order no matter
// who ran what.
func TestShardedJobSpansReplicas(t *testing.T) {
	fastDurable(t)
	dir := t.TempDir()
	shared := &countingCells{ran: make(map[string][]int), gate: make(chan struct{}), cells: 6}

	stA := openServiceStore(t, dir)
	a := NewDurableJobManager(1, 8, stA, "alpha", time.Second, nil, taggedCells{shared, "alpha"})
	defer a.Shutdown(context.Background())
	stB := openServiceStore(t, dir)
	b := NewDurableJobManager(1, 8, stB, "beta", time.Second, nil, taggedCells{shared, "beta"})
	defer b.Shutdown(context.Background())

	status, err := a.SubmitPayload("grid", nil)
	if err != nil {
		t.Fatalf("SubmitPayload: %v", err)
	}
	// Wait until cells exist and both replicas hold one, then open the gate.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			cells, ok, _ := stA.Cells(status.ID)
			t.Fatalf("replicas never both claimed cells: ok=%v cells=%+v", ok, cells)
		}
		cells, ok, err := stA.Cells(status.ID)
		if err != nil {
			t.Fatal(err)
		}
		holders := map[string]bool{}
		if ok {
			for _, c := range cells {
				if c.State == store.StateRunning {
					holders[c.Holder] = true
				}
			}
		}
		if holders["alpha"] && holders["beta"] {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(shared.gate)

	final := waitJobState(t, a, status.ID, JobDone)
	want := ""
	for i := 0; i < shared.cells; i++ {
		want += fmt.Sprintf("cell-%d\n", i)
	}
	if final.Output != want {
		t.Errorf("merged output = %q, want %q", final.Output, want)
	}
	shared.mu.Lock()
	defer shared.mu.Unlock()
	if len(shared.ran["alpha"]) == 0 || len(shared.ran["beta"]) == 0 {
		t.Errorf("cells did not span replicas: %+v", shared.ran)
	}
	if len(shared.ran["alpha"])+len(shared.ran["beta"]) != shared.cells {
		t.Errorf("ran %+v, want %d cells total", shared.ran, shared.cells)
	}
}

// TestCoordinatorRestartMidGather: all cells already carry results (the
// work happened before the original coordinator died), a fresh manager
// claims the queued job, replans idempotently, and merges WITHOUT
// re-executing a single cell.
func TestCoordinatorRestartMidGather(t *testing.T) {
	fastDurable(t)
	dir := t.TempDir()
	st := openServiceStore(t, dir)

	rec, err := st.SubmitJob("grid", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The dead coordinator's legacy: a claimed-then-expired job whose cells
	// all finished. (Claim with a tiny ttl and let it lapse.)
	if _, ok, err := st.Claim("dead", time.Millisecond); err != nil || !ok {
		t.Fatalf("Claim = %v, %v", ok, err)
	}
	if err := st.PlanCells(rec.ID, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := st.CompleteCellAndClaim(rec.ID, i, "dead", []byte(fmt.Sprintf("cell-%d", i)), "", nil, false, "", 0); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(5 * time.Millisecond) // let the 1ms job lease lapse

	shared := &countingCells{ran: make(map[string][]int), gate: make(chan struct{}), cells: 3}
	close(shared.gate)
	m := NewDurableJobManager(1, 8, st, "heir", time.Second, nil, taggedCells{shared, "heir"})
	defer m.Shutdown(context.Background())

	final := waitJobState(t, m, rec.ID, JobDone)
	if final.Output != "cell-0\ncell-1\ncell-2\n" || final.Replica != "heir" || final.Restarts < 1 {
		t.Fatalf("final = %+v", final)
	}
	shared.mu.Lock()
	defer shared.mu.Unlock()
	if len(shared.ran["heir"]) != 0 {
		t.Errorf("heir re-executed cells %v; the frames were already durable", shared.ran["heir"])
	}
}

// TestShardedMergePermutation is the merge-determinism pin: cells completed
// in a shuffled order, with a duplicate frame from a reclaimed-then-revived
// holder racing the reclaimer, still gather in plan order and merge
// byte-identically to the serial in-process report.
func TestShardedMergePermutation(t *testing.T) {
	spec := shardSpec()
	payload, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference and the frames themselves, via the same CellRunner
	// the durable manager uses.
	svc := New(DefaultOptions())
	defer svc.Close(context.Background())
	runner := shardRunner{svc}
	kind := robustKindPrefix + ":" + spec.Spec.Name
	n, err := runner.CellCount(context.Background(), kind, payload)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("spec has %d cells; the permutation needs at least 2", n)
	}
	frames := make([][]byte, n)
	for i := range frames {
		if frames[i], err = runner.RunCell(context.Background(), kind, payload, i, nil); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	want, err := runner.MergeCells(context.Background(), kind, payload, frames)
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 5; trial++ {
		st := openServiceStore(t, t.TempDir())
		rec, err := st.SubmitJob(kind, payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, err := st.Claim("coord", time.Minute); err != nil || !ok {
			t.Fatalf("Claim = %v, %v", ok, err)
		}
		if err := st.PlanCells(rec.ID, n); err != nil {
			t.Fatal(err)
		}
		order := rand.New(rand.NewSource(int64(trial))).Perm(n)
		for _, i := range order {
			holder := fmt.Sprintf("replica-%d", i%3)
			if _, _, err := st.CompleteCellAndClaim(rec.ID, i, holder, frames[i], "", nil, false, "", 0); err != nil {
				t.Fatal(err)
			}
		}
		// The revived original holder of cell 0 delivers its (byte-identical)
		// frame late; first write already won, so this is a no-op.
		if _, _, err := st.CompleteCellAndClaim(rec.ID, 0, "revived", frames[0], "", nil, false, "", 0); err != nil {
			t.Fatal(err)
		}
		results, err := st.CellResults(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		got, err := runner.MergeCells(context.Background(), kind, payload, results)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("trial %d: shuffled merge differs from serial report", trial)
		}
	}
}
