// Package service turns the reproduction into a long-running scheduling
// service: a registry that fits the measured performance models once and
// caches them across requests (the paper's §VI/§VII economics — models are
// expensive to build, cheap to reuse), a bounded job queue for asynchronous
// study runs, and HTTP handlers plus a typed client used by cmd/reprosrv.
package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/store"
)

// Registry telemetry: how often model lookups hit the cache, how many
// fitting campaigns actually ran and how long they took, and how many
// callers were coalesced onto a build already in flight — the paper's
// fit-once economics, observable at runtime.
var (
	modelFits = obs.Default.Counter("repro_model_fits_total",
		"Fitting campaigns run (profile + empirical, once per environment and seed).")
	modelFitSeconds = obs.Default.Histogram("repro_model_fit_seconds",
		"Wall-clock duration of fitting campaigns.", obs.FitBuckets)
	modelHits = obs.Default.Counter("repro_model_cache_hits_total",
		"Model lookups served from cache.")
	modelMisses = obs.Default.Counter("repro_model_cache_misses_total",
		"Model lookups that were the first for their key.")
	modelCoalesced = obs.Default.Counter("repro_model_fit_coalesced_waits_total",
		"Model lookups that blocked on a fitting campaign another caller was already running.")
	modelLoads = obs.Default.Counter("repro_model_disk_loads_total",
		"Fitting campaigns skipped because a durable model cache entry was loaded instead.")
)

// ModelKey identifies one fitted model: the environment it was measured on,
// the model kind ("analytic", "profile", "empirical") and the noise seed of
// the measurement campaign. The analytic model needs no measurements; the
// other two are built by running the §VI/§VII campaigns against the
// environment exactly once per (environment, seed) and reused afterwards.
type ModelKey struct {
	Environment string `json:"environment"`
	Kind        string `json:"kind"`
	Seed        int64  `json:"seed"`
}

// ModelInfo describes one registry entry for GET /v1/models.
type ModelInfo struct {
	ModelKey
	// BuildMillis is the wall-clock cost this entry paid when it was first
	// requested: the full campaign for the key that triggered the build,
	// ~0 for keys that reused an existing campaign or the analytic model.
	BuildMillis float64 `json:"build_millis"`
	// Hits counts requests served from cache (requests after the first).
	Hits int64 `json:"hits"`
}

// EnvFunc constructs a ground-truth environment (a fresh value per call;
// Hidden is treated as immutable once built).
type EnvFunc func() *cluster.Hidden

// Environments lists the ground-truth environments the registry can serve,
// by name.
func Environments() map[string]EnvFunc {
	return map[string]EnvFunc{
		"bayreuth": cluster.Bayreuth,
		"modern":   cluster.Modern,
	}
}

// ModelKinds lists the model kinds in paper order.
func ModelKinds() []string { return []string{"analytic", "profile", "empirical"} }

// fitCampaign is the measured state of one (environment, seed): the
// emulator the campaigns probed and both fitted models. Models are built in
// NewLab order — profile first, then empirical, on a fresh emulator — so
// labs assembled from a campaign reproduce NewLab byte-for-byte.
type fitCampaign struct {
	once  sync.Once
	truth *cluster.Hidden
	em    *cluster.Emulator
	prof  *perfmodel.Profile
	emp   *perfmodel.Empirical
	err   error
	dur   time.Duration
	// fromDisk marks a build served from the durable model cache: the fitted
	// models were loaded instead of re-measured, so no campaign ran.
	fromDisk bool
	// done flips once the build finished (either way); campaignFor reads it
	// before blocking on once to tell a coalesced wait from a cheap re-read.
	done atomic.Bool
}

type campaignKey struct {
	env  string
	seed int64
}

// entry tracks per-ModelKey cache statistics.
type entry struct {
	built       bool
	buildMillis float64
	hits        int64
}

// ModelRegistry lazily builds and caches fitted performance models. It is
// safe for concurrent use; concurrent first requests for the same
// (environment, seed) run the measurement campaigns exactly once.
type ModelRegistry struct {
	profile   profiler.ProfileOptions
	empirical profiler.EmpiricalOptions
	envs      map[string]EnvFunc

	// st, when non-nil, is the durable model cache: fitted models are
	// persisted after a campaign and loaded instead of re-measured on later
	// runs (or by other replicas sharing the store directory).
	st *store.Store

	mu        sync.Mutex
	campaigns map[campaignKey]*fitCampaign
	entries   map[ModelKey]*entry
	analytic  map[string]*perfmodel.Analytic
}

// NewModelRegistry builds an empty registry over the standard environments.
func NewModelRegistry(profile profiler.ProfileOptions, empirical profiler.EmpiricalOptions) *ModelRegistry {
	return &ModelRegistry{
		profile:   profile,
		empirical: empirical,
		envs:      Environments(),
		campaigns: make(map[campaignKey]*fitCampaign),
		entries:   make(map[ModelKey]*entry),
		analytic:  make(map[string]*perfmodel.Analytic),
	}
}

// Environment resolves an environment name to a fresh ground truth.
func (r *ModelRegistry) Environment(name string) (*cluster.Hidden, error) {
	r.mu.Lock()
	mk, ok := r.envs[name]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("service: unknown environment %q", name)
	}
	return mk(), nil
}

// RegisterEnv adds a derived environment (e.g. a scaled or re-parameterised
// platform built by the campaign engine) under the given name. The first
// registration of a name wins and later ones are no-ops, so callers that
// derive names deterministically from the platform parameters share one set
// of fitted models per derived platform.
func (r *ModelRegistry) RegisterEnv(name string, mk func() *cluster.Hidden) error {
	if name == "" {
		return fmt.Errorf("service: empty environment name")
	}
	if mk == nil {
		return fmt.Errorf("service: nil environment constructor for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.envs[name]; !ok {
		r.envs[name] = mk
	}
	return nil
}

// GetModel is Get with plain arguments; it exists so packages that cannot
// name ModelKey (campaign's ModelSource interface) can still count cache
// hits per lookup.
func (r *ModelRegistry) GetModel(env, kind string, seed int64) (perfmodel.Model, bool, error) {
	return r.Get(ModelKey{Environment: env, Kind: kind, Seed: seed})
}

// build runs both campaigns for a (environment, seed), exactly once, and
// reports whether this call was the one that ran them (callers that merely
// blocked on another goroutine's build get false). With a durable cache the
// campaigns are skipped when a saved fit for the key loads cleanly; study
// paths draw noise from per-cell sessions rather than the emulator's shared
// stream, so a fresh emulator plus loaded models reproduces the reports of
// a fitted run byte-for-byte.
func (c *fitCampaign) build(envName string, env EnvFunc, seed int64, p profiler.ProfileOptions, e profiler.EmpiricalOptions, st *store.Store) bool {
	ran := false
	c.once.Do(func() {
		ran = true
		defer c.done.Store(true)
		start := time.Now()
		c.truth = env()
		em, err := cluster.NewEmulator(c.truth, seed)
		if err != nil {
			c.err = err
			return
		}
		c.em = em
		if st != nil {
			if prof, emp, ok := st.LoadModels(envName, seed); ok {
				c.prof, c.emp = prof, emp
				c.fromDisk = true
				c.dur = time.Since(start)
				modelLoads.Inc()
				return
			}
		}
		if c.prof, c.err = profiler.BuildProfileModel(em, p); c.err != nil {
			return
		}
		// The sparse-campaign options are expressed for the paper's 32-node
		// reference platform; rescale the measurement points for derived
		// environments of a different size (identity at 32 nodes).
		e = e.ScaledTo(c.truth.Cluster.Nodes, platform.Bayreuth().Nodes)
		if c.emp, c.err = profiler.BuildEmpiricalModel(em, e); c.err != nil {
			return
		}
		c.dur = time.Since(start)
		if st != nil {
			// Persistence is best-effort: a failed save costs the next process
			// a refit, never correctness.
			_ = st.SaveModels(envName, seed, c.prof, c.emp, float64(c.dur)/float64(time.Millisecond))
		}
	})
	return ran
}

// campaignFor returns the measured state of (environment, seed), running
// the campaigns on first use. The bool reports whether this call ran them.
func (r *ModelRegistry) campaignFor(env string, seed int64) (*fitCampaign, bool, error) {
	key := campaignKey{env: env, seed: seed}
	r.mu.Lock()
	mk, ok := r.envs[env]
	if !ok {
		r.mu.Unlock()
		return nil, false, fmt.Errorf("service: unknown environment %q", env)
	}
	c, ok := r.campaigns[key]
	if !ok {
		c = &fitCampaign{}
		r.campaigns[key] = c
	}
	r.mu.Unlock()
	wasDone := c.done.Load()
	ran := c.build(env, mk, seed, r.profile, r.empirical, r.st)
	switch {
	case ran && c.fromDisk:
		// Served from the durable cache; no measurement campaign ran, so
		// neither the fit counter nor its histogram moves.
	case ran:
		modelFits.Inc()
		if c.err == nil {
			modelFitSeconds.Observe(c.dur.Seconds())
		}
	case !wasDone:
		// Another caller owned the build and this one blocked on it.
		modelCoalesced.Inc()
	}
	if c.err != nil {
		return nil, false, c.err
	}
	return c, ran, nil
}

// Campaign returns the measured state of (environment, seed), running the
// campaigns on first use. The returned values are shared and read-only.
func (r *ModelRegistry) Campaign(env string, seed int64) (*cluster.Hidden, *cluster.Emulator,
	*perfmodel.Profile, *perfmodel.Empirical, error) {
	c, _, err := r.campaignFor(env, seed)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return c.truth, c.em, c.prof, c.emp, nil
}

// Get returns the fitted model for a key, building it on first use. The
// second return reports whether this request was a cache hit (the model
// had already been requested under the same key).
func (r *ModelRegistry) Get(key ModelKey) (perfmodel.Model, bool, error) {
	var model perfmodel.Model
	var buildMillis float64
	switch key.Kind {
	case "analytic":
		truth, err := r.Environment(key.Environment)
		if err != nil {
			return nil, false, err
		}
		r.mu.Lock()
		a, ok := r.analytic[key.Environment]
		if !ok {
			a = perfmodel.NewAnalytic(truth.Cluster)
			r.analytic[key.Environment] = a
		}
		r.mu.Unlock()
		model = a
	case "profile", "empirical":
		c, ran, err := r.campaignFor(key.Environment, key.Seed)
		if err != nil {
			return nil, false, err
		}
		if ran { // only the call that ran the campaigns owns their cost
			buildMillis = float64(c.dur) / float64(time.Millisecond)
		}
		if key.Kind == "profile" {
			model = c.prof
		} else {
			model = c.emp
		}
	default:
		return nil, false, fmt.Errorf("service: unknown model kind %q", key.Kind)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[key]
	if !ok {
		e = &entry{}
		r.entries[key] = e
	}
	hit := e.built
	if hit {
		e.hits++
		modelHits.Inc()
	} else {
		e.built = true
		e.buildMillis = buildMillis
		modelMisses.Inc()
	}
	return model, hit, nil
}

// SetStore attaches a durable model cache. Call before the first lookup;
// campaigns already in flight keep their original (cacheless) behaviour.
func (r *ModelRegistry) SetStore(st *store.Store) { r.st = st }

// Warm pre-registers every fit found in the durable cache, so a restarted
// (or newly joined) replica's GET /v1/models lists the keys measured in
// previous lives and the first lookup for each counts as a cache hit. The
// fitted models themselves still load lazily, on first use.
func (r *ModelRegistry) Warm() int {
	if r.st == nil {
		return 0
	}
	keys := r.st.ModelKeys()
	r.mu.Lock()
	defer r.mu.Unlock()
	warmed := 0
	for _, k := range keys {
		for _, kind := range []string{"profile", "empirical"} {
			mk := ModelKey{Environment: k.Environment, Kind: kind, Seed: k.Seed}
			if _, ok := r.entries[mk]; ok {
				continue
			}
			r.entries[mk] = &entry{built: true}
			warmed++
		}
	}
	return warmed
}

// Models lists the registry contents in a stable order.
func (r *ModelRegistry) Models() []ModelInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ModelInfo, 0, len(r.entries))
	for key, e := range r.entries {
		out = append(out, ModelInfo{ModelKey: key, BuildMillis: e.buildMillis, Hits: e.hits})
	}
	sort.Slice(out, func(a, b int) bool {
		ka, kb := out[a].ModelKey, out[b].ModelKey
		if ka.Environment != kb.Environment {
			return ka.Environment < kb.Environment
		}
		if ka.Seed != kb.Seed {
			return ka.Seed < kb.Seed
		}
		return kindOrder(ka.Kind) < kindOrder(kb.Kind)
	})
	return out
}

func kindOrder(kind string) int {
	for i, k := range ModelKinds() {
		if k == kind {
			return i
		}
	}
	return len(ModelKinds())
}
