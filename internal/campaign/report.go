package campaign

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// This file renders a campaign Result into the deterministic text report:
// per-cell scores, per-cell winner-prediction quality à la §V, and one
// summary block per swept axis. Cells are emitted in plan order and every
// number is formatted with fixed precision, so the report is byte-identical
// across runs and worker counts.

// Write renders the campaign report.
func (r *Result) Write(w io.Writer) {
	p := r.Plan
	name := p.Spec.Name
	if name == "" {
		name = "unnamed"
	}
	fmt.Fprintf(w, "Campaign %q — %d cells (%d platforms × %d workloads × %d models) × %d algorithms, %d DAGs per cell\n",
		name, p.Cells(), len(p.Platforms), len(p.Workloads), len(p.Models), len(p.Algorithms), r.cellInstances())
	fmt.Fprintf(w, "  base=%s seed=%d trials=%d algorithms=%s models=%s\n",
		p.Spec.Platforms.Base, p.Spec.Seed, p.Spec.Trials,
		strings.Join(p.Algorithms, ","), strings.Join(p.Models, ","))

	platW := r.platformWidth()
	wlW := r.workloadWidth()

	fmt.Fprintf(w, "\nPer-cell scores — simulation vs experiment per algorithm\n")
	fmt.Fprintf(w, "  %-*s %-*s %-10s %-8s %14s %14s %13s %13s\n",
		platW, "platform", wlW, "workload", "model", "algo",
		"med exp [s]", "med err [%]", "p90 err [%]", "p99 err [%]")
	for _, c := range r.Cells {
		for _, a := range c.Algos {
			fmt.Fprintf(w, "  %-*s %-*s %-10s %-8s %14.1f %14.1f %13.1f %13.1f\n",
				platW, c.Platform.Env, wlW, c.Workload.Key(), c.Model, a.Algorithm,
				a.MedianExp, a.MedianErrPct, a.P90ErrPct, a.P99ErrPct)
		}
	}

	if len(p.Algorithms) > 1 {
		fmt.Fprintf(w, "\nWinner prediction — does simulation pick the experimental winner? (à la §V)\n")
		fmt.Fprintf(w, "  %-*s %-*s %-10s %-14s %9s %6s %14s %14s\n",
			platW, "platform", wlW, "workload", "model", "pair",
			"flips", "tau", "med sim B/A", "med exp B/A")
		for _, c := range r.Cells {
			for _, pr := range c.Pairs {
				fmt.Fprintf(w, "  %-*s %-*s %-10s %-14s %5d/%-3d %6.2f %14.3f %14.3f\n",
					platW, c.Platform.Env, wlW, c.Workload.Key(), c.Model,
					pr.A+" vs "+pr.B, pr.Flips, pr.Total, pr.KendallTau,
					pr.MedianSimRatio, pr.MedianExpRatio)
			}
		}
	}

	r.writeAxis(w, "platform", platW, func(c CellScore) string { return c.Platform.Env })
	r.writeAxis(w, "model", platW, func(c CellScore) string { return c.Model })
	if len(p.Workloads) > 1 {
		r.writeAxis(w, "workload", wlW, func(c CellScore) string { return c.Workload.Key() })
	}
}

// writeAxis prints one axis summary: winner flips and simulation error
// aggregated over every cell sharing the axis value, in first-seen (plan)
// order.
func (r *Result) writeAxis(w io.Writer, axis string, keyW int, key func(CellScore) string) {
	type agg struct {
		flips, total int
		errs         []float64
	}
	var order []string
	byKey := map[string]*agg{}
	for _, c := range r.Cells {
		k := key(c)
		a, ok := byKey[k]
		if !ok {
			a = &agg{}
			byKey[k] = a
			order = append(order, k)
		}
		for _, pr := range c.Pairs {
			a.flips += pr.Flips
			a.total += pr.Total
		}
		for _, al := range c.Algos {
			a.errs = append(a.errs, al.MedianErrPct)
		}
	}
	if len(order) < 2 && axis != "platform" {
		return // a one-value axis summarises nothing beyond the cells
	}
	fmt.Fprintf(w, "\nAxis summary — %s\n", axis)
	fmt.Fprintf(w, "  %-*s %12s %16s\n", keyW, axis, "flips", "med err [%]")
	for _, k := range order {
		a := byKey[k]
		flips := "-"
		if a.total > 0 {
			flips = fmt.Sprintf("%d/%d", a.flips, a.total)
		}
		fmt.Fprintf(w, "  %-*s %12s %16.1f\n", keyW, k, flips, stats.Median(a.errs))
	}
}

// cellInstances returns the per-cell suite size (constant across cells).
func (r *Result) cellInstances() int {
	if len(r.Cells) == 0 {
		return 0
	}
	return r.Cells[0].Instances
}

// platformWidth sizes the platform column to the longest derived name.
func (r *Result) platformWidth() int {
	w := len("platform")
	for _, pt := range r.Plan.Platforms {
		if len(pt.Env) > w {
			w = len(pt.Env)
		}
	}
	return w
}

// workloadWidth sizes the workload column.
func (r *Result) workloadWidth() int {
	w := len("workload")
	for _, wp := range r.Plan.Workloads {
		if len(wp.Key()) > w {
			w = len(wp.Key())
		}
	}
	return w
}
