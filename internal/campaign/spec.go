// Package campaign is the declarative what-if layer of §IX: the paper
// closes by noting that validated, environment-specific models "could also
// be scaled to simulate hypothetical platforms", and this package turns
// that remark into an exploration engine. A campaign Spec describes a
// parameter grid — a platform axis (node count, bandwidth/latency scaling,
// two-speed heterogeneity over a base environment), a workload axis (DAG
// suite seeds and matrix-size filters from internal/dag), an algorithm axis
// (CPA/HCPA/MCPA/M-HEFT plus baselines) and a model axis
// (analytic/brute-force profile/empirical). The engine expands the grid
// into cells, executes every cell on the experiments worker pool against
// registry-cached fits (models are fitted once per derived platform and
// reused across the whole grid), and aggregates winner-flip counts à la §V,
// makespan ratios and error percentiles into one deterministic report —
// byte-identical at any worker count.
package campaign

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dag"
	"repro/internal/dag/shapes"
	"repro/internal/experiments"
)

// Grid limits: a spec beyond these is rejected at validation time, before
// any fitting campaign runs.
const (
	// MaxAxisValues bounds each individual axis.
	MaxAxisValues = 32
	// MaxGridCells bounds platform × workload × model combinations.
	MaxGridCells = 96
	// MaxRuns bounds grid cells × algorithms.
	MaxRuns = 512
	// MaxNodes bounds a hypothetical platform's node count.
	MaxNodes = 1024
	// MaxTrials bounds the emulated runs averaged per measured makespan.
	MaxTrials = 32
	// MaxTraceTasks bounds an imported workflow trace's task count.
	MaxTraceTasks = 512
	// MaxKeyName bounds a trace or shape name after keySafe escaping, so
	// workload keys stay usable in study names and report rows.
	MaxKeyName = 64
)

// Spec declares one campaign: the axes of the what-if grid plus the shared
// seeds and measurement effort. The zero value of every field means "use
// the default" (base environment, one platform point, the Table I suite,
// HCPA vs MCPA under the analytic model).
type Spec struct {
	// Name labels the campaign in job listings and the report header.
	Name string `json:"name,omitempty"`
	// Platforms is the platform axis.
	Platforms PlatformAxis `json:"platforms"`
	// Workloads is the workload axis.
	Workloads WorkloadAxis `json:"workloads"`
	// Algorithms is the algorithm axis: CPA, HCPA, MCPA, MHEFT (alias
	// M-HEFT), SEQ, DATAPAR. Default {HCPA, MCPA} — the paper's pair.
	Algorithms []string `json:"algorithms,omitempty"`
	// Models is the model axis: analytic, profile (alias brute-force),
	// empirical. Default {analytic}.
	Models []string `json:"models,omitempty"`
	// Seed is the environment noise / measurement-campaign seed
	// (default 42, the paper's evaluation seed).
	Seed int64 `json:"seed,omitempty"`
	// Trials is the emulated runs averaged per measured makespan
	// (default 1, as the paper executed each schedule once).
	Trials int `json:"trials,omitempty"`
}

// PlatformAxis sweeps hypothetical platforms derived from a base
// environment. The platform points are the cross product of the four lists;
// each empty list contributes the single identity point.
type PlatformAxis struct {
	// Base is the ground-truth environment the variants derive from:
	// "bayreuth" (default) or "modern".
	Base string `json:"base,omitempty"`
	// Nodes lists node counts (platform.Cluster.Scaled); 0 keeps the
	// base size.
	Nodes []int `json:"nodes,omitempty"`
	// BandwidthScale lists multiplicative factors on the per-node link
	// bandwidth (1 = unchanged).
	BandwidthScale []float64 `json:"bandwidth_scale,omitempty"`
	// LatencyScale lists multiplicative factors on the link latency
	// (1 = unchanged).
	LatencyScale []float64 `json:"latency_scale,omitempty"`
	// SpeedRatios lists two-speed heterogeneity ratios
	// (platform.NewHeterogeneous): half the nodes run at the base speed,
	// half at ratio times it. 1 = homogeneous.
	SpeedRatios []float64 `json:"speed_ratios,omitempty"`
}

// WorkloadAxis sweeps evaluation workloads: generated Table I suites,
// imported workflow traces, and named canonical shapes. Every non-empty
// list contributes its own workload points; an entirely empty axis defaults
// to the paper's 2011 suite.
type WorkloadAxis struct {
	// SuiteSeeds lists Table I suite seeds, one 54-DAG suite each
	// (default {2011}, the paper's workload).
	SuiteSeeds []int64 `json:"suite_seeds,omitempty"`
	// Sizes optionally restricts the suite to the given matrix sizes
	// (subset of {2000, 3000}; empty keeps all 54 instances). For shape
	// workloads the same list selects the matrix sizes to build (default
	// {2000}).
	Sizes []int `json:"sizes,omitempty"`
	// Traces lists imported workflow graphs, one workload point each.
	Traces []TraceRef `json:"traces,omitempty"`
	// Shapes lists canonical workflow shapes by registry name
	// (internal/dag/shapes), one workload point per shape and size.
	Shapes []string `json:"shapes,omitempty"`
}

// IsEmpty reports whether the axis names no workloads at all, which is what
// triggers the Table I default.
func (a WorkloadAxis) IsEmpty() bool {
	return len(a.SuiteSeeds) == 0 && len(a.Traces) == 0 && len(a.Shapes) == 0
}

// TraceRef references one imported workflow graph: either a file (DOT or
// JSON, sniffed by dag.Import) or inline DOT text. Paths resolve relative
// to the process working directory on whichever replica runs the cell, so
// sharded deployments must see the same files everywhere.
type TraceRef struct {
	// Name labels the trace in keys and reports. Default: the imported
	// graph's own name, else the path basename without extension.
	Name string `json:"name,omitempty"`
	// Path locates the serialized graph on disk.
	Path string `json:"path,omitempty"`
	// DOT carries the graph inline in WriteDOT's dialect.
	DOT string `json:"dot,omitempty"`
}

// isSet reports whether the ref names any source.
func (t TraceRef) isSet() bool { return t.Path != "" || t.DOT != "" }

// Load imports and validates the referenced graph.
func (t TraceRef) Load() (*dag.Graph, error) {
	var g *dag.Graph
	var err error
	switch {
	case t.Path != "" && t.DOT != "":
		return nil, fmt.Errorf("campaign: trace %q sets both path and dot", t.Name)
	case t.Path != "":
		g, err = dag.ImportFile(t.Path)
	case t.DOT != "":
		g, err = dag.Import([]byte(t.DOT))
	default:
		return nil, fmt.Errorf("campaign: trace %q sets neither path nor dot", t.Name)
	}
	if err != nil {
		return nil, err
	}
	if g.Len() == 0 {
		return nil, fmt.Errorf("campaign: trace %q is empty", t.Name)
	}
	if g.Len() > MaxTraceTasks {
		return nil, fmt.Errorf("campaign: trace %q has %d tasks, limit %d", t.Name, g.Len(), MaxTraceTasks)
	}
	return g, nil
}

// resolveName returns the trace's display name: the explicit Name, else the
// imported graph's name, else the path basename without extension.
func (t TraceRef) resolveName(g *dag.Graph) string {
	if t.Name != "" {
		return t.Name
	}
	if g != nil && g.Name != "" {
		return g.Name
	}
	base := filepath.Base(t.Path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// PlatformPoint is one expanded value of the platform axis.
type PlatformPoint struct {
	// Env is the derived environment's registry name, deterministically
	// encoding the parameters ("bayreuth-x64-bw0.5-het2").
	Env string
	// Nodes is the node count (0 = the base environment's size).
	Nodes int
	// BandwidthScale, LatencyScale and SpeedRatio are the applied factors.
	BandwidthScale, LatencyScale, SpeedRatio float64
}

// WorkloadPoint is one expanded value of the workload axis: exactly one of
// the three kinds — a generated suite, an imported trace, or a named shape.
// Points travel inside gob-encoded shard cell frames, so they stay small
// and self-describing: a trace point carries the reference, never the
// graph; every replica re-imports it when materialising instances.
type WorkloadPoint struct {
	// SuiteSeed derives a suite point's DAG suite.
	SuiteSeed int64
	// Sizes is the suite point's matrix-size filter (nil = the full suite).
	Sizes []int
	// Trace references an imported workflow for a trace point.
	Trace TraceRef
	// Shape and N select a canonical shape point and its matrix size.
	Shape string
	N     int
}

// Key renders the point for study names, report rows and shard cell plans.
// The three kinds use distinct prefixes and trace/shape names pass through
// the injective keySafe escaping, so two different points can never alias.
func (w WorkloadPoint) Key() string {
	switch {
	case w.Trace.isSet():
		return "trace-" + keySafe(w.Trace.Name)
	case w.Shape != "":
		return fmt.Sprintf("shape-%s-n%d", keySafe(w.Shape), w.N)
	}
	s := fmt.Sprintf("suite-%d", w.SuiteSeed)
	for _, n := range w.Sizes {
		s += fmt.Sprintf("-n%d", n)
	}
	return s
}

// Instances materialises the point's evaluation instances: the (filtered)
// generated suite, the imported trace, or the built shape. Deterministic:
// the same point always yields the same graphs, on every replica.
func (w WorkloadPoint) Instances() ([]dag.SuiteInstance, error) {
	switch {
	case w.Trace.isSet():
		g, err := w.Trace.Load()
		if err != nil {
			return nil, err
		}
		return []dag.SuiteInstance{{Graph: g}}, nil
	case w.Shape != "":
		g, err := shapes.Build(w.Shape, w.N)
		if err != nil {
			return nil, err
		}
		return []dag.SuiteInstance{{Graph: g}}, nil
	}
	suite, err := dag.GenerateSuite(w.SuiteSeed)
	if err != nil {
		return nil, err
	}
	return FilterSizes(suite, w.Sizes), nil
}

// keySafe escapes a name for use inside a workload key: letters, digits,
// dots and dashes pass through, an underscore doubles, and every other byte
// becomes _xx (lowercase hex). The escaping decodes unambiguously left to
// right, so it is injective — distinct names can never collide.
func keySafe(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '-':
			b.WriteByte(c)
		case c == '_':
			b.WriteString("__")
		default:
			fmt.Fprintf(&b, "_%02x", c)
		}
	}
	return b.String()
}

// Plan is a validated, fully expanded campaign grid.
type Plan struct {
	// Spec is the normalized spec the plan was expanded from.
	Spec Spec
	// Platforms, Workloads, Models and Algorithms are the expanded axes,
	// in deterministic spec order.
	Platforms  []PlatformPoint
	Workloads  []WorkloadPoint
	Models     []string
	Algorithms []string
}

// Cells is the number of (platform, workload, model) grid cells.
func (p *Plan) Cells() int { return len(p.Platforms) * len(p.Workloads) * len(p.Models) }

// Runs is the number of grid cells × algorithms — the units that each
// resolve their model from the registry.
func (p *Plan) Runs() int { return p.Cells() * len(p.Algorithms) }

// canonicalModels maps accepted model-axis names to registry kinds.
var canonicalModels = map[string]string{
	"analytic":    "analytic",
	"profile":     "profile",
	"brute-force": "profile",
	"empirical":   "empirical",
}

// canonicalAlgorithms maps accepted algorithm-axis names to sched names.
var canonicalAlgorithms = map[string]string{
	"CPA":     "CPA",
	"HCPA":    "HCPA",
	"MCPA":    "MCPA",
	"MHEFT":   "MHEFT",
	"M-HEFT":  "MHEFT",
	"SEQ":     "SEQ",
	"DATAPAR": "DATAPAR",
}

// AlgorithmNames lists the accepted canonical algorithm-axis values.
func AlgorithmNames() []string {
	return []string{"CPA", "HCPA", "MCPA", "MHEFT", "SEQ", "DATAPAR"}
}

// CanonicalAlgorithm resolves an algorithm-axis name or alias to its sched
// name; other spec layers (internal/arrival) share the campaign axis
// vocabulary through it.
func CanonicalAlgorithm(name string) (string, bool) {
	c, ok := canonicalAlgorithms[name]
	return c, ok
}

// CanonicalModel resolves a model-axis name or alias to its registry kind.
func CanonicalModel(name string) (string, bool) {
	c, ok := canonicalModels[name]
	return c, ok
}

// ModelNames lists the accepted canonical model-axis values.
func ModelNames() []string { return []string{"analytic", "profile", "empirical"} }

// normalize fills the spec's defaults in place.
func (s *Spec) normalize() {
	if s.Platforms.Base == "" {
		s.Platforms.Base = "bayreuth"
	}
	if len(s.Platforms.Nodes) == 0 {
		s.Platforms.Nodes = []int{0}
	}
	if len(s.Platforms.BandwidthScale) == 0 {
		s.Platforms.BandwidthScale = []float64{1}
	}
	if len(s.Platforms.LatencyScale) == 0 {
		s.Platforms.LatencyScale = []float64{1}
	}
	if len(s.Platforms.SpeedRatios) == 0 {
		s.Platforms.SpeedRatios = []float64{1}
	}
	if s.Workloads.IsEmpty() {
		s.Workloads.SuiteSeeds = []int64{experiments.DefaultConfig().SuiteSeed}
	}
	if len(s.Algorithms) == 0 {
		s.Algorithms = []string{"HCPA", "MCPA"}
	}
	if len(s.Models) == 0 {
		s.Models = []string{"analytic"}
	}
	if s.Seed == 0 {
		s.Seed = experiments.DefaultConfig().NoiseSeed
	}
	if s.Trials == 0 {
		s.Trials = 1
	}
}

// Plan normalizes and validates the spec and expands it into the full grid.
// Every error names the offending axis and, for limit violations, the
// limit, so rejected specs are self-explanatory.
func (s Spec) Plan() (*Plan, error) {
	s.normalize()
	p := &Plan{Spec: s}

	if err := checkAxisLen("platforms.nodes", len(s.Platforms.Nodes)); err != nil {
		return nil, err
	}
	if err := checkAxisLen("platforms.bandwidth_scale", len(s.Platforms.BandwidthScale)); err != nil {
		return nil, err
	}
	if err := checkAxisLen("platforms.latency_scale", len(s.Platforms.LatencyScale)); err != nil {
		return nil, err
	}
	if err := checkAxisLen("platforms.speed_ratios", len(s.Platforms.SpeedRatios)); err != nil {
		return nil, err
	}
	if err := checkAxisLen("workloads.suite_seeds", len(s.Workloads.SuiteSeeds)); err != nil {
		return nil, err
	}
	if err := checkAxisLen("workloads.traces", len(s.Workloads.Traces)); err != nil {
		return nil, err
	}
	if err := checkAxisLen("workloads.shapes", len(s.Workloads.Shapes)); err != nil {
		return nil, err
	}
	if err := checkAxisLen("algorithms", len(s.Algorithms)); err != nil {
		return nil, err
	}
	if err := checkAxisLen("models", len(s.Models)); err != nil {
		return nil, err
	}

	seenNodes := map[int]bool{}
	for _, n := range s.Platforms.Nodes {
		if n < 0 || n > MaxNodes {
			return nil, fmt.Errorf("campaign: platforms.nodes value %d outside [0, %d] (0 = base size)", n, MaxNodes)
		}
		if seenNodes[n] {
			return nil, fmt.Errorf("campaign: duplicate platforms.nodes value %d", n)
		}
		seenNodes[n] = true
	}
	if err := checkScales("platforms.bandwidth_scale", s.Platforms.BandwidthScale); err != nil {
		return nil, err
	}
	if err := checkScales("platforms.latency_scale", s.Platforms.LatencyScale); err != nil {
		return nil, err
	}
	if err := checkScales("platforms.speed_ratios", s.Platforms.SpeedRatios); err != nil {
		return nil, err
	}

	seenSeeds := map[int64]bool{}
	for _, seed := range s.Workloads.SuiteSeeds {
		if seenSeeds[seed] {
			return nil, fmt.Errorf("campaign: duplicate workloads.suite_seeds value %d", seed)
		}
		seenSeeds[seed] = true
	}
	sizes, err := normalizeSizes(s.Workloads.Sizes)
	if err != nil {
		return nil, err
	}

	hetero := false
	for _, r := range s.Platforms.SpeedRatios {
		if r != 1 {
			hetero = true
		}
	}
	seenAlgo := map[string]bool{}
	for _, a := range s.Algorithms {
		name, ok := canonicalAlgorithms[a]
		if !ok {
			return nil, fmt.Errorf("campaign: unknown algorithm %q (want one of %v)", a, AlgorithmNames())
		}
		if seenAlgo[name] {
			return nil, fmt.Errorf("campaign: duplicate algorithm %q", name)
		}
		seenAlgo[name] = true
		if name == "MHEFT" && hetero {
			return nil, fmt.Errorf("campaign: MHEFT is a homogeneous-platform scheduler; remove it or drop speed_ratios != 1")
		}
		p.Algorithms = append(p.Algorithms, name)
	}
	seenModel := map[string]bool{}
	for _, m := range s.Models {
		kind, ok := canonicalModels[m]
		if !ok {
			return nil, fmt.Errorf("campaign: unknown model %q (want one of %v, or brute-force for profile)", m, ModelNames())
		}
		if seenModel[kind] {
			return nil, fmt.Errorf("campaign: duplicate model %q", kind)
		}
		seenModel[kind] = true
		p.Models = append(p.Models, kind)
	}

	if s.Trials < 0 || s.Trials > MaxTrials {
		return nil, fmt.Errorf("campaign: trials %d outside [1, %d]", s.Trials, MaxTrials)
	}

	// Shape points expand one per matrix size; suites use the sizes as a
	// filter instead, and traces carry their own sizes.
	shapeSizes := sizes
	if len(shapeSizes) == 0 {
		shapeSizes = dag.SuiteSizes[:1]
	}

	// Enforce the grid limits arithmetically before expanding anything: the
	// axis-length checks above cap each list at 32 values, so a hostile spec
	// could still describe 32⁴ platform points — reject it from the lengths
	// alone instead of materialising a million-point grid first.
	platforms := len(s.Platforms.Nodes) * len(s.Platforms.BandwidthScale) *
		len(s.Platforms.LatencyScale) * len(s.Platforms.SpeedRatios)
	workloads := len(s.Workloads.SuiteSeeds) + len(s.Workloads.Traces) +
		len(s.Workloads.Shapes)*len(shapeSizes)
	if cells := platforms * workloads * len(p.Models); cells > MaxGridCells {
		return nil, fmt.Errorf("campaign: grid has %d cells (platforms × workloads × models), limit %d", cells, MaxGridCells)
	}
	if runs := platforms * workloads * len(p.Models) * len(p.Algorithms); runs > MaxRuns {
		return nil, fmt.Errorf("campaign: grid has %d runs (cells × algorithms), limit %d", runs, MaxRuns)
	}

	for _, n := range s.Platforms.Nodes {
		for _, bw := range s.Platforms.BandwidthScale {
			for _, lat := range s.Platforms.LatencyScale {
				for _, ratio := range s.Platforms.SpeedRatios {
					pt := PlatformPoint{
						Nodes:          n,
						BandwidthScale: bw,
						LatencyScale:   lat,
						SpeedRatio:     ratio,
					}
					pt.Env = pt.envName(s.Platforms.Base)
					p.Platforms = append(p.Platforms, pt)
				}
			}
		}
	}
	for _, seed := range s.Workloads.SuiteSeeds {
		p.Workloads = append(p.Workloads, WorkloadPoint{SuiteSeed: seed, Sizes: sizes})
	}
	for i, tr := range s.Workloads.Traces {
		// Import at plan time: a bad reference rejects the spec up front
		// (an HTTP 400, not a failed job), and the resolved name pins the
		// point's key before any cell math depends on it.
		g, err := tr.Load()
		if err != nil {
			return nil, fmt.Errorf("campaign: workloads.traces[%d]: %w", i, err)
		}
		tr.Name = tr.resolveName(g)
		if tr.Name == "" {
			return nil, fmt.Errorf("campaign: workloads.traces[%d] has no resolvable name", i)
		}
		if len(keySafe(tr.Name)) > MaxKeyName {
			return nil, fmt.Errorf("campaign: workloads.traces[%d] name %q too long (escaped limit %d)", i, tr.Name, MaxKeyName)
		}
		p.Workloads = append(p.Workloads, WorkloadPoint{Trace: tr})
	}
	for i, name := range s.Workloads.Shapes {
		if _, ok := shapes.Lookup(name); !ok {
			return nil, fmt.Errorf("campaign: workloads.shapes[%d]: unknown shape %q (known: %v)", i, name, shapes.Names())
		}
		for _, n := range shapeSizes {
			p.Workloads = append(p.Workloads, WorkloadPoint{Shape: name, N: n})
		}
	}
	seenKeys := make(map[string]bool, len(p.Workloads))
	for _, wp := range p.Workloads {
		key := wp.Key()
		if seenKeys[key] {
			return nil, fmt.Errorf("campaign: duplicate workload point %q", key)
		}
		seenKeys[key] = true
	}

	return p, nil
}

// envName encodes a platform point into a deterministic derived-environment
// name; the identity point keeps the base name, sharing its fitted models
// with every other user of the registry.
func (pt PlatformPoint) envName(base string) string {
	name := base
	if pt.Nodes > 0 {
		name += "-x" + strconv.Itoa(pt.Nodes)
	}
	if pt.BandwidthScale != 1 {
		name += "-bw" + formatScale(pt.BandwidthScale)
	}
	if pt.LatencyScale != 1 {
		name += "-lat" + formatScale(pt.LatencyScale)
	}
	if pt.SpeedRatio != 1 {
		name += "-het" + formatScale(pt.SpeedRatio)
	}
	return name
}

func formatScale(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func checkAxisLen(axis string, n int) error {
	if n > MaxAxisValues {
		return fmt.Errorf("campaign: %s has %d values, limit %d", axis, n, MaxAxisValues)
	}
	return nil
}

func checkScales(axis string, vs []float64) error {
	seen := map[float64]bool{}
	for _, v := range vs {
		if v < 1.0/1024 || v > 1024 {
			return fmt.Errorf("campaign: %s value %g outside [1/1024, 1024]", axis, v)
		}
		if seen[v] {
			return fmt.Errorf("campaign: duplicate %s value %g", axis, v)
		}
		seen[v] = true
	}
	return nil
}

// normalizeSizes validates the matrix-size filter against the Table I
// sizes and returns it in suite order.
func normalizeSizes(sizes []int) ([]int, error) {
	if len(sizes) == 0 {
		return nil, nil
	}
	valid := map[int]bool{}
	for _, n := range dag.SuiteSizes {
		valid[n] = true
	}
	seen := map[int]bool{}
	for _, n := range sizes {
		if !valid[n] {
			return nil, fmt.Errorf("campaign: workloads.sizes value %d not in the Table I sizes %v", n, dag.SuiteSizes)
		}
		if seen[n] {
			return nil, fmt.Errorf("campaign: duplicate workloads.sizes value %d", n)
		}
		seen[n] = true
	}
	out := append([]int(nil), sizes...)
	sort.Ints(out)
	return out, nil
}
