package campaign

// Sharded execution: the per-cell face of the engine. A coordinator calls
// Prepare once to resolve the canonical plan, any replica executes single
// cells by plan index with RunCellIndex, and Merge reassembles the cells —
// in plan-index order — into a Result whose rendered report is byte-for-byte
// identical to a monolithic Run of the same spec. The determinism argument:
// noise sessions are pure functions of (seed, study, instance), so a fresh
// per-cell emulator replays exactly the sessions the shared per-platform
// emulator would hand out, and every cross-cell input (plan, models, suites)
// is resolved identically by every replica through resolvePlan.

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/simgrid"
)

// Prepared is a resolved campaign plan ready for per-cell execution.
type Prepared struct {
	Plan *Plan
}

// Prepare expands and canonicalises a spec exactly as Run does, without
// executing anything. Every replica preparing the same spec against an
// equivalent model source resolves the identical plan.
func (e *Engine) Prepare(spec Spec) (*Prepared, error) {
	plan, err := spec.Plan()
	if err != nil {
		return nil, err
	}
	if err := e.resolvePlan(plan); err != nil {
		return nil, err
	}
	return &Prepared{Plan: plan}, nil
}

// NumCells is the grid size — the number of shardable work-units.
func (p *Prepared) NumCells() int { return p.Plan.Cells() }

// CellPoint maps a plan index to its (platform, workload, model) coordinates
// in the same platforms × workloads × models nesting Run iterates.
func (p *Prepared) CellPoint(i int) (PlatformPoint, WorkloadPoint, string) {
	nw, nm := len(p.Plan.Workloads), len(p.Plan.Models)
	return p.Plan.Platforms[i/(nw*nm)], p.Plan.Workloads[(i/nm)%nw], p.Plan.Models[i%nm]
}

// RunCellIndex scores one grid cell of a prepared plan, byte-identically to
// the same cell inside a monolithic Run. It is safe to call concurrently and
// from different replicas for different indices.
func (e *Engine) RunCellIndex(ctx context.Context, p *Prepared, i int) (CellScore, error) {
	if i < 0 || i >= p.NumCells() {
		return CellScore{}, fmt.Errorf("campaign: cell index %d out of range [0,%d)", i, p.NumCells())
	}
	pt, wp, kind := p.CellPoint(i)
	truth, err := e.Source.Environment(pt.Env)
	if err != nil {
		return CellScore{}, err
	}
	em, err := cluster.NewEmulator(truth, p.Plan.Spec.Seed)
	if err != nil {
		return CellScore{}, fmt.Errorf("campaign: platform %s: %w", pt.Env, err)
	}
	net, err := simgrid.NewNet(truth.Cluster)
	if err != nil {
		return CellScore{}, fmt.Errorf("campaign: platform %s: %w", pt.Env, err)
	}
	suite, err := wp.Instances()
	if err != nil {
		return CellScore{}, err
	}
	if len(suite) == 0 {
		return CellScore{}, fmt.Errorf("campaign: workload %s selects no suite instances", wp.Key())
	}
	model, _, err := e.Source.GetModel(pt.Env, kind, p.Plan.Spec.Seed)
	if err != nil {
		return CellScore{}, fmt.Errorf("campaign: fit %s/%s: %w", pt.Env, kind, err)
	}
	cell, err := e.runCell(ctx, p.Plan, pt, wp, kind, truth, em, net, suite, model)
	if err != nil {
		return CellScore{}, err
	}
	cellsCompleted.Inc()
	return cell, nil
}

// Merge assembles per-cell scores — in plan-index order — into the Result a
// monolithic Run would have produced. FitsReused is deliberately zero: it
// reflects registry state on whichever replica ran each cell and is never
// rendered.
func Merge(p *Prepared, cells []CellScore) (*Result, error) {
	if len(cells) != p.NumCells() {
		return nil, fmt.Errorf("campaign: merge got %d cells, plan has %d", len(cells), p.NumCells())
	}
	return &Result{Plan: p.Plan, Cells: cells}, nil
}

// EncodeCell serialises one cell score as a result frame. Raw per-instance
// data never travels between replicas: gob would choke on nothing, but the
// frames would balloon and the merged report ignores Raw anyway.
func EncodeCell(c CellScore) ([]byte, error) {
	c.Raw = nil
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&c); err != nil {
		return nil, fmt.Errorf("campaign: encode cell: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeCell is the inverse of EncodeCell.
func DecodeCell(data []byte) (CellScore, error) {
	var c CellScore
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&c); err != nil {
		return CellScore{}, fmt.Errorf("campaign: decode cell: %w", err)
	}
	return c, nil
}
