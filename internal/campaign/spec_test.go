package campaign

import (
	"strings"
	"testing"
)

func TestPlanDefaults(t *testing.T) {
	p, err := Spec{}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Spec.Platforms.Base != "bayreuth" {
		t.Errorf("default base = %q, want bayreuth", p.Spec.Platforms.Base)
	}
	if len(p.Platforms) != 1 || p.Platforms[0].Env != "bayreuth" {
		t.Errorf("default platform axis = %+v, want the single identity point", p.Platforms)
	}
	if len(p.Workloads) != 1 || p.Workloads[0].SuiteSeed != 2011 {
		t.Errorf("default workload axis = %+v, want suite seed 2011", p.Workloads)
	}
	if got := strings.Join(p.Algorithms, ","); got != "HCPA,MCPA" {
		t.Errorf("default algorithms = %s, want HCPA,MCPA", got)
	}
	if got := strings.Join(p.Models, ","); got != "analytic" {
		t.Errorf("default models = %s, want analytic", got)
	}
	if p.Spec.Seed != 42 || p.Spec.Trials != 1 {
		t.Errorf("default seed/trials = %d/%d, want 42/1", p.Spec.Seed, p.Spec.Trials)
	}
	if p.Cells() != 1 || p.Runs() != 2 {
		t.Errorf("default grid = %d cells, %d runs, want 1 and 2", p.Cells(), p.Runs())
	}
}

func TestPlanAliasesAndNaming(t *testing.T) {
	p, err := Spec{
		Platforms: PlatformAxis{
			Nodes:          []int{64},
			BandwidthScale: []float64{0.5},
			SpeedRatios:    []float64{2},
		},
		Algorithms: []string{"HCPA"},
		Models:     []string{"brute-force"},
	}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Platforms[0].Env; got != "bayreuth-x64-bw0.5-het2" {
		t.Errorf("derived env name = %q, want bayreuth-x64-bw0.5-het2", got)
	}
	if p.Models[0] != "profile" {
		t.Errorf("brute-force canonicalised to %q, want profile", p.Models[0])
	}

	p, err = Spec{Algorithms: []string{"M-HEFT", "HCPA"}}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Algorithms[0] != "MHEFT" {
		t.Errorf("M-HEFT canonicalised to %q, want MHEFT", p.Algorithms[0])
	}
}

func TestPlanRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the expected error
	}{
		{"unknown algorithm", Spec{Algorithms: []string{"SJF"}}, "unknown algorithm"},
		{"duplicate algorithm", Spec{Algorithms: []string{"HCPA", "HCPA"}}, "duplicate algorithm"},
		{"alias duplicate algorithm", Spec{Algorithms: []string{"MHEFT", "M-HEFT"}}, "duplicate algorithm"},
		{"unknown model", Spec{Models: []string{"oracular"}}, "unknown model"},
		{"duplicate model", Spec{Models: []string{"profile", "brute-force"}}, "duplicate model"},
		{"negative nodes", Spec{Platforms: PlatformAxis{Nodes: []int{-4}}}, "outside"},
		{"oversized nodes", Spec{Platforms: PlatformAxis{Nodes: []int{MaxNodes + 1}}}, "outside"},
		{"duplicate nodes", Spec{Platforms: PlatformAxis{Nodes: []int{8, 8}}}, "duplicate platforms.nodes"},
		{"zero bandwidth scale", Spec{Platforms: PlatformAxis{BandwidthScale: []float64{0}}}, "bandwidth_scale"},
		{"huge latency scale", Spec{Platforms: PlatformAxis{LatencyScale: []float64{1e9}}}, "latency_scale"},
		{"duplicate suite seed", Spec{Workloads: WorkloadAxis{SuiteSeeds: []int64{7, 7}}}, "duplicate workloads.suite_seeds"},
		{"bad size filter", Spec{Workloads: WorkloadAxis{Sizes: []int{1024}}}, "not in the Table I sizes"},
		{"duplicate size filter", Spec{Workloads: WorkloadAxis{Sizes: []int{2000, 2000}}}, "duplicate workloads.sizes"},
		{"mheft on hetero", Spec{
			Platforms:  PlatformAxis{SpeedRatios: []float64{2}},
			Algorithms: []string{"MHEFT"},
		}, "homogeneous-platform scheduler"},
		{"excess trials", Spec{Trials: MaxTrials + 1}, "trials"},
		{"axis too long", Spec{Platforms: PlatformAxis{Nodes: seqInts(MaxAxisValues + 1)}}, "limit 32"},
		{"grid too large", Spec{
			Platforms: PlatformAxis{Nodes: seqInts(16), BandwidthScale: []float64{0.5, 1, 2}},
			Models:    []string{"analytic", "profile", "empirical"},
		}, "limit 96"},
		{"too many runs", Spec{
			Platforms:  PlatformAxis{Nodes: seqInts(16), BandwidthScale: []float64{1, 2}},
			Models:     []string{"analytic", "profile", "empirical"},
			Algorithms: []string{"CPA", "HCPA", "MCPA", "MHEFT", "SEQ", "DATAPAR"},
		}, "limit 512"},
	}
	for _, tc := range cases {
		_, err := tc.spec.Plan()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// seqInts returns {1, 2, ..., n}.
func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

func TestPlanGridExpansionOrder(t *testing.T) {
	p, err := Spec{
		Platforms: PlatformAxis{Nodes: []int{8, 16}, LatencyScale: []float64{1, 2}},
		Workloads: WorkloadAxis{SuiteSeeds: []int64{1, 2}},
		Models:    []string{"analytic", "empirical"},
	}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	var envs []string
	for _, pt := range p.Platforms {
		envs = append(envs, pt.Env)
	}
	want := "bayreuth-x8,bayreuth-x8-lat2,bayreuth-x16,bayreuth-x16-lat2"
	if got := strings.Join(envs, ","); got != want {
		t.Errorf("platform order = %s, want %s", got, want)
	}
	if p.Cells() != 4*2*2 || p.Runs() != 4*2*2*2 {
		t.Errorf("grid = %d cells / %d runs, want 16 / 32", p.Cells(), p.Runs())
	}
}
