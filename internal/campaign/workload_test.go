package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/dag/shapes"
)

// TestWorkloadKeyUniqueness expands a deliberately adversarial mixed axis —
// suite seeds, traces and shapes whose raw names collide with each other's
// key spellings — and proves every expanded point keys uniquely. This is
// the regression test for the key-aliasing bug: report sections and shard
// cell plans address cells by Key(), so two points sharing one would
// silently merge.
func TestWorkloadKeyUniqueness(t *testing.T) {
	mk := func(name string) string {
		g := dag.New(name)
		a := g.AddTask(dag.KernelMul, 2000)
		b := g.AddTask(dag.KernelAdd, 2000)
		g.AddEdge(a.ID, b.ID)
		var buf bytes.Buffer
		if err := g.WriteDOT(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	spec := Spec{
		Workloads: WorkloadAxis{
			SuiteSeeds: []int64{2011, 7},
			Sizes:      []int{2000, 3000},
			Traces: []TraceRef{
				{Name: "suite-2011", DOT: mk("a")}, // raw name spells a suite key
				{Name: "shape-chain-n2000", DOT: mk("b")},
				{Name: "a_b", DOT: mk("c")}, // underscore vs escaped-byte collisions
				{Name: "a\x8fb", DOT: mk("d")},
				{Name: "a__8fb", DOT: mk("e")},
				{DOT: mk("from-graph-name")}, // name resolved from the graph
			},
			Shapes: []string{"chain", "strassen"},
		},
	}
	p, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := 2 + 6 + 2*2 // seeds + traces + shapes×sizes
	if len(p.Workloads) != wantPoints {
		t.Fatalf("expanded %d workload points, want %d", len(p.Workloads), wantPoints)
	}
	seen := map[string]WorkloadPoint{}
	for _, wp := range p.Workloads {
		key := wp.Key()
		if prev, dup := seen[key]; dup {
			t.Errorf("key %q aliases points %+v and %+v", key, prev, wp)
		}
		seen[key] = wp
		if !strings.HasPrefix(key, "suite-") && !strings.HasPrefix(key, "trace-") && !strings.HasPrefix(key, "shape-") {
			t.Errorf("key %q lacks a kind prefix", key)
		}
	}
	if _, ok := seen["trace-from-graph-name"]; !ok {
		t.Errorf("trace name not resolved from graph name; keys: %v", keysOf(seen))
	}
}

func keysOf(m map[string]WorkloadPoint) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestWorkloadPlanRejections covers the new axis's validation paths.
func TestWorkloadPlanRejections(t *testing.T) {
	goodDOT := func() string {
		var buf bytes.Buffer
		if err := dag.Diamond(2000).WriteDOT(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown shape", Spec{Workloads: WorkloadAxis{Shapes: []string{"frobnicate"}}}, "unknown shape"},
		{"duplicate shape", Spec{Workloads: WorkloadAxis{Shapes: []string{"chain", "chain"}}}, "duplicate workload point"},
		{"sourceless trace", Spec{Workloads: WorkloadAxis{Traces: []TraceRef{{Name: "x"}}}}, "neither path nor dot"},
		{"double-source trace", Spec{Workloads: WorkloadAxis{Traces: []TraceRef{{Name: "x", Path: "y", DOT: goodDOT}}}}, "both path and dot"},
		{"missing trace file", Spec{Workloads: WorkloadAxis{Traces: []TraceRef{{Path: "testdata/definitely-missing.dot"}}}}, "no such file"},
		{"malformed trace", Spec{Workloads: WorkloadAxis{Traces: []TraceRef{{Name: "x", DOT: "digraph {"}}}}, "missing closing brace"},
		{"duplicate trace name", Spec{Workloads: WorkloadAxis{Traces: []TraceRef{
			{Name: "x", DOT: goodDOT}, {Name: "x", DOT: goodDOT},
		}}}, "duplicate workload point"},
		{"oversized trace name", Spec{Workloads: WorkloadAxis{Traces: []TraceRef{
			{Name: strings.Repeat("x", MaxKeyName+1), DOT: goodDOT},
		}}}, "too long"},
	}
	for _, tc := range cases {
		_, err := tc.spec.Plan()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestWorkloadInstances checks each point kind materialises the expected
// instances, deterministically.
func TestWorkloadInstances(t *testing.T) {
	suitePoint := WorkloadPoint{SuiteSeed: 2011, Sizes: []int{2000}}
	suite, err := suitePoint.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 27 {
		t.Errorf("suite point yields %d instances, want 27", len(suite))
	}

	g := dag.Diamond(2000)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "diamond.dot")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePoint := WorkloadPoint{Trace: TraceRef{Name: "d", Path: path}}
	ins, err := tracePoint.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 || ins[0].Name() != "diamond-n2000" || ins[0].Graph.Len() != 4 {
		t.Errorf("trace point yields %+v, want the 4-task diamond", ins)
	}

	shapePoint := WorkloadPoint{Shape: "strassen", N: 3000}
	ins, err = shapePoint.Instances()
	if err != nil {
		t.Fatal(err)
	}
	want, err := shapes.Build("strassen", 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 || ins[0].Name() != want.Name || ins[0].Graph.Len() != want.Len() {
		t.Errorf("shape point yields %+v, want %s", ins, want.Name)
	}

	if _, err := (WorkloadPoint{Shape: "nope", N: 2000}).Instances(); err == nil {
		t.Error("unknown shape point materialised")
	}
	if _, err := (WorkloadPoint{Trace: TraceRef{Name: "x", Path: path + ".gone"}}).Instances(); err == nil {
		t.Error("missing trace file materialised")
	}
}

// TestWorkloadAxisIsEmpty pins the defaulting trigger: any named workload
// suppresses the Table I default.
func TestWorkloadAxisIsEmpty(t *testing.T) {
	if !(WorkloadAxis{}).IsEmpty() {
		t.Error("zero axis should be empty")
	}
	if (WorkloadAxis{Shapes: []string{"chain"}}).IsEmpty() {
		t.Error("shape-only axis should not be empty")
	}
	p, err := Spec{Workloads: WorkloadAxis{Shapes: []string{"chain"}}}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Workloads) != 1 || p.Workloads[0].Shape != "chain" {
		t.Errorf("shape-only axis expanded to %+v; the suite default leaked in", p.Workloads)
	}
	if p.Workloads[0].N != 2000 {
		t.Errorf("shape default size = %d, want 2000", p.Workloads[0].N)
	}
}
