package campaign

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simgrid"
	"repro/internal/stats"
	"repro/internal/tgrid"
)

// Campaign telemetry: grid cells completed (one cell = one platform ×
// workload × model point scored over its whole suite) and scheduling-scratch
// pool traffic. Counters never feed back into reports — campaign output is
// byte-identical with or without anyone scraping them.
var (
	cellsCompleted = obs.Default.Counter("repro_campaign_cells_completed_total",
		"Campaign grid cells fully scored.")
	scratchAcquires = obs.Default.Counter("repro_pool_acquires_total",
		"Pool acquisitions, by pool.", obs.L("pool", "campaign_scratch"))
	scratchReleases = obs.Default.Counter("repro_pool_releases_total",
		"Pool releases, by pool.", obs.L("pool", "campaign_scratch"))
	scratchNews = obs.Default.Counter("repro_pool_news_total",
		"Pool misses that built a fresh object, by pool.", obs.L("pool", "campaign_scratch"))
)

// ModelSource is the fit-once model registry the engine executes against
// (service.ModelRegistry implements it). Derived platforms are registered
// under deterministic names, so every campaign — and every schedule request
// outside campaigns — shares one fitted model per (platform, kind, seed).
type ModelSource interface {
	// Environment resolves an environment name to a fresh ground truth.
	Environment(name string) (*cluster.Hidden, error)
	// RegisterEnv adds a derived environment; first registration of a
	// name wins.
	RegisterEnv(name string, mk func() *cluster.Hidden) error
	// GetModel returns the fitted model for (env, kind, seed), building it
	// on first use; the bool reports a cache hit.
	GetModel(env, kind string, seed int64) (perfmodel.Model, bool, error)
}

// Engine executes campaign plans: it derives the platform points from the
// base environment, pulls each run's model from the fit-once registry, and
// scores every grid cell's suite on the experiments worker pool with
// deterministic per-cell noise sessions.
type Engine struct {
	// Source supplies ground truths and registry-cached fitted models.
	Source ModelSource
	// Workers bounds the cell-engine worker pool (<= 0: one per CPU).
	// Reports are byte-identical for every value.
	Workers int
	// KeepRaw retains every cell's per-instance makespans on CellScore.Raw.
	// The rendered report ignores them; the robustness engine
	// (internal/robust) builds its winner-stability baselines from them
	// without re-measuring anything.
	KeepRaw bool
	// KeepSchedules additionally retains every run's schedule on
	// CellRaw.Schedules (deep copies, detached from the engine's scratch
	// buffers). Only meaningful together with KeepRaw; the robustness
	// engine's replay path re-simulates these base schedules under
	// perturbed models without rescheduling.
	KeepSchedules bool
	// Progress, when non-nil, receives live cell counts (total at plan
	// time, done as each cell finishes) for job-status and CLI progress
	// reporting. It is write-only: nothing the engine reports through it
	// feeds back into the campaign's results.
	Progress *obs.Progress

	// scratch pools per-worker scheduling scratch structs across cells.
	scratch sync.Pool
}

// AlgoScore summarises one algorithm over one grid cell's suite.
type AlgoScore struct {
	Algorithm string
	// MedianExp is the median measured makespan in seconds.
	MedianExp float64
	// MedianErrPct, P90ErrPct and P99ErrPct summarise the simulation
	// error |exp−sim|/sim (stats.SimErrPct, Figure 8's metric — normalised
	// by the simulated makespan) over the cell's instances.
	MedianErrPct, P90ErrPct, P99ErrPct float64
}

// PairScore summarises one algorithm pair over one grid cell — the §V
// question of whether simulation picks the experimentally better algorithm.
type PairScore struct {
	A, B string
	// Flips counts instances where the simulated winner differs from the
	// measured winner; Total is the instance count.
	Flips, Total int
	// KendallTau is the rank correlation between simulated and measured
	// relative makespan differences.
	KendallTau float64
	// MedianSimRatio and MedianExpRatio are the median makespan ratios
	// B/A under simulation and experiment.
	MedianSimRatio, MedianExpRatio float64
}

// CellScore is the outcome of one (platform, workload, model) grid cell.
type CellScore struct {
	Platform  PlatformPoint
	Workload  WorkloadPoint
	Model     string
	Instances int
	Algos     []AlgoScore
	Pairs     []PairScore
	// Raw is the cell's per-instance data, retained only under
	// Engine.KeepRaw; nil otherwise.
	Raw *CellRaw
}

// CellRaw retains a cell's per-instance makespans: Sim[i][a] and Exp[i][a]
// are the simulated and measured makespans of suite instance i under
// algorithm a (both in plan order). Schedules[i][a] is the corresponding
// schedule, retained only under Engine.KeepSchedules; nil otherwise.
type CellRaw struct {
	Sim, Exp  [][]float64
	Schedules [][]*sched.Schedule
}

// Result is a completed campaign: the expanded plan plus every cell's
// scores. Write renders the deterministic report.
type Result struct {
	Plan  *Plan
	Cells []CellScore
	// FitsReused counts the runs served without a fresh fitting campaign —
	// the fit-once/reuse-many economics of the sweep. Each cell resolves
	// its model once and amortizes it over the cell's algorithm runs, so a
	// cell contributes len(algorithms) reused runs when its lookup hit the
	// registry cache and len(algorithms)-1 when it missed (the remaining
	// runs share the batched resolution). It reflects the registry's state
	// when the campaign ran and is deliberately kept out of the rendered
	// report.
	FitsReused int
}

// resolvePlan canonicalises a freshly expanded plan against the base
// environment and registers every derived platform with the model source.
// Both the monolithic Run and the sharded Prepare path flow through it, so
// every replica resolves a spec to the identical canonical plan — the
// precondition for byte-identical sharded reports.
func (e *Engine) resolvePlan(plan *Plan) error {
	if e.Source == nil {
		return fmt.Errorf("campaign: engine has no model source")
	}
	base, err := e.Source.Environment(plan.Spec.Platforms.Base)
	if err != nil {
		return err
	}
	// Canonicalise explicit base-size points (nodes == the base platform's
	// size) to the identity point, so they share the base environment's
	// cached fits instead of refitting a byte-identical derived platform.
	seenEnv := map[string]bool{}
	for i, pt := range plan.Platforms {
		if pt.Nodes == base.Cluster.Nodes {
			pt.Nodes = 0
			pt.Env = pt.envName(plan.Spec.Platforms.Base)
			plan.Platforms[i] = pt
		}
		if seenEnv[pt.Env] {
			return fmt.Errorf("campaign: platforms.nodes lists both 0 and the base size %d — the same platform twice", base.Cluster.Nodes)
		}
		seenEnv[pt.Env] = true
	}
	for _, pt := range plan.Platforms {
		if pt.Env == plan.Spec.Platforms.Base {
			continue
		}
		derived := deriveHidden(base, pt)
		if err := e.Source.RegisterEnv(pt.Env, func() *cluster.Hidden {
			h := *derived
			return &h
		}); err != nil {
			return err
		}
	}
	return nil
}

// Run expands, validates and executes a campaign.
func (e *Engine) Run(ctx context.Context, spec Spec) (*Result, error) {
	plan, err := spec.Plan()
	if err != nil {
		return nil, err
	}
	if err := e.resolvePlan(plan); err != nil {
		return nil, err
	}

	e.Progress.AddCellsTotal(int64(len(plan.Platforms) * len(plan.Workloads) * len(plan.Models)))
	res := &Result{Plan: plan}
	for _, pt := range plan.Platforms {
		truth, err := e.Source.Environment(pt.Env)
		if err != nil {
			return nil, err
		}
		em, err := cluster.NewEmulator(truth, plan.Spec.Seed)
		if err != nil {
			return nil, fmt.Errorf("campaign: platform %s: %w", pt.Env, err)
		}
		net, err := simgrid.NewNet(truth.Cluster)
		if err != nil {
			return nil, fmt.Errorf("campaign: platform %s: %w", pt.Env, err)
		}
		for _, wp := range plan.Workloads {
			suite, err := wp.Instances()
			if err != nil {
				return nil, err
			}
			if len(suite) == 0 {
				return nil, fmt.Errorf("campaign: workload %s selects no suite instances", wp.Key())
			}
			for _, kind := range plan.Models {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				// One registry lookup per cell, amortized over the cell's
				// algorithm runs: repeated cells (and repeated campaigns
				// against the same registry) are cache hits, and the runs
				// beyond the first share the batched resolution without
				// touching the registry at all.
				model, hit, err := e.Source.GetModel(pt.Env, kind, plan.Spec.Seed)
				if err != nil {
					return nil, fmt.Errorf("campaign: fit %s/%s: %w", pt.Env, kind, err)
				}
				res.FitsReused += len(plan.Algorithms) - 1
				if hit {
					res.FitsReused++
				}
				cell, err := e.runCell(ctx, plan, pt, wp, kind, truth, em, net, suite, model)
				if err != nil {
					return nil, err
				}
				res.Cells = append(res.Cells, cell)
				cellsCompleted.Inc()
				e.Progress.AddCellsDone(1)
			}
		}
	}
	return res, nil
}

// runCell scores one grid cell: every suite instance is one engine cell
// that schedules all axis algorithms, simulates them under the cell's model
// and measures them on its private deterministic noise session.
func (e *Engine) runCell(ctx context.Context, plan *Plan, pt PlatformPoint, wp WorkloadPoint,
	kind string, truth *cluster.Hidden, em *cluster.Emulator, net *simgrid.Net,
	suite []dag.SuiteInstance, model perfmodel.Model) (CellScore, error) {

	algos := plan.Algorithms
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, truth.Cluster)
	study := "campaign/" + pt.Env + "/" + wp.Key() + "/" + kind

	type cellOut struct {
		sim, exp  []float64
		schedules []*sched.Schedule
	}
	outs := make([]cellOut, len(suite))
	homogeneous := truth.Cluster.IsHomogeneous()
	runner := experiments.Runner{Workers: e.Workers, Seed: plan.Spec.Seed, Em: em, Ctx: ctx}
	err := runner.Run(study, len(suite), func(i int, sess *cluster.Session) error {
		o := cellOut{sim: make([]float64, len(algos)), exp: make([]float64, len(algos))}
		if e.KeepRaw && e.KeepSchedules {
			o.schedules = make([]*sched.Schedule, len(algos))
		}
		var sc *sched.Scratch
		if homogeneous {
			sc = e.acquireScratch()
			defer e.releaseScratch(sc)
			sc.Bind(suite[i].Graph, truth.Cluster.Nodes, cost)
		}
		for ai, name := range algos {
			s, err := BuildScheduleScratch(sc, name, suite[i].Graph, truth.Cluster, cost, comm)
			if err != nil {
				return fmt.Errorf("campaign: %s: %s on %s: %w", study, name, suite[i].Name(), err)
			}
			s.Model = kind
			simRes, err := tgrid.Run(net, s, tgrid.ModelTiming{Model: model})
			if err != nil {
				return fmt.Errorf("campaign: simulate %s: %s on %s: %w", study, name, suite[i].Name(), err)
			}
			exp, err := sess.MeasureMakespan(s, plan.Spec.Trials)
			if err != nil {
				return fmt.Errorf("campaign: execute %s: %s on %s: %w", study, name, suite[i].Name(), err)
			}
			o.sim[ai], o.exp[ai] = simRes.Makespan, exp
			if o.schedules != nil {
				o.schedules[ai] = s.Clone()
			}
		}
		outs[i] = o
		return nil
	})
	if err != nil {
		return CellScore{}, err
	}

	cell := CellScore{Platform: pt, Workload: wp, Model: kind, Instances: len(suite)}
	if e.KeepRaw {
		raw := &CellRaw{Sim: make([][]float64, len(suite)), Exp: make([][]float64, len(suite))}
		if e.KeepSchedules {
			raw.Schedules = make([][]*sched.Schedule, len(suite))
		}
		for i, o := range outs {
			raw.Sim[i] = o.sim
			raw.Exp[i] = o.exp
			if raw.Schedules != nil {
				raw.Schedules[i] = o.schedules
			}
		}
		cell.Raw = raw
	}
	for ai, name := range algos {
		exps := make([]float64, len(suite))
		errs := make([]float64, len(suite))
		for i, o := range outs {
			exps[i] = o.exp[ai]
			errs[i] = stats.SimErrPct(o.sim[ai], o.exp[ai])
		}
		cell.Algos = append(cell.Algos, AlgoScore{
			Algorithm:    name,
			MedianExp:    stats.Median(exps),
			MedianErrPct: stats.Median(errs),
			P90ErrPct:    stats.Quantile(errs, 0.90),
			P99ErrPct:    stats.Quantile(errs, 0.99),
		})
	}
	for ai := 0; ai < len(algos); ai++ {
		for bi := ai + 1; bi < len(algos); bi++ {
			simRels := make([]float64, len(suite))
			expRels := make([]float64, len(suite))
			simRatios := make([]float64, len(suite))
			expRatios := make([]float64, len(suite))
			for i, o := range outs {
				simRels[i] = stats.RelDiff(o.sim[ai], o.sim[bi])
				expRels[i] = stats.RelDiff(o.exp[ai], o.exp[bi])
				simRatios[i] = o.sim[bi] / o.sim[ai]
				expRatios[i] = o.exp[bi] / o.exp[ai]
			}
			cell.Pairs = append(cell.Pairs, PairScore{
				A:              algos[ai],
				B:              algos[bi],
				Flips:          stats.CountDisagreements(simRels, expRels, 0),
				Total:          len(suite),
				KendallTau:     stats.KendallTau(simRels, expRels),
				MedianSimRatio: stats.Median(simRatios),
				MedianExpRatio: stats.Median(expRatios),
			})
		}
	}
	return cell, nil
}

// deriveHidden builds the ground truth of a derived platform point: the
// base environment's hidden performance curves over a transformed cluster.
// The environment's idiosyncrasies (inefficiencies, outliers, overhead
// trends, noise) carry over unchanged — exactly the §IX scenario of scaling
// a validated environment model to a hypothetical platform.
func deriveHidden(base *cluster.Hidden, pt PlatformPoint) *cluster.Hidden {
	h := *base
	c := h.Cluster
	if pt.Nodes > 0 && pt.Nodes != c.Nodes {
		c = c.Scaled(pt.Nodes)
	}
	if pt.BandwidthScale != 1 {
		c.LinkBandwidth *= pt.BandwidthScale
	}
	if pt.LatencyScale != 1 {
		c.LinkLatency *= pt.LatencyScale
	}
	if pt.SpeedRatio != 1 {
		powers := make([]float64, c.Nodes)
		for i := range powers {
			powers[i] = c.NodePower
			if i >= c.Nodes/2 {
				powers[i] = c.NodePower * pt.SpeedRatio
			}
		}
		hc := platform.NewHeterogeneous(pt.Env, powers, c.LinkBandwidth, c.LinkLatency)
		hc.BackplaneBandwidth = c.BackplaneBandwidth
		c = hc
	}
	c.Name = pt.Env
	h.Cluster = c
	return &h
}

// acquireScratch hands out a pooled scheduling scratch (one per concurrent
// worker in steady state).
func (e *Engine) acquireScratch() *sched.Scratch {
	scratchAcquires.Inc()
	if sc, ok := e.scratch.Get().(*sched.Scratch); ok {
		return sc
	}
	scratchNews.Inc()
	return sched.NewScratch()
}

func (e *Engine) releaseScratch(sc *sched.Scratch) {
	scratchReleases.Inc()
	e.scratch.Put(sc)
}

// BuildScheduleScratch is BuildSchedule through a reusable scheduling
// scratch: the caller binds sc to (g, c.Nodes, cost) once and then builds
// any number of algorithm runs against it without steady-state allocations.
// The returned schedule aliases the scratch's buffers — it is invalidated by
// the scratch's next build, so callers retaining it must Clone.
//
// A nil scratch — or a heterogeneous platform, which the scratch path does
// not cover — falls back to BuildSchedule. Either path produces bit-identical
// schedules.
func BuildScheduleScratch(sc *sched.Scratch, name string, g *dag.Graph, c platform.Cluster, cost dag.CostFunc, comm dag.CommFunc) (*sched.Schedule, error) {
	if sc == nil || !c.IsHomogeneous() {
		return BuildSchedule(name, g, c, cost, comm)
	}
	if name == "MHEFT" {
		return sc.BuildMHEFT(sched.MHEFT{}, comm)
	}
	var algo sched.Algorithm
	switch name {
	case "CPA":
		algo = sched.CPA{}
	case "HCPA":
		algo = sched.HCPA{}
	case "MCPA":
		algo = sched.MCPA{}
	case "SEQ":
		algo = sched.Sequential{}
	case "DATAPAR":
		algo = sched.DataParallel{}
	default:
		return nil, fmt.Errorf("campaign: unknown algorithm %q", name)
	}
	return sc.Build(algo, comm)
}

// BuildSchedule dispatches one algorithm-axis run: MHEFT is a one-phase
// scheduler with its own builder; the CPA family and baselines go through
// the shared two-phase build, heterogeneous-mapping when the platform is.
func BuildSchedule(name string, g *dag.Graph, c platform.Cluster, cost dag.CostFunc, comm dag.CommFunc) (*sched.Schedule, error) {
	if name == "MHEFT" {
		return sched.MHEFT{}.Build(g, c.Nodes, cost, comm)
	}
	var algo sched.Algorithm
	switch name {
	case "CPA":
		algo = sched.CPA{}
	case "HCPA":
		algo = sched.HCPA{}
	case "MCPA":
		algo = sched.MCPA{}
	case "SEQ":
		algo = sched.Sequential{}
	case "DATAPAR":
		algo = sched.DataParallel{}
	default:
		return nil, fmt.Errorf("campaign: unknown algorithm %q", name)
	}
	if c.IsHomogeneous() {
		return sched.Build(algo, g, c.Nodes, cost, comm)
	}
	return sched.BuildHetero(algo, g, c, cost, comm)
}

// FilterSizes restricts a suite to the given matrix sizes (nil: keep all).
// Exported so the robustness engine regenerates exactly the suites its base
// campaign scored.
func FilterSizes(suite []dag.SuiteInstance, sizes []int) []dag.SuiteInstance {
	if len(sizes) == 0 {
		return suite
	}
	var out []dag.SuiteInstance
	for _, n := range sizes {
		out = append(out, dag.FilterBySize(suite, n)...)
	}
	return out
}
