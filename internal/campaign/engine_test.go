package campaign_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/profiler"
	"repro/internal/service"
)

// newEngine pairs a fresh fit-once registry with a campaign engine.
func newEngine(workers int) campaign.Engine {
	reg := service.NewModelRegistry(profiler.DefaultProfileOptions(), profiler.DefaultEmpiricalOptions())
	return campaign.Engine{Source: reg, Workers: workers}
}

// testSpec is the acceptance-criterion grid: 4 platform scales × 2
// algorithms × 2 models over the n=2000 half of the suite.
func testSpec() campaign.Spec {
	return campaign.Spec{
		Name:       "engine-test",
		Platforms:  campaign.PlatformAxis{Base: "bayreuth", Nodes: []int{6, 8, 12, 16}},
		Workloads:  campaign.WorkloadAxis{Sizes: []int{2000}},
		Algorithms: []string{"HCPA", "MCPA"},
		Models:     []string{"analytic", "empirical"},
	}
}

// TestCampaignDeterministicAcrossWorkerCounts pins the acceptance
// criterion: the rendered report is byte-identical at workers=1 and
// workers=8, each on a fresh registry.
func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) (string, int) {
		eng := newEngine(workers)
		res, err := eng.Run(context.Background(), testSpec())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.Write(&buf)
		return buf.String(), res.FitsReused
	}
	serial, serialReused := run(1)
	parallel, parallelReused := run(8)
	if serial != parallel {
		t.Errorf("campaign report differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	if serialReused != parallelReused {
		t.Errorf("fits reused: %d at workers=1, %d at workers=8", serialReused, parallelReused)
	}
	if serialReused == 0 {
		t.Error("campaign reused no registry-cached fits; every run refitted its model")
	}
}

// TestCampaignReusesFitsWithinOneGrid checks the registry economics: each
// cell resolves its model once and amortizes it over the cell's algorithm
// runs, and a repeated campaign against the same registry refits nothing.
func TestCampaignReusesFitsWithinOneGrid(t *testing.T) {
	reg := service.NewModelRegistry(profiler.DefaultProfileOptions(), profiler.DefaultEmpiricalOptions())
	eng := campaign.Engine{Source: reg, Workers: 4}
	res, err := eng.Run(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// 4 platforms × 1 workload × 2 models = 8 cells of 2 algorithm runs
	// each: 8 fresh fits, and the second run of every cell rides its cell's
	// resolution — 8 runs served without a fit.
	if want := res.Plan.Runs() - res.Plan.Cells(); res.FitsReused != want {
		t.Errorf("fits reused = %d, want %d", res.FitsReused, want)
	}
	// A second identical campaign hits the cache on every cell: all of its
	// runs reuse fits, and the registry's hit counters move.
	res, err = eng.Run(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if want := res.Plan.Runs(); res.FitsReused != want {
		t.Errorf("second campaign fits reused = %d, want every run (%d)", res.FitsReused, want)
	}
	hits := int64(0)
	for _, info := range reg.Models() {
		hits += info.Hits
	}
	if hits == 0 {
		t.Error("registry hit counters did not increase across repeated campaigns")
	}
}

// TestCampaignCoversAllAxes runs one cell of every axis flavour: scaled
// node counts, bandwidth/latency scaling, two-speed heterogeneity, an
// MHEFT run on the homogeneous grid, and a profile-model cell.
func TestCampaignCoversAllAxes(t *testing.T) {
	eng := newEngine(0)
	res, err := eng.Run(context.Background(), campaign.Spec{
		Platforms: campaign.PlatformAxis{
			Base:           "bayreuth",
			Nodes:          []int{8},
			BandwidthScale: []float64{0.5},
			LatencyScale:   []float64{2},
			SpeedRatios:    []float64{2},
		},
		Workloads:  campaign.WorkloadAxis{SuiteSeeds: []int64{7}, Sizes: []int{3000}},
		Algorithms: []string{"CPA", "HCPA", "MCPA"},
		Models:     []string{"profile"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(res.Cells))
	}
	cell := res.Cells[0]
	if cell.Platform.Env != "bayreuth-x8-bw0.5-lat2-het2" {
		t.Errorf("cell platform = %q", cell.Platform.Env)
	}
	if cell.Instances != 27 {
		t.Errorf("cell has %d instances, want 27 (n=3000 half of the suite)", cell.Instances)
	}
	if len(cell.Algos) != 3 || len(cell.Pairs) != 3 {
		t.Errorf("cell has %d algo scores and %d pair scores, want 3 and 3", len(cell.Algos), len(cell.Pairs))
	}
	for _, a := range cell.Algos {
		if a.MedianExp <= 0 {
			t.Errorf("%s: non-positive median measured makespan %g", a.Algorithm, a.MedianExp)
		}
	}

	// MHEFT works on homogeneous grids through its one-phase builder.
	res, err = eng.Run(context.Background(), campaign.Spec{
		Platforms:  campaign.PlatformAxis{Base: "modern", Nodes: []int{8}},
		Workloads:  campaign.WorkloadAxis{Sizes: []int{2000}},
		Algorithms: []string{"MHEFT", "HCPA"},
		Models:     []string{"analytic"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "MHEFT vs HCPA") {
		t.Errorf("report missing the MHEFT pair:\n%s", buf.String())
	}
}

// TestCampaignCancellation checks that a cancelled context aborts the run.
func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := newEngine(2)
	if _, err := eng.Run(ctx, testSpec()); err == nil {
		t.Error("cancelled campaign reported success")
	}
}
