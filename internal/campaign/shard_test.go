package campaign_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/campaign"
)

// TestShardedCampaignByteIdentical pins the sharding contract: running every
// cell independently through RunCellIndex — each on its own engine and
// registry, the way different replicas would — then merging in plan order
// renders the report byte-for-byte identical to one monolithic Run.
func TestShardedCampaignByteIdentical(t *testing.T) {
	mono := newEngine(4)
	res, err := mono.Run(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	res.Write(&want)

	// A coordinator resolves the plan once...
	coord := newEngine(1)
	p, err := coord.Prepare(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCells() != res.Plan.Cells() {
		t.Fatalf("NumCells = %d, plan has %d", p.NumCells(), res.Plan.Cells())
	}
	// ...and each cell runs on a "replica" with no shared state beyond the
	// spec, travelling as a serialized result frame.
	frames := make([][]byte, p.NumCells())
	for i := range frames {
		replica := newEngine(1)
		rp, err := replica.Prepare(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		score, err := replica.RunCellIndex(context.Background(), rp, i)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if frames[i], err = campaign.EncodeCell(score); err != nil {
			t.Fatalf("encode cell %d: %v", i, err)
		}
	}
	cells := make([]campaign.CellScore, len(frames))
	for i, frame := range frames {
		var err error
		if cells[i], err = campaign.DecodeCell(frame); err != nil {
			t.Fatalf("decode cell %d: %v", i, err)
		}
	}
	merged, err := campaign.Merge(p, cells)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	merged.Write(&got)
	if got.String() != want.String() {
		t.Errorf("sharded report differs from monolithic run:\n--- monolithic ---\n%s\n--- sharded ---\n%s",
			want.String(), got.String())
	}
}

// TestCellPointOrder pins the plan-index convention every replica must agree
// on: platforms outermost, then workloads, then models — the same nesting
// Run iterates.
func TestCellPointOrder(t *testing.T) {
	eng := newEngine(1)
	p, err := eng.Prepare(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for i := 0; i < p.NumCells(); i++ {
		pt, wp, kind := p.CellPoint(i)
		key := pt.Env + "/" + wp.Key() + "/" + kind
		if seen[key] {
			t.Fatalf("cell %d repeats %s", i, key)
		}
		seen[key] = true
		// Models vary fastest: consecutive cells share a platform until the
		// model axis wraps.
		if i > 0 && i%len(testSpec().Models) != 0 {
			prevPt, _, _ := p.CellPoint(i - 1)
			if prevPt.Env != pt.Env {
				t.Fatalf("cell %d changed platform mid model sweep", i)
			}
		}
	}
	if len(seen) != p.NumCells() {
		t.Fatalf("%d distinct cells, plan has %d", len(seen), p.NumCells())
	}
	if _, _, err := runCellOutOfRange(&eng, p); err == nil {
		t.Fatal("RunCellIndex past the grid succeeded")
	}
}

func runCellOutOfRange(eng *campaign.Engine, p *campaign.Prepared) (campaign.CellScore, bool, error) {
	score, err := eng.RunCellIndex(context.Background(), p, p.NumCells())
	return score, err == nil, err
}
