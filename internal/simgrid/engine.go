package simgrid

import (
	"fmt"
	"math"
	"sort"
)

// timeEps is the relative tolerance used when comparing event times, so that
// activities finishing "at the same instant" are retired together.
const timeEps = 1e-9

// workEps is the absolute remaining-work threshold below which an activity
// is considered complete (guards against floating-point residue).
const workEps = 1e-12

// ActionState tracks an activity through its lifecycle.
type ActionState int

const (
	// StatePending: added but not yet started (still in its latency delay).
	StatePending ActionState = iota
	// StateRunning: consuming resources.
	StateRunning
	// StateDone: completed.
	StateDone
)

// Action is one activity in the simulation: an optional fixed delay followed
// by an optional resource-consuming work phase.
type Action struct {
	// Name labels the action in traces.
	Name string
	// Delay is a fixed latency served before the work phase begins
	// (e.g. network latency, or the whole duration of a fixed action).
	Delay float64
	// Work is the abstract amount of work of the resource phase; 1.0 by
	// convention for parallel tasks (the usage amounts then equal the full
	// flop/byte quantities). Zero means the action is a pure delay.
	Work float64
	// Usage lists resource consumption per unit rate. With Work = 1 and
	// Usage amounts equal to total flops/bytes, an action running alone
	// takes max_r(amount_r / capacity_r) seconds, the L07 semantics.
	// The map is captured (converted to the solver's sparse form) when the
	// action is added; mutations after Add have no effect on the run.
	Usage map[int]float64
	// Bound optionally caps the rate (<= 0: unbounded); captured at Add.
	Bound float64
	// OnComplete, if non-nil, runs when the action finishes. It may add
	// new actions to the engine.
	OnComplete func(e *Engine, a *Action)
	// Tag is an opaque caller-owned index (e.g. a task or edge ID); the
	// engine never reads it and Reset preserves it, so callers replaying
	// recycled actions can recover what an action stands for in callbacks
	// without a per-action closure.
	Tag int

	added      bool
	state      ActionState
	remaining  float64 // remaining work
	delayLeft  float64 // remaining delay
	rate       float64
	startedAt  float64
	finishedAt float64
	v          maxminVar
}

// State returns the action's lifecycle state.
func (a *Action) State() ActionState { return a.state }

// StartedAt returns the simulated time the action was added.
func (a *Action) StartedAt() float64 { return a.startedAt }

// FinishedAt returns the simulated completion time (valid once StateDone).
func (a *Action) FinishedAt() float64 { return a.finishedAt }

// Rate returns the most recently computed progress rate.
func (a *Action) Rate() float64 { return a.rate }

// Reset re-arms an action so it can be added again — the companion of
// Engine.Reset for replaying one scenario through a recycled engine. The
// descriptive fields (Name, Delay, Work, Usage, Bound, OnComplete) are
// preserved, and the sparse usage form keeps its backing storage, so a
// reset-and-re-add cycle allocates nothing. Never reset an action that is
// still live in an engine.
func (a *Action) Reset() {
	a.added = false
	a.state = StatePending
	a.remaining = 0
	a.delayLeft = 0
	a.rate = 0
	a.startedAt = 0
	a.finishedAt = 0
}

// Engine is the discrete-event simulation core: a set of resource capacities
// and a set of live actions sharing them under bounded max-min fairness.
//
// Engines are reusable: Reset returns a finished (or abandoned) engine to
// its initial state while keeping every piece of internal storage — the
// live/done lists, the solver scratch, the event-loop buffers — so one
// engine can serve many Runs without allocating in steady state. Net's
// AcquireEngine/ReleaseEngine recycle engines through a pool on top of this
// lifecycle.
type Engine struct {
	now      float64
	capacity []float64
	live     []*Action
	done     []*Action
	// MaxEvents guards against runaway simulations; 0 means the default.
	MaxEvents int

	sol      solver       // reusable bottleneck solver
	vars     []*maxminVar // scratch: runnable variables of the current solve
	nextLive []*Action    // scratch: double buffer for the live list
	finished []*Action    // scratch: actions retiring in the current event
	fresh    bool         // rates are current for the present live set
}

// NewEngine creates an engine with the given resource capacities.
func NewEngine(capacity []float64) *Engine {
	return &Engine{capacity: append([]float64(nil), capacity...)}
}

// Reset returns the engine to its initial empty state at time zero so it can
// serve another Run. A nil capacity keeps the current capacities; otherwise
// the new vector is copied in (reusing the existing backing where it fits).
// All scratch storage is retained, which is what makes engine reuse
// allocation-free; MaxEvents is preserved. Actions from previous runs are
// forgotten — re-add them only after (*Action).Reset.
func (e *Engine) Reset(capacity []float64) {
	if capacity != nil {
		e.capacity = append(e.capacity[:0], capacity...)
	}
	e.now = 0
	e.live = clearActions(e.live)
	e.done = clearActions(e.done)
	e.nextLive = clearActions(e.nextLive)
	e.finished = clearActions(e.finished)
	vars := e.vars[:cap(e.vars)]
	clear(vars)
	e.vars = vars[:0]
	e.sol.reset()
	e.fresh = false
}

// clearActions nils out a slice's entire backing array — not just its
// current length, which is typically zero by the time Reset runs — so
// recycled engines do not pin previous runs' actions (and the state their
// OnComplete closures capture) against the garbage collector.
func clearActions(s []*Action) []*Action {
	s = s[:cap(s)]
	clear(s)
	return s[:0]
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Capacity returns the capacity of resource r.
func (e *Engine) Capacity(r int) float64 { return e.capacity[r] }

// NumResources returns the number of resources.
func (e *Engine) NumResources() int { return len(e.capacity) }

// Completed returns all completed actions in completion order. The slice is
// only valid until the next Reset.
func (e *Engine) Completed() []*Action { return e.done }

// Add schedules an action starting at the current simulated time.
func (e *Engine) Add(a *Action) {
	if a.added {
		panic(fmt.Sprintf("simgrid: action %q added twice", a.Name))
	}
	a.added = true
	if a.Work < 0 || a.Delay < 0 {
		panic(fmt.Sprintf("simgrid: action %q has negative work or delay", a.Name))
	}
	for r, u := range a.Usage {
		if r < 0 || r >= len(e.capacity) {
			panic(fmt.Sprintf("simgrid: action %q uses unknown resource %d", a.Name, r))
		}
		if u < 0 {
			panic(fmt.Sprintf("simgrid: action %q has negative usage on resource %d", a.Name, r))
		}
	}
	a.v.setUsage(a.Usage)
	a.v.bound = a.Bound
	a.startedAt = e.now
	a.remaining = a.Work
	a.delayLeft = a.Delay
	if a.delayLeft <= 0 && a.remaining <= workEps {
		// Degenerate instantaneous action: complete immediately on the
		// next event round by giving it a zero delay.
		a.delayLeft = 0
		a.remaining = 0
	}
	e.live = append(e.live, a)
	e.fresh = false
}

// Run advances the simulation until no live actions remain and returns the
// final simulated time.
func (e *Engine) Run() (float64, error) {
	maxEvents := e.MaxEvents
	if maxEvents == 0 {
		maxEvents = 10_000_000
	}
	for events := 0; len(e.live) > 0; events++ {
		if events > maxEvents {
			return e.now, fmt.Errorf("simgrid: exceeded %d events at t=%g with %d live actions",
				maxEvents, e.now, len(e.live))
		}
		if err := e.step(); err != nil {
			return e.now, err
		}
	}
	return e.now, nil
}

// step advances to the next completion event and retires finished actions.
func (e *Engine) step() error {
	e.solveRates()

	// Earliest event: a delay expiring (which needs a re-solve) or a work
	// phase completing.
	next := math.Inf(1)
	for _, a := range e.live {
		var t float64
		switch {
		case a.delayLeft > 0:
			t = a.delayLeft
		case a.remaining <= workEps:
			t = 0
		case a.rate <= 0:
			t = math.Inf(1)
		default:
			t = a.remaining / a.rate
		}
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		names := make([]string, 0, len(e.live))
		for _, a := range e.live {
			names = append(names, a.Name)
		}
		sort.Strings(names)
		return fmt.Errorf("simgrid: deadlock at t=%g: %d actions cannot progress (%v)",
			e.now, len(e.live), names)
	}

	// Advance time and progress. The live list is partitioned into the
	// engine's recycled buffers: still into the double buffer that becomes
	// the next live list, finished into the retirement scratch.
	e.now += next
	horizon := next * (1 + timeEps)
	still := e.nextLive[:0]
	finished := e.finished[:0]
	for _, a := range e.live {
		if a.delayLeft > 0 {
			if a.delayLeft <= horizon {
				a.delayLeft = 0
				if a.remaining <= workEps {
					finished = append(finished, a)
					continue
				}
				a.state = StateRunning
			} else {
				a.delayLeft -= next
			}
			still = append(still, a)
			continue
		}
		a.state = StateRunning
		if math.IsInf(a.rate, 1) {
			// Unconstrained action (uses no shared resource): completes
			// as soon as its delay is served.
			a.remaining = 0
		} else {
			a.remaining -= a.rate * next
		}
		if a.remaining <= a.Work*timeEps+workEps {
			finished = append(finished, a)
		} else {
			still = append(still, a)
		}
	}
	old := e.live
	e.live = still
	e.nextLive = old[:0]
	e.finished = finished
	e.fresh = false // the running set changed; rates must be re-solved

	// Retire completions; callbacks may add new actions.
	for _, a := range finished {
		a.state = StateDone
		a.remaining = 0
		a.finishedAt = e.now
		e.done = append(e.done, a)
	}
	for _, a := range finished {
		if a.OnComplete != nil {
			a.OnComplete(e, a)
		}
	}
	return nil
}

// solveRates recomputes the max-min fair rates of all running actions. The
// solve is skipped when the live set has not changed since the last one
// (the fresh flag), so observability calls like UsageOf never pay for a
// redundant solve.
func (e *Engine) solveRates() {
	if e.fresh {
		return
	}
	e.vars = e.vars[:0]
	for _, a := range e.live {
		if a.delayLeft > 0 || a.remaining <= workEps {
			a.rate = 0
			continue
		}
		e.vars = append(e.vars, &a.v)
	}
	e.sol.solve(e.vars, e.capacity)
	for _, a := range e.live {
		if a.delayLeft > 0 || a.remaining <= workEps {
			continue
		}
		a.rate = a.v.rate
	}
	e.fresh = true
}

// UsageOf reports the instantaneous usage of resource r by running actions,
// for tests and observability. It reads the sparse usage forms captured at
// Add — the quantities the simulation actually charges — so it agrees with
// the run even if a caller mutated an action's Usage map afterwards.
func (e *Engine) UsageOf(r int) float64 {
	e.solveRates()
	total := 0.0
	for _, a := range e.live {
		if a.delayLeft > 0 {
			continue
		}
		total += a.rate * a.v.usageOf(r)
	}
	return total
}
