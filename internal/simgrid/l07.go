package simgrid

import (
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/platform"
)

// Engine-pool telemetry: how often simulations draw a warm engine versus
// paying for a fresh one. Registered once per process; the counters are
// plain atomics, so the acquire/release fast path stays allocation-free.
var (
	enginePoolAcquires = obs.Default.Counter("repro_pool_acquires_total",
		"Pool acquisitions, by pool.", obs.L("pool", "engine"))
	enginePoolReleases = obs.Default.Counter("repro_pool_releases_total",
		"Pool releases, by pool.", obs.L("pool", "engine"))
	enginePoolNews = obs.Default.Counter("repro_pool_news_total",
		"Pool misses that built a fresh object, by pool.", obs.L("pool", "engine"))
)

// Net maps a platform.Cluster onto engine resources, implementing the star
// topology of the paper's platform specification: per-node CPU, per-node
// private uplink and downlink, and an optional switch backplane.
//
// A Net also owns a pool of reusable engines for its cluster
// (AcquireEngine/ReleaseEngine): callers that replay many executions — the
// simulators, the emulated cluster, campaign cells — recycle engines and
// their solver scratch instead of allocating one per run. The pool is safe
// for concurrent use; each worker effectively keeps a warm engine.
type Net struct {
	Cluster platform.Cluster
	// resource index layout:
	//   [0, N)    host CPUs
	//   [N, 2N)   uplinks
	//   [2N, 3N)  downlinks
	//   3N        backplane (only if Cluster.BackplaneBandwidth > 0)
	nHosts int
	caps   []float64 // capacity vector, computed once
	pool   sync.Pool // of *Engine
}

// NewNet validates the cluster and returns its resource mapping.
func NewNet(c platform.Cluster) (*Net, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := &Net{Cluster: c, nHosts: c.Nodes}
	size := 3 * n.nHosts
	if c.BackplaneBandwidth > 0 {
		size++
	}
	n.caps = make([]float64, size)
	for h := 0; h < n.nHosts; h++ {
		n.caps[n.CPU(h)] = c.PowerOf(h)
		n.caps[n.Uplink(h)] = c.LinkBandwidth
		n.caps[n.Downlink(h)] = c.LinkBandwidth
	}
	if c.BackplaneBandwidth > 0 {
		n.caps[n.Backplane()] = c.BackplaneBandwidth
	}
	n.pool.New = func() any {
		enginePoolNews.Inc()
		return NewEngine(n.caps)
	}
	return n, nil
}

// Capacities returns a copy of the engine capacity vector for the cluster.
func (n *Net) Capacities() []float64 { return append([]float64(nil), n.caps...) }

// NewEngine builds a fresh engine with the cluster's resources. Callers that
// execute many runs should prefer AcquireEngine/ReleaseEngine, which recycle
// engines (and their warmed-up solver scratch) through the net's pool.
func (n *Net) NewEngine() *Engine { return NewEngine(n.caps) }

// AcquireEngine returns an empty engine for the cluster at time zero,
// recycled from the net's pool when one is available. Every engine in the
// pool is already reset — ReleaseEngine is the only Put path and resets
// eagerly, and pool-created engines are pristine — so acquisition is just
// the pool lookup. Pair every acquire with a ReleaseEngine once the run's
// results have been read off.
func (n *Net) AcquireEngine() *Engine {
	enginePoolAcquires.Inc()
	return n.pool.Get().(*Engine)
}

// ResetEngine resets an engine (not necessarily from this net's pool) to
// this net's capacities at time zero, without the capacity-vector copy
// Capacities would make — the allocation-free way to point a privately owned
// engine at a re-parameterised net of the same shape.
func (n *Net) ResetEngine(e *Engine) { e.Reset(n.caps) }

// ReleaseEngine returns an engine obtained from AcquireEngine to the pool.
// The engine — including any Completed() slice read from it — must not be
// used after release. The engine is reset eagerly so recycled engines do
// not pin finished actions in memory while parked.
func (n *Net) ReleaseEngine(e *Engine) {
	enginePoolReleases.Inc()
	e.Reset(nil)
	n.pool.Put(e)
}

// CPU returns the resource index of host h's processor.
func (n *Net) CPU(h int) int { n.check(h); return h }

// Uplink returns the resource index of host h's private uplink.
func (n *Net) Uplink(h int) int { n.check(h); return n.nHosts + h }

// Downlink returns the resource index of host h's private downlink.
func (n *Net) Downlink(h int) int { n.check(h); return 2*n.nHosts + h }

// Backplane returns the resource index of the switch backplane. Only valid
// when the cluster models one.
func (n *Net) Backplane() int { return 3 * n.nHosts }

// HasBackplane reports whether the backplane resource exists.
func (n *Net) HasBackplane() bool { return n.Cluster.BackplaneBandwidth > 0 }

func (n *Net) check(h int) {
	if h < 0 || h >= n.nHosts {
		panic(fmt.Sprintf("simgrid: host %d out of range [0,%d)", h, n.nHosts))
	}
}

// RouteLatency returns the latency of the route between two hosts: zero
// within a host, twice the private-link latency otherwise (source link +
// destination link; the paper models switch and private links with a single
// 100 µs figure).
func (n *Net) RouteLatency(src, dst int) float64 {
	if src == dst {
		return 0
	}
	return 2 * n.Cluster.LinkLatency
}

// Ptask builds an L07 parallel-task action from a computation vector and a
// communication matrix, the exact inputs of SimGrid's Ptask_L07 model:
// comp[i] is the number of flops host hosts[i] executes, bytes[i][j] the
// number of bytes hosts[i] sends to hosts[j]. Either may be nil (a == 0
// redistribution, B == 0 pure computation). The action's latency is the
// maximum route latency over communicating pairs.
func (n *Net) Ptask(name string, hosts []int, comp []float64, bytes [][]float64) *Action {
	a := &Action{Name: name}
	n.FillPtask(a, hosts, comp, bytes)
	return a
}

// FillPtask populates an existing action with the L07 parallel task described
// by comp and bytes (see Ptask), reusing the action's Usage map so replay
// paths can re-arm recycled actions without allocating. Delay is set to the
// maximum route latency and Work to 1; Name, Tag, Bound and OnComplete are
// left untouched.
func (n *Net) FillPtask(a *Action, hosts []int, comp []float64, bytes [][]float64) {
	name := a.Name
	if comp != nil && len(comp) != len(hosts) {
		panic(fmt.Sprintf("simgrid: ptask %q: comp length %d != hosts %d", name, len(comp), len(hosts)))
	}
	if bytes != nil && len(bytes) != len(hosts) {
		panic(fmt.Sprintf("simgrid: ptask %q: bytes rows %d != hosts %d", name, len(bytes), len(hosts)))
	}
	if a.Usage == nil {
		a.Usage = make(map[int]float64)
	} else {
		clear(a.Usage)
	}
	usage := a.Usage
	latency := 0.0
	for i, h := range hosts {
		if comp != nil && comp[i] > 0 {
			usage[n.CPU(h)] += comp[i]
		}
		if bytes == nil {
			continue
		}
		if len(bytes[i]) != len(hosts) {
			panic(fmt.Sprintf("simgrid: ptask %q: bytes row %d has %d cols, want %d",
				name, i, len(bytes[i]), len(hosts)))
		}
		for j, b := range bytes[i] {
			if b <= 0 || i == j {
				continue // intra-host transfers are free, as in SimGrid clusters
			}
			dst := hosts[j]
			if h == dst {
				continue
			}
			usage[n.Uplink(h)] += b
			usage[n.Downlink(dst)] += b
			if n.HasBackplane() {
				usage[n.Backplane()] += b
			}
			if l := n.RouteLatency(h, dst); l > latency {
				latency = l
			}
		}
	}
	a.Delay = latency
	a.Work = 1
}

// Fixed builds an action that simply lasts the given duration without
// consuming shared resources; the profile-based and empirical simulators use
// it for measured task execution times and overheads.
func Fixed(name string, duration float64) *Action {
	if duration < 0 {
		panic(fmt.Sprintf("simgrid: fixed action %q has negative duration %g", name, duration))
	}
	return &Action{Name: name, Delay: duration}
}

// LoneActionTime predicts how long an action would take if it ran alone on
// the platform: delay + max over resources of amount/capacity. Useful for
// analytic expected-time computations and tests.
func (n *Net) LoneActionTime(a *Action) float64 {
	caps := n.caps
	t := 0.0
	for r, u := range a.Usage {
		if d := u / caps[r] * a.Work; d > t {
			t = d
		}
	}
	return a.Delay + t
}
